// §4.1 — Passive one-way delay monitoring, end to end.
//
// A transit eBPF program on S1 encapsulates 1 in 50 packets with an SRH
// carrying a DM TLV; End.DM on R reports TX/RX timestamps over a perf event
// ring; a daemon relays them to the controller, which prints OWD statistics.
//
// The userspace receive paths are driven entirely by compiled filter
// expressions: the sink and the controller each attach a tcpdump-style
// filter (compiled to classic BPF, translated to eBPF, run on the node's
// engine) to their socket, SO_ATTACH_FILTER style.
//
//   $ ./delay_monitoring
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "apps/socket_filter.h"
#include "usecases/delay_monitor.h"

using namespace srv6bpf;

int main() {
  usecases::DelayMonitorLab::Options opts;
  opts.probe_ratio = 50;
  opts.link_delay = 5 * sim::kMilli;  // 5 ms per hop
  opts.sink_filter = "udp and dst port 7001";
  opts.controller_filter = "udp and dst port 9999";
  usecases::DelayMonitorLab lab(opts);

  std::printf("sink filter:       filter(\"%s\")\n",
              lab.sink_filter()->expr().c_str());
  std::printf("controller filter: filter(\"%s\")\n",
              lab.controller_filter()->expr().c_str());
  std::printf("offering 20k pps of plain IPv6 for 1 s (probing 1:%llu)...\n",
              static_cast<unsigned long long>(opts.probe_ratio));
  lab.offer_traffic(/*pps=*/20000, /*duration=*/sim::kSecond);
  lab.run_for(1500 * sim::kMilli);

  const auto& samples = lab.samples();
  std::printf("sink received %llu packets (filter accepted %llu / dropped "
              "%llu); controller collected %zu OWD samples (filter accepted "
              "%llu)\n",
              static_cast<unsigned long long>(lab.sink_packets()),
              static_cast<unsigned long long>(lab.sink_filter()->accepted()),
              static_cast<unsigned long long>(lab.sink_filter()->dropped()),
              samples.size(),
              static_cast<unsigned long long>(
                  lab.controller_filter()->accepted()));
  if (samples.empty()) return 1;

  std::vector<double> owd;
  owd.reserve(samples.size());
  for (const auto& s : samples) owd.push_back(s.owd_ns() / 1e6);
  std::sort(owd.begin(), owd.end());
  const double mean =
      std::accumulate(owd.begin(), owd.end(), 0.0) / owd.size();
  std::printf("one-way delay S1->R: min %.3f ms, median %.3f ms, "
              "mean %.3f ms, max %.3f ms (link delay: 5 ms)\n",
              owd.front(), owd[owd.size() / 2], mean, owd.back());
  return 0;
}
