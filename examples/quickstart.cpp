// Quickstart: build a 3-node network (S1 - R - S2), attach an End.BPF
// program to a local SID on R, and watch a burst of packets traverse it.
//
// The program is the paper's Tag++: it fetches the SRH tag and increments it
// through bpf_lwt_seg6_store_bytes — the eBPF code never writes the packet
// directly (§3's safety principle). The packets travel as one
// net::PacketBurst through the vector datapath: one send, one SID-table
// lookup and one BPF program setup for the whole burst.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/sink.h"
#include "net/burst.h"
#include "net/packet.h"
#include "seg6/seg6local.h"
#include "sim/network.h"
#include "usecases/programs.h"

using namespace srv6bpf;

int main() {
  sim::Network net;
  auto& s1 = net.add_node("S1");
  auto& r = net.add_node("R");
  auto& s2 = net.add_node("S2");

  const auto a1 = net::Ipv6Addr::must_parse("fc00:1::1");
  const auto r0 = net::Ipv6Addr::must_parse("fc00:1::2");
  const auto r1 = net::Ipv6Addr::must_parse("fc00:2::1");
  const auto a2 = net::Ipv6Addr::must_parse("fc00:2::2");
  const auto sid = net::Ipv6Addr::must_parse("fc00:bbbb::1");

  // 10 Gbps links with 1 ms propagation delay.
  auto l1 = net.connect(s1, a1, r, r0, 10'000'000'000ull, sim::kMilli);
  auto l2 = net.connect(r, r1, s2, a2, 10'000'000'000ull, sim::kMilli);

  s1.ns().table(0).add_route(net::Prefix::parse("::/0").value(),
                             {r0, l1.a_ifindex, 1});
  r.ns().table(0).add_route(net::Prefix::parse("fc00:2::/64").value(),
                            {net::Ipv6Addr{}, l2.a_ifindex, 1});
  s2.ns().table(0).add_route(net::Prefix::parse("::/0").value(),
                             {r1, l2.b_ifindex, 1});

  // Load the paper's Tag++ program: the verifier runs at load time.
  auto built = usecases::build_tag_increment();
  auto load = r.ns().bpf().load(built.name, ebpf::ProgType::kLwtSeg6Local,
                                built.insns, built.paper_sloc);
  if (!load.ok()) {
    std::printf("verifier rejected the program: %s\n",
                load.verify.error.c_str());
    return 1;
  }
  std::printf("loaded '%s': %zu insns, verifier visited %zu states\n",
              built.name, load.prog->program().size(),
              load.verify.stats.states_visited);

  // Bind it to a local SID on R: the paper's End.BPF seg6local action.
  seg6::Seg6LocalEntry entry;
  entry.action = seg6::Seg6Action::kEndBPF;
  entry.prog = load.prog;
  r.ns().seg6local().add(sid, entry);

  // Sink on S2 that prints what arrives.
  apps::AppMux mux(s2);
  mux.on_udp(7001, [&](const net::Packet& pkt, const net::UdpHeader&,
                       std::span<const std::uint8_t> payload,
                       sim::TimeNs now) {
    net::Packet copy = pkt;
    auto srh = copy.srh();
    std::printf("t=%.3f ms  S2 received %zu payload bytes, SRH tag = %u\n",
                static_cast<double>(now) / 1e6, payload.size(),
                srh ? srh->tag() : 0);
  });

  // Send a burst of SRv6 packets through the SID: segments [R's SID, S2].
  net::PacketBurst burst;
  for (std::uint16_t tag = 41; tag <= 43; ++tag) {
    net::PacketSpec spec;
    spec.src = a1;
    spec.segments = {sid, a2};
    spec.srh_tag = tag;
    spec.payload_size = 64;
    burst.push(net::make_udp_packet(spec));
  }
  std::printf("sending a %zu-packet burst with SRH segments [%s, %s], "
              "tags 41..43\n",
              burst.size(), sid.to_string().c_str(), a2.to_string().c_str());
  s1.send_burst(std::move(burst));

  net.run_for(10 * sim::kMilli);

  std::printf("R forwarded %llu packet(s) (%llu eBPF runs in total); "
              "last packet: %d eBPF run(s), %llu insns on the JIT engine\n",
              static_cast<unsigned long long>(r.stats().tx_packets),
              static_cast<unsigned long long>(r.stats().pipeline.bpf_runs),
              r.last_trace().bpf_runs,
              static_cast<unsigned long long>(r.last_trace().bpf_insns_jit));
  return 0;
}
