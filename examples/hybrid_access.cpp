// §4.2 — Hybrid access network: SRv6/eBPF link aggregation with and without
// the TWD delay compensation.
//
//   $ ./hybrid_access
#include <cstdio>

#include "usecases/hybrid.h"

using namespace srv6bpf;

int main() {
  std::printf("hybrid access: 50 Mbps / 30 ms RTT + 30 Mbps / 5 ms RTT, "
              "per-packet WRR 5:3\n\n");

  {
    usecases::HybridLab::Options opts;
    opts.twd_compensation = false;
    usecases::HybridLab lab(opts);
    const double goodput = lab.run_tcp(1, 10 * sim::kSecond);
    std::printf("without compensation: 1 TCP flow  -> %6.1f Mbps  "
                "(%llu rtx, %llu ooo segments at the receiver)\n",
                goodput,
                static_cast<unsigned long long>(lab.total_retransmits()),
                static_cast<unsigned long long>(lab.receiver_ooo_segments()));
  }
  {
    usecases::HybridLab::Options opts;
    opts.twd_compensation = true;
    usecases::HybridLab lab(opts);
    // Let the TWD daemon converge before starting traffic.
    lab.net().run_for(2 * sim::kSecond);
    const double goodput = lab.run_tcp(1, 10 * sim::kSecond);
    std::printf("with TWD compensation: 1 TCP flow  -> %6.1f Mbps  "
                "(measured delay diff %.2f ms)\n",
                goodput, static_cast<double>(lab.measured_delay_diff()) / 1e6);
  }
  {
    usecases::HybridLab::Options opts;
    opts.twd_compensation = true;
    usecases::HybridLab lab(opts);
    lab.net().run_for(2 * sim::kSecond);
    const double goodput = lab.run_tcp(4, 10 * sim::kSecond);
    std::printf("with TWD compensation: 4 TCP flows -> %6.1f Mbps aggregated\n",
                goodput);
  }
  return 0;
}
