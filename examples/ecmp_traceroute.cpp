// §4.3 — Multipath-aware traceroute using End.OAMP.
//
// Discovers the hops of an ECMP diamond with classic hop-limit probing, then
// queries each hop's End.OAMP SID for its ECMP nexthop set.
//
//   $ ./ecmp_traceroute
#include <cstdio>

#include "usecases/oamp.h"

using namespace srv6bpf;

int main() {
  usecases::OampLab lab;
  apps::AppMux mux(lab.prober());

  usecases::Traceroute::Options opts;
  opts.target = lab.target();
  opts.prober_addr = lab.prober_addr();
  opts.max_ttl = 6;
  usecases::Traceroute tr(lab.prober(), mux, opts);

  std::printf("traceroute to %s (max %d hops, OAMP-enhanced)\n\n",
              opts.target.to_string().c_str(), opts.max_ttl);
  const auto hops = tr.run(lab.net());

  for (const auto& hop : hops) {
    std::printf("%2d  %-18s", hop.ttl, hop.addr.to_string().c_str());
    if (hop.oamp_answered) {
      std::printf("  [End.OAMP] %zu ECMP nexthop(s):", hop.nexthops.size());
      for (const auto& nh : hop.nexthops)
        std::printf(" %s", nh.to_string().c_str());
    } else if (hop.addr == opts.target) {
      std::printf("  (destination)");
    } else {
      std::printf("  (ICMP fallback only)");
    }
    std::printf("\n");
  }
  return 0;
}
