#include "ebpf/jit_x86.h"

#include <cstring>
#include <vector>

#if defined(__x86_64__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "ebpf/insn.h"

namespace srv6bpf::ebpf {

#if defined(__x86_64__)

NativeCode::~NativeCode() {
  if (pages_ != nullptr) ::munmap(pages_, map_len_);
}

bool native_jit_available() noexcept {
  static const bool ok = [] {
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0) return false;
    void* p = ::mmap(nullptr, static_cast<std::size_t>(page),
                     PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1,
                     0);
    if (p == MAP_FAILED) return false;
    const bool flips =
        ::mprotect(p, static_cast<std::size_t>(page),
                   PROT_READ | PROT_EXEC) == 0;
    ::munmap(p, static_cast<std::size_t>(page));
    return flips;
  }();
  return ok;
}

namespace {

// x86-64 register numbers (low 3 bits go in ModRM, bit 3 in REX).
enum X86Reg {
  XRAX = 0, XRCX = 1, XRDX = 2, XRBX = 3, XRSP = 4, XRBP = 5, XRSI = 6, XRDI = 7,
  XR8 = 8, XR9 = 9, XR10 = 10, XR11 = 11, XR12 = 12, XR13 = 13, XR14 = 14, XR15 = 15
};

// BPF r0..r10 -> hardware registers (the kernel bpf_jit_comp mapping).
// r10 and r11 stay free as scratch; r12 is the executed-op counter.
constexpr int kRegMap[kNumRegs] = {XRAX, XRDI, XRSI, XRDX, XRCX, XR8,
                                   XRBX, XR13, XR14, XR15, XRBP};

// Frame layout below the callee-saved pushes (rsp-relative). The frame is
// 32 or 40 bytes depending on push-count parity so rsp stays 16-byte
// aligned at helper call sites.
//   [rsp + 0]  ExecEnv*            (arg 1, needed at helper call sites)
//   [rsp + 8]  NativeCounters*     (arg 3, flushed in the epilogue)
//   [rsp + 16] helper-call count
//   [rsp + 24] rdx spill for div/mod
constexpr std::int32_t kSlotEnv = 0;
constexpr std::int32_t kSlotCounters = 8;
constexpr std::int32_t kSlotHelperCount = 16;
constexpr std::int32_t kSlotRdxSpill = 24;

class Emitter {
 public:
  std::vector<std::uint8_t> code;

  void u8(std::uint8_t b) { code.push_back(b); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  // REX prefix for a register-register form; emitted only when needed (or
  // forced, e.g. byte ops touching sil/dil).
  void rex(bool w, int reg, int rm, bool force = false) {
    const std::uint8_t b = 0x40 | (w ? 8 : 0) | (((reg >> 3) & 1) << 2) |
                           ((rm >> 3) & 1);
    if (b != 0x40 || force) u8(b);
  }
  void modrm(int mod, int reg, int rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }

  // ---- register-register forms --------------------------------------------
  // op is the /r opcode with reg as source, r/m as destination (ADD 0x01,
  // SUB 0x29, OR 0x09, AND 0x21, XOR 0x31, CMP 0x39, TEST 0x85, MOV 0x89).
  void rr(std::uint8_t op, int src, int dst, bool w) {
    rex(w, src, dst);
    u8(op);
    modrm(3, src, dst);
  }
  void mov_rr(int dst, int src, bool w) { rr(0x89, src, dst, w); }
  // Zeroes the full register (32-bit xor write clears the upper half).
  void zero(int r) { rr(0x31, r, r, false); }

  // ---- register-immediate forms -------------------------------------------
  // 0x81 /ext with a sign-extended imm32 (ADD /0, OR /1, AND /4, SUB /5,
  // XOR /6, CMP /7); uses the short 0x83 form when the immediate fits.
  void ri(int ext, int dst, std::int32_t imm, bool w) {
    rex(w, 0, dst);
    if (imm >= -128 && imm <= 127) {
      u8(0x83);
      modrm(3, ext, dst);
      u8(static_cast<std::uint8_t>(imm));
    } else {
      u8(0x81);
      modrm(3, ext, dst);
      u32(static_cast<std::uint32_t>(imm));
    }
  }
  void test_ri(int dst, std::int32_t imm, bool w) {
    rex(w, 0, dst);
    u8(0xF7);
    modrm(3, 0, dst);
    u32(static_cast<std::uint32_t>(imm));
  }
  void mov_ri32(int dst, std::uint32_t imm) {  // zero-extends
    rex(false, 0, dst);
    u8(0xB8 + (dst & 7));
    u32(imm);
  }
  void mov_ri64_sext(int dst, std::int32_t imm) {
    rex(true, 0, dst);
    u8(0xC7);
    modrm(3, 0, dst);
    u32(static_cast<std::uint32_t>(imm));
  }
  void mov_ri64(int dst, std::uint64_t imm) {
    if (imm <= 0xffffffffull) {
      mov_ri32(dst, static_cast<std::uint32_t>(imm));
    } else if (static_cast<std::int64_t>(imm) ==
               static_cast<std::int32_t>(imm)) {
      mov_ri64_sext(dst, static_cast<std::int32_t>(imm));
    } else {
      rex(true, 0, dst);
      u8(0xB8 + (dst & 7));
      u64(imm);
    }
  }

  // ---- multiply / negate / shifts / div -----------------------------------
  void imul_rr(int dst, int src, bool w) {
    rex(w, dst, src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, dst, src);
  }
  void imul_rri(int dst, std::int32_t imm, bool w) {
    rex(w, dst, dst);
    u8(0x69);
    modrm(3, dst, dst);
    u32(static_cast<std::uint32_t>(imm));
  }
  void neg(int dst, bool w) {
    rex(w, 0, dst);
    u8(0xF7);
    modrm(3, 3, dst);
  }
  // ext: SHL /4, SHR /5, SAR /7. Hardware masks the cl count to the operand
  // width (&63 / &31), which is exactly the eBPF semantics.
  void shift_cl(int ext, int dst, bool w) {
    rex(w, 0, dst);
    u8(0xD3);
    modrm(3, ext, dst);
  }
  void shift_imm(int ext, int dst, std::uint8_t k, bool w) {
    rex(w, 0, dst);
    u8(0xC1);
    modrm(3, ext, dst);
    u8(k);
  }
  void div_r(int r, bool w) {  // unsigned rdx:rax / r
    rex(w, 0, r);
    u8(0xF7);
    modrm(3, 6, r);
  }
  void bswap(int r, bool w) {
    rex(w, 0, r);
    u8(0x0F);
    u8(0xC8 + (r & 7));
  }
  void ror16_imm8(int r, std::uint8_t k) {
    u8(0x66);
    rex(false, 0, r);
    u8(0xC1);
    modrm(3, 1, r);
    u8(k);
  }
  void movzx16_rr(int dst, int src) {
    rex(false, dst, src);
    u8(0x0F);
    u8(0xB7);
    modrm(3, dst, src);
  }

  // ---- memory operands: [base + disp] -------------------------------------
  void mem_prefix(int reg, int base, bool w, bool opsize16, bool force_rex) {
    if (opsize16) u8(0x66);
    rex(w, reg, base, force_rex);
  }
  void mem_modrm(int reg, int base, std::int32_t disp) {
    const bool d8 = disp >= -128 && disp <= 127;
    const int mod = d8 ? 1 : 2;
    if ((base & 7) == XRSP) {
      modrm(mod, reg, XRSP);
      u8(0x24);  // SIB: scale 0, no index, base rsp/r12
    } else {
      modrm(mod, reg, base);
    }
    if (d8)
      u8(static_cast<std::uint8_t>(disp));
    else
      u32(static_cast<std::uint32_t>(disp));
  }
  // MOV r, [base+disp] (w picks 32/64); MOVZX for 8/16-bit loads.
  void load(int size, int dst, int base, std::int32_t disp) {
    mem_prefix(dst, base, size == 8, false, false);
    if (size == 1) {
      u8(0x0F);
      u8(0xB6);
    } else if (size == 2) {
      u8(0x0F);
      u8(0xB7);
    } else {
      u8(0x8B);
    }
    mem_modrm(dst, base, disp);
  }
  void store_reg(int size, int base, std::int32_t disp, int src) {
    // Byte stores from sil/dil/bpl/spl need a REX prefix even without high
    // registers (without it the encoding means ah/ch/dh/bh).
    const bool force = size == 1 && (src & 7) >= 4 && src < 8;
    mem_prefix(src, base, size == 8, size == 2, force);
    u8(size == 1 ? 0x88 : 0x89);
    mem_modrm(src, base, disp);
  }
  void store_imm(int size, int base, std::int32_t disp, std::int32_t imm) {
    mem_prefix(0, base, size == 8, size == 2, false);
    u8(size == 1 ? 0xC6 : 0xC7);
    mem_modrm(0, base, disp);
    if (size == 1)
      u8(static_cast<std::uint8_t>(imm));
    else if (size == 2)
      u16(static_cast<std::uint16_t>(imm));
    else
      u32(static_cast<std::uint32_t>(imm));  // size 8 sign-extends imm32
  }
  void add_mem_reg64(int base, std::int32_t disp, int src) {
    mem_prefix(src, base, true, false, false);
    u8(0x01);
    mem_modrm(src, base, disp);
  }
  void inc_mem64(int base, std::int32_t disp) {
    mem_prefix(0, base, true, false, false);
    u8(0xFF);
    mem_modrm(0, base, disp);
  }

  // ---- control flow -------------------------------------------------------
  void push(int r) {
    if (r >= 8) u8(0x41);
    u8(0x50 + (r & 7));
  }
  void pop(int r) {
    if (r >= 8) u8(0x41);
    u8(0x58 + (r & 7));
  }
  void call_reg(int r) {
    rex(false, 0, r);
    u8(0xFF);
    modrm(3, 2, r);
  }
  void ret() { u8(0xC3); }

  // jcc/jmp with a rel32 placeholder; returns the fixup position.
  std::size_t jcc(std::uint8_t cc) {  // cc = low nibble of 0F 8x
    u8(0x0F);
    u8(0x80 | cc);
    const std::size_t pos = code.size();
    u32(0);
    return pos;
  }
  std::size_t jmp() {
    u8(0xE9);
    const std::size_t pos = code.size();
    u32(0);
    return pos;
  }
  void patch_rel32(std::size_t pos, std::size_t target) {
    const std::int64_t rel = static_cast<std::int64_t>(target) -
                             (static_cast<std::int64_t>(pos) + 4);
    const auto r32 = static_cast<std::uint32_t>(rel);
    std::memcpy(code.data() + pos, &r32, 4);
  }
  void bind_here(std::size_t pos) { patch_rel32(pos, code.size()); }
};

// x86 condition-code nibbles for 0F 8x jcc.
constexpr std::uint8_t CC_E = 0x4, CC_NE = 0x5, CC_A = 0x7, CC_AE = 0x3,
                       CC_B = 0x2, CC_BE = 0x6, CC_G = 0xF, CC_GE = 0xD,
                       CC_L = 0xC, CC_LE = 0xE, CC_Z = 0x4;

// Condition code for a jump op kind; JSET kinds return CC_NE (preceded by
// TEST instead of CMP).
std::uint8_t jump_cc(std::uint16_t kind) {
  switch (kind) {
    case kJeqR: case kJeqI: case kJeq32R: case kJeq32I: return CC_E;
    case kJneR: case kJneI: case kJne32R: case kJne32I: return CC_NE;
    case kJgtR: case kJgtI: case kJgt32R: case kJgt32I: return CC_A;
    case kJgeR: case kJgeI: case kJge32R: case kJge32I: return CC_AE;
    case kJltR: case kJltI: case kJlt32R: case kJlt32I: return CC_B;
    case kJleR: case kJleI: case kJle32R: case kJle32I: return CC_BE;
    case kJsetR: case kJsetI: case kJset32R: case kJset32I: return CC_NE;
    case kJsgtR: case kJsgtI: case kJsgt32R: case kJsgt32I: return CC_G;
    case kJsgeR: case kJsgeI: case kJsge32R: case kJsge32I: return CC_GE;
    case kJsltR: case kJsltI: case kJslt32R: case kJslt32I: return CC_L;
    default: return CC_LE;  // kJsle*
  }
}

// dst <<= (src & mask) with rcx (BPF r4) pressure resolved through r10.
void emit_shift_reg(Emitter& e, int ext, int dst, int src, bool w) {
  if (src == XRCX) {
    if (dst == XRCX) {
      // Value and count are the same register.
      e.mov_rr(XR10, XRCX, true);
      e.shift_cl(ext, XR10, w);
      e.mov_rr(XRCX, XR10, true);
    } else {
      e.shift_cl(ext, dst, w);  // count already in cl
    }
  } else {
    e.mov_rr(XR10, XRCX, true);  // save BPF r4 (or the dst value if dst==rcx)
    e.mov_rr(XRCX, src, true);
    if (dst == XRCX) {
      e.shift_cl(ext, XR10, w);
      e.mov_rr(XRCX, XR10, true);
    } else {
      e.shift_cl(ext, dst, w);
      e.mov_rr(XRCX, XR10, true);
    }
  }
}

// eBPF division semantics: x / 0 == 0, x % 0 == x (mod32 truncates dst).
// x86 DIV uses rdx:rax implicitly and traps on zero, so the divisor is
// snapshotted into r11, zero-tested, and rax/rdx are preserved through r10
// and a frame slot.
void emit_div_mod(Emitter& e, const DecodedInsn& op, bool is64, bool is_mod,
                  bool imm_src) {
  const int dst = kRegMap[op.dst];
  std::size_t zero_fix = 0;
  bool have_zero_path = false;

  if (imm_src) {
    const std::uint64_t divisor =
        is64 ? op.imm64 : static_cast<std::uint32_t>(op.imm64);
    if (divisor == 0) {  // verifier rejects this; kept for decode parity
      if (!is_mod)
        e.zero(dst);
      else if (!is64)
        e.mov_rr(dst, dst, false);  // dst = (u32)dst
      return;
    }
    e.mov_ri64(XR11, divisor);
  } else {
    e.mov_rr(XR11, kRegMap[op.src], is64);  // 32-bit mov truncates the divisor
    e.rr(0x85, XR11, XR11, is64);            // test r11, r11
    zero_fix = e.jcc(CC_Z);
    have_zero_path = true;
  }

  const bool save_rax = dst != XRAX;
  const bool save_rdx = dst != XRDX;
  if (save_rdx) e.store_reg(8, XRSP, kSlotRdxSpill, XRDX);
  if (save_rax) e.mov_rr(XR10, XRAX, true);
  e.mov_rr(XRAX, dst, is64);  // dividend (truncated for the 32-bit forms)
  e.zero(XRDX);
  e.div_r(XR11, is64);
  e.mov_rr(dst, is_mod ? XRDX : XRAX, is64);  // 32-bit mov zero-extends
  if (save_rax) e.mov_rr(XRAX, XR10, true);
  if (save_rdx) e.load(8, XRDX, XRSP, kSlotRdxSpill);

  if (have_zero_path) {
    const std::size_t done = e.jmp();
    e.bind_here(zero_fix);
    if (!is_mod)
      e.zero(dst);
    else if (!is64)
      e.mov_rr(dst, dst, false);
    e.bind_here(done);
  }
}

}  // namespace

std::shared_ptr<const NativeCode> compile_native(const DecodedProgram& prog,
                                                 std::string* error) {
  if (!native_jit_available()) {
    if (error) *error = "native jit: W^X mmap probe failed";
    return nullptr;
  }

  const DecodedInsn* ops = prog.data();
  const std::size_t n = prog.size();

  // Basic blocks start at jump targets; the executed-op accumulator pending
  // in r12 must be flushed before every such label (the fall-through path
  // owns those counts, jumpers must not inherit them) and before every
  // control transfer.
  std::vector<bool> is_target(n, false);
  bool has_calls = false;
  bool used[kNumRegs] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t k = ops[i].kind;
    if (k == kJa || (k >= kJeqR && k <= kJsle32I))
      is_target[static_cast<std::size_t>(ops[i].target)] = true;
    if (k == kCall) has_calls = true;
    used[ops[i].dst] = true;
    used[ops[i].src] = true;
  }

  // Like the kernel JIT, only the callee-saved hardware registers the
  // program actually references are saved/restored; r12 (the executed-op
  // accumulator) is always clobbered. The frame size keeps rsp 16-byte
  // aligned at helper call sites for any parity of the push count.
  std::vector<int> saved;
  if (used[10]) saved.push_back(XRBP);
  if (used[6]) saved.push_back(XRBX);
  saved.push_back(XR12);
  if (used[7]) saved.push_back(XR13);
  if (used[8]) saved.push_back(XR14);
  if (used[9]) saved.push_back(XR15);
  const std::int32_t frame = saved.size() % 2 == 0 ? 40 : 32;

  Emitter e;
  e.code.reserve(64 * n + 128);

  // ---- prologue -----------------------------------------------------------
  // Entry ABI: rdi=ExecEnv*, rsi=ctx, rdx=NativeCounters*, rcx=stack top.
  for (const int r : saved) e.push(r);
  e.ri(5, XRSP, frame, true);                  // sub rsp, frame
  if (has_calls) {
    // Only helper call sites read these two slots.
    e.store_reg(8, XRSP, kSlotEnv, XRDI);
    e.store_imm(8, XRSP, kSlotHelperCount, 0);
  }
  e.store_reg(8, XRSP, kSlotCounters, XRDX);
  if (used[10]) e.mov_rr(XRBP, XRCX, true);    // BPF r10 = stack top
  e.mov_rr(XRDI, XRSI, true);                  // BPF r1 = ctx
  // The remaining BPF registers are deliberately NOT zeroed (like the kernel
  // JIT): the verifier proves no register is read before it is written, so
  // whatever the callee-saved pushes left in them is unobservable. Only the
  // r12 executed-op accumulator needs a defined start.
  e.zero(XR12);

  // ---- body ---------------------------------------------------------------
  std::vector<std::size_t> op_offset(n, 0);
  struct Fixup {
    std::size_t pos;
    std::int32_t target;  // decoded-op index, or -1 for the epilogue
  };
  std::vector<Fixup> fixups;
  std::int32_t pending = 0;  // ops executed since the last r12 flush

  const auto flush = [&] {
    if (pending != 0) e.ri(0, XR12, pending, true);  // add r12, pending
    pending = 0;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (is_target[i]) flush();
    op_offset[i] = e.code.size();
    ++pending;

    const DecodedInsn& op = ops[i];
    const int dst = kRegMap[op.dst];
    const int src = kRegMap[op.src];
    const auto imm32 = static_cast<std::int32_t>(op.imm64);

    switch (op.kind) {
      // ---- ALU, register source (32-bit forms zero-extend via the 32-bit
      // register write) ----
      case kAdd64R: e.rr(0x01, src, dst, true); break;
      case kAdd32R: e.rr(0x01, src, dst, false); break;
      case kSub64R: e.rr(0x29, src, dst, true); break;
      case kSub32R: e.rr(0x29, src, dst, false); break;
      case kOr64R: e.rr(0x09, src, dst, true); break;
      case kOr32R: e.rr(0x09, src, dst, false); break;
      case kAnd64R: e.rr(0x21, src, dst, true); break;
      case kAnd32R: e.rr(0x21, src, dst, false); break;
      case kXor64R: e.rr(0x31, src, dst, true); break;
      case kXor32R: e.rr(0x31, src, dst, false); break;
      case kMov64R: e.mov_rr(dst, src, true); break;
      case kMov32R: e.mov_rr(dst, src, false); break;
      case kMul64R: e.imul_rr(dst, src, true); break;
      case kMul32R: e.imul_rr(dst, src, false); break;
      case kLsh64R: emit_shift_reg(e, 4, dst, src, true); break;
      case kLsh32R: emit_shift_reg(e, 4, dst, src, false); break;
      case kRsh64R: emit_shift_reg(e, 5, dst, src, true); break;
      case kRsh32R: emit_shift_reg(e, 5, dst, src, false); break;
      case kArsh64R: emit_shift_reg(e, 7, dst, src, true); break;
      case kArsh32R: emit_shift_reg(e, 7, dst, src, false); break;
      case kDiv64R: emit_div_mod(e, op, true, false, false); break;
      case kDiv32R: emit_div_mod(e, op, false, false, false); break;
      case kMod64R: emit_div_mod(e, op, true, true, false); break;
      case kMod32R: emit_div_mod(e, op, false, true, false); break;

      // ---- ALU, immediate (imm64 is pre-extended by the decoder; the
      // x86 imm32 forms sign-extend for 64-bit ops, and the 32-bit forms use
      // the truncated low word — both match by construction) ----
      case kAdd64I: e.ri(0, dst, imm32, true); break;
      case kAdd32I: e.ri(0, dst, imm32, false); break;
      case kSub64I: e.ri(5, dst, imm32, true); break;
      case kSub32I: e.ri(5, dst, imm32, false); break;
      case kOr64I: e.ri(1, dst, imm32, true); break;
      case kOr32I: e.ri(1, dst, imm32, false); break;
      case kAnd64I: e.ri(4, dst, imm32, true); break;
      case kAnd32I: e.ri(4, dst, imm32, false); break;
      case kXor64I: e.ri(6, dst, imm32, true); break;
      case kXor32I: e.ri(6, dst, imm32, false); break;
      case kMov64I: e.mov_ri64_sext(dst, imm32); break;
      case kMov32I: e.mov_ri32(dst, static_cast<std::uint32_t>(imm32)); break;
      case kMul64I: e.imul_rri(dst, imm32, true); break;
      case kMul32I: e.imul_rri(dst, imm32, false); break;
      case kLsh64I:
      case kRsh64I:
      case kArsh64I: {
        const auto k = static_cast<std::uint8_t>(op.imm64 & 63);
        const int ext = op.kind == kLsh64I ? 4 : op.kind == kRsh64I ? 5 : 7;
        if (k != 0) e.shift_imm(ext, dst, k, true);
        break;
      }
      case kLsh32I:
      case kRsh32I:
      case kArsh32I: {
        const auto k = static_cast<std::uint8_t>(op.imm64 & 31);
        const int ext = op.kind == kLsh32I ? 4 : op.kind == kRsh32I ? 5 : 7;
        if (k != 0)
          e.shift_imm(ext, dst, k, false);  // 32-bit write zero-extends
        else
          e.mov_rr(dst, dst, false);  // shift by 0 still truncates to u32
        break;
      }
      case kDiv64I: emit_div_mod(e, op, true, false, true); break;
      case kDiv32I: emit_div_mod(e, op, false, false, true); break;
      case kMod64I: emit_div_mod(e, op, true, true, true); break;
      case kMod32I: emit_div_mod(e, op, false, true, true); break;
      case kNeg64: e.neg(dst, true); break;
      case kNeg32: e.neg(dst, false); break;

      // ---- byte swaps (x86-64 is little-endian, so BE swaps and LE
      // truncates; widths 16/32 must clear the upper bits like the engines'
      // uint16/uint32 casts) ----
      case kBe16:
        e.ror16_imm8(dst, 8);
        e.movzx16_rr(dst, dst);
        break;
      case kLe16: e.movzx16_rr(dst, dst); break;
      case kBe32: e.bswap(dst, false); break;
      case kLe32: e.mov_rr(dst, dst, false); break;
      case kBe64: e.bswap(dst, true); break;
      case kLe64: break;

      // ---- memory (unchecked: the verifier proved every access) ----
      case kLd1: e.load(1, dst, src, op.off); break;
      case kLd2: e.load(2, dst, src, op.off); break;
      case kLd4: e.load(4, dst, src, op.off); break;
      case kLd8: e.load(8, dst, src, op.off); break;
      case kSt1R: e.store_reg(1, dst, op.off, src); break;
      case kSt2R: e.store_reg(2, dst, op.off, src); break;
      case kSt4R: e.store_reg(4, dst, op.off, src); break;
      case kSt8R: e.store_reg(8, dst, op.off, src); break;
      case kSt1I: e.store_imm(1, dst, op.off, op.imm); break;
      case kSt2I: e.store_imm(2, dst, op.off, op.imm); break;
      case kSt4I: e.store_imm(4, dst, op.off, op.imm); break;
      case kSt8I: e.store_imm(8, dst, op.off, op.imm); break;

      case kLdImm64: e.mov_ri64(dst, op.imm64); break;

      // ---- jumps ----
      case kJa:
        flush();
        fixups.push_back({e.jmp(), op.target});
        break;

      default: {
        if (op.kind == kCall) {
          // Direct call to the resolved helper. C ABI: the five BPF argument
          // registers shift down one slot and the ExecEnv* becomes arg 1;
          // rax carries the return value straight into BPF r0. R1-R5 are
          // caller-saved in both ABIs, R6-XR9 are callee-saved in both.
          e.inc_mem64(XRSP, kSlotHelperCount);
          e.mov_rr(XR9, XR8, true);    // arg6 = BPF r5
          e.mov_rr(XR8, XRCX, true);   // arg5 = BPF r4
          e.mov_rr(XRCX, XRDX, true);  // arg4 = BPF r3
          e.mov_rr(XRDX, XRSI, true);  // arg3 = BPF r2
          e.mov_rr(XRSI, XRDI, true);  // arg2 = BPF r1
          e.load(8, XRDI, XRSP, kSlotEnv);
          e.mov_ri64(XRAX, reinterpret_cast<std::uint64_t>(*op.fn));
          e.call_reg(XRAX);
          break;
        }
        if (op.kind == kExit) {
          flush();
          fixups.push_back({e.jmp(), -1});
          break;
        }
        // Conditional jump: flush first (ADD clobbers flags), then compare.
        flush();
        const bool is_set = op.kind == kJsetR || op.kind == kJsetI ||
                            op.kind == kJset32R || op.kind == kJset32I;
        const bool is32 = op.kind >= kJeq32R;
        const bool reg_src =
            (op.kind >= kJeqR && op.kind <= kJsleR) ||
            (op.kind >= kJeq32R && op.kind <= kJsle32R);
        // 64-bit immediates are sign-extended from the wire imm, so the
        // sign-extending cmp/test imm32 forms compare the full imm64; the
        // 32-bit forms compare low words only.
        const std::int32_t jimm = is32 ? op.imm : imm32;
        if (is_set) {
          if (reg_src)
            e.rr(0x85, src, dst, !is32);
          else
            e.test_ri(dst, jimm, !is32);
        } else {
          if (reg_src)
            e.rr(0x39, src, dst, !is32);
          else
            e.ri(7, dst, jimm, !is32);
        }
        fixups.push_back({e.jcc(jump_cc(op.kind)), op.target});
        break;
      }
    }
  }

  // ---- epilogue (shared by every exit) ------------------------------------
  const std::size_t epilogue = e.code.size();
  e.load(8, XR11, XRSP, kSlotCounters);
  e.add_mem_reg64(XR11, 0, XR12);  // counters->insns += r12
  if (has_calls) {
    e.load(8, XR10, XRSP, kSlotHelperCount);
    e.add_mem_reg64(XR11, 8, XR10);  // counters->helper_calls += frame slot
  }
  e.ri(0, XRSP, frame, true);
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) e.pop(*it);
  e.ret();

  for (const Fixup& f : fixups)
    e.patch_rel32(f.pos, f.target < 0
                             ? epilogue
                             : op_offset[static_cast<std::size_t>(f.target)]);

  // ---- map W, copy, flip to X ---------------------------------------------
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t psz = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t len = (e.code.size() + psz - 1) / psz * psz;
  void* mem = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    if (error) *error = "native jit: mmap failed";
    return nullptr;
  }
  std::memcpy(mem, e.code.data(), e.code.size());
  if (::mprotect(mem, len, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, len);
    if (error) *error = "native jit: mprotect(RX) failed";
    return nullptr;
  }

  auto out = std::shared_ptr<NativeCode>(new NativeCode());
  out->pages_ = mem;
  out->map_len_ = len;
  out->code_size_ = e.code.size();
  out->entry_ = reinterpret_cast<NativeCode::Entry>(mem);
  out->has_calls_ = has_calls;
  return out;
}

#else  // !__x86_64__

NativeCode::~NativeCode() = default;

bool native_jit_available() noexcept { return false; }

std::shared_ptr<const NativeCode> compile_native(const DecodedProgram&,
                                                 std::string* error) {
  if (error) *error = "native jit: unsupported architecture";
  return nullptr;
}

#endif

}  // namespace srv6bpf::ebpf
