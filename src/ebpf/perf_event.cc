#include "ebpf/perf_event.h"

namespace srv6bpf::ebpf {

bool PerfEventBuffer::push(std::uint64_t time_ns,
                           std::span<const std::uint8_t> data) {
  if (records_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  records_.push_back({time_ns, {data.begin(), data.end()}});
  ++produced_;
  return true;
}

std::optional<PerfRecord> PerfEventBuffer::poll() {
  if (records_.empty()) return std::nullopt;
  PerfRecord r = std::move(records_.front());
  records_.pop_front();
  return r;
}

std::uint32_t create_perf_event_array(MapRegistry& reg, const std::string& name,
                                      std::size_t capacity) {
  MapDef def;
  def.type = MapType::kPerfEventArray;
  def.key_size = 4;
  def.value_size = 4;
  def.max_entries = 1;
  def.name = name;
  return reg.create_with(std::make_unique<PerfEventArrayMap>(def, capacity));
}

}  // namespace srv6bpf::ebpf
