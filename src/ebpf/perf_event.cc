#include "ebpf/perf_event.h"

namespace srv6bpf::ebpf {

bool PerfEventBuffer::push(std::uint64_t time_ns,
                           std::span<const std::uint8_t> data,
                           std::uint32_t cpu) {
  if (cpu >= kMaxCpus) cpu = kMaxCpus - 1;  // clamp out-of-model producers
  if (rings_.size() <= cpu) rings_.resize(cpu + 1);
  auto& ring = rings_[cpu];
  if (ring.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  ring.push_back({time_ns, cpu, {data.begin(), data.end()}});
  ++produced_;
  return true;
}

std::optional<PerfRecord> PerfEventBuffer::poll() {
  for (auto& ring : rings_) {  // rings_ is indexed by cpu: merge in id order
    if (ring.empty()) continue;
    PerfRecord r = std::move(ring.front());
    ring.pop_front();
    return r;
  }
  return std::nullopt;
}

std::uint32_t create_perf_event_array(MapRegistry& reg, const std::string& name,
                                      std::size_t capacity) {
  MapDef def;
  def.type = MapType::kPerfEventArray;
  def.key_size = 4;
  def.value_size = 4;
  def.max_entries = 1;
  def.name = name;
  return reg.create_with(std::make_unique<PerfEventArrayMap>(def, capacity));
}

}  // namespace srv6bpf::ebpf
