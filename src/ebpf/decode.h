// Pre-decoded program representation shared by both execution engines.
//
// At load time (after verification) the raw Insn stream is translated once
// into a dense DecodedInsn array:
//   * operand kinds (reg vs. immediate, width) are folded into the op kind;
//   * immediates are sign- or zero-extended into a materialised imm64;
//   * register indices are validated once, never again at run time;
//   * ld_imm64 pairs are fused into a single op;
//   * helper calls are resolved to direct HelperFn pointers;
//   * jump offsets are rewritten as absolute decoded-pc targets.
//
// The JIT engine (ebpf/jit.h) runs this form unchecked, trusting the
// verifier; the interpreter (ebpf/interp.h) runs the same form with runtime
// memory bounds checks and an amortised step budget. This mirrors the Linux
// kernel split between the eBPF JIT output and the ___bpf_prog_run
// computed-goto core: both consume a decode-once representation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

// Every decoded op kind. The X-macro keeps the enum, the interpreter's
// computed-goto label table and the JIT's switch in lockstep: all three are
// generated from this single list, in this order.
//
// Naming: <op><width><operand>, R = register source, I = immediate folded
// into imm64 at decode time.
#define SRV6BPF_OPKIND_LIST(X)                                               \
  /* 64-bit ALU, register source */                                         \
  X(kAdd64R) X(kSub64R) X(kMul64R) X(kDiv64R) X(kMod64R) X(kOr64R)          \
  X(kAnd64R) X(kXor64R) X(kMov64R) X(kLsh64R) X(kRsh64R) X(kArsh64R)        \
  /* 64-bit ALU, immediate */                                               \
  X(kAdd64I) X(kSub64I) X(kMul64I) X(kDiv64I) X(kMod64I) X(kOr64I)          \
  X(kAnd64I) X(kXor64I) X(kMov64I) X(kLsh64I) X(kRsh64I) X(kArsh64I)        \
  X(kNeg64)                                                                 \
  /* 32-bit ALU, register source */                                         \
  X(kAdd32R) X(kSub32R) X(kMul32R) X(kDiv32R) X(kMod32R) X(kOr32R)          \
  X(kAnd32R) X(kXor32R) X(kMov32R) X(kLsh32R) X(kRsh32R) X(kArsh32R)        \
  /* 32-bit ALU, immediate */                                               \
  X(kAdd32I) X(kSub32I) X(kMul32I) X(kDiv32I) X(kMod32I) X(kOr32I)          \
  X(kAnd32I) X(kXor32I) X(kMov32I) X(kLsh32I) X(kRsh32I) X(kArsh32I)        \
  X(kNeg32)                                                                 \
  /* Byte swaps */                                                          \
  X(kBe16) X(kBe32) X(kBe64) X(kLe16) X(kLe32) X(kLe64)                     \
  /* Memory */                                                              \
  X(kLd1) X(kLd2) X(kLd4) X(kLd8)                                           \
  X(kSt1R) X(kSt2R) X(kSt4R) X(kSt8R)                                       \
  X(kSt1I) X(kSt2I) X(kSt4I) X(kSt8I)                                       \
  /* 64-bit immediate / map pointer (fused ld_imm64 pair) */                \
  X(kLdImm64)                                                               \
  /* Jumps (R = register comparand, I = materialised immediate) */          \
  X(kJa)                                                                    \
  X(kJeqR) X(kJneR) X(kJgtR) X(kJgeR) X(kJltR) X(kJleR) X(kJsetR)           \
  X(kJsgtR) X(kJsgeR) X(kJsltR) X(kJsleR)                                   \
  X(kJeqI) X(kJneI) X(kJgtI) X(kJgeI) X(kJltI) X(kJleI) X(kJsetI)           \
  X(kJsgtI) X(kJsgeI) X(kJsltI) X(kJsleI)                                   \
  X(kJeq32R) X(kJne32R) X(kJgt32R) X(kJge32R) X(kJlt32R) X(kJle32R)         \
  X(kJset32R) X(kJsgt32R) X(kJsge32R) X(kJslt32R) X(kJsle32R)               \
  X(kJeq32I) X(kJne32I) X(kJgt32I) X(kJge32I) X(kJlt32I) X(kJle32I)         \
  X(kJset32I) X(kJsgt32I) X(kJsge32I) X(kJslt32I) X(kJsle32I)               \
  /* Calls and exit */                                                      \
  X(kCall) X(kExit)

enum OpKind : std::uint16_t {
#define SRV6BPF_OPKIND_ENUM(name) name,
  SRV6BPF_OPKIND_LIST(SRV6BPF_OPKIND_ENUM)
#undef SRV6BPF_OPKIND_ENUM
  kNumOpKinds
};

// One decoded op. Jumps carry absolute op indices in `target`; ALU/JMP
// immediates are pre-extended into imm64 (64-bit ops sign-extend, 32-bit ops
// zero-extend after truncation, exactly the kernel semantics).
struct DecodedInsn {
  std::uint16_t kind = 0;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::int16_t off = 0;
  std::int32_t imm = 0;
  std::int32_t target = 0;       // absolute successor for taken jumps
  std::uint64_t imm64 = 0;       // materialised 64-bit immediate
  const HelperFn* fn = nullptr;  // resolved helper for calls
};

// A decode-once program. Immutable after construction; shared (via
// CompiledProgram) between the threaded interpreter and the JIT engine.
class DecodedProgram {
 public:
  const DecodedInsn* data() const noexcept { return ops_.data(); }
  std::size_t size() const noexcept { return ops_.size(); }
  const std::vector<DecodedInsn>& ops() const noexcept { return ops_; }

  // Human-readable listing, one op per line (ebpf/disasm.h).
  std::string dump() const;

 private:
  friend std::shared_ptr<const DecodedProgram> decode_program(
      const std::vector<Insn>&, const HelperRegistry*);
  std::vector<DecodedInsn> ops_;
};

// Translates a raw instruction stream. Performs the structural validation
// both engines rely on (register ranges, jump targets inside the program and
// not into ld_imm64 pairs, no fall-through past the end, resolvable helpers)
// and throws std::logic_error on violation. Programs that passed the
// verifier always decode; the checks exist so that a decoded program is
// *fetch-safe* even if handed an unverified stream (memory safety of the
// program's own loads/stores is then the interpreter's runtime checks or the
// verifier's proof, as before).
std::shared_ptr<const DecodedProgram> decode_program(
    const std::vector<Insn>& insns, const HelperRegistry* helpers);

inline std::shared_ptr<const DecodedProgram> decode_program(
    const Program& prog, const HelperRegistry* helpers) {
  return decode_program(prog.insns(), helpers);
}

}  // namespace srv6bpf::ebpf
