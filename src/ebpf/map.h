// eBPF maps: persistent key/value stores shared between eBPF programs and
// "user space" (in this repository, the applications and daemons in
// src/apps). Mirrors the kernel map model: fixed key/value sizes declared at
// creation, lookups return stable pointers into the map's storage, updates
// copy the caller's buffer in.
//
// Thread/context model: maps are not synchronized — the simulator is
// single-threaded, and the multi-core Node's CpuContexts interleave on the
// event loop rather than race. Cross-context isolation is data layout, not
// locking: per-CPU map types give each context its own value slot (the
// lookup_cpu/update_cpu family below), everything else is shared state
// exactly as in the kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace srv6bpf::ebpf {

// Upper bound on simulated CPU contexts, the num_possible_cpus() analogue:
// per-CPU maps preallocate one value slot per possible CPU, and the
// multi-core Node clamps its context count to it.
inline constexpr std::uint32_t kMaxCpus = 16;

enum class MapType {
  kArray,
  kHash,
  kPerCpuArray,     // BPF_MAP_TYPE_PERCPU_ARRAY: one value slot per CPU
  kPerCpuHash,      // BPF_MAP_TYPE_PERCPU_HASH
  kLpmTrie,
  kPerfEventArray,  // bpf_perf_event_output target (see ebpf/perf_event.h)
};

// Update flags (include/uapi/linux/bpf.h).
inline constexpr std::uint64_t BPF_ANY = 0;      // create or update
inline constexpr std::uint64_t BPF_NOEXIST = 1;  // create only
inline constexpr std::uint64_t BPF_EXIST = 2;    // update only

// Errors follow the kernel convention of negative errno values.
inline constexpr int kOk = 0;
inline constexpr int kErrNoEnt = -2;    // -ENOENT
inline constexpr int kErrInval = -22;   // -EINVAL
inline constexpr int kErrNoMem = -12;   // -ENOMEM (injected allocation failure)
inline constexpr int kErrExist = -17;   // -EEXIST
inline constexpr int kErrNoSpace = -28; // -ENOSPC
inline constexpr int kErrFault = -14;   // -EFAULT

struct MapDef {
  MapType type = MapType::kArray;
  std::uint32_t key_size = 4;
  std::uint32_t value_size = 8;
  std::uint32_t max_entries = 1;
  std::string name;
};

class Map {
 public:
  explicit Map(MapDef def) : def_(std::move(def)) {}
  virtual ~Map() = default;

  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  const MapDef& def() const noexcept { return def_; }
  std::uint32_t key_size() const noexcept { return def_.key_size; }
  std::uint32_t value_size() const noexcept { return def_.value_size; }
  std::uint32_t max_entries() const noexcept { return def_.max_entries; }

  // Returns a pointer to the stored value (stable until the entry is deleted
  // or the map destroyed — BPF programs hold these across helper calls), or
  // nullptr if the key is absent. The eBPF verifier forces programs to
  // null-check this before dereferencing. Key interpretation and cost are
  // per-type: array O(1) index, hash O(log n) ordered-map walk (kept ordered
  // for deterministic dumps), LPM trie O(key bytes) node hops through the
  // multibit-stride engine (util/lpm_trie.h) with longest-prefix-match
  // semantics (the caller's prefixlen field is ignored on lookup).
  virtual std::uint8_t* lookup(std::span<const std::uint8_t> key) = 0;

  // Copies `value` in, honouring BPF_ANY/BPF_NOEXIST/BPF_EXIST. Returns 0 or
  // a negative errno (kErr*). Existing entries are updated in place, so
  // previously returned lookup pointers observe the new bytes.
  //
  // Non-virtual wrapper: consumes one armed fault (arm_update_fault) before
  // reaching the type's do_update, so every program- and user-space update
  // path sees injected -ENOMEM-style failures uniformly. Programs that
  // ignore a failed update simply lose the write (a dropped counter bump,
  // a stale cache entry) — the graceful-degradation surface the fault
  // injector probes.
  int update(std::span<const std::uint8_t> key,
             std::span<const std::uint8_t> value, std::uint64_t flags) {
    if (const int err = take_fault()) return err;
    return do_update(key, value, flags);
  }

  // Returns 0 or -ENOENT (-EINVAL for arrays, whose entries cannot die).
  virtual int erase(std::span<const std::uint8_t> key) = 0;

  // Number of live entries (arrays always report max_entries).
  virtual std::size_t size() const = 0;

  // ---- Per-CPU view ---------------------------------------------------------
  // For per-CPU map types, the value a program running on `cpu` sees; for
  // everything else `cpu` is ignored and these fall back to the shared value.
  // The BPF-side map helpers route through these with ExecEnv::cpu_id, which
  // is how BPF_MAP_TYPE_PERCPU_* maps stay contention-free across the
  // multi-core Node's contexts.
  virtual std::uint8_t* lookup_cpu(std::span<const std::uint8_t> key,
                                   std::uint32_t cpu) {
    (void)cpu;
    return lookup(key);
  }
  // Same fault-consuming wrapper as update(); the per-CPU write path shares
  // the armed-fault budget, matching the kernel where both syscalls hit the
  // same allocator.
  int update_cpu(std::span<const std::uint8_t> key,
                 std::span<const std::uint8_t> value, std::uint64_t flags,
                 std::uint32_t cpu) {
    if (const int err = take_fault()) return err;
    return do_update_cpu(key, value, flags, cpu);
  }
  virtual bool per_cpu() const noexcept { return false; }

  // ---- Fault injection & crash teardown -------------------------------------
  // Arms the next `count` updates (update/update_cpu, any caller) to fail
  // with `err` (typically kErrNoMem) without touching the map. Count-based
  // rather than probabilistic so a (seed, schedule) pair replays exactly.
  void arm_update_fault(std::uint64_t count, int err = kErrNoMem) noexcept {
    armed_faults_ = count;
    fault_err_ = err;
  }
  std::uint64_t armed_update_faults() const noexcept { return armed_faults_; }
  // Injected-failure count since construction (observability for tests and
  // the chaos soak's accounting).
  std::uint64_t update_faults_hit() const noexcept { return faults_hit_; }

  // Drops every entry's *contents* while keeping the definition — what a
  // node crash does to pinned-map state in this model (the map object, like
  // the program text, represents on-disk artefacts that survive; the
  // contents are kernel memory that does not). Default: no-op for types
  // with no wipeable state.
  virtual void reset_contents() {}

  // User-space-style summed read of a u64 counter: adds the value across all
  // possible CPUs for per-CPU maps (the bpf_map_lookup_elem-from-userspace
  // semantics), or reads the single shared value otherwise. Returns 0 when
  // the key is absent or value_size != 8.
  std::uint64_t sum_u64(std::span<const std::uint8_t> key);

  // ---- Typed convenience accessors for user-space-side code -----------------
  template <typename K, typename V>
  int put(const K& key, const V& value, std::uint64_t flags = BPF_ANY) {
    static_assert(std::is_trivially_copyable_v<K> &&
                  std::is_trivially_copyable_v<V>);
    return update({reinterpret_cast<const std::uint8_t*>(&key), sizeof key},
                  {reinterpret_cast<const std::uint8_t*>(&value), sizeof value},
                  flags);
  }
  template <typename K>
  std::uint8_t* find(const K& key) {
    static_assert(std::is_trivially_copyable_v<K>);
    return lookup({reinterpret_cast<const std::uint8_t*>(&key), sizeof key});
  }
  template <typename K>
  std::uint8_t* find_cpu(const K& key, std::uint32_t cpu) {
    static_assert(std::is_trivially_copyable_v<K>);
    return lookup_cpu({reinterpret_cast<const std::uint8_t*>(&key), sizeof key},
                      cpu);
  }
  template <typename K>
  std::uint64_t sum_u64(const K& key) {
    static_assert(std::is_trivially_copyable_v<K>);
    return sum_u64(
        std::span<const std::uint8_t>{
            reinterpret_cast<const std::uint8_t*>(&key), sizeof key});
  }

 protected:
  // Type-specific write paths, reached only through the fault-consuming
  // wrappers above.
  virtual int do_update(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> value,
                        std::uint64_t flags) = 0;
  virtual int do_update_cpu(std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> value,
                            std::uint64_t flags, std::uint32_t cpu) {
    (void)cpu;
    return do_update(key, value, flags);
  }

  bool key_ok(std::span<const std::uint8_t> key) const noexcept {
    return key.size() == def_.key_size;
  }
  bool value_ok(std::span<const std::uint8_t> value) const noexcept {
    return value.size() == def_.value_size;
  }

 private:
  int take_fault() noexcept {
    if (armed_faults_ == 0) return kOk;
    --armed_faults_;
    ++faults_hit_;
    return fault_err_;
  }

  MapDef def_;
  std::uint64_t armed_faults_ = 0;
  std::uint64_t faults_hit_ = 0;
  int fault_err_ = kErrNoMem;
};

std::unique_ptr<Map> make_map(const MapDef& def);

// Owns maps and hands out the small integer ids that LD_IMM64/PSEUDO_MAP_FD
// instructions embed (the userspace-fd analogue).
class MapRegistry {
 public:
  // Creates a map and returns its id (ids start at 1; 0 means "no map").
  std::uint32_t create(const MapDef& def);
  // Registers an externally constructed map (e.g. PerfEventArrayMap with a
  // custom ring capacity) and returns its id.
  std::uint32_t create_with(std::unique_ptr<Map> map);
  // nullptr for unknown ids.
  Map* get(std::uint32_t id) noexcept;
  const Map* get(std::uint32_t id) const noexcept;
  std::size_t count() const noexcept { return maps_.size(); }

 private:
  std::vector<std::unique_ptr<Map>> maps_;
};

}  // namespace srv6bpf::ebpf
