// BPF_MAP_TYPE_PERCPU_ARRAY / BPF_MAP_TYPE_PERCPU_HASH.
//
// Each key owns kMaxCpus value slots. A program running on CPU context `c`
// (ExecEnv::cpu_id, set by the multi-core Node) reads and writes slot `c`
// only, so counters kept by End.BPF/LWT programs never race across contexts
// — the reason the kernel grew these types, and the reason the multi-core
// Node model needs them. User space reads per-CPU slots via lookup_cpu and
// sums counters via Map::sum_u64.
#include <cstring>

#include "ebpf/map_impl.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {

std::uint64_t Map::sum_u64(std::span<const std::uint8_t> key) {
  if (value_size() != 8) return 0;
  const std::uint32_t ncpu = per_cpu() ? kMaxCpus : 1;
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < ncpu; ++c) {
    const std::uint8_t* v = lookup_cpu(key, c);
    if (v == nullptr) return total;
    std::uint64_t x;
    std::memcpy(&x, v, 8);
    total += x;
  }
  return total;
}

// ---- PerCpuArrayMap ---------------------------------------------------------

PerCpuArrayMap::PerCpuArrayMap(const MapDef& def) : Map(def) {
  storage_.assign(static_cast<std::size_t>(kMaxCpus) * def.max_entries *
                      def.value_size,
                  0);
}

std::uint8_t* PerCpuArrayMap::lookup_cpu(std::span<const std::uint8_t> key,
                                         std::uint32_t cpu) {
  if (!key_ok(key) || cpu >= kMaxCpus) return nullptr;
  const std::uint32_t index = load_unaligned<std::uint32_t>(key.data());
  if (index >= max_entries()) return nullptr;
  return slot(cpu, index);
}

int PerCpuArrayMap::do_update(std::span<const std::uint8_t> key,
                              std::span<const std::uint8_t> value,
                              std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  if (flags == BPF_NOEXIST) return kErrExist;  // array entries always exist
  if (flags > BPF_EXIST) return kErrInval;
  const std::uint32_t index = load_unaligned<std::uint32_t>(key.data());
  if (index >= max_entries()) return kErrNoEnt;
  for (std::uint32_t c = 0; c < kMaxCpus; ++c)
    std::memcpy(slot(c, index), value.data(), value.size());
  return kOk;
}

int PerCpuArrayMap::do_update_cpu(std::span<const std::uint8_t> key,
                                  std::span<const std::uint8_t> value,
                                  std::uint64_t flags, std::uint32_t cpu) {
  if (!key_ok(key) || !value_ok(value) || cpu >= kMaxCpus) return kErrInval;
  if (flags == BPF_NOEXIST) return kErrExist;
  if (flags > BPF_EXIST) return kErrInval;
  const std::uint32_t index = load_unaligned<std::uint32_t>(key.data());
  if (index >= max_entries()) return kErrNoEnt;
  std::memcpy(slot(cpu, index), value.data(), value.size());
  return kOk;
}

int PerCpuArrayMap::erase(std::span<const std::uint8_t>) {
  return kErrInval;  // array entries cannot be deleted (kernel behaviour)
}

// ---- PerCpuHashMap ----------------------------------------------------------

std::uint8_t* PerCpuHashMap::lookup_cpu(std::span<const std::uint8_t> key,
                                        std::uint32_t cpu) {
  if (!key_ok(key) || cpu >= kMaxCpus) return nullptr;
  auto it = entries_.find(std::vector<std::uint8_t>(key.begin(), key.end()));
  if (it == entries_.end()) return nullptr;
  return it->second.get() + static_cast<std::size_t>(cpu) * value_size();
}

std::uint8_t* PerCpuHashMap::upsert(std::span<const std::uint8_t> key,
                                    std::uint64_t flags, int& rc) {
  if (flags > BPF_EXIST) {
    rc = kErrInval;
    return nullptr;
  }
  std::vector<std::uint8_t> k(key.begin(), key.end());
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    if (flags == BPF_NOEXIST) {
      rc = kErrExist;
      return nullptr;
    }
    return it->second.get();
  }
  if (flags == BPF_EXIST) {
    rc = kErrNoEnt;
    return nullptr;
  }
  if (entries_.size() >= max_entries()) {
    rc = kErrNoSpace;
    return nullptr;
  }
  const std::size_t bytes = static_cast<std::size_t>(kMaxCpus) * value_size();
  auto buf = std::make_unique<std::uint8_t[]>(bytes);
  std::memset(buf.get(), 0, bytes);  // other CPUs' slots start at zero
  std::uint8_t* raw = buf.get();
  entries_.emplace(std::move(k), std::move(buf));
  return raw;
}

int PerCpuHashMap::do_update(std::span<const std::uint8_t> key,
                             std::span<const std::uint8_t> value,
                             std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  int rc = kOk;
  std::uint8_t* buf = upsert(key, flags, rc);
  if (buf == nullptr) return rc;
  for (std::uint32_t c = 0; c < kMaxCpus; ++c)
    std::memcpy(buf + static_cast<std::size_t>(c) * value_size(), value.data(),
                value.size());
  return kOk;
}

int PerCpuHashMap::do_update_cpu(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> value,
                                 std::uint64_t flags, std::uint32_t cpu) {
  if (!key_ok(key) || !value_ok(value) || cpu >= kMaxCpus) return kErrInval;
  int rc = kOk;
  std::uint8_t* buf = upsert(key, flags, rc);
  if (buf == nullptr) return rc;
  std::memcpy(buf + static_cast<std::size_t>(cpu) * value_size(), value.data(),
              value.size());
  return kOk;
}

int PerCpuHashMap::erase(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return kErrInval;
  return entries_.erase(std::vector<std::uint8_t>(key.begin(), key.end()))
             ? kOk
             : kErrNoEnt;
}

}  // namespace srv6bpf::ebpf
