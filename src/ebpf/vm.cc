#include "ebpf/vm.h"

#include <cstdio>
#include <cstdlib>

namespace srv6bpf::ebpf {

bool BpfSystem::log_loads_default() noexcept {
  const char* v = std::getenv("SRV6BPF_LOG_LOADS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

BpfSystem::LoadResult BpfSystem::load(std::string name, ProgType type,
                                      std::vector<Insn> insns,
                                      std::size_t sloc_hint) {
  Program prog(std::move(name), type, std::move(insns));
  prog.set_sloc_hint(sloc_hint);

  Verifier verifier(&maps_, &helpers_);
  LoadResult result;
  result.verify = verifier.verify(prog);
  if (!result.verify.ok) return result;

  prog.set_verified();
  // Decode once (jump targets, fused ld_imm64, resolved helpers), then emit
  // native machine code where the host supports it; the compiled form
  // carries the shared decoded program for every engine.
  Jit jit(&helpers_);
  auto compiled = jit.compile(prog);
  const EngineKind resolved = engine_ == EngineKind::kNative &&
                                      !compiled->has_native()
                                  ? EngineKind::kUnchecked
                                  : engine_;
  if (log_loads_) {
    std::fprintf(stderr, "bpf: loaded '%s' (%zu ops) engine=%s%s\n",
                 prog.name().c_str(), compiled->op_count(),
                 engine_name(resolved),
                 compiled->has_native()
                     ? (" native_code=" +
                        std::to_string(compiled->native_code_size()) + "B")
                           .c_str()
                     : "");
  }
  result.prog = std::make_shared<LoadedProgram>(std::move(prog),
                                                std::move(compiled), resolved);
  return result;
}

void BpfSystem::bind_env(ExecEnv& env) const {
  if (env.maps == nullptr) env.maps = const_cast<MapRegistry*>(&maps_);
  if (env.helpers == nullptr)
    env.helpers = const_cast<HelperRegistry*>(&helpers_);
}

ExecResult BpfSystem::run(const LoadedProgram& prog, ExecEnv& env,
                          std::uint64_t ctx) const {
  // Hot path: resolve the compiled form and (for kNative) the code object
  // exactly once — every extra shared_ptr chase here is measurable on the
  // shortest §3.2 programs.
  bind_env(env);
  const CompiledProgram& c = prog.compiled();
  switch (engine_) {
    case EngineKind::kNative:
      if (const NativeCode* nc = c.native()) return nc->run(env, ctx);
      [[fallthrough]];  // no emitted code: degrade to the unchecked engine
    case EngineKind::kUnchecked:
      return c.run(env, ctx);
    case EngineKind::kInterp:
      return interp_.run(c.decoded(), env, ctx);
    case EngineKind::kInterpBaseline:
      return interp_.run(prog.program(), env, ctx);
  }
  return c.run(env, ctx);
}

ExecResult BpfSystem::run_native(const LoadedProgram& prog, ExecEnv& env,
                                 std::uint64_t ctx) const {
  bind_env(env);
  const CompiledProgram& c = prog.compiled();
  if (const NativeCode* nc = c.native()) return nc->run(env, ctx);
  return c.run(env, ctx);
}

ExecResult BpfSystem::run_unchecked(const LoadedProgram& prog, ExecEnv& env,
                                    std::uint64_t ctx) const {
  bind_env(env);
  return prog.compiled().run(env, ctx);
}

ExecResult BpfSystem::run_interpreted(const LoadedProgram& prog, ExecEnv& env,
                                      std::uint64_t ctx) const {
  bind_env(env);
  return interp_.run(prog.compiled().decoded(), env, ctx);
}

ExecResult BpfSystem::run_interp_baseline(const LoadedProgram& prog,
                                          ExecEnv& env,
                                          std::uint64_t ctx) const {
  bind_env(env);
  return interp_.run(prog.program(), env, ctx);
}

void LoadedProgram::run_burst(
    const BpfSystem& sys, ExecEnv& env, std::span<BurstInvocation> batch,
    util::FunctionRef<void(std::size_t)> prep) const {
  if (batch.empty()) return;
  // Engine choice and env binding are loop-invariant: pay them once per
  // burst instead of once per packet.
  sys.bind_env(env);
  switch (sys.engine_for(*this)) {
    case EngineKind::kNative: {
      // engine_for() only reports kNative when machine code exists.
      const NativeCode* nc = compiled().native();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = nc->run(env, batch[i].ctx);
      }
      return;
    }
    case EngineKind::kUnchecked:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = compiled().run(env, batch[i].ctx);
      }
      return;
    case EngineKind::kInterp:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = sys.interp_.run(compiled().decoded(), env,
                                          batch[i].ctx);
      }
      return;
    case EngineKind::kInterpBaseline:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = sys.interp_.run(program(), env, batch[i].ctx);
      }
      return;
  }
}

}  // namespace srv6bpf::ebpf
