#include "ebpf/vm.h"

namespace srv6bpf::ebpf {

BpfSystem::LoadResult BpfSystem::load(std::string name, ProgType type,
                                      std::vector<Insn> insns,
                                      std::size_t sloc_hint) {
  Program prog(std::move(name), type, std::move(insns));
  prog.set_sloc_hint(sloc_hint);

  Verifier verifier(&maps_, &helpers_);
  LoadResult result;
  result.verify = verifier.verify(prog);
  if (!result.verify.ok) return result;

  prog.set_verified();
  // Decode once (jump targets, fused ld_imm64, resolved helpers); the
  // compiled form carries the shared decoded program for both engines.
  Jit jit(&helpers_);
  auto compiled = jit.compile(prog);
  result.prog =
      std::make_shared<LoadedProgram>(std::move(prog), std::move(compiled));
  return result;
}

void BpfSystem::bind_env(ExecEnv& env) const {
  if (env.maps == nullptr) env.maps = const_cast<MapRegistry*>(&maps_);
  if (env.helpers == nullptr)
    env.helpers = const_cast<HelperRegistry*>(&helpers_);
}

ExecResult BpfSystem::run(const LoadedProgram& prog, ExecEnv& env,
                          std::uint64_t ctx) const {
  switch (engine_) {
    case EngineKind::kJit: return run_jit(prog, env, ctx);
    case EngineKind::kInterp: return run_interpreted(prog, env, ctx);
    case EngineKind::kInterpBaseline:
      return run_interp_baseline(prog, env, ctx);
  }
  return run_jit(prog, env, ctx);
}

ExecResult BpfSystem::run_interpreted(const LoadedProgram& prog, ExecEnv& env,
                                      std::uint64_t ctx) const {
  bind_env(env);
  return interp_.run(prog.compiled().decoded(), env, ctx);
}

ExecResult BpfSystem::run_interp_baseline(const LoadedProgram& prog,
                                          ExecEnv& env,
                                          std::uint64_t ctx) const {
  bind_env(env);
  return interp_.run(prog.program(), env, ctx);
}

ExecResult BpfSystem::run_jit(const LoadedProgram& prog, ExecEnv& env,
                              std::uint64_t ctx) const {
  bind_env(env);
  return prog.compiled().run(env, ctx);
}

void LoadedProgram::run_burst(
    const BpfSystem& sys, ExecEnv& env, std::span<BurstInvocation> batch,
    util::FunctionRef<void(std::size_t)> prep) const {
  if (batch.empty()) return;
  // Engine choice and env binding are loop-invariant: pay them once per
  // burst instead of once per packet.
  sys.bind_env(env);
  switch (sys.engine()) {
    case EngineKind::kJit:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = compiled().run(env, batch[i].ctx);
      }
      return;
    case EngineKind::kInterp:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = sys.interp_.run(compiled().decoded(), env,
                                          batch[i].ctx);
      }
      return;
    case EngineKind::kInterpBaseline:
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (prep) prep(i);
        batch[i].result = sys.interp_.run(program(), env, batch[i].ctx);
      }
      return;
  }
}

}  // namespace srv6bpf::ebpf
