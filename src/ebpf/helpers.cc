#include "ebpf/helpers.h"

#include <cstdio>
#include <cstring>
#include <span>

#include "ebpf/map.h"
#include "ebpf/perf_event.h"
#include "ebpf/skb.h"

namespace srv6bpf::ebpf {

void HelperRegistry::register_helper(std::int32_t id, HelperProto proto,
                                     HelperFn fn) {
  helpers_[id] = Entry{std::move(proto), std::move(fn)};
}

const HelperProto* HelperRegistry::proto(std::int32_t id) const noexcept {
  auto it = helpers_.find(id);
  return it == helpers_.end() ? nullptr : &it->second.proto;
}

const HelperFn* HelperRegistry::fn(std::int32_t id) const noexcept {
  auto it = helpers_.find(id);
  return it == helpers_.end() ? nullptr : &it->second.fn;
}

namespace {

Map* map_from_arg(ExecEnv& env, std::uint64_t arg) {
  // At runtime a CONST_MAP_PTR argument carries the map id (the verifier
  // guarantees it originates from a ld_map instruction).
  return env.maps ? env.maps->get(static_cast<std::uint32_t>(arg)) : nullptr;
}

std::uint64_t do_map_lookup(ExecEnv& env, std::uint64_t map_arg,
                            std::uint64_t key, std::uint64_t, std::uint64_t,
                            std::uint64_t) {
  Map* map = map_from_arg(env, map_arg);
  if (map == nullptr) return 0;
  // Per-CPU maps hand back the invoking context's slot (this-CPU semantics of
  // the in-kernel helper); for everything else cpu_id is ignored.
  std::uint8_t* value = map->lookup_cpu(
      {reinterpret_cast<const std::uint8_t*>(key), map->key_size()},
      env.cpu_id);
  if (value != nullptr) {
    // Returned value memory becomes accessible to the program for the rest
    // of this invocation; the interpreter checks loads/stores against the
    // region list (the verifier bounds them statically for the JIT path).
    env.regions.push_back(MemRegion{reinterpret_cast<std::uintptr_t>(value),
                                    map->value_size(), true});
  }
  return reinterpret_cast<std::uint64_t>(value);
}

std::uint64_t do_map_update(ExecEnv& env, std::uint64_t map_arg,
                            std::uint64_t key, std::uint64_t value,
                            std::uint64_t flags, std::uint64_t) {
  Map* map = map_from_arg(env, map_arg);
  if (map == nullptr) return static_cast<std::uint64_t>(kErrInval);
  return static_cast<std::uint64_t>(map->update_cpu(
      {reinterpret_cast<const std::uint8_t*>(key), map->key_size()},
      {reinterpret_cast<const std::uint8_t*>(value), map->value_size()},
      flags, env.cpu_id));
}

std::uint64_t do_map_delete(ExecEnv& env, std::uint64_t map_arg,
                            std::uint64_t key, std::uint64_t, std::uint64_t,
                            std::uint64_t) {
  Map* map = map_from_arg(env, map_arg);
  if (map == nullptr) return static_cast<std::uint64_t>(kErrInval);
  return static_cast<std::uint64_t>(map->erase(
      {reinterpret_cast<const std::uint8_t*>(key), map->key_size()}));
}

std::uint64_t do_ktime(ExecEnv& env, std::uint64_t, std::uint64_t,
                       std::uint64_t, std::uint64_t, std::uint64_t) {
  return env.now_ns ? env.now_ns() : 0;
}

std::uint64_t do_prandom(ExecEnv& env, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t) {
  return env.prandom ? env.prandom() : 4;  // chosen by fair dice roll
}

std::uint64_t do_smp_processor_id(ExecEnv& env, std::uint64_t, std::uint64_t,
                                  std::uint64_t, std::uint64_t,
                                  std::uint64_t) {
  return env.cpu_id;
}

std::uint64_t do_perf_event_output(ExecEnv& env, std::uint64_t /*ctx*/,
                                   std::uint64_t map_arg, std::uint64_t /*flags*/,
                                   std::uint64_t data, std::uint64_t size) {
  auto* map = dynamic_cast<PerfEventArrayMap*>(map_from_arg(env, map_arg));
  if (map == nullptr) return static_cast<std::uint64_t>(kErrInval);
  const auto* p = reinterpret_cast<const std::uint8_t*>(data);
  if (!env.readable(p, size)) return static_cast<std::uint64_t>(kErrInval);
  const std::uint64_t now = env.now_ns ? env.now_ns() : 0;
  // Records land in the invoking context's ring (BPF_F_CURRENT_CPU; explicit
  // target-cpu flags are not modelled).
  return map->buffer().push(now, {p, static_cast<std::size_t>(size)},
                            env.cpu_id)
             ? 0
             : static_cast<std::uint64_t>(kErrNoSpace);
}

std::uint64_t do_skb_load_bytes(ExecEnv& env, std::uint64_t ctx,
                                std::uint64_t offset, std::uint64_t to,
                                std::uint64_t len, std::uint64_t) {
  // bpf_skb_load_bytes(skb, offset, to, len): copy packet bytes into program
  // memory. This is how translated classic filters read at variable offsets
  // (BPF_IND / BPF_MSH) — the verifier cannot prove direct packet loads at
  // runtime-computed offsets, so the kernel routes them through this helper.
  const auto* skb = reinterpret_cast<const SkbCtx*>(ctx);
  if (!env.readable(skb, sizeof(SkbCtx)))
    return static_cast<std::uint64_t>(kErrFault);
  const std::uint32_t off32 = static_cast<std::uint32_t>(offset);
  const std::uint32_t len32 = static_cast<std::uint32_t>(len);
  const std::uint64_t pkt_len = skb->data_end - skb->data;
  if (len32 == 0 || off32 > pkt_len || len32 > pkt_len - off32)
    return static_cast<std::uint64_t>(kErrFault);
  auto* dst = reinterpret_cast<std::uint8_t*>(to);
  if (!env.writable(dst, len32)) return static_cast<std::uint64_t>(kErrFault);
  std::memcpy(dst, reinterpret_cast<const std::uint8_t*>(skb->data) + off32,
              len32);
  return 0;
}

std::uint64_t do_trace_printk(ExecEnv& env, std::uint64_t fmt,
                              std::uint64_t fmt_size, std::uint64_t,
                              std::uint64_t, std::uint64_t) {
  const auto* p = reinterpret_cast<const char*>(fmt);
  if (!env.readable(p, fmt_size)) return static_cast<std::uint64_t>(kErrInval);
  // Debug-only output; arguments are intentionally not formatted.
  std::fwrite(p, 1, strnlen(p, fmt_size), stderr);
  std::fputc('\n', stderr);
  return 0;
}

}  // namespace

void register_generic_helpers(HelperRegistry& reg) {
  reg.register_helper(
      helper::MAP_LOOKUP_ELEM,
      {.name = "map_lookup_elem",
       .ret = RetKind::kPtrToMapValueOrNull,
       .args = {ArgKind::kConstMapPtr, ArgKind::kPtrToMapKey, ArgKind::kNone,
                ArgKind::kNone, ArgKind::kNone}},
      do_map_lookup);
  reg.register_helper(
      helper::MAP_UPDATE_ELEM,
      {.name = "map_update_elem",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kConstMapPtr, ArgKind::kPtrToMapKey,
                ArgKind::kPtrToMapValue, ArgKind::kAnything, ArgKind::kNone}},
      do_map_update);
  reg.register_helper(
      helper::MAP_DELETE_ELEM,
      {.name = "map_delete_elem",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kConstMapPtr, ArgKind::kPtrToMapKey, ArgKind::kNone,
                ArgKind::kNone, ArgKind::kNone}},
      do_map_delete);
  reg.register_helper(helper::KTIME_GET_NS,
                      {.name = "ktime_get_ns", .ret = RetKind::kInteger},
                      do_ktime);
  reg.register_helper(helper::GET_PRANDOM_U32,
                      {.name = "get_prandom_u32", .ret = RetKind::kInteger},
                      do_prandom);
  reg.register_helper(helper::GET_SMP_PROCESSOR_ID,
                      {.name = "get_smp_processor_id",
                       .ret = RetKind::kInteger},
                      do_smp_processor_id);
  reg.register_helper(
      helper::PERF_EVENT_OUTPUT,
      {.name = "perf_event_output",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kConstMapPtr, ArgKind::kAnything,
                ArgKind::kPtrToMem, ArgKind::kConstSize}},
      do_perf_event_output);
  reg.register_helper(
      helper::SKB_LOAD_BYTES,
      {.name = "skb_load_bytes",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kAnything,
                ArgKind::kPtrToUninitMem, ArgKind::kConstSize,
                ArgKind::kNone}},
      do_skb_load_bytes);
  reg.register_helper(
      helper::TRACE_PRINTK,
      {.name = "trace_printk",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToMem, ArgKind::kConstSize, ArgKind::kAnything,
                ArgKind::kAnything, ArgKind::kNone}},
      do_trace_printk);
}

std::string helper_name(std::int32_t id) {
  switch (id) {
    case helper::MAP_LOOKUP_ELEM: return "map_lookup_elem";
    case helper::MAP_UPDATE_ELEM: return "map_update_elem";
    case helper::MAP_DELETE_ELEM: return "map_delete_elem";
    case helper::KTIME_GET_NS: return "ktime_get_ns";
    case helper::TRACE_PRINTK: return "trace_printk";
    case helper::GET_PRANDOM_U32: return "get_prandom_u32";
    case helper::GET_SMP_PROCESSOR_ID: return "get_smp_processor_id";
    case helper::PERF_EVENT_OUTPUT: return "perf_event_output";
    case helper::SKB_LOAD_BYTES: return "skb_load_bytes";
    case helper::LWT_PUSH_ENCAP: return "lwt_push_encap";
    case helper::LWT_SEG6_STORE_BYTES: return "lwt_seg6_store_bytes";
    case helper::LWT_SEG6_ADJUST_SRH: return "lwt_seg6_adjust_srh";
    case helper::LWT_SEG6_ACTION: return "lwt_seg6_action";
    case helper::FIB_ECMP_NEXTHOPS: return "fib_ecmp_nexthops";
  }
  return "helper#" + std::to_string(id);
}

}  // namespace srv6bpf::ebpf
