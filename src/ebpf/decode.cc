#include "ebpf/decode.h"

#include <stdexcept>
#include <string>

namespace srv6bpf::ebpf {
namespace {

[[noreturn]] void bad(std::size_t idx, const std::string& what) {
  throw std::logic_error("decode: insn " + std::to_string(idx) + ": " + what);
}

std::uint16_t alu_kind(std::uint8_t op, bool is64, bool reg_src) {
  struct Row { std::uint16_t r64, i64, r32, i32; };
  auto row = [&]() -> Row {
    switch (op) {
      case BPF_ADD: return {kAdd64R, kAdd64I, kAdd32R, kAdd32I};
      case BPF_SUB: return {kSub64R, kSub64I, kSub32R, kSub32I};
      case BPF_MUL: return {kMul64R, kMul64I, kMul32R, kMul32I};
      case BPF_DIV: return {kDiv64R, kDiv64I, kDiv32R, kDiv32I};
      case BPF_MOD: return {kMod64R, kMod64I, kMod32R, kMod32I};
      case BPF_OR: return {kOr64R, kOr64I, kOr32R, kOr32I};
      case BPF_AND: return {kAnd64R, kAnd64I, kAnd32R, kAnd32I};
      case BPF_XOR: return {kXor64R, kXor64I, kXor32R, kXor32I};
      case BPF_MOV: return {kMov64R, kMov64I, kMov32R, kMov32I};
      case BPF_LSH: return {kLsh64R, kLsh64I, kLsh32R, kLsh32I};
      case BPF_RSH: return {kRsh64R, kRsh64I, kRsh32R, kRsh32I};
      case BPF_ARSH: return {kArsh64R, kArsh64I, kArsh32R, kArsh32I};
    }
    throw std::logic_error("decode: bad ALU op");
  }();
  if (is64) return reg_src ? row.r64 : row.i64;
  return reg_src ? row.r32 : row.i32;
}

std::uint16_t jmp_kind(std::uint8_t op, bool is32, bool reg_src) {
  struct Row { std::uint16_t r, i, r32, i32; };
  auto row = [&]() -> Row {
    switch (op) {
      case BPF_JEQ: return {kJeqR, kJeqI, kJeq32R, kJeq32I};
      case BPF_JNE: return {kJneR, kJneI, kJne32R, kJne32I};
      case BPF_JGT: return {kJgtR, kJgtI, kJgt32R, kJgt32I};
      case BPF_JGE: return {kJgeR, kJgeI, kJge32R, kJge32I};
      case BPF_JLT: return {kJltR, kJltI, kJlt32R, kJlt32I};
      case BPF_JLE: return {kJleR, kJleI, kJle32R, kJle32I};
      case BPF_JSET: return {kJsetR, kJsetI, kJset32R, kJset32I};
      case BPF_JSGT: return {kJsgtR, kJsgtI, kJsgt32R, kJsgt32I};
      case BPF_JSGE: return {kJsgeR, kJsgeI, kJsge32R, kJsge32I};
      case BPF_JSLT: return {kJsltR, kJsltI, kJslt32R, kJslt32I};
      case BPF_JSLE: return {kJsleR, kJsleI, kJsle32R, kJsle32I};
    }
    throw std::logic_error("decode: bad JMP op");
  }();
  if (is32) return reg_src ? row.r32 : row.i32;
  return reg_src ? row.r : row.i;
}

}  // namespace

std::shared_ptr<const DecodedProgram> decode_program(
    const std::vector<Insn>& insns, const HelperRegistry* helpers) {
  const std::size_t n = insns.size();
  if (n == 0) throw std::logic_error("decode: empty program");

  // Pass 1: slot classification + insn index -> op index (ld_imm64 fuses
  // 2 slots into 1 op).
  std::vector<bool> is_aux(n, false);
  std::vector<std::int32_t> op_index(n + 1, -1);
  {
    std::int32_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      op_index[i] = next++;
      if (insns[i].is_ld_imm64()) {
        if (i + 1 >= n) bad(i, "ld_imm64 missing second slot");
        is_aux[i + 1] = true;
        ++i;
      }
    }
    op_index[n] = next;
  }

  auto out = std::make_shared<DecodedProgram>();
  out->ops_.reserve(op_index[n]);

  for (std::size_t i = 0; i < n; ++i) {
    const Insn& insn = insns[i];
    DecodedInsn op;
    op.dst = insn.dst;
    op.src = insn.src;
    op.off = insn.off;
    op.imm = insn.imm;
    if (insn.dst >= kNumRegs) bad(i, "destination register out of range");

    const std::uint8_t cls = insn.insn_class();
    const bool falls_through =
        !insn.is_exit() && !insn.is_unconditional_jump();
    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        const std::uint8_t aop = insn.alu_op();
        if (insn.uses_reg_src() && aop != BPF_END && insn.src >= kNumRegs)
          bad(i, "source register out of range");
        if (aop == BPF_NEG) {
          // Linux rejects BPF_NEG with the source bit set (BPF_X); there is
          // no register operand to a negation.
          if (insn.uses_reg_src()) bad(i, "BPF_NEG with register source");
          op.kind = cls == BPF_ALU64 ? kNeg64 : kNeg32;
        } else if (aop == BPF_END) {
          const bool be = insn.uses_reg_src();
          if (insn.imm != 16 && insn.imm != 32 && insn.imm != 64)
            bad(i, "bad byteswap width");
          op.kind = insn.imm == 16   ? (be ? kBe16 : kLe16)
                    : insn.imm == 32 ? (be ? kBe32 : kLe32)
                                     : (be ? kBe64 : kLe64);
        } else {
          op.kind = alu_kind(aop, cls == BPF_ALU64, insn.uses_reg_src());
          if (!insn.uses_reg_src())
            op.imm64 = cls == BPF_ALU64
                           ? sext_imm64(insn.imm)
                           : static_cast<std::uint32_t>(insn.imm);
        }
        break;
      }
      case BPF_LD: {
        if (!insn.is_ld_imm64()) bad(i, "unsupported BPF_LD mode");
        op.kind = kLdImm64;
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          // Map references carry the registry id as their runtime value.
          op.imm64 = static_cast<std::uint32_t>(insn.imm);
        } else {
          op.imm64 = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          insns[i + 1].imm))
                      << 32) |
                     static_cast<std::uint32_t>(insn.imm);
        }
        ++i;  // skip aux slot
        break;
      }
      case BPF_LDX: {
        if (insn.src >= kNumRegs) bad(i, "source register out of range");
        switch (access_size(insn.size_field())) {
          case 1: op.kind = kLd1; break;
          case 2: op.kind = kLd2; break;
          case 4: op.kind = kLd4; break;
          case 8: op.kind = kLd8; break;
          default: bad(i, "bad load size");
        }
        break;
      }
      case BPF_STX:
      case BPF_ST: {
        const bool reg = cls == BPF_STX;
        if (reg && insn.src >= kNumRegs)
          bad(i, "source register out of range");
        switch (access_size(insn.size_field())) {
          case 1: op.kind = reg ? kSt1R : kSt1I; break;
          case 2: op.kind = reg ? kSt2R : kSt2I; break;
          case 4: op.kind = reg ? kSt4R : kSt4I; break;
          case 8: op.kind = reg ? kSt8R : kSt8I; break;
          default: bad(i, "bad store size");
        }
        break;
      }
      case BPF_JMP:
      case BPF_JMP32: {
        if (insn.is_exit()) {
          op.kind = kExit;
          break;
        }
        if (insn.is_call()) {
          op.kind = kCall;
          if (helpers == nullptr ||
              (op.fn = helpers->fn(insn.imm)) == nullptr)
            bad(i, "unresolved helper " + std::to_string(insn.imm));
          break;
        }
        const std::int64_t t64 =
            static_cast<std::int64_t>(i) + 1 + insn.off;
        if (t64 < 0 || t64 >= static_cast<std::int64_t>(n))
          bad(i, "jump target out of program bounds");
        const auto t = static_cast<std::size_t>(t64);
        if (is_aux[t]) bad(i, "jump into the middle of ld_imm64");
        op.target = op_index[t];
        if (insn.is_unconditional_jump()) {
          op.kind = kJa;
        } else {
          if (insn.uses_reg_src() && insn.src >= kNumRegs)
            bad(i, "source register out of range");
          op.kind =
              jmp_kind(insn.alu_op(), cls == BPF_JMP32, insn.uses_reg_src());
          if (!insn.uses_reg_src()) op.imm64 = sext_imm64(insn.imm);
        }
        break;
      }
      default:
        bad(i, "bad instruction class");
    }
    // Fetch safety: the engines never bounds-check the decoded pc, so no op
    // may fall through (or conditionally fall through) past the end. (`i`
    // already points at the aux slot for a fused ld_imm64.)
    if (falls_through && i + 1 >= n)
      bad(i, "control flow falls off the end of the program");
    out->ops_.push_back(op);
  }
  return out;
}

}  // namespace srv6bpf::ebpf
