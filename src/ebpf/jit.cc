#include "ebpf/jit.h"

#include <array>
#include <stdexcept>

#include "ebpf/insn.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {

std::shared_ptr<const CompiledProgram> Jit::compile(
    const Program& prog) const {
  if (!prog.verified())
    throw std::logic_error("jit: refusing to compile unverified program '" +
                           prog.name() + "'");
  auto decoded = decode_program(prog, helpers_);
  // Native emission is best-effort: on unsupported hosts (or if W^X pages
  // are refused) the unchecked engine remains as the portable fallback.
  std::shared_ptr<const NativeCode> native;
  if (available()) native = compile_native(*decoded, nullptr);
  return std::make_shared<CompiledProgram>(std::move(decoded),
                                           std::move(native));
}

ExecResult CompiledProgram::run(ExecEnv& env, std::uint64_t ctx) const {
  std::array<std::uint64_t, kNumRegs> regs{};
  // Not zero-filled: only verified programs compile, and the verifier proves
  // stack slots are written before read (kernel JIT frames are not cleared).
  alignas(16) std::array<std::uint8_t, kStackSize> stack;
  regs[R1] = ctx;
  regs[R10] = reinterpret_cast<std::uint64_t>(stack.data()) + kStackSize;

  // Helpers validate their memory arguments against env.regions; the BPF
  // stack must be visible to them for the duration of the run.
  struct RegionGuard {
    ExecEnv& env;
    std::size_t base;
    RegionGuard(ExecEnv& e, const MemRegion& r)
        : env(e), base(e.regions.size()) {
      env.regions.push_back(r);
    }
    // Helpers may append further regions (map values); drop those too.
    ~RegionGuard() { env.regions.resize(base); }
  } region_guard(env,
                 MemRegion{reinterpret_cast<std::uintptr_t>(stack.data()),
                           kStackSize, true});

  ExecResult res;
  const DecodedInsn* base = decoded_->data();
  const DecodedInsn* op = base;

  // Verified code: memory accesses run unchecked, like native JIT output.
  for (;;) {
    ++res.insns_executed;
    std::uint64_t& dst = regs[op->dst];
    const std::uint64_t src = regs[op->src];
    switch (op->kind) {
      case kAdd64R: dst += src; break;
      case kSub64R: dst -= src; break;
      case kMul64R: dst *= src; break;
      case kDiv64R: dst = src ? dst / src : 0; break;
      case kMod64R: dst = src ? dst % src : dst; break;
      case kOr64R: dst |= src; break;
      case kAnd64R: dst &= src; break;
      case kXor64R: dst ^= src; break;
      case kMov64R: dst = src; break;
      case kLsh64R: dst <<= (src & 63); break;
      case kRsh64R: dst >>= (src & 63); break;
      case kArsh64R:
        dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                         (src & 63));
        break;
      case kAdd64I: dst += op->imm64; break;
      case kSub64I: dst -= op->imm64; break;
      case kMul64I: dst *= op->imm64; break;
      case kDiv64I: dst = op->imm64 ? dst / op->imm64 : 0; break;
      case kMod64I: dst = op->imm64 ? dst % op->imm64 : dst; break;
      case kOr64I: dst |= op->imm64; break;
      case kAnd64I: dst &= op->imm64; break;
      case kXor64I: dst ^= op->imm64; break;
      case kMov64I: dst = op->imm64; break;
      case kLsh64I: dst <<= (op->imm64 & 63); break;
      case kRsh64I: dst >>= (op->imm64 & 63); break;
      case kArsh64I:
        dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                         (op->imm64 & 63));
        break;
      case kNeg64: dst = ~dst + 1; break;

      case kAdd32R: dst = static_cast<std::uint32_t>(dst + src); break;
      case kSub32R: dst = static_cast<std::uint32_t>(dst - src); break;
      case kMul32R: dst = static_cast<std::uint32_t>(dst * src); break;
      case kDiv32R: {
        const std::uint32_t b = static_cast<std::uint32_t>(src);
        dst = b ? static_cast<std::uint32_t>(dst) / b : 0;
        break;
      }
      case kMod32R: {
        const std::uint32_t b = static_cast<std::uint32_t>(src);
        dst = b ? static_cast<std::uint32_t>(dst) % b
                : static_cast<std::uint32_t>(dst);
        break;
      }
      case kOr32R: dst = static_cast<std::uint32_t>(dst | src); break;
      case kAnd32R: dst = static_cast<std::uint32_t>(dst & src); break;
      case kXor32R: dst = static_cast<std::uint32_t>(dst ^ src); break;
      case kMov32R: dst = static_cast<std::uint32_t>(src); break;
      case kLsh32R: dst = static_cast<std::uint32_t>(dst) << (src & 31); break;
      case kRsh32R: dst = static_cast<std::uint32_t>(dst) >> (src & 31); break;
      case kArsh32R:
        dst = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
            (src & 31));
        break;
      case kAdd32I: dst = static_cast<std::uint32_t>(dst + op->imm64); break;
      case kSub32I: dst = static_cast<std::uint32_t>(dst - op->imm64); break;
      case kMul32I: dst = static_cast<std::uint32_t>(dst * op->imm64); break;
      case kDiv32I: {
        const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
        dst = b ? static_cast<std::uint32_t>(dst) / b : 0;
        break;
      }
      case kMod32I: {
        const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
        dst = b ? static_cast<std::uint32_t>(dst) % b
                : static_cast<std::uint32_t>(dst);
        break;
      }
      case kOr32I: dst = static_cast<std::uint32_t>(dst | op->imm64); break;
      case kAnd32I: dst = static_cast<std::uint32_t>(dst & op->imm64); break;
      case kXor32I: dst = static_cast<std::uint32_t>(dst ^ op->imm64); break;
      case kMov32I: dst = static_cast<std::uint32_t>(op->imm64); break;
      case kLsh32I: dst = static_cast<std::uint32_t>(dst) << (op->imm64 & 31); break;
      case kRsh32I: dst = static_cast<std::uint32_t>(dst) >> (op->imm64 & 31); break;
      case kArsh32I:
        dst = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
            (op->imm64 & 31));
        break;
      case kNeg32:
        dst = static_cast<std::uint32_t>(
            -static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)));
        break;

      case kBe16:
        dst = kHostIsLittleEndian ? bswap16(static_cast<std::uint16_t>(dst))
                                  : static_cast<std::uint16_t>(dst);
        break;
      case kBe32:
        dst = kHostIsLittleEndian ? bswap32(static_cast<std::uint32_t>(dst))
                                  : static_cast<std::uint32_t>(dst);
        break;
      case kBe64: dst = kHostIsLittleEndian ? bswap64(dst) : dst; break;
      case kLe16:
        dst = kHostIsLittleEndian ? static_cast<std::uint16_t>(dst)
                                  : bswap16(static_cast<std::uint16_t>(dst));
        break;
      case kLe32:
        dst = kHostIsLittleEndian ? static_cast<std::uint32_t>(dst)
                                  : bswap32(static_cast<std::uint32_t>(dst));
        break;
      case kLe64: dst = kHostIsLittleEndian ? dst : bswap64(dst); break;

      case kLd1: dst = load_unaligned<std::uint8_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd2: dst = load_unaligned<std::uint16_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd4: dst = load_unaligned<std::uint32_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd8: dst = load_unaligned<std::uint64_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kSt1R: store_unaligned<std::uint8_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint8_t>(src)); break;
      case kSt2R: store_unaligned<std::uint16_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint16_t>(src)); break;
      case kSt4R: store_unaligned<std::uint32_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint32_t>(src)); break;
      case kSt8R: store_unaligned<std::uint64_t>(reinterpret_cast<void*>(dst + op->off), src); break;
      case kSt1I: store_unaligned<std::uint8_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint8_t>(op->imm)); break;
      case kSt2I: store_unaligned<std::uint16_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint16_t>(op->imm)); break;
      case kSt4I: store_unaligned<std::uint32_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint32_t>(op->imm)); break;
      case kSt8I: store_unaligned<std::uint64_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint64_t>(static_cast<std::int64_t>(op->imm))); break;

      case kLdImm64: dst = op->imm64; break;

      case kJa: op = base + op->target; continue;

#define JUMP_R(K, CMP)                             \
  case K:                                          \
    if (CMP) { op = base + op->target; continue; } \
    break;
      JUMP_R(kJeqR, dst == src)
      JUMP_R(kJneR, dst != src)
      JUMP_R(kJgtR, dst > src)
      JUMP_R(kJgeR, dst >= src)
      JUMP_R(kJltR, dst < src)
      JUMP_R(kJleR, dst <= src)
      JUMP_R(kJsetR, (dst & src) != 0)
      JUMP_R(kJsgtR, static_cast<std::int64_t>(dst) > static_cast<std::int64_t>(src))
      JUMP_R(kJsgeR, static_cast<std::int64_t>(dst) >= static_cast<std::int64_t>(src))
      JUMP_R(kJsltR, static_cast<std::int64_t>(dst) < static_cast<std::int64_t>(src))
      JUMP_R(kJsleR, static_cast<std::int64_t>(dst) <= static_cast<std::int64_t>(src))
      JUMP_R(kJeqI, dst == op->imm64)
      JUMP_R(kJneI, dst != op->imm64)
      JUMP_R(kJgtI, dst > op->imm64)
      JUMP_R(kJgeI, dst >= op->imm64)
      JUMP_R(kJltI, dst < op->imm64)
      JUMP_R(kJleI, dst <= op->imm64)
      JUMP_R(kJsetI, (dst & op->imm64) != 0)
      JUMP_R(kJsgtI, static_cast<std::int64_t>(dst) > static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsgeI, static_cast<std::int64_t>(dst) >= static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsltI, static_cast<std::int64_t>(dst) < static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsleI, static_cast<std::int64_t>(dst) <= static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJeq32R, static_cast<std::uint32_t>(dst) == static_cast<std::uint32_t>(src))
      JUMP_R(kJne32R, static_cast<std::uint32_t>(dst) != static_cast<std::uint32_t>(src))
      JUMP_R(kJgt32R, static_cast<std::uint32_t>(dst) > static_cast<std::uint32_t>(src))
      JUMP_R(kJge32R, static_cast<std::uint32_t>(dst) >= static_cast<std::uint32_t>(src))
      JUMP_R(kJlt32R, static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(src))
      JUMP_R(kJle32R, static_cast<std::uint32_t>(dst) <= static_cast<std::uint32_t>(src))
      JUMP_R(kJset32R, (static_cast<std::uint32_t>(dst) & static_cast<std::uint32_t>(src)) != 0)
      JUMP_R(kJsgt32R, static_cast<std::int32_t>(dst) > static_cast<std::int32_t>(src))
      JUMP_R(kJsge32R, static_cast<std::int32_t>(dst) >= static_cast<std::int32_t>(src))
      JUMP_R(kJslt32R, static_cast<std::int32_t>(dst) < static_cast<std::int32_t>(src))
      JUMP_R(kJsle32R, static_cast<std::int32_t>(dst) <= static_cast<std::int32_t>(src))
      JUMP_R(kJeq32I, static_cast<std::uint32_t>(dst) == static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJne32I, static_cast<std::uint32_t>(dst) != static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJgt32I, static_cast<std::uint32_t>(dst) > static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJge32I, static_cast<std::uint32_t>(dst) >= static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJlt32I, static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJle32I, static_cast<std::uint32_t>(dst) <= static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJset32I, (static_cast<std::uint32_t>(dst) & static_cast<std::uint32_t>(op->imm)) != 0)
      JUMP_R(kJsgt32I, static_cast<std::int32_t>(dst) > op->imm)
      JUMP_R(kJsge32I, static_cast<std::int32_t>(dst) >= op->imm)
      JUMP_R(kJslt32I, static_cast<std::int32_t>(dst) < op->imm)
      JUMP_R(kJsle32I, static_cast<std::int32_t>(dst) <= op->imm)
#undef JUMP_R

      case kCall:
        ++res.helper_calls;
        regs[R0] =
            (*op->fn)(env, regs[R1], regs[R2], regs[R3], regs[R4], regs[R5]);
        break;
      case kExit:
        res.ret = regs[R0];
        return res;
    }
    ++op;
  }
}

}  // namespace srv6bpf::ebpf
