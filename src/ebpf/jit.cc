#include "ebpf/jit.h"

#include <array>
#include <cstring>
#include <stdexcept>
#include <string>

#include "ebpf/insn.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {
namespace {

// Dense op kinds. ALU ops fold the reg/imm distinction at translation time
// by materialising immediates into imm64.
enum Kind : std::uint16_t {
  // 64-bit ALU, register source
  kAdd64R, kSub64R, kMul64R, kDiv64R, kMod64R, kOr64R, kAnd64R, kXor64R,
  kMov64R, kLsh64R, kRsh64R, kArsh64R,
  // 64-bit ALU, immediate
  kAdd64I, kSub64I, kMul64I, kDiv64I, kMod64I, kOr64I, kAnd64I, kXor64I,
  kMov64I, kLsh64I, kRsh64I, kArsh64I, kNeg64,
  // 32-bit ALU, register source
  kAdd32R, kSub32R, kMul32R, kDiv32R, kMod32R, kOr32R, kAnd32R, kXor32R,
  kMov32R, kLsh32R, kRsh32R, kArsh32R,
  // 32-bit ALU, immediate
  kAdd32I, kSub32I, kMul32I, kDiv32I, kMod32I, kOr32I, kAnd32I, kXor32I,
  kMov32I, kLsh32I, kRsh32I, kArsh32I, kNeg32,
  // Byte swaps
  kBe16, kBe32, kBe64, kLe16, kLe32, kLe64,
  // Memory
  kLd1, kLd2, kLd4, kLd8, kSt1R, kSt2R, kSt4R, kSt8R, kSt1I, kSt2I, kSt4I,
  kSt8I,
  // 64-bit immediate / map pointer
  kLdImm64,
  // Jumps (R = register comparand, I = materialised immediate)
  kJa,
  kJeqR, kJneR, kJgtR, kJgeR, kJltR, kJleR, kJsetR, kJsgtR, kJsgeR, kJsltR,
  kJsleR,
  kJeqI, kJneI, kJgtI, kJgeI, kJltI, kJleI, kJsetI, kJsgtI, kJsgeI, kJsltI,
  kJsleI,
  kJeq32R, kJne32R, kJgt32R, kJge32R, kJlt32R, kJle32R, kJset32R, kJsgt32R,
  kJsge32R, kJslt32R, kJsle32R,
  kJeq32I, kJne32I, kJgt32I, kJge32I, kJlt32I, kJle32I, kJset32I, kJsgt32I,
  kJsge32I, kJslt32I, kJsle32I,
  kCall, kExit,
};

std::uint16_t alu_kind(std::uint8_t op, bool is64, bool reg_src) {
  struct Row { std::uint16_t r64, i64, r32, i32; };
  auto row = [&]() -> Row {
    switch (op) {
      case BPF_ADD: return {kAdd64R, kAdd64I, kAdd32R, kAdd32I};
      case BPF_SUB: return {kSub64R, kSub64I, kSub32R, kSub32I};
      case BPF_MUL: return {kMul64R, kMul64I, kMul32R, kMul32I};
      case BPF_DIV: return {kDiv64R, kDiv64I, kDiv32R, kDiv32I};
      case BPF_MOD: return {kMod64R, kMod64I, kMod32R, kMod32I};
      case BPF_OR: return {kOr64R, kOr64I, kOr32R, kOr32I};
      case BPF_AND: return {kAnd64R, kAnd64I, kAnd32R, kAnd32I};
      case BPF_XOR: return {kXor64R, kXor64I, kXor32R, kXor32I};
      case BPF_MOV: return {kMov64R, kMov64I, kMov32R, kMov32I};
      case BPF_LSH: return {kLsh64R, kLsh64I, kLsh32R, kLsh32I};
      case BPF_RSH: return {kRsh64R, kRsh64I, kRsh32R, kRsh32I};
      case BPF_ARSH: return {kArsh64R, kArsh64I, kArsh32R, kArsh32I};
    }
    throw std::logic_error("jit: bad ALU op");
  }();
  if (is64) return reg_src ? row.r64 : row.i64;
  return reg_src ? row.r32 : row.i32;
}

std::uint16_t jmp_kind(std::uint8_t op, bool is32, bool reg_src) {
  struct Row { std::uint16_t r, i, r32, i32; };
  auto row = [&]() -> Row {
    switch (op) {
      case BPF_JEQ: return {kJeqR, kJeqI, kJeq32R, kJeq32I};
      case BPF_JNE: return {kJneR, kJneI, kJne32R, kJne32I};
      case BPF_JGT: return {kJgtR, kJgtI, kJgt32R, kJgt32I};
      case BPF_JGE: return {kJgeR, kJgeI, kJge32R, kJge32I};
      case BPF_JLT: return {kJltR, kJltI, kJlt32R, kJlt32I};
      case BPF_JLE: return {kJleR, kJleI, kJle32R, kJle32I};
      case BPF_JSET: return {kJsetR, kJsetI, kJset32R, kJset32I};
      case BPF_JSGT: return {kJsgtR, kJsgtI, kJsgt32R, kJsgt32I};
      case BPF_JSGE: return {kJsgeR, kJsgeI, kJsge32R, kJsge32I};
      case BPF_JSLT: return {kJsltR, kJsltI, kJslt32R, kJslt32I};
      case BPF_JSLE: return {kJsleR, kJsleI, kJsle32R, kJsle32I};
    }
    throw std::logic_error("jit: bad JMP op");
  }();
  if (is32) return reg_src ? row.r32 : row.i32;
  return reg_src ? row.r : row.i;
}

}  // namespace

std::shared_ptr<const CompiledProgram> Jit::compile(
    const Program& prog) const {
  if (!prog.verified())
    throw std::logic_error("jit: refusing to compile unverified program '" +
                           prog.name() + "'");
  const std::vector<Insn>& insns = prog.insns();
  auto out = std::make_shared<CompiledProgram>();

  // First pass: map insn index -> op index (ld_imm64 collapses 2 -> 1).
  std::vector<std::int32_t> op_index(insns.size() + 1, -1);
  {
    std::int32_t next = 0;
    for (std::size_t i = 0; i < insns.size(); ++i) {
      op_index[i] = next++;
      if (insns[i].is_ld_imm64()) {
        op_index[i + 1] = next;  // alias the aux slot (never targeted anyway)
        ++i;
      }
    }
    op_index[insns.size()] = next;
  }

  for (std::size_t i = 0; i < insns.size(); ++i) {
    const Insn& insn = insns[i];
    CompiledProgram::Op op;
    op.dst = insn.dst;
    op.src = insn.src;
    op.off = insn.off;
    op.imm = insn.imm;

    const std::uint8_t cls = insn.insn_class();
    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        const std::uint8_t aop = insn.alu_op();
        if (aop == BPF_NEG) {
          op.kind = cls == BPF_ALU64 ? kNeg64 : kNeg32;
        } else if (aop == BPF_END) {
          const bool be = insn.uses_reg_src();
          op.kind = insn.imm == 16   ? (be ? kBe16 : kLe16)
                    : insn.imm == 32 ? (be ? kBe32 : kLe32)
                                     : (be ? kBe64 : kLe64);
        } else {
          op.kind = alu_kind(aop, cls == BPF_ALU64, insn.uses_reg_src());
          if (!insn.uses_reg_src())
            op.imm64 = cls == BPF_ALU64
                           ? static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(insn.imm))
                           : static_cast<std::uint32_t>(insn.imm);
        }
        break;
      }
      case BPF_LD: {
        op.kind = kLdImm64;
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          op.imm64 = static_cast<std::uint32_t>(insn.imm);
        } else {
          op.imm64 = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          insns[i + 1].imm))
                      << 32) |
                     static_cast<std::uint32_t>(insn.imm);
        }
        ++i;  // skip aux slot
        break;
      }
      case BPF_LDX: {
        switch (access_size(insn.size_field())) {
          case 1: op.kind = kLd1; break;
          case 2: op.kind = kLd2; break;
          case 4: op.kind = kLd4; break;
          case 8: op.kind = kLd8; break;
        }
        break;
      }
      case BPF_STX:
      case BPF_ST: {
        const bool reg = cls == BPF_STX;
        switch (access_size(insn.size_field())) {
          case 1: op.kind = reg ? kSt1R : kSt1I; break;
          case 2: op.kind = reg ? kSt2R : kSt2I; break;
          case 4: op.kind = reg ? kSt4R : kSt4I; break;
          case 8: op.kind = reg ? kSt8R : kSt8I; break;
        }
        break;
      }
      case BPF_JMP:
      case BPF_JMP32: {
        if (insn.is_exit()) {
          op.kind = kExit;
        } else if (insn.is_call()) {
          op.kind = kCall;
          if (helpers_ == nullptr || (op.fn = helpers_->fn(insn.imm)) == nullptr)
            throw std::logic_error("jit: unresolved helper " +
                                   std::to_string(insn.imm));
        } else {
          op.target = op_index[i + 1 + insn.off];
          if (insn.is_unconditional_jump()) {
            op.kind = kJa;
          } else {
            op.kind = jmp_kind(insn.alu_op(), cls == BPF_JMP32,
                               insn.uses_reg_src());
            if (!insn.uses_reg_src())
              op.imm64 = static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(insn.imm));
          }
        }
        break;
      }
      default:
        throw std::logic_error("jit: bad instruction class");
    }
    out->ops_.push_back(op);
  }
  return out;
}

ExecResult CompiledProgram::run(ExecEnv& env, std::uint64_t ctx) const {
  std::array<std::uint64_t, kNumRegs> regs{};
  alignas(16) std::array<std::uint8_t, kStackSize> stack{};
  regs[R1] = ctx;
  regs[R10] = reinterpret_cast<std::uint64_t>(stack.data()) + kStackSize;

  // Helpers validate their memory arguments against env.regions; the BPF
  // stack must be visible to them for the duration of the run.
  struct RegionGuard {
    ExecEnv& env;
    std::size_t base;
    RegionGuard(ExecEnv& e, const MemRegion& r)
        : env(e), base(e.regions.size()) {
      env.regions.push_back(r);
    }
    // Helpers may append further regions (map values); drop those too.
    ~RegionGuard() { env.regions.resize(base); }
  } region_guard(env,
                 MemRegion{reinterpret_cast<std::uintptr_t>(stack.data()),
                           kStackSize, true});

  ExecResult res;
  const Op* base = ops_.data();
  const Op* op = base;

  // Verified code: memory accesses run unchecked, like native JIT output.
  for (;;) {
    ++res.insns_executed;
    std::uint64_t& dst = regs[op->dst];
    const std::uint64_t src = regs[op->src];
    switch (op->kind) {
      case kAdd64R: dst += src; break;
      case kSub64R: dst -= src; break;
      case kMul64R: dst *= src; break;
      case kDiv64R: dst = src ? dst / src : 0; break;
      case kMod64R: dst = src ? dst % src : dst; break;
      case kOr64R: dst |= src; break;
      case kAnd64R: dst &= src; break;
      case kXor64R: dst ^= src; break;
      case kMov64R: dst = src; break;
      case kLsh64R: dst <<= (src & 63); break;
      case kRsh64R: dst >>= (src & 63); break;
      case kArsh64R:
        dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                         (src & 63));
        break;
      case kAdd64I: dst += op->imm64; break;
      case kSub64I: dst -= op->imm64; break;
      case kMul64I: dst *= op->imm64; break;
      case kDiv64I: dst = op->imm64 ? dst / op->imm64 : 0; break;
      case kMod64I: dst = op->imm64 ? dst % op->imm64 : dst; break;
      case kOr64I: dst |= op->imm64; break;
      case kAnd64I: dst &= op->imm64; break;
      case kXor64I: dst ^= op->imm64; break;
      case kMov64I: dst = op->imm64; break;
      case kLsh64I: dst <<= (op->imm64 & 63); break;
      case kRsh64I: dst >>= (op->imm64 & 63); break;
      case kArsh64I:
        dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                         (op->imm64 & 63));
        break;
      case kNeg64: dst = ~dst + 1; break;

      case kAdd32R: dst = static_cast<std::uint32_t>(dst + src); break;
      case kSub32R: dst = static_cast<std::uint32_t>(dst - src); break;
      case kMul32R: dst = static_cast<std::uint32_t>(dst * src); break;
      case kDiv32R: {
        const std::uint32_t b = static_cast<std::uint32_t>(src);
        dst = b ? static_cast<std::uint32_t>(dst) / b : 0;
        break;
      }
      case kMod32R: {
        const std::uint32_t b = static_cast<std::uint32_t>(src);
        dst = b ? static_cast<std::uint32_t>(dst) % b
                : static_cast<std::uint32_t>(dst);
        break;
      }
      case kOr32R: dst = static_cast<std::uint32_t>(dst | src); break;
      case kAnd32R: dst = static_cast<std::uint32_t>(dst & src); break;
      case kXor32R: dst = static_cast<std::uint32_t>(dst ^ src); break;
      case kMov32R: dst = static_cast<std::uint32_t>(src); break;
      case kLsh32R: dst = static_cast<std::uint32_t>(dst) << (src & 31); break;
      case kRsh32R: dst = static_cast<std::uint32_t>(dst) >> (src & 31); break;
      case kArsh32R:
        dst = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
            (src & 31));
        break;
      case kAdd32I: dst = static_cast<std::uint32_t>(dst + op->imm64); break;
      case kSub32I: dst = static_cast<std::uint32_t>(dst - op->imm64); break;
      case kMul32I: dst = static_cast<std::uint32_t>(dst * op->imm64); break;
      case kDiv32I: {
        const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
        dst = b ? static_cast<std::uint32_t>(dst) / b : 0;
        break;
      }
      case kMod32I: {
        const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
        dst = b ? static_cast<std::uint32_t>(dst) % b
                : static_cast<std::uint32_t>(dst);
        break;
      }
      case kOr32I: dst = static_cast<std::uint32_t>(dst | op->imm64); break;
      case kAnd32I: dst = static_cast<std::uint32_t>(dst & op->imm64); break;
      case kXor32I: dst = static_cast<std::uint32_t>(dst ^ op->imm64); break;
      case kMov32I: dst = static_cast<std::uint32_t>(op->imm64); break;
      case kLsh32I: dst = static_cast<std::uint32_t>(dst) << (op->imm64 & 31); break;
      case kRsh32I: dst = static_cast<std::uint32_t>(dst) >> (op->imm64 & 31); break;
      case kArsh32I:
        dst = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
            (op->imm64 & 31));
        break;
      case kNeg32:
        dst = static_cast<std::uint32_t>(
            -static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)));
        break;

      case kBe16:
        dst = kHostIsLittleEndian ? bswap16(static_cast<std::uint16_t>(dst))
                                  : static_cast<std::uint16_t>(dst);
        break;
      case kBe32:
        dst = kHostIsLittleEndian ? bswap32(static_cast<std::uint32_t>(dst))
                                  : static_cast<std::uint32_t>(dst);
        break;
      case kBe64: dst = kHostIsLittleEndian ? bswap64(dst) : dst; break;
      case kLe16:
        dst = kHostIsLittleEndian ? static_cast<std::uint16_t>(dst)
                                  : bswap16(static_cast<std::uint16_t>(dst));
        break;
      case kLe32:
        dst = kHostIsLittleEndian ? static_cast<std::uint32_t>(dst)
                                  : bswap32(static_cast<std::uint32_t>(dst));
        break;
      case kLe64: dst = kHostIsLittleEndian ? dst : bswap64(dst); break;

      case kLd1: dst = load_unaligned<std::uint8_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd2: dst = load_unaligned<std::uint16_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd4: dst = load_unaligned<std::uint32_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kLd8: dst = load_unaligned<std::uint64_t>(reinterpret_cast<const void*>(src + op->off)); break;
      case kSt1R: store_unaligned<std::uint8_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint8_t>(src)); break;
      case kSt2R: store_unaligned<std::uint16_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint16_t>(src)); break;
      case kSt4R: store_unaligned<std::uint32_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint32_t>(src)); break;
      case kSt8R: store_unaligned<std::uint64_t>(reinterpret_cast<void*>(dst + op->off), src); break;
      case kSt1I: store_unaligned<std::uint8_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint8_t>(op->imm)); break;
      case kSt2I: store_unaligned<std::uint16_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint16_t>(op->imm)); break;
      case kSt4I: store_unaligned<std::uint32_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint32_t>(op->imm)); break;
      case kSt8I: store_unaligned<std::uint64_t>(reinterpret_cast<void*>(dst + op->off), static_cast<std::uint64_t>(static_cast<std::int64_t>(op->imm))); break;

      case kLdImm64: dst = op->imm64; break;

      case kJa: op = base + op->target; continue;

#define JUMP_R(K, CMP)                             \
  case K:                                          \
    if (CMP) { op = base + op->target; continue; } \
    break;
      JUMP_R(kJeqR, dst == src)
      JUMP_R(kJneR, dst != src)
      JUMP_R(kJgtR, dst > src)
      JUMP_R(kJgeR, dst >= src)
      JUMP_R(kJltR, dst < src)
      JUMP_R(kJleR, dst <= src)
      JUMP_R(kJsetR, (dst & src) != 0)
      JUMP_R(kJsgtR, static_cast<std::int64_t>(dst) > static_cast<std::int64_t>(src))
      JUMP_R(kJsgeR, static_cast<std::int64_t>(dst) >= static_cast<std::int64_t>(src))
      JUMP_R(kJsltR, static_cast<std::int64_t>(dst) < static_cast<std::int64_t>(src))
      JUMP_R(kJsleR, static_cast<std::int64_t>(dst) <= static_cast<std::int64_t>(src))
      JUMP_R(kJeqI, dst == op->imm64)
      JUMP_R(kJneI, dst != op->imm64)
      JUMP_R(kJgtI, dst > op->imm64)
      JUMP_R(kJgeI, dst >= op->imm64)
      JUMP_R(kJltI, dst < op->imm64)
      JUMP_R(kJleI, dst <= op->imm64)
      JUMP_R(kJsetI, (dst & op->imm64) != 0)
      JUMP_R(kJsgtI, static_cast<std::int64_t>(dst) > static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsgeI, static_cast<std::int64_t>(dst) >= static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsltI, static_cast<std::int64_t>(dst) < static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJsleI, static_cast<std::int64_t>(dst) <= static_cast<std::int64_t>(op->imm64))
      JUMP_R(kJeq32R, static_cast<std::uint32_t>(dst) == static_cast<std::uint32_t>(src))
      JUMP_R(kJne32R, static_cast<std::uint32_t>(dst) != static_cast<std::uint32_t>(src))
      JUMP_R(kJgt32R, static_cast<std::uint32_t>(dst) > static_cast<std::uint32_t>(src))
      JUMP_R(kJge32R, static_cast<std::uint32_t>(dst) >= static_cast<std::uint32_t>(src))
      JUMP_R(kJlt32R, static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(src))
      JUMP_R(kJle32R, static_cast<std::uint32_t>(dst) <= static_cast<std::uint32_t>(src))
      JUMP_R(kJset32R, (static_cast<std::uint32_t>(dst) & static_cast<std::uint32_t>(src)) != 0)
      JUMP_R(kJsgt32R, static_cast<std::int32_t>(dst) > static_cast<std::int32_t>(src))
      JUMP_R(kJsge32R, static_cast<std::int32_t>(dst) >= static_cast<std::int32_t>(src))
      JUMP_R(kJslt32R, static_cast<std::int32_t>(dst) < static_cast<std::int32_t>(src))
      JUMP_R(kJsle32R, static_cast<std::int32_t>(dst) <= static_cast<std::int32_t>(src))
      JUMP_R(kJeq32I, static_cast<std::uint32_t>(dst) == static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJne32I, static_cast<std::uint32_t>(dst) != static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJgt32I, static_cast<std::uint32_t>(dst) > static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJge32I, static_cast<std::uint32_t>(dst) >= static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJlt32I, static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJle32I, static_cast<std::uint32_t>(dst) <= static_cast<std::uint32_t>(op->imm))
      JUMP_R(kJset32I, (static_cast<std::uint32_t>(dst) & static_cast<std::uint32_t>(op->imm)) != 0)
      JUMP_R(kJsgt32I, static_cast<std::int32_t>(dst) > op->imm)
      JUMP_R(kJsge32I, static_cast<std::int32_t>(dst) >= op->imm)
      JUMP_R(kJslt32I, static_cast<std::int32_t>(dst) < op->imm)
      JUMP_R(kJsle32I, static_cast<std::int32_t>(dst) <= op->imm)
#undef JUMP_R

      case kCall:
        ++res.helper_calls;
        regs[R0] =
            (*op->fn)(env, regs[R1], regs[R2], regs[R3], regs[R4], regs[R5]);
        break;
      case kExit:
        res.ret = regs[R0];
        return res;
    }
    ++op;
  }
}

}  // namespace srv6bpf::ebpf
