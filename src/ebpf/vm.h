// BpfSystem: the per-node "kernel BPF subsystem" facade.
//
// Owns the map registry, the helper registry and the execution engines, and
// enforces the kernel's invariant chain: programs are verified at load time,
// JIT-compiled if verification succeeded, and only then attachable to hooks.
// A node-wide JIT switch mirrors /proc/sys/net/core/bpf_jit_enable, which the
// paper toggles for its §3.2 JIT experiment (and which is forced off on the
// Turris Omnia CPE in §4.2 because of the ARM32 JIT bug).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/interp.h"
#include "ebpf/jit.h"
#include "ebpf/map.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "util/function_ref.h"

namespace srv6bpf::ebpf {

class BpfSystem;

// One program invocation inside a burst run: the ctx argument handed to the
// program and the slot its result lands in.
struct BurstInvocation {
  std::uint64_t ctx = 0;
  ExecResult result;
};

// A verified, loaded program plus its compiled form.
class LoadedProgram {
 public:
  LoadedProgram(Program prog, std::shared_ptr<const CompiledProgram> compiled)
      : prog_(std::move(prog)), compiled_(std::move(compiled)) {}

  const Program& program() const noexcept { return prog_; }
  const std::string& name() const noexcept { return prog_.name(); }
  ProgType type() const noexcept { return prog_.type(); }
  const CompiledProgram& compiled() const noexcept { return *compiled_; }

  // Runs this program over a vector of invocations on `sys`'s selected
  // engine, resolving engine dispatch and env binding once for the whole
  // burst. `env` is shared across the burst; `prep(i)`, when provided, is
  // called immediately before slot i to retarget env/ctx at packet i (and is
  // where callers harvest per-packet state left behind by slot i-1). The
  // hook is a non-owning FunctionRef: it must outlive the call, and costs
  // no allocation per burst.
  void run_burst(const BpfSystem& sys, ExecEnv& env,
                 std::span<BurstInvocation> batch,
                 util::FunctionRef<void(std::size_t)> prep = {}) const;

 private:
  Program prog_;
  std::shared_ptr<const CompiledProgram> compiled_;
};

using ProgHandle = std::shared_ptr<LoadedProgram>;

// Which execution engine BpfSystem::run uses.
//   kJit           — unchecked decoded form (bpf_jit_enable = 1);
//   kInterp        — pre-decoded checked interpreter (bpf_jit_enable = 0);
//   kInterpBaseline — legacy decode-every-step interpreter, kept as the
//                     reference point the §3.2 benches compare against.
enum class EngineKind { kJit, kInterp, kInterpBaseline };

class BpfSystem {
 public:
  BpfSystem() { register_generic_helpers(helpers_); }

  MapRegistry& maps() noexcept { return maps_; }
  const MapRegistry& maps() const noexcept { return maps_; }
  HelperRegistry& helpers() noexcept { return helpers_; }

  // bpf_jit_enable. Default on, as in the paper's main experiments.
  void set_jit_enabled(bool on) noexcept {
    engine_ = on ? EngineKind::kJit : EngineKind::kInterp;
  }
  bool jit_enabled() const noexcept { return engine_ == EngineKind::kJit; }

  // Finer-grained engine choice (benchmarks use the baseline interpreter to
  // quantify what decode-once dispatch buys).
  void set_engine(EngineKind e) noexcept { engine_ = e; }
  EngineKind engine() const noexcept { return engine_; }

  struct LoadResult {
    ProgHandle prog;  // null on verification failure
    VerifyResult verify;
    bool ok() const noexcept { return prog != nullptr; }
  };

  // Verify + compile. On verifier rejection returns a null handle and the
  // verifier diagnostics.
  LoadResult load(std::string name, ProgType type, std::vector<Insn> insns,
                  std::size_t sloc_hint = 0);

  // Runs a loaded program with the node's registries wired into `env`,
  // on the engine selected via set_engine / set_jit_enabled.
  ExecResult run(const LoadedProgram& prog, ExecEnv& env,
                 std::uint64_t ctx) const;

  // Run with an explicit engine choice (benchmarks use this to compare).
  // run_interpreted is the pre-decoded threaded-dispatch path;
  // run_interp_baseline is the legacy decode-every-step path.
  ExecResult run_interpreted(const LoadedProgram& prog, ExecEnv& env,
                             std::uint64_t ctx) const;
  ExecResult run_interp_baseline(const LoadedProgram& prog, ExecEnv& env,
                                 std::uint64_t ctx) const;
  ExecResult run_jit(const LoadedProgram& prog, ExecEnv& env,
                     std::uint64_t ctx) const;

 private:
  friend class LoadedProgram;  // run_burst resolves the engine once

  void bind_env(ExecEnv& env) const;

  MapRegistry maps_;
  HelperRegistry helpers_;
  Interpreter interp_;
  EngineKind engine_ = EngineKind::kJit;
};

}  // namespace srv6bpf::ebpf
