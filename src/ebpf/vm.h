// BpfSystem: the per-node "kernel BPF subsystem" facade.
//
// Owns the map registry, the helper registry and the execution engines, and
// enforces the kernel's invariant chain: programs are verified at load time,
// JIT-compiled if verification succeeded, and only then attachable to hooks.
// A node-wide JIT switch mirrors /proc/sys/net/core/bpf_jit_enable, which the
// paper toggles for its §3.2 JIT experiment (and which is forced off on the
// Turris Omnia CPE in §4.2 because of the ARM32 JIT bug).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/interp.h"
#include "ebpf/jit.h"
#include "ebpf/map.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "util/function_ref.h"

namespace srv6bpf::ebpf {

class BpfSystem;

// One program invocation inside a burst run: the ctx argument handed to the
// program and the slot its result lands in.
struct BurstInvocation {
  std::uint64_t ctx = 0;
  ExecResult result;
};

// Which execution engine runs a program. The order is "fastest first":
//   kNative         — emitted x86-64 machine code (ebpf/jit_x86.h); the
//                     default when the host supports it;
//   kUnchecked      — unchecked decoded form, the portable JIT fallback
//                     (non-x86-64 hosts, or W^X pages unavailable);
//   kInterp         — pre-decoded checked interpreter (bpf_jit_enable = 0);
//   kInterpBaseline — legacy decode-every-step interpreter, kept as the
//                     reference point the §3.2 benches compare against.
// kNative and kUnchecked are both "JIT" in the paper's bpf_jit_enable sense:
// verifier-trusting, no runtime checks.
enum class EngineKind { kNative, kUnchecked, kInterp, kInterpBaseline };

constexpr const char* engine_name(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kNative: return "native";
    case EngineKind::kUnchecked: return "unchecked";
    case EngineKind::kInterp: return "interp";
    case EngineKind::kInterpBaseline: return "interp-baseline";
  }
  return "?";
}

// True for the verifier-trusting engines (what the kernel's bpf_jit_enable=1
// buys); the datapath accounting buckets instruction counts by this.
constexpr bool engine_is_jit(EngineKind e) noexcept {
  return e == EngineKind::kNative || e == EngineKind::kUnchecked;
}

// A verified, loaded program plus its compiled form.
class LoadedProgram {
 public:
  LoadedProgram(Program prog, std::shared_ptr<const CompiledProgram> compiled,
                EngineKind engine)
      : prog_(std::move(prog)),
        compiled_(std::move(compiled)),
        engine_(engine) {}

  const Program& program() const noexcept { return prog_; }
  const std::string& name() const noexcept { return prog_.name(); }
  ProgType type() const noexcept { return prog_.type(); }
  const CompiledProgram& compiled() const noexcept { return *compiled_; }

  // The engine this program resolved to at load time: the system's selected
  // engine with kNative downgraded to kUnchecked when no machine code could
  // be emitted. Purely observational — run() re-resolves against the
  // system's *current* selection so benches can flip engines after load.
  EngineKind engine() const noexcept { return engine_; }

  // Runs this program over a vector of invocations on `sys`'s selected
  // engine, resolving engine dispatch and env binding once for the whole
  // burst. `env` is shared across the burst; `prep(i)`, when provided, is
  // called immediately before slot i to retarget env/ctx at packet i (and is
  // where callers harvest per-packet state left behind by slot i-1). The
  // hook is a non-owning FunctionRef: it must outlive the call, and costs
  // no allocation per burst.
  void run_burst(const BpfSystem& sys, ExecEnv& env,
                 std::span<BurstInvocation> batch,
                 util::FunctionRef<void(std::size_t)> prep = {}) const;

 private:
  Program prog_;
  std::shared_ptr<const CompiledProgram> compiled_;
  EngineKind engine_;
};

using ProgHandle = std::shared_ptr<LoadedProgram>;

class BpfSystem {
 public:
  BpfSystem() { register_generic_helpers(helpers_); }

  MapRegistry& maps() noexcept { return maps_; }
  const MapRegistry& maps() const noexcept { return maps_; }
  HelperRegistry& helpers() noexcept { return helpers_; }

  // bpf_jit_enable. Default on, as in the paper's main experiments: native
  // machine code where the host supports it, the unchecked engine otherwise.
  void set_jit_enabled(bool on) noexcept {
    engine_ = on ? EngineKind::kNative : EngineKind::kInterp;
  }
  bool jit_enabled() const noexcept { return engine_is_jit(engine_); }

  // Finer-grained engine choice (benchmarks use the baseline interpreter to
  // quantify what decode-once dispatch buys).
  void set_engine(EngineKind e) noexcept { engine_ = e; }
  EngineKind engine() const noexcept { return engine_; }

  // The engine `prog` would actually run on under the current selection:
  // kNative degrades to kUnchecked when no machine code was emitted for it.
  EngineKind engine_for(const LoadedProgram& prog) const noexcept {
    if (engine_ == EngineKind::kNative && !prog.compiled().has_native())
      return EngineKind::kUnchecked;
    return engine_;
  }

  // When enabled, each successful load logs one line (program name, op
  // count, resolved engine, emitted-code size) to stderr. Defaults to the
  // SRV6BPF_LOG_LOADS environment variable so scenario binaries can be
  // inspected without a rebuild; tests that load thousands of programs keep
  // it off.
  void set_log_loads(bool on) noexcept { log_loads_ = on; }

  struct LoadResult {
    ProgHandle prog;  // null on verification failure
    VerifyResult verify;
    bool ok() const noexcept { return prog != nullptr; }
  };

  // Verify + compile. On verifier rejection returns a null handle and the
  // verifier diagnostics.
  LoadResult load(std::string name, ProgType type, std::vector<Insn> insns,
                  std::size_t sloc_hint = 0);

  // Runs a loaded program with the node's registries wired into `env`,
  // on the engine selected via set_engine / set_jit_enabled.
  ExecResult run(const LoadedProgram& prog, ExecEnv& env,
                 std::uint64_t ctx) const;

  // Run with an explicit engine choice (benchmarks use this to compare).
  // run_native executes emitted machine code (falls back to run_unchecked
  // when none exists); run_unchecked is the portable no-checks path;
  // run_interpreted is the pre-decoded threaded-dispatch path;
  // run_interp_baseline is the legacy decode-every-step path.
  ExecResult run_native(const LoadedProgram& prog, ExecEnv& env,
                        std::uint64_t ctx) const;
  ExecResult run_unchecked(const LoadedProgram& prog, ExecEnv& env,
                           std::uint64_t ctx) const;
  ExecResult run_interpreted(const LoadedProgram& prog, ExecEnv& env,
                             std::uint64_t ctx) const;
  ExecResult run_interp_baseline(const LoadedProgram& prog, ExecEnv& env,
                                 std::uint64_t ctx) const;

 private:
  friend class LoadedProgram;  // run_burst resolves the engine once

  void bind_env(ExecEnv& env) const;

  static bool log_loads_default() noexcept;  // SRV6BPF_LOG_LOADS env var

  MapRegistry maps_;
  HelperRegistry helpers_;
  Interpreter interp_;
  EngineKind engine_ = EngineKind::kNative;
  bool log_loads_ = log_loads_default();
};

}  // namespace srv6bpf::ebpf
