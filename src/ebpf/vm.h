// BpfSystem: the per-node "kernel BPF subsystem" facade.
//
// Owns the map registry, the helper registry and the execution engines, and
// enforces the kernel's invariant chain: programs are verified at load time,
// JIT-compiled if verification succeeded, and only then attachable to hooks.
// A node-wide JIT switch mirrors /proc/sys/net/core/bpf_jit_enable, which the
// paper toggles for its §3.2 JIT experiment (and which is forced off on the
// Turris Omnia CPE in §4.2 because of the ARM32 JIT bug).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/interp.h"
#include "ebpf/jit.h"
#include "ebpf/map.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"

namespace srv6bpf::ebpf {

// A verified, loaded program plus its compiled form.
class LoadedProgram {
 public:
  LoadedProgram(Program prog, std::shared_ptr<const CompiledProgram> compiled)
      : prog_(std::move(prog)), compiled_(std::move(compiled)) {}

  const Program& program() const noexcept { return prog_; }
  const std::string& name() const noexcept { return prog_.name(); }
  ProgType type() const noexcept { return prog_.type(); }
  const CompiledProgram& compiled() const noexcept { return *compiled_; }

 private:
  Program prog_;
  std::shared_ptr<const CompiledProgram> compiled_;
};

using ProgHandle = std::shared_ptr<LoadedProgram>;

class BpfSystem {
 public:
  BpfSystem() { register_generic_helpers(helpers_); }

  MapRegistry& maps() noexcept { return maps_; }
  const MapRegistry& maps() const noexcept { return maps_; }
  HelperRegistry& helpers() noexcept { return helpers_; }

  // bpf_jit_enable. Default on, as in the paper's main experiments.
  void set_jit_enabled(bool on) noexcept { jit_enabled_ = on; }
  bool jit_enabled() const noexcept { return jit_enabled_; }

  struct LoadResult {
    ProgHandle prog;  // null on verification failure
    VerifyResult verify;
    bool ok() const noexcept { return prog != nullptr; }
  };

  // Verify + compile. On verifier rejection returns a null handle and the
  // verifier diagnostics.
  LoadResult load(std::string name, ProgType type, std::vector<Insn> insns,
                  std::size_t sloc_hint = 0);

  // Runs a loaded program with the node's registries wired into `env`.
  // Uses the JIT engine when enabled, the interpreter otherwise.
  ExecResult run(const LoadedProgram& prog, ExecEnv& env,
                 std::uint64_t ctx) const;

  // Run with an explicit engine choice (benchmarks use this to compare).
  ExecResult run_interpreted(const LoadedProgram& prog, ExecEnv& env,
                             std::uint64_t ctx) const;
  ExecResult run_jit(const LoadedProgram& prog, ExecEnv& env,
                     std::uint64_t ctx) const;

 private:
  MapRegistry maps_;
  HelperRegistry helpers_;
  Interpreter interp_;
  bool jit_enabled_ = true;
};

}  // namespace srv6bpf::ebpf
