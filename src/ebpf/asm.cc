#include "ebpf/asm.h"

#include <sstream>
#include <stdexcept>

namespace srv6bpf::ebpf {

std::uint8_t Asm::u4(int reg) {
  if (reg < 0 || reg >= kNumRegs + 5) {
    // Allow a handful of invalid register numbers through so the verifier
    // test corpus can exercise the "unknown register" rejection path, but
    // catch obvious programmer typos.
    throw std::invalid_argument("eBPF register out of range: " +
                                std::to_string(reg));
  }
  return static_cast<std::uint8_t>(reg);
}

Asm& Asm::ld_imm64(int dst, std::uint64_t imm) {
  emit({BPF_LD | BPF_DW | BPF_IMM, u4(dst), 0, 0,
        static_cast<std::int32_t>(imm & 0xffffffffu)});
  emit({0, 0, 0, 0, static_cast<std::int32_t>(imm >> 32)});
  return *this;
}

Asm& Asm::ld_map(int dst, std::uint32_t map_id) {
  emit({BPF_LD | BPF_DW | BPF_IMM, u4(dst), BPF_PSEUDO_MAP_FD, 0,
        static_cast<std::int32_t>(map_id)});
  emit({0, 0, 0, 0, 0});
  return *this;
}

Asm& Asm::label(const std::string& name) {
  if (!labels_.emplace(name, insns_.size()).second)
    throw std::runtime_error("duplicate label: " + name);
  return *this;
}

Asm& Asm::ja(const std::string& target) {
  fixups_.push_back({insns_.size(), target});
  return emit({BPF_JMP | BPF_JA, 0, 0, 0, 0});
}

Asm& Asm::jmp_imm(std::uint8_t op, int dst, std::int32_t imm,
                  const std::string& target) {
  fixups_.push_back({insns_.size(), target});
  return emit({static_cast<std::uint8_t>(BPF_JMP | op | BPF_K), u4(dst), 0, 0,
               imm});
}

Asm& Asm::jmp_reg(std::uint8_t op, int dst, int src,
                  const std::string& target) {
  fixups_.push_back({insns_.size(), target});
  return emit({static_cast<std::uint8_t>(BPF_JMP | op | BPF_X), u4(dst),
               u4(src), 0, 0});
}

std::vector<Insn> Asm::build() const {
  std::vector<Insn> out = insns_;
  for (const Fixup& f : fixups_) {
    auto it = labels_.find(f.target);
    if (it == labels_.end())
      throw std::runtime_error("undefined label: " + f.target);
    // Relative offset from the *next* instruction, as in the kernel.
    const std::ptrdiff_t rel = static_cast<std::ptrdiff_t>(it->second) -
                               static_cast<std::ptrdiff_t>(f.insn_index) - 1;
    if (rel < INT16_MIN || rel > INT16_MAX)
      throw std::runtime_error("jump offset out of int16 range to label: " +
                               f.target);
    out[f.insn_index].off = static_cast<std::int16_t>(rel);
  }
  return out;
}

// ---- Disassembler ------------------------------------------------------------

namespace {

const char* alu_name(std::uint8_t op) {
  switch (op) {
    case BPF_ADD: return "add";
    case BPF_SUB: return "sub";
    case BPF_MUL: return "mul";
    case BPF_DIV: return "div";
    case BPF_OR: return "or";
    case BPF_AND: return "and";
    case BPF_LSH: return "lsh";
    case BPF_RSH: return "rsh";
    case BPF_NEG: return "neg";
    case BPF_MOD: return "mod";
    case BPF_XOR: return "xor";
    case BPF_MOV: return "mov";
    case BPF_ARSH: return "arsh";
    case BPF_END: return "end";
  }
  return "alu?";
}

const char* jmp_name(std::uint8_t op) {
  switch (op) {
    case BPF_JA: return "ja";
    case BPF_JEQ: return "jeq";
    case BPF_JGT: return "jgt";
    case BPF_JGE: return "jge";
    case BPF_JSET: return "jset";
    case BPF_JNE: return "jne";
    case BPF_JSGT: return "jsgt";
    case BPF_JSGE: return "jsge";
    case BPF_JLT: return "jlt";
    case BPF_JLE: return "jle";
    case BPF_JSLT: return "jslt";
    case BPF_JSLE: return "jsle";
  }
  return "jmp?";
}

const char* size_name(std::uint8_t size) {
  switch (size) {
    case BPF_W: return "u32";
    case BPF_H: return "u16";
    case BPF_B: return "u8";
    case BPF_DW: return "u64";
  }
  return "u?";
}

}  // namespace

std::string disasm(const Insn& insn) {
  std::ostringstream os;
  const std::uint8_t cls = insn.insn_class();
  switch (cls) {
    case BPF_ALU:
    case BPF_ALU64: {
      const std::uint8_t op = insn.alu_op();
      const char* suffix = cls == BPF_ALU ? "32" : "64";
      if (op == BPF_END) {
        os << (insn.uses_reg_src() ? "be" : "le") << insn.imm << " r"
           << int(insn.dst);
      } else if (op == BPF_NEG) {
        os << "neg" << suffix << " r" << int(insn.dst);
      } else if (insn.uses_reg_src()) {
        os << alu_name(op) << suffix << " r" << int(insn.dst) << ", r"
           << int(insn.src);
      } else {
        os << alu_name(op) << suffix << " r" << int(insn.dst) << ", "
           << insn.imm;
      }
      break;
    }
    case BPF_JMP:
    case BPF_JMP32: {
      if (insn.is_call()) {
        os << "call " << insn.imm;
      } else if (insn.is_exit()) {
        os << "exit";
      } else if (insn.is_unconditional_jump()) {
        os << "ja +" << insn.off;
      } else if (insn.uses_reg_src()) {
        os << jmp_name(insn.alu_op()) << " r" << int(insn.dst) << ", r"
           << int(insn.src) << ", +" << insn.off;
      } else {
        os << jmp_name(insn.alu_op()) << " r" << int(insn.dst) << ", "
           << insn.imm << ", +" << insn.off;
      }
      break;
    }
    case BPF_LDX:
      os << "ldx" << size_name(insn.size_field()) << " r" << int(insn.dst)
         << ", [r" << int(insn.src) << (insn.off >= 0 ? "+" : "") << insn.off
         << "]";
      break;
    case BPF_STX:
      os << "stx" << size_name(insn.size_field()) << " [r" << int(insn.dst)
         << (insn.off >= 0 ? "+" : "") << insn.off << "], r" << int(insn.src);
      break;
    case BPF_ST:
      os << "st" << size_name(insn.size_field()) << " [r" << int(insn.dst)
         << (insn.off >= 0 ? "+" : "") << insn.off << "], " << insn.imm;
      break;
    case BPF_LD:
      if (insn.is_ld_imm64()) {
        if (insn.src == BPF_PSEUDO_MAP_FD)
          os << "ld_map r" << int(insn.dst) << ", map#" << insn.imm;
        else
          os << "ld_imm64 r" << int(insn.dst) << ", lo32=" << insn.imm;
      } else {
        os << "ld? opcode=0x" << std::hex << int(insn.opcode);
      }
      break;
    default:
      os << "?? opcode=0x" << std::hex << int(insn.opcode);
  }
  return os.str();
}

std::string disasm(const std::vector<Insn>& prog) {
  std::ostringstream os;
  for (std::size_t i = 0; i < prog.size(); ++i) {
    os << i << ": " << disasm(prog[i]) << "\n";
    if (prog[i].is_ld_imm64()) ++i;  // skip the second slot
  }
  return os.str();
}

}  // namespace srv6bpf::ebpf
