// A loaded eBPF program: instructions + attachment type + verification state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ebpf/insn.h"

namespace srv6bpf::ebpf {

// Attachment points. LWT_IN/OUT run at the network-layer input/output of a
// route; LWT_XMIT just before transmission (and is the hook that may call
// bpf_lwt_push_encap with full freedom); LWT_SEG6LOCAL is the paper's
// End.BPF program type, which may call the three seg6 helpers.
// SOCKET_FILTER is the classic SO_ATTACH_FILTER attachment: programs run
// over packets delivered to an application socket and return the number of
// bytes to accept (0 = drop) — the target type of the cBPF translator.
enum class ProgType {
  kLwtIn,
  kLwtOut,
  kLwtXmit,
  kLwtSeg6Local,
  kSocketFilter,
};

const char* prog_type_name(ProgType t) noexcept;

class Program {
 public:
  Program(std::string name, ProgType type, std::vector<Insn> insns)
      : name_(std::move(name)), type_(type), insns_(std::move(insns)) {}

  const std::string& name() const noexcept { return name_; }
  ProgType type() const noexcept { return type_; }
  const std::vector<Insn>& insns() const noexcept { return insns_; }
  std::size_t size() const noexcept { return insns_.size(); }

  bool verified() const noexcept { return verified_; }
  void set_verified() noexcept { verified_ = true; }

  // Source-lines-of-code equivalent, reported by the benches to compare with
  // the paper's SLOC figures (the paper counts C source lines; we report the
  // instruction-slot count of the hand-assembled equivalent).
  std::size_t sloc_hint() const noexcept { return sloc_hint_; }
  void set_sloc_hint(std::size_t n) noexcept { sloc_hint_ = n; }

 private:
  std::string name_;
  ProgType type_;
  std::vector<Insn> insns_;
  bool verified_ = false;
  std::size_t sloc_hint_ = 0;
};

}  // namespace srv6bpf::ebpf
