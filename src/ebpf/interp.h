// The eBPF interpreter: the checked execution engine, analogous to the
// kernel's ___bpf_prog_run().
//
// Two paths:
//   * run(DecodedProgram) — the hot path. Consumes the decode-once program
//     representation (ebpf/decode.h) with direct-threaded computed-goto
//     dispatch (switch fallback behind SRV6BPF_NO_COMPUTED_GOTO), a
//     single-comparison stack fast path on every memory access, and a step
//     budget amortised over backward jumps and helper calls instead of every
//     instruction. This is what BpfSystem uses when the JIT is disabled.
//   * run(Program) — the baseline engine, which re-decodes every instruction
//     on every step. It is kept (a) as the reference point the §3.2 benches
//     compare against and (b) because it safely executes *unverified*
//     instruction streams, which the decoded form does not accept.
//
// Both paths bounds-check every program memory access against the
// environment's region list; the JIT engine (ebpf/jit.h) runs the same
// decoded form without checks, trusting the verifier.
#pragma once

#include "ebpf/decode.h"
#include "ebpf/exec.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

// Hard cap on executed instructions; the verifier guarantees termination but
// the interpreter must also be safe on unverified test inputs. The
// pre-decoded path checks the budget only at backward jumps and helper
// calls, so it may overshoot by at most one program length.
inline constexpr std::uint64_t kMaxInterpSteps = 1u << 22;

class Interpreter {
 public:
  // Hot path: executes a pre-decoded program (decode-once, threaded
  // dispatch, runtime memory checks). `ctx` is the address of the program
  // context (a SkbCtx for LWT/seg6local programs). The caller must have
  // populated env.regions with the ctx and packet ranges.
  ExecResult run(const DecodedProgram& prog, ExecEnv& env,
                 std::uint64_t ctx) const;

  // Baseline path: decode-every-step reference engine; accepts unverified
  // instruction streams.
  ExecResult run(const Program& prog, ExecEnv& env, std::uint64_t ctx) const;
};

}  // namespace srv6bpf::ebpf
