// The eBPF interpreter: the slow-but-simple execution engine, analogous to
// the kernel's ___bpf_prog_run(). Decodes every instruction on every step and
// bounds-checks each memory access against the environment's region list.
//
// The JIT-style engine (ebpf/jit.h) runs the same programs from a pre-decoded
// representation; the throughput difference between the two engines is the
// subject of the paper's §3.2 JIT experiment.
#pragma once

#include "ebpf/exec.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

class Interpreter {
 public:
  // Executes a verified program. `ctx` is the address of the program context
  // (a SkbCtx for LWT/seg6local programs). The caller must have populated
  // env.regions with the ctx and packet ranges.
  ExecResult run(const Program& prog, ExecEnv& env, std::uint64_t ctx) const;
};

}  // namespace srv6bpf::ebpf
