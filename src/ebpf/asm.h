// A typed in-C++ eBPF assembler.
//
// The paper's network functions were written in C and compiled with the LLVM
// BPF backend; since this repository is self-contained we provide an
// assembler with symbolic labels instead. Programs read naturally:
//
//   Asm a;
//   a.mov64_reg(R6, R1)                       // save ctx
//    .call(helper::KTIME_GET_NS)
//    .stx(BPF_DW, R10, R0, -8)                // spill timestamp
//    .mov32_imm(R0, BPF_OK)
//    .exit_();
//   std::vector<Insn> prog = a.build();
//
// build() resolves forward/backward label references into relative offsets
// and fails loudly on undefined or duplicate labels.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ebpf/insn.h"

namespace srv6bpf::ebpf {

class Asm {
 public:
  // ---- ALU64 ----------------------------------------------------------------
  Asm& mov64_reg(int dst, int src) { return alu64_reg(BPF_MOV, dst, src); }
  Asm& mov64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_MOV, dst, imm); }
  Asm& add64_reg(int dst, int src) { return alu64_reg(BPF_ADD, dst, src); }
  Asm& add64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_ADD, dst, imm); }
  Asm& sub64_reg(int dst, int src) { return alu64_reg(BPF_SUB, dst, src); }
  Asm& sub64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_SUB, dst, imm); }
  Asm& mul64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_MUL, dst, imm); }
  Asm& mul64_reg(int dst, int src) { return alu64_reg(BPF_MUL, dst, src); }
  Asm& div64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_DIV, dst, imm); }
  Asm& mod64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_MOD, dst, imm); }
  Asm& mod64_reg(int dst, int src) { return alu64_reg(BPF_MOD, dst, src); }
  Asm& and64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_AND, dst, imm); }
  Asm& and64_reg(int dst, int src) { return alu64_reg(BPF_AND, dst, src); }
  Asm& or64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_OR, dst, imm); }
  Asm& or64_reg(int dst, int src) { return alu64_reg(BPF_OR, dst, src); }
  Asm& xor64_reg(int dst, int src) { return alu64_reg(BPF_XOR, dst, src); }
  Asm& xor64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_XOR, dst, imm); }
  Asm& lsh64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_LSH, dst, imm); }
  Asm& lsh64_reg(int dst, int src) { return alu64_reg(BPF_LSH, dst, src); }
  Asm& rsh64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_RSH, dst, imm); }
  Asm& rsh64_reg(int dst, int src) { return alu64_reg(BPF_RSH, dst, src); }
  Asm& arsh64_imm(int dst, std::int32_t imm) { return alu64_imm(BPF_ARSH, dst, imm); }
  Asm& neg64(int dst) { return emit({BPF_ALU64 | BPF_NEG, u4(dst), 0, 0, 0}); }

  // ---- ALU32 (upper 32 bits of dst are zeroed, like the kernel) -------------
  Asm& mov32_reg(int dst, int src) { return alu32_reg(BPF_MOV, dst, src); }
  Asm& mov32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_MOV, dst, imm); }
  Asm& add32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_ADD, dst, imm); }
  Asm& add32_reg(int dst, int src) { return alu32_reg(BPF_ADD, dst, src); }
  Asm& sub32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_SUB, dst, imm); }
  Asm& mul32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_MUL, dst, imm); }
  Asm& div32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_DIV, dst, imm); }
  Asm& and32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_AND, dst, imm); }
  Asm& or32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_OR, dst, imm); }
  Asm& lsh32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_LSH, dst, imm); }
  Asm& rsh32_imm(int dst, std::int32_t imm) { return alu32_imm(BPF_RSH, dst, imm); }

  // ---- Byte swaps ------------------------------------------------------------
  // to_be16/32/64: convert dst between host and big-endian (BPF_END | TO_BE).
  Asm& to_be(int dst, int bits) {
    return emit({static_cast<std::uint8_t>(BPF_ALU | BPF_END | BPF_TO_BE),
                 u4(dst), 0, 0, bits});
  }
  Asm& to_le(int dst, int bits) {
    return emit({static_cast<std::uint8_t>(BPF_ALU | BPF_END | BPF_TO_LE),
                 u4(dst), 0, 0, bits});
  }

  // ---- Memory ---------------------------------------------------------------
  // ldx(size, dst, src, off): dst = *(size*)(src + off)
  Asm& ldx(std::uint8_t size, int dst, int src, std::int16_t off) {
    return emit({static_cast<std::uint8_t>(BPF_LDX | size | BPF_MEM), u4(dst),
                 u4(src), off, 0});
  }
  // stx(size, dst, src, off): *(size*)(dst + off) = src
  Asm& stx(std::uint8_t size, int dst, int src, std::int16_t off) {
    return emit({static_cast<std::uint8_t>(BPF_STX | size | BPF_MEM), u4(dst),
                 u4(src), off, 0});
  }
  // st(size, dst, off, imm): *(size*)(dst + off) = imm
  Asm& st(std::uint8_t size, int dst, std::int16_t off, std::int32_t imm) {
    return emit({static_cast<std::uint8_t>(BPF_ST | size | BPF_MEM), u4(dst),
                 0, off, imm});
  }

  // ---- 64-bit immediates & map references ------------------------------------
  Asm& ld_imm64(int dst, std::uint64_t imm);
  // Loads a map reference (verifier type CONST_MAP_PTR). `map_id` is the id
  // assigned by MapRegistry.
  Asm& ld_map(int dst, std::uint32_t map_id);

  // ---- Control flow -----------------------------------------------------------
  Asm& label(const std::string& name);
  Asm& ja(const std::string& target);
  // 64-bit conditional jumps against register / immediate.
  Asm& jeq_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JEQ, dst, imm, t); }
  Asm& jne_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JNE, dst, imm, t); }
  Asm& jgt_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JGT, dst, imm, t); }
  Asm& jge_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JGE, dst, imm, t); }
  Asm& jlt_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JLT, dst, imm, t); }
  Asm& jle_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JLE, dst, imm, t); }
  Asm& jsgt_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JSGT, dst, imm, t); }
  Asm& jset_imm(int dst, std::int32_t imm, const std::string& t) { return jmp_imm(BPF_JSET, dst, imm, t); }
  Asm& jeq_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JEQ, dst, src, t); }
  Asm& jne_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JNE, dst, src, t); }
  Asm& jgt_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JGT, dst, src, t); }
  Asm& jge_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JGE, dst, src, t); }
  Asm& jlt_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JLT, dst, src, t); }
  Asm& jle_reg(int dst, int src, const std::string& t) { return jmp_reg(BPF_JLE, dst, src, t); }
  Asm& jmp_imm(std::uint8_t op, int dst, std::int32_t imm, const std::string& target);
  Asm& jmp_reg(std::uint8_t op, int dst, int src, const std::string& target);

  Asm& call(std::int32_t helper_id) {
    return emit({BPF_JMP | BPF_CALL, 0, 0, 0, helper_id});
  }
  Asm& exit_() { return emit({BPF_JMP | BPF_EXIT, 0, 0, 0, 0}); }

  // Raw escape hatch (used by the verifier test corpus to craft invalid
  // encodings on purpose).
  Asm& raw(Insn insn) { return emit(insn); }

  // Number of instruction slots emitted so far.
  std::size_t size() const noexcept { return insns_.size(); }

  // Resolve labels and return the finished program.
  // Throws std::runtime_error on undefined labels or out-of-range offsets.
  std::vector<Insn> build() const;

 private:
  Asm& alu64_reg(std::uint8_t op, int dst, int src) {
    return emit({static_cast<std::uint8_t>(BPF_ALU64 | op | BPF_X), u4(dst),
                 u4(src), 0, 0});
  }
  Asm& alu64_imm(std::uint8_t op, int dst, std::int32_t imm) {
    return emit({static_cast<std::uint8_t>(BPF_ALU64 | op | BPF_K), u4(dst), 0,
                 0, imm});
  }
  Asm& alu32_reg(std::uint8_t op, int dst, int src) {
    return emit({static_cast<std::uint8_t>(BPF_ALU | op | BPF_X), u4(dst),
                 u4(src), 0, 0});
  }
  Asm& alu32_imm(std::uint8_t op, int dst, std::int32_t imm) {
    return emit({static_cast<std::uint8_t>(BPF_ALU | op | BPF_K), u4(dst), 0,
                 0, imm});
  }
  Asm& emit(Insn insn) {
    insns_.push_back(insn);
    return *this;
  }
  static std::uint8_t u4(int reg);

  struct Fixup {
    std::size_t insn_index;
    std::string target;
  };
  std::vector<Insn> insns_;
  std::map<std::string, std::size_t> labels_;  // label -> insn index
  std::vector<Fixup> fixups_;
};

}  // namespace srv6bpf::ebpf
