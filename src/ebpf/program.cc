#include "ebpf/program.h"

namespace srv6bpf::ebpf {

const char* prog_type_name(ProgType t) noexcept {
  switch (t) {
    case ProgType::kLwtIn: return "lwt_in";
    case ProgType::kLwtOut: return "lwt_out";
    case ProgType::kLwtXmit: return "lwt_xmit";
    case ProgType::kLwtSeg6Local: return "lwt_seg6local";
    case ProgType::kSocketFilter: return "socket_filter";
  }
  return "?";
}

}  // namespace srv6bpf::ebpf
