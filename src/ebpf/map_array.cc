#include <cstring>

#include "ebpf/map_impl.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {

ArrayMap::ArrayMap(const MapDef& def) : Map(def) {
  storage_.assign(static_cast<std::size_t>(def.max_entries) * def.value_size,
                  0);
}

std::uint8_t* ArrayMap::lookup(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return nullptr;
  const std::uint32_t index = load_unaligned<std::uint32_t>(key.data());
  if (index >= max_entries()) return nullptr;
  return slot(index);
}

int ArrayMap::do_update(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> value,
                        std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  // Array entries always exist, so BPF_NOEXIST can never succeed.
  if (flags == BPF_NOEXIST) return kErrExist;
  if (flags > BPF_EXIST) return kErrInval;
  const std::uint32_t index = load_unaligned<std::uint32_t>(key.data());
  if (index >= max_entries()) return kErrNoEnt;
  std::memcpy(slot(index), value.data(), value.size());
  return kOk;
}

int ArrayMap::erase(std::span<const std::uint8_t>) {
  return kErrInval;  // array entries cannot be deleted (kernel behaviour)
}

}  // namespace srv6bpf::ebpf
