#include "ebpf/disasm.h"

#include <cinttypes>
#include <cstdio>

#include "ebpf/helpers.h"
#include "ebpf/jit.h"

namespace srv6bpf::ebpf {

const char* opkind_name(std::uint16_t kind) {
  static const char* const names[] = {
#define SRV6BPF_OPKIND_NAME(name) #name,
      SRV6BPF_OPKIND_LIST(SRV6BPF_OPKIND_NAME)
#undef SRV6BPF_OPKIND_NAME
  };
  return kind < kNumOpKinds ? names[kind] : "k?";
}

std::string disasm(const DecodedInsn& op) {
  char buf[128];
  const auto k = op.kind;
  int len;
  if ((k >= kAdd64R && k <= kArsh64R) || (k >= kAdd32R && k <= kArsh32R)) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u src=r%u",
                        opkind_name(k), op.dst, op.src);
  } else if ((k >= kAdd64I && k <= kArsh64I) ||
             (k >= kAdd32I && k <= kArsh32I) || k == kLdImm64) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u imm64=%#" PRIx64,
                        opkind_name(k), op.dst, op.imm64);
  } else if (k == kNeg64 || k == kNeg32 || (k >= kBe16 && k <= kLe64)) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u", opkind_name(k),
                        op.dst);
  } else if (k >= kLd1 && k <= kLd8) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u [r%u%+d]",
                        opkind_name(k), op.dst, op.src, op.off);
  } else if (k >= kSt1R && k <= kSt8R) {
    len = std::snprintf(buf, sizeof buf, "%-10s [r%u%+d] src=r%u",
                        opkind_name(k), op.dst, op.off, op.src);
  } else if (k >= kSt1I && k <= kSt8I) {
    len = std::snprintf(buf, sizeof buf, "%-10s [r%u%+d] imm=%d",
                        opkind_name(k), op.dst, op.off, op.imm);
  } else if (k == kJa) {
    len = std::snprintf(buf, sizeof buf, "%-10s -> %d", opkind_name(k),
                        op.target);
  } else if ((k >= kJeqR && k <= kJsleR) || (k >= kJeq32R && k <= kJsle32R)) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u src=r%u -> %d",
                        opkind_name(k), op.dst, op.src, op.target);
  } else if ((k >= kJeqI && k <= kJsleI) || (k >= kJeq32I && k <= kJsle32I)) {
    len = std::snprintf(buf, sizeof buf, "%-10s dst=r%u imm64=%#" PRIx64
                        " -> %d",
                        opkind_name(k), op.dst, op.imm64, op.target);
  } else if (k == kCall) {
    len = std::snprintf(buf, sizeof buf, "%-10s %s", opkind_name(k),
                        helper_name(op.imm).c_str());
  } else {  // kExit (or out-of-range)
    len = std::snprintf(buf, sizeof buf, "%s", opkind_name(k));
  }
  return std::string(buf, len > 0 ? static_cast<std::size_t>(len) : 0);
}

std::string disasm(const DecodedProgram& prog) {
  std::string out;
  out.reserve(prog.size() * 40);
  char head[32];
  for (std::size_t i = 0; i < prog.size(); ++i) {
    std::snprintf(head, sizeof head, "%4zu: ", i);
    out += head;
    out += disasm(prog.data()[i]);
    out += '\n';
  }
  return out;
}

std::string DecodedProgram::dump() const { return disasm(*this); }

std::string CompiledProgram::dump() const {
  std::string out = disasm(*decoded_);
  char tail[96];
  if (has_native()) {
    std::snprintf(tail, sizeof tail, "native: %zu bytes of x86-64 code\n",
                  native_->code_size());
  } else {
    std::snprintf(tail, sizeof tail, "native: none (unchecked fallback)\n");
  }
  out += tail;
  return out;
}

}  // namespace srv6bpf::ebpf
