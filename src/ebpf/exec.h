// Execution environment shared by the eBPF interpreter and the JIT engine.
//
// eBPF pointers are real host pointers (as in the kernel). The verifier is
// the primary safety mechanism; on top of it, both engines perform runtime
// bounds checks against the region list below (defense in depth — a verifier
// bug must not corrupt the simulator).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace srv6bpf::ebpf {

class MapRegistry;
class HelperRegistry;

struct MemRegion {
  std::uintptr_t base = 0;
  std::size_t len = 0;
  bool writable = false;

  bool contains(std::uintptr_t addr, std::size_t n) const noexcept {
    return addr >= base && n <= len && addr - base <= len - n;
  }
};

// Everything a running program may touch. Built by the attachment point
// (seg6local End.BPF, LWT hook, or a test fixture) before each run.
struct ExecEnv {
  MapRegistry* maps = nullptr;
  HelperRegistry* helpers = nullptr;

  // Opaque per-invocation state for helper implementations (e.g. the
  // Seg6ProgramCtx carrying the packet and the node's FIB).
  void* user = nullptr;

  // Monotonic clock for bpf_ktime_get_ns; defaults to 0 if unset.
  std::function<std::uint64_t()> now_ns;

  // Valid memory regions: the program context and (for packet programs) the
  // packet bytes. The engines add the stack themselves.
  std::vector<MemRegion> regions;

  // Deterministic source for bpf_get_prandom_u32.
  std::function<std::uint32_t()> prandom;

  bool readable(const void* p, std::size_t n) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    for (const MemRegion& r : regions)
      if (r.contains(a, n)) return true;
    return false;
  }
  bool writable(const void* p, std::size_t n) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    for (const MemRegion& r : regions)
      if (r.writable && r.contains(a, n)) return true;
    return false;
  }
};

struct ExecResult {
  std::uint64_t ret = 0;
  std::uint64_t insns_executed = 0;
  std::uint64_t helper_calls = 0;
  bool aborted = false;      // runtime fault (bad access, div-by-zero trap...)
  std::string error;

  bool ok() const noexcept { return !aborted; }
};

}  // namespace srv6bpf::ebpf
