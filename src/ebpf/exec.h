// Execution environment shared by the eBPF interpreter and the JIT engine.
//
// eBPF pointers are real host pointers (as in the kernel). The verifier is
// the primary safety mechanism; on top of it, both engines perform runtime
// bounds checks against the region list below (defense in depth — a verifier
// bug must not corrupt the simulator).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace srv6bpf::ebpf {

class MapRegistry;
class HelperRegistry;

struct MemRegion {
  std::uintptr_t base = 0;
  std::size_t len = 0;
  bool writable = false;

  bool contains(std::uintptr_t addr, std::size_t n) const noexcept {
    return addr >= base && n <= len && addr - base <= len - n;
  }
};

// Small-vector of memory regions with inline storage. A typical program run
// carries ctx + packet + stack plus a handful of map-value regions, so the
// common case never touches the heap — the per-packet hot path pushes and
// pops the stack region on every invocation, which used to cost a vector
// allocation. Regions beyond the inline capacity spill to a heap vector so
// correctness is preserved for lookup-heavy programs.
class RegionList {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  std::size_t size() const noexcept { return size_; }

  void push_back(const MemRegion& r) {
    if (size_ < kInlineCapacity)
      inline_[size_] = r;
    else
      spill_.push_back(r);
    ++size_;
  }

  void resize(std::size_t n) {
    if (n < size_)
      spill_.resize(n > kInlineCapacity ? n - kInlineCapacity : 0);
    else
      for (std::size_t i = size_; i < n; ++i) push_back(MemRegion{});
    size_ = n;
  }

  void clear() noexcept {
    spill_.clear();
    size_ = 0;
  }

  MemRegion& operator[](std::size_t i) noexcept {
    return i < kInlineCapacity ? inline_[i] : spill_[i - kInlineCapacity];
  }
  const MemRegion& operator[](std::size_t i) const noexcept {
    return i < kInlineCapacity ? inline_[i] : spill_[i - kInlineCapacity];
  }

 private:
  // Intentionally not value-initialised: only slots below size_ are ever
  // read, and zeroing 8 regions on every ExecEnv construction is measurable
  // on the per-packet path.
  std::array<MemRegion, kInlineCapacity> inline_;
  std::vector<MemRegion> spill_;
  std::size_t size_ = 0;
};

// Everything a running program may touch. Built by the attachment point
// (seg6local End.BPF, LWT hook, or a test fixture) before each run.
struct ExecEnv {
  MapRegistry* maps = nullptr;
  HelperRegistry* helpers = nullptr;

  // Opaque per-invocation state for helper implementations (e.g. the
  // Seg6ProgramCtx carrying the packet and the node's FIB).
  void* user = nullptr;

  // Monotonic clock for bpf_ktime_get_ns; defaults to 0 if unset.
  std::function<std::uint64_t()> now_ns;

  // CPU context this invocation runs on (the multi-core Node's RSS context
  // id). Read by bpf_get_smp_processor_id and by the map helpers to select
  // the slot of BPF_MAP_TYPE_PERCPU_* maps.
  std::uint32_t cpu_id = 0;

  // Valid memory regions: the program context and (for packet programs) the
  // packet bytes. The engines add the stack themselves.
  RegionList regions;

  // Deterministic source for bpf_get_prandom_u32.
  std::function<std::uint32_t()> prandom;

  bool readable(const void* p, std::size_t n) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    for (std::size_t i = 0; i < regions.size(); ++i)
      if (regions[i].contains(a, n)) return true;
    return false;
  }
  bool writable(const void* p, std::size_t n) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    for (std::size_t i = 0; i < regions.size(); ++i)
      if (regions[i].writable && regions[i].contains(a, n)) return true;
    return false;
  }
};

struct ExecResult {
  std::uint64_t ret = 0;
  std::uint64_t insns_executed = 0;
  std::uint64_t helper_calls = 0;
  bool aborted = false;      // runtime fault (bad access, div-by-zero trap...)
  std::string error;

  bool ok() const noexcept { return !aborted; }
};

}  // namespace srv6bpf::ebpf
