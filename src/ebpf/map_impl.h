// Concrete map implementations. Internal header — user code goes through
// Map / MapRegistry (ebpf/map.h).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ebpf/map.h"
#include "util/lpm_trie.h"

namespace srv6bpf::ebpf {

// BPF_MAP_TYPE_ARRAY: dense u32-indexed array, preallocated, entries can
// never be deleted (delete returns -EINVAL, as in the kernel).
class ArrayMap final : public Map {
 public:
  explicit ArrayMap(const MapDef& def);

  std::uint8_t* lookup(std::span<const std::uint8_t> key) override;
  int erase(std::span<const std::uint8_t> key) override;
  std::size_t size() const override { return max_entries(); }
  void reset_contents() override {
    storage_.assign(storage_.size(), 0);  // preallocated entries zero out
  }

 protected:
  int do_update(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value,
                std::uint64_t flags) override;

 private:
  std::uint8_t* slot(std::uint32_t index) noexcept {
    return storage_.data() + static_cast<std::size_t>(index) * value_size();
  }
  std::vector<std::uint8_t> storage_;
};

// BPF_MAP_TYPE_HASH: arbitrary fixed-size byte keys. Values live in
// individually allocated buffers so lookup pointers stay stable across
// rehashes of the index.
class HashMap final : public Map {
 public:
  explicit HashMap(const MapDef& def) : Map(def) {}

  std::uint8_t* lookup(std::span<const std::uint8_t> key) override;
  int erase(std::span<const std::uint8_t> key) override;
  std::size_t size() const override { return entries_.size(); }
  void reset_contents() override { entries_.clear(); }

  // Iteration support for user-space dumps (bpf_map_get_next_key analogue).
  std::vector<std::vector<std::uint8_t>> keys() const;

 protected:
  int do_update(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value,
                std::uint64_t flags) override;

 private:
  // std::map keeps deterministic iteration order for reproducible dumps.
  std::map<std::vector<std::uint8_t>, std::unique_ptr<std::uint8_t[]>> entries_;
};

// BPF_MAP_TYPE_PERCPU_ARRAY: one value slot per possible CPU per index.
// BPF-side lookups/updates (lookup_cpu/update_cpu) touch only the invoking
// context's slot; user-space update() broadcasts to every CPU (the syscall
// analogue requires a full per-CPU value vector — initialisation writes).
class PerCpuArrayMap final : public Map {
 public:
  explicit PerCpuArrayMap(const MapDef& def);

  std::uint8_t* lookup(std::span<const std::uint8_t> key) override {
    return lookup_cpu(key, 0);
  }
  int erase(std::span<const std::uint8_t> key) override;
  std::size_t size() const override { return max_entries(); }
  void reset_contents() override { storage_.assign(storage_.size(), 0); }

  std::uint8_t* lookup_cpu(std::span<const std::uint8_t> key,
                           std::uint32_t cpu) override;
  bool per_cpu() const noexcept override { return true; }

 protected:
  int do_update(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value,
                std::uint64_t flags) override;
  int do_update_cpu(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> value, std::uint64_t flags,
                    std::uint32_t cpu) override;

 private:
  std::uint8_t* slot(std::uint32_t cpu, std::uint32_t index) noexcept {
    return storage_.data() +
           (static_cast<std::size_t>(cpu) * max_entries() + index) *
               value_size();
  }
  std::vector<std::uint8_t> storage_;  // kMaxCpus * max_entries * value_size
};

// BPF_MAP_TYPE_PERCPU_HASH: like HashMap, but every entry owns kMaxCpus
// value slots (zero-filled on creation). Same stable-pointer guarantee.
class PerCpuHashMap final : public Map {
 public:
  explicit PerCpuHashMap(const MapDef& def) : Map(def) {}

  std::uint8_t* lookup(std::span<const std::uint8_t> key) override {
    return lookup_cpu(key, 0);
  }
  int erase(std::span<const std::uint8_t> key) override;
  std::size_t size() const override { return entries_.size(); }
  void reset_contents() override { entries_.clear(); }

  std::uint8_t* lookup_cpu(std::span<const std::uint8_t> key,
                           std::uint32_t cpu) override;
  bool per_cpu() const noexcept override { return true; }

 protected:
  int do_update(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value,
                std::uint64_t flags) override;
  int do_update_cpu(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> value, std::uint64_t flags,
                    std::uint32_t cpu) override;

 private:
  // flags validation + entry creation shared by the two update paths; on
  // success returns the entry's value buffer (kMaxCpus slots), else sets rc.
  std::uint8_t* upsert(std::span<const std::uint8_t> key, std::uint64_t flags,
                       int& rc);
  std::map<std::vector<std::uint8_t>, std::unique_ptr<std::uint8_t[]>> entries_;
};

// BPF_MAP_TYPE_LPM_TRIE: longest-prefix-match over big-endian bit strings.
// Key layout matches struct bpf_lpm_trie_key: a host-endian u32 prefix length
// followed by (key_size - 4) data bytes, most significant bit first.
//
// Backed by the shared multibit-stride engine (util/lpm_trie.h): lookups
// descend one node per key *byte* instead of one per bit, which is the
// "LPM fast path" ROADMAP item — BPF programs and the seg6 FIB share the
// same engine. Values are individually heap-allocated buffers so lookup
// pointers keep the kernel-style stability guarantee across inserts.
class LpmTrieMap final : public Map {
 public:
  explicit LpmTrieMap(const MapDef& def)
      : Map(def),
        max_prefixlen_((def.key_size - 4) * 8),
        trie_(def.key_size - 4) {}

  std::uint8_t* lookup(std::span<const std::uint8_t> key) override;
  int erase(std::span<const std::uint8_t> key) override;
  std::size_t size() const override { return trie_.size(); }
  void reset_contents() override { trie_.clear(); }

 protected:
  int do_update(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value,
                std::uint64_t flags) override;

 private:
  std::uint32_t max_prefixlen_;
  util::LpmTrie<std::unique_ptr<std::uint8_t[]>> trie_;
};

}  // namespace srv6bpf::ebpf
