#include "ebpf/verifier.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <limits>
#include <optional>
#include <sstream>

namespace srv6bpf::ebpf {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kU32Max = std::numeric_limits<std::uint32_t>::max();
// Pointer offsets beyond this are rejected outright; prevents arithmetic
// overflow games (the kernel uses a similar MAX_PACKET_OFF / 1<<29 clamp).
constexpr std::int64_t kMaxPtrOff = 1 << 20;
// Largest helper memory argument we accept.
constexpr std::uint64_t kMaxMemArg = 8192;

enum class RT : std::uint8_t {
  kNotInit,
  kScalar,
  kCtxPtr,
  kPktPtr,
  kPktEnd,
  kStackPtr,
  kMapValue,
  kMapValueOrNull,
  kConstMapPtr,
};

const char* rt_name(RT t) {
  switch (t) {
    case RT::kNotInit: return "uninit";
    case RT::kScalar: return "scalar";
    case RT::kCtxPtr: return "ctx";
    case RT::kPktPtr: return "pkt";
    case RT::kPktEnd: return "pkt_end";
    case RT::kStackPtr: return "stack";
    case RT::kMapValue: return "map_value";
    case RT::kMapValueOrNull: return "map_value_or_null";
    case RT::kConstMapPtr: return "map_ptr";
  }
  return "?";
}

struct Reg {
  RT type = RT::kNotInit;
  // Scalar value bounds (unsigned).
  std::uint64_t umin = 0;
  std::uint64_t umax = kU64Max;
  // Pointer offset range from the base object.
  std::int64_t off_min = 0;
  std::int64_t off_max = 0;
  // Map identity for kConstMapPtr / kMapValue(_OrNull).
  std::uint32_t map_id = 0;
  // Linkage id: registers copied from the same helper return share it, so a
  // null-check refines all aliases at once.
  std::uint32_t id = 0;

  bool operator==(const Reg&) const = default;

  bool is_const() const noexcept {
    return type == RT::kScalar && umin == umax;
  }
  bool is_pointer() const noexcept {
    return type != RT::kScalar && type != RT::kNotInit;
  }
  static Reg scalar_unknown() { return {.type = RT::kScalar}; }
  static Reg scalar_const(std::uint64_t v) {
    return {.type = RT::kScalar, .umin = v, .umax = v};
  }
  static Reg scalar_range(std::uint64_t lo, std::uint64_t hi) {
    return {.type = RT::kScalar, .umin = lo, .umax = hi};
  }
};

struct StackSlot {
  std::uint8_t written = 0;  // bit i set => byte i of the slot initialised
  bool spilled = false;
  Reg spill;

  bool operator==(const StackSlot&) const = default;
};

constexpr int kStackSlots = kStackSize / 8;

struct State {
  std::uint32_t pc = 0;
  std::array<Reg, kNumRegs> regs{};
  std::array<StackSlot, kStackSlots> stack{};
  // Bytes from packet start proven readable on this path.
  std::uint32_t pkt_range = 0;
  std::uint32_t next_id = 1;

  bool same_invariants(const State& o) const {
    return regs == o.regs && stack == o.stack && pkt_range == o.pkt_range;
  }
};

struct VerifierError {
  std::string msg;
  int insn = -1;
};

// Ctx field descriptor.
struct CtxField {
  int off;
  int size;
  RT load_type;    // type a load produces
  bool writable;
};

// The __sk_buff-like layout shared by all LWT/seg6local program types
// (ebpf/skb.h).
constexpr CtxField kCtxFields[] = {
    {0, 8, RT::kPktPtr, false},   // data
    {8, 8, RT::kPktEnd, false},   // data_end
    {16, 4, RT::kScalar, false},  // len
    {20, 4, RT::kScalar, false},  // protocol
    {24, 4, RT::kScalar, true},   // mark (the one writable field)
    {28, 4, RT::kScalar, false},  // ingress_ifindex
    {32, 8, RT::kScalar, false},  // tstamp
};
constexpr int kCtxSize = 40;

class Checker {
 public:
  Checker(const std::vector<Insn>& insns, ProgType type,
          const MapRegistry* maps, const HelperRegistry* helpers,
          const VerifyOptions& opts)
      : insns_(insns), type_(type), maps_(maps), helpers_(helpers),
        opts_(opts) {}

  VerifyResult run();

 private:
  // ---- CFG ----
  std::optional<VerifierError> check_cfg();
  // ---- symbolic execution ----
  std::optional<VerifierError> explore();
  // One instruction; pushes successor states onto the worklist.
  std::optional<VerifierError> step(State s);

  std::optional<VerifierError> do_alu(State& s, const Insn& insn);
  std::optional<VerifierError> do_load(State& s, const Insn& insn);
  std::optional<VerifierError> do_store(State& s, const Insn& insn);
  std::optional<VerifierError> do_call(State& s, const Insn& insn);
  std::optional<VerifierError> do_jump(State s, const Insn& insn);

  std::optional<VerifierError> check_reg_init(const State& s, int reg,
                                              int insn_idx) const;
  // Validates a memory access; for stack reads/writes also updates slot
  // tracking. `load_out` receives the register state a load should produce.
  std::optional<VerifierError> access_mem(State& s, const Reg& ptr, int size,
                                          bool write, int insn_idx,
                                          Reg* load_out,
                                          const Reg* store_src = nullptr);
  std::optional<VerifierError> helper_mem_arg(State& s, const Reg& mem,
                                              std::uint64_t size, bool uninit,
                                              int insn_idx);

  void push(State s);
  void mark_map_null_branch(State& s, std::uint32_t id, bool is_null);
  void invalidate_packet(State& s);

  VerifierError err(int insn, const std::string& msg) const {
    return {msg + " (at insn " + std::to_string(insn) + ": " +
                (insn >= 0 && insn < static_cast<int>(insns_.size())
                     ? disasm(insns_[insn])
                     : std::string("?")) +
                ")",
            insn};
  }

  const std::vector<Insn>& insns_;
  ProgType type_;
  const MapRegistry* maps_;
  const HelperRegistry* helpers_;
  VerifyOptions opts_;

  std::vector<bool> is_aux_;        // second slot of LD_IMM64
  std::deque<State> worklist_;
  std::vector<std::vector<State>> seen_;  // per-pc states for pruning
  VerifyStats stats_;
};

// ---------------------------------------------------------------------------
// CFG checks
// ---------------------------------------------------------------------------

std::optional<VerifierError> Checker::check_cfg() {
  const int n = static_cast<int>(insns_.size());
  if (n == 0) return VerifierError{"empty program", -1};
  if (n > kMaxInsns)
    return VerifierError{"program too large (" + std::to_string(n) + " > " +
                             std::to_string(kMaxInsns) + ")",
                         -1};

  is_aux_.assign(n, false);
  for (int i = 0; i < n; ++i) {
    if (insns_[i].is_ld_imm64()) {
      if (i + 1 >= n)
        return err(i, "ld_imm64 missing second slot");
      if (insns_[i + 1].opcode != 0)
        return err(i + 1, "ld_imm64 second slot must have opcode 0");
      is_aux_[i + 1] = true;
      ++i;
    } else if (insns_[i].opcode == 0) {
      return err(i, "invalid opcode 0");
    }
  }

  // Successor computation.
  auto successors = [&](int i, int out[2]) -> int {
    const Insn& insn = insns_[i];
    if (insn.is_exit()) return 0;
    if (insn.is_ld_imm64()) {
      out[0] = i + 2;
      return 1;
    }
    if (insn.is_unconditional_jump()) {
      out[0] = i + 1 + insn.off;
      return 1;
    }
    if (insn.is_jump()) {
      out[0] = i + 1;
      out[1] = i + 1 + insn.off;
      return 2;
    }
    out[0] = i + 1;
    return 1;
  };

  // Iterative DFS with colouring for cycle detection + reachability.
  enum Colour : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Colour> colour(n, kWhite);
  std::vector<std::pair<int, int>> dfs;  // (node, next-successor-index)
  dfs.emplace_back(0, 0);
  colour[0] = kGrey;
  while (!dfs.empty()) {
    auto& [node, next] = dfs.back();
    int succ[2];
    const int count = successors(node, succ);
    if (next >= count) {
      colour[node] = kBlack;
      dfs.pop_back();
      continue;
    }
    const int t = succ[next++];
    if (t == n)
      return err(node, "control flow falls off the end of the program");
    if (t < 0 || t > n)
      return err(node, "jump/fallthrough out of program bounds");
    if (is_aux_[t]) return err(node, "jump into the middle of ld_imm64");
    if (colour[t] == kGrey)
      return err(node, "back-edge detected (loops are not allowed)");
    if (colour[t] == kWhite) {
      colour[t] = kGrey;
      dfs.emplace_back(t, 0);
    }
  }

  for (int i = 0; i < n; ++i) {
    if (colour[i] == kWhite && !is_aux_[i])
      return err(i, "unreachable instruction");
    // Falling through past the last instruction.
    if (colour[i] != kWhite && !insns_[i].is_exit()) {
      int succ[2];
      const int count = successors(i, succ);
      for (int k = 0; k < count; ++k)
        if (succ[k] == n)
          return err(i, "control flow falls off the end of the program");
      if (count == 0 && !insns_[i].is_exit())
        return err(i, "control flow falls off the end of the program");
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Symbolic execution
// ---------------------------------------------------------------------------

void Checker::push(State s) {
  if (opts_.enable_pruning) {
    for (const State& old : seen_[s.pc]) {
      if (old.same_invariants(s)) {
        ++stats_.states_pruned;
        return;
      }
    }
    seen_[s.pc].push_back(s);
  }
  worklist_.push_back(std::move(s));
  stats_.peak_worklist = std::max(stats_.peak_worklist, worklist_.size());
}

std::optional<VerifierError> Checker::explore() {
  seen_.assign(insns_.size(), {});
  State init;
  init.pc = 0;
  init.regs[R1] = {.type = RT::kCtxPtr};
  init.regs[R10] = {.type = RT::kStackPtr};
  push(std::move(init));

  while (!worklist_.empty()) {
    State s = std::move(worklist_.front());
    worklist_.pop_front();
    if (++stats_.states_visited > opts_.max_states)
      return VerifierError{"program too complex (state budget exhausted)", -1};
    if (auto e = step(std::move(s))) return e;
  }
  return std::nullopt;
}

std::optional<VerifierError> Checker::check_reg_init(const State& s, int reg,
                                                     int insn_idx) const {
  if (reg < 0 || reg >= kNumRegs)
    return err(insn_idx, "unknown register r" + std::to_string(reg));
  if (s.regs[reg].type == RT::kNotInit)
    return err(insn_idx, "read of uninitialised register r" +
                             std::to_string(reg));
  return std::nullopt;
}

std::optional<VerifierError> Checker::step(State s) {
  const int pc = static_cast<int>(s.pc);
  const Insn& insn = insns_[pc];

  switch (insn.insn_class()) {
    case BPF_ALU:
    case BPF_ALU64: {
      if (auto e = do_alu(s, insn)) return e;
      s.pc = pc + 1;
      push(std::move(s));
      return std::nullopt;
    }
    case BPF_LD: {
      if (auto e = do_load(s, insn)) return e;
      s.pc = pc + 2;  // ld_imm64 pair
      push(std::move(s));
      return std::nullopt;
    }
    case BPF_LDX: {
      if (auto e = do_load(s, insn)) return e;
      s.pc = pc + 1;
      push(std::move(s));
      return std::nullopt;
    }
    case BPF_ST:
    case BPF_STX: {
      if (auto e = do_store(s, insn)) return e;
      s.pc = pc + 1;
      push(std::move(s));
      return std::nullopt;
    }
    case BPF_JMP:
    case BPF_JMP32: {
      if (insn.is_exit()) {
        if (auto e = check_reg_init(s, R0, pc)) return e;
        if (s.regs[R0].type != RT::kScalar)
          return err(pc, "R0 must hold a scalar return value at exit");
        return std::nullopt;  // path done
      }
      if (insn.is_call()) {
        if (auto e = do_call(s, insn)) return e;
        s.pc = pc + 1;
        push(std::move(s));
        return std::nullopt;
      }
      return do_jump(std::move(s), insn);
    }
  }
  return err(pc, "unknown instruction class");
}

// ---- ALU -------------------------------------------------------------------

namespace {

// Sign-extended immediate as u64 (eBPF semantics for 64-bit ALU with K).
std::uint64_t sext_imm(std::int32_t imm) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(imm));
}

// 32-bit ALU result bounds: exact when both operands constant, else the
// conservative [0, 2^32-1] (ALU32 zero-extends into the upper half).
Reg alu32_result(std::uint8_t op, const Reg& a, std::optional<std::uint64_t> b) {
  if (a.is_const() && b.has_value()) {
    const std::uint32_t x = static_cast<std::uint32_t>(a.umin);
    const std::uint32_t y = static_cast<std::uint32_t>(*b);
    std::uint32_t r = 0;
    switch (op) {
      case BPF_ADD: r = x + y; break;
      case BPF_SUB: r = x - y; break;
      case BPF_MUL: r = x * y; break;
      case BPF_DIV: r = y ? x / y : 0; break;
      case BPF_MOD: r = y ? x % y : x; break;
      case BPF_OR: r = x | y; break;
      case BPF_AND: r = x & y; break;
      case BPF_XOR: r = x ^ y; break;
      case BPF_LSH: r = x << (y & 31); break;
      case BPF_RSH: r = x >> (y & 31); break;
      case BPF_ARSH:
        r = static_cast<std::uint32_t>(static_cast<std::int32_t>(x) >>
                                       (y & 31));
        break;
      case BPF_MOV: r = y; break;
      default: return Reg::scalar_range(0, kU32Max);
    }
    return Reg::scalar_const(r);
  }
  if (op == BPF_AND && b.has_value())
    return Reg::scalar_range(0, std::min<std::uint64_t>(
                                    kU32Max, static_cast<std::uint32_t>(*b)));
  return Reg::scalar_range(0, kU32Max);
}

}  // namespace

std::optional<VerifierError> Checker::do_alu(State& s, const Insn& insn) {
  const int pc = static_cast<int>(s.pc);
  const int dst = insn.dst;
  const bool is64 = insn.insn_class() == BPF_ALU64;
  const std::uint8_t op = insn.alu_op();

  if (dst >= kNumRegs) return err(pc, "unknown destination register");
  if (dst == R10) return err(pc, "frame pointer R10 is read-only");

  // Source operand (register or immediate).
  std::optional<Reg> src_reg;
  if (insn.uses_reg_src() && op != BPF_END) {
    if (auto e = check_reg_init(s, insn.src, pc)) return e;
    src_reg = s.regs[insn.src];
  }

  Reg& d = s.regs[dst];

  // MOV is special: it initialises dst regardless of prior state.
  if (op == BPF_MOV) {
    if (src_reg) {
      if (is64) {
        d = *src_reg;
      } else {
        d = alu32_result(BPF_MOV, Reg::scalar_const(0),
                         src_reg->is_const()
                             ? std::optional<std::uint64_t>(src_reg->umin)
                             : std::nullopt);
        if (!src_reg->is_const() && src_reg->type == RT::kScalar &&
            src_reg->umax <= kU32Max)
          d = Reg::scalar_range(src_reg->umin, src_reg->umax);
        if (src_reg->is_pointer()) d = Reg::scalar_range(0, kU32Max);
      }
    } else {
      d = is64 ? Reg::scalar_const(sext_imm(insn.imm))
               : Reg::scalar_const(static_cast<std::uint32_t>(insn.imm));
    }
    return std::nullopt;
  }

  if (op == BPF_END) {
    if (auto e = check_reg_init(s, dst, pc)) return e;
    if (d.is_pointer()) return err(pc, "byte swap on pointer");
    if (insn.imm != 16 && insn.imm != 32 && insn.imm != 64)
      return err(pc, "invalid byte swap width");
    d = Reg::scalar_unknown();
    if (insn.imm != 64) d.umax = (1ull << insn.imm) - 1;
    return std::nullopt;
  }

  if (op == BPF_NEG) {
    // Linux rejects BPF_NEG with the source bit set (BPF_X): negation has
    // no register operand. Both engines enforce this at runtime too.
    if (insn.uses_reg_src())
      return err(pc, "BPF_NEG with register source");
    if (auto e = check_reg_init(s, dst, pc)) return e;
    if (d.is_pointer()) return err(pc, "arithmetic negation on pointer");
    d = d.is_const() ? Reg::scalar_const(is64 ? (~d.umin + 1)
                                              : static_cast<std::uint32_t>(
                                                    -static_cast<std::int32_t>(
                                                        d.umin)))
                     : (is64 ? Reg::scalar_unknown()
                             : Reg::scalar_range(0, kU32Max));
    return std::nullopt;
  }

  if (auto e = check_reg_init(s, dst, pc)) return e;

  // Static division/shift sanity on immediates.
  if (!insn.uses_reg_src()) {
    if ((op == BPF_DIV || op == BPF_MOD) && insn.imm == 0)
      return err(pc, "division by zero immediate");
    if ((op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) &&
        (insn.imm < 0 || insn.imm >= (is64 ? 64 : 32)))
      return err(pc, "shift amount out of range");
  }

  const bool src_is_ptr = src_reg && src_reg->is_pointer();

  // ---- Pointer arithmetic ----
  if (d.is_pointer() || src_is_ptr) {
    if (!is64)
      return err(pc, "32-bit arithmetic on pointer");
    if (op != BPF_ADD && op != BPF_SUB)
      return err(pc, "only add/sub allowed on pointers");
    if (d.is_pointer() && src_is_ptr)
      return err(pc, "pointer-pointer arithmetic not supported");

    // Normalise to ptr (+/-) scalar.
    Reg ptr = d.is_pointer() ? d : *src_reg;
    Reg scl;
    if (d.is_pointer()) {
      scl = src_reg ? *src_reg : Reg::scalar_const(sext_imm(insn.imm));
    } else {
      if (op == BPF_SUB) return err(pc, "cannot subtract pointer from scalar");
      scl = d;
    }
    if (ptr.type == RT::kConstMapPtr || ptr.type == RT::kPktEnd ||
        ptr.type == RT::kCtxPtr || ptr.type == RT::kMapValueOrNull)
      return err(pc, std::string("arithmetic on ") + rt_name(ptr.type) +
                         " pointer not allowed");
    if (scl.type != RT::kScalar)
      return err(pc, "pointer arithmetic with non-scalar operand");
    if (scl.umax > static_cast<std::uint64_t>(kMaxPtrOff) &&
        !(scl.is_const() &&
          static_cast<std::int64_t>(scl.umin) >= -kMaxPtrOff &&
          static_cast<std::int64_t>(scl.umin) <= kMaxPtrOff))
      return err(pc, "pointer offset is unbounded");

    std::int64_t lo, hi;
    if (scl.is_const()) {
      lo = hi = static_cast<std::int64_t>(scl.umin);
    } else {
      lo = static_cast<std::int64_t>(scl.umin);
      hi = static_cast<std::int64_t>(scl.umax);
    }
    if (op == BPF_SUB) {
      if (!scl.is_const())
        return err(pc, "variable subtraction from pointer not allowed");
      lo = hi = -lo;
    }
    ptr.off_min += lo;
    ptr.off_max += hi;
    if (std::abs(ptr.off_min) > kMaxPtrOff || std::abs(ptr.off_max) > kMaxPtrOff)
      return err(pc, "pointer offset out of bounds");
    d = ptr;
    return std::nullopt;
  }

  // ---- Scalar arithmetic ----
  std::optional<std::uint64_t> k;
  if (src_reg) {
    if (src_reg->is_const()) k = src_reg->umin;
  } else {
    k = is64 ? sext_imm(insn.imm)
             : static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.imm));
  }

  if (!is64) {
    d = alu32_result(op, d, k);
    return std::nullopt;
  }

  if (d.is_const() && k.has_value()) {
    const std::uint64_t x = d.umin, y = *k;
    std::uint64_t r = 0;
    switch (op) {
      case BPF_ADD: r = x + y; break;
      case BPF_SUB: r = x - y; break;
      case BPF_MUL: r = x * y; break;
      case BPF_DIV: r = y ? x / y : 0; break;
      case BPF_MOD: r = y ? x % y : x; break;
      case BPF_OR: r = x | y; break;
      case BPF_AND: r = x & y; break;
      case BPF_XOR: r = x ^ y; break;
      case BPF_LSH: r = x << (y & 63); break;
      case BPF_RSH: r = x >> (y & 63); break;
      case BPF_ARSH:
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(x) >>
                                       (y & 63));
        break;
      default: d = Reg::scalar_unknown(); return std::nullopt;
    }
    d = Reg::scalar_const(r);
    return std::nullopt;
  }

  // Interval arithmetic for the common bound-preserving cases.
  switch (op) {
    case BPF_ADD: {
      const std::uint64_t lo_b = k ? *k : (src_reg ? src_reg->umin : 0);
      const std::uint64_t hi_b = k ? *k : (src_reg ? src_reg->umax : kU64Max);
      if (d.umax <= kU64Max - hi_b)  // no wrap
        d = Reg::scalar_range(d.umin + lo_b, d.umax + hi_b);
      else
        d = Reg::scalar_unknown();
      break;
    }
    case BPF_AND:
      if (k)
        d = Reg::scalar_range(0, std::min(d.umax, *k));
      else
        d = Reg::scalar_range(
            0, std::min(d.umax, src_reg ? src_reg->umax : kU64Max));
      break;
    case BPF_MOD:
      if (k && *k > 0)
        d = Reg::scalar_range(0, *k - 1);
      else
        d = Reg::scalar_unknown();
      break;
    case BPF_DIV:
      if (k && *k > 0)
        d = Reg::scalar_range(d.umin / *k, d.umax / *k);
      else
        d = Reg::scalar_unknown();
      break;
    case BPF_RSH:
      if (k)
        d = Reg::scalar_range(d.umin >> (*k & 63), d.umax >> (*k & 63));
      else
        d = Reg::scalar_range(0, d.umax);
      break;
    case BPF_LSH:
      if (k && d.umax <= (kU64Max >> (*k & 63)))
        d = Reg::scalar_range(d.umin << (*k & 63), d.umax << (*k & 63));
      else
        d = Reg::scalar_unknown();
      break;
    case BPF_MUL:
      if (k && (*k == 0 || d.umax <= kU64Max / std::max<std::uint64_t>(*k, 1)))
        d = Reg::scalar_range(d.umin * *k, d.umax * *k);
      else
        d = Reg::scalar_unknown();
      break;
    default:
      d = Reg::scalar_unknown();
  }
  return std::nullopt;
}

// ---- Loads -----------------------------------------------------------------

std::optional<VerifierError> Checker::do_load(State& s, const Insn& insn) {
  const int pc = static_cast<int>(s.pc);

  if (insn.insn_class() == BPF_LD) {
    if (!insn.is_ld_imm64()) return err(pc, "unsupported BPF_LD mode");
    if (insn.dst >= kNumRegs || insn.dst == R10)
      return err(pc, "bad ld_imm64 destination");
    const Insn& hi = insns_[pc + 1];
    if (insn.src == BPF_PSEUDO_MAP_FD) {
      const auto map_id = static_cast<std::uint32_t>(insn.imm);
      if (maps_ == nullptr || maps_->get(map_id) == nullptr)
        return err(pc, "ld_map references unknown map id " +
                           std::to_string(map_id));
      s.regs[insn.dst] = {.type = RT::kConstMapPtr, .map_id = map_id};
    } else if (insn.src != 0) {
      return err(pc, "unknown ld_imm64 pseudo source");
    } else {
      const std::uint64_t v =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi.imm))
           << 32) |
          static_cast<std::uint32_t>(insn.imm);
      s.regs[insn.dst] = Reg::scalar_const(v);
    }
    return std::nullopt;
  }

  // LDX
  if (insn.mode_field() != BPF_MEM) return err(pc, "unsupported LDX mode");
  if (insn.dst >= kNumRegs || insn.dst == R10)
    return err(pc, "bad load destination register");
  if (auto e = check_reg_init(s, insn.src, pc)) return e;
  const Reg& ptr = s.regs[insn.src];
  const int size = access_size(insn.size_field());

  // Loads from ctx are typed by the field table.
  if (ptr.type == RT::kCtxPtr) {
    if (ptr.off_min != ptr.off_max)
      return err(pc, "variable offset into ctx");
    const std::int64_t off = ptr.off_min + insn.off;
    for (const CtxField& f : kCtxFields) {
      if (off == f.off && size == f.size) {
        Reg out{.type = f.load_type};
        if (f.load_type == RT::kScalar) {
          out = Reg::scalar_unknown();
          if (size < 8) out.umax = (1ull << (size * 8)) - 1;
        }
        s.regs[insn.dst] = out;
        return std::nullopt;
      }
    }
    return err(pc, "invalid ctx access at offset " + std::to_string(off) +
                       " size " + std::to_string(size));
  }

  Reg tmp = ptr;
  tmp.off_min += insn.off;
  tmp.off_max += insn.off;
  Reg out;
  if (auto e = access_mem(s, tmp, size, /*write=*/false, pc, &out)) return e;
  s.regs[insn.dst] = out;
  return std::nullopt;
}

// ---- Stores ----------------------------------------------------------------

std::optional<VerifierError> Checker::do_store(State& s, const Insn& insn) {
  const int pc = static_cast<int>(s.pc);
  if (insn.mode_field() != BPF_MEM) return err(pc, "unsupported store mode");
  if (auto e = check_reg_init(s, insn.dst, pc)) return e;
  const int size = access_size(insn.size_field());

  Reg src_val;
  if (insn.insn_class() == BPF_STX) {
    if (auto e = check_reg_init(s, insn.src, pc)) return e;
    src_val = s.regs[insn.src];
  } else {
    src_val = Reg::scalar_const(sext_imm(insn.imm));
  }

  const Reg& ptr = s.regs[insn.dst];

  if (ptr.type == RT::kCtxPtr) {
    if (ptr.off_min != ptr.off_max)
      return err(pc, "variable offset into ctx");
    const std::int64_t off = ptr.off_min + insn.off;
    for (const CtxField& f : kCtxFields) {
      if (off == f.off && size == f.size) {
        if (!f.writable)
          return err(pc, "write to read-only ctx field at offset " +
                             std::to_string(off));
        if (src_val.is_pointer()) return err(pc, "leaking pointer into ctx");
        return std::nullopt;
      }
    }
    return err(pc, "invalid ctx access at offset " + std::to_string(off) +
                       " size " + std::to_string(size));
  }

  Reg tmp = ptr;
  tmp.off_min += insn.off;
  tmp.off_max += insn.off;
  return access_mem(s, tmp, size, /*write=*/true, pc, nullptr, &src_val);
}

// ---- Generic memory access --------------------------------------------------

std::optional<VerifierError> Checker::access_mem(State& s, const Reg& ptr,
                                                 int size, bool write,
                                                 int insn_idx, Reg* load_out,
                                                 const Reg* store_src) {
  switch (ptr.type) {
    case RT::kStackPtr: {
      if (ptr.off_min != ptr.off_max)
        return err(insn_idx, "variable offset into stack");
      const std::int64_t off = ptr.off_min;
      if (off < -kStackSize || off + size > 0)
        return err(insn_idx, "stack access out of bounds [off " +
                                 std::to_string(off) + ", size " +
                                 std::to_string(size) + "]");
      const std::int64_t pos = off + kStackSize;  // 0..511
      if (write) {
        const bool spill_ptr = store_src && store_src->is_pointer();
        if (spill_ptr) {
          if (size != 8 || pos % 8 != 0)
            return err(insn_idx, "pointer spill must be 8-byte sized/aligned");
          StackSlot& slot = s.stack[pos / 8];
          slot = {.written = 0xff, .spilled = true, .spill = *store_src};
          return std::nullopt;
        }
        for (int i = 0; i < size; ++i) {
          StackSlot& slot = s.stack[(pos + i) / 8];
          if (slot.spilled) {  // scalar overwrite kills the spill
            slot.spilled = false;
            slot.written = 0;
          }
          slot.written |= static_cast<std::uint8_t>(1u << ((pos + i) % 8));
        }
        return std::nullopt;
      }
      // Read.
      if (size == 8 && pos % 8 == 0 && s.stack[pos / 8].spilled) {
        if (load_out) *load_out = s.stack[pos / 8].spill;
        return std::nullopt;
      }
      for (int i = 0; i < size; ++i) {
        const StackSlot& slot = s.stack[(pos + i) / 8];
        if (slot.spilled)
          return err(insn_idx, "partial read of spilled pointer");
        if (!(slot.written & (1u << ((pos + i) % 8))))
          return err(insn_idx, "read of uninitialised stack at off " +
                                   std::to_string(off + i));
      }
      if (load_out) {
        *load_out = Reg::scalar_unknown();
        if (size < 8) load_out->umax = (1ull << (size * 8)) - 1;
      }
      return std::nullopt;
    }
    case RT::kPktPtr: {
      if (write)
        return err(insn_idx,
                   "direct packet write not allowed for this program type "
                   "(use bpf_lwt_seg6_store_bytes)");
      if (ptr.off_min < 0)
        return err(insn_idx, "packet access with negative offset");
      if (static_cast<std::uint64_t>(ptr.off_max) + size > s.pkt_range)
        return err(insn_idx,
                   "packet access out of verified range (need bound check: "
                   "off " + std::to_string(ptr.off_max) + " size " +
                       std::to_string(size) + " > range " +
                       std::to_string(s.pkt_range) + ")");
      if (load_out) {
        *load_out = Reg::scalar_unknown();
        if (size < 8) load_out->umax = (1ull << (size * 8)) - 1;
      }
      return std::nullopt;
    }
    case RT::kMapValue: {
      const Map* map = maps_ ? maps_->get(ptr.map_id) : nullptr;
      if (map == nullptr) return err(insn_idx, "stale map value pointer");
      if (ptr.off_min < 0 ||
          static_cast<std::uint64_t>(ptr.off_max) + size > map->value_size())
        return err(insn_idx, "map value access out of bounds");
      if (write && store_src && store_src->is_pointer())
        return err(insn_idx, "leaking pointer into map value");
      if (load_out) {
        *load_out = Reg::scalar_unknown();
        if (size < 8) load_out->umax = (1ull << (size * 8)) - 1;
      }
      return std::nullopt;
    }
    case RT::kMapValueOrNull:
      return err(insn_idx, "map value pointer must be null-checked first");
    case RT::kPktEnd:
      return err(insn_idx, "dereference of pkt_end pointer");
    case RT::kConstMapPtr:
      return err(insn_idx, "dereference of map pointer");
    case RT::kScalar:
      return err(insn_idx, "dereference of scalar (not a pointer)");
    default:
      return err(insn_idx, "dereference of uninitialised register");
  }
}

// ---- Calls -----------------------------------------------------------------

std::optional<VerifierError> Checker::helper_mem_arg(State& s, const Reg& mem,
                                                     std::uint64_t size,
                                                     bool uninit,
                                                     int insn_idx) {
  if (size == 0) return std::nullopt;
  if (size > kMaxMemArg)
    return err(insn_idx, "helper memory argument too large");
  // Validate/initialise byte range via access_mem; for stack we emulate a
  // write when uninit (helper fills it) and reads otherwise.
  Reg tmp = mem;
  // Validate the whole [off, off+size) span one byte at a time through the
  // existing accessor (sizes are small; clarity over speed here).
  for (std::uint64_t i = 0; i < size; ++i) {
    Reg b = tmp;
    b.off_min += static_cast<std::int64_t>(i);
    b.off_max += static_cast<std::int64_t>(i);
    Reg out;
    if (auto e = access_mem(s, b, 1, uninit, insn_idx, &out)) return e;
  }
  return std::nullopt;
}

std::optional<VerifierError> Checker::do_call(State& s, const Insn& insn) {
  const int pc = static_cast<int>(s.pc);
  if (helpers_ == nullptr) return err(pc, "no helpers registered");
  const HelperProto* proto = helpers_->proto(insn.imm);
  if (proto == nullptr)
    return err(pc, "call to unknown helper " + std::to_string(insn.imm));
  const std::uint8_t type_bit = [&] {
    switch (type_) {
      case ProgType::kLwtIn: return kProgLwtIn;
      case ProgType::kLwtOut: return kProgLwtOut;
      case ProgType::kLwtXmit: return kProgLwtXmit;
      case ProgType::kLwtSeg6Local: return kProgSeg6Local;
      case ProgType::kSocketFilter: return kProgSocketFilter;
    }
    return kProgAny;
  }();
  if (!(proto->allowed_types & type_bit))
    return err(pc, "helper " + proto->name + " not allowed for program type " +
                       prog_type_name(type_));

  std::uint32_t seen_map_id = 0;
  for (int i = 0; i < 5; ++i) {
    const ArgKind kind = proto->args[i];
    if (kind == ArgKind::kNone) continue;
    const int reg = R1 + i;
    if (auto e = check_reg_init(s, reg, pc))
      return err(pc, "helper " + proto->name + ": argument " +
                         std::to_string(i + 1) + " uninitialised");
    const Reg& r = s.regs[reg];
    switch (kind) {
      case ArgKind::kAnything:
        if (r.type == RT::kMapValueOrNull)
          return err(pc, "helper " + proto->name +
                             ": possibly-null map value as argument");
        break;
      case ArgKind::kPtrToCtx:
        if (r.type != RT::kCtxPtr || r.off_min != 0 || r.off_max != 0)
          return err(pc, "helper " + proto->name + ": arg" +
                             std::to_string(i + 1) + " must be ctx");
        break;
      case ArgKind::kConstMapPtr:
        if (r.type != RT::kConstMapPtr)
          return err(pc, "helper " + proto->name + ": arg" +
                             std::to_string(i + 1) + " must be a map pointer");
        seen_map_id = r.map_id;
        break;
      case ArgKind::kPtrToMapKey:
      case ArgKind::kPtrToMapValue: {
        const Map* map = maps_ ? maps_->get(seen_map_id) : nullptr;
        if (map == nullptr)
          return err(pc, "helper " + proto->name +
                             ": map key/value arg without map pointer");
        const std::uint64_t need = kind == ArgKind::kPtrToMapKey
                                       ? map->key_size()
                                       : map->value_size();
        if (auto e = helper_mem_arg(s, r, need, /*uninit=*/false, pc)) return e;
        break;
      }
      case ArgKind::kPtrToMem:
      case ArgKind::kPtrToUninitMem: {
        // Size comes from the following kConstSize argument.
        if (i + 1 >= 5 || (proto->args[i + 1] != ArgKind::kConstSize &&
                           proto->args[i + 1] != ArgKind::kConstSizeOrZero))
          return err(pc, "helper " + proto->name +
                             ": mem arg not followed by size arg");
        const Reg& sz = s.regs[reg + 1];
        if (sz.type != RT::kScalar)
          return err(pc, "helper " + proto->name + ": size arg not scalar");
        if (sz.umax > kMaxMemArg)
          return err(pc, "helper " + proto->name + ": size arg unbounded");
        if (proto->args[i + 1] == ArgKind::kConstSize && sz.umin == 0 &&
            sz.umax == 0)
          return err(pc, "helper " + proto->name + ": zero-sized mem arg");
        if (auto e = helper_mem_arg(s, r, sz.umax,
                                    kind == ArgKind::kPtrToUninitMem, pc))
          return e;
        break;
      }
      case ArgKind::kConstSize:
      case ArgKind::kConstSizeOrZero: {
        if (r.type != RT::kScalar)
          return err(pc, "helper " + proto->name + ": size arg not scalar");
        break;
      }
      case ArgKind::kNone:
        break;
    }
  }

  // Post-call effects.
  if (proto->invalidates_packet) invalidate_packet(s);
  for (int r = R1; r <= R5; ++r) s.regs[r] = Reg{};
  switch (proto->ret) {
    case RetKind::kInteger:
      s.regs[R0] = Reg::scalar_unknown();
      break;
    case RetKind::kPtrToMapValueOrNull: {
      s.regs[R0] = {.type = RT::kMapValueOrNull, .map_id = seen_map_id,
                    .id = s.next_id++};
      break;
    }
  }
  return std::nullopt;
}

// ---- Jumps -----------------------------------------------------------------

void Checker::mark_map_null_branch(State& s, std::uint32_t id, bool is_null) {
  for (Reg& r : s.regs) {
    if (r.type == RT::kMapValueOrNull && r.id == id) {
      if (is_null) {
        r = Reg::scalar_const(0);
      } else {
        r.type = RT::kMapValue;
        r.id = 0;
      }
    }
  }
  for (StackSlot& slot : s.stack) {
    if (slot.spilled && slot.spill.type == RT::kMapValueOrNull &&
        slot.spill.id == id) {
      if (is_null)
        slot.spill = Reg::scalar_const(0);
      else {
        slot.spill.type = RT::kMapValue;
        slot.spill.id = 0;
      }
    }
  }
}

void Checker::invalidate_packet(State& s) {
  s.pkt_range = 0;
  for (Reg& r : s.regs)
    if (r.type == RT::kPktPtr || r.type == RT::kPktEnd) r = Reg{};
  for (StackSlot& slot : s.stack)
    if (slot.spilled &&
        (slot.spill.type == RT::kPktPtr || slot.spill.type == RT::kPktEnd)) {
      slot.spilled = false;
      slot.written = 0;
    }
}

std::optional<VerifierError> Checker::do_jump(State s, const Insn& insn) {
  const int pc = static_cast<int>(s.pc);
  const bool is32 = insn.insn_class() == BPF_JMP32;

  if (insn.is_unconditional_jump()) {
    s.pc = pc + 1 + insn.off;
    push(std::move(s));
    return std::nullopt;
  }

  if (auto e = check_reg_init(s, insn.dst, pc)) return e;
  std::optional<Reg> src_reg;
  if (insn.uses_reg_src()) {
    if (auto e = check_reg_init(s, insn.src, pc)) return e;
    src_reg = s.regs[insn.src];
  }

  const Reg& a = s.regs[insn.dst];
  const std::uint8_t op = insn.alu_op();

  // ---- Null-check pattern on map values: if (r == 0) / if (r != 0) ----
  if (a.type == RT::kMapValueOrNull && !insn.uses_reg_src() && insn.imm == 0 &&
      (op == BPF_JEQ || op == BPF_JNE)) {
    State taken = s, fall = s;
    const std::uint32_t id = a.id;
    // JEQ: taken => null; JNE: taken => non-null.
    mark_map_null_branch(taken, id, op == BPF_JEQ);
    mark_map_null_branch(fall, id, op != BPF_JEQ);
    taken.pc = pc + 1 + insn.off;
    fall.pc = pc + 1;
    push(std::move(taken));
    push(std::move(fall));
    return std::nullopt;
  }

  // ---- Packet bounds pattern: cmp(pkt_ptr, pkt_end) ----
  if (!is32 && src_reg &&
      ((a.type == RT::kPktPtr && src_reg->type == RT::kPktEnd) ||
       (a.type == RT::kPktEnd && src_reg->type == RT::kPktPtr))) {
    const Reg& p = a.type == RT::kPktPtr ? a : *src_reg;
    // The provable readable range is the *minimum* possible offset.
    const std::uint32_t range =
        p.off_min > 0 ? static_cast<std::uint32_t>(p.off_min) : 0;
    const bool ptr_is_dst = a.type == RT::kPktPtr;

    // For which branch does the comparison prove `ptr <= end`?
    // ptr_is_dst:  JGT taken => ptr > end (fall: ptr <= end)
    //              JLE taken => ptr <= end
    //              JGE taken => ptr >= end (fall: ptr < end => ptr <= end)
    //              JLT taken => ptr < end  => ptr <= end
    // end_is_dst:  mirror.
    auto branch_proves = [&](bool taken) -> bool {
      switch (op) {
        case BPF_JGT: return ptr_is_dst ? !taken : taken;
        case BPF_JLE: return ptr_is_dst ? taken : !taken;
        case BPF_JGE: return ptr_is_dst ? !taken : taken;
        case BPF_JLT: return ptr_is_dst ? taken : !taken;
        default: return false;
      }
    };
    // Note: for JGE/JLT the proven relation is strict (<), which still
    // implies <= and is therefore safe to use for `range` bytes.
    State taken = s, fall = s;
    if (branch_proves(true))
      taken.pkt_range = std::max(taken.pkt_range, range);
    if (branch_proves(false))
      fall.pkt_range = std::max(fall.pkt_range, range);
    taken.pc = pc + 1 + insn.off;
    fall.pc = pc + 1;
    push(std::move(taken));
    push(std::move(fall));
    return std::nullopt;
  }

  // Generic comparisons: pointers may only be compared for equality with
  // other pointers of the same type; scalars get range refinement.
  if (a.is_pointer() || (src_reg && src_reg->is_pointer())) {
    const bool both_ptr = a.is_pointer() && src_reg && src_reg->is_pointer();
    if (!(both_ptr && (op == BPF_JEQ || op == BPF_JNE) &&
          a.type == src_reg->type))
      return err(pc, "invalid pointer comparison");
    State taken = s, fall = s;
    taken.pc = pc + 1 + insn.off;
    fall.pc = pc + 1;
    push(std::move(taken));
    push(std::move(fall));
    return std::nullopt;
  }

  // Scalar vs scalar/immediate with unsigned range refinement (64-bit only;
  // JMP32 falls back to exploring both branches unrefined).
  std::optional<std::uint64_t> k;
  if (!insn.uses_reg_src()) k = sext_imm(insn.imm);
  else if (src_reg->is_const()) k = src_reg->umin;

  State taken = s, fall = s;
  bool taken_feasible = true, fall_feasible = true;

  if (k && !is32) {
    Reg& rt = taken.regs[insn.dst];
    Reg& rf = fall.regs[insn.dst];
    const std::uint64_t v = *k;
    switch (op) {
      case BPF_JEQ:
        if (v < rt.umin || v > rt.umax) taken_feasible = false;
        else { rt.umin = rt.umax = v; }
        if (rf.is_const() && rf.umin == v) fall_feasible = false;
        break;
      case BPF_JNE:
        if (rt.is_const() && rt.umin == v) taken_feasible = false;
        if (v < rf.umin || v > rf.umax) fall_feasible = false;
        else { rf.umin = rf.umax = v; }
        break;
      case BPF_JGT:
        if (rt.umax <= v) taken_feasible = false;
        else rt.umin = std::max(rt.umin, v + 1);
        if (rf.umin > v) fall_feasible = false;
        else rf.umax = std::min(rf.umax, v);
        break;
      case BPF_JGE:
        if (rt.umax < v) taken_feasible = false;
        else rt.umin = std::max(rt.umin, v);
        if (v == 0 || rf.umin >= v) fall_feasible = v != 0 && rf.umin < v;
        if (fall_feasible) rf.umax = std::min(rf.umax, v - 1);
        break;
      case BPF_JLT:
        if (v == 0 || rt.umin >= v) taken_feasible = v != 0 && rt.umin < v;
        if (taken_feasible) rt.umax = std::min(rt.umax, v - 1);
        if (rf.umax < v) fall_feasible = false;
        else rf.umin = std::max(rf.umin, v);
        break;
      case BPF_JLE:
        if (rt.umin > v) taken_feasible = false;
        else rt.umax = std::min(rt.umax, v);
        if (rf.umax <= v) fall_feasible = false;
        else rf.umin = std::max(rf.umin, v + 1);
        break;
      default:
        break;  // JSET / signed: no refinement
    }
  }

  if (taken_feasible) {
    taken.pc = pc + 1 + insn.off;
    push(std::move(taken));
  }
  if (fall_feasible) {
    fall.pc = pc + 1;
    push(std::move(fall));
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------

VerifyResult Checker::run() {
  VerifyResult result;
  if (auto e = check_cfg()) {
    result.error = e->msg;
    result.error_insn = e->insn;
    result.stats = stats_;
    return result;
  }
  if (auto e = explore()) {
    result.error = e->msg;
    result.error_insn = e->insn;
    result.stats = stats_;
    return result;
  }
  result.ok = true;
  result.stats = stats_;
  return result;
}

}  // namespace

VerifyResult Verifier::verify(const std::vector<Insn>& insns,
                              ProgType type) const {
  Checker checker(insns, type, maps_, helpers_, opts_);
  return checker.run();
}

VerifyResult Verifier::verify(const Program& prog) const {
  return verify(prog.insns(), prog.type());
}

}  // namespace srv6bpf::ebpf
