// Native x86-64 eBPF JIT backend: DecodedProgram -> machine code.
//
// This is the repository's analogue of the kernel's arch/x86/net/bpf_jit_comp:
// a verified program's decode-once form is translated to real x86-64 in an
// mmap'd W^X page pair (written RW, then flipped to RX before first run, and
// never writable again). BPF registers live in hardware registers with the
// kernel's mapping:
//
//     BPF r0 -> rax        BPF r5 -> r8
//     BPF r1 -> rdi        BPF r6 -> rbx   (callee-saved)
//     BPF r2 -> rsi        BPF r7 -> r13   (callee-saved)
//     BPF r3 -> rdx        BPF r8 -> r14   (callee-saved)
//     BPF r4 -> rcx        BPF r9 -> r15   (callee-saved)
//                          BPF r10 -> rbp  (frame pointer, read-only)
//
// ALU/ALU64/JMP/JMP32 and byte swaps are emitted directly (32-bit forms rely
// on x86-64's implicit zero-extension of 32-bit register writes, exactly the
// kernel-JIT trick); LD/LDX/ST/STX are plain loads and stores with the
// verifier's proof standing in for runtime bounds checks; helper calls are
// direct `call`s to the resolved HelperFn pointers (the C ABI matches: five
// argument registers shift down one slot to make room for the ExecEnv*).
// Division follows eBPF semantics (x/0 == 0, x%0 == x) via an inline zero
// test, and rcx/rax/rdx pressure from variable shifts and div is resolved
// with the two scratch registers the mapping leaves free (r10, r11).
//
// The emitted function also maintains the two observability counters the
// differential test compares bit-for-bit across engines: executed-op counts
// are accumulated in r12 and flushed per basic block (a single `add r12, k`
// per block, not per instruction), helper calls increment a frame slot.
//
// Engine selection: when native emission is unavailable (non-x86-64 build,
// or mmap/mprotect refusing W->X pages, e.g. under a hardened kernel), the
// portable unchecked-decoded engine remains the fallback; see ebpf/vm.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "ebpf/decode.h"
#include "ebpf/exec.h"

namespace srv6bpf::ebpf {

// Counter block updated by the emitted code; mirrors the ExecResult fields
// every engine must agree on.
struct NativeCounters {
  std::uint64_t insns = 0;
  std::uint64_t helper_calls = 0;
};

// One program's emitted machine code. Immutable and executable-only after
// construction; unmapped on destruction.
class NativeCode {
 public:
  // C ABI of the emitted entry point: (env, ctx, counters, bpf_stack_top).
  // The BPF stack lives in the *caller's* frame so the run() wrapper can
  // register it as a helper-visible memory region before entering native
  // code (the kernel needs no such registration; our helpers defend against
  // verifier bugs by validating their pointer arguments).
  using Entry = std::uint64_t (*)(ExecEnv*, std::uint64_t, NativeCounters*,
                                  std::uint8_t*);

  ~NativeCode();
  NativeCode(const NativeCode&) = delete;
  NativeCode& operator=(const NativeCode&) = delete;

  // Executes the emitted code. Unchecked by construction: only verified
  // programs are ever compiled. Defined inline: this is the per-packet hot
  // path and the wrapper around the emitted code must stay a handful of
  // instructions.
  ExecResult run(ExecEnv& env, std::uint64_t ctx) const {
    // Not zero-filled: only verified programs compile, and the verifier
    // proves stack slots are written before read (kernel JIT frames are not
    // cleared either).
    alignas(16) std::uint8_t stack[kStackSize];
    NativeCounters counters;
    ExecResult res;
    if (has_calls_) {
      // The BPF stack must be visible to helpers (they validate their memory
      // arguments against env.regions) for the duration of the run; programs
      // without helper calls skip the registration — nothing reads it.
      const std::size_t base = env.regions.size();
      env.regions.push_back(MemRegion{
          reinterpret_cast<std::uintptr_t>(stack), kStackSize, true});
      res.ret = entry_(&env, ctx, &counters, stack + kStackSize);
      env.regions.resize(base);
    } else {
      res.ret = entry_(&env, ctx, &counters, stack + kStackSize);
    }
    res.insns_executed = counters.insns;
    res.helper_calls = counters.helper_calls;
    return res;
  }

  // Bytes of emitted machine code (the mapping is rounded up to pages).
  std::size_t code_size() const noexcept { return code_size_; }

 private:
  friend std::shared_ptr<const NativeCode> compile_native(
      const DecodedProgram&, std::string*);
  NativeCode() = default;

  void* pages_ = nullptr;       // mmap'd, PROT_READ|PROT_EXEC after emit
  std::size_t map_len_ = 0;     // page-rounded mapping length
  std::size_t code_size_ = 0;   // actual emitted bytes
  Entry entry_ = nullptr;
  // Only helpers consult env.regions; programs without calls skip the
  // per-run stack-region registration entirely (decided at compile time).
  bool has_calls_ = false;
};

// True when this build and host can emit and execute native code: x86-64,
// and a one-shot probe confirming an anonymous mapping accepts the
// RW -> RX mprotect flip (cached after the first call).
bool native_jit_available() noexcept;

// Translates a decoded (verified) program into executable machine code.
// Returns null and fills *error (if non-null) on unsupported hosts or when
// mmap/mprotect fails; callers fall back to the unchecked-decoded engine.
std::shared_ptr<const NativeCode> compile_native(const DecodedProgram& prog,
                                                 std::string* error);

}  // namespace srv6bpf::ebpf
