#include "ebpf/interp.h"

#include <array>
#include <cstring>

#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {
namespace {

// Hard cap on executed instructions; the verifier guarantees termination but
// this engine must also be safe on unverified test inputs.
constexpr std::uint64_t kMaxSteps = 1u << 22;

ExecResult fault(std::uint64_t executed, std::string msg) {
  ExecResult r;
  r.insns_executed = executed;
  r.aborted = true;
  r.error = std::move(msg);
  return r;
}

}  // namespace

ExecResult Interpreter::run(const Program& prog, ExecEnv& env,
                            std::uint64_t ctx) const {
  const std::vector<Insn>& insns = prog.insns();
  std::array<std::uint64_t, kNumRegs> regs{};
  alignas(16) std::array<std::uint8_t, kStackSize> stack{};

  regs[R1] = ctx;
  regs[R10] = reinterpret_cast<std::uint64_t>(stack.data()) + kStackSize;

  // Stack is always a valid writable region for this invocation, and is
  // exposed to helpers (which validate mem args against env.regions).
  const MemRegion stack_region{
      reinterpret_cast<std::uintptr_t>(stack.data()), kStackSize, true};
  struct RegionGuard {
    ExecEnv& env;
    std::size_t base;
    explicit RegionGuard(ExecEnv& e, const MemRegion& r)
        : env(e), base(e.regions.size()) {
      env.regions.push_back(r);
    }
    // Helpers may append further regions (map values); drop those too.
    ~RegionGuard() { env.regions.resize(base); }
  } region_guard(env, stack_region);

  auto mem_ok = [&](std::uint64_t addr, std::size_t n, bool write) {
    if (stack_region.contains(addr, n)) return true;
    const void* p = reinterpret_cast<const void*>(addr);
    return write ? env.writable(p, n) : env.readable(p, n);
  };

  ExecResult res;
  std::size_t pc = 0;

  while (true) {
    if (pc >= insns.size())
      return fault(res.insns_executed, "pc out of bounds");
    if (res.insns_executed++ > kMaxSteps)
      return fault(res.insns_executed, "instruction budget exhausted");

    const Insn insn = insns[pc];
    if (insn.dst >= kNumRegs || insn.src >= kNumRegs)
      return fault(res.insns_executed, "register number out of range");
    const std::uint8_t cls = insn.insn_class();
    const std::uint8_t op = insn.alu_op();
    std::uint64_t& dst = regs[insn.dst];
    const std::uint64_t src = regs[insn.src];

    switch (cls) {
      case BPF_ALU64: {
        const std::uint64_t b =
            insn.uses_reg_src()
                ? src
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(insn.imm));
        switch (op) {
          case BPF_ADD: dst += b; break;
          case BPF_SUB: dst -= b; break;
          case BPF_MUL: dst *= b; break;
          case BPF_DIV: dst = b ? dst / b : 0; break;
          case BPF_MOD: dst = b ? dst % b : dst; break;
          case BPF_OR: dst |= b; break;
          case BPF_AND: dst &= b; break;
          case BPF_XOR: dst ^= b; break;
          case BPF_MOV: dst = b; break;
          case BPF_LSH: dst <<= (b & 63); break;
          case BPF_RSH: dst >>= (b & 63); break;
          case BPF_ARSH:
            dst = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(dst) >> (b & 63));
            break;
          case BPF_NEG: dst = ~dst + 1; break;
          default:
            return fault(res.insns_executed, "bad ALU64 op");
        }
        ++pc;
        continue;
      }
      case BPF_ALU: {
        if (op == BPF_END) {
          const bool to_be = insn.uses_reg_src();
          std::uint64_t v = dst;
          switch (insn.imm) {
            case 16:
              v = kHostIsLittleEndian == to_be
                      ? bswap16(static_cast<std::uint16_t>(v))
                      : static_cast<std::uint16_t>(v);
              break;
            case 32:
              v = kHostIsLittleEndian == to_be
                      ? bswap32(static_cast<std::uint32_t>(v))
                      : static_cast<std::uint32_t>(v);
              break;
            case 64:
              v = kHostIsLittleEndian == to_be ? bswap64(v) : v;
              break;
            default:
              return fault(res.insns_executed, "bad byteswap width");
          }
          dst = v;
          ++pc;
          continue;
        }
        const std::uint32_t a = static_cast<std::uint32_t>(dst);
        const std::uint32_t b = insn.uses_reg_src()
                                    ? static_cast<std::uint32_t>(src)
                                    : static_cast<std::uint32_t>(insn.imm);
        std::uint32_t r = 0;
        switch (op) {
          case BPF_ADD: r = a + b; break;
          case BPF_SUB: r = a - b; break;
          case BPF_MUL: r = a * b; break;
          case BPF_DIV: r = b ? a / b : 0; break;
          case BPF_MOD: r = b ? a % b : a; break;
          case BPF_OR: r = a | b; break;
          case BPF_AND: r = a & b; break;
          case BPF_XOR: r = a ^ b; break;
          case BPF_MOV: r = b; break;
          case BPF_LSH: r = a << (b & 31); break;
          case BPF_RSH: r = a >> (b & 31); break;
          case BPF_ARSH:
            r = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                           (b & 31));
            break;
          case BPF_NEG: r = static_cast<std::uint32_t>(-static_cast<std::int32_t>(a)); break;
          default:
            return fault(res.insns_executed, "bad ALU32 op");
        }
        dst = r;  // zero-extends
        ++pc;
        continue;
      }
      case BPF_LD: {
        if (!insn.is_ld_imm64())
          return fault(res.insns_executed, "unsupported BPF_LD mode");
        if (pc + 1 >= insns.size())
          return fault(res.insns_executed, "truncated ld_imm64");
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          // Map references carry the registry id as their runtime value.
          dst = static_cast<std::uint32_t>(insn.imm);
        } else {
          dst = (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(insns[pc + 1].imm))
                 << 32) |
                static_cast<std::uint32_t>(insn.imm);
        }
        pc += 2;
        continue;
      }
      case BPF_LDX: {
        const int n = access_size(insn.size_field());
        const std::uint64_t addr = src + insn.off;
        if (!mem_ok(addr, n, false))
          return fault(res.insns_executed,
                       "invalid read of " + std::to_string(n) + " bytes");
        const void* p = reinterpret_cast<const void*>(addr);
        switch (n) {
          case 1: dst = load_unaligned<std::uint8_t>(p); break;
          case 2: dst = load_unaligned<std::uint16_t>(p); break;
          case 4: dst = load_unaligned<std::uint32_t>(p); break;
          case 8: dst = load_unaligned<std::uint64_t>(p); break;
        }
        ++pc;
        continue;
      }
      case BPF_ST:
      case BPF_STX: {
        const int n = access_size(insn.size_field());
        const std::uint64_t addr = dst + insn.off;
        const std::uint64_t val =
            cls == BPF_STX
                ? src
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(insn.imm));
        if (!mem_ok(addr, n, true))
          return fault(res.insns_executed,
                       "invalid write of " + std::to_string(n) + " bytes");
        void* p = reinterpret_cast<void*>(addr);
        switch (n) {
          case 1: store_unaligned<std::uint8_t>(p, static_cast<std::uint8_t>(val)); break;
          case 2: store_unaligned<std::uint16_t>(p, static_cast<std::uint16_t>(val)); break;
          case 4: store_unaligned<std::uint32_t>(p, static_cast<std::uint32_t>(val)); break;
          case 8: store_unaligned<std::uint64_t>(p, val); break;
        }
        ++pc;
        continue;
      }
      case BPF_JMP:
      case BPF_JMP32: {
        if (insn.is_exit()) {
          res.ret = regs[R0];
          return res;
        }
        if (insn.is_call()) {
          if (env.helpers == nullptr)
            return fault(res.insns_executed, "no helper registry");
          const HelperFn* fn = env.helpers->fn(insn.imm);
          if (fn == nullptr)
            return fault(res.insns_executed,
                         "unknown helper " + std::to_string(insn.imm));
          ++res.helper_calls;
          regs[R0] = (*fn)(env, regs[R1], regs[R2], regs[R3], regs[R4],
                           regs[R5]);
          ++pc;
          continue;
        }
        bool take;
        if (insn.is_unconditional_jump()) {
          take = true;
        } else {
          const bool is32 = cls == BPF_JMP32;
          const std::uint64_t a64 = dst;
          const std::uint64_t b64 =
              insn.uses_reg_src()
                  ? src
                  : static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(insn.imm));
          const std::uint64_t a = is32 ? static_cast<std::uint32_t>(a64) : a64;
          const std::uint64_t b = is32 ? static_cast<std::uint32_t>(b64) : b64;
          const std::int64_t sa =
              is32 ? static_cast<std::int32_t>(a64) : static_cast<std::int64_t>(a64);
          const std::int64_t sb =
              is32 ? static_cast<std::int32_t>(b64) : static_cast<std::int64_t>(b64);
          switch (op) {
            case BPF_JEQ: take = a == b; break;
            case BPF_JNE: take = a != b; break;
            case BPF_JGT: take = a > b; break;
            case BPF_JGE: take = a >= b; break;
            case BPF_JLT: take = a < b; break;
            case BPF_JLE: take = a <= b; break;
            case BPF_JSET: take = (a & b) != 0; break;
            case BPF_JSGT: take = sa > sb; break;
            case BPF_JSGE: take = sa >= sb; break;
            case BPF_JSLT: take = sa < sb; break;
            case BPF_JSLE: take = sa <= sb; break;
            default:
              return fault(res.insns_executed, "bad JMP op");
          }
        }
        pc = take ? pc + 1 + insn.off : pc + 1;
        continue;
      }
      default:
        return fault(res.insns_executed, "bad instruction class");
    }
  }
}

}  // namespace srv6bpf::ebpf
