#include "ebpf/interp.h"

#include <array>
#include <cstring>
#include <string>

#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "util/byteorder.h"

// Computed-goto (direct-threaded) dispatch on GCC/Clang; portable switch
// fallback elsewhere or when explicitly disabled for A/B measurement.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SRV6BPF_NO_COMPUTED_GOTO)
#define SRV6BPF_COMPUTED_GOTO 1
#else
#define SRV6BPF_COMPUTED_GOTO 0
#endif

namespace srv6bpf::ebpf {
namespace {

ExecResult fault(std::uint64_t executed, std::string msg) {
  ExecResult r;
  r.insns_executed = executed;
  r.aborted = true;
  r.error = std::move(msg);
  return r;
}

// Pushes the per-invocation BPF stack as a helper-visible region and drops
// it (plus any regions helpers appended, e.g. map values) on scope exit.
struct RegionGuard {
  ExecEnv& env;
  std::size_t base;
  RegionGuard(ExecEnv& e, const MemRegion& r)
      : env(e), base(e.regions.size()) {
    env.regions.push_back(r);
  }
  ~RegionGuard() { env.regions.resize(base); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Pre-decoded, threaded-dispatch engine (the hot path)
// ---------------------------------------------------------------------------

ExecResult Interpreter::run(const DecodedProgram& prog, ExecEnv& env,
                            std::uint64_t ctx) const {
  std::array<std::uint64_t, kNumRegs> regs{};
  // Deliberately not zero-filled: decoded programs come from the verifier,
  // which proves every stack slot is written before it is read (the kernel
  // interpreter does not clear the BPF stack either). The baseline engine
  // below zero-fills because it accepts unverified streams.
  alignas(16) std::array<std::uint8_t, kStackSize> stack;

  const std::uint64_t stack_base =
      reinterpret_cast<std::uint64_t>(stack.data());
  regs[R1] = ctx;
  regs[R10] = stack_base + kStackSize;

  RegionGuard region_guard(env, MemRegion{stack_base, kStackSize, true});

  ExecResult res;
  const DecodedInsn* const base = prog.data();
  const DecodedInsn* op = base;
  std::uint64_t executed = 0;

// Accessors for the current op's operands.
#define DST regs[op->dst]
#define SRC regs[op->src]

#define FAULT(msg)                \
  do {                            \
    res.insns_executed = executed; \
    res.aborted = true;           \
    res.error = (msg);            \
    return res;                   \
  } while (0)

// Memory checks with a single-comparison stack fast path: for any access
// size n <= 8, `addr - stack_base <= kStackSize - n` (unsigned) holds iff
// [addr, addr+n) lies inside the stack frame; addresses below the base wrap
// to huge values and fail. Everything else falls back to the region list.
#define CHECK_READ(addr, n)                                                 \
  do {                                                                      \
    if ((addr) - stack_base > kStackSize - (n) &&                           \
        !env.readable(reinterpret_cast<const void*>(addr), (n)))            \
      FAULT("invalid read of " + std::to_string(n) + " bytes");             \
  } while (0)
#define CHECK_WRITE(addr, n)                                                \
  do {                                                                      \
    if ((addr) - stack_base > kStackSize - (n) &&                           \
        !env.writable(reinterpret_cast<const void*>(addr), (n)))            \
      FAULT("invalid write of " + std::to_string(n) + " bytes");            \
  } while (0)

#if SRV6BPF_COMPUTED_GOTO
#define LBL_ADDR(name) &&L_##name,
  static const void* const kLabels[] = {SRV6BPF_OPKIND_LIST(LBL_ADDR)};
#undef LBL_ADDR
#define CASE(name) L_##name:
#define DISPATCH()                 \
  do {                             \
    ++executed;                    \
    goto* kLabels[op->kind];       \
  } while (0)
#else
#define CASE(name) case name:
#define DISPATCH() goto dispatch
#endif

#define NEXT() \
  do {         \
    ++op;      \
    DISPATCH(); \
  } while (0)

// The step budget is amortised: checked only on taken backward jumps and
// helper calls. Between two checks control flow is strictly forward, so the
// overshoot is bounded by the program length (<= kMaxInsns).
#define TAKE_JUMP()                                        \
  do {                                                     \
    const DecodedInsn* t = base + op->target;              \
    if (t <= op && executed >= kMaxInterpSteps)            \
      FAULT("instruction budget exhausted");               \
    op = t;                                                \
    DISPATCH();                                            \
  } while (0)

// ALU / byteswap / load-immediate ops: one statement, then fall to the next
// op. Jump ops: test, then either TAKE_JUMP or fall through.
#define ACASE(name, stmt) \
  CASE(name) { stmt; NEXT(); }
#define JCASE(name, cond) \
  CASE(name) {            \
    if (cond) TAKE_JUMP(); \
    NEXT();               \
  }

#if SRV6BPF_COMPUTED_GOTO
  DISPATCH();
#else
dispatch:
  ++executed;
  switch (op->kind)
#endif
  {
    ACASE(kAdd64R, DST += SRC)
    ACASE(kSub64R, DST -= SRC)
    ACASE(kMul64R, DST *= SRC)
    ACASE(kDiv64R, DST = SRC ? DST / SRC : 0)
    ACASE(kMod64R, DST = SRC ? DST % SRC : DST)
    ACASE(kOr64R, DST |= SRC)
    ACASE(kAnd64R, DST &= SRC)
    ACASE(kXor64R, DST ^= SRC)
    ACASE(kMov64R, DST = SRC)
    ACASE(kLsh64R, DST <<= (SRC & 63))
    ACASE(kRsh64R, DST >>= (SRC & 63))
    ACASE(kArsh64R,
          DST = static_cast<std::uint64_t>(static_cast<std::int64_t>(DST) >>
                                           (SRC & 63)))
    ACASE(kAdd64I, DST += op->imm64)
    ACASE(kSub64I, DST -= op->imm64)
    ACASE(kMul64I, DST *= op->imm64)
    ACASE(kDiv64I, DST = op->imm64 ? DST / op->imm64 : 0)
    ACASE(kMod64I, DST = op->imm64 ? DST % op->imm64 : DST)
    ACASE(kOr64I, DST |= op->imm64)
    ACASE(kAnd64I, DST &= op->imm64)
    ACASE(kXor64I, DST ^= op->imm64)
    ACASE(kMov64I, DST = op->imm64)
    ACASE(kLsh64I, DST <<= (op->imm64 & 63))
    ACASE(kRsh64I, DST >>= (op->imm64 & 63))
    ACASE(kArsh64I,
          DST = static_cast<std::uint64_t>(static_cast<std::int64_t>(DST) >>
                                           (op->imm64 & 63)))
    ACASE(kNeg64, DST = ~DST + 1)

    ACASE(kAdd32R, DST = static_cast<std::uint32_t>(DST + SRC))
    ACASE(kSub32R, DST = static_cast<std::uint32_t>(DST - SRC))
    ACASE(kMul32R, DST = static_cast<std::uint32_t>(DST * SRC))
    CASE(kDiv32R) {
      const std::uint32_t b = static_cast<std::uint32_t>(SRC);
      DST = b ? static_cast<std::uint32_t>(DST) / b : 0;
      NEXT();
    }
    CASE(kMod32R) {
      const std::uint32_t b = static_cast<std::uint32_t>(SRC);
      DST = b ? static_cast<std::uint32_t>(DST) % b
              : static_cast<std::uint32_t>(DST);
      NEXT();
    }
    ACASE(kOr32R, DST = static_cast<std::uint32_t>(DST | SRC))
    ACASE(kAnd32R, DST = static_cast<std::uint32_t>(DST & SRC))
    ACASE(kXor32R, DST = static_cast<std::uint32_t>(DST ^ SRC))
    ACASE(kMov32R, DST = static_cast<std::uint32_t>(SRC))
    ACASE(kLsh32R, DST = static_cast<std::uint32_t>(DST) << (SRC & 31))
    ACASE(kRsh32R, DST = static_cast<std::uint32_t>(DST) >> (SRC & 31))
    ACASE(kArsh32R,
          DST = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::uint32_t>(DST)) >>
              (SRC & 31)))
    ACASE(kAdd32I, DST = static_cast<std::uint32_t>(DST + op->imm64))
    ACASE(kSub32I, DST = static_cast<std::uint32_t>(DST - op->imm64))
    ACASE(kMul32I, DST = static_cast<std::uint32_t>(DST * op->imm64))
    CASE(kDiv32I) {
      const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
      DST = b ? static_cast<std::uint32_t>(DST) / b : 0;
      NEXT();
    }
    CASE(kMod32I) {
      const std::uint32_t b = static_cast<std::uint32_t>(op->imm64);
      DST = b ? static_cast<std::uint32_t>(DST) % b
              : static_cast<std::uint32_t>(DST);
      NEXT();
    }
    ACASE(kOr32I, DST = static_cast<std::uint32_t>(DST | op->imm64))
    ACASE(kAnd32I, DST = static_cast<std::uint32_t>(DST & op->imm64))
    ACASE(kXor32I, DST = static_cast<std::uint32_t>(DST ^ op->imm64))
    ACASE(kMov32I, DST = static_cast<std::uint32_t>(op->imm64))
    ACASE(kLsh32I, DST = static_cast<std::uint32_t>(DST) << (op->imm64 & 31))
    ACASE(kRsh32I, DST = static_cast<std::uint32_t>(DST) >> (op->imm64 & 31))
    ACASE(kArsh32I,
          DST = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::uint32_t>(DST)) >>
              (op->imm64 & 31)))
    ACASE(kNeg32,
          DST = static_cast<std::uint32_t>(
              -static_cast<std::int32_t>(static_cast<std::uint32_t>(DST))))

    ACASE(kBe16, DST = kHostIsLittleEndian
                           ? bswap16(static_cast<std::uint16_t>(DST))
                           : static_cast<std::uint16_t>(DST))
    ACASE(kBe32, DST = kHostIsLittleEndian
                           ? bswap32(static_cast<std::uint32_t>(DST))
                           : static_cast<std::uint32_t>(DST))
    ACASE(kBe64, DST = kHostIsLittleEndian ? bswap64(DST) : DST)
    ACASE(kLe16, DST = kHostIsLittleEndian
                           ? static_cast<std::uint16_t>(DST)
                           : bswap16(static_cast<std::uint16_t>(DST)))
    ACASE(kLe32, DST = kHostIsLittleEndian
                           ? static_cast<std::uint32_t>(DST)
                           : bswap32(static_cast<std::uint32_t>(DST)))
    ACASE(kLe64, DST = kHostIsLittleEndian ? DST : bswap64(DST))

    CASE(kLd1) {
      const std::uint64_t a = SRC + op->off;
      CHECK_READ(a, 1);
      DST = load_unaligned<std::uint8_t>(reinterpret_cast<const void*>(a));
      NEXT();
    }
    CASE(kLd2) {
      const std::uint64_t a = SRC + op->off;
      CHECK_READ(a, 2);
      DST = load_unaligned<std::uint16_t>(reinterpret_cast<const void*>(a));
      NEXT();
    }
    CASE(kLd4) {
      const std::uint64_t a = SRC + op->off;
      CHECK_READ(a, 4);
      DST = load_unaligned<std::uint32_t>(reinterpret_cast<const void*>(a));
      NEXT();
    }
    CASE(kLd8) {
      const std::uint64_t a = SRC + op->off;
      CHECK_READ(a, 8);
      DST = load_unaligned<std::uint64_t>(reinterpret_cast<const void*>(a));
      NEXT();
    }
    CASE(kSt1R) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 1);
      store_unaligned<std::uint8_t>(reinterpret_cast<void*>(a),
                                    static_cast<std::uint8_t>(SRC));
      NEXT();
    }
    CASE(kSt2R) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 2);
      store_unaligned<std::uint16_t>(reinterpret_cast<void*>(a),
                                     static_cast<std::uint16_t>(SRC));
      NEXT();
    }
    CASE(kSt4R) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 4);
      store_unaligned<std::uint32_t>(reinterpret_cast<void*>(a),
                                     static_cast<std::uint32_t>(SRC));
      NEXT();
    }
    CASE(kSt8R) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 8);
      store_unaligned<std::uint64_t>(reinterpret_cast<void*>(a), SRC);
      NEXT();
    }
    CASE(kSt1I) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 1);
      store_unaligned<std::uint8_t>(reinterpret_cast<void*>(a),
                                    static_cast<std::uint8_t>(op->imm));
      NEXT();
    }
    CASE(kSt2I) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 2);
      store_unaligned<std::uint16_t>(reinterpret_cast<void*>(a),
                                     static_cast<std::uint16_t>(op->imm));
      NEXT();
    }
    CASE(kSt4I) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 4);
      store_unaligned<std::uint32_t>(reinterpret_cast<void*>(a),
                                     static_cast<std::uint32_t>(op->imm));
      NEXT();
    }
    CASE(kSt8I) {
      const std::uint64_t a = DST + op->off;
      CHECK_WRITE(a, 8);
      store_unaligned<std::uint64_t>(
          reinterpret_cast<void*>(a),
          static_cast<std::uint64_t>(static_cast<std::int64_t>(op->imm)));
      NEXT();
    }

    ACASE(kLdImm64, DST = op->imm64)

    CASE(kJa) { TAKE_JUMP(); }

    JCASE(kJeqR, DST == SRC)
    JCASE(kJneR, DST != SRC)
    JCASE(kJgtR, DST > SRC)
    JCASE(kJgeR, DST >= SRC)
    JCASE(kJltR, DST < SRC)
    JCASE(kJleR, DST <= SRC)
    JCASE(kJsetR, (DST & SRC) != 0)
    JCASE(kJsgtR, static_cast<std::int64_t>(DST) > static_cast<std::int64_t>(SRC))
    JCASE(kJsgeR, static_cast<std::int64_t>(DST) >= static_cast<std::int64_t>(SRC))
    JCASE(kJsltR, static_cast<std::int64_t>(DST) < static_cast<std::int64_t>(SRC))
    JCASE(kJsleR, static_cast<std::int64_t>(DST) <= static_cast<std::int64_t>(SRC))
    JCASE(kJeqI, DST == op->imm64)
    JCASE(kJneI, DST != op->imm64)
    JCASE(kJgtI, DST > op->imm64)
    JCASE(kJgeI, DST >= op->imm64)
    JCASE(kJltI, DST < op->imm64)
    JCASE(kJleI, DST <= op->imm64)
    JCASE(kJsetI, (DST & op->imm64) != 0)
    JCASE(kJsgtI, static_cast<std::int64_t>(DST) > static_cast<std::int64_t>(op->imm64))
    JCASE(kJsgeI, static_cast<std::int64_t>(DST) >= static_cast<std::int64_t>(op->imm64))
    JCASE(kJsltI, static_cast<std::int64_t>(DST) < static_cast<std::int64_t>(op->imm64))
    JCASE(kJsleI, static_cast<std::int64_t>(DST) <= static_cast<std::int64_t>(op->imm64))
    JCASE(kJeq32R, static_cast<std::uint32_t>(DST) == static_cast<std::uint32_t>(SRC))
    JCASE(kJne32R, static_cast<std::uint32_t>(DST) != static_cast<std::uint32_t>(SRC))
    JCASE(kJgt32R, static_cast<std::uint32_t>(DST) > static_cast<std::uint32_t>(SRC))
    JCASE(kJge32R, static_cast<std::uint32_t>(DST) >= static_cast<std::uint32_t>(SRC))
    JCASE(kJlt32R, static_cast<std::uint32_t>(DST) < static_cast<std::uint32_t>(SRC))
    JCASE(kJle32R, static_cast<std::uint32_t>(DST) <= static_cast<std::uint32_t>(SRC))
    JCASE(kJset32R, (static_cast<std::uint32_t>(DST) & static_cast<std::uint32_t>(SRC)) != 0)
    JCASE(kJsgt32R, static_cast<std::int32_t>(DST) > static_cast<std::int32_t>(SRC))
    JCASE(kJsge32R, static_cast<std::int32_t>(DST) >= static_cast<std::int32_t>(SRC))
    JCASE(kJslt32R, static_cast<std::int32_t>(DST) < static_cast<std::int32_t>(SRC))
    JCASE(kJsle32R, static_cast<std::int32_t>(DST) <= static_cast<std::int32_t>(SRC))
    JCASE(kJeq32I, static_cast<std::uint32_t>(DST) == static_cast<std::uint32_t>(op->imm))
    JCASE(kJne32I, static_cast<std::uint32_t>(DST) != static_cast<std::uint32_t>(op->imm))
    JCASE(kJgt32I, static_cast<std::uint32_t>(DST) > static_cast<std::uint32_t>(op->imm))
    JCASE(kJge32I, static_cast<std::uint32_t>(DST) >= static_cast<std::uint32_t>(op->imm))
    JCASE(kJlt32I, static_cast<std::uint32_t>(DST) < static_cast<std::uint32_t>(op->imm))
    JCASE(kJle32I, static_cast<std::uint32_t>(DST) <= static_cast<std::uint32_t>(op->imm))
    JCASE(kJset32I, (static_cast<std::uint32_t>(DST) & static_cast<std::uint32_t>(op->imm)) != 0)
    JCASE(kJsgt32I, static_cast<std::int32_t>(DST) > op->imm)
    JCASE(kJsge32I, static_cast<std::int32_t>(DST) >= op->imm)
    JCASE(kJslt32I, static_cast<std::int32_t>(DST) < op->imm)
    JCASE(kJsle32I, static_cast<std::int32_t>(DST) <= op->imm)

    CASE(kCall) {
      if (executed >= kMaxInterpSteps)
        FAULT("instruction budget exhausted");
      ++res.helper_calls;
      regs[R0] =
          (*op->fn)(env, regs[R1], regs[R2], regs[R3], regs[R4], regs[R5]);
      NEXT();
    }
    CASE(kExit) {
      res.ret = regs[R0];
      res.insns_executed = executed;
      return res;
    }
#if !SRV6BPF_COMPUTED_GOTO
    default:
      FAULT("bad decoded op kind");
#endif
  }
#if !SRV6BPF_COMPUTED_GOTO
  FAULT("fell out of dispatch loop");  // unreachable; every case jumps
#endif

#undef DST
#undef SRC
#undef FAULT
#undef CHECK_READ
#undef CHECK_WRITE
#undef CASE
#undef DISPATCH
#undef NEXT
#undef TAKE_JUMP
#undef ACASE
#undef JCASE
}

// ---------------------------------------------------------------------------
// Baseline decode-every-step engine (reference; runs unverified streams)
// ---------------------------------------------------------------------------

ExecResult Interpreter::run(const Program& prog, ExecEnv& env,
                            std::uint64_t ctx) const {
  const std::vector<Insn>& insns = prog.insns();
  std::array<std::uint64_t, kNumRegs> regs{};
  alignas(16) std::array<std::uint8_t, kStackSize> stack{};

  regs[R1] = ctx;
  regs[R10] = reinterpret_cast<std::uint64_t>(stack.data()) + kStackSize;

  // Stack is always a valid writable region for this invocation, and is
  // exposed to helpers (which validate mem args against env.regions).
  const MemRegion stack_region{
      reinterpret_cast<std::uintptr_t>(stack.data()), kStackSize, true};
  RegionGuard region_guard(env, stack_region);

  auto mem_ok = [&](std::uint64_t addr, std::size_t n, bool write) {
    if (stack_region.contains(addr, n)) return true;
    const void* p = reinterpret_cast<const void*>(addr);
    return write ? env.writable(p, n) : env.readable(p, n);
  };

  ExecResult res;
  std::size_t pc = 0;

  while (true) {
    if (pc >= insns.size())
      return fault(res.insns_executed, "pc out of bounds");
    // Exact budget: stop *before* executing instruction kMaxInterpSteps+1,
    // reporting only instructions that actually ran (the seed admitted
    // kMaxSteps+2 executions here).
    if (res.insns_executed >= kMaxInterpSteps)
      return fault(res.insns_executed, "instruction budget exhausted");
    ++res.insns_executed;

    const Insn insn = insns[pc];
    if (insn.dst >= kNumRegs || insn.src >= kNumRegs)
      return fault(res.insns_executed, "register number out of range");
    const std::uint8_t cls = insn.insn_class();
    const std::uint8_t op = insn.alu_op();
    std::uint64_t& dst = regs[insn.dst];
    const std::uint64_t src = regs[insn.src];

    switch (cls) {
      case BPF_ALU64: {
        if (op == BPF_NEG) {
          if (insn.uses_reg_src())
            return fault(res.insns_executed, "BPF_NEG with register source");
          dst = ~dst + 1;
          ++pc;
          continue;
        }
        const std::uint64_t b =
            insn.uses_reg_src()
                ? src
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(insn.imm));
        switch (op) {
          case BPF_ADD: dst += b; break;
          case BPF_SUB: dst -= b; break;
          case BPF_MUL: dst *= b; break;
          case BPF_DIV: dst = b ? dst / b : 0; break;
          case BPF_MOD: dst = b ? dst % b : dst; break;
          case BPF_OR: dst |= b; break;
          case BPF_AND: dst &= b; break;
          case BPF_XOR: dst ^= b; break;
          case BPF_MOV: dst = b; break;
          case BPF_LSH: dst <<= (b & 63); break;
          case BPF_RSH: dst >>= (b & 63); break;
          case BPF_ARSH:
            dst = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(dst) >> (b & 63));
            break;
          default:
            return fault(res.insns_executed, "bad ALU64 op");
        }
        ++pc;
        continue;
      }
      case BPF_ALU: {
        if (op == BPF_END) {
          const bool to_be = insn.uses_reg_src();
          std::uint64_t v = dst;
          switch (insn.imm) {
            case 16:
              v = kHostIsLittleEndian == to_be
                      ? bswap16(static_cast<std::uint16_t>(v))
                      : static_cast<std::uint16_t>(v);
              break;
            case 32:
              v = kHostIsLittleEndian == to_be
                      ? bswap32(static_cast<std::uint32_t>(v))
                      : static_cast<std::uint32_t>(v);
              break;
            case 64:
              v = kHostIsLittleEndian == to_be ? bswap64(v) : v;
              break;
            default:
              return fault(res.insns_executed, "bad byteswap width");
          }
          dst = v;
          ++pc;
          continue;
        }
        if (op == BPF_NEG) {
          if (insn.uses_reg_src())
            return fault(res.insns_executed, "BPF_NEG with register source");
          dst = static_cast<std::uint32_t>(
              -static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)));
          ++pc;
          continue;
        }
        const std::uint32_t a = static_cast<std::uint32_t>(dst);
        const std::uint32_t b = insn.uses_reg_src()
                                    ? static_cast<std::uint32_t>(src)
                                    : static_cast<std::uint32_t>(insn.imm);
        std::uint32_t r = 0;
        switch (op) {
          case BPF_ADD: r = a + b; break;
          case BPF_SUB: r = a - b; break;
          case BPF_MUL: r = a * b; break;
          case BPF_DIV: r = b ? a / b : 0; break;
          case BPF_MOD: r = b ? a % b : a; break;
          case BPF_OR: r = a | b; break;
          case BPF_AND: r = a & b; break;
          case BPF_XOR: r = a ^ b; break;
          case BPF_MOV: r = b; break;
          case BPF_LSH: r = a << (b & 31); break;
          case BPF_RSH: r = a >> (b & 31); break;
          case BPF_ARSH:
            r = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                           (b & 31));
            break;
          default:
            return fault(res.insns_executed, "bad ALU32 op");
        }
        dst = r;  // zero-extends
        ++pc;
        continue;
      }
      case BPF_LD: {
        if (!insn.is_ld_imm64())
          return fault(res.insns_executed, "unsupported BPF_LD mode");
        if (pc + 1 >= insns.size())
          return fault(res.insns_executed, "truncated ld_imm64");
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          // Map references carry the registry id as their runtime value.
          dst = static_cast<std::uint32_t>(insn.imm);
        } else {
          dst = (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(insns[pc + 1].imm))
                 << 32) |
                static_cast<std::uint32_t>(insn.imm);
        }
        pc += 2;
        continue;
      }
      case BPF_LDX: {
        const int n = access_size(insn.size_field());
        const std::uint64_t addr = src + insn.off;
        if (!mem_ok(addr, n, false))
          return fault(res.insns_executed,
                       "invalid read of " + std::to_string(n) + " bytes");
        const void* p = reinterpret_cast<const void*>(addr);
        switch (n) {
          case 1: dst = load_unaligned<std::uint8_t>(p); break;
          case 2: dst = load_unaligned<std::uint16_t>(p); break;
          case 4: dst = load_unaligned<std::uint32_t>(p); break;
          case 8: dst = load_unaligned<std::uint64_t>(p); break;
        }
        ++pc;
        continue;
      }
      case BPF_ST:
      case BPF_STX: {
        const int n = access_size(insn.size_field());
        const std::uint64_t addr = dst + insn.off;
        const std::uint64_t val =
            cls == BPF_STX
                ? src
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(insn.imm));
        if (!mem_ok(addr, n, true))
          return fault(res.insns_executed,
                       "invalid write of " + std::to_string(n) + " bytes");
        void* p = reinterpret_cast<void*>(addr);
        switch (n) {
          case 1: store_unaligned<std::uint8_t>(p, static_cast<std::uint8_t>(val)); break;
          case 2: store_unaligned<std::uint16_t>(p, static_cast<std::uint16_t>(val)); break;
          case 4: store_unaligned<std::uint32_t>(p, static_cast<std::uint32_t>(val)); break;
          case 8: store_unaligned<std::uint64_t>(p, val); break;
        }
        ++pc;
        continue;
      }
      case BPF_JMP:
      case BPF_JMP32: {
        if (insn.is_exit()) {
          res.ret = regs[R0];
          return res;
        }
        if (insn.is_call()) {
          if (env.helpers == nullptr)
            return fault(res.insns_executed, "no helper registry");
          const HelperFn* fn = env.helpers->fn(insn.imm);
          if (fn == nullptr)
            return fault(res.insns_executed,
                         "unknown helper " + std::to_string(insn.imm));
          ++res.helper_calls;
          regs[R0] = (*fn)(env, regs[R1], regs[R2], regs[R3], regs[R4],
                           regs[R5]);
          ++pc;
          continue;
        }
        bool take;
        if (insn.is_unconditional_jump()) {
          take = true;
        } else {
          const bool is32 = cls == BPF_JMP32;
          const std::uint64_t a64 = dst;
          const std::uint64_t b64 =
              insn.uses_reg_src()
                  ? src
                  : static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(insn.imm));
          const std::uint64_t a = is32 ? static_cast<std::uint32_t>(a64) : a64;
          const std::uint64_t b = is32 ? static_cast<std::uint32_t>(b64) : b64;
          const std::int64_t sa =
              is32 ? static_cast<std::int32_t>(a64) : static_cast<std::int64_t>(a64);
          const std::int64_t sb =
              is32 ? static_cast<std::int32_t>(b64) : static_cast<std::int64_t>(b64);
          switch (op) {
            case BPF_JEQ: take = a == b; break;
            case BPF_JNE: take = a != b; break;
            case BPF_JGT: take = a > b; break;
            case BPF_JGE: take = a >= b; break;
            case BPF_JLT: take = a < b; break;
            case BPF_JLE: take = a <= b; break;
            case BPF_JSET: take = (a & b) != 0; break;
            case BPF_JSGT: take = sa > sb; break;
            case BPF_JSGE: take = sa >= sb; break;
            case BPF_JSLT: take = sa < sb; break;
            case BPF_JSLE: take = sa <= sb; break;
            default:
              return fault(res.insns_executed, "bad JMP op");
          }
        }
        pc = take ? pc + 1 + insn.off : pc + 1;
        continue;
      }
      default:
        return fault(res.insns_executed, "bad instruction class");
    }
  }
}

}  // namespace srv6bpf::ebpf
