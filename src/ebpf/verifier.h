// The eBPF static verifier.
//
// Before a program may be attached to a hook it must be proven safe:
//   * the control-flow graph is a DAG (no back-edges; pre-5.3 kernel rule),
//     every path ends in BPF_EXIT, and no jump lands inside a LD_IMM64 pair;
//   * registers are typed (scalar / ctx / packet / stack / map-value / map
//     pointer) and never used uninitialised;
//   * packet bytes may only be loaded after the program has established
//     bounds with the canonical `if (data + N > data_end) goto out;` pattern,
//     and packet memory is read-only for LWT/seg6local program types (writes
//     go through the SRv6 helpers — this is principle (i) of the paper §3);
//   * stack accesses stay within the 512-byte frame and never read slots
//     that were not previously written; pointer spills/fills are tracked;
//   * helper call sites match the registered helper prototypes, map-value
//     pointers are null-checked before use, and helpers that can reallocate
//     the packet invalidate previously derived packet pointers.
//
// Implementation: explicit-state symbolic execution over the instruction
// DAG with optional state pruning (identical-state deduplication per
// instruction). The DAG property bounds the exploration; a visited-state
// budget rejects pathological programs as "too complex", like the kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "ebpf/map.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

struct VerifyOptions {
  bool enable_pruning = true;
  // Upper bound on symbolic states processed before giving up.
  std::size_t max_states = 200000;
};

struct VerifyStats {
  std::size_t states_visited = 0;
  std::size_t states_pruned = 0;
  std::size_t peak_worklist = 0;
};

struct VerifyResult {
  bool ok = false;
  std::string error;     // empty on success
  int error_insn = -1;   // instruction index the error refers to
  VerifyStats stats;
};

class Verifier {
 public:
  // `maps` resolves pseudo map-fd loads; `helpers` provides call prototypes.
  Verifier(const MapRegistry* maps, const HelperRegistry* helpers,
           VerifyOptions opts = {})
      : maps_(maps), helpers_(helpers), opts_(opts) {}

  VerifyResult verify(const Program& prog) const;
  VerifyResult verify(const std::vector<Insn>& insns, ProgType type) const;

 private:
  const MapRegistry* maps_;
  const HelperRegistry* helpers_;
  VerifyOptions opts_;
};

}  // namespace srv6bpf::ebpf
