#include <cstring>

#include "ebpf/map_impl.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {

std::uint8_t* LpmTrieMap::lookup(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return nullptr;
  // Lookups ignore the caller's prefixlen and match the full key, returning
  // the most specific stored prefix (kernel semantics).
  const auto* v = trie_.lookup(key.data() + 4);
  return v ? v->get() : nullptr;
}

int LpmTrieMap::do_update(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> value,
                          std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  if (flags > BPF_EXIST) return kErrInval;
  const std::uint32_t prefixlen = load_unaligned<std::uint32_t>(key.data());
  if (prefixlen > max_prefixlen_) return kErrInval;
  const std::uint8_t* data = key.data() + 4;

  if (auto* existing = trie_.find_exact(data, prefixlen)) {
    if (flags == BPF_NOEXIST) return kErrExist;
    std::memcpy(existing->get(), value.data(), value.size());
    return kOk;
  }
  if (flags == BPF_EXIST) return kErrNoEnt;
  if (trie_.size() >= max_entries()) return kErrNoSpace;
  bool created = false;
  auto* buf = trie_.find_or_insert(data, prefixlen, created);
  *buf = std::make_unique<std::uint8_t[]>(value_size());
  std::memcpy(buf->get(), value.data(), value.size());
  return kOk;
}

int LpmTrieMap::erase(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return kErrInval;
  const std::uint32_t prefixlen = load_unaligned<std::uint32_t>(key.data());
  if (prefixlen > max_prefixlen_) return kErrInval;
  return trie_.erase(key.data() + 4, prefixlen) ? kOk : kErrNoEnt;
}

}  // namespace srv6bpf::ebpf
