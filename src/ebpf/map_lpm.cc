#include <cstring>

#include "ebpf/map_impl.h"
#include "util/byteorder.h"

namespace srv6bpf::ebpf {

std::uint8_t* LpmTrieMap::lookup(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return nullptr;
  // Lookups ignore the caller's prefixlen and match the full key, returning
  // the most specific stored prefix (kernel semantics).
  const std::span<const std::uint8_t> data = key.subspan(4);
  Node* node = &root_;
  std::uint8_t* best = root_.value.get();
  for (std::uint32_t i = 0; i < max_prefixlen_; ++i) {
    node = node->child[bit_at(data, i)].get();
    if (node == nullptr) break;
    if (node->value) best = node->value.get();
  }
  return best;
}

int LpmTrieMap::update(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> value,
                       std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  if (flags > BPF_EXIST) return kErrInval;
  const std::uint32_t prefixlen = load_unaligned<std::uint32_t>(key.data());
  if (prefixlen > max_prefixlen_) return kErrInval;
  const std::span<const std::uint8_t> data = key.subspan(4);

  Node* node = &root_;
  for (std::uint32_t i = 0; i < prefixlen; ++i) {
    auto& child = node->child[bit_at(data, i)];
    if (!child) child = std::make_unique<Node>();
    node = child.get();
  }
  if (node->value) {
    if (flags == BPF_NOEXIST) return kErrExist;
    std::memcpy(node->value.get(), value.data(), value.size());
    return kOk;
  }
  if (flags == BPF_EXIST) return kErrNoEnt;
  if (entry_count_ >= max_entries()) return kErrNoSpace;
  node->value = std::make_unique<std::uint8_t[]>(value_size());
  std::memcpy(node->value.get(), value.data(), value.size());
  ++entry_count_;
  return kOk;
}

int LpmTrieMap::erase(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return kErrInval;
  const std::uint32_t prefixlen = load_unaligned<std::uint32_t>(key.data());
  if (prefixlen > max_prefixlen_) return kErrInval;
  const std::span<const std::uint8_t> data = key.subspan(4);
  Node* node = &root_;
  for (std::uint32_t i = 0; i < prefixlen && node; ++i)
    node = node->child[bit_at(data, i)].get();
  if (node == nullptr || !node->value) return kErrNoEnt;
  node->value.reset();
  --entry_count_;
  return kOk;
}

}  // namespace srv6bpf::ebpf
