// The "JIT" execution engine.
//
// The kernel translates verified eBPF to native machine code; the performance
// characteristics that matter for the paper's §3.2 experiment are (a) no
// per-step instruction decoding and (b) no per-access runtime bounds checks
// (the verifier proved them). This engine reproduces both properties by
// translating a verified program once into a dense pre-decoded form with
// resolved jump targets and helper pointers, then running it without decode
// or check overhead — while the Interpreter decodes and checks every step.
// The throughput ratio between the two is the repository's analogue of the
// paper's JIT-vs-interpreter factor (reported by bench_jit).
//
// Only verified programs may be compiled: this engine trades runtime checks
// for the verifier's static proof, exactly like the kernel JIT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

class CompiledProgram {
 public:
  ExecResult run(ExecEnv& env, std::uint64_t ctx) const;
  std::size_t op_count() const noexcept { return ops_.size(); }

 private:
  friend class Jit;

  // Dense micro-op. `kind` indexes the dispatch table; jumps carry absolute
  // op indices; ld_imm64 pairs are collapsed into one op.
  struct Op {
    std::uint16_t kind = 0;
    std::uint8_t dst = 0;
    std::uint8_t src = 0;
    std::int16_t off = 0;
    std::int32_t imm = 0;
    std::int32_t target = 0;      // absolute successor for taken jumps
    std::uint64_t imm64 = 0;      // materialised 64-bit immediate
    const HelperFn* fn = nullptr; // resolved helper for calls
  };
  std::vector<Op> ops_;
};

class Jit {
 public:
  explicit Jit(const HelperRegistry* helpers) : helpers_(helpers) {}

  // Translates a *verified* program. Throws std::logic_error if the program
  // has not passed verification (mirrors the kernel: the JIT runs after the
  // verifier, never instead of it).
  std::shared_ptr<const CompiledProgram> compile(const Program& prog) const;

 private:
  const HelperRegistry* helpers_;
};

}  // namespace srv6bpf::ebpf
