// The "JIT" execution engine.
//
// The kernel translates verified eBPF to native machine code; the performance
// characteristics that matter for the paper's §3.2 experiment are (a) no
// per-step instruction decoding and (b) no per-access runtime bounds checks
// (the verifier proved them). This engine reproduces both properties by
// running the decode-once representation (ebpf/decode.h) without any runtime
// checks — while the interpreter runs the *same* decoded form with memory
// bounds checks, and the legacy baseline interpreter re-decodes every step.
// The throughput ratio between the engines is the repository's analogue of
// the paper's JIT-vs-interpreter factor (reported by bench_jit_speedup and
// bench_vm_micro).
//
// Only verified programs may be compiled: this engine trades runtime checks
// for the verifier's static proof, exactly like the kernel JIT.
#pragma once

#include <cstdint>
#include <memory>

#include "ebpf/decode.h"
#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

// A verified program's decode-once form plus the unchecked ("native") entry
// point. The decoded program is cached here beside the JIT output so the
// pre-decoded interpreter path shares it without re-translating.
class CompiledProgram {
 public:
  explicit CompiledProgram(std::shared_ptr<const DecodedProgram> decoded)
      : decoded_(std::move(decoded)) {}

  // Unchecked execution (verifier-trusting, kernel-JIT analogue).
  ExecResult run(ExecEnv& env, std::uint64_t ctx) const;

  const DecodedProgram& decoded() const noexcept { return *decoded_; }
  std::size_t op_count() const noexcept { return decoded_->size(); }

 private:
  std::shared_ptr<const DecodedProgram> decoded_;
};

class Jit {
 public:
  explicit Jit(const HelperRegistry* helpers) : helpers_(helpers) {}

  // Translates a *verified* program. Throws std::logic_error if the program
  // has not passed verification (mirrors the kernel: the JIT runs after the
  // verifier, never instead of it).
  std::shared_ptr<const CompiledProgram> compile(const Program& prog) const;

 private:
  const HelperRegistry* helpers_;
};

}  // namespace srv6bpf::ebpf
