// The JIT execution engines.
//
// The kernel translates verified eBPF to native machine code; the performance
// characteristics that matter for the paper's §3.2 experiment are (a) no
// per-step instruction decoding and (b) no per-access runtime bounds checks
// (the verifier proved them). Two engines live here:
//
//   * the *native* backend (ebpf/jit_x86.h): real x86-64 machine code in
//     W^X pages, the faithful bpf_jit_comp analogue — used whenever the host
//     supports it;
//   * the *unchecked* engine (CompiledProgram::run below): a portable C++
//     dispatch loop over the decode-once form with no runtime checks, the
//     fallback on non-x86-64 hosts or when executable pages are unavailable.
//
// The interpreter runs the *same* decoded form with memory bounds checks, and
// the legacy baseline interpreter re-decodes every step. The throughput ratio
// between the engines is the repository's analogue of the paper's
// JIT-vs-interpreter factor (reported by bench_jit_speedup and bench_vm_micro).
//
// Only verified programs may be compiled: these engines trade runtime checks
// for the verifier's static proof, exactly like the kernel JIT.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ebpf/decode.h"
#include "ebpf/exec.h"
#include "ebpf/helpers.h"
#include "ebpf/jit_x86.h"
#include "ebpf/program.h"

namespace srv6bpf::ebpf {

// A verified program's decode-once form, the unchecked entry point, and —
// when the host supports it — the emitted machine code. The decoded program
// is cached here beside the JIT output so the pre-decoded interpreter path
// shares it without re-translating.
class CompiledProgram {
 public:
  explicit CompiledProgram(std::shared_ptr<const DecodedProgram> decoded,
                           std::shared_ptr<const NativeCode> native = nullptr)
      : decoded_(std::move(decoded)), native_(std::move(native)) {}

  // Unchecked execution (verifier-trusting, portable fallback).
  ExecResult run(ExecEnv& env, std::uint64_t ctx) const;

  // Native machine-code execution; only callable when has_native().
  ExecResult run_native(ExecEnv& env, std::uint64_t ctx) const {
    return native_->run(env, ctx);
  }
  bool has_native() const noexcept { return native_ != nullptr; }
  // Raw pointer for hot dispatch paths: resolving the engine and the code
  // object once per run (or per burst) instead of re-chasing the shared_ptr
  // at every layer is worth ~30% on the shortest programs.
  const NativeCode* native() const noexcept { return native_.get(); }
  std::size_t native_code_size() const noexcept {
    return native_ ? native_->code_size() : 0;
  }

  const DecodedProgram& decoded() const noexcept { return *decoded_; }
  std::size_t op_count() const noexcept { return decoded_->size(); }

  // Disassembly of the decoded form plus the emitted-code size (or the
  // fallback notice); differential-test failures print this.
  std::string dump() const;

 private:
  std::shared_ptr<const DecodedProgram> decoded_;
  std::shared_ptr<const NativeCode> native_;
};

class Jit {
 public:
  explicit Jit(const HelperRegistry* helpers) : helpers_(helpers) {}

  // True when this build and host can emit and run native machine code
  // (x86-64 with W^X mmap support); false means compile() still succeeds but
  // produces only the portable unchecked engine.
  static bool available() noexcept { return native_jit_available(); }

  // Translates a *verified* program: decode once, then attempt native
  // emission. Throws std::logic_error if the program has not passed
  // verification (mirrors the kernel: the JIT runs after the verifier, never
  // instead of it).
  std::shared_ptr<const CompiledProgram> compile(const Program& prog) const;

 private:
  const HelperRegistry* helpers_;
};

}  // namespace srv6bpf::ebpf
