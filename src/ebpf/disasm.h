// Decoded-program disassembler.
//
// tests/ebpf_differential_test.cc generates random programs; when an engine
// disagrees, a failure message showing "program #317 differs" is useless
// without the program. These helpers render the decode-once form (the
// representation every engine actually executes) as one op per line with
// resolved jump targets, so a differential failure is immediately
// reproducible by eye. `DecodedProgram::dump()` / `CompiledProgram::dump()`
// are thin wrappers; the latter appends the native emitted-code size when a
// machine-code translation exists.
#pragma once

#include <cstdint>
#include <string>

#include "ebpf/decode.h"

namespace srv6bpf::ebpf {

// Enumerator name for a decoded op kind ("kAdd64R"), or "k?" when out of
// range. Generated from SRV6BPF_OPKIND_LIST, so it can never drift from the
// enum.
const char* opkind_name(std::uint16_t kind);

// One op as a line fragment (no trailing newline), e.g.
//   "12: kJeqI      dst=r3 imm64=0x2a -> 17"
std::string disasm(const DecodedInsn& op);

// Whole program, one indexed line per op, trailing newline after each.
std::string disasm(const DecodedProgram& prog);

}  // namespace srv6bpf::ebpf
