// Perf-event ring buffer: the asynchronous eBPF -> user space channel used by
// the paper's delay-measurement daemon (§4.1) and the OAMP responder (§4.3).
//
// Modelled after BPF_MAP_TYPE_PERF_EVENT_ARRAY + the perf ring buffer: a
// program calls bpf_perf_event_output(ctx, map, flags, data, size); user
// space polls the buffer and drains records. A bounded capacity with a
// drop counter reproduces the lossy nature of the real ring.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "ebpf/map.h"

namespace srv6bpf::ebpf {

struct PerfRecord {
  std::uint64_t time_ns = 0;
  // CPU context the producing program ran on (ExecEnv::cpu_id) — the
  // kernel's per-CPU perf ring identity, carried so multi-core monitoring
  // output stays attributable and reproducible.
  std::uint32_t cpu = 0;
  std::vector<std::uint8_t> data;
};

// Models the per-CPU structure of BPF_MAP_TYPE_PERF_EVENT_ARRAY: one bounded
// ring per CPU context (capacity applies per ring, as each CPU's mmap'd
// buffer is sized independently in the kernel). poll() merges the rings in a
// deterministic order — context id first, then the ring's own time order —
// so a user-space drain pass sees the same record sequence on every run
// regardless of how contexts interleaved their pushes.
class PerfEventBuffer {
 public:
  explicit PerfEventBuffer(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  // Returns false (and counts a drop) when `cpu`'s ring is full.
  bool push(std::uint64_t time_ns, std::span<const std::uint8_t> data,
            std::uint32_t cpu = 0);

  // Next record in merge order (lowest non-empty cpu ring, oldest first), or
  // nullopt when all rings are empty.
  std::optional<PerfRecord> poll();

  std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rings_) n += r.size();
    return n;
  }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t produced() const noexcept { return produced_; }

  // Discards every pending record (node-crash teardown); the drop/produce
  // counters survive — they are the observer's ledger, not kernel memory.
  void clear() noexcept {
    for (auto& r : rings_) r.clear();
  }

 private:
  std::size_t capacity_;  // per-CPU ring capacity
  std::vector<std::deque<PerfRecord>> rings_;  // indexed by cpu, lazily grown
  std::uint64_t dropped_ = 0;
  std::uint64_t produced_ = 0;
};

// The map type programs reference from bpf_perf_event_output. Lookup/update
// on it are invalid from BPF (as in the kernel, where the values are perf fds
// owned by user space).
class PerfEventArrayMap final : public Map {
 public:
  explicit PerfEventArrayMap(const MapDef& def, std::size_t capacity = 4096)
      : Map(def), buffer_(capacity) {}

  std::uint8_t* lookup(std::span<const std::uint8_t>) override { return nullptr; }
  int erase(std::span<const std::uint8_t>) override { return kErrInval; }
  std::size_t size() const override { return buffer_.pending(); }
  // A crash loses pending (undelivered) perf records with the rest of
  // kernel memory.
  void reset_contents() override { buffer_.clear(); }

  PerfEventBuffer& buffer() noexcept { return buffer_; }

 protected:
  int do_update(std::span<const std::uint8_t>, std::span<const std::uint8_t>,
                std::uint64_t) override {
    return kErrInval;
  }

 private:
  PerfEventBuffer buffer_;
};

// Convenience: create a perf event array in `reg` and return (id, buffer).
std::uint32_t create_perf_event_array(MapRegistry& reg, const std::string& name,
                                      std::size_t capacity = 4096);

}  // namespace srv6bpf::ebpf
