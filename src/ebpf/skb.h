// The program context ("struct __sk_buff" analogue) handed to LWT and
// seg6local eBPF programs.
//
// Simplification vs the kernel: data/data_end are 64-bit host pointers
// directly (the kernel exposes 32-bit fields and rewrites the access in the
// verifier's ctx-conversion pass; the programmer-visible semantics are the
// same). The verifier types a load of `data` as PTR_TO_PACKET and `data_end`
// as PTR_TO_PACKET_END, and requires the usual bounds-check pattern before
// any packet byte can be read.
#pragma once

#include <cstdint>

namespace srv6bpf::ebpf {

struct SkbCtx {
  std::uint64_t data = 0;          // first byte of the outermost IPv6 header
  std::uint64_t data_end = 0;      // one past the last byte
  std::uint32_t len = 0;           // packet length in bytes
  std::uint32_t protocol = 0;      // ETH_P_IPV6, big-endian like the kernel
  std::uint32_t mark = 0;          // scratch, read-write
  std::uint32_t ingress_ifindex = 0;
  std::uint64_t tstamp_ns = 0;     // RX software timestamp (used by End.DM)
};

// Field offsets (the ABI contract between programs and the verifier).
namespace skb_off {
inline constexpr int kData = 0;
inline constexpr int kDataEnd = 8;
inline constexpr int kLen = 16;
inline constexpr int kProtocol = 20;
inline constexpr int kMark = 24;
inline constexpr int kIngressIfindex = 28;
inline constexpr int kTstamp = 32;
}  // namespace skb_off

inline constexpr int kSkbCtxSize = 40;

static_assert(sizeof(SkbCtx) == kSkbCtxSize);
static_assert(offsetof(SkbCtx, data) == skb_off::kData);
static_assert(offsetof(SkbCtx, data_end) == skb_off::kDataEnd);
static_assert(offsetof(SkbCtx, len) == skb_off::kLen);
static_assert(offsetof(SkbCtx, protocol) == skb_off::kProtocol);
static_assert(offsetof(SkbCtx, mark) == skb_off::kMark);
static_assert(offsetof(SkbCtx, ingress_ifindex) == skb_off::kIngressIfindex);
static_assert(offsetof(SkbCtx, tstamp_ns) == skb_off::kTstamp);

// ETH_P_IPV6 in network byte order, as seen in skb->protocol.
inline constexpr std::uint32_t kEthPIpv6Be = 0xdd86;  // htons(0x86dd) on LE

}  // namespace srv6bpf::ebpf
