#include <cstring>

#include "ebpf/map_impl.h"

namespace srv6bpf::ebpf {

std::uint8_t* HashMap::lookup(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return nullptr;
  auto it = entries_.find(std::vector<std::uint8_t>(key.begin(), key.end()));
  return it == entries_.end() ? nullptr : it->second.get();
}

int HashMap::do_update(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> value,
                       std::uint64_t flags) {
  if (!key_ok(key) || !value_ok(value)) return kErrInval;
  if (flags > BPF_EXIST) return kErrInval;
  std::vector<std::uint8_t> k(key.begin(), key.end());
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    if (flags == BPF_NOEXIST) return kErrExist;
    std::memcpy(it->second.get(), value.data(), value.size());
    return kOk;
  }
  if (flags == BPF_EXIST) return kErrNoEnt;
  if (entries_.size() >= max_entries()) return kErrNoSpace;
  auto buf = std::make_unique<std::uint8_t[]>(value_size());
  std::memcpy(buf.get(), value.data(), value.size());
  entries_.emplace(std::move(k), std::move(buf));
  return kOk;
}

int HashMap::erase(std::span<const std::uint8_t> key) {
  if (!key_ok(key)) return kErrInval;
  return entries_.erase(std::vector<std::uint8_t>(key.begin(), key.end())) ? kOk
                                                                           : kErrNoEnt;
}

std::vector<std::vector<std::uint8_t>> HashMap::keys() const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace srv6bpf::ebpf
