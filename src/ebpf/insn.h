// The eBPF instruction set, as defined by the Linux kernel
// (Documentation/bpf/instruction-set.rst) and originally described in
// "Linux Socket Filtering aka Berkeley Packet Filter".
//
// An eBPF program is an array of fixed-size 64-bit instructions operating on
// eleven 64-bit registers (r0..r10, r10 = read-only frame pointer) and a
// 512-byte stack. We reproduce the encoding bit-for-bit so that programs in
// this repository could in principle be fed to a real kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srv6bpf::ebpf {

// ---- Instruction classes (low 3 bits of opcode) ----------------------------
inline constexpr std::uint8_t BPF_LD = 0x00;    // load (64-bit immediate)
inline constexpr std::uint8_t BPF_LDX = 0x01;   // load from memory
inline constexpr std::uint8_t BPF_ST = 0x02;    // store immediate to memory
inline constexpr std::uint8_t BPF_STX = 0x03;   // store register to memory
inline constexpr std::uint8_t BPF_ALU = 0x04;   // 32-bit arithmetic
inline constexpr std::uint8_t BPF_JMP = 0x05;   // 64-bit jumps
inline constexpr std::uint8_t BPF_JMP32 = 0x06; // 32-bit jumps
inline constexpr std::uint8_t BPF_ALU64 = 0x07; // 64-bit arithmetic

// ---- Size field for LD/LDX/ST/STX (bits 3-4) --------------------------------
inline constexpr std::uint8_t BPF_W = 0x00;   // 4 bytes
inline constexpr std::uint8_t BPF_H = 0x08;   // 2 bytes
inline constexpr std::uint8_t BPF_B = 0x10;   // 1 byte
inline constexpr std::uint8_t BPF_DW = 0x18;  // 8 bytes

// ---- Mode field for LD/LDX/ST/STX (bits 5-7) --------------------------------
inline constexpr std::uint8_t BPF_IMM = 0x00;   // 64-bit immediate (LD|DW only)
inline constexpr std::uint8_t BPF_MEM = 0x60;   // regular load/store

// ---- ALU / ALU64 operations (bits 4-7) --------------------------------------
inline constexpr std::uint8_t BPF_ADD = 0x00;
inline constexpr std::uint8_t BPF_SUB = 0x10;
inline constexpr std::uint8_t BPF_MUL = 0x20;
inline constexpr std::uint8_t BPF_DIV = 0x30;
inline constexpr std::uint8_t BPF_OR = 0x40;
inline constexpr std::uint8_t BPF_AND = 0x50;
inline constexpr std::uint8_t BPF_LSH = 0x60;
inline constexpr std::uint8_t BPF_RSH = 0x70;
inline constexpr std::uint8_t BPF_NEG = 0x80;
inline constexpr std::uint8_t BPF_MOD = 0x90;
inline constexpr std::uint8_t BPF_XOR = 0xa0;
inline constexpr std::uint8_t BPF_MOV = 0xb0;
inline constexpr std::uint8_t BPF_ARSH = 0xc0;
inline constexpr std::uint8_t BPF_END = 0xd0;  // byte-swap

// Source operand flag (bit 3): K = 32-bit immediate, X = register.
inline constexpr std::uint8_t BPF_K = 0x00;
inline constexpr std::uint8_t BPF_X = 0x08;

// BPF_END directions (stored in the source bit).
inline constexpr std::uint8_t BPF_TO_LE = 0x00;
inline constexpr std::uint8_t BPF_TO_BE = 0x08;

// ---- JMP operations (bits 4-7) ----------------------------------------------
inline constexpr std::uint8_t BPF_JA = 0x00;
inline constexpr std::uint8_t BPF_JEQ = 0x10;
inline constexpr std::uint8_t BPF_JGT = 0x20;
inline constexpr std::uint8_t BPF_JGE = 0x30;
inline constexpr std::uint8_t BPF_JSET = 0x40;
inline constexpr std::uint8_t BPF_JNE = 0x50;
inline constexpr std::uint8_t BPF_JSGT = 0x60;
inline constexpr std::uint8_t BPF_JSGE = 0x70;
inline constexpr std::uint8_t BPF_CALL = 0x80;
inline constexpr std::uint8_t BPF_EXIT = 0x90;
inline constexpr std::uint8_t BPF_JLT = 0xa0;
inline constexpr std::uint8_t BPF_JLE = 0xb0;
inline constexpr std::uint8_t BPF_JSLT = 0xc0;
inline constexpr std::uint8_t BPF_JSLE = 0xd0;

// ---- Registers ---------------------------------------------------------------
inline constexpr int kNumRegs = 11;
inline constexpr int R0 = 0;   // return value / scratch
inline constexpr int R1 = 1;   // arg1 (context on entry)
inline constexpr int R2 = 2;   // arg2
inline constexpr int R3 = 3;   // arg3
inline constexpr int R4 = 4;   // arg4
inline constexpr int R5 = 5;   // arg5
inline constexpr int R6 = 6;   // callee-saved
inline constexpr int R7 = 7;   // callee-saved
inline constexpr int R8 = 8;   // callee-saved
inline constexpr int R9 = 9;   // callee-saved
inline constexpr int R10 = 10; // frame pointer (read-only)

inline constexpr int kStackSize = 512;      // bytes, like the kernel
inline constexpr int kMaxInsns = 4096;      // classic kernel program limit

// Pseudo source-register value marking a LD_IMM64 as a map reference: the
// immediate carries a map id instead of a literal (mirrors BPF_PSEUDO_MAP_FD).
inline constexpr std::uint8_t BPF_PSEUDO_MAP_FD = 1;

// One 64-bit eBPF instruction. LD_IMM64 occupies two slots; the second slot
// has opcode 0 and carries the upper 32 immediate bits.
struct Insn {
  std::uint8_t opcode = 0;
  std::uint8_t dst : 4 = 0;  // 4 bits, as in the kernel wire format
  std::uint8_t src : 4 = 0;
  std::int16_t off = 0;
  std::int32_t imm = 0;

  constexpr std::uint8_t insn_class() const noexcept { return opcode & 0x07; }
  constexpr std::uint8_t alu_op() const noexcept { return opcode & 0xf0; }
  constexpr std::uint8_t size_field() const noexcept { return opcode & 0x18; }
  constexpr std::uint8_t mode_field() const noexcept { return opcode & 0xe0; }
  constexpr bool uses_reg_src() const noexcept { return opcode & BPF_X; }

  constexpr bool is_ld_imm64() const noexcept {
    return opcode == (BPF_LD | BPF_DW | BPF_IMM);
  }
  constexpr bool is_call() const noexcept {
    return opcode == (BPF_JMP | BPF_CALL);
  }
  constexpr bool is_exit() const noexcept {
    return opcode == (BPF_JMP | BPF_EXIT);
  }
  constexpr bool is_jump() const noexcept {
    const auto c = insn_class();
    return (c == BPF_JMP || c == BPF_JMP32) && !is_call() && !is_exit();
  }
  constexpr bool is_unconditional_jump() const noexcept {
    return opcode == (BPF_JMP | BPF_JA);
  }

  friend constexpr bool operator==(const Insn&, const Insn&) = default;
};

static_assert(sizeof(Insn) == 8, "eBPF instructions are 64 bits");

// Sign-extend a 32-bit wire immediate to the 64-bit value eBPF semantics
// prescribe for ALU64/JMP operands (shared by the decoder and both engines).
constexpr std::uint64_t sext_imm64(std::int32_t imm) noexcept {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(imm));
}

// Byte width of a memory access instruction.
constexpr int access_size(std::uint8_t size_field) noexcept {
  switch (size_field) {
    case BPF_W: return 4;
    case BPF_H: return 2;
    case BPF_B: return 1;
    case BPF_DW: return 8;
  }
  return 0;
}

// Program return codes shared by LWT and seg6local BPF programs
// (include/uapi/linux/bpf.h enum bpf_ret_code).
inline constexpr std::uint64_t BPF_OK = 0;
inline constexpr std::uint64_t BPF_DROP = 2;
inline constexpr std::uint64_t BPF_REDIRECT = 7;

// Human-readable disassembly of one instruction (best effort, for debugging
// and verifier error messages).
std::string disasm(const Insn& insn);

// Disassemble a whole program, one instruction per line with indices.
std::string disasm(const std::vector<Insn>& prog);

}  // namespace srv6bpf::ebpf
