// eBPF helper functions: the kernel-side proxies callable from programs.
//
// Each helper has a numeric id (matching include/uapi/linux/bpf.h for the
// real ones), a type signature used by the verifier to validate call sites,
// and an implementation receiving the 5 argument registers plus the ExecEnv.
//
// The four SRv6 helpers the paper contributes (ids 73-76, merged in Linux
// 4.18) are implemented in src/seg6/helpers.cc because they need the packet
// and the node's routing state; this module hosts the generic ones plus the
// registry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "ebpf/exec.h"

namespace srv6bpf::ebpf {

namespace helper {
// Generic kernel helpers.
inline constexpr std::int32_t MAP_LOOKUP_ELEM = 1;
inline constexpr std::int32_t MAP_UPDATE_ELEM = 2;
inline constexpr std::int32_t MAP_DELETE_ELEM = 3;
inline constexpr std::int32_t KTIME_GET_NS = 5;
inline constexpr std::int32_t TRACE_PRINTK = 6;
inline constexpr std::int32_t GET_PRANDOM_U32 = 7;
inline constexpr std::int32_t GET_SMP_PROCESSOR_ID = 8;
inline constexpr std::int32_t PERF_EVENT_OUTPUT = 25;
inline constexpr std::int32_t SKB_LOAD_BYTES = 26;
// The paper's LWT/SRv6 helpers (Linux 4.18 ids).
inline constexpr std::int32_t LWT_PUSH_ENCAP = 73;
inline constexpr std::int32_t LWT_SEG6_STORE_BYTES = 74;
inline constexpr std::int32_t LWT_SEG6_ADJUST_SRH = 75;
inline constexpr std::int32_t LWT_SEG6_ACTION = 76;
// Custom helper of §4.3 ("new helpers can easily be added to the kernel"):
// returns the ECMP nexthops the FIB holds for an address.
inline constexpr std::int32_t FIB_ECMP_NEXTHOPS = 200;
}  // namespace helper

// Argument classes, a subset of the kernel's bpf_arg_type. The verifier
// checks the register state at each call site against these.
enum class ArgKind {
  kNone,           // unused slot
  kAnything,       // any initialised scalar
  kPtrToCtx,       // must be the context pointer
  kConstMapPtr,    // must come from ld_map
  kPtrToMapKey,    // readable mem of exactly map->key_size bytes
  kPtrToMapValue,  // readable mem of exactly map->value_size bytes
  kPtrToMem,       // readable mem, size given by the *next* kConstSize arg
  kPtrToUninitMem, // writable mem, size given by the next kConstSize arg
  kConstSize,      // scalar with a verifier-known bound > 0
  kConstSizeOrZero,
};

enum class RetKind {
  kInteger,             // scalar
  kPtrToMapValueOrNull, // pointer into the map's value or NULL
};

// Program-type gating bits (kernel: each prog type has its own helper list).
inline constexpr std::uint8_t kProgLwtIn = 1 << 0;
inline constexpr std::uint8_t kProgLwtOut = 1 << 1;
inline constexpr std::uint8_t kProgLwtXmit = 1 << 2;
inline constexpr std::uint8_t kProgSeg6Local = 1 << 3;
inline constexpr std::uint8_t kProgSocketFilter = 1 << 4;
inline constexpr std::uint8_t kProgAny = 0xff;

struct HelperProto {
  std::string name;
  RetKind ret = RetKind::kInteger;
  std::array<ArgKind, 5> args{ArgKind::kNone, ArgKind::kNone, ArgKind::kNone,
                              ArgKind::kNone, ArgKind::kNone};
  // True if the helper may invalidate previously derived packet pointers
  // (anything that can reallocate/resize the packet, e.g. adjust_srh,
  // push_encap). The verifier kills packet pointers across such calls.
  bool invalidates_packet = false;
  // Which program types may call this helper (kProg* bits).
  std::uint8_t allowed_types = kProgAny;
};

// Raw function pointer, not std::function: helper dispatch is on the
// per-packet hot path and every registered helper is a capture-less free
// function. The decode step resolves call sites straight to these pointers.
using HelperFn = std::uint64_t (*)(ExecEnv&, std::uint64_t, std::uint64_t,
                                   std::uint64_t, std::uint64_t,
                                   std::uint64_t);

class HelperRegistry {
 public:
  void register_helper(std::int32_t id, HelperProto proto, HelperFn fn);
  bool contains(std::int32_t id) const noexcept {
    return helpers_.count(id) != 0;
  }
  const HelperProto* proto(std::int32_t id) const noexcept;
  const HelperFn* fn(std::int32_t id) const noexcept;

 private:
  struct Entry {
    HelperProto proto;
    HelperFn fn;
  };
  std::unordered_map<std::int32_t, Entry> helpers_;
};

// Registers map_lookup/update/delete, ktime_get_ns, get_prandom_u32,
// get_smp_processor_id, perf_event_output, skb_load_bytes and trace_printk.
void register_generic_helpers(HelperRegistry& reg);

// Human-readable name for a helper id ("helper#N" for unknown ids); used by
// the disassembler so dump() output names call targets.
std::string helper_name(std::int32_t id);

}  // namespace srv6bpf::ebpf
