#include "ebpf/map.h"

#include <stdexcept>

#include "ebpf/map_impl.h"
#include "ebpf/perf_event.h"

namespace srv6bpf::ebpf {

std::unique_ptr<Map> make_map(const MapDef& def) {
  if (def.key_size == 0 || def.value_size == 0 || def.max_entries == 0)
    throw std::invalid_argument("map '" + def.name +
                                "': key/value/max_entries must be non-zero");
  switch (def.type) {
    case MapType::kArray:
      if (def.key_size != 4)
        throw std::invalid_argument("array map key_size must be 4");
      return std::make_unique<ArrayMap>(def);
    case MapType::kPerCpuArray:
      if (def.key_size != 4)
        throw std::invalid_argument("array map key_size must be 4");
      return std::make_unique<PerCpuArrayMap>(def);
    case MapType::kHash:
      return std::make_unique<HashMap>(def);
    case MapType::kPerCpuHash:
      return std::make_unique<PerCpuHashMap>(def);
    case MapType::kLpmTrie:
      if (def.key_size <= 4)
        throw std::invalid_argument(
            "lpm trie key_size must exceed the 4-byte prefixlen field");
      return std::make_unique<LpmTrieMap>(def);
    case MapType::kPerfEventArray:
      return std::make_unique<PerfEventArrayMap>(def);
  }
  throw std::invalid_argument("unknown map type");
}

std::uint32_t MapRegistry::create(const MapDef& def) {
  maps_.push_back(make_map(def));
  return static_cast<std::uint32_t>(maps_.size());  // ids start at 1
}

std::uint32_t MapRegistry::create_with(std::unique_ptr<Map> map) {
  maps_.push_back(std::move(map));
  return static_cast<std::uint32_t>(maps_.size());
}

Map* MapRegistry::get(std::uint32_t id) noexcept {
  if (id == 0 || id > maps_.size()) return nullptr;
  return maps_[id - 1].get();
}

const Map* MapRegistry::get(std::uint32_t id) const noexcept {
  if (id == 0 || id > maps_.size()) return nullptr;
  return maps_[id - 1].get();
}

}  // namespace srv6bpf::ebpf
