#include "seg6/seg6local.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "net/burst.h"
#include "net/srh.h"
#include "net/transport.h"
#include "util/byteorder.h"

namespace srv6bpf::seg6 {

namespace {

// Shared End.BPF tail: interprets the program's outcome for one packet.
// "If the SRH has been altered by the BPF program, a quick verification is
// performed to ensure that it is still valid" (§3.1).
PipelineResult end_bpf_epilogue(net::Packet& pkt, const ebpf::ExecResult& exec,
                                bool srh_dirty) {
  if (!exec.ok()) return PipelineResult::drop();
  if (srh_dirty) {
    auto srh = pkt.srh();
    if (!srh || !srh->tlvs_well_formed()) return PipelineResult::drop();
  }
  switch (exec.ret) {
    case ebpf::BPF_OK:
      // Regular FIB lookup on the (possibly rewritten) destination.
      return PipelineResult::cont(0);
    case ebpf::BPF_REDIRECT:
      // The destination set by bpf_lwt_seg6_action must not be overwritten
      // by the default lookup (§3.1).
      if (!pkt.dst().valid) return PipelineResult::drop();
      return PipelineResult::forward();
    case ebpf::BPF_DROP:
    default:
      return PipelineResult::drop();
  }
}

}  // namespace

bool srh_advance(net::Packet& pkt) {
  auto srh = pkt.srh();
  if (!srh) return false;
  if (srh->segments_left() == 0) return false;
  if (!srh->tlvs_well_formed()) return false;
  srh->set_segments_left(static_cast<std::uint8_t>(srh->segments_left() - 1));
  const net::Ipv6Addr next = srh->segment(srh->segments_left());
  pkt.ipv6().set_dst(next);
  return true;
}

bool seg6_decap(net::Packet& pkt) {
  if (pkt.size() < net::kIpv6HeaderSize) return false;
  net::Ipv6View outer(pkt.data());
  std::size_t off = net::kIpv6HeaderSize;
  std::uint8_t proto = outer.next_header();
  if (proto == net::kProtoRouting) {
    if (pkt.size() < off + net::kSrhFixedSize) return false;
    net::SrhView srh(pkt.data() + off, pkt.size() - off);
    if (!srh.valid()) return false;
    proto = srh.next_header();
    off += srh.total_len();
  }
  if (proto != net::kProtoIpv6) return false;  // nothing to decapsulate
  if (pkt.size() < off + net::kIpv6HeaderSize) return false;
  if ((pkt.data()[off] >> 4) != 6) return false;
  pkt.pull_front(off);
  return true;
}

bool seg6_do_encap(net::Packet& pkt, std::span<const net::Ipv6Addr> segments,
                   const net::Ipv6Addr& src) {
  if (segments.empty() || pkt.size() < net::kIpv6HeaderSize) return false;
  const std::vector<std::uint8_t> srh =
      net::build_srh(net::kProtoIpv6, segments);

  net::Ipv6Header outer;
  outer.src = src;
  outer.dst = segments.front();
  outer.next_header = net::kProtoRouting;
  outer.hop_limit = 64;
  outer.payload_length = static_cast<std::uint16_t>(srh.size() + pkt.size());

  std::uint8_t* front = pkt.push_front(net::kIpv6HeaderSize + srh.size());
  outer.write(front);
  std::memcpy(front + net::kIpv6HeaderSize, srh.data(), srh.size());
  return true;
}

bool seg6_do_inline(net::Packet& pkt,
                    std::span<const net::Ipv6Addr> segments) {
  if (segments.empty() || pkt.size() < net::kIpv6HeaderSize) return false;
  net::Ipv6View ip(pkt.data());
  const net::Ipv6Addr original_dst = ip.dst();
  const std::uint8_t inner_proto = ip.next_header();

  // Travel order: policy segments, then the original destination last.
  std::vector<net::Ipv6Addr> segs(segments.begin(), segments.end());
  segs.push_back(original_dst);
  const std::vector<std::uint8_t> srh = net::build_srh(inner_proto, segs);

  // Insert between the IPv6 header and its payload.
  if (!pkt.expand_at(net::kIpv6HeaderSize,
                     static_cast<std::ptrdiff_t>(srh.size())))
    return false;
  std::memcpy(pkt.data() + net::kIpv6HeaderSize, srh.data(), srh.size());

  net::Ipv6View ip2(pkt.data());
  ip2.set_next_header(net::kProtoRouting);
  ip2.set_payload_length(
      static_cast<std::uint16_t>(ip2.payload_length() + srh.size()));
  ip2.set_dst(segs.front());
  return true;
}

bool seg6_end_x(Netns& ns, net::Packet& pkt, const Nexthop& nh,
                ProcessTrace* trace) {
  int oif = nh.oif;
  if (oif < 0) {
    // Resolve the egress interface through the FIB.
    const Fib* fib = ns.find_table(0);
    if (fib == nullptr) return false;
    const Route* route = fib->lookup(nh.via, ns.fib_cache_slot());
    if (route == nullptr || route->nexthops.empty()) return false;
    oif = Fib::select_nexthop(*route, flow_hash(pkt)).oif;
    if (trace != nullptr) ++trace->fib_lookups;
  }
  pkt.dst().nexthop = nh.via;
  pkt.dst().oif = oif;
  pkt.dst().valid = true;
  return true;
}

PipelineResult seg6local_process(Netns& ns, net::Packet& pkt,
                                 const Seg6LocalEntry& entry,
                                 ProcessTrace* trace) {
  auto count_op = [&] {
    if (trace != nullptr) ++trace->seg6local_ops;
  };

  switch (entry.action) {
    case Seg6Action::kEnd: {
      count_op();
      if (!srh_advance(pkt)) return PipelineResult::drop();
      return PipelineResult::cont(0);
    }
    case Seg6Action::kEndX: {
      count_op();
      if (!srh_advance(pkt)) return PipelineResult::drop();
      if (!seg6_end_x(ns, pkt, entry.nh, trace)) return PipelineResult::drop();
      return PipelineResult::forward();
    }
    case Seg6Action::kEndT: {
      count_op();
      if (!srh_advance(pkt)) return PipelineResult::drop();
      return PipelineResult::cont(entry.table);
    }
    case Seg6Action::kEndDT6: {
      count_op();
      if (!seg6_decap(pkt)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->decaps;
      return PipelineResult::cont(entry.table);
    }
    case Seg6Action::kEndB6: {
      count_op();
      if (!seg6_do_inline(pkt, entry.segments)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }
    case Seg6Action::kEndB6Encaps: {
      count_op();
      if (!srh_advance(pkt)) return PipelineResult::drop();
      const net::Ipv6Addr src = ns.sr_tunsrc.is_unspecified()
                                    ? pkt.ipv6().src()
                                    : ns.sr_tunsrc;
      if (!seg6_do_encap(pkt, entry.segments, src))
        return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }
    case Seg6Action::kEndBPF: {
      // The paper's action (§3): behave as an endpoint — validate + advance —
      // then run the eBPF program and interpret its return code.
      if (entry.prog == nullptr) return PipelineResult::drop();
      count_op();  // the endpoint part (validate + advance) is End-equivalent
      if (!srh_advance(pkt)) return PipelineResult::drop();

      auto run = ns.run_prog(*entry.prog, pkt, trace);
      return end_bpf_epilogue(pkt, run.exec, run.ctx.srh_dirty);
    }
  }
  return PipelineResult::drop();
}

void seg6local_process_burst(Netns& ns, std::span<net::Packet* const> pkts,
                             const Seg6LocalEntry& entry,
                             ProcessTrace* const* traces,
                             PipelineResult* results) {
  const std::size_t n = pkts.size();
  // Only End.BPF has per-invocation setup worth amortising; the static
  // behaviours are plain header surgery.
  if (entry.action != Seg6Action::kEndBPF || entry.prog == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i)
      results[i] = seg6local_process(ns, *pkts[i], entry, traces[i]);
    return;
  }

  // Phase 1 — the endpoint part (validate + advance), per packet.
  // Phase 2 — one vector run of the program over the survivors.
  // Phase 3 — per-packet epilogue (SRH re-validation, return code).
  // Each phase only touches its own packet, so the phase split observes the
  // same per-packet semantics as the sequential loop.
  std::size_t base = 0;
  while (base < n) {
    const std::size_t chunk = std::min(n - base, net::kMaxBurstPackets);
    std::array<net::Packet*, net::kMaxBurstPackets> ap;
    std::array<ProcessTrace*, net::kMaxBurstPackets> at;
    std::array<std::size_t, net::kMaxBurstPackets> ai;
    std::size_t m = 0;
    for (std::size_t i = base; i < base + chunk; ++i) {
      if (traces[i] != nullptr) ++traces[i]->seg6local_ops;
      if (!srh_advance(*pkts[i])) {
        results[i] = PipelineResult::drop();
      } else {
        ap[m] = pkts[i];
        at[m] = traces[i];
        ai[m] = i;
        ++m;
      }
    }
    if (m > 0)
      run_prog_over_burst(
          ns, *entry.prog, {ap.data(), m}, at.data(),
          [&](std::size_t k, const ebpf::ExecResult& exec,
              const Seg6BurstRunner::Verdict& v) {
            results[ai[k]] = end_bpf_epilogue(*ap[k], exec, v.srh_dirty);
          });
    base += chunk;
  }
}

}  // namespace srv6bpf::seg6
