#include "seg6/ctx.h"

#include <algorithm>
#include <array>

#include "net/burst.h"
#include "seg6/helpers.h"
#include "seg6/seg6local.h"

namespace srv6bpf::seg6 {

void Seg6ProgCtx::refresh_packet_view() {
  skb.data = reinterpret_cast<std::uint64_t>(pkt->data());
  skb.data_end = skb.data + pkt->size();
  skb.len = static_cast<std::uint32_t>(pkt->size());
  if (env != nullptr && env->regions.size() >= 2) {
    env->regions[1] = ebpf::MemRegion{
        reinterpret_cast<std::uintptr_t>(pkt->data()), pkt->size(), false};
  }
}

Netns::Netns(std::string name)
    : name_(std::move(name)), seg6local_(std::make_unique<Seg6LocalTable>()) {
  register_seg6_helpers(bpf_.helpers());
}

Netns::~Netns() = default;

Fib& Netns::table(int id) { return tables_[id]; }

const Fib* Netns::find_table(int id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : &it->second;
}

std::uint32_t Netns::prandom() {
  // splitmix64 step, truncated.
  prandom_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = prandom_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint32_t>(z >> 32);
}

void Netns::seed_prandom(std::uint64_t seed) { prandom_state_ = seed; }

Netns::BpfRunResult Netns::run_prog(const ebpf::LoadedProgram& prog,
                                    net::Packet& pkt, ProcessTrace* trace) {
  Seg6BurstRunner runner(*this, prog);
  runner.prepare(pkt, trace);

  BpfRunResult out;
  out.exec = bpf_.run(prog, runner.env(), runner.ctx_addr());
  runner.harvest();
  runner.account(trace, out.exec);
  out.ctx = runner.ctx();  // callers read the per-packet flags
  return out;
}

Seg6BurstRunner::Seg6BurstRunner(Netns& ns, const ebpf::LoadedProgram& prog)
    : ns_(ns) {
  ctx_.netns = &ns;
  ctx_.prog_type = prog.type();
  ctx_.skb.protocol = ebpf::kEthPIpv6Be;
  env_.user = &ctx_;
  env_.now_ns = [&ns] { return ns.now(); };
  env_.prandom = [&ns] { return ns.prandom(); };
  env_.cpu_id = ns.current_cpu;
  // Region 0: the ctx struct (read/write; the verifier confines writes to
  // `mark`). Region 1: packet bytes, retargeted per packet by prepare().
  env_.regions.push_back(ebpf::MemRegion{
      reinterpret_cast<std::uintptr_t>(&ctx_.skb), sizeof ctx_.skb, true});
  env_.regions.push_back(ebpf::MemRegion{0, 0, false});
  ctx_.env = &env_;
}

void Seg6BurstRunner::prepare(net::Packet& pkt, ProcessTrace* trace) {
  ctx_.pkt = &pkt;
  ctx_.trace = trace;
  ctx_.now_ns = ns_.now();
  ctx_.srh_dirty = false;
  ctx_.packet_replaced = false;
  ctx_.dst_set = false;
  ctx_.skb.mark = pkt.mark;
  ctx_.skb.ingress_ifindex = pkt.ingress_ifindex;
  ctx_.skb.tstamp_ns = pkt.rx_tstamp_ns;
  ctx_.refresh_packet_view();
}

Seg6BurstRunner::Verdict Seg6BurstRunner::harvest() {
  ctx_.pkt->mark = ctx_.skb.mark;  // writable ctx field propagates back
  return Verdict{ctx_.srh_dirty, ctx_.packet_replaced, ctx_.dst_set};
}

void Seg6BurstRunner::account(ProcessTrace* trace,
                              const ebpf::ExecResult& exec) const {
  if (trace == nullptr) return;
  ++trace->bpf_runs;
  trace->helper_calls += exec.helper_calls;
  // kNative degrading to kUnchecked stays in the JIT bucket: both are the
  // paper's bpf_jit_enable=1 regime.
  if (ebpf::engine_is_jit(ns_.bpf().engine()))
    trace->bpf_insns_jit += exec.insns_executed;
  else
    trace->bpf_insns_interp += exec.insns_executed;
}

void run_prog_over_burst(Netns& ns, const ebpf::LoadedProgram& prog,
                         std::span<net::Packet* const> pkts,
                         ProcessTrace* const* traces,
                         BurstPerPacketFn per_packet) {
  const std::size_t n = pkts.size();
  std::size_t base = 0;
  while (base < n) {
    const std::size_t m = std::min(n - base, net::kMaxBurstPackets);
    Seg6BurstRunner runner(ns, prog);
    std::array<ebpf::BurstInvocation, net::kMaxBurstPackets> inv;
    std::array<Seg6BurstRunner::Verdict, net::kMaxBurstPackets> flags;
    for (std::size_t k = 0; k < m; ++k) inv[k].ctx = runner.ctx_addr();
    prog.run_burst(ns.bpf(), runner.env(), {inv.data(), m},
                   [&](std::size_t k) {
                     if (k > 0) flags[k - 1] = runner.harvest();
                     runner.prepare(*pkts[base + k], traces[base + k]);
                   });
    flags[m - 1] = runner.harvest();
    for (std::size_t k = 0; k < m; ++k) {
      runner.account(traces[base + k], inv[k].result);
      per_packet(base + k, inv[k].result, flags[k]);
    }
    base += m;
  }
}

}  // namespace srv6bpf::seg6
