#include "seg6/ctx.h"

#include "seg6/helpers.h"
#include "seg6/seg6local.h"

namespace srv6bpf::seg6 {

void Seg6ProgCtx::refresh_packet_view() {
  skb.data = reinterpret_cast<std::uint64_t>(pkt->data());
  skb.data_end = skb.data + pkt->size();
  skb.len = static_cast<std::uint32_t>(pkt->size());
  if (env != nullptr && env->regions.size() >= 2) {
    env->regions[1] = ebpf::MemRegion{
        reinterpret_cast<std::uintptr_t>(pkt->data()), pkt->size(), false};
  }
}

Netns::Netns(std::string name)
    : name_(std::move(name)), seg6local_(std::make_unique<Seg6LocalTable>()) {
  register_seg6_helpers(bpf_.helpers());
}

Netns::~Netns() = default;

Fib& Netns::table(int id) { return tables_[id]; }

const Fib* Netns::find_table(int id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : &it->second;
}

std::uint32_t Netns::prandom() {
  // splitmix64 step, truncated.
  prandom_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = prandom_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint32_t>(z >> 32);
}

void Netns::seed_prandom(std::uint64_t seed) { prandom_state_ = seed; }

Netns::BpfRunResult Netns::run_prog(const ebpf::LoadedProgram& prog,
                                    net::Packet& pkt, ProcessTrace* trace) {
  BpfRunResult out;
  Seg6ProgCtx& ctx = out.ctx;
  ctx.netns = this;
  ctx.pkt = &pkt;
  ctx.prog_type = prog.type();
  ctx.trace = trace;
  ctx.now_ns = now();

  ctx.skb.protocol = ebpf::kEthPIpv6Be;
  ctx.skb.mark = pkt.mark;
  ctx.skb.ingress_ifindex = pkt.ingress_ifindex;
  ctx.skb.tstamp_ns = pkt.rx_tstamp_ns;

  ebpf::ExecEnv env;
  env.user = &ctx;
  env.now_ns = [this] { return now(); };
  env.prandom = [this] { return prandom(); };
  // Region 0: the ctx struct (read/write; the verifier confines writes to
  // `mark`). Region 1: packet bytes, read-only from program code.
  env.regions.push_back(ebpf::MemRegion{
      reinterpret_cast<std::uintptr_t>(&ctx.skb), sizeof ctx.skb, true});
  env.regions.push_back(ebpf::MemRegion{0, 0, false});
  ctx.env = &env;
  ctx.refresh_packet_view();

  out.exec = bpf_.run(prog, env, reinterpret_cast<std::uint64_t>(&ctx.skb));

  pkt.mark = ctx.skb.mark;  // writable ctx field propagates back
  if (trace != nullptr) {
    ++trace->bpf_runs;
    trace->helper_calls += out.exec.helper_calls;
    if (bpf_.jit_enabled())
      trace->bpf_insns_jit += out.exec.insns_executed;
    else
      trace->bpf_insns_interp += out.exec.insns_executed;
  }
  return out;
}

}  // namespace srv6bpf::seg6
