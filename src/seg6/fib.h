// IPv6 forwarding information base with ECMP, per routing table.
//
// Longest-prefix-match is backed by the same binary-trie implementation the
// eBPF LPM map uses (ebpf/map_impl.h), storing route indices as values.
// Nexthop selection for multipath routes uses a 5-tuple flow hash, like the
// kernel's flowlabel/5-tuple ECMP (§4.3's End.OAMP queries these nexthops).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "ebpf/vm.h"
#include "net/ip6.h"
#include "net/packet.h"

namespace srv6bpf::seg6 {

struct Nexthop {
  net::Ipv6Addr via;  // gateway; unspecified (::) means on-link
  int oif = -1;       // egress interface index
  int weight = 1;

  friend bool operator==(const Nexthop&, const Nexthop&) = default;
};

// Lightweight tunnel state attached to a route (seg6 / seg6 inline / BPF).
struct LwtState {
  enum class Kind { kNone, kSeg6Encap, kSeg6Inline, kBpf };
  Kind kind = Kind::kNone;

  // kSeg6Encap / kSeg6Inline: segment list in travel order.
  std::vector<net::Ipv6Addr> segments;

  // kBpf: programs per LWT hook (any may be null).
  ebpf::ProgHandle prog_in;
  ebpf::ProgHandle prog_out;
  ebpf::ProgHandle prog_xmit;
};

struct Route {
  net::Prefix prefix;
  std::vector<Nexthop> nexthops;       // >1 entries = ECMP
  std::shared_ptr<LwtState> lwt;       // optional tunnel state
};

class Fib {
 public:
  Fib();

  void add_route(Route route);
  // Convenience: single-nexthop route.
  void add_route(const net::Prefix& prefix, const Nexthop& nh) {
    add_route(Route{prefix, {nh}, nullptr});
  }
  void clear();

  // Longest-prefix match; nullptr when no route covers `dst`. Consults a
  // one-entry dst cache first (a burst of packets to one destination walks
  // the trie once); the cache is invalidated by any table mutation. A cheap
  // stand-in until the stride-based LPM fast path lands (ROADMAP).
  const Route* lookup(const net::Ipv6Addr& dst) const;

  // Observability for benches/tests: how often lookup() was answered by the
  // one-entry cache.
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }

  // ECMP selection: picks the nexthop for `flow_hash` using weighted
  // hash-threshold mapping. Requires a non-empty nexthop list.
  static const Nexthop& select_nexthop(const Route& route,
                                       std::uint32_t flow_hash);

  std::size_t route_count() const noexcept { return routes_.size(); }
  const std::vector<Route>& routes() const noexcept { return routes_; }

 private:
  std::vector<Route> routes_;
  // prefixlen(u32) + 16 address bytes -> u32 route index.
  std::unique_ptr<ebpf::Map> trie_;
  // One-entry route cache (negative results included). Mutable: lookup() is
  // logically const. Invalidated by add_route()/clear(), which also keeps
  // the cached Route* safe across routes_ reallocation.
  mutable net::Ipv6Addr cached_dst_;
  mutable const Route* cached_route_ = nullptr;
  mutable bool cache_valid_ = false;
  mutable std::uint64_t cache_hits_ = 0;
};

// 5-tuple flow hash over the *innermost* IPv6+transport headers of a packet
// (so ECMP keeps flows on one path even when encapsulated upstream).
std::uint32_t flow_hash(const net::Packet& pkt);

}  // namespace srv6bpf::seg6
