// IPv6 forwarding information base with ECMP, per routing table.
//
// Longest-prefix-match is backed by the shared multibit-stride trie engine
// (util/lpm_trie.h) — the same engine behind BPF_MAP_TYPE_LPM_TRIE — storing
// route indices as values: a /48 lookup is 6 byte-indexed node hops instead
// of 48 bit tests (bench/lpm_sweep.cc tracks the ratio). Nexthop selection
// for multipath routes uses a 5-tuple flow hash, like the kernel's
// flowlabel/5-tuple ECMP (§4.3's End.OAMP queries these nexthops).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "ebpf/vm.h"
#include "net/ip6.h"
#include "net/packet.h"
#include "util/lpm_trie.h"

namespace srv6bpf::seg6 {

struct Nexthop {
  net::Ipv6Addr via;  // gateway; unspecified (::) means on-link
  int oif = -1;       // egress interface index
  int weight = 1;

  friend bool operator==(const Nexthop&, const Nexthop&) = default;
};

// Lightweight tunnel state attached to a route (seg6 / seg6 inline / BPF).
struct LwtState {
  enum class Kind { kNone, kSeg6Encap, kSeg6Inline, kBpf };
  Kind kind = Kind::kNone;

  // kSeg6Encap / kSeg6Inline: segment list in travel order.
  std::vector<net::Ipv6Addr> segments;

  // kBpf: programs per LWT hook (any may be null).
  ebpf::ProgHandle prog_in;
  ebpf::ProgHandle prog_out;
  ebpf::ProgHandle prog_xmit;
};

// Precomputed SRv6 fast-reroute backup attached to a route (TI-LFA shape):
// when the primary nexthop's egress link is down at forwarding time, the
// point of local repair encapsulates the packet with `segments` (travel
// order — typically a repair End/End.X SID on a neighbor that avoids the
// failed link, then an End.DT6 SID past it that decaps toward the original
// destination) and forwards it out the precomputed backup adjacency `nh`.
// Because everything is computed at route-install time, activation is pure
// datapath — no control-plane round trip, which is the whole point: the
// blackhole lasts one forwarding decision instead of an IGP convergence
// (bench/slo_soak.cc measures both).
struct FrrBackup {
  std::vector<net::Ipv6Addr> segments;  // repair segment list, travel order
  Nexthop nh;  // backup End.X adjacency; oif < 0 = re-run the FIB lookup on
               // the new outer destination instead of forwarding directly
};

struct Route {
  net::Prefix prefix;
  std::vector<Nexthop> nexthops;       // >1 entries = ECMP
  std::shared_ptr<LwtState> lwt;       // optional tunnel state
  std::shared_ptr<FrrBackup> frr;      // optional fast-reroute backup
};

class Fib;

// One-entry route-cache slot, owned by the *caller* (one per CPU context in
// the multi-core Node) rather than by the table: a shared per-table cache
// would be mutable state every context writes on every lookup — exactly the
// cross-core cache-line contention per-CPU data exists to avoid. A slot is
// valid only for the table and mutation generation it recorded, so table
// churn (which may also reallocate the route storage) can never leave a
// dangling Route* behind.
//
// The slot is a layer *above* the stride trie, not a substitute for it: it
// short-circuits the repeated-destination case (a burst run-grouped on one
// dst pays one trie walk), while the trie keeps multi-destination traffic —
// which defeats any one-entry cache — at O(key bytes) per miss.
struct FibCacheSlot {
  const Fib* fib = nullptr;
  std::uint64_t gen = 0;
  net::Ipv6Addr dst{};
  const Route* route = nullptr;  // negative results cached as nullptr
};

class Fib {
 public:
  void add_route(Route route);
  // Convenience: single-nexthop route.
  void add_route(const net::Prefix& prefix, const Nexthop& nh) {
    add_route(Route{prefix, {nh}, nullptr, nullptr});
  }
  // Withdraws the route for exactly `prefix` (route churn / IGP withdraw).
  // Returns false when no route with that exact prefix exists. Like every
  // mutation this bumps the generation, invalidating all cache slots.
  bool remove_route(const net::Prefix& prefix);
  void clear();

  // Longest-prefix match; nullptr when no route covers `dst`. Consults
  // `slot` first (a burst of packets to one destination walks the trie
  // once); a slot is revalidated against this table's mutation generation.
  // On a slot miss the cost is the stride trie's: at most 16 byte-indexed
  // node hops, typically ceil(prefixlen/8) + 1. The returned Route* is valid
  // until the next table mutation (add_route/clear).
  const Route* lookup(const net::Ipv6Addr& dst, FibCacheSlot& slot) const;
  // Legacy entry point backed by a table-internal slot (single-context
  // callers: tests, apps, control-plane code).
  const Route* lookup(const net::Ipv6Addr& dst) const {
    return lookup(dst, own_slot_);
  }

  // Observability for benches/tests: how often lookup() was answered by a
  // one-entry cache slot, summed over every slot (per-context and internal)
  // that queried this table.
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }

  // ECMP selection: picks the nexthop for `flow_hash` using weighted
  // hash-threshold mapping. Requires a non-empty nexthop list.
  static const Nexthop& select_nexthop(const Route& route,
                                       std::uint32_t flow_hash);

  std::size_t route_count() const noexcept { return routes_.size(); }
  const std::vector<Route>& routes() const noexcept { return routes_; }

 private:
  std::vector<Route> routes_;
  // 16 address bytes + prefixlen -> u32 route index, stride-8 LPM engine.
  util::LpmTrie<std::uint32_t> trie_{16};
  // Mutation generation: bumped by add_route()/clear(), implicitly
  // invalidating every FibCacheSlot that recorded an older value (and with
  // them any Route* into a since-reallocated routes_).
  std::uint64_t gen_ = 1;
  // Slot behind the legacy lookup(dst); mutable as lookup() is logically
  // const.
  mutable FibCacheSlot own_slot_;
  mutable std::uint64_t cache_hits_ = 0;
};

// 5-tuple flow hash over the *innermost* IPv6+transport headers of a packet
// (so ECMP keeps flows on one path even when encapsulated upstream).
std::uint32_t flow_hash(const net::Packet& pkt);

}  // namespace srv6bpf::seg6
