#include "seg6/helpers.h"

#include <cstring>
#include <vector>

#include "net/srh.h"
#include "seg6/ctx.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::seg6 {
namespace {

using ebpf::ArgKind;
using ebpf::ExecEnv;
using ebpf::RetKind;

constexpr std::uint64_t err_(int e) { return static_cast<std::uint64_t>(e); }
constexpr int kEInval = -22;
constexpr int kENoEnt = -2;

Seg6ProgCtx* prog_ctx(ExecEnv& env) {
  return static_cast<Seg6ProgCtx*>(env.user);
}

// Returns a view of the outermost SRH, or nullopt.
std::optional<net::SrhView> outer_srh(net::Packet& pkt) { return pkt.srh(); }

// ---- bpf_lwt_seg6_store_bytes ------------------------------------------------
// Indirect write access restricted to the SRH's editable fields: flags, tag
// and the TLV area. Anything else returns -EINVAL (principle (i) of §3).
std::uint64_t do_store_bytes(ExecEnv& env, std::uint64_t /*skb*/,
                             std::uint64_t offset, std::uint64_t from,
                             std::uint64_t len, std::uint64_t) {
  Seg6ProgCtx* ctx = prog_ctx(env);
  if (ctx == nullptr || ctx->pkt == nullptr) return err_(kEInval);
  auto srh = outer_srh(*ctx->pkt);
  if (!srh) return err_(kEInval);
  if (len == 0 || len > 4096) return err_(kEInval);

  const std::uint64_t srh_start = net::kIpv6HeaderSize;
  const std::uint64_t flags_begin = srh_start + 5;  // flags(1) + tag(2)
  const std::uint64_t flags_end = srh_start + 8;
  const std::uint64_t tlv_begin = srh_start + srh->tlv_offset();
  const std::uint64_t tlv_end = srh_start + srh->total_len();

  const bool in_flags_tag = offset >= flags_begin && offset + len <= flags_end;
  const bool in_tlvs = offset >= tlv_begin && offset + len <= tlv_end;
  if (!in_flags_tag && !in_tlvs) return err_(kEInval);

  const auto* src = reinterpret_cast<const std::uint8_t*>(from);
  if (!env.readable(src, len)) return err_(kEInval);
  std::memcpy(ctx->pkt->data() + offset, src, len);
  ctx->srh_dirty = true;
  return 0;
}

// ---- bpf_lwt_seg6_adjust_srh --------------------------------------------------
// Grows (delta > 0) or shrinks (delta < 0) the TLV area at `offset`. The SRH
// length stays a multiple of 8; header length fields are maintained here, and
// End.BPF revalidates the TLV chain after the program finishes.
std::uint64_t do_adjust_srh(ExecEnv& env, std::uint64_t /*skb*/,
                            std::uint64_t offset, std::uint64_t delta_u,
                            std::uint64_t, std::uint64_t) {
  Seg6ProgCtx* ctx = prog_ctx(env);
  if (ctx == nullptr || ctx->pkt == nullptr) return err_(kEInval);
  net::Packet& pkt = *ctx->pkt;
  auto srh = outer_srh(pkt);
  if (!srh) return err_(kEInval);

  const auto delta = static_cast<std::int64_t>(delta_u);
  if (delta == 0) return 0;
  if (delta % 8 != 0 || delta > 4096 || delta < -4096) return err_(kEInval);

  const std::uint64_t srh_start = net::kIpv6HeaderSize;
  const std::uint64_t tlv_begin = srh_start + srh->tlv_offset();
  const std::uint64_t tlv_end = srh_start + srh->total_len();
  // Insertion point must lie in [tlv_begin, tlv_end]; deletions must stay
  // inside the TLV area.
  if (offset < tlv_begin || offset > tlv_end) return err_(kEInval);
  if (delta < 0 && offset + static_cast<std::uint64_t>(-delta) > tlv_end)
    return err_(kEInval);

  const std::int64_t new_ext_len =
      static_cast<std::int64_t>(srh->hdr_ext_len()) + delta / 8;
  if (new_ext_len < 0 || new_ext_len > 255) return err_(kEInval);

  if (!pkt.expand_at(offset, delta)) return err_(kEInval);

  // Re-derive views: the buffer may have been reallocated.
  net::Ipv6View ip(pkt.data());
  ip.set_payload_length(
      static_cast<std::uint16_t>(ip.payload_length() + delta));
  pkt.data()[srh_start + 1] = static_cast<std::uint8_t>(new_ext_len);

  ctx->srh_dirty = true;
  ctx->packet_replaced = true;
  ctx->refresh_packet_view();
  return 0;
}

// ---- bpf_lwt_seg6_action -------------------------------------------------------
// Runs a basic SRv6 behaviour from inside an End.BPF program. The SRH was
// already advanced by End.BPF, so these implement the post-advance part of
// each behaviour, resolving the packet's destination into its metadata; the
// program should then return BPF_REDIRECT (§3.1).
std::uint64_t do_seg6_action(ExecEnv& env, std::uint64_t /*skb*/,
                             std::uint64_t action, std::uint64_t param,
                             std::uint64_t param_len, std::uint64_t) {
  Seg6ProgCtx* ctx = prog_ctx(env);
  if (ctx == nullptr || ctx->pkt == nullptr || ctx->netns == nullptr)
    return err_(kEInval);
  net::Packet& pkt = *ctx->pkt;
  Netns& ns = *ctx->netns;
  const auto* p = reinterpret_cast<const std::uint8_t*>(param);
  if (param_len > 0 && !env.readable(p, param_len)) return err_(kEInval);

  auto fib_resolve = [&](int table_id) -> std::uint64_t {
    const Fib* fib = ns.find_table(table_id);
    if (fib == nullptr) return err_(kENoEnt);
    net::Ipv6View ip(pkt.data());
    const Route* route = fib->lookup(ip.dst(), ns.fib_cache_slot());
    if (route == nullptr || route->nexthops.empty()) return err_(kENoEnt);
    const Nexthop& nh = Fib::select_nexthop(*route, flow_hash(pkt));
    pkt.dst().nexthop = nh.via.is_unspecified() ? ip.dst() : nh.via;
    pkt.dst().oif = nh.oif;
    pkt.dst().valid = true;
    ctx->dst_set = true;
    if (ctx->trace != nullptr) ++ctx->trace->fib_lookups;
    return 0;
  };

  switch (static_cast<Seg6Action>(action)) {
    case Seg6Action::kEndX: {
      if (param_len != 16) return err_(kEInval);
      Nexthop nh;
      std::memcpy(nh.via.bytes().data(), p, 16);
      if (!seg6_end_x(ns, pkt, nh, ctx->trace)) return err_(kENoEnt);
      ctx->dst_set = true;
      return 0;
    }
    case Seg6Action::kEndT: {
      if (param_len != 4) return err_(kEInval);
      std::uint32_t table;
      std::memcpy(&table, p, 4);
      return fib_resolve(static_cast<int>(table));
    }
    case Seg6Action::kEndB6: {
      // param: a serialized SRH whose segments (travel order) are inserted
      // inline; the original destination becomes the final segment.
      net::SrhView view(const_cast<std::uint8_t*>(p), param_len);
      if (param_len < net::kSrhFixedSize || !view.valid()) return err_(kEInval);
      std::vector<net::Ipv6Addr> segs;
      for (std::size_t i = view.num_segments(); i-- > 0;)
        segs.push_back(view.segment(i));
      if (!seg6_do_inline(pkt, segs)) return err_(kEInval);
      if (ctx->trace != nullptr) ++ctx->trace->encaps;
      ctx->packet_replaced = true;
      ctx->refresh_packet_view();
      return 0;
    }
    case Seg6Action::kEndB6Encaps: {
      net::SrhView view(const_cast<std::uint8_t*>(p), param_len);
      if (param_len < net::kSrhFixedSize || !view.valid()) return err_(kEInval);
      const net::Ipv6Addr src = ns.sr_tunsrc.is_unspecified()
                                    ? net::Ipv6View(pkt.data()).src()
                                    : ns.sr_tunsrc;
      // Verbatim SRH push (TLVs preserved), then outer IPv6.
      std::vector<std::uint8_t> srh_bytes(p, p + view.total_len());
      srh_bytes[0] = net::kProtoIpv6;
      net::Ipv6Header outer;
      outer.src = src;
      net::SrhView stored(srh_bytes.data(), srh_bytes.size());
      outer.dst = stored.current_segment();
      outer.next_header = net::kProtoRouting;
      outer.hop_limit = 64;
      outer.payload_length =
          static_cast<std::uint16_t>(srh_bytes.size() + pkt.size());
      std::uint8_t* front =
          pkt.push_front(net::kIpv6HeaderSize + srh_bytes.size());
      outer.write(front);
      std::memcpy(front + net::kIpv6HeaderSize, srh_bytes.data(),
                  srh_bytes.size());
      if (ctx->trace != nullptr) ++ctx->trace->encaps;
      ctx->packet_replaced = true;
      ctx->refresh_packet_view();
      return 0;
    }
    case Seg6Action::kEndDT6: {
      if (param_len != 4) return err_(kEInval);
      std::uint32_t table;
      std::memcpy(&table, p, 4);
      if (!seg6_decap(pkt)) return err_(kEInval);
      if (ctx->trace != nullptr) ++ctx->trace->decaps;
      ctx->packet_replaced = true;
      ctx->refresh_packet_view();
      return fib_resolve(static_cast<int>(table));
    }
    default:
      return err_(kEInval);
  }
}

// ---- bpf_lwt_push_encap ---------------------------------------------------------
// LWT-hook helper: wraps plain IPv6 traffic in an SRH (§4.1's transit
// behaviour, §4.2's WRR scheduler). The `hdr` argument is a fully formed SRH
// whose TLVs are preserved verbatim.
std::uint64_t do_push_encap(ExecEnv& env, std::uint64_t /*skb*/,
                            std::uint64_t type, std::uint64_t hdr,
                            std::uint64_t len, std::uint64_t) {
  Seg6ProgCtx* ctx = prog_ctx(env);
  if (ctx == nullptr || ctx->pkt == nullptr || ctx->netns == nullptr)
    return err_(kEInval);
  net::Packet& pkt = *ctx->pkt;
  const auto* p = reinterpret_cast<const std::uint8_t*>(hdr);
  if (len < net::kSrhFixedSize || len > 4096 || !env.readable(p, len))
    return err_(kEInval);
  net::SrhView view(const_cast<std::uint8_t*>(p), len);
  if (!view.valid() || view.total_len() != len) return err_(kEInval);

  if (type == BPF_LWT_ENCAP_SEG6) {
    const net::Ipv6Addr src = ctx->netns->sr_tunsrc.is_unspecified()
                                  ? net::Ipv6View(pkt.data()).src()
                                  : ctx->netns->sr_tunsrc;
    std::vector<std::uint8_t> srh_bytes(p, p + len);
    srh_bytes[0] = net::kProtoIpv6;  // inner protocol
    net::SrhView stored(srh_bytes.data(), srh_bytes.size());
    net::Ipv6Header outer;
    outer.src = src;
    outer.dst = stored.current_segment();
    outer.next_header = net::kProtoRouting;
    outer.hop_limit = 64;
    outer.payload_length =
        static_cast<std::uint16_t>(srh_bytes.size() + pkt.size());
    std::uint8_t* front = pkt.push_front(net::kIpv6HeaderSize + srh_bytes.size());
    outer.write(front);
    std::memcpy(front + net::kIpv6HeaderSize, srh_bytes.data(),
                srh_bytes.size());
  } else if (type == BPF_LWT_ENCAP_SEG6_INLINE) {
    std::vector<net::Ipv6Addr> segs;
    for (std::size_t i = view.num_segments(); i-- > 0;)
      segs.push_back(view.segment(i));
    if (!seg6_do_inline(pkt, segs)) return err_(kEInval);
  } else {
    return err_(kEInval);
  }
  if (ctx->trace != nullptr) ++ctx->trace->encaps;
  ctx->packet_replaced = true;
  ctx->refresh_packet_view();
  return 0;
}

// ---- bpf_fib_ecmp_nexthops (custom helper, §4.3) --------------------------------
// Writes the gateway addresses of the FIB's ECMP nexthop set for the queried
// destination into `out` (16 bytes each) and returns the count.
std::uint64_t do_fib_ecmp(ExecEnv& env, std::uint64_t /*skb*/,
                          std::uint64_t addr_mem, std::uint64_t addr_len,
                          std::uint64_t out_mem, std::uint64_t out_len) {
  Seg6ProgCtx* ctx = prog_ctx(env);
  if (ctx == nullptr || ctx->netns == nullptr) return err_(kEInval);
  if (addr_len != 16) return err_(kEInval);
  const auto* ap = reinterpret_cast<const std::uint8_t*>(addr_mem);
  auto* op = reinterpret_cast<std::uint8_t*>(out_mem);
  if (!env.readable(ap, 16) || !env.writable(op, out_len))
    return err_(kEInval);

  net::Ipv6Addr dst;
  std::memcpy(dst.bytes().data(), ap, 16);
  const Fib* fib = ctx->netns->find_table(0);
  if (fib == nullptr) return 0;
  const Route* route = fib->lookup(dst, ctx->netns->fib_cache_slot());
  if (route == nullptr) return 0;

  std::uint64_t count = 0;
  const std::uint64_t max = std::min<std::uint64_t>(out_len / 16,
                                                    kMaxEcmpNexthops);
  for (const Nexthop& nh : route->nexthops) {
    if (count >= max) break;
    const net::Ipv6Addr& via = nh.via.is_unspecified() ? dst : nh.via;
    std::memcpy(op + count * 16, via.bytes().data(), 16);
    ++count;
  }
  return count;
}

}  // namespace

void register_seg6_helpers(ebpf::HelperRegistry& reg) {
  using ebpf::helper::FIB_ECMP_NEXTHOPS;
  using ebpf::helper::LWT_PUSH_ENCAP;
  using ebpf::helper::LWT_SEG6_ACTION;
  using ebpf::helper::LWT_SEG6_ADJUST_SRH;
  using ebpf::helper::LWT_SEG6_STORE_BYTES;

  reg.register_helper(
      LWT_SEG6_STORE_BYTES,
      {.name = "lwt_seg6_store_bytes",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kAnything, ArgKind::kPtrToMem,
                ArgKind::kConstSize, ArgKind::kNone},
       .allowed_types = ebpf::kProgSeg6Local},
      do_store_bytes);
  reg.register_helper(
      LWT_SEG6_ADJUST_SRH,
      {.name = "lwt_seg6_adjust_srh",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kAnything, ArgKind::kAnything,
                ArgKind::kNone, ArgKind::kNone},
       .invalidates_packet = true,
       .allowed_types = ebpf::kProgSeg6Local},
      do_adjust_srh);
  reg.register_helper(
      LWT_SEG6_ACTION,
      {.name = "lwt_seg6_action",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kAnything, ArgKind::kPtrToMem,
                ArgKind::kConstSize, ArgKind::kNone},
       .invalidates_packet = true,
       .allowed_types = ebpf::kProgSeg6Local},
      do_seg6_action);
  reg.register_helper(
      LWT_PUSH_ENCAP,
      {.name = "lwt_push_encap",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kAnything, ArgKind::kPtrToMem,
                ArgKind::kConstSize, ArgKind::kNone},
       .invalidates_packet = true,
       .allowed_types = static_cast<std::uint8_t>(
           ebpf::kProgLwtIn | ebpf::kProgLwtOut | ebpf::kProgLwtXmit)},
      do_push_encap);
  reg.register_helper(
      FIB_ECMP_NEXTHOPS,
      {.name = "fib_ecmp_nexthops",
       .ret = RetKind::kInteger,
       .args = {ArgKind::kPtrToCtx, ArgKind::kPtrToMem, ArgKind::kConstSize,
                ArgKind::kPtrToUninitMem, ArgKind::kConstSize}},
      do_fib_ecmp);
}

}  // namespace srv6bpf::seg6
