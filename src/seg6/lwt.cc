#include "seg6/lwt.h"

#include "seg6/seg6local.h"

namespace srv6bpf::seg6 {

namespace {

// Shared BPF-tunnel tail: interprets the program's outcome for one packet.
PipelineResult lwt_bpf_epilogue(net::Packet& pkt, const ebpf::ExecResult& exec,
                                bool packet_replaced) {
  if (!exec.ok()) return PipelineResult::drop();
  switch (exec.ret) {
    case ebpf::BPF_OK:
      // If the program pushed an encapsulation the packet's destination
      // changed; route it afresh (the kernel's BPF_LWT_REROUTE path).
      return packet_replaced ? PipelineResult::cont(0)
                             : PipelineResult::use_route();
    case ebpf::BPF_REDIRECT:
      if (!pkt.dst().valid) return PipelineResult::drop();
      return PipelineResult::forward();
    case ebpf::BPF_DROP:
    default:
      return PipelineResult::drop();
  }
}

const ebpf::ProgHandle& lwt_prog_for_hook(const LwtState& lwt, LwtHook hook) {
  return hook == LwtHook::kIn    ? lwt.prog_in
         : hook == LwtHook::kOut ? lwt.prog_out
                                 : lwt.prog_xmit;
}

}  // namespace

PipelineResult lwt_process(Netns& ns, net::Packet& pkt, const LwtState& lwt,
                           LwtHook hook, ProcessTrace* trace) {
  switch (lwt.kind) {
    case LwtState::Kind::kNone:
      return PipelineResult::use_route();

    case LwtState::Kind::kSeg6Encap: {
      // Only encapsulate once, at the xmit stage.
      if (hook != LwtHook::kXmit) return PipelineResult::use_route();
      const net::Ipv6Addr src = ns.sr_tunsrc.is_unspecified()
                                    ? pkt.ipv6().src()
                                    : ns.sr_tunsrc;
      if (!seg6_do_encap(pkt, lwt.segments, src)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }

    case LwtState::Kind::kSeg6Inline: {
      if (hook != LwtHook::kXmit) return PipelineResult::use_route();
      if (!seg6_do_inline(pkt, lwt.segments)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }

    case LwtState::Kind::kBpf: {
      const ebpf::ProgHandle& prog = lwt_prog_for_hook(lwt, hook);
      if (prog == nullptr) return PipelineResult::use_route();

      auto run = ns.run_prog(*prog, pkt, trace);
      return lwt_bpf_epilogue(pkt, run.exec, run.ctx.packet_replaced);
    }
  }
  return PipelineResult::drop();
}

void lwt_process_burst(Netns& ns, std::span<net::Packet* const> pkts,
                       const LwtState& lwt, LwtHook hook,
                       ProcessTrace* const* traces, PipelineResult* results) {
  const std::size_t n = pkts.size();
  const ebpf::ProgHandle* prog = nullptr;
  if (lwt.kind == LwtState::Kind::kBpf) prog = &lwt_prog_for_hook(lwt, hook);
  // Non-BPF tunnel kinds are plain header surgery; only a BPF program has
  // per-invocation setup worth amortising.
  if (prog == nullptr || *prog == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i)
      results[i] = lwt_process(ns, *pkts[i], lwt, hook, traces[i]);
    return;
  }

  run_prog_over_burst(ns, **prog, pkts, traces,
                      [&](std::size_t k, const ebpf::ExecResult& exec,
                          const Seg6BurstRunner::Verdict& v) {
                        results[k] = lwt_bpf_epilogue(*pkts[k], exec,
                                                      v.packet_replaced);
                      });
}

}  // namespace srv6bpf::seg6
