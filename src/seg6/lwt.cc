#include "seg6/lwt.h"

#include "seg6/seg6local.h"

namespace srv6bpf::seg6 {

PipelineResult lwt_process(Netns& ns, net::Packet& pkt, const LwtState& lwt,
                           LwtHook hook, ProcessTrace* trace) {
  switch (lwt.kind) {
    case LwtState::Kind::kNone:
      return PipelineResult::use_route();

    case LwtState::Kind::kSeg6Encap: {
      // Only encapsulate once, at the xmit stage.
      if (hook != LwtHook::kXmit) return PipelineResult::use_route();
      const net::Ipv6Addr src = ns.sr_tunsrc.is_unspecified()
                                    ? pkt.ipv6().src()
                                    : ns.sr_tunsrc;
      if (!seg6_do_encap(pkt, lwt.segments, src)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }

    case LwtState::Kind::kSeg6Inline: {
      if (hook != LwtHook::kXmit) return PipelineResult::use_route();
      if (!seg6_do_inline(pkt, lwt.segments)) return PipelineResult::drop();
      if (trace != nullptr) ++trace->encaps;
      return PipelineResult::cont(0);
    }

    case LwtState::Kind::kBpf: {
      const ebpf::ProgHandle& prog = hook == LwtHook::kIn    ? lwt.prog_in
                                     : hook == LwtHook::kOut ? lwt.prog_out
                                                             : lwt.prog_xmit;
      if (prog == nullptr) return PipelineResult::use_route();

      auto run = ns.run_prog(*prog, pkt, trace);
      if (!run.exec.ok()) return PipelineResult::drop();

      switch (run.exec.ret) {
        case ebpf::BPF_OK:
          // If the program pushed an encapsulation the packet's destination
          // changed; route it afresh (the kernel's BPF_LWT_REROUTE path).
          return run.ctx.packet_replaced ? PipelineResult::cont(0)
                                         : PipelineResult::use_route();
        case ebpf::BPF_REDIRECT:
          if (!pkt.dst().valid) return PipelineResult::drop();
          return PipelineResult::forward();
        case ebpf::BPF_DROP:
        default:
          return PipelineResult::drop();
      }
    }
  }
  return PipelineResult::drop();
}

}  // namespace srv6bpf::seg6
