// Netns: one instance of the "kernel network stack" state — routing tables,
// the seg6local SID table, local addresses and the BPF subsystem — plus the
// per-invocation context handed to SRv6 eBPF programs.
//
// The simulator's Node (sim/node.h) owns a Netns and drives the forwarding
// pipeline; everything in this module is pure protocol logic with no notion
// of links or simulated time (time is injected via the clock callback).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>

#include "ebpf/exec.h"
#include "ebpf/skb.h"
#include "ebpf/vm.h"
#include "net/ip6.h"
#include "net/packet.h"
#include "seg6/fib.h"

namespace srv6bpf::seg6 {

class Seg6LocalTable;

// What the forwarding pipeline should do next with a packet.
enum class Disposition {
  kContinue,   // dst (possibly rewritten) needs a FIB lookup in `table`
  kUseRoute,   // proceed with the already-selected route's nexthop
  kForward,    // pkt.dst() metadata is set; ship it
  kLocal,      // deliver to the local host
  kDrop,
};

struct PipelineResult {
  Disposition disposition = Disposition::kDrop;
  int table = 0;  // for kContinue
  static PipelineResult drop() { return {Disposition::kDrop, 0}; }
  static PipelineResult cont(int table = 0) {
    return {Disposition::kContinue, table};
  }
  static PipelineResult forward() { return {Disposition::kForward, 0}; }
  static PipelineResult use_route() { return {Disposition::kUseRoute, 0}; }
};

// Everything the cost model (sim/costmodel.h) needs to charge a packet for
// the processing it received on a node.
struct ProcessTrace {
  int fib_lookups = 0;
  int seg6local_ops = 0;       // static seg6local behaviour executions
  int bpf_runs = 0;
  std::uint64_t bpf_insns_jit = 0;     // insns executed on the JIT engine
  std::uint64_t bpf_insns_interp = 0;  // insns executed on the interpreter
  std::uint64_t helper_calls = 0;
  int encaps = 0;
  int decaps = 0;
  bool dropped = false;

  void reset() { *this = ProcessTrace{}; }
};

// Per-invocation state shared between a running eBPF program and the SRv6
// helper implementations (reached through ExecEnv::user).
struct Seg6ProgCtx {
  class Netns* netns = nullptr;
  net::Packet* pkt = nullptr;
  ebpf::SkbCtx skb;              // the ctx struct the program sees
  ebpf::ExecEnv* env = nullptr;  // to refresh packet regions after resizes
  ebpf::ProgType prog_type = ebpf::ProgType::kLwtSeg6Local;
  ProcessTrace* trace = nullptr;
  std::uint64_t now_ns = 0;

  bool srh_dirty = false;        // SRH bytes/size modified -> revalidate
  bool packet_replaced = false;  // encap/decap/resize happened
  bool dst_set = false;          // lwt_seg6_action resolved a destination

  // Refresh skb.data/data_end/len and the packet memory region after any
  // operation that may have moved or resized the packet buffer.
  void refresh_packet_view();
};

class Netns {
 public:
  explicit Netns(std::string name = "netns");
  ~Netns();  // out of line: Seg6LocalTable is forward-declared here

  const std::string& name() const noexcept { return name_; }
  ebpf::BpfSystem& bpf() noexcept { return bpf_; }
  const ebpf::BpfSystem& bpf() const noexcept { return bpf_; }

  // Routing table by id (created on demand). Table 0 is "main".
  Fib& table(int id = 0);
  const Fib* find_table(int id) const;
  // Every table (id -> Fib), ordered by id: crash teardown wipes them all,
  // and the control-plane re-installer snapshots route config across them.
  std::map<int, Fib>& tables() noexcept { return tables_; }
  const std::map<int, Fib>& tables() const noexcept { return tables_; }
  Seg6LocalTable& seg6local() noexcept { return *seg6local_; }

  void add_local_addr(const net::Ipv6Addr& a) { local_addrs_.insert(a); }
  bool is_local(const net::Ipv6Addr& a) const {
    return local_addrs_.count(a) != 0;
  }

  // Source address used for SRH encapsulation (ip sr tunsrc analogue).
  net::Ipv6Addr sr_tunsrc;

  // Simulated clock; defaults to 0 when unset.
  std::function<std::uint64_t()> clock;
  std::uint64_t now() const { return clock ? clock() : 0; }

  // CPU context currently executing this netns's datapath. The multi-core
  // Node sets it around each service event (and restores it after); program
  // runners snapshot it into ExecEnv::cpu_id, which is what
  // bpf_get_smp_processor_id and the PERCPU_* map helpers read.
  std::uint32_t current_cpu = 0;

  // The executing context's one-entry FIB route-cache slot. Every hot-path
  // route lookup against this netns — the datapath's fib stage, the
  // bpf_lwt_seg6_action behaviours, End.X nexthop resolution — goes through
  // the servicing context's slot, so contexts never share cache state
  // (FibCacheSlot's rationale in seg6/fib.h).
  FibCacheSlot& fib_cache_slot() noexcept { return fib_slots_[current_cpu]; }

  // Deterministic per-netns randomness for bpf_get_prandom_u32.
  std::uint32_t prandom();
  void seed_prandom(std::uint64_t seed);

  struct BpfRunResult {
    ebpf::ExecResult exec;
    Seg6ProgCtx ctx;
  };
  // Builds the SkbCtx + ExecEnv and executes `prog` against `pkt` on this
  // netns's engines (JIT or interpreter per the netns setting), updating
  // `trace` with executed-instruction accounting. Single-packet convenience
  // wrapper over Seg6BurstRunner; burst callers use the runner directly.
  BpfRunResult run_prog(const ebpf::LoadedProgram& prog, net::Packet& pkt,
                        ProcessTrace* trace);

 private:
  std::string name_;
  ebpf::BpfSystem bpf_;
  std::map<int, Fib> tables_;
  std::unique_ptr<Seg6LocalTable> seg6local_;
  std::set<net::Ipv6Addr> local_addrs_;
  std::uint64_t prandom_state_ = 0x853c49e6748fea9bull;
  // One slot per possible CPU context (current_cpu is clamped below
  // ebpf::kMaxCpus by the Node's context setup).
  std::array<FibCacheSlot, ebpf::kMaxCpus> fib_slots_;
};

// Amortised SRv6 program executor: builds the SkbCtx + ExecEnv (clock and
// prandom closures, memory-region list) once, then retargets them packet by
// packet — so a burst of packets hitting the same program pays the
// per-invocation setup once per group instead of once per packet.
//
// Protocol per packet: prepare() -> run the program (typically through
// LoadedProgram::run_burst with prepare in the prep hook) -> harvest() ->
// account(). harvest() must run before the next prepare(): it writes the
// writable ctx fields (skb->mark) back to the current packet and returns the
// per-packet helper flags.
class Seg6BurstRunner {
 public:
  Seg6BurstRunner(Netns& ns, const ebpf::LoadedProgram& prog);
  Seg6BurstRunner(const Seg6BurstRunner&) = delete;
  Seg6BurstRunner& operator=(const Seg6BurstRunner&) = delete;

  struct Verdict {
    bool srh_dirty = false;
    bool packet_replaced = false;
    bool dst_set = false;
  };

  // Points the shared ctx/env at `pkt` and resets the per-packet flags.
  void prepare(net::Packet& pkt, ProcessTrace* trace);
  // Propagates writable ctx fields back into the prepared packet and reads
  // out the per-packet flags.
  Verdict harvest();
  // Charges one program execution to `trace` (engine-aware insn counts).
  void account(ProcessTrace* trace, const ebpf::ExecResult& exec) const;

  ebpf::ExecEnv& env() noexcept { return env_; }
  std::uint64_t ctx_addr() const noexcept {
    return reinterpret_cast<std::uint64_t>(&ctx_.skb);
  }
  const Seg6ProgCtx& ctx() const noexcept { return ctx_; }

 private:
  Netns& ns_;
  Seg6ProgCtx ctx_;
  ebpf::ExecEnv env_;
};

// Shared vector-run scaffold for the burst entry points: executes `prog`
// over every packet in `pkts` as chunked LoadedProgram::run_burst calls
// sharing one Seg6BurstRunner per chunk, handling the harvest-before-next-
// prepare protocol, then invokes `per_packet(k, exec, flags)` for each index
// of `pkts` in order (after trace accounting). Callers keep any index
// mapping of their own and interpret the outcome (End.BPF vs LWT epilogue).
// The callback is a non-owning FunctionRef (call-scope lifetime): hook
// plumbing costs the hot path zero allocations per burst.
using BurstPerPacketFn = util::FunctionRef<void(
    std::size_t, const ebpf::ExecResult&, const Seg6BurstRunner::Verdict&)>;
void run_prog_over_burst(Netns& ns, const ebpf::LoadedProgram& prog,
                         std::span<net::Packet* const> pkts,
                         ProcessTrace* const* traces,
                         BurstPerPacketFn per_packet);

}  // namespace srv6bpf::seg6
