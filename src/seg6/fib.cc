#include "seg6/fib.h"

#include <cstring>
#include <stdexcept>

#include "net/srh.h"
#include "net/transport.h"
#include "util/byteorder.h"

namespace srv6bpf::seg6 {

void Fib::add_route(Route route) {
  if (route.nexthops.empty() && !route.lwt)
    throw std::invalid_argument("route needs nexthops or tunnel state");
  for (const Nexthop& nh : route.nexthops)
    if (nh.weight <= 0) throw std::invalid_argument("nexthop weight must be > 0");

  const std::uint32_t index = static_cast<std::uint32_t>(routes_.size());
  bool created = false;
  std::uint32_t* slot = trie_.find_or_insert(
      route.prefix.addr.bytes().data(),
      static_cast<std::uint32_t>(route.prefix.len), created);
  // Re-adding an existing prefix replaces it (BPF_ANY semantics): the trie
  // points at the new route, the superseded Route stays in routes_ only so
  // earlier indices keep their meaning.
  *slot = index;
  routes_.push_back(std::move(route));
  ++gen_;
}

bool Fib::remove_route(const net::Prefix& prefix) {
  // The trie entry goes away; the Route object stays parked in routes_ so
  // earlier indices keep their meaning (same superseding discipline as
  // add_route on an existing prefix). The generation bump invalidates every
  // cache slot that may hold a pointer at the withdrawn route.
  if (!trie_.erase(prefix.addr.bytes().data(),
                   static_cast<std::uint32_t>(prefix.len)))
    return false;
  ++gen_;
  return true;
}

void Fib::clear() {
  routes_.clear();
  trie_.clear();
  ++gen_;
}

const Route* Fib::lookup(const net::Ipv6Addr& dst, FibCacheSlot& slot) const {
  if (slot.fib == this && slot.gen == gen_ && slot.dst == dst) {
    ++cache_hits_;
    return slot.route;
  }
  const std::uint32_t* v = trie_.lookup(dst.bytes().data());
  const Route* route = v != nullptr ? &routes_[*v] : nullptr;
  slot.fib = this;
  slot.gen = gen_;
  slot.dst = dst;
  slot.route = route;
  return route;
}

const Nexthop& Fib::select_nexthop(const Route& route,
                                   std::uint32_t flow_hash) {
  if (route.nexthops.empty())
    throw std::logic_error("select_nexthop on route without nexthops");
  int total = 0;
  for (const Nexthop& nh : route.nexthops) total += nh.weight;
  // Weighted hash-threshold: deterministic per flow, proportional to weight.
  int slot = static_cast<int>(flow_hash % static_cast<std::uint32_t>(total));
  for (const Nexthop& nh : route.nexthops) {
    slot -= nh.weight;
    if (slot < 0) return nh;
  }
  return route.nexthops.back();
}

std::uint32_t flow_hash(const net::Packet& pkt) {
  // Walk to the innermost IPv6 header (through SRH and IPv6-in-IPv6), then
  // hash {src, dst, proto, ports}. Jenkins one-at-a-time.
  const std::uint8_t* p = pkt.data();
  std::size_t len = pkt.size();
  std::uint8_t proto = 0;
  const std::uint8_t* transport = nullptr;
  if (len < net::kIpv6HeaderSize) return 0;

  int guard = 8;
  while (guard-- > 0 && len >= net::kIpv6HeaderSize && (p[0] >> 4) == 6) {
    proto = p[6];
    const std::uint8_t* next = p + net::kIpv6HeaderSize;
    std::size_t next_len = len - net::kIpv6HeaderSize;
    if (proto == net::kProtoRouting && next_len >= net::kSrhFixedSize) {
      const std::size_t srh_len = (static_cast<std::size_t>(next[1]) + 1) * 8;
      if (srh_len > next_len) break;
      proto = next[0];
      next += srh_len;
      next_len -= srh_len;
    }
    if (proto == net::kProtoIpv6) {
      p = next;
      len = next_len;
      continue;
    }
    transport = next;
    len = next_len;
    break;
  }

  std::uint32_t h = 0;
  auto mix = [&h](const std::uint8_t* d, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h += d[i];
      h += h << 10;
      h ^= h >> 6;
    }
  };
  // src+dst of the innermost IPv6 header currently at `p`.
  mix(p + 8, 32);
  mix(&proto, 1);
  if (transport != nullptr &&
      (proto == net::kProtoUdp || proto == net::kProtoTcp))
    mix(transport, 4);  // both ports
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

}  // namespace srv6bpf::seg6
