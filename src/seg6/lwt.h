// Lightweight tunnels attached to routes: the seg6 transit behaviours
// (T.Encaps / T.Insert, the `seg6` iproute2 encap type) and route-attached
// BPF programs (the `bpf` encap type with in/out/xmit sections).
#pragma once

#include "net/packet.h"
#include "seg6/ctx.h"
#include "seg6/fib.h"

namespace srv6bpf::seg6 {

enum class LwtHook { kIn, kOut, kXmit };

// Applies a route's tunnel state to a packet being forwarded by that route.
// Dispositions:
//   kContinue  — the packet was re-encapsulated; re-run the FIB lookup
//   kUseRoute  — no rewrite; proceed with the route's own nexthop
//   kForward   — a BPF program resolved the destination (BPF_REDIRECT)
//   kDrop      — drop
PipelineResult lwt_process(Netns& ns, net::Packet& pkt, const LwtState& lwt,
                           LwtHook hook, ProcessTrace* trace);

}  // namespace srv6bpf::seg6
