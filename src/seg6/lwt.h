// Lightweight tunnels attached to routes: the seg6 transit behaviours
// (T.Encaps / T.Insert, the `seg6` iproute2 encap type) and route-attached
// BPF programs (the `bpf` encap type with in/out/xmit sections).
#pragma once

#include <span>

#include "net/packet.h"
#include "seg6/ctx.h"
#include "seg6/fib.h"

namespace srv6bpf::seg6 {

enum class LwtHook { kIn, kOut, kXmit };

// Applies a route's tunnel state to a packet being forwarded by that route.
// Dispositions:
//   kContinue  — the packet was re-encapsulated; re-run the FIB lookup
//   kUseRoute  — no rewrite; proceed with the route's own nexthop
//   kForward   — a BPF program resolved the destination (BPF_REDIRECT)
//   kDrop      — drop
PipelineResult lwt_process(Netns& ns, net::Packet& pkt, const LwtState& lwt,
                           LwtHook hook, ProcessTrace* trace);

// Burst entry point: applies the tunnel state to every packet in `pkts` (all
// selected the same route), writing dispositions into `results[i]`. For BPF
// tunnels the program runs as one vector (ExecEnv/engine dispatch paid once
// per route group); per-packet semantics match sequential lwt_process calls.
void lwt_process_burst(Netns& ns, std::span<net::Packet* const> pkts,
                       const LwtState& lwt, LwtHook hook,
                       ProcessTrace* const* traces, PipelineResult* results);

}  // namespace srv6bpf::seg6
