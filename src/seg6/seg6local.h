// seg6local: SRv6 endpoint behaviours bound to local SIDs.
//
// Mirrors net/ipv6/seg6_local.c. The static behaviours (End, End.X, End.T,
// End.B6, End.B6.Encaps, End.DT6) are implemented in the kernel; End.BPF is
// the paper's contribution: it advances the SRH like End, then hands the
// packet to an eBPF program which may modify SRH flags/tag/TLVs through the
// seg6 helpers, invoke other behaviours via bpf_lwt_seg6_action, and decide
// the packet's fate through its return code (BPF_OK / BPF_DROP /
// BPF_REDIRECT).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ebpf/vm.h"
#include "net/ip6.h"
#include "net/packet.h"
#include "seg6/ctx.h"
#include "seg6/fib.h"

namespace srv6bpf::seg6 {

// Kernel uapi enum seg6_local_action_t values (linux/seg6_local.h).
enum class Seg6Action : std::uint32_t {
  kEnd = 1,
  kEndX = 2,
  kEndT = 3,
  kEndDT6 = 7,
  kEndB6 = 9,
  kEndB6Encaps = 10,
  kEndBPF = 15,
};

struct Seg6LocalEntry {
  Seg6Action action = Seg6Action::kEnd;
  Nexthop nh;                              // End.X
  int table = 0;                           // End.T / End.DT6
  std::vector<net::Ipv6Addr> segments;     // End.B6 / End.B6.Encaps policy
  ebpf::ProgHandle prog;                   // End.BPF
};

// SID -> behaviour table. Hash-based (the kernel uses a hashed route table
// too): it sits on the per-burst classify stage, where an ordered map's
// 128-bit comparisons per tree level were measurable. Entry references are
// stable across insertions (unordered_map guarantee), which the burst
// pipeline relies on.
class Seg6LocalTable {
 public:
  void add(const net::Ipv6Addr& sid, Seg6LocalEntry entry) {
    entries_[sid] = std::move(entry);
  }
  const Seg6LocalEntry* lookup(const net::Ipv6Addr& sid) const {
    if (entries_.empty()) return nullptr;
    auto it = entries_.find(sid);
    return it == entries_.end() ? nullptr : &it->second;
  }
  std::size_t size() const noexcept { return entries_.size(); }
  // Drops every SID binding (node crash teardown; the re-installer puts the
  // snapshotted bindings back).
  void clear() { entries_.clear(); }
  // Snapshot access for the control-plane re-installer.
  const std::unordered_map<net::Ipv6Addr, Seg6LocalEntry, net::Ipv6AddrHash>&
  entries() const noexcept {
    return entries_;
  }

 private:
  std::unordered_map<net::Ipv6Addr, Seg6LocalEntry, net::Ipv6AddrHash>
      entries_;
};

// Executes the behaviour on a packet whose IPv6 destination matched `entry`'s
// SID. Updates `trace` and returns the pipeline disposition.
PipelineResult seg6local_process(Netns& ns, net::Packet& pkt,
                                 const Seg6LocalEntry& entry,
                                 ProcessTrace* trace);

// Burst entry point: executes the behaviour over every packet in `pkts` (all
// of which matched `entry`'s SID), writing per-packet dispositions into
// `results[i]` and charging `traces[i]`. Per-packet semantics are identical
// to calling seg6local_process in order; what's amortised is the End.BPF
// ExecEnv/ctx construction and engine dispatch, paid once per group through
// Seg6BurstRunner + LoadedProgram::run_burst.
void seg6local_process_burst(Netns& ns, std::span<net::Packet* const> pkts,
                             const Seg6LocalEntry& entry,
                             ProcessTrace* const* traces,
                             PipelineResult* results);

// ---- Behaviour primitives (shared with bpf_lwt_seg6_action) -----------------

// get_and_validate_srh + advance_nextseg: requires a structurally valid SRH
// with segments_left > 0; decrements it and rewrites the IPv6 destination to
// the new current segment. Returns false (caller drops) otherwise.
bool srh_advance(net::Packet& pkt);

// End.DT6 core: removes the outer IPv6 header (and its SRH if present),
// exposing an inner IPv6 packet. Returns false if there is no IPv6-in-IPv6
// encapsulation to remove.
bool seg6_decap(net::Packet& pkt);

// Transit behaviour T.Encaps: pushes an outer IPv6 header + SRH carrying
// `segments` (travel order); outer src is `src`, outer dst the first segment.
bool seg6_do_encap(net::Packet& pkt, std::span<const net::Ipv6Addr> segments,
                   const net::Ipv6Addr& src);

// Transit behaviour T.Insert / End.B6 core: inserts an SRH directly after the
// IPv6 header; the original destination is appended as the final segment.
bool seg6_do_inline(net::Packet& pkt, std::span<const net::Ipv6Addr> segments);

// End.X core: resolve the configured nexthop into pkt.dst() metadata.
bool seg6_end_x(Netns& ns, net::Packet& pkt, const Nexthop& nh,
                ProcessTrace* trace);

}  // namespace srv6bpf::seg6
