// The paper's SRv6 eBPF helper functions (§3.1), released with Linux 4.18:
//
//   bpf_lwt_seg6_store_bytes  — indirect write access to the editable SRH
//                               fields (flags, tag, TLVs) only;
//   bpf_lwt_seg6_adjust_srh   — grow/shrink the TLV area;
//   bpf_lwt_seg6_action       — run a basic SRv6 behaviour (End.X, End.T,
//                               End.B6, End.B6.Encaps, End.DT6);
//   bpf_lwt_push_encap        — (LWT hook) encapsulate an SRH / outer IPv6
//                               header around plain IPv6 traffic;
//
// plus the custom helper of §4.3:
//
//   bpf_fib_ecmp_nexthops     — query the FIB's ECMP nexthop set for an
//                               address (End.OAMP).
//
// All of them reach the packet and routing state through the Seg6ProgCtx in
// ExecEnv::user, and enforce the paper's key principle: eBPF code only ever
// mutates the packet through these audited entry points.
#pragma once

#include "ebpf/helpers.h"

namespace srv6bpf::seg6 {

// uapi values for bpf_lwt_push_encap's `type` argument.
inline constexpr std::uint32_t BPF_LWT_ENCAP_SEG6 = 1;         // outer v6 + SRH
inline constexpr std::uint32_t BPF_LWT_ENCAP_SEG6_INLINE = 2;  // SRH insertion

// Maximum nexthops bpf_fib_ecmp_nexthops reports.
inline constexpr std::uint32_t kMaxEcmpNexthops = 8;

void register_seg6_helpers(ebpf::HelperRegistry& reg);

}  // namespace srv6bpf::seg6
