// Reference interpreter for classic BPF — the oracle the translator
// differential test compares against.
//
// Semantics notes (all matched by the cBPF→eBPF translation so that the
// oracle and the four eBPF engines stay bit-identical):
//   * A, X and M[] are unsigned 32-bit; M[] starts zeroed (the translator
//     zero-fills the referenced scratch slots in its prologue, which also
//     satisfies the eBPF verifier's no-read-before-write stack rule).
//   * A packet load whose range falls outside the packet terminates the
//     filter with return 0, exactly like the kernel's ___bpf_prog_run
//     LD_ABS/LD_IND error path.
//   * Division or modulo by a zero X terminates the filter with return 0
//     (the translator emits an explicit guard; constant zero divisors are
//     rejected statically by check()).
//   * Shift counts are masked to 5 bits, the eBPF ALU32 semantics that the
//     kernel's conversion imposes on classic filters since 3.15.
//   * ABS/IND word and halfword loads are big-endian (network order).
//
// Validated programs only jump forward, so execution always terminates in at
// most prog.size() steps; run() assumes check() passed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cbpf/insn.h"

namespace srv6bpf::cbpf {

// Runs `prog` over the packet bytes; returns the accept length (0 = drop).
std::uint32_t run(const std::vector<SockFilter>& prog, const std::uint8_t* pkt,
                  std::size_t pkt_len);

}  // namespace srv6bpf::cbpf
