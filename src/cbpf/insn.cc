#include "cbpf/insn.h"

#include <cstdio>

namespace srv6bpf::cbpf {

namespace {

CheckResult fail(int idx, std::string msg) {
  return CheckResult{false, std::move(msg), idx};
}

bool valid_alu(const SockFilter& in) {
  switch (in.alu_op()) {
    case BPF_ADD: case BPF_SUB: case BPF_MUL: case BPF_DIV:
    case BPF_OR: case BPF_AND: case BPF_LSH: case BPF_RSH:
    case BPF_MOD: case BPF_XOR:
      return (in.code & ~0xf8u) == BPF_ALU;
    case BPF_NEG:
      return in.code == (BPF_ALU | BPF_NEG);
  }
  return false;
}

}  // namespace

CheckResult check(const std::vector<SockFilter>& prog) {
  if (prog.empty()) return fail(-1, "empty classic program");
  if (prog.size() > static_cast<std::size_t>(kMaxInsns))
    return fail(-1, "classic program exceeds BPF_MAXINSNS");
  const std::uint32_t len = static_cast<std::uint32_t>(prog.size());

  for (std::uint32_t pc = 0; pc < len; ++pc) {
    const SockFilter& in = prog[pc];
    switch (in.insn_class()) {
      case BPF_LD:
        switch (in.code) {
          case BPF_LD | BPF_IMM:
          case BPF_LD | BPF_W | BPF_ABS:
          case BPF_LD | BPF_H | BPF_ABS:
          case BPF_LD | BPF_B | BPF_ABS:
          case BPF_LD | BPF_W | BPF_IND:
          case BPF_LD | BPF_H | BPF_IND:
          case BPF_LD | BPF_B | BPF_IND:
          case BPF_LD | BPF_W | BPF_LEN:
            break;
          case BPF_LD | BPF_MEM:
            if (in.k >= kMemWords) return fail(pc, "M[] index out of range");
            break;
          default:
            return fail(pc, "unknown LD opcode");
        }
        break;
      case BPF_LDX:
        switch (in.code) {
          case BPF_LDX | BPF_IMM:
          case BPF_LDX | BPF_W | BPF_LEN:
            break;
          case BPF_LDX | BPF_MEM:
            if (in.k >= kMemWords) return fail(pc, "M[] index out of range");
            break;
          case BPF_LDX | BPF_B | BPF_MSH:
            break;
          default:
            return fail(pc, "unknown LDX opcode");
        }
        break;
      case BPF_ST:
      case BPF_STX:
        if (in.code != (in.insn_class() | BPF_MEM) && in.code != in.insn_class())
          return fail(pc, "unknown store opcode");
        if (in.k >= kMemWords) return fail(pc, "M[] index out of range");
        break;
      case BPF_ALU:
        if (!valid_alu(in)) return fail(pc, "unknown ALU opcode");
        if (!in.uses_x()) {
          const auto op = in.alu_op();
          if ((op == BPF_DIV || op == BPF_MOD) && in.k == 0)
            return fail(pc, "division by zero constant");
          if ((op == BPF_LSH || op == BPF_RSH) && in.k > 31)
            return fail(pc, "shift amount out of range");
        }
        break;
      case BPF_JMP:
        // Classic jumps are forward-only; targets must stay inside the
        // program. JA's offset is the 32-bit k, the conditionals use the
        // 8-bit jt/jf pair.
        if (in.code == (BPF_JMP | BPF_JA)) {
          if (in.k >= len - pc - 1) return fail(pc, "jump out of range");
          break;
        }
        switch (in.jmp_op()) {
          case BPF_JEQ: case BPF_JGT: case BPF_JGE: case BPF_JSET:
            if ((in.code & ~0xf8u) != BPF_JMP)
              return fail(pc, "unknown JMP opcode");
            if (pc + 1 + in.jt >= len || pc + 1 + in.jf >= len)
              return fail(pc, "jump out of range");
            break;
          default:
            return fail(pc, "unknown JMP opcode");
        }
        break;
      case BPF_RET:
        if (in.code != (BPF_RET | BPF_K) && in.code != (BPF_RET | BPF_A))
          return fail(pc, "unknown RET opcode");
        break;
      case BPF_MISC:
        if (in.code != (BPF_MISC | BPF_TAX) && in.code != (BPF_MISC | BPF_TXA))
          return fail(pc, "unknown MISC opcode");
        break;
      default:
        return fail(pc, "unknown instruction class");
    }
  }

  if (prog.back().insn_class() != BPF_RET)
    return fail(static_cast<int>(len) - 1, "program must end with RET");
  return CheckResult{true, {}, -1};
}

std::string disasm(const SockFilter& in) {
  char buf[96];
  int n = -1;
  const char* sz = in.size_field() == BPF_H   ? "h"
                   : in.size_field() == BPF_B ? "b"
                                              : "";
  switch (in.insn_class()) {
    case BPF_LD:
    case BPF_LDX: {
      const char* reg = in.insn_class() == BPF_LDX ? "ldx" : "ld";
      switch (in.mode_field()) {
        case BPF_IMM:
          n = std::snprintf(buf, sizeof buf, "%s #0x%x", reg, in.k);
          break;
        case BPF_ABS:
          n = std::snprintf(buf, sizeof buf, "%s%s [%u]", reg, sz, in.k);
          break;
        case BPF_IND:
          n = std::snprintf(buf, sizeof buf, "%s%s [x + %u]", reg, sz, in.k);
          break;
        case BPF_MEM:
          n = std::snprintf(buf, sizeof buf, "%s M[%u]", reg, in.k);
          break;
        case BPF_LEN:
          n = std::snprintf(buf, sizeof buf, "%s #pktlen", reg);
          break;
        case BPF_MSH:
          n = std::snprintf(buf, sizeof buf, "ldxb 4*([%u]&0xf)", in.k);
          break;
      }
      break;
    }
    case BPF_ST:
      n = std::snprintf(buf, sizeof buf, "st M[%u]", in.k);
      break;
    case BPF_STX:
      n = std::snprintf(buf, sizeof buf, "stx M[%u]", in.k);
      break;
    case BPF_ALU: {
      const char* op = nullptr;
      switch (in.alu_op()) {
        case BPF_ADD: op = "add"; break;
        case BPF_SUB: op = "sub"; break;
        case BPF_MUL: op = "mul"; break;
        case BPF_DIV: op = "div"; break;
        case BPF_OR:  op = "or"; break;
        case BPF_AND: op = "and"; break;
        case BPF_LSH: op = "lsh"; break;
        case BPF_RSH: op = "rsh"; break;
        case BPF_MOD: op = "mod"; break;
        case BPF_XOR: op = "xor"; break;
        case BPF_NEG:
          n = std::snprintf(buf, sizeof buf, "neg");
          break;
      }
      if (op != nullptr) {
        n = in.uses_x() ? std::snprintf(buf, sizeof buf, "%s x", op)
                        : std::snprintf(buf, sizeof buf, "%s #0x%x", op, in.k);
      }
      break;
    }
    case BPF_JMP: {
      if (in.code == (BPF_JMP | BPF_JA)) {
        n = std::snprintf(buf, sizeof buf, "ja +%u", in.k);
        break;
      }
      const char* op = nullptr;
      switch (in.jmp_op()) {
        case BPF_JEQ: op = "jeq"; break;
        case BPF_JGT: op = "jgt"; break;
        case BPF_JGE: op = "jge"; break;
        case BPF_JSET: op = "jset"; break;
      }
      if (op != nullptr) {
        n = in.uses_x()
                ? std::snprintf(buf, sizeof buf, "%s x jt %u jf %u", op, in.jt,
                                in.jf)
                : std::snprintf(buf, sizeof buf, "%s #0x%x jt %u jf %u", op,
                                in.k, in.jt, in.jf);
      }
      break;
    }
    case BPF_RET:
      n = (in.code & BPF_A) ? std::snprintf(buf, sizeof buf, "ret a")
                            : std::snprintf(buf, sizeof buf, "ret #%u", in.k);
      break;
    case BPF_MISC:
      n = std::snprintf(buf, sizeof buf,
                        (in.code & BPF_TXA) ? "txa" : "tax");
      break;
  }
  if (n < 0) n = std::snprintf(buf, sizeof buf, "unimp 0x%x", in.code);
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

std::string disasm(const std::vector<SockFilter>& prog) {
  std::string out;
  out.reserve(prog.size() * 32);
  char head[32];
  for (std::size_t i = 0; i < prog.size(); ++i) {
    std::snprintf(head, sizeof head, "(%03zu) ", i);
    out += head;
    out += disasm(prog[i]);
    out += '\n';
  }
  return out;
}

}  // namespace srv6bpf::cbpf
