// Classic BPF ("cBPF"): the original Berkeley Packet Filter instruction set
// of McCanne & Jacobson (1993), still the wire format userspace hands to
// SO_ATTACH_FILTER and the output format of `tcpdump -ddd`.
//
// A classic program is an array of fixed-size 64-bit instructions operating
// on a 32-bit accumulator A, a 32-bit index register X, and 16 scratch words
// M[0..15]. Packets are read through the legacy BPF_ABS / BPF_IND addressing
// modes; the program returns an unsigned 32-bit "accept length" (0 = drop).
// The kernel never executes this form directly anymore: it validates it
// (bpf_check_classic) and translates it to eBPF (bpf_convert_filter). This
// module reproduces both, plus a reference interpreter used as the oracle
// for the translator differential test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srv6bpf::cbpf {

// ---- Instruction classes (low 3 bits of code) -------------------------------
inline constexpr std::uint16_t BPF_LD = 0x00;   // load into A
inline constexpr std::uint16_t BPF_LDX = 0x01;  // load into X
inline constexpr std::uint16_t BPF_ST = 0x02;   // M[k] = A
inline constexpr std::uint16_t BPF_STX = 0x03;  // M[k] = X
inline constexpr std::uint16_t BPF_ALU = 0x04;  // A = A op (k | X)
inline constexpr std::uint16_t BPF_JMP = 0x05;  // forward-only jumps
inline constexpr std::uint16_t BPF_RET = 0x06;  // return accept length
inline constexpr std::uint16_t BPF_MISC = 0x07; // TAX / TXA

// ---- Size field for LD/LDX (bits 3-4) ---------------------------------------
inline constexpr std::uint16_t BPF_W = 0x00;  // 4 bytes
inline constexpr std::uint16_t BPF_H = 0x08;  // 2 bytes
inline constexpr std::uint16_t BPF_B = 0x10;  // 1 byte

// ---- Mode field for LD/LDX (bits 5-7) ---------------------------------------
inline constexpr std::uint16_t BPF_IMM = 0x00;  // A/X = k
inline constexpr std::uint16_t BPF_ABS = 0x20;  // A = pkt[k], big-endian
inline constexpr std::uint16_t BPF_IND = 0x40;  // A = pkt[X + k], big-endian
inline constexpr std::uint16_t BPF_MEM = 0x60;  // A/X = M[k]
inline constexpr std::uint16_t BPF_LEN = 0x80;  // A/X = packet length
inline constexpr std::uint16_t BPF_MSH = 0xa0;  // X = 4 * (pkt[k] & 0xf)

// ---- ALU operations (bits 4-7) ----------------------------------------------
inline constexpr std::uint16_t BPF_ADD = 0x00;
inline constexpr std::uint16_t BPF_SUB = 0x10;
inline constexpr std::uint16_t BPF_MUL = 0x20;
inline constexpr std::uint16_t BPF_DIV = 0x30;
inline constexpr std::uint16_t BPF_OR = 0x40;
inline constexpr std::uint16_t BPF_AND = 0x50;
inline constexpr std::uint16_t BPF_LSH = 0x60;
inline constexpr std::uint16_t BPF_RSH = 0x70;
inline constexpr std::uint16_t BPF_NEG = 0x80;
inline constexpr std::uint16_t BPF_MOD = 0x90;
inline constexpr std::uint16_t BPF_XOR = 0xa0;

// ---- JMP operations (bits 4-7); all compare A, all jump forward -------------
inline constexpr std::uint16_t BPF_JA = 0x00;
inline constexpr std::uint16_t BPF_JEQ = 0x10;
inline constexpr std::uint16_t BPF_JGT = 0x20;
inline constexpr std::uint16_t BPF_JGE = 0x30;
inline constexpr std::uint16_t BPF_JSET = 0x40;

// Source operand (bit 3): K = immediate, X = index register.
inline constexpr std::uint16_t BPF_K = 0x00;
inline constexpr std::uint16_t BPF_X = 0x08;
// RET source (bits 3-4): RET|K returns k, RET|A returns the accumulator.
inline constexpr std::uint16_t BPF_A = 0x10;

// ---- MISC operations (bit 7) ------------------------------------------------
inline constexpr std::uint16_t BPF_TAX = 0x00;  // X = A
inline constexpr std::uint16_t BPF_TXA = 0x80;  // A = X

inline constexpr int kMemWords = 16;     // scratch words M[0..15]
inline constexpr int kMaxInsns = 4096;   // BPF_MAXINSNS

// One classic BPF instruction, bit-for-bit the kernel's `struct sock_filter`.
struct SockFilter {
  std::uint16_t code = 0;
  std::uint8_t jt = 0;   // jump-true offset (pc += jt + 1)
  std::uint8_t jf = 0;   // jump-false offset
  std::uint32_t k = 0;   // generic multiuse field

  constexpr std::uint16_t insn_class() const noexcept { return code & 0x07; }
  constexpr std::uint16_t size_field() const noexcept { return code & 0x18; }
  constexpr std::uint16_t mode_field() const noexcept { return code & 0xe0; }
  constexpr std::uint16_t alu_op() const noexcept { return code & 0xf0; }
  constexpr std::uint16_t jmp_op() const noexcept { return code & 0xf0; }
  constexpr bool uses_x() const noexcept { return code & BPF_X; }

  friend constexpr bool operator==(const SockFilter&,
                                   const SockFilter&) = default;
};

static_assert(sizeof(SockFilter) == 8, "sock_filter is 64 bits on the wire");

// Convenience constructors matching the classic BPF_STMT / BPF_JUMP macros.
constexpr SockFilter stmt(std::uint16_t code, std::uint32_t k) noexcept {
  return SockFilter{code, 0, 0, k};
}
constexpr SockFilter jump(std::uint16_t code, std::uint32_t k, std::uint8_t jt,
                          std::uint8_t jf) noexcept {
  return SockFilter{code, jt, jf, k};
}

// Byte width of an ABS/IND packet load.
constexpr unsigned load_size(std::uint16_t size_field) noexcept {
  switch (size_field) {
    case BPF_W: return 4;
    case BPF_H: return 2;
    case BPF_B: return 1;
  }
  return 0;
}

// Static validation, mirroring the kernel's bpf_check_classic: every opcode
// must be one the translator knows, jumps must stay forward and in range,
// scratch indices must be < 16, constant shifts < 32, constant divisors
// nonzero, and the last instruction must be a RET.
struct CheckResult {
  bool ok = false;
  std::string error;   // empty on success
  int error_insn = -1; // instruction index the error refers to
};

CheckResult check(const std::vector<SockFilter>& prog);

// Disassemble one instruction / a whole program in the style of `tcpdump -d`
// (e.g. "ld [12]", "jeq #0x86dd jt 2 jf 5", "ret #65535").
std::string disasm(const SockFilter& insn);
std::string disasm(const std::vector<SockFilter>& prog);

}  // namespace srv6bpf::cbpf
