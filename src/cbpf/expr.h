// tcpdump-style filter expressions compiled to classic BPF.
//
// The pipeline mirrors libpcap: a lexer and recursive-descent parser build a
// tiny AST, then code generation walks it with (true, false) continuation
// labels, emitting classic BPF through a label-resolving mini-assembler.
// The resulting program returns 65535 (accept whole packet) on match and 0
// (drop) otherwise — feed it to translate() and it runs on any engine.
//
// Grammar (packets in this simulator are raw IPv6, no link-layer header):
//
//   expr   := term ("or" term)*
//   term   := factor ("and" factor)*
//   factor := "not" factor | "(" expr ")" | primitive
//   primitive :=
//       "ip6"                       version nibble == 6
//     | "udp" | "tcp" | "icmp6"    transport protocol after ext headers
//     | "proto" NUM                 explicit transport protocol number
//     | "srh"                       an SRv6/routing extension header present
//     | [dir] "host" ADDR           outer src/dst address equals ADDR
//     | [dir] "net" PREFIX          outer src/dst address within PREFIX
//     | [dir] "port" NUM            UDP/TCP source/destination port
//     | "greater" NUM | "less" NUM  packet length >= / <= NUM
//   dir := "src" | "dst"            (omitted: match either side)
//
// Transport-layer primitives see through IPv6 extension headers: the
// generated prologue walks up to four chained headers (hop-by-hop, routing —
// the SRH —, destination options, and IPv6-in-IPv6 encapsulation) with
// classic BPF_IND loads, leaving the transport offset in M[0], the transport
// protocol in M[1], and an SRH-seen flag in M[4]. That is what lets a single
// `filter("udp and dst port 7001")` match both plain UDP and the paper's
// SRH-encapsulated monitoring traffic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cbpf/insn.h"

namespace srv6bpf::cbpf {

struct CompileResult {
  bool ok = false;
  std::string error;              // parse/codegen diagnostics
  std::vector<SockFilter> insns;  // classic program (empty on failure)
};

CompileResult compile(std::string_view expr);

}  // namespace srv6bpf::cbpf
