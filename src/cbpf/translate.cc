#include "cbpf/translate.h"

#include <cstddef>

#include "ebpf/helpers.h"
#include "ebpf/skb.h"

namespace srv6bpf::cbpf {

namespace {

namespace e = srv6bpf::ebpf;

// Stack layout of the translated frame (fp-relative byte offsets).
constexpr std::int16_t kScratchOff = -72;  // bpf_skb_load_bytes target
constexpr std::int16_t mem_off(std::uint32_t k) {
  return static_cast<std::int16_t>(-64 + 4 * static_cast<int>(k));
}

// Direct packet loads encode the offset in the 16-bit off field; anything
// beyond that (or runtime-computed) goes through the helper.
constexpr std::uint32_t kDirectAbsLimit = 0x7fff;

e::Insn insn(std::uint8_t opcode, int dst, int src, std::int16_t off,
             std::int32_t imm) {
  e::Insn i;
  i.opcode = opcode;
  i.dst = static_cast<std::uint8_t>(dst) & 0xf;
  i.src = static_cast<std::uint8_t>(src) & 0xf;
  i.off = off;
  i.imm = imm;
  return i;
}

std::uint8_t ebpf_size(std::uint16_t cbpf_size) {
  switch (cbpf_size) {
    case BPF_W: return e::BPF_W;
    case BPF_H: return e::BPF_H;
    default: return e::BPF_B;
  }
}

class Emitter {
 public:
  void mov64_reg(int dst, int src) {
    out.push_back(insn(e::BPF_ALU64 | e::BPF_MOV | e::BPF_X, dst, src, 0, 0));
  }
  void add64_imm(int dst, std::int32_t imm) {
    out.push_back(insn(e::BPF_ALU64 | e::BPF_ADD | e::BPF_K, dst, 0, 0, imm));
  }
  void mov32_imm(int dst, std::int32_t imm) {
    out.push_back(insn(e::BPF_ALU | e::BPF_MOV | e::BPF_K, dst, 0, 0, imm));
  }
  void mov32_reg(int dst, int src) {
    out.push_back(insn(e::BPF_ALU | e::BPF_MOV | e::BPF_X, dst, src, 0, 0));
  }
  void alu32_imm(std::uint8_t op, int dst, std::int32_t imm) {
    out.push_back(insn(e::BPF_ALU | op | e::BPF_K, dst, 0, 0, imm));
  }
  void alu32_reg(std::uint8_t op, int dst, int src) {
    out.push_back(insn(e::BPF_ALU | op | e::BPF_X, dst, src, 0, 0));
  }
  void neg32(int dst) {
    out.push_back(insn(e::BPF_ALU | e::BPF_NEG, dst, 0, 0, 0));
  }
  void ldx(std::uint8_t sz, int dst, int src, std::int16_t off) {
    out.push_back(insn(e::BPF_LDX | e::BPF_MEM | sz, dst, src, off, 0));
  }
  void stx_w(int dst, std::int16_t off, int src) {
    out.push_back(insn(e::BPF_STX | e::BPF_MEM | e::BPF_W, dst, src, off, 0));
  }
  void st_w(int dst, std::int16_t off, std::int32_t imm) {
    out.push_back(insn(e::BPF_ST | e::BPF_MEM | e::BPF_W, dst, 0, off, imm));
  }
  void to_be(int dst, std::int32_t bits) {
    out.push_back(insn(e::BPF_ALU | e::BPF_END | e::BPF_TO_BE, dst, 0, 0,
                       bits));
  }
  void call(std::int32_t helper_id) {
    out.push_back(insn(e::BPF_JMP | e::BPF_CALL, 0, 0, 0, helper_id));
  }
  void exit() { out.push_back(insn(e::BPF_JMP | e::BPF_EXIT, 0, 0, 0, 0)); }

  // Jumps carry unresolved targets; off is patched in a second pass.
  void ja_to(std::uint32_t cbpf_pc) {
    fixups.push_back({out.size(), cbpf_pc});
    out.push_back(insn(e::BPF_JMP | e::BPF_JA, 0, 0, 0, 0));
  }
  void jmp32_imm_to(std::uint8_t op, int dst, std::int32_t imm,
                    std::uint32_t cbpf_pc) {
    fixups.push_back({out.size(), cbpf_pc});
    out.push_back(insn(e::BPF_JMP32 | op | e::BPF_K, dst, 0, 0, imm));
  }
  void jmp32_reg_to(std::uint8_t op, int dst, int src,
                    std::uint32_t cbpf_pc) {
    fixups.push_back({out.size(), cbpf_pc});
    out.push_back(insn(e::BPF_JMP32 | op | e::BPF_X, dst, src, 0, 0));
  }
  // Jump to the shared drop epilogue (packet-load fault, div-by-zero-X).
  void jmp_drop(std::uint8_t cls, std::uint8_t op, int dst, int src,
                std::int32_t imm) {
    drop_fixups.push_back(out.size());
    out.push_back(insn(cls | op | (src >= 0 ? e::BPF_X : e::BPF_K), dst,
                       src >= 0 ? src : 0, 0, imm));
  }

  struct Fixup {
    std::size_t idx;
    std::uint32_t cbpf_target;
  };
  std::vector<e::Insn> out;
  std::vector<Fixup> fixups;
  std::vector<std::size_t> drop_fixups;
};

// Bounds-checked direct load of `size` bytes at constant offset k into
// `dst`, in network order. Clobbers R1-R3.
void emit_abs_load(Emitter& em, std::uint32_t k, std::uint16_t size_field,
                   int dst) {
  const unsigned size = load_size(size_field);
  em.ldx(e::BPF_DW, e::R1, e::R6, e::skb_off::kData);
  em.ldx(e::BPF_DW, e::R2, e::R6, e::skb_off::kDataEnd);
  em.mov64_reg(e::R3, e::R1);
  em.add64_imm(e::R3, static_cast<std::int32_t>(k + size));
  // if (data + k + size > data_end) goto drop;
  em.jmp_drop(e::BPF_JMP, e::BPF_JGT, e::R3, e::R2, 0);
  em.ldx(ebpf_size(size_field), dst, e::R1, static_cast<std::int16_t>(k));
  if (size == 2) em.to_be(dst, 16);
  if (size == 4) em.to_be(dst, 32);
}

// Helper-based load for runtime-computed offsets (IND/MSH) and constant
// offsets too large for the 16-bit off field. `x_plus_k` selects X+k vs k
// as the offset. Clobbers R1-R5 (the call does), loads into `dst`.
void emit_helper_load(Emitter& em, std::uint32_t k, std::uint16_t size_field,
                      int dst, bool x_plus_k) {
  const unsigned size = load_size(size_field);
  em.mov64_reg(e::R1, e::R6);
  if (x_plus_k) {
    em.mov32_reg(e::R2, e::R8);
    if (k != 0)
      em.alu32_imm(e::BPF_ADD, e::R2, static_cast<std::int32_t>(k));
  } else {
    em.mov32_imm(e::R2, static_cast<std::int32_t>(k));
  }
  em.mov64_reg(e::R3, e::R10);
  em.add64_imm(e::R3, kScratchOff);
  em.mov32_imm(e::R4, static_cast<std::int32_t>(size));
  em.call(e::helper::SKB_LOAD_BYTES);
  // if (ret != 0) goto drop;  (classic semantics: failed load drops)
  em.jmp_drop(e::BPF_JMP, e::BPF_JNE, e::R0, -1, 0);
  em.ldx(ebpf_size(size_field), dst, e::R10, kScratchOff);
  if (size == 2) em.to_be(dst, 16);
  if (size == 4) em.to_be(dst, 32);
}

void emit_pkt_load(Emitter& em, std::uint32_t k, std::uint16_t size_field,
                   int dst, bool x_plus_k) {
  const unsigned size = load_size(size_field);
  if (!x_plus_k && k + size <= kDirectAbsLimit)
    emit_abs_load(em, k, size_field, dst);
  else
    emit_helper_load(em, k, size_field, dst, x_plus_k);
}

}  // namespace

TranslateResult translate(const std::vector<SockFilter>& prog) {
  TranslateResult res;
  CheckResult chk = check(prog);
  if (!chk.ok) {
    res.error = "classic check failed at insn " +
                std::to_string(chk.error_insn) + ": " + chk.error;
    return res;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(prog.size());

  // Classic programs may contain dead code (the kernel tolerates it; our
  // eBPF verifier rejects unreachable instructions), so translate only the
  // reachable subset. Jumps are forward-only: one ascending pass suffices.
  std::vector<bool> reach(len, false);
  reach[0] = true;
  for (std::uint32_t pc = 0; pc < len; ++pc) {
    if (!reach[pc]) continue;
    const SockFilter& in = prog[pc];
    if (in.insn_class() == BPF_RET) continue;
    if (in.insn_class() == BPF_JMP) {
      if (in.code == (BPF_JMP | BPF_JA)) {
        reach[pc + 1 + in.k] = true;
      } else {
        reach[pc + 1 + in.jt] = true;
        reach[pc + 1 + in.jf] = true;
      }
      continue;
    }
    reach[pc + 1] = true;
  }

  Emitter em;

  // Prologue: save ctx, zero A and X (classic semantics), and zero every
  // scratch slot the program reads so the verifier's no-read-before-write
  // stack rule is satisfied and semantics match the zero-initialised M[] of
  // the reference interpreter.
  em.mov64_reg(e::R6, e::R1);
  em.mov32_imm(e::R7, 0);
  em.mov32_imm(e::R8, 0);
  bool mem_read[kMemWords] = {};
  for (std::uint32_t pc = 0; pc < len; ++pc) {
    if (!reach[pc]) continue;
    const SockFilter& in = prog[pc];
    if ((in.insn_class() == BPF_LD || in.insn_class() == BPF_LDX) &&
        in.mode_field() == BPF_MEM)
      mem_read[in.k] = true;
  }
  for (int m = 0; m < kMemWords; ++m)
    if (mem_read[m]) em.st_w(e::R10, mem_off(m), 0);

  // eBPF index each (reachable) classic instruction starts at.
  std::vector<std::size_t> pos(len, 0);

  for (std::uint32_t pc = 0; pc < len; ++pc) {
    if (!reach[pc]) continue;
    pos[pc] = em.out.size();
    const SockFilter& in = prog[pc];
    switch (in.insn_class()) {
      case BPF_LD:
        switch (in.mode_field()) {
          case BPF_IMM:
            em.mov32_imm(e::R7, static_cast<std::int32_t>(in.k));
            break;
          case BPF_MEM:
            em.ldx(e::BPF_W, e::R7, e::R10, mem_off(in.k));
            break;
          case BPF_LEN:
            em.ldx(e::BPF_W, e::R7, e::R6, e::skb_off::kLen);
            break;
          case BPF_ABS:
            emit_pkt_load(em, in.k, in.size_field(), e::R7, false);
            break;
          case BPF_IND:
            emit_pkt_load(em, in.k, in.size_field(), e::R7, true);
            break;
        }
        break;
      case BPF_LDX:
        switch (in.mode_field()) {
          case BPF_IMM:
            em.mov32_imm(e::R8, static_cast<std::int32_t>(in.k));
            break;
          case BPF_MEM:
            em.ldx(e::BPF_W, e::R8, e::R10, mem_off(in.k));
            break;
          case BPF_LEN:
            em.ldx(e::BPF_W, e::R8, e::R6, e::skb_off::kLen);
            break;
          case BPF_MSH:
            // X = 4 * (pkt[k] & 0xf) — the IP header-length idiom.
            emit_pkt_load(em, in.k, BPF_B, e::R8, false);
            em.alu32_imm(e::BPF_AND, e::R8, 0xf);
            em.alu32_imm(e::BPF_LSH, e::R8, 2);
            break;
        }
        break;
      case BPF_ST:
        em.stx_w(e::R10, mem_off(in.k), e::R7);
        break;
      case BPF_STX:
        em.stx_w(e::R10, mem_off(in.k), e::R8);
        break;
      case BPF_ALU: {
        const std::uint16_t op = in.alu_op();
        if (op == BPF_NEG) {
          em.neg32(e::R7);
          break;
        }
        // cBPF and eBPF share the ALU opcode numbering; 32-bit class gives
        // the unsigned-32 semantics classic filters expect (including the
        // 5-bit shift mask).
        const std::uint8_t eop = static_cast<std::uint8_t>(op);
        if (in.uses_x()) {
          if (op == BPF_DIV || op == BPF_MOD) {
            // Classic division by zero returns 0 from the filter; eBPF's
            // div-by-zero yields 0 / leaves dst — guard explicitly.
            em.jmp_drop(e::BPF_JMP32, e::BPF_JEQ, e::R8, -1, 0);
          }
          em.alu32_reg(eop, e::R7, e::R8);
        } else {
          em.alu32_imm(eop, e::R7, static_cast<std::int32_t>(in.k));
        }
        break;
      }
      case BPF_JMP: {
        if (in.code == (BPF_JMP | BPF_JA)) {
          em.ja_to(pc + 1 + in.k);
          break;
        }
        const std::uint32_t t_true = pc + 1 + in.jt;
        const std::uint32_t t_false = pc + 1 + in.jf;
        if (in.jt == in.jf) {
          em.ja_to(t_true);
          break;
        }
        // Classic compares map 1:1 onto eBPF JMP32 opcodes (same numbering
        // for JEQ/JGT/JGE/JSET); JEQ/JGT/JGE have inverses, JSET does not.
        const std::uint8_t eop = static_cast<std::uint8_t>(in.jmp_op());
        std::uint8_t inv = 0;
        switch (eop) {
          case e::BPF_JEQ: inv = e::BPF_JNE; break;
          case e::BPF_JGT: inv = e::BPF_JLE; break;
          case e::BPF_JGE: inv = e::BPF_JLT; break;
        }
        const auto emit_cond = [&](std::uint8_t op, std::uint32_t target) {
          if (in.uses_x())
            em.jmp32_reg_to(op, e::R7, e::R8, target);
          else
            em.jmp32_imm_to(op, e::R7, static_cast<std::int32_t>(in.k),
                            target);
        };
        if (in.jf == 0) {
          emit_cond(eop, t_true);
        } else if (in.jt == 0 && inv != 0) {
          emit_cond(inv, t_false);
        } else {
          emit_cond(eop, t_true);
          em.ja_to(t_false);
        }
        break;
      }
      case BPF_RET:
        if (in.code & BPF_A)
          em.mov32_reg(e::R0, e::R7);
        else
          em.mov32_imm(e::R0, static_cast<std::int32_t>(in.k));
        em.exit();
        break;
      case BPF_MISC:
        if (in.code & BPF_TXA)
          em.mov32_reg(e::R7, e::R8);
        else
          em.mov32_reg(e::R8, e::R7);
        break;
    }
  }

  // Shared drop epilogue, only if something jumps to it.
  std::size_t drop_pos = em.out.size();
  if (!em.drop_fixups.empty()) {
    em.mov32_imm(e::R0, 0);
    em.exit();
  }

  if (em.out.size() > static_cast<std::size_t>(e::kMaxInsns)) {
    res.error = "translated program exceeds eBPF instruction limit";
    return res;
  }

  for (const Emitter::Fixup& f : em.fixups) {
    em.out[f.idx].off =
        static_cast<std::int16_t>(pos[f.cbpf_target] - f.idx - 1);
  }
  for (std::size_t idx : em.drop_fixups)
    em.out[idx].off = static_cast<std::int16_t>(drop_pos - idx - 1);

  res.ok = true;
  res.insns = std::move(em.out);
  return res;
}

}  // namespace srv6bpf::cbpf
