// cBPF → eBPF translation, modeled on the kernel's bpf_convert_filter().
//
// The emitted program is ordinary eBPF: it passes the existing verifier with
// ProgType::kSocketFilter and runs unmodified on all four engines. Register
// mapping follows the kernel's convention:
//
//   R6 = skb context (saved from R1 in the prologue)
//   R7 = A (accumulator)        R8 = X (index register)
//   M[k] lives on the stack at fp[-64 + 4k]; fp[-72] is an 8-byte scratch
//   buffer for bpf_skb_load_bytes results.
//
// Lowering of the legacy packet-access modes:
//   * BPF_ABS with a small constant offset becomes the canonical verifier
//     bounds-check pattern (data + k + size > data_end -> drop) followed by
//     a direct load and a BPF_END byte-swap to network order.
//   * BPF_IND, BPF_MSH and large-offset BPF_ABS call bpf_skb_load_bytes —
//     the verifier cannot prove direct loads at runtime-computed offsets,
//     which is exactly why the kernel converts them to the helper too.
//   * Division/modulo by X emits an explicit zero guard that jumps to the
//     shared drop epilogue (classic semantics: the filter returns 0).
//
// Classic jumps are forward-only, so the translated program remains a DAG
// and the pre-5.3 no-back-edges verifier rule holds by construction.
#pragma once

#include <string>
#include <vector>

#include "cbpf/insn.h"
#include "ebpf/insn.h"

namespace srv6bpf::cbpf {

struct TranslateResult {
  bool ok = false;
  std::string error;             // empty on success
  std::vector<ebpf::Insn> insns; // the eBPF program (empty on failure)
};

// Validates `prog` (check()) and lowers it to eBPF. The result loads as
// ProgType::kSocketFilter against a SkbCtx whose data/data_end cover the
// packet; R0 on exit is the classic accept length (0 = drop).
TranslateResult translate(const std::vector<SockFilter>& prog);

}  // namespace srv6bpf::cbpf
