#include "cbpf/interp.h"

namespace srv6bpf::cbpf {

namespace {

// Big-endian packet reads with the classic "any failure drops" contract.
bool load_pkt(const std::uint8_t* pkt, std::size_t pkt_len, std::uint32_t off,
              unsigned size, std::uint32_t& out) {
  if (off > pkt_len || size > pkt_len - off) return false;
  const std::uint8_t* p = pkt + off;
  switch (size) {
    case 1: out = p[0]; return true;
    case 2: out = static_cast<std::uint32_t>(p[0]) << 8 | p[1]; return true;
    case 4:
      out = static_cast<std::uint32_t>(p[0]) << 24 |
            static_cast<std::uint32_t>(p[1]) << 16 |
            static_cast<std::uint32_t>(p[2]) << 8 | p[3];
      return true;
  }
  return false;
}

}  // namespace

std::uint32_t run(const std::vector<SockFilter>& prog, const std::uint8_t* pkt,
                  std::size_t pkt_len) {
  std::uint32_t A = 0, X = 0;
  std::uint32_t M[kMemWords] = {};
  const std::uint32_t len = static_cast<std::uint32_t>(pkt_len);

  for (std::size_t pc = 0; pc < prog.size(); ++pc) {
    const SockFilter& in = prog[pc];
    switch (in.code) {
      case BPF_LD | BPF_IMM: A = in.k; break;
      case BPF_LD | BPF_MEM: A = M[in.k]; break;
      case BPF_LD | BPF_W | BPF_LEN: A = len; break;
      case BPF_LD | BPF_W | BPF_ABS:
      case BPF_LD | BPF_H | BPF_ABS:
      case BPF_LD | BPF_B | BPF_ABS:
        if (!load_pkt(pkt, pkt_len, in.k, load_size(in.size_field()), A))
          return 0;
        break;
      case BPF_LD | BPF_W | BPF_IND:
      case BPF_LD | BPF_H | BPF_IND:
      case BPF_LD | BPF_B | BPF_IND:
        if (!load_pkt(pkt, pkt_len, X + in.k, load_size(in.size_field()), A))
          return 0;
        break;
      case BPF_LDX | BPF_IMM: X = in.k; break;
      case BPF_LDX | BPF_MEM: X = M[in.k]; break;
      case BPF_LDX | BPF_W | BPF_LEN: X = len; break;
      case BPF_LDX | BPF_B | BPF_MSH: {
        std::uint32_t b;
        if (!load_pkt(pkt, pkt_len, in.k, 1, b)) return 0;
        X = (b & 0xf) << 2;
        break;
      }
      case BPF_ST: case BPF_ST | BPF_MEM: M[in.k] = A; break;
      case BPF_STX: case BPF_STX | BPF_MEM: M[in.k] = X; break;
      case BPF_RET | BPF_K: return in.k;
      case BPF_RET | BPF_A: return A;
      case BPF_MISC | BPF_TAX: X = A; break;
      case BPF_MISC | BPF_TXA: A = X; break;
      case BPF_JMP | BPF_JA: pc += in.k; break;
      default: {
        if (in.insn_class() == BPF_ALU) {
          const std::uint32_t b = in.uses_x() ? X : in.k;
          switch (in.alu_op()) {
            case BPF_ADD: A += b; break;
            case BPF_SUB: A -= b; break;
            case BPF_MUL: A *= b; break;
            case BPF_DIV:
              if (b == 0) return 0;
              A /= b;
              break;
            case BPF_MOD:
              if (b == 0) return 0;
              A %= b;
              break;
            case BPF_OR: A |= b; break;
            case BPF_AND: A &= b; break;
            case BPF_XOR: A ^= b; break;
            case BPF_LSH: A <<= (b & 31); break;
            case BPF_RSH: A >>= (b & 31); break;
            case BPF_NEG: A = 0 - A; break;
          }
          break;
        }
        // Conditional jump: compare A against k or X, take jt/jf.
        const std::uint32_t b = in.uses_x() ? X : in.k;
        bool taken = false;
        switch (in.jmp_op()) {
          case BPF_JEQ: taken = A == b; break;
          case BPF_JGT: taken = A > b; break;
          case BPF_JGE: taken = A >= b; break;
          case BPF_JSET: taken = (A & b) != 0; break;
        }
        pc += taken ? in.jt : in.jf;
        break;
      }
    }
  }
  return 0;  // unreachable for checked programs (they end in RET)
}

}  // namespace srv6bpf::cbpf
