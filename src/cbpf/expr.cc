#include "cbpf/expr.h"

#include <cctype>
#include <cstdlib>
#include <memory>
#include <optional>

#include "net/ip6.h"

namespace srv6bpf::cbpf {

namespace {

// ---- Scratch-slot convention shared with the header walk --------------------
// M[0] = transport offset, M[1] = transport protocol, M[2]/M[3] = walk
// scratch, M[4] = 1 if a routing (SRH) extension header was seen.
constexpr std::uint32_t kMemXOff = 0;
constexpr std::uint32_t kMemProto = 1;
constexpr std::uint32_t kMemScratchA = 2;
constexpr std::uint32_t kMemScratchB = 3;
constexpr std::uint32_t kMemSrhSeen = 4;

constexpr unsigned kWalkSteps = 4;  // chained ext headers seen through

// ---- Lexer ------------------------------------------------------------------

struct Lexer {
  std::string_view src;
  std::size_t pos = 0;

  // Returns the next token, empty at end. Tokens are parens or maximal runs
  // of address/identifier characters.
  std::string_view next() {
    while (pos < src.size() && std::isspace(static_cast<unsigned char>(src[pos])))
      ++pos;
    if (pos >= src.size()) return {};
    if (src[pos] == '(' || src[pos] == ')') return src.substr(pos++, 1);
    const std::size_t start = pos;
    while (pos < src.size()) {
      const char c = src[pos];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
          c == '.' || c == '/' || c == '_')
        ++pos;
      else
        break;
    }
    if (pos == start) ++pos;  // unknown char: emit it, parser will complain
    return src.substr(start, pos - start);
  }
};

// ---- AST --------------------------------------------------------------------

enum class Dir { kEither, kSrc, kDst };

struct Node {
  enum Kind {
    kOr, kAnd, kNot,
    kIp6, kProto, kSrh, kHost, kNet, kPort, kGreater, kLess,
  } kind;
  std::unique_ptr<Node> a, b;
  Dir dir = Dir::kEither;
  std::uint32_t num = 0;
  net::Ipv6Addr addr{};
  int plen = 128;
};
using NodePtr = std::unique_ptr<Node>;

struct Parser {
  Lexer lex;
  std::string_view tok;
  std::string error;

  void advance() { tok = lex.next(); }
  bool failed() const { return !error.empty(); }
  NodePtr fail(std::string msg) {
    if (error.empty()) error = std::move(msg);
    return nullptr;
  }

  static NodePtr make(Node::Kind k) {
    auto n = std::make_unique<Node>();
    n->kind = k;
    return n;
  }

  std::optional<std::uint32_t> number(std::uint32_t max) {
    if (tok.empty()) return std::nullopt;
    char* end = nullptr;
    const std::string t(tok);
    const unsigned long v = std::strtoul(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0' || v > max) return std::nullopt;
    advance();
    return static_cast<std::uint32_t>(v);
  }

  NodePtr parse_expr() {
    NodePtr n = parse_term();
    while (n && tok == "or") {
      advance();
      NodePtr rhs = parse_term();
      if (!rhs) return nullptr;
      auto o = make(Node::kOr);
      o->a = std::move(n);
      o->b = std::move(rhs);
      n = std::move(o);
    }
    return n;
  }

  NodePtr parse_term() {
    NodePtr n = parse_factor();
    while (n && tok == "and") {
      advance();
      NodePtr rhs = parse_factor();
      if (!rhs) return nullptr;
      auto a = make(Node::kAnd);
      a->a = std::move(n);
      a->b = std::move(rhs);
      n = std::move(a);
    }
    return n;
  }

  NodePtr parse_factor() {
    if (tok == "not") {
      advance();
      NodePtr inner = parse_factor();
      if (!inner) return nullptr;
      auto n = make(Node::kNot);
      n->a = std::move(inner);
      return n;
    }
    if (tok == "(") {
      advance();
      NodePtr inner = parse_expr();
      if (!inner) return nullptr;
      if (tok != ")") return fail("expected ')'");
      advance();
      return inner;
    }
    return parse_primitive();
  }

  NodePtr parse_primitive() {
    if (tok.empty()) return fail("expected a primitive, got end of input");
    Dir dir = Dir::kEither;
    if (tok == "src" || tok == "dst") {
      dir = tok == "src" ? Dir::kSrc : Dir::kDst;
      advance();
    }
    if (tok == "host" || tok == "net") {
      const bool is_net = tok == "net";
      advance();
      if (tok.empty()) return fail("expected an address");
      auto pfx = net::Prefix::parse(tok);
      if (!pfx) return fail("bad IPv6 address/prefix '" + std::string(tok) + "'");
      advance();
      auto n = make(is_net ? Node::kNet : Node::kHost);
      n->dir = dir;
      n->addr = pfx->addr;
      n->plen = is_net ? pfx->len : 128;
      return n;
    }
    if (tok == "port") {
      advance();
      auto v = number(0xffff);
      if (!v) return fail("expected a port number");
      auto n = make(Node::kPort);
      n->dir = dir;
      n->num = *v;
      return n;
    }
    if (dir != Dir::kEither)
      return fail("'src'/'dst' must be followed by host, net or port");
    if (tok == "ip6" || tok == "ipv6") {
      advance();
      return make(Node::kIp6);
    }
    if (tok == "udp" || tok == "tcp" || tok == "icmp6") {
      auto n = make(Node::kProto);
      n->num = tok == "udp"   ? net::kProtoUdp
               : tok == "tcp" ? net::kProtoTcp
                              : net::kProtoIcmp6;
      advance();
      return n;
    }
    if (tok == "proto") {
      advance();
      auto v = number(0xff);
      if (!v) return fail("expected a protocol number");
      auto n = make(Node::kProto);
      n->num = *v;
      return n;
    }
    if (tok == "srh") {
      advance();
      return make(Node::kSrh);
    }
    if (tok == "greater" || tok == "less") {
      const bool greater = tok == "greater";
      advance();
      auto v = number(0xffffffff);
      if (!v) return fail("expected a length");
      auto n = make(greater ? Node::kGreater : Node::kLess);
      n->num = *v;
      return n;
    }
    return fail("unknown primitive '" + std::string(tok) + "'");
  }
};

bool needs_transport(const Node* n) {
  if (n == nullptr) return false;
  switch (n->kind) {
    case Node::kProto:
    case Node::kPort:
    case Node::kSrh:
      return true;
    default:
      return needs_transport(n->a.get()) || needs_transport(n->b.get());
  }
}

// ---- Label-resolving mini-assembler -----------------------------------------

class Masm {
 public:
  static constexpr int kFall = -1;  // "fall through to the next instruction"

  int label() {
    targets_.push_back(-1);
    return static_cast<int>(targets_.size()) - 1;
  }
  void place(int l) { targets_[l] = static_cast<int>(out_.size()); }

  void op(std::uint16_t code, std::uint32_t k) { out_.push_back(stmt(code, k)); }

  // Conditional jump on A: true -> lt, false -> lf (kFall = next insn).
  void jcond(std::uint16_t code, std::uint32_t k, int lt, int lf) {
    relocs_.push_back({out_.size(), lt, lf, false});
    out_.push_back(jump(code, k, 0, 0));
  }
  void ja(int l) {
    relocs_.push_back({out_.size(), l, kFall, true});
    out_.push_back(stmt(BPF_JMP | BPF_JA, 0));
  }

  bool finish(std::vector<SockFilter>& insns, std::string& error) {
    for (const Reloc& r : relocs_) {
      const auto dist = [&](int label) -> long {
        if (label == kFall) return 0;
        return targets_[label] - static_cast<long>(r.idx) - 1;
      };
      const long dt = dist(r.lt), df = dist(r.lf);
      if (dt < 0 || df < 0) {
        error = "internal: backward jump in generated filter";
        return false;
      }
      if (r.is_ja) {
        out_[r.idx].k = static_cast<std::uint32_t>(dt);
        continue;
      }
      if (dt > 255 || df > 255) {
        error = "expression too complex for classic BPF jump offsets";
        return false;
      }
      out_[r.idx].jt = static_cast<std::uint8_t>(dt);
      out_[r.idx].jf = static_cast<std::uint8_t>(df);
    }
    insns = std::move(out_);
    return true;
  }

 private:
  struct Reloc {
    std::size_t idx;
    int lt, lf;
    bool is_ja;
  };
  std::vector<SockFilter> out_;
  std::vector<int> targets_;
  std::vector<Reloc> relocs_;
};

// ---- Extension-header walk prologue -----------------------------------------
//
// Leaves M[0] = transport offset, M[1] = transport protocol, M[4] = SRH
// flag. Entry state per step: A = current next-header value, X = offset of
// the header it describes. Unrolled kWalkSteps times; deeper chains simply
// stop early and the unconsumed protocol number won't match any transport
// primitive, which is also what tcpdump's limited chase does.
void emit_walk(Masm& m) {
  m.op(BPF_LDX | BPF_IMM, net::kIpv6HeaderSize);  // X = 40
  m.op(BPF_LD | BPF_B | BPF_ABS, 6);              // A = next-header field
  const int done = m.label();
  for (unsigned step = 0; step < kWalkSteps; ++step) {
    const int rt = m.label(), ext = m.label(), ip6 = m.label();
    const int next = m.label();
    m.jcond(BPF_JMP | BPF_JEQ | BPF_K, net::kProtoRouting, rt, Masm::kFall);
    m.jcond(BPF_JMP | BPF_JEQ | BPF_K, 0 /*hop-by-hop*/, ext, Masm::kFall);
    m.jcond(BPF_JMP | BPF_JEQ | BPF_K, 60 /*dst options*/, ext, Masm::kFall);
    m.jcond(BPF_JMP | BPF_JEQ | BPF_K, net::kProtoIpv6, ip6, done);
    m.place(rt);  // routing header: note the SRH, then generic ext skip
    m.op(BPF_LD | BPF_IMM, 1);
    m.op(BPF_ST, kMemSrhSeen);
    m.place(ext);  // generic ext header: nh = P[X], size = (P[X+1] + 1) * 8
    m.op(BPF_LD | BPF_B | BPF_IND, 0);
    m.op(BPF_ST, kMemScratchB);                  // M[3] = next proto
    m.op(BPF_LD | BPF_B | BPF_IND, 1);
    m.op(BPF_ALU | BPF_ADD | BPF_K, 1);
    m.op(BPF_ALU | BPF_LSH | BPF_K, 3);          // A = header size
    m.op(BPF_STX, kMemScratchA);                 // M[2] = old offset
    m.op(BPF_MISC | BPF_TAX, 0);                 // X = size
    m.op(BPF_LD | BPF_MEM, kMemScratchA);        // A = old offset
    m.op(BPF_ALU | BPF_ADD | BPF_X, 0);          // A = offset + size
    m.op(BPF_MISC | BPF_TAX, 0);                 // X = new offset
    m.op(BPF_LD | BPF_MEM, kMemScratchB);        // A = next proto
    m.ja(next);
    m.place(ip6);  // IPv6-in-IPv6: nh = P[X+6], inner header at X + 40
    m.op(BPF_LD | BPF_B | BPF_IND, 6);
    m.op(BPF_ST, kMemScratchB);
    m.op(BPF_MISC | BPF_TXA, 0);
    m.op(BPF_ALU | BPF_ADD | BPF_K, net::kIpv6HeaderSize);
    m.op(BPF_MISC | BPF_TAX, 0);
    m.op(BPF_LD | BPF_MEM, kMemScratchB);
    m.place(next);
  }
  m.place(done);
  m.op(BPF_ST, kMemProto);   // M[1] = transport protocol
  m.op(BPF_STX, kMemXOff);   // M[0] = transport offset
}

// ---- Code generation --------------------------------------------------------

class Gen {
 public:
  explicit Gen(Masm& m) : m_(m) {}

  void gen(const Node* n, int lt, int lf) {
    switch (n->kind) {
      case Node::kOr: {
        const int mid = m_.label();
        gen(n->a.get(), lt, mid);
        m_.place(mid);
        gen(n->b.get(), lt, lf);
        return;
      }
      case Node::kAnd: {
        const int mid = m_.label();
        gen(n->a.get(), mid, lf);
        m_.place(mid);
        gen(n->b.get(), lt, lf);
        return;
      }
      case Node::kNot:
        gen(n->a.get(), lf, lt);
        return;
      case Node::kIp6:
        m_.op(BPF_LD | BPF_B | BPF_ABS, 0);
        m_.op(BPF_ALU | BPF_RSH | BPF_K, 4);
        m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, 6, lt, lf);
        return;
      case Node::kProto:
        m_.op(BPF_LD | BPF_MEM, kMemProto);
        m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, n->num, lt, lf);
        return;
      case Node::kSrh:
        m_.op(BPF_LD | BPF_MEM, kMemSrhSeen);
        m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, 1, lt, lf);
        return;
      case Node::kHost:
      case Node::kNet:
        gen_addr(n, lt, lf);
        return;
      case Node::kPort:
        gen_port(n, lt, lf);
        return;
      case Node::kGreater:
        m_.op(BPF_LD | BPF_W | BPF_LEN, 0);
        m_.jcond(BPF_JMP | BPF_JGE | BPF_K, n->num, lt, lf);
        return;
      case Node::kLess:
        m_.op(BPF_LD | BPF_W | BPF_LEN, 0);
        m_.jcond(BPF_JMP | BPF_JGT | BPF_K, n->num, lf, lt);
        return;
    }
  }

 private:
  // One 16-byte address compare against the outer IPv6 header, masked to
  // `plen` bits; src at byte 8, dst at byte 24.
  void match_one(std::uint32_t base, const net::Ipv6Addr& addr, int plen,
                 int lt, int lf) {
    if (plen <= 0) {
      m_.ja(lt);
      return;
    }
    const auto& b = addr.bytes();
    for (int w = 0; w * 32 < plen; ++w) {
      const int bits = std::min(32, plen - w * 32);
      const std::uint32_t word = static_cast<std::uint32_t>(b[w * 4]) << 24 |
                                 static_cast<std::uint32_t>(b[w * 4 + 1]) << 16 |
                                 static_cast<std::uint32_t>(b[w * 4 + 2]) << 8 |
                                 b[w * 4 + 3];
      const std::uint32_t mask =
          bits == 32 ? 0xffffffffu : ~(0xffffffffu >> bits);
      const bool last = (w + 1) * 32 >= plen;
      m_.op(BPF_LD | BPF_W | BPF_ABS, base + 4 * static_cast<std::uint32_t>(w));
      if (bits < 32) m_.op(BPF_ALU | BPF_AND | BPF_K, mask);
      m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, word & mask,
               last ? lt : Masm::kFall, lf);
    }
  }

  void gen_addr(const Node* n, int lt, int lf) {
    constexpr std::uint32_t kSrcOff = 8, kDstOff = 24;
    switch (n->dir) {
      case Dir::kSrc:
        match_one(kSrcOff, n->addr, n->plen, lt, lf);
        return;
      case Dir::kDst:
        match_one(kDstOff, n->addr, n->plen, lt, lf);
        return;
      case Dir::kEither: {
        const int try_dst = m_.label();
        match_one(kSrcOff, n->addr, n->plen, lt, try_dst);
        m_.place(try_dst);
        match_one(kDstOff, n->addr, n->plen, lt, lf);
        return;
      }
    }
  }

  void gen_port(const Node* n, int lt, int lf) {
    // Ports only exist for TCP/UDP; anything else cannot match.
    const int is_l4 = m_.label();
    m_.op(BPF_LD | BPF_MEM, kMemProto);
    m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, net::kProtoTcp, is_l4, Masm::kFall);
    m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, net::kProtoUdp, is_l4, lf);
    m_.place(is_l4);
    m_.op(BPF_LDX | BPF_MEM, kMemXOff);
    if (n->dir == Dir::kSrc || n->dir == Dir::kEither) {
      m_.op(BPF_LD | BPF_H | BPF_IND, 0);
      m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, n->num, lt,
               n->dir == Dir::kSrc ? lf : Masm::kFall);
    }
    if (n->dir == Dir::kDst || n->dir == Dir::kEither) {
      m_.op(BPF_LD | BPF_H | BPF_IND, 2);
      m_.jcond(BPF_JMP | BPF_JEQ | BPF_K, n->num, lt, lf);
    }
  }

  Masm& m_;
};

}  // namespace

CompileResult compile(std::string_view expr) {
  CompileResult res;
  Parser p{Lexer{expr, 0}, {}, {}};
  p.advance();
  NodePtr ast = p.parse_expr();
  if (!ast || p.failed()) {
    res.error = p.failed() ? p.error : "empty expression";
    return res;
  }
  if (!p.tok.empty()) {
    res.error = "trailing input '" + std::string(p.tok) + "'";
    return res;
  }

  Masm m;
  if (needs_transport(ast.get())) emit_walk(m);
  const int lt = m.label(), lf = m.label();
  Gen(m).gen(ast.get(), lt, lf);
  m.place(lt);
  m.op(BPF_RET | BPF_K, 0xffff);  // accept whole packet
  m.place(lf);
  m.op(BPF_RET | BPF_K, 0);       // drop

  if (!m.finish(res.insns, res.error)) return res;
  if (CheckResult chk = check(res.insns); !chk.ok) {
    res.error = "generated filter failed check at insn " +
                std::to_string(chk.error_insn) + ": " + chk.error;
    res.insns.clear();
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace srv6bpf::cbpf
