// InvariantAuditor: conservation and liveness checks over a running
// simulation.
//
// The chaos soak's correctness story is not "the numbers look plausible" but
// "no packet is ever created or destroyed outside the ledger": every packet
// a traffic source *attempted* (sent or refused by the BufferPool cap) and
// every ICMP a router originated must end up delivered, dropped with an
// attributed reason, or demonstrably still in flight — under crashes, link
// cuts, corruption and exhaustion alike. The auditor folds the registered
// sources' counters into that ledger at quiescent points (between run
// windows, when no worker threads are mutating stats) and records a
// violation string for anything that does not balance:
//
//   offered  = sum(source attempted) + sum(node icmp_time_exceeded_sent)
//   consumed = sum(node local_delivered + node total_drops)
//            + sum(link-side drops + drops_link_down)
//   in_flight = offered - consumed   (>= 0 always; == 0 after a drain)
//
// It also asserts clock progress: between two audits of a live workload the
// virtual clock must advance (a stuck clock under PDES means a horizon
// deadlock, which must fail loudly rather than report zeros).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_loop.h"

namespace srv6bpf::sim {

class Link;
class Node;

class InvariantAuditor {
 public:
  // Registers a traffic source's attempted-emission counter (for
  // apps::TrafGen, `[&gen] { return gen.attempted(); }` — a callback keeps
  // this layer free of app headers). Counted on the offered side.
  void add_source(std::function<std::uint64_t()> attempted) {
    sources_.push_back(std::move(attempted));
  }
  void add_node(const Node& node) { nodes_.push_back(&node); }
  void add_link(const Link& link) { links_.push_back(&link); }

  struct Ledger {
    std::uint64_t offered = 0;
    std::uint64_t consumed = 0;
    // Signed: negative means the conservation violation "more packets
    // accounted for than were ever offered" (double counting).
    std::int64_t in_flight = 0;
  };
  Ledger ledger() const;

  // One audit pass at a quiescent instant `now`. Checks conservation
  // (in_flight >= 0) and, from the second audit on, clock progress.
  // `final_drain` additionally requires in_flight == 0 — call it after the
  // sources stopped and the pipeline emptied.
  void audit(TimeNs now, bool final_drain = false);

  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  std::size_t audits_run() const noexcept { return audits_; }

 private:
  std::vector<std::function<std::uint64_t()>> sources_;
  std::vector<const Node*> nodes_;
  std::vector<const Link*> links_;
  std::vector<std::string> violations_;
  std::size_t audits_ = 0;
  TimeNs last_now_ = 0;
};

}  // namespace srv6bpf::sim
