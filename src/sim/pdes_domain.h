// Conservative parallel discrete-event simulation (PDES) across host
// threads.
//
// The topology's nodes partition into *domains*, each with its own
// sim::EventLoop. Intra-domain events (CPU service, local delivery, same-
// domain link hops) run exactly as in the serial simulator. A link whose two
// ends live in different domains becomes a synchronization edge: deliveries
// cross through a lock-free SPSC mailbox (sim/pdes_mailbox.h) carrying the
// sender's provenance stamp, and the link's propagation delay becomes the
// edge's *lookahead* — a promise that no message sent when the source
// domain's clock reads H can arrive before H + lookahead.
//
// Synchronization is the classic null-message/horizon-broadcast scheme
// (Chandy–Misra–Bryant with horizons instead of explicit null messages):
// every domain publishes a monotone horizon H_d = "I will never again send
// anything timestamped < H_d", and each domain may safely execute every
// event strictly below
//
//     LBTS_d = min over inbound edges (src, la):  H_src + la
//
// Because horizons advance even when a domain has nothing to execute (an
// idle domain's horizon jumps straight to its bound), the scheme never
// deadlocks; a zero-lookahead cross-domain edge is rejected at seal time.
//
// Determinism contract (the whole point — see event_loop.h): each domain's
// execution order is ascending (t, key, stamp), and cross-domain messages
// carry stamps allocated from the *sender's* clock and sequence counter. The
// merged order inside every domain is therefore a pure function of the
// simulation for a fixed partition, regardless of worker count, thread
// interleaving, or when mailboxes happen to be drained: N-thread runs are
// bit-identical to the 1-thread run of the same partition. Verified in
// tests/pdes_test.cc against the mc_test golden digests.
//
// Memory-ordering protocol (the one subtle invariant): a consumer reads the
// producer's horizon (acquire) *before* draining the producer's mailbox, and
// the producer pushes into the mailbox (release on the ring cursor) *before*
// publishing a horizon that passes the message (release). So when a consumer
// computes LBTS from a horizon value H, every message timestamped < H + la
// is already visible in the ring — nothing below the executed bound can
// materialize later.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/pdes_mailbox.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Node;
class Link;

class PdesNet {
 public:
  explicit PdesNet(std::uint64_t seed) : seed_(seed) {}

  // Number of domains the topology partitions into. Must be set (>= 1)
  // before seal(); ignored afterwards.
  void set_domain_count(std::size_t p) { domain_count_ = p; }
  std::size_t domain_count() const noexcept { return domains_.size(); }

  // Explicit placement override; nodes without one hash by name.
  void assign(const Node* node, std::uint32_t dom);
  // Placement of `node` (valid for every node after seal; before seal only
  // for explicitly assigned ones — throws otherwise).
  std::uint32_t domain_of(const Node* node) const;

  bool sealed() const noexcept { return sealed_; }

  // Freezes the partition: creates the per-domain loops, rebinds every node
  // and link side into its domain, derives the lookahead edges and mailboxes
  // from cross-domain links, and re-seeds per-side netem RNG streams (the
  // serial simulator's single shared stream would be a data race — and a
  // nondeterminism source — once two domains draw concurrently).
  //
  // `master` (the Network's original loop) must be quiescent: anything
  // scheduled on it before sealing would be stranded. Schedule traffic and
  // churn *after* sealing; apps do the right thing automatically because
  // they schedule via Node::loop(), which seal() repoints.
  //
  // Throws std::logic_error on a non-quiescent master and
  // std::invalid_argument on a cross-domain link with zero propagation
  // delay (zero lookahead cannot make progress conservatively).
  void seal(EventLoop& master, const std::vector<std::unique_ptr<Node>>& nodes,
            const std::vector<std::unique_ptr<Link>>& links);

  // Advances every domain to `t_end` (inclusive, like EventLoop::run_until)
  // on up to `threads` worker threads (clamped to the domain count;
  // 0 means 1). Blocks until all domains reach the bound; every domain
  // loop's clock is left at exactly `t_end`.
  void run_until(TimeNs t_end, std::size_t threads);

  EventLoop& domain_loop(std::uint32_t dom) { return *domains_[dom]->loop; }
  // Total events executed across all domain loops.
  std::uint64_t events_executed() const;
  // Total full-ring encounters across every cross-domain mailbox: the
  // counted face of the backpressure overflow policy (PdesMailbox::push
  // spins, never drops). Non-zero means a ring is undersized for the
  // traffic — a wall-clock problem, never a correctness one.
  std::uint64_t mailbox_overflow_spins() const;

  // The default static partition: FNV-1a over the node name, mod P.
  static std::uint32_t hash_name(const std::string& name, std::size_t p);

 private:
  struct Inbound {
    std::size_t src = 0;       // source domain index
    TimeNs lookahead = 0;      // min prop delay over that pair's links
    PdesMailbox* box = nullptr;
  };
  struct Domain {
    std::unique_ptr<EventLoop> loop;
    std::vector<Inbound> inbound;
    // Published lower bound on this domain's future send timestamps.
    alignas(64) std::atomic<TimeNs> horizon{0};
    bool done = false;  // reached the run window's end (worker-local flag)
  };

  PdesMailbox* mailbox(std::size_t src, std::size_t dst);
  void worker(std::size_t worker_id, std::size_t worker_count, TimeNs t_end);
  bool iterate(Domain& d, TimeNs t_end);

  std::uint64_t seed_;
  std::size_t domain_count_ = 1;
  bool sealed_ = false;
  std::map<const Node*, std::uint32_t> placement_;
  std::vector<std::unique_ptr<Domain>> domains_;
  // Dense (src * P + dst) index of lazily created SPSC rings.
  std::vector<std::unique_ptr<PdesMailbox>> mailboxes_;
  // Per-link-side netem RNG streams; deque for address stability.
  std::deque<Rng> side_rngs_;
  std::atomic<std::size_t> done_count_{0};
};

}  // namespace srv6bpf::sim
