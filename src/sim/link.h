// Point-to-point link: two attachment points, a wire bandwidth, a propagation
// delay, and a netem qdisc on each egress (sim/netem.h).
//
// Each side carries its own execution bindings — an EventLoop, an RNG stream
// for its netem qdisc, and (under parallel PDES runs, sim/pdes_domain.h) an
// optional outbound mailbox. In the serial simulator both sides point at the
// Network's single loop and shared RNG, so nothing changes; PdesNet::seal
// rebinds each side into its node's domain. Egress state (qdisc,
// wire_free_at, stats, carrier replica) is strictly per-side, so the two
// domains sharing a link never touch the same mutable state.
#pragma once

#include <cstdint>

#include "net/burst.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/netem.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Node;
class PdesMailbox;

// Ethernet framing overhead added to every packet on the wire: 14 header +
// 4 FCS + 8 preamble + 12 IPG.
inline constexpr std::size_t kWireOverheadBytes = 38;

class Link {
 public:
  Link(EventLoop& loop, Rng& rng, std::uint64_t bandwidth_bps,
       TimeNs prop_delay_ns);

  // Wires one side to a node interface. Side is 0 or 1.
  void attach(int side, Node* node, int ifindex);

  NetemQdisc& qdisc(int side) { return sides_[side].qdisc; }

  // Enqueues the packet at `from_side`'s egress; delivery to the peer node is
  // scheduled on the event loop. Thin wrapper over transmit_burst.
  void transmit(net::Packet&& pkt, int from_side);

  // Vector transmit: serializes the burst back-to-back on the wire. Each
  // packet enters the qdisc/wire at its own logical timestamp (burst
  // metadata at_ns, clamped to now) — so per-packet wire math is identical
  // to sequential transmit() calls — and the whole burst is delivered to the
  // peer with a single scheduled event at the last packet's arrival, each
  // packet carrying its own arrival time in the metadata. When the peer
  // lives in another PDES domain, the delivery crosses through the side's
  // mailbox instead, stamped with this side's loop provenance.
  void transmit_burst(net::PacketBurst&& burst, int from_side);

  std::uint64_t bandwidth_bps() const noexcept { return bandwidth_bps_; }
  TimeNs prop_delay() const noexcept { return prop_delay_; }

  // ---- failure/churn machinery ----
  // Administrative/physical link state. While down, transmits from either
  // side are dropped at the egress (counted in SideStats::drops_link_down);
  // packets already on the wire still arrive — propagation is not recalled,
  // exactly like a fiber cut behind a long haul. Nodes consult is_up() for
  // fast-reroute (seg6::FrrBackup) before handing a burst to the link.
  // Network::schedule_link_down/up flip this from the event loop.
  //
  // The carrier is replicated per side: each end's domain flips (and reads)
  // only its own replica, so a link cut lands in both domains at the same
  // virtual instant without either thread touching the other's state. The
  // serial simulator flips both replicas in one event; set_up keeps doing
  // exactly that.
  bool is_up() const noexcept { return side_up_[0] && side_up_[1]; }
  void set_up(bool up) noexcept { side_up_[0] = side_up_[1] = up; }
  bool side_up(int side) const noexcept { return side_up_[side]; }
  void set_side_up(int side, bool up) noexcept { side_up_[side] = up; }

  // Bit-corruption fault model (sim/fault_injector.h): while the wall-clock
  // window [from_ns, to_ns) is active, each packet surviving `side`'s egress
  // qdisc/wire stage is independently corrupted with probability `prob` —
  // one uniformly random bit flips (electrical noise on a marginal optic).
  // Draws come from a dedicated per-side stream seeded here, so arming
  // corruption never perturbs the netem stream and existing scenarios
  // replay bit-identically. Corrupted packets still ship — the receiving
  // stack finds the damage (malformed header drop, misrouted prefix, ...)
  // and every outcome stays inside the conservation ledger.
  void set_side_corruption(int side, double prob, TimeNs from_ns, TimeNs to_ns,
                           std::uint64_t seed) {
    Side& s = sides_[side];
    s.corrupt_prob = prob;
    s.corrupt_from = from_ns;
    s.corrupt_to = to_ns;
    s.corrupt_rng = Rng(seed);
  }

  // ---- PDES surface (sim/pdes_domain.h) ----
  Node* side_node(int side) const noexcept { return sides_[side].node; }
  EventLoop& side_loop(int side) noexcept { return *sides_[side].loop; }
  // Rebinds one side's execution context at PdesNet::seal time: the domain
  // loop it schedules on, the RNG stream its qdisc draws from, and the
  // outbound mailbox (null = the peer shares the domain, deliver locally).
  void bind_side(int side, EventLoop& loop, Rng* rng, PdesMailbox* crossing);

  // Egress buffer size (drop-tail). Defaults to 512 KiB; WAN-access links
  // typically configure much less.
  void set_wire_queue_limit(std::uint32_t bytes) noexcept {
    wire_queue_limit_bytes_ = bytes;
  }

  struct SideStats {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t drops = 0;  // egress queue overflow (wire or netem loss)
    std::uint64_t drops_link_down = 0;  // transmit attempted while down
    std::uint64_t corrupted = 0;  // bit-flips injected (packet still shipped)
  };
  const SideStats& stats(int side) const { return sides_[side].stats; }

 private:
  struct Side {
    Node* node = nullptr;
    int ifindex = -1;
    NetemQdisc qdisc;
    TimeNs wire_free_at = 0;
    SideStats stats;
    EventLoop* loop = nullptr;       // this side's scheduling domain
    Rng* rng = nullptr;              // this side's netem stream
    PdesMailbox* crossing = nullptr; // outbound ring when the peer is remote
    // Corruption fault model (set_side_corruption). The stream is owned per
    // side: the side's domain is the only thread drawing from it.
    double corrupt_prob = 0.0;
    TimeNs corrupt_from = 0;
    TimeNs corrupt_to = 0;
    Rng corrupt_rng{0};
  };

  std::uint64_t bandwidth_bps_;
  TimeNs prop_delay_;
  std::uint32_t wire_queue_limit_bytes_ = 512 * 1024;
  bool side_up_[2] = {true, true};
  Side sides_[2];
};

}  // namespace srv6bpf::sim
