// Per-packet CPU cost model.
//
// The paper's throughput figures (Figs. 2 and 3) are CPU-bound: one core of a
// Xeon X3440 forwards 64-byte UDP/SRv6 packets at 610 kpps and every piece of
// extra work (seg6local behaviours, eBPF execution, helpers) shaves packets
// off that rate. We reproduce the *shape* of those results by charging each
// packet a deterministic cost assembled from the ProcessTrace the forwarding
// pipeline records — crucially, the eBPF component is
//   executed_instructions x per-instruction-cost(engine)
// with the instruction counts coming from actually running the programs, so
// program complexity (End's 3 insns vs Add-TLV's ~100) drives the figures.
//
// Calibration anchors (documented in DESIGN.md / EXPERIMENTS.md):
//   * kXeonForwardNs   = 1/610kpps — the paper's §3.2 baseline;
//   * kInterpInsnNs    — chosen so disabling the JIT divides Add-TLV
//     throughput by ~1.8 (§3.2) given Add-TLV's real instruction count;
//   * CPE constants    — chosen so the Fig. 4 goodput curves are CPU-bound
//     at small payloads and line-limited at 1400 bytes, with the kernel
//     decap ~10% more expensive than plain forwarding.
#pragma once

#include <cstdint>

#include "seg6/ctx.h"

namespace srv6bpf::sim {

// Default NAPI-style drain budget per CPU service event (Node::Cpu::rx_burst).
// A simulator-efficiency knob: per-packet charged cost, delivery counts,
// traces and final stats are identical for every burst size (the burst
// differential test enforces this); downstream event timing may shift by up
// to one burst's wire-serialization time (delivery coalescing).
inline constexpr std::size_t kDefaultRxBurst = 32;

struct CpuProfile {
  // Base cost of receiving + routing + transmitting one packet.
  std::uint64_t forward_ns;
  // One static seg6local behaviour execution (SRH validation + advance +
  // rewrite); End.BPF pays this too, for its endpoint part.
  std::uint64_t seg6_op_ns;
  // Extra cost of a FIB lookup beyond the one in forward_ns.
  std::uint64_t fib_lookup_ns;
  // Fixed cost of entering/leaving an eBPF program (ctx setup, call).
  std::uint64_t bpf_entry_ns;
  // Per-executed-instruction cost for each engine.
  double jit_insn_ns;
  double interp_insn_ns;
  // Per helper call (kernel function call + arg marshalling).
  std::uint64_t helper_call_ns;
  // Encapsulation / decapsulation work (header push/pull, memmove).
  std::uint64_t encap_ns;
  std::uint64_t decap_ns;
};

// The paper's lab servers (Intel Xeon X3440, IRQs pinned to one core).
// 610 kpps raw IPv6 forwarding -> 1639 ns/packet.
inline constexpr CpuProfile kXeonProfile{
    .forward_ns = 1639,
    .seg6_op_ns = 210,
    .fib_lookup_ns = 45,
    .bpf_entry_ns = 48,
    .jit_insn_ns = 1.4,
    .interp_insn_ns = 48.0,
    .helper_call_ns = 26,
    .encap_ns = 180,
    .decap_ns = 150,
};

// The Turris Omnia CPE (1.6 GHz dual-core ARMv7, OpenWRT). Slower per packet
// across the board; the eBPF JIT is unavailable (ARM32 JIT bug, §4.2), which
// the hybrid-access benchmarks model by forcing the interpreter.
// The eBPF-path constants are deliberately heavy: the paper observes that
// "the eBPF interpreter, which heavily consumes CPU resources, is the
// bottleneck" on this box — 64-bit interpretation on a 32-bit in-order core
// costs an order of magnitude more per instruction than on the Xeon, and
// helper calls/encap pay for unaligned accesses and small caches. They are
// calibrated so the Figure-4 WRR curve stays CPU-bound until the 1 Gbps line
// takes over at 1400-byte payloads, as in the paper.
inline constexpr CpuProfile kTurrisProfile{
    .forward_ns = 2500,
    .seg6_op_ns = 600,
    .fib_lookup_ns = 120,
    .bpf_entry_ns = 800,
    .jit_insn_ns = 15.0,   // a working ARM32 JIT (projected, see bench_jit)
    .interp_insn_ns = 150.0,
    .helper_call_ns = 700,
    .encap_ns = 1500,
    .decap_ns = 250,
};

// Total CPU time to charge for one packet given what processing it received.
inline std::uint64_t packet_cost_ns(const CpuProfile& p,
                                    const seg6::ProcessTrace& t) {
  double cost = static_cast<double>(p.forward_ns);
  cost += static_cast<double>(t.seg6local_ops) * p.seg6_op_ns;
  cost += static_cast<double>(t.fib_lookups) * p.fib_lookup_ns;
  cost += static_cast<double>(t.bpf_runs) * p.bpf_entry_ns;
  cost += static_cast<double>(t.bpf_insns_jit) * p.jit_insn_ns;
  cost += static_cast<double>(t.bpf_insns_interp) * p.interp_insn_ns;
  cost += static_cast<double>(t.helper_calls) * p.helper_call_ns;
  cost += static_cast<double>(t.encaps) * p.encap_ns;
  cost += static_cast<double>(t.decaps) * p.decap_ns;
  return static_cast<std::uint64_t>(cost);
}

}  // namespace srv6bpf::sim
