#include "sim/invariant_auditor.h"

#include "sim/link.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace srv6bpf::sim {

InvariantAuditor::Ledger InvariantAuditor::ledger() const {
  Ledger l;
  for (const auto& attempted : sources_) l.offered += attempted();
  for (const Node* n : nodes_) {
    const NodeStats s = n->stats();
    l.offered += s.icmp_time_exceeded_sent;
    l.consumed += s.local_delivered + s.total_drops();
  }
  for (const Link* lk : links_)
    for (int side = 0; side < 2; ++side) {
      const Link::SideStats& s = lk->stats(side);
      l.consumed += s.drops + s.drops_link_down;
    }
  l.in_flight = static_cast<std::int64_t>(l.offered) -
                static_cast<std::int64_t>(l.consumed);
  return l;
}

void InvariantAuditor::audit(TimeNs now, bool final_drain) {
  const Ledger l = ledger();
  if (l.in_flight < 0)
    violations_.push_back(
        "conservation: consumed " + std::to_string(l.consumed) +
        " exceeds offered " + std::to_string(l.offered) + " at t=" +
        std::to_string(now));
  if (final_drain && l.in_flight > 0)
    violations_.push_back(
        "drain: " + std::to_string(l.in_flight) +
        " packets unaccounted for after drain at t=" + std::to_string(now));
  if (audits_ > 0 && now <= last_now_)
    violations_.push_back("clock: no progress between audits (t=" +
                          std::to_string(now) + " after t=" +
                          std::to_string(last_now_) + ")");
  last_now_ = now;
  ++audits_;
}

}  // namespace srv6bpf::sim
