#include "sim/latency_tracer.h"

#include <cstdlib>
#include <utility>

namespace srv6bpf::sim {

LatencyTracer::~LatencyTracer() {
  const char* env = std::getenv("SRV6BPF_TRACE_SLO");
  if (env != nullptr && env[0] == '1') dump(stderr);
}

std::size_t LatencyTracer::add_class(std::string name, Matcher matcher) {
  // Explicit classes keep declaration order ahead of any flow-label spread
  // classes already appended.
  const std::size_t idx = explicit_classes_;
  classes_.insert(classes_.begin() + static_cast<std::ptrdiff_t>(idx),
                  Class{std::move(name), std::move(matcher), {}});
  ++explicit_classes_;
  return idx;
}

void LatencyTracer::classify_by_flow_label(std::size_t n,
                                           const std::string& prefix) {
  // Replace any previous spread classes.
  classes_.resize(explicit_classes_);
  label_mod_ = n;
  for (std::size_t i = 0; i < n; ++i)
    classes_.push_back(Class{prefix + std::to_string(i), nullptr, {}});
}

void LatencyTracer::record(const net::Packet& pkt, TimeNs delivered_at) {
  if (pkt.tx_tstamp_ns == 0 || delivered_at < pkt.tx_tstamp_ns) {
    ++untimed_;
    return;
  }
  const std::uint64_t delay = delivered_at - pkt.tx_tstamp_ns;
  overall_.record(delay);

  for (std::size_t i = 0; i < explicit_classes_; ++i) {
    if (classes_[i].matcher(pkt)) {
      classes_[i].hist.record(delay);
      return;
    }
  }
  if (label_mod_ > 0 && pkt.size() >= net::kIpv6HeaderSize) {
    // const_cast: Ipv6View wants a mutable pointer but only reads here.
    const std::uint32_t label =
        net::Ipv6View(const_cast<std::uint8_t*>(pkt.data())).flow_label();
    classes_[explicit_classes_ + label % label_mod_].hist.record(delay);
    return;
  }
  ++unmatched_;
}

void LatencyTracer::reset_samples() {
  for (Class& c : classes_) c.hist.reset();
  overall_.reset();
  unmatched_ = 0;
  untimed_ = 0;
}

void LatencyTracer::dump(std::FILE* out) const {
  auto line = [out](const char* name, const util::HdrHistogram& h) {
    std::fprintf(out,
                 "SLO class=%-12s count=%-10llu p50=%-10llu p99=%-10llu "
                 "p99.9=%-10llu max=%llu ns\n",
                 name, static_cast<unsigned long long>(h.count()),
                 static_cast<unsigned long long>(h.p50()),
                 static_cast<unsigned long long>(h.p99()),
                 static_cast<unsigned long long>(h.p999()),
                 static_cast<unsigned long long>(h.max()));
  };
  for (const Class& c : classes_) line(c.name.c_str(), c.hist);
  line("_overall", overall_);
  if (unmatched_ > 0 || untimed_ > 0)
    std::fprintf(out, "SLO unmatched=%llu untimed=%llu\n",
                 static_cast<unsigned long long>(unmatched_),
                 static_cast<unsigned long long>(untimed_));
}

}  // namespace srv6bpf::sim
