// Counters and measurement helpers shared by nodes, apps and benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_loop.h"

namespace srv6bpf::seg6 {
struct ProcessTrace;
}  // namespace srv6bpf::seg6

namespace srv6bpf::sim {

// Why a packet was dropped on a node — one enumerator per NodeStats drop
// counter. Used to attribute drops to a cause *and* a time: NodeStats keeps
// the timestamp of each reason's first occurrence, which is what lets a
// failover scenario tell "the blackhole opened here" apart from steady-state
// queue pressure.
enum class DropReason : std::size_t {
  kRxQueue = 0,   // CPU backlog overflow (the 610kpps cap)
  kNoRoute,
  kTtl,
  kVerdict,       // seg6local / BPF_DROP / invalid SRH
  kMalformed,
  kLinkDown,      // egress interface's link administratively/physically down
  kNoBuffer,      // BufferPool hard cap: no buffer for a new packet
  kNodeDown,      // node crashed: arrival/emission while the stack is gone
  kCount,
};
inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount);

// Cumulative per-node sums of the per-packet ProcessTrace counters: what the
// datapath did over the node's lifetime, engine-attributed. The burst
// differential test asserts these are identical across burst sizes.
struct PipelineTotals {
  std::uint64_t packets = 0;  // packets that ran the pipeline
  std::uint64_t seg6local_ops = 0;
  std::uint64_t fib_lookups = 0;
  std::uint64_t bpf_runs = 0;
  std::uint64_t bpf_insns_jit = 0;
  std::uint64_t bpf_insns_interp = 0;
  std::uint64_t helper_calls = 0;
  std::uint64_t encaps = 0;
  std::uint64_t decaps = 0;

  friend bool operator==(const PipelineTotals&,
                         const PipelineTotals&) = default;

  PipelineTotals& operator+=(const PipelineTotals& o) {
    packets += o.packets;
    seg6local_ops += o.seg6local_ops;
    fib_lookups += o.fib_lookups;
    bpf_runs += o.bpf_runs;
    bpf_insns_jit += o.bpf_insns_jit;
    bpf_insns_interp += o.bpf_insns_interp;
    helper_calls += o.helper_calls;
    encaps += o.encaps;
    decaps += o.decaps;
    return *this;
  }
};

struct NodeStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t local_delivered = 0;
  std::uint64_t drops_rx_queue = 0;   // CPU backlog overflow (the 610kpps cap)
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_verdict = 0;    // seg6local / BPF_DROP / invalid SRH
  std::uint64_t drops_malformed = 0;
  std::uint64_t drops_link_down = 0;  // egress link was down at transmit
  // Graceful-degradation drops: the BufferPool hard cap refused storage for
  // a new packet (net::BufferPool::set_max_buffers) — the accounted
  // alternative to an alloc storm under exhaustion.
  std::uint64_t drops_no_buffer = 0;
  // Packets that reached (or originated on) a node while it was crashed
  // (Node::crash — the stack, rings and tables were torn down).
  std::uint64_t drops_node_down = 0;
  std::uint64_t icmp_time_exceeded_sent = 0;
  // SRv6 fast-reroute activations: packets steered onto a route's
  // precomputed backup (seg6::FrrBackup) because the primary nexthop's link
  // was down.
  std::uint64_t frr_reroutes = 0;

  // Simulated time of each drop reason's *first* occurrence on this shard
  // (kNeverDropped when the reason never fired). Drops are stamped with the
  // packet's own logical time — wire arrival on the receive path, CPU
  // completion on the transmit path — not the (burst-coalesced) event clock,
  // so the values are burst-invariant like every other counter here.
  static constexpr std::uint64_t kNeverDropped = ~0ull;
  std::uint64_t first_drop_ns[kDropReasonCount] = {
      kNeverDropped, kNeverDropped, kNeverDropped, kNeverDropped,
      kNeverDropped, kNeverDropped, kNeverDropped, kNeverDropped};

  // Bumps the counter for `reason` and records the first-occurrence time.
  void note_drop(DropReason reason, std::uint64_t at_ns) {
    switch (reason) {
      case DropReason::kRxQueue: ++drops_rx_queue; break;
      case DropReason::kNoRoute: ++drops_no_route; break;
      case DropReason::kTtl: ++drops_ttl; break;
      case DropReason::kVerdict: ++drops_verdict; break;
      case DropReason::kMalformed: ++drops_malformed; break;
      case DropReason::kLinkDown: ++drops_link_down; break;
      case DropReason::kNoBuffer: ++drops_no_buffer; break;
      case DropReason::kNodeDown: ++drops_node_down; break;
      case DropReason::kCount: return;
    }
    std::uint64_t& first = first_drop_ns[static_cast<std::size_t>(reason)];
    if (at_ns < first) first = at_ns;
  }
  std::uint64_t first_drop_at(DropReason reason) const noexcept {
    return first_drop_ns[static_cast<std::size_t>(reason)];
  }

  // Burst-pipeline observability. service_events counts CPU service
  // activations (one per drained burst), serviced_packets the packets those
  // events drained — their ratio is the achieved burst occupancy.
  std::uint64_t service_events = 0;
  std::uint64_t serviced_packets = 0;
  PipelineTotals pipeline;

  // Folds one packet's ProcessTrace into `pipeline` (defined in stats.cc to
  // keep the seg6 headers out of this one).
  void account(const seg6::ProcessTrace& t);

  // Shard merge: Node::stats() sums its per-CPU-context shards with this.
  NodeStats& operator+=(const NodeStats& o) {
    rx_packets += o.rx_packets;
    tx_packets += o.tx_packets;
    local_delivered += o.local_delivered;
    drops_rx_queue += o.drops_rx_queue;
    drops_no_route += o.drops_no_route;
    drops_ttl += o.drops_ttl;
    drops_verdict += o.drops_verdict;
    drops_malformed += o.drops_malformed;
    drops_link_down += o.drops_link_down;
    drops_no_buffer += o.drops_no_buffer;
    drops_node_down += o.drops_node_down;
    icmp_time_exceeded_sent += o.icmp_time_exceeded_sent;
    frr_reroutes += o.frr_reroutes;
    service_events += o.service_events;
    serviced_packets += o.serviced_packets;
    pipeline += o.pipeline;
    // First-occurrence folds as a min, which keeps += associative and
    // commutative across shards (kNeverDropped is the identity).
    for (std::size_t i = 0; i < kDropReasonCount; ++i)
      if (o.first_drop_ns[i] < first_drop_ns[i])
        first_drop_ns[i] = o.first_drop_ns[i];
    return *this;
  }

  std::uint64_t total_drops() const noexcept {
    return drops_rx_queue + drops_no_route + drops_ttl + drops_verdict +
           drops_malformed + drops_link_down + drops_no_buffer +
           drops_node_down;
  }
};

// Accumulates packet/byte counts over a measurement window; used by sinks to
// report kpps / goodput exactly the way the paper's figures do.
//
// The timestamped record() overload additionally tracks inter-arrival gaps
// (min/mean/max), so report() can expose burstiness: a min gap far below the
// mean flags microbursts that a window-averaged kpps number hides entirely.
class RateMeter {
 public:
  void record(std::size_t payload_bytes) {
    ++packets_;
    bytes_ += payload_bytes;
  }
  // Timestamped variant: also folds the gap since the previous timestamped
  // arrival into the min/mean/max inter-arrival tracking. `now` must be
  // monotone across calls (it is the sim clock in every current user).
  void record(std::size_t payload_bytes, TimeNs now) {
    record(payload_bytes);
    if (have_last_arrival_) {
      const TimeNs gap = now >= last_arrival_ ? now - last_arrival_ : 0;
      if (gap < min_gap_) min_gap_ = gap;
      if (gap > max_gap_) max_gap_ = gap;
      gap_sum_ += gap;
      ++gap_count_;
    }
    have_last_arrival_ = true;
    last_arrival_ = now;
  }
  void reset() { *this = RateMeter{}; }

  // Window summary: the averaged rates plus the inter-arrival gap spread
  // observed since the last reset (gaps all zero when fewer than two
  // timestamped arrivals were recorded).
  struct Report {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    double pps = 0;
    double kpps = 0;
    double mbps = 0;
    TimeNs min_gap_ns = 0;
    double mean_gap_ns = 0;
    TimeNs max_gap_ns = 0;
  };
  Report report(TimeNs window) const noexcept {
    Report r;
    r.packets = packets_;
    r.bytes = bytes_;
    r.pps = pps(window);
    r.kpps = kpps(window);
    r.mbps = mbps(window);
    if (gap_count_ > 0) {
      r.min_gap_ns = min_gap_;
      r.max_gap_ns = max_gap_;
      r.mean_gap_ns = static_cast<double>(gap_sum_) /
                      static_cast<double>(gap_count_);
    }
    return r;
  }

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t bytes() const noexcept { return bytes_; }

  double pps(TimeNs window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(packets_) * 1e9 /
                             static_cast<double>(window);
  }
  double kpps(TimeNs window) const noexcept { return pps(window) / 1e3; }
  double mbps(TimeNs window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(bytes_) * 8e3 /
                             static_cast<double>(window);
  }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  bool have_last_arrival_ = false;
  TimeNs last_arrival_ = 0;
  TimeNs min_gap_ = ~TimeNs{0};
  TimeNs max_gap_ = 0;
  std::uint64_t gap_sum_ = 0;
  std::uint64_t gap_count_ = 0;
};

}  // namespace srv6bpf::sim
