// Counters and measurement helpers shared by nodes, apps and benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_loop.h"

namespace srv6bpf::seg6 {
struct ProcessTrace;
}  // namespace srv6bpf::seg6

namespace srv6bpf::sim {

// Cumulative per-node sums of the per-packet ProcessTrace counters: what the
// datapath did over the node's lifetime, engine-attributed. The burst
// differential test asserts these are identical across burst sizes.
struct PipelineTotals {
  std::uint64_t packets = 0;  // packets that ran the pipeline
  std::uint64_t seg6local_ops = 0;
  std::uint64_t fib_lookups = 0;
  std::uint64_t bpf_runs = 0;
  std::uint64_t bpf_insns_jit = 0;
  std::uint64_t bpf_insns_interp = 0;
  std::uint64_t helper_calls = 0;
  std::uint64_t encaps = 0;
  std::uint64_t decaps = 0;

  friend bool operator==(const PipelineTotals&,
                         const PipelineTotals&) = default;

  PipelineTotals& operator+=(const PipelineTotals& o) {
    packets += o.packets;
    seg6local_ops += o.seg6local_ops;
    fib_lookups += o.fib_lookups;
    bpf_runs += o.bpf_runs;
    bpf_insns_jit += o.bpf_insns_jit;
    bpf_insns_interp += o.bpf_insns_interp;
    helper_calls += o.helper_calls;
    encaps += o.encaps;
    decaps += o.decaps;
    return *this;
  }
};

struct NodeStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t local_delivered = 0;
  std::uint64_t drops_rx_queue = 0;   // CPU backlog overflow (the 610kpps cap)
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_verdict = 0;    // seg6local / BPF_DROP / invalid SRH
  std::uint64_t drops_malformed = 0;
  std::uint64_t icmp_time_exceeded_sent = 0;

  // Burst-pipeline observability. service_events counts CPU service
  // activations (one per drained burst), serviced_packets the packets those
  // events drained — their ratio is the achieved burst occupancy.
  std::uint64_t service_events = 0;
  std::uint64_t serviced_packets = 0;
  PipelineTotals pipeline;

  // Folds one packet's ProcessTrace into `pipeline` (defined in stats.cc to
  // keep the seg6 headers out of this one).
  void account(const seg6::ProcessTrace& t);

  // Shard merge: Node::stats() sums its per-CPU-context shards with this.
  NodeStats& operator+=(const NodeStats& o) {
    rx_packets += o.rx_packets;
    tx_packets += o.tx_packets;
    local_delivered += o.local_delivered;
    drops_rx_queue += o.drops_rx_queue;
    drops_no_route += o.drops_no_route;
    drops_ttl += o.drops_ttl;
    drops_verdict += o.drops_verdict;
    drops_malformed += o.drops_malformed;
    icmp_time_exceeded_sent += o.icmp_time_exceeded_sent;
    service_events += o.service_events;
    serviced_packets += o.serviced_packets;
    pipeline += o.pipeline;
    return *this;
  }

  std::uint64_t total_drops() const noexcept {
    return drops_rx_queue + drops_no_route + drops_ttl + drops_verdict +
           drops_malformed;
  }
};

// Accumulates packet/byte counts over a measurement window; used by sinks to
// report kpps / goodput exactly the way the paper's figures do.
class RateMeter {
 public:
  void record(std::size_t payload_bytes) {
    ++packets_;
    bytes_ += payload_bytes;
  }
  void reset() { packets_ = bytes_ = 0; }

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t bytes() const noexcept { return bytes_; }

  double pps(TimeNs window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(packets_) * 1e9 /
                             static_cast<double>(window);
  }
  double kpps(TimeNs window) const noexcept { return pps(window) / 1e3; }
  double mbps(TimeNs window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(bytes_) * 8e3 /
                             static_cast<double>(window);
  }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace srv6bpf::sim
