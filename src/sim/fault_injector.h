// FaultInjector: a seeded, declarative fault schedule compiled into event-
// loop events.
//
// The injector exists to make chaos *reproducible*: every stochastic choice
// (backoff jitter, corruption draws) comes from streams seeded at
// construction, and everything time-shaped — when a link cuts, when a
// crashed node's control plane wins its install race — is computed at
// install() time, before the simulation runs. The compiled schedule is
// therefore a pure function of (seed, schedule): the same pair replays
// bit-identically at any PDES thread count, because each event lands in its
// owning domain through the same Network/EventLoop machinery as ordinary
// traffic (per-side carrier replicas flip in their own domains; node-local
// events run on the node's domain loop).
//
// Fault vocabulary:
//   flap(link, down_at, up_at)      — carrier cut + repair at absolute times
//   corrupt(link, side, p, from, to)— per-packet bit-flip probability window
//   crash(node, spec)               — power-fail crash, restart, and a
//                                     control-plane re-installer with
//                                     exponential backoff + jitter + retry cap
//   map_fault(node, id, at, n, err) — arm the next n eBPF map updates to fail
//   cap_buffer_pool(n)              — BufferPool admission cap (this thread)
//
// Crash lifecycle (the degradation ladder tests/chaos_test.cc walks):
//   crash_at:    Node::crash() — rings flush as drops_node_down, contexts
//                reset, FIB/SID/map contents wiped; every attached link's
//                carrier cuts, so neighbors fast-reroute via seg6::FrrBackup
//                or charge drops_link_down.
//   restart_at:  Node::restart() — the box forwards again but the FIB is
//                cold; carrier stays down (graceful-restart shape: ports
//                come up when the routing daemon is ready), so neighbors
//                keep degrading to backup paths instead of blackholing
//                into an empty RIB.
//   attempts:    the re-installer tries at restart_at, then after
//                exponentially growing backoffs (deterministically
//                jittered); the first `install_failures` attempts fail.
//   installed:   the winning attempt restores the config snapshot taken at
//                install() (routes across every table + seg6local SIDs) and
//                raises carrier on every attached link. If the retry cap is
//                hit first the node stays up but isolated (gave_up).
#pragma once

#include <cstdint>
#include <vector>

#include "ebpf/map.h"
#include "sim/event_loop.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Link;
class Network;
class Node;

// Control-plane re-installer retry shape: attempt i+1 happens
// min(base_backoff * multiplier^i, max_backoff) * (1 +/- jitter_frac * u)
// after attempt i fails, for at most max_attempts attempts total.
struct ReinstallPolicy {
  TimeNs base_backoff = 50 * kMilli;
  double multiplier = 2.0;
  TimeNs max_backoff = 2 * kSecond;
  double jitter_frac = 0.1;  // uniform in [-jitter_frac, +jitter_frac]
  std::size_t max_attempts = 8;
};

struct CrashSpec {
  TimeNs crash_at = 0;
  TimeNs restart_at = 0;
  // The first k install attempts fail (a flapping southbound session); the
  // (k+1)-th succeeds if the retry cap allows it.
  std::size_t install_failures = 0;
  ReinstallPolicy policy{};
};

// Precomputed account of one crash: every attempt instant, and when (if
// ever) the config landed. Available right after install() — the whole
// timeline is decided before the simulation runs.
struct OutageReport {
  Node* node = nullptr;
  TimeNs crash_at = 0;
  TimeNs restart_at = 0;
  std::vector<TimeNs> attempt_times;       // first entry == restart_at
  TimeNs installed_at = kTimeInfinity;     // kTimeInfinity when gave_up
  bool gave_up = false;
};

class FaultInjector {
 public:
  FaultInjector(Network& net, std::uint64_t seed);

  // ---- schedule builders (declarative; nothing happens until install) ----
  void flap(Link& link, TimeNs down_at, TimeNs up_at);
  void corrupt(Link& link, int side, double prob, TimeNs from_ns, TimeNs to_ns);
  void crash(Node& node, CrashSpec spec);
  void map_fault(Node& node, std::uint32_t map_id, TimeNs at,
                 std::uint64_t count, int err = ebpf::kErrNoMem);
  void cap_buffer_pool(std::uint64_t max_buffers);

  // Compiles the schedule into events. Call once, after the topology's
  // routes/SIDs are configured and (for parallel runs) after the partition
  // is sealed — crash snapshots are taken here, and events must land in
  // their domain loops.
  void install();

  const std::vector<OutageReport>& outages() const noexcept {
    return outages_;
  }

  // The attempt timeline a policy yields for a given restart instant and
  // attempt count, consuming jitter draws from `rng` (one per backoff gap).
  // Exposed so the backoff/jitter/cap unit tests pin the arithmetic the
  // injector uses.
  static std::vector<TimeNs> backoff_schedule(const ReinstallPolicy& policy,
                                              TimeNs restart_at,
                                              std::size_t attempts, Rng& rng);

 private:
  struct FlapSpec {
    Link* link;
    TimeNs down_at;
    TimeNs up_at;
  };
  struct CorruptSpec {
    Link* link;
    int side;
    double prob;
    TimeNs from_ns;
    TimeNs to_ns;
  };
  struct CrashEntry {
    Node* node;
    CrashSpec spec;
  };
  struct MapFaultSpec {
    Node* node;
    std::uint32_t map_id;
    TimeNs at;
    std::uint64_t count;
    int err;
  };

  void compile_crash(const CrashEntry& entry);

  Network& net_;
  Rng rng_;  // jitter + corruption-seed derivation; consumed in install order
  bool installed_ = false;
  std::uint64_t pool_cap_ = 0;
  std::vector<FlapSpec> flaps_;
  std::vector<CorruptSpec> corruptions_;
  std::vector<CrashEntry> crashes_;
  std::vector<MapFaultSpec> map_faults_;
  std::vector<OutageReport> outages_;
};

}  // namespace srv6bpf::sim
