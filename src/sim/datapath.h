// Datapath: the explicit staged forwarding pipeline a Node runs over packet
// bursts.
//
// Stages, in order:
//   classify   — validate, then run-group packets by IPv6 destination and
//                resolve each group's fate once: seg6local SID match, local
//                delivery, or FIB continuation;
//   seg6local  — grouped behaviour execution (seg6local_process_burst): one
//                SID-table hit and, for End.BPF, one ExecEnv/engine setup
//                per group;
//   lwt + fib  — disposition rounds: route lookups per (dst, table) group
//                through the servicing context's one-entry FibCacheSlot,
//                backed by the multibit-stride LPM trie on miss
//                (util/lpm_trie.h), route-attached tunnels via
//                lwt_process_burst (BPF program setup paid once per route
//                group), ECMP nexthop selection per packet;
//   tx-prep    — hop-limit handling and per-packet verdict/oif metadata;
//                the Node then groups forwards per egress interface and
//                hands them to Link::transmit_burst.
//
// Per-packet semantics are bit-identical to the former single-packet
// Node::process() state machine (the burst differential test enforces it);
// bursts only amortise lookups, program setup and event-loop traffic.
//
// The pipeline is deliberately stateless between calls: processing can
// re-enter it (ICMP generation, local handlers that send), so all per-burst
// scratch lives on the caller's stack.
#pragma once

#include <cstddef>

#include "net/burst.h"
#include "seg6/ctx.h"

namespace srv6bpf::sim {

class Node;

class Datapath {
 public:
  explicit Datapath(Node& node) : node_(node) {}

  // Runs the stages over `burst`, writing per-packet verdict/oif/timestamps
  // into the burst metadata and per-packet cost traces into `traces`, which
  // must have room for burst.size() entries. `local_out` marks locally
  // originated packets (no seg6local classify, no hop-limit decrement).
  void process_burst(net::PacketBurst& burst, bool local_out,
                     seg6::ProcessTrace* traces);

 private:
  Node& node_;
};

}  // namespace srv6bpf::sim
