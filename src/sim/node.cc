#include "sim/node.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "net/checksum.h"
#include "seg6/lwt.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::sim {

Node::Node(EventLoop& loop, Rng& rng, std::string name)
    : loop_(loop), rng_(rng), name_(std::move(name)), ns_(name_),
      datapath_(*this) {
  ns_.clock = [this] { return loop_.now(); };
}

int Node::add_interface(Link& link, int side, const net::Ipv6Addr& addr) {
  const int ifindex = static_cast<int>(ifaces_.size());
  ifaces_.push_back(Iface{&link, side, addr, {}});
  link.attach(side, this, ifindex);
  ns_.add_local_addr(addr);
  return ifindex;
}

const net::Ipv6Addr& Node::interface_addr(int ifindex) const {
  if (ifindex < 0 || static_cast<std::size_t>(ifindex) >= ifaces_.size())
    throw std::out_of_range("interface_addr: no ifindex " +
                            std::to_string(ifindex) + " on " + name_);
  return ifaces_[static_cast<std::size_t>(ifindex)].addr;
}

void Node::enqueue_rx(net::Packet&& pkt, int ifindex) {
  Iface& iface = ifaces_[static_cast<std::size_t>(ifindex)];
  if (iface.rx_ring.size() >= cpu.rx_queue_limit) {
    ++stats.drops_rx_queue;
    return;
  }
  iface.rx_ring.push_back(std::move(pkt));
  maybe_schedule_service();
}

void Node::receive_from_link(net::Packet&& pkt, int ifindex) {
  net::PacketBurst b;
  b.push(std::move(pkt), /*at_ns=*/loop_.now());
  receive_burst_from_link(std::move(b), ifindex);
}

void Node::receive_burst_from_link(net::PacketBurst&& burst, int ifindex) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    ++stats.rx_packets;
    net::Packet& p = burst.pkt(i);
    // Each packet keeps its own wire arrival time, not the (coalesced)
    // delivery event's clock.
    p.rx_tstamp_ns = burst.meta(i).at_ns;
    p.ingress_ifindex = static_cast<std::uint32_t>(ifindex);
    p.dst() = net::DstEntry{};
  }
  if (!cpu.enabled) {
    process_and_dispatch(burst, /*local_out=*/false);
    return;
  }
  for (std::size_t i = 0; i < burst.size(); ++i)
    enqueue_rx(std::move(burst.pkt(i)), ifindex);
}

bool Node::rings_empty() const {
  for (const Iface& iface : ifaces_)
    if (!iface.rx_ring.empty()) return false;
  return true;
}

void Node::maybe_schedule_service() {
  if (servicing_ || rings_empty()) return;
  servicing_ = true;
  const TimeNs start = std::max(loop_.now(), cpu.busy_until);
  loop_.schedule_at(start, [this] { service_burst(); });
}

void Node::service_burst() {
  net::PacketBurst b;
  const std::size_t budget =
      std::min(cpu.rx_burst > 0 ? cpu.rx_burst : 1, b.capacity());
  // Round-robin across the interface rings (NAPI's budget rotation in
  // miniature) so one busy NIC cannot starve the others.
  const std::size_t nif = ifaces_.size();
  for (std::size_t pass = 0; pass < nif && b.size() < budget; ++pass) {
    auto& ring = ifaces_[(rr_iface_ + pass) % nif].rx_ring;
    while (!ring.empty() && b.size() < budget) {
      b.push(std::move(ring.front()));
      ring.pop_front();
    }
  }
  if (nif > 0) rr_iface_ = (rr_iface_ + 1) % nif;
  if (b.empty()) {
    servicing_ = false;
    return;
  }
  ++stats.service_events;
  stats.serviced_packets += b.size();

  std::array<seg6::ProcessTrace, net::kMaxBurstPackets> traces;
  datapath_.process_burst(b, /*local_out=*/false, traces.data());
  trace_ = traces[b.size() - 1];

  // Per-packet completion times are exactly the sequential model's: packet i
  // finishes when the CPU has served every packet before it plus itself.
  TimeNs t = std::max(loop_.now(), cpu.busy_until);
  for (std::size_t i = 0; i < b.size(); ++i) {
    t += packet_cost_ns(cpu.profile, traces[i]);
    b.meta(i).at_ns = t;
  }
  cpu.busy_until = t;
  dispatch_burst(b);

  if (!rings_empty())
    loop_.schedule_at(cpu.busy_until, [this] { service_burst(); });
  else
    servicing_ = false;
}

void Node::send(net::Packet&& pkt) {
  pkt.dst() = net::DstEntry{};
  net::PacketBurst b;
  b.push(std::move(pkt));
  process_and_dispatch(b, /*local_out=*/true);
}

void Node::send_burst(net::PacketBurst&& burst) {
  for (std::size_t i = 0; i < burst.size(); ++i)
    burst.pkt(i).dst() = net::DstEntry{};
  process_and_dispatch(burst, /*local_out=*/true);
}

void Node::process_and_dispatch(net::PacketBurst& b, bool local_out) {
  if (b.empty()) return;
  std::array<seg6::ProcessTrace, net::kMaxBurstPackets> traces;
  datapath_.process_burst(b, local_out, traces.data());
  trace_ = traces[b.size() - 1];
  const TimeNs now = loop_.now();
  for (std::size_t i = 0; i < b.size(); ++i) b.meta(i).at_ns = now;
  dispatch_burst(b);
}

void Node::dispatch_burst(net::PacketBurst& b) {
  const std::size_t n = b.size();
  // Locals and invalid egress first, in packet order.
  for (std::size_t i = 0; i < n; ++i) {
    net::BurstSlotMeta& meta = b.meta(i);
    switch (meta.verdict) {
      case net::BurstVerdict::kLocal:
        ++stats.local_delivered;
        if (local_handler_) {
          // On a CPU-modelled node the packet completes at at_ns, later
          // than this service event: defer the handler so its side effects
          // (replies, timers) run at the same sim time as the sequential
          // model's dispatch-at-busy_until event.
          if (meta.at_ns > loop_.now()) {
            loop_.schedule_at(meta.at_ns,
                              [this, p = std::move(b.pkt(i))]() mutable {
                                local_handler_(std::move(p), loop_.now());
                              });
          } else {
            local_handler_(std::move(b.pkt(i)), meta.at_ns);
          }
        }
        break;
      case net::BurstVerdict::kForward:
        if (meta.oif < 0 || meta.oif >= static_cast<int>(ifaces_.size())) {
          ++stats.drops_no_route;
          meta.verdict = net::BurstVerdict::kDrop;
        }
        break;
      case net::BurstVerdict::kDrop:
      case net::BurstVerdict::kPending:
        break;  // specific drop counter already bumped in the datapath
    }
  }
  // Forwards, grouped per egress interface; packet order is preserved within
  // each link, and each group goes out as one burst transmit.
  std::array<bool, net::kMaxBurstPackets> consumed{};
  for (std::size_t i = 0; i < n; ++i) {
    if (consumed[i] || b.meta(i).verdict != net::BurstVerdict::kForward)
      continue;
    const int oif = b.meta(i).oif;
    net::PacketBurst tx;
    for (std::size_t j = i; j < n; ++j) {
      if (consumed[j] || b.meta(j).verdict != net::BurstVerdict::kForward ||
          b.meta(j).oif != oif)
        continue;
      consumed[j] = true;
      ++stats.tx_packets;
      if (b.pkt(j).tx_tstamp_ns == 0) b.pkt(j).tx_tstamp_ns = b.meta(j).at_ns;
      tx.push(std::move(b.pkt(j)), b.meta(j).at_ns);
    }
    Iface& iface = ifaces_[static_cast<std::size_t>(oif)];
    iface.link->transmit_burst(std::move(tx), iface.side);
  }
  b.clear();
}

void Node::send_icmp_time_exceeded(const net::Packet& orig) {
  if (ifaces_.empty()) return;
  if (orig.size() < net::kIpv6HeaderSize) return;
  net::Ipv6Header oh =
      *net::Ipv6Header::parse({orig.data(), orig.size()});
  if (oh.next_header == net::kProtoIcmp6) return;  // never ICMP about ICMP
  ++stats.icmp_time_exceeded_sent;

  // ICMPv6 Time Exceeded: type 3, code 0, 4 unused bytes, then as much of
  // the invoking packet as fits.
  const std::size_t quoted = std::min<std::size_t>(orig.size(), 128);
  std::vector<std::uint8_t> icmp(8 + quoted, 0);
  icmp[0] = 3;  // time exceeded
  icmp[1] = 0;  // hop limit exceeded in transit
  std::memcpy(icmp.data() + 8, orig.data(), quoted);

  net::Ipv6Header ih;
  ih.src = ifaces_[0].addr;
  ih.dst = oh.src;
  ih.next_header = net::kProtoIcmp6;
  ih.hop_limit = 64;
  ih.payload_length = static_cast<std::uint16_t>(icmp.size());

  const std::uint16_t csum =
      net::transport_checksum(ih.src, ih.dst, net::kProtoIcmp6, icmp);
  store_be16(icmp.data() + 2, csum);

  net::Packet reply;
  std::uint8_t* base = reply.push_front(net::kIpv6HeaderSize + icmp.size());
  ih.write(base);
  std::memcpy(base + net::kIpv6HeaderSize, icmp.data(), icmp.size());
  send(std::move(reply));
}

}  // namespace srv6bpf::sim
