#include "sim/node.h"

#include <cstring>

#include "net/checksum.h"
#include "seg6/lwt.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::sim {

Node::Node(EventLoop& loop, Rng& rng, std::string name)
    : loop_(loop), rng_(rng), name_(std::move(name)), ns_(name_) {
  ns_.clock = [this] { return loop_.now(); };
}

int Node::add_interface(Link& link, int side, const net::Ipv6Addr& addr) {
  const int ifindex = static_cast<int>(ifaces_.size());
  ifaces_.push_back(Iface{&link, side, addr});
  link.attach(side, this, ifindex);
  ns_.add_local_addr(addr);
  return ifindex;
}

void Node::receive_from_link(net::Packet&& pkt, int ifindex) {
  ++stats.rx_packets;
  pkt.rx_tstamp_ns = loop_.now();
  pkt.ingress_ifindex = static_cast<std::uint32_t>(ifindex);
  pkt.dst() = net::DstEntry{};  // fresh routing decision on this node

  if (!cpu.enabled) {
    dispatch(process(std::move(pkt), /*local_out=*/false), loop_.now());
    return;
  }
  if (rx_queue_.size() >= cpu.rx_queue_limit) {
    ++stats.drops_rx_queue;
    return;
  }
  rx_queue_.emplace_back(std::move(pkt), ifindex);
  maybe_schedule_service();
}

void Node::maybe_schedule_service() {
  if (servicing_ || rx_queue_.empty()) return;
  servicing_ = true;
  const TimeNs start = std::max(loop_.now(), cpu.busy_until);
  loop_.schedule_at(start, [this] { service_one(); });
}

void Node::service_one() {
  if (rx_queue_.empty()) {
    servicing_ = false;
    return;
  }
  auto [pkt, ifindex] = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  (void)ifindex;

  Outcome out = process(std::move(pkt), /*local_out=*/false);
  const std::uint64_t cost = packet_cost_ns(cpu.profile, trace_);
  cpu.busy_until = loop_.now() + cost;

  loop_.schedule_at(cpu.busy_until,
                    [this, o = std::move(out)]() mutable {
                      dispatch(std::move(o), loop_.now());
                      servicing_ = false;
                      maybe_schedule_service();
                    });
}

void Node::send(net::Packet&& pkt) {
  pkt.dst() = net::DstEntry{};
  dispatch(process(std::move(pkt), /*local_out=*/true), loop_.now());
}

void Node::dispatch(Outcome&& out, TimeNs now) {
  switch (out.kind) {
    case Outcome::Kind::kTransmit: {
      if (out.oif < 0 ||
          out.oif >= static_cast<int>(ifaces_.size())) {
        ++stats.drops_no_route;
        return;
      }
      ++stats.tx_packets;
      if (out.pkt.tx_tstamp_ns == 0) out.pkt.tx_tstamp_ns = now;
      Iface& iface = ifaces_[static_cast<std::size_t>(out.oif)];
      iface.link->transmit(std::move(out.pkt), iface.side);
      return;
    }
    case Outcome::Kind::kLocal:
      ++stats.local_delivered;
      if (local_handler_) local_handler_(std::move(out.pkt), now);
      return;
    case Outcome::Kind::kDrop:
      return;  // specific drop counter already bumped in process()
  }
}

Node::Outcome Node::process(net::Packet&& pkt, bool local_out) {
  trace_.reset();
  Outcome out;
  out.pkt = std::move(pkt);
  net::Packet& p = out.pkt;

  if (p.size() < net::kIpv6HeaderSize || p.ipv6().version() != 6) {
    ++stats.drops_malformed;
    trace_.dropped = true;
    return out;
  }

  seg6::PipelineResult r = seg6::PipelineResult::cont(0);
  bool did_behaviour = false;

  if (!local_out) {
    const net::Ipv6Addr dst = p.ipv6().dst();
    if (const seg6::Seg6LocalEntry* sid = ns_.seg6local().lookup(dst)) {
      r = seg6local_process(ns_, p, *sid, &trace_);
      did_behaviour = true;
    } else if (ns_.is_local(dst)) {
      out.kind = Outcome::Kind::kLocal;
      return out;
    }
  }
  (void)did_behaviour;

  // Disposition loop: encapsulations and rewritten destinations trigger new
  // lookups; bounded to defeat routing loops inside one node.
  for (int guard = 0; guard < 4; ++guard) {
    switch (r.disposition) {
      case seg6::Disposition::kDrop:
        ++stats.drops_verdict;
        trace_.dropped = true;
        return out;

      case seg6::Disposition::kLocal:
        out.kind = Outcome::Kind::kLocal;
        return out;

      case seg6::Disposition::kForward: {
        // Destination metadata is set (End.X / BPF_REDIRECT).
        if (!p.dst().valid) {
          ++stats.drops_no_route;
          return out;
        }
        out.oif = p.dst().oif;
        break;  // to hop-limit handling below
      }

      case seg6::Disposition::kUseRoute:
        // Only produced inside the kContinue handling; treated there.
        ++stats.drops_no_route;
        return out;

      case seg6::Disposition::kContinue: {
        const net::Ipv6Addr dst = p.ipv6().dst();
        // A rewritten destination may target another local SID (e.g. B6
        // policies whose first segment is local) or a local address (e.g.
        // after decap on the final node).
        if (const seg6::Seg6LocalEntry* sid = ns_.seg6local().lookup(dst)) {
          r = seg6local_process(ns_, p, *sid, &trace_);
          continue;
        }
        if (ns_.is_local(dst)) {
          out.kind = Outcome::Kind::kLocal;
          return out;
        }
        const seg6::Fib* fib = ns_.find_table(r.table);
        const seg6::Route* route = fib ? fib->lookup(dst) : nullptr;
        ++trace_.fib_lookups;
        if (route == nullptr) {
          ++stats.drops_no_route;
          trace_.dropped = true;
          return out;
        }
        if (route->lwt && route->lwt->kind != seg6::LwtState::Kind::kNone) {
          const seg6::PipelineResult lr = seg6::lwt_process(
              ns_, p, *route->lwt, seg6::LwtHook::kXmit, &trace_);
          if (lr.disposition == seg6::Disposition::kUseRoute) {
            if (route->nexthops.empty()) {
              ++stats.drops_no_route;
              return out;
            }
            const seg6::Nexthop& nh =
                seg6::Fib::select_nexthop(*route, seg6::flow_hash(p));
            p.dst().nexthop = nh.via.is_unspecified() ? dst : nh.via;
            p.dst().oif = nh.oif;
            p.dst().valid = true;
            out.oif = nh.oif;
            r = seg6::PipelineResult::forward();
            continue;
          }
          r = lr;
          continue;
        }
        if (route->nexthops.empty()) {
          ++stats.drops_no_route;
          return out;
        }
        const seg6::Nexthop& nh =
            seg6::Fib::select_nexthop(*route, seg6::flow_hash(p));
        p.dst().nexthop = nh.via.is_unspecified() ? dst : nh.via;
        p.dst().oif = nh.oif;
        p.dst().valid = true;
        out.oif = nh.oif;
        r = seg6::PipelineResult::forward();
        continue;
      }
    }
    // Reached on kForward with out.oif set: hop limit, then transmit.
    if (!local_out) {
      const std::uint8_t hl = p.ipv6().hop_limit();
      if (hl <= 1) {
        ++stats.drops_ttl;
        send_icmp_time_exceeded(p);
        trace_.dropped = true;
        out.kind = Outcome::Kind::kDrop;
        return out;
      }
      p.ipv6().set_hop_limit(static_cast<std::uint8_t>(hl - 1));
    }
    out.kind = Outcome::Kind::kTransmit;
    return out;
  }
  ++stats.drops_no_route;  // disposition loop exhausted
  return out;
}

void Node::send_icmp_time_exceeded(const net::Packet& orig) {
  if (ifaces_.empty()) return;
  if (orig.size() < net::kIpv6HeaderSize) return;
  net::Ipv6Header oh =
      *net::Ipv6Header::parse({orig.data(), orig.size()});
  if (oh.next_header == net::kProtoIcmp6) return;  // never ICMP about ICMP
  ++stats.icmp_time_exceeded_sent;

  // ICMPv6 Time Exceeded: type 3, code 0, 4 unused bytes, then as much of
  // the invoking packet as fits.
  const std::size_t quoted = std::min<std::size_t>(orig.size(), 128);
  std::vector<std::uint8_t> icmp(8 + quoted, 0);
  icmp[0] = 3;  // time exceeded
  icmp[1] = 0;  // hop limit exceeded in transit
  std::memcpy(icmp.data() + 8, orig.data(), quoted);

  net::Ipv6Header ih;
  ih.src = ifaces_[0].addr;
  ih.dst = oh.src;
  ih.next_header = net::kProtoIcmp6;
  ih.hop_limit = 64;
  ih.payload_length = static_cast<std::uint16_t>(icmp.size());

  const std::uint16_t csum =
      net::transport_checksum(ih.src, ih.dst, net::kProtoIcmp6, icmp);
  store_be16(icmp.data() + 2, csum);

  net::Packet reply;
  std::uint8_t* base = reply.push_front(net::kIpv6HeaderSize + icmp.size());
  ih.write(base);
  std::memcpy(base + net::kIpv6HeaderSize, icmp.data(), icmp.size());
  send(std::move(reply));
}

}  // namespace srv6bpf::sim
