#include "sim/node.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "ebpf/map.h"
#include "net/checksum.h"
#include "seg6/lwt.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::sim {

Node::Node(EventLoop& loop, Rng& rng, std::string name)
    : loop_(&loop), rng_(rng), name_(std::move(name)), ns_(name_),
      datapath_(*this) {
  ns_.clock = [this] { return loop_->now(); };
}

int Node::add_interface(Link& link, int side, const net::Ipv6Addr& addr) {
  const int ifindex = static_cast<int>(ifaces_.size());
  ifaces_.push_back(Iface{&link, side, addr, {}});
  ifaces_.back().rx_rings.resize(std::max<std::size_t>(ctxs_.size(), 1));
  link.attach(side, this, ifindex);
  ns_.add_local_addr(addr);
  return ifindex;
}

const net::Ipv6Addr& Node::interface_addr(int ifindex) const {
  if (ifindex < 0 || static_cast<std::size_t>(ifindex) >= ifaces_.size())
    throw std::out_of_range("interface_addr: no ifindex " +
                            std::to_string(ifindex) + " on " + name_);
  return ifaces_[static_cast<std::size_t>(ifindex)].addr;
}

std::vector<Node::CpuContext>& Node::contexts() {
  const std::size_t want =
      std::clamp<std::size_t>(cpu.ncpus, 1, ebpf::kMaxCpus);
  if (ctxs_.size() == want) return ctxs_;
  // Re-shard only while quiescent: a pending service event holds a context
  // index, and shrinking the ring vectors would silently discard queued
  // packets — so an ncpus change during traffic takes effect at the next
  // idle moment instead (like rewriting a NIC's RSS indirection table).
  for (const CpuContext& c : ctxs_)
    if (c.servicing) return ctxs_;
  for (const Iface& iface : ifaces_)
    for (const auto& ring : iface.rx_rings)
      if (!ring.empty()) return ctxs_;
  // Shrinking retires contexts; their shards fold into the NIC-side base so
  // the cumulative Node::stats() view never goes backwards.
  for (std::size_t k = want; k < ctxs_.size(); ++k)
    nic_stats_ += ctxs_[k].stats;
  ctxs_.resize(want);
  for (std::size_t k = 0; k < ctxs_.size(); ++k)
    ctxs_[k].id = static_cast<std::uint32_t>(k);
  for (Iface& iface : ifaces_) iface.rx_rings.resize(want);
  return ctxs_;
}

NodeStats Node::stats() const {
  NodeStats total = nic_stats_;
  for (const CpuContext& ctx : ctxs_) total += ctx.stats;
  return total;
}

std::uint64_t Node::rx_ring_overflows() const noexcept {
  std::uint64_t total = 0;
  for (const Iface& iface : ifaces_)
    for (const RxRing& ring : iface.rx_rings) total += ring.overflows();
  return total;
}

void Node::crash() {
  down_ = true;
  const TimeNs now = loop_->now();
  // Queued packets die with the node — flushed and counted, so every loss
  // stays attributed (the InvariantAuditor's ledger must balance).
  for (Iface& iface : ifaces_)
    for (RxRing& ring : iface.rx_rings)
      ring.flush([this](net::Packet&& p) {
        nic_stats_.note_drop(DropReason::kNodeDown, p.rx_tstamp_ns);
      });
  // Execution contexts reset: a crashed core's backlog and busy clock are
  // gone. A service event already in flight for a context is harmless — it
  // finds its rings empty and exits (and while down nothing can enqueue).
  for (CpuContext& ctx : ctxs_) {
    ctx.busy_until = now;
    ctx.servicing = false;
    ctx.rr_iface = 0;
  }
  // Soft state dies with the power: routes, SID bindings, eBPF map
  // contents. Map definitions and loaded programs survive (they are "on
  // disk"); clear() bumps each Fib's generation so every per-context cache
  // slot self-invalidates.
  for (auto& entry : ns_.tables()) entry.second.clear();
  ns_.seg6local().clear();
  ebpf::MapRegistry& maps = ns_.bpf().maps();
  for (std::uint32_t id = 1; id <= maps.count(); ++id)
    if (ebpf::Map* m = maps.get(id)) m->reset_contents();
}

void Node::restart() { down_ = false; }

const NodeStats& Node::cpu_stats(std::size_t k) const {
  if (k >= ctxs_.size())
    throw std::out_of_range("cpu_stats: no context " + std::to_string(k) +
                            " on " + name_);
  return ctxs_[k].stats;
}

std::uint32_t Node::rss_hash(const net::Packet& pkt) {
  // Jenkins one-at-a-time over the outer src, dst and flow label — the
  // tuple a NIC's RSS indirection hashes before any header the datapath may
  // rewrite. Per-flow stable by construction.
  if (pkt.size() < net::kIpv6HeaderSize) return 0;
  const std::uint8_t* p = pkt.data();
  std::uint32_t h = 0;
  auto mix = [&h](const std::uint8_t* d, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h += d[i];
      h += h << 10;
      h ^= h >> 6;
    }
  };
  mix(p + 8, 32);  // src (16) + dst (16)
  const std::uint8_t fl[3] = {static_cast<std::uint8_t>(p[1] & 0x0f), p[2],
                              p[3]};
  mix(fl, 3);
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

std::size_t Node::steer(const net::Packet& pkt) const {
  const std::size_t n = ctxs_.size();
  return n <= 1 ? 0 : rss_hash(pkt) % n;
}

void Node::enqueue_rx(net::Packet&& pkt, int ifindex) {
  CpuContext& ctx = contexts()[steer(pkt)];
  RxRing& ring =
      ifaces_[static_cast<std::size_t>(ifindex)].rx_rings[ctx.id];
  if (cpu.rx_overflow_policy == RxOverflowPolicy::kDropOldest &&
      ring.size() >= cpu.rx_queue_limit && !ring.empty()) {
    // Head drop: evict the oldest queued packet to admit the arrival. The
    // evictee is the counted drop, stamped with its own wire arrival.
    nic_stats_.note_drop(DropReason::kRxQueue,
                         ring.evict_oldest().rx_tstamp_ns);
  }
  // Drop timestamps use the packet's own wire arrival (not the coalesced
  // event clock) so first-drop times stay burst-invariant — captured before
  // the push consumes the packet.
  const TimeNs arrival = pkt.rx_tstamp_ns;
  if (!ring.push(std::move(pkt), cpu.rx_queue_limit)) {
    nic_stats_.note_drop(DropReason::kRxQueue, arrival);
    return;
  }
  maybe_schedule_service(ctx);
}

void Node::receive_from_link(net::Packet&& pkt, int ifindex) {
  net::PacketBurst b;
  b.push(std::move(pkt), /*at_ns=*/loop_->now());
  receive_burst_from_link(std::move(b), ifindex);
}

void Node::receive_burst_from_link(net::PacketBurst&& burst, int ifindex) {
  if (down_) {
    // Crashed: the NIC still "sees" the bits but there is no stack to hand
    // them to. Counted per packet so the conservation ledger balances.
    for (std::size_t i = 0; i < burst.size(); ++i) {
      ++nic_stats_.rx_packets;
      nic_stats_.note_drop(DropReason::kNodeDown, burst.meta(i).at_ns);
    }
    return;
  }
  for (std::size_t i = 0; i < burst.size(); ++i) {
    ++nic_stats_.rx_packets;
    net::Packet& p = burst.pkt(i);
    // Each packet keeps its own wire arrival time, not the (coalesced)
    // delivery event's clock.
    p.rx_tstamp_ns = burst.meta(i).at_ns;
    p.ingress_ifindex = static_cast<std::uint32_t>(ifindex);
    p.dst() = net::DstEntry{};
  }
  if (!cpu.enabled) {
    process_and_dispatch(burst, /*local_out=*/false);
    return;
  }
  for (std::size_t i = 0; i < burst.size(); ++i)
    enqueue_rx(std::move(burst.pkt(i)), ifindex);
}

bool Node::rings_empty(const CpuContext& ctx) const {
  for (const Iface& iface : ifaces_)
    if (ctx.id < iface.rx_rings.size() && !iface.rx_rings[ctx.id].empty())
      return false;
  return true;
}

void Node::maybe_schedule_service(CpuContext& ctx) {
  if (ctx.servicing || rings_empty(ctx)) return;
  ctx.servicing = true;
  const TimeNs start = std::max(loop_->now(), ctx.busy_until);
  loop_->schedule_at_key(start, ctx.id,
                        [this, k = ctx.id] { service_burst(ctxs_[k]); });
}

void Node::service_burst(CpuContext& ctx) {
  net::PacketBurst b;
  const std::size_t budget =
      std::min(cpu.rx_burst > 0 ? cpu.rx_burst : 1, b.capacity());
  // Round-robin across this context's interface rings (NAPI's budget
  // rotation in miniature) so one busy NIC cannot starve the others.
  const std::size_t nif = ifaces_.size();
  for (std::size_t pass = 0; pass < nif && b.size() < budget; ++pass) {
    RxRing& ring = ifaces_[(ctx.rr_iface + pass) % nif].rx_rings[ctx.id];
    while (!ring.empty() && b.size() < budget) b.push(ring.pop());
  }
  if (nif > 0) ctx.rr_iface = (ctx.rr_iface + 1) % nif;
  if (b.empty()) {
    ctx.servicing = false;
    return;
  }
  ++ctx.stats.service_events;
  ctx.stats.serviced_packets += b.size();

  // Run the datapath on this context: shard accounting via cur_ctx_, CPU
  // identity to BPF via Netns::current_cpu.
  CpuContext* prev_ctx = cur_ctx_;
  const std::uint32_t prev_cpu = ns_.current_cpu;
  cur_ctx_ = &ctx;
  ns_.current_cpu = ctx.id;

  std::array<seg6::ProcessTrace, net::kMaxBurstPackets> traces;
  datapath_.process_burst(b, /*local_out=*/false, traces.data());
  trace_ = traces[b.size() - 1];

  // Per-packet completion times are exactly the sequential model's: packet i
  // finishes when this core has served every packet before it plus itself.
  TimeNs t = std::max(loop_->now(), ctx.busy_until);
  for (std::size_t i = 0; i < b.size(); ++i) {
    t += packet_cost_ns(cpu.profile, traces[i]);
    b.meta(i).at_ns = t;
  }
  ctx.busy_until = t;
  dispatch_burst(b);

  cur_ctx_ = prev_ctx;
  ns_.current_cpu = prev_cpu;

  if (!rings_empty(ctx))
    loop_->schedule_at_key(ctx.busy_until, ctx.id,
                          [this, k = ctx.id] { service_burst(ctxs_[k]); });
  else
    ctx.servicing = false;
}

void Node::send(net::Packet&& pkt) {
  if (down_) {
    nic_stats_.note_drop(DropReason::kNodeDown, loop_->now());
    return;
  }
  pkt.dst() = net::DstEntry{};
  net::PacketBurst b;
  b.push(std::move(pkt));
  process_and_dispatch(b, /*local_out=*/true);
}

void Node::send_burst(net::PacketBurst&& burst) {
  if (down_) {
    for (std::size_t i = 0; i < burst.size(); ++i)
      nic_stats_.note_drop(DropReason::kNodeDown, loop_->now());
    return;
  }
  for (std::size_t i = 0; i < burst.size(); ++i)
    burst.pkt(i).dst() = net::DstEntry{};
  process_and_dispatch(burst, /*local_out=*/true);
}

void Node::process_and_dispatch(net::PacketBurst& b, bool local_out) {
  if (b.empty()) return;
  // Non-service-event work (local sends, non-CPU-modelled forwarding) runs
  // on whatever context is current — context 0 when none is (re-entrant
  // ICMP/handler sends stay on the servicing core).
  CpuContext* prev_ctx = cur_ctx_;
  if (cur_ctx_ == nullptr) cur_ctx_ = &contexts()[0];

  std::array<seg6::ProcessTrace, net::kMaxBurstPackets> traces;
  datapath_.process_burst(b, local_out, traces.data());
  trace_ = traces[b.size() - 1];
  const TimeNs now = loop_->now();
  for (std::size_t i = 0; i < b.size(); ++i) b.meta(i).at_ns = now;
  dispatch_burst(b);

  cur_ctx_ = prev_ctx;
}

void Node::dispatch_burst(net::PacketBurst& b) {
  NodeStats& stats = cur().stats;
  const std::size_t n = b.size();
  // Locals and invalid egress first, in packet order.
  for (std::size_t i = 0; i < n; ++i) {
    net::BurstSlotMeta& meta = b.meta(i);
    switch (meta.verdict) {
      case net::BurstVerdict::kLocal:
        ++stats.local_delivered;
        if (local_handler_) {
          // On a CPU-modelled node the packet completes at at_ns, later
          // than this service event: defer the handler so its side effects
          // (replies, timers) run at the same sim time as the sequential
          // model's dispatch-at-busy_until event.
          if (meta.at_ns > loop_->now()) {
            loop_->schedule_at(meta.at_ns,
                              [this, p = std::move(b.pkt(i))]() mutable {
                                local_handler_(std::move(p), loop_->now());
                              });
          } else {
            local_handler_(std::move(b.pkt(i)), meta.at_ns);
          }
        }
        break;
      case net::BurstVerdict::kForward:
        if (meta.oif < 0 || meta.oif >= static_cast<int>(ifaces_.size())) {
          stats.note_drop(DropReason::kNoRoute, meta.at_ns);
          meta.verdict = net::BurstVerdict::kDrop;
        } else if (iface_link_down(meta.oif)) {
          // Carrier is off and no FRR backup rescued the packet in the
          // datapath: charge the blackhole here, before the link would
          // silently eat it.
          stats.note_drop(DropReason::kLinkDown, meta.at_ns);
          meta.verdict = net::BurstVerdict::kDrop;
        }
        break;
      case net::BurstVerdict::kDrop:
      case net::BurstVerdict::kPending:
        break;  // specific drop counter already bumped in the datapath
    }
  }
  // Forwards, grouped per egress interface; packet order is preserved within
  // each link, and each group goes out as one burst transmit.
  std::array<bool, net::kMaxBurstPackets> consumed{};
  for (std::size_t i = 0; i < n; ++i) {
    if (consumed[i] || b.meta(i).verdict != net::BurstVerdict::kForward)
      continue;
    const int oif = b.meta(i).oif;
    net::PacketBurst tx;
    for (std::size_t j = i; j < n; ++j) {
      if (consumed[j] || b.meta(j).verdict != net::BurstVerdict::kForward ||
          b.meta(j).oif != oif)
        continue;
      consumed[j] = true;
      ++stats.tx_packets;
      if (b.pkt(j).tx_tstamp_ns == 0) b.pkt(j).tx_tstamp_ns = b.meta(j).at_ns;
      tx.push(std::move(b.pkt(j)), b.meta(j).at_ns);
    }
    Iface& iface = ifaces_[static_cast<std::size_t>(oif)];
    iface.link->transmit_burst(std::move(tx), iface.side);
  }
  b.clear();
}

void Node::send_icmp_time_exceeded(const net::Packet& orig) {
  if (ifaces_.empty()) return;
  if (orig.size() < net::kIpv6HeaderSize) return;
  net::Ipv6Header oh =
      *net::Ipv6Header::parse({orig.data(), orig.size()});
  if (oh.next_header == net::kProtoIcmp6) return;  // never ICMP about ICMP
  ++cur().stats.icmp_time_exceeded_sent;

  // ICMPv6 Time Exceeded: type 3, code 0, 4 unused bytes, then as much of
  // the invoking packet as fits.
  const std::size_t quoted = std::min<std::size_t>(orig.size(), 128);
  std::vector<std::uint8_t> icmp(8 + quoted, 0);
  icmp[0] = 3;  // time exceeded
  icmp[1] = 0;  // hop limit exceeded in transit
  std::memcpy(icmp.data() + 8, orig.data(), quoted);

  net::Ipv6Header ih;
  ih.src = ifaces_[0].addr;
  ih.dst = oh.src;
  ih.next_header = net::kProtoIcmp6;
  ih.hop_limit = 64;
  ih.payload_length = static_cast<std::uint16_t>(icmp.size());

  const std::uint16_t csum =
      net::transport_checksum(ih.src, ih.dst, net::kProtoIcmp6, icmp);
  store_be16(icmp.data() + 2, csum);

  net::Packet reply;
  std::uint8_t* base = reply.push_front(net::kIpv6HeaderSize + icmp.size());
  ih.write(base);
  std::memcpy(base + net::kIpv6HeaderSize, icmp.data(), icmp.size());
  send(std::move(reply));
}

}  // namespace srv6bpf::sim
