#include "sim/fault_injector.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "net/buffer_pool.h"
#include "seg6/ctx.h"
#include "seg6/seg6local.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/node.h"

namespace srv6bpf::sim {

namespace {

// Everything the re-installer puts back after a crash: route config across
// every table plus the seg6local SID bindings. Held behind a shared_ptr so
// the reinstall closure stays within InlineFn's inline capture budget.
struct ConfigSnapshot {
  std::vector<std::pair<int, std::vector<seg6::Route>>> tables;
  std::vector<std::pair<net::Ipv6Addr, seg6::Seg6LocalEntry>> sids;
};

std::shared_ptr<ConfigSnapshot> snapshot_config(Node& node) {
  auto snap = std::make_shared<ConfigSnapshot>();
  for (const auto& [id, fib] : node.ns().tables())
    snap->tables.emplace_back(id, fib.routes());
  for (const auto& [sid, entry] : node.ns().seg6local().entries())
    snap->sids.emplace_back(sid, entry);
  // The SID table iterates in hash order; sort so the restored insertion
  // sequence is a pure function of the config, not of container internals.
  std::sort(snap->sids.begin(), snap->sids.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void restore_config(Node& node, const ConfigSnapshot& snap) {
  for (const auto& [id, routes] : snap.tables) {
    seg6::Fib& fib = node.ns().table(id);
    for (const seg6::Route& r : routes) fib.add_route(r);
  }
  for (const auto& [sid, entry] : snap.sids)
    node.ns().seg6local().add(sid, entry);
}

// Distinct links attached to `node` (a node pair may share several).
std::vector<Link*> adjacent_links(Node& node) {
  std::vector<Link*> out;
  for (std::size_t i = 0; i < node.interface_count(); ++i) {
    Link* l = node.interface_link(static_cast<int>(i));
    if (l != nullptr && std::find(out.begin(), out.end(), l) == out.end())
      out.push_back(l);
  }
  return out;
}

}  // namespace

FaultInjector::FaultInjector(Network& net, std::uint64_t seed)
    : net_(net), rng_(seed) {}

void FaultInjector::flap(Link& link, TimeNs down_at, TimeNs up_at) {
  flaps_.push_back(FlapSpec{&link, down_at, up_at});
}

void FaultInjector::corrupt(Link& link, int side, double prob, TimeNs from_ns,
                            TimeNs to_ns) {
  corruptions_.push_back(CorruptSpec{&link, side, prob, from_ns, to_ns});
}

void FaultInjector::crash(Node& node, CrashSpec spec) {
  if (spec.restart_at < spec.crash_at)
    throw std::invalid_argument(
        "FaultInjector::crash: restart_at precedes crash_at");
  crashes_.push_back(CrashEntry{&node, spec});
}

void FaultInjector::map_fault(Node& node, std::uint32_t map_id, TimeNs at,
                              std::uint64_t count, int err) {
  map_faults_.push_back(MapFaultSpec{&node, map_id, at, count, err});
}

void FaultInjector::cap_buffer_pool(std::uint64_t max_buffers) {
  pool_cap_ = max_buffers;
}

std::vector<TimeNs> FaultInjector::backoff_schedule(
    const ReinstallPolicy& policy, TimeNs restart_at, std::size_t attempts,
    Rng& rng) {
  std::vector<TimeNs> out;
  out.reserve(attempts);
  TimeNs t = restart_at;
  double nominal = static_cast<double>(policy.base_backoff);
  for (std::size_t i = 0; i < attempts; ++i) {
    out.push_back(t);
    if (i + 1 == attempts) break;
    // Deterministic jitter: one uniform draw per gap, scaling the nominal
    // backoff by (1 +/- jitter_frac).
    const double scale =
        1.0 + policy.jitter_frac * (2.0 * rng.next_double() - 1.0);
    t += static_cast<TimeNs>(nominal * scale);
    nominal = std::min(nominal * policy.multiplier,
                       static_cast<double>(policy.max_backoff));
  }
  return out;
}

void FaultInjector::compile_crash(const CrashEntry& entry) {
  Node* node = entry.node;
  const CrashSpec& spec = entry.spec;
  const std::vector<Link*> links = adjacent_links(*node);

  // Crash instant: the node's own teardown runs in its domain; carrier cuts
  // are per-side events in each side's domain (Network's link machinery).
  node->loop().schedule_at(spec.crash_at, [node] { node->crash(); });
  for (Link* l : links) net_.schedule_link_down(*l, spec.crash_at);

  node->loop().schedule_at(spec.restart_at, [node] { node->restart(); });

  // Re-installer timeline, fully decided here: the first install_failures
  // attempts fail, so the winning attempt's index — and with it the install
  // instant and the carrier-up instant — is known before the run starts.
  OutageReport report;
  report.node = node;
  report.crash_at = spec.crash_at;
  report.restart_at = spec.restart_at;
  report.gave_up = spec.install_failures >= spec.policy.max_attempts;
  const std::size_t attempts =
      report.gave_up ? spec.policy.max_attempts : spec.install_failures + 1;
  report.attempt_times =
      backoff_schedule(spec.policy, spec.restart_at, attempts, rng_);

  if (!report.gave_up) {
    report.installed_at = report.attempt_times.back();
    auto snap = snapshot_config(*node);
    node->loop().schedule_at(report.installed_at, [node, snap] {
      restore_config(*node, *snap);
    });
    for (Link* l : links) net_.schedule_link_up(*l, report.installed_at);
  }
  outages_.push_back(std::move(report));
}

void FaultInjector::install() {
  if (installed_)
    throw std::logic_error("FaultInjector::install: already installed");
  installed_ = true;

  if (pool_cap_ != 0) net::BufferPool::set_max_buffers(pool_cap_);

  // Corruption streams are seeded from the injector stream in declaration
  // order — part of the (seed, schedule) identity.
  for (const CorruptSpec& c : corruptions_)
    c.link->set_side_corruption(c.side, c.prob, c.from_ns, c.to_ns,
                                rng_.next_u64());

  for (const FlapSpec& f : flaps_) {
    net_.schedule_link_down(*f.link, f.down_at);
    net_.schedule_link_up(*f.link, f.up_at);
  }

  for (const CrashEntry& e : crashes_) compile_crash(e);

  for (const MapFaultSpec& m : map_faults_) {
    Node* node = m.node;
    const std::uint32_t id = m.map_id;
    const std::uint64_t count = m.count;
    const int err = m.err;
    node->loop().schedule_at(m.at, [node, id, count, err] {
      if (ebpf::Map* map = node->ns().bpf().maps().get(id))
        map->arm_update_fault(count, err);
    });
  }
}

}  // namespace srv6bpf::sim
