// RxRing: a bounded circular queue of packets — the per-(interface, CPU
// context) NIC RX ring of the multi-core Node.
//
// The previous std::deque backlog allocated and freed a block every handful
// of packets in steady state (push_back/pop_front churn walks the deque's
// node map), which is exactly the per-packet allocator traffic the pooled
// datapath eliminates. RxRing keeps a flat slot array sized to the node's
// rx_queue_limit: storage is allocated once when the ring first fills (or
// when the limit is raised — both warm-up events), and enqueue/drain in
// steady state touch no allocator at all. Slots hold net::Packet by value;
// a drained slot is left in the moved-from (buffer-less) state, so packet
// buffers are never held by an idle ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace srv6bpf::sim {

// What to do with an arriving packet when the ring is at its limit. Both are
// explicit, counted policies (RxRing::overflows; the node charges
// drops_rx_queue for the losing packet either way):
//   kDropNewest — tail drop, the historical NIC behaviour: the arrival is
//                 refused, queued packets keep their service order.
//   kDropOldest — head drop: the oldest queued packet is evicted to admit
//                 the arrival, bounding queueing delay under overload at the
//                 cost of reordering-free-ness of *which* packets survive
//                 (CoDel-ish head dropping; per-flow order of survivors is
//                 still FIFO).
enum class RxOverflowPolicy : std::uint8_t { kDropNewest, kDropOldest };

class RxRing {
 public:
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  // Enqueues unless the ring already holds `limit` packets (tail drop —
  // the caller counts it; overflows() counts it here too). Grows the slot
  // array to `limit` on first use.
  bool push(net::Packet&& p, std::size_t limit) {
    if (count_ >= limit) {
      ++overflows_;
      return false;
    }
    if (slots_.size() < limit) grow(limit);
    std::size_t pos = head_ + count_;
    if (pos >= slots_.size()) pos -= slots_.size();
    slots_[pos] = std::move(p);
    ++count_;
    return true;
  }

  // Dequeues the oldest packet. Precondition: !empty().
  net::Packet pop() {
    net::Packet p = std::move(slots_[head_]);
    ++head_;
    if (head_ == slots_.size()) head_ = 0;
    --count_;
    return p;
  }

  // Evicts the oldest queued packet to make room (the kDropOldest policy's
  // overflow action — the caller charges the drop for the evictee, then
  // push() is guaranteed to succeed). Counts an overflow. Precondition:
  // !empty().
  net::Packet evict_oldest() {
    ++overflows_;
    return pop();
  }

  // Discards every queued packet (node crash teardown), handing each to
  // `fn(Packet&&)` so the caller can account it before the buffer recycles.
  template <typename Fn>
  void flush(Fn&& fn) {
    while (!empty()) fn(pop());
  }

  // Overflow events on this ring (either policy), since construction.
  std::uint64_t overflows() const noexcept { return overflows_; }

 private:
  void grow(std::size_t limit) {
    std::vector<net::Packet> grown(limit);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t pos = head_ + i;
      if (pos >= slots_.size()) pos -= slots_.size();
      grown[i] = std::move(slots_[pos]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<net::Packet> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace srv6bpf::sim
