// RxRing: a bounded circular queue of packets — the per-(interface, CPU
// context) NIC RX ring of the multi-core Node.
//
// The previous std::deque backlog allocated and freed a block every handful
// of packets in steady state (push_back/pop_front churn walks the deque's
// node map), which is exactly the per-packet allocator traffic the pooled
// datapath eliminates. RxRing keeps a flat slot array sized to the node's
// rx_queue_limit: storage is allocated once when the ring first fills (or
// when the limit is raised — both warm-up events), and enqueue/drain in
// steady state touch no allocator at all. Slots hold net::Packet by value;
// a drained slot is left in the moved-from (buffer-less) state, so packet
// buffers are never held by an idle ring.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace srv6bpf::sim {

class RxRing {
 public:
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  // Enqueues unless the ring already holds `limit` packets (tail drop —
  // the caller counts it). Grows the slot array to `limit` on first use.
  bool push(net::Packet&& p, std::size_t limit) {
    if (count_ >= limit) return false;
    if (slots_.size() < limit) grow(limit);
    std::size_t pos = head_ + count_;
    if (pos >= slots_.size()) pos -= slots_.size();
    slots_[pos] = std::move(p);
    ++count_;
    return true;
  }

  // Dequeues the oldest packet. Precondition: !empty().
  net::Packet pop() {
    net::Packet p = std::move(slots_[head_]);
    ++head_;
    if (head_ == slots_.size()) head_ = 0;
    --count_;
    return p;
  }

 private:
  void grow(std::size_t limit) {
    std::vector<net::Packet> grown(limit);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t pos = head_ + i;
      if (pos >= slots_.size()) pos -= slots_.size();
      grown[i] = std::move(slots_[pos]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<net::Packet> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace srv6bpf::sim
