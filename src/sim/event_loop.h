// Discrete-event simulation core: a monotonic virtual clock and a
// time-ordered event queue. All timing in the repository is in integer
// nanoseconds of virtual time; nothing ever reads the wall clock.
//
// Closures are stored in place (sim::InlineFn): scheduling an event never
// heap-allocates once the queue's reserved storage is warm, which is what
// keeps the steady-state forwarding path allocation-free (bench_hotpath
// gates allocs-per-packet at zero).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_fn.h"

namespace srv6bpf::sim {

using TimeNs = std::uint64_t;

inline constexpr TimeNs kMicro = 1000;
inline constexpr TimeNs kMilli = 1000 * 1000;
inline constexpr TimeNs kSecond = 1000ull * 1000 * 1000;

class EventLoop {
 public:
  using Fn = InlineFn;

  EventLoop() {
    // The burst datapath still churns thousands of in-flight events on a
    // saturated run; start the heap with room so the steady state never
    // pays vector regrowth.
    std::vector<Event> storage;
    storage.reserve(4096);
    queue_ = std::priority_queue<Event, std::vector<Event>, Later>(
        Later{}, std::move(storage));
  }

  TimeNs now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now()).
  void schedule_at(TimeNs t, Fn fn) { schedule_at_key(t, 0, std::move(fn)); }
  // Schedules `fn` `delay` ns from now.
  void schedule(TimeNs delay, Fn fn) { schedule_at(now_ + delay, std::move(fn)); }
  // Same-time events execute in ascending `key`, FIFO within a key (plain
  // schedule_at uses key 0, so existing orderings are untouched). The
  // multi-core Node keys CPU-context service events by context id: when two
  // contexts complete at the same instant, their effects apply in a
  // deterministic context order instead of the order servicing happened to
  // be scheduled in.
  void schedule_at_key(TimeNs t, std::uint32_t key, Fn fn);

  // Runs a single event; false when the queue is empty.
  bool step();
  // Runs until the queue empties or the clock passes `t`.
  void run_until(TimeNs t);
  // Drains the queue completely (use with care: traffic generators that
  // reschedule forever will never drain; prefer run_until).
  void run();

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    TimeNs t;
    std::uint32_t key;  // same-time ordering class (CPU-context id)
    std::uint64_t seq;  // FIFO tie-break within (t, key)
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace srv6bpf::sim
