// Discrete-event simulation core: a monotonic virtual clock and a
// time-ordered event queue. All timing in the repository is in integer
// nanoseconds of virtual time; nothing ever reads the wall clock.
//
// Closures are stored in place (sim::InlineFn): scheduling an event never
// heap-allocates once the queue's reserved storage is warm, which is what
// keeps the steady-state forwarding path allocation-free (bench_hotpath
// gates allocs-per-packet at zero).
//
// Ordering contract. Events execute in ascending (t, key, birth) order where
// `birth` is the event's provenance stamp: the scheduling loop's clock at
// schedule time, the scheduling domain's id, and a per-domain monotone
// sequence number. In a single-loop (serial) run the stamp reduces exactly
// to the historical FIFO tie-break — the clock is non-decreasing across
// schedule calls, the domain is constant, and the sequence number is the old
// global counter — so same-(t, key) events still run in scheduling order,
// bit-for-bit. Under parallel PDES execution (sim/pdes_domain.h) the stamp
// is what makes the tie-break *deterministic*: a cross-domain delivery
// carries its sender's stamp through the mailbox, so the merged order per
// domain is a pure function of the simulation, never of thread interleaving
// or mailbox arrival order. tests/pdes_test.cc pins both properties.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_fn.h"

namespace srv6bpf::sim {

using TimeNs = std::uint64_t;

inline constexpr TimeNs kMicro = 1000;
inline constexpr TimeNs kMilli = 1000 * 1000;
inline constexpr TimeNs kSecond = 1000ull * 1000 * 1000;
// "No event pending": later than any schedulable time.
inline constexpr TimeNs kTimeInfinity = ~TimeNs{0};

class EventLoop {
 public:
  using Fn = InlineFn;

  // Provenance of a scheduled event: where and when the schedule call
  // happened in *logical* time. Totally ordered (birth_t, dom, seq); unique
  // because seq is per-domain monotone. Cross-domain mailbox messages carry
  // their sender's stamp so receivers reproduce one global order.
  struct Stamp {
    TimeNs birth_t = 0;      // scheduling loop's now() at schedule time
    std::uint32_t dom = 0;   // scheduling domain id
    std::uint64_t seq = 0;   // per-domain monotone schedule counter
  };

  EventLoop() {
    // The burst datapath still churns thousands of in-flight events on a
    // saturated run; start the heap with room so the steady state never
    // pays vector regrowth.
    std::vector<Event> storage;
    storage.reserve(4096);
    queue_ = std::priority_queue<Event, std::vector<Event>, Later>(
        Later{}, std::move(storage));
  }

  TimeNs now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now()).
  void schedule_at(TimeNs t, Fn fn) { schedule_at_key(t, 0, std::move(fn)); }
  // Schedules `fn` `delay` ns from now.
  void schedule(TimeNs delay, Fn fn) { schedule_at(now_ + delay, std::move(fn)); }
  // Same-time events execute in ascending `key`, FIFO within a key (plain
  // schedule_at uses key 0, so existing orderings are untouched). The
  // multi-core Node keys CPU-context service events by context id: when two
  // contexts complete at the same instant, their effects apply in a
  // deterministic context order instead of the order servicing happened to
  // be scheduled in.
  void schedule_at_key(TimeNs t, std::uint32_t key, Fn fn);

  // ---- PDES surface (sim/pdes_domain.h) ----
  // The domain id baked into this loop's stamps. 0 for the serial loop.
  void set_domain(std::uint32_t dom) noexcept { domain_ = dom; }
  std::uint32_t domain() const noexcept { return domain_; }
  // Allocates a stamp for a schedule that will happen *elsewhere* (a
  // cross-domain mailbox message): consumes this loop's sequence counter at
  // its current clock, exactly as a local schedule_at would have.
  Stamp make_stamp() noexcept { return Stamp{now_, domain_, next_seq_++}; }
  // Enqueues an event that was stamped by another loop (mailbox drain).
  // `t` is clamped to now() like schedule_at — conservative synchronization
  // guarantees arrivals are never in the receiver's past, so the clamp is
  // defensive only.
  void inject(TimeNs t, std::uint32_t key, Stamp stamp, Fn fn);
  // Earliest pending event time, kTimeInfinity when idle.
  TimeNs next_time() const noexcept {
    return queue_.empty() ? kTimeInfinity : queue_.top().t;
  }
  // Runs every event with t < bound (strict: `bound` is the conservative
  // horizon, events *at* it may still gain same-time predecessors from a
  // neighbor domain). Returns the number executed. now() is left at the last
  // executed event, never advanced to bound.
  std::size_t run_events_before(TimeNs bound);
  // Moves the clock forward to `t` without running anything (end-of-phase
  // catch-up for idle domains). No-op when t <= now().
  void advance_to(TimeNs t) noexcept {
    if (t > now_) now_ = t;
  }

  // Runs a single event; false when the queue is empty.
  bool step();
  // Runs until the queue empties or the clock passes `t`.
  void run_until(TimeNs t);
  // Drains the queue completely (use with care: traffic generators that
  // reschedule forever will never drain; prefer run_until).
  void run();

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    TimeNs t;
    std::uint32_t key;  // same-time ordering class (CPU-context id)
    Stamp birth;        // provenance: deterministic FIFO tie-break
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      if (a.key != b.key) return a.key > b.key;
      if (a.birth.birth_t != b.birth.birth_t)
        return a.birth.birth_t > b.birth.birth_t;
      if (a.birth.dom != b.birth.dom) return a.birth.dom > b.birth.dom;
      return a.birth.seq > b.birth.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint32_t domain_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace srv6bpf::sim
