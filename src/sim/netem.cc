#include "sim/netem.h"

#include <algorithm>
#include <cmath>

namespace srv6bpf::sim {

NetemQdisc::Decision NetemQdisc::enqueue(TimeNs now, std::size_t wire_bytes,
                                         Rng& rng) {
  TimeNs ready = now;

  // Random loss first (netem's loss stage sits before queueing): the packet
  // never occupies shaper or wire time. Guarded so loss-free configs consume
  // no extra RNG draws and keep their historical jitter sequences.
  if (cfg_.loss_prob > 0 && rng.chance(cfg_.loss_prob)) {
    ++drops_;
    ++losses_;
    return {.dropped = true, .deliver_at = 0};
  }

  if (cfg_.rate_bps > 0) {
    // Backlog currently in the shaper, expressed in time; reject when the
    // corresponding byte count exceeds the queue limit (tail drop).
    const TimeNs backlog_ns = shaper_free_at_ > now ? shaper_free_at_ - now : 0;
    const double backlog_bytes =
        static_cast<double>(backlog_ns) * static_cast<double>(cfg_.rate_bps) /
        8e9;
    if (backlog_bytes > static_cast<double>(cfg_.limit_bytes)) {
      ++drops_;
      return {.dropped = true, .deliver_at = 0};
    }
    const TimeNs ser = static_cast<TimeNs>(
        static_cast<double>(wire_bytes) * 8e9 /
        static_cast<double>(cfg_.rate_bps));
    shaper_free_at_ = std::max(shaper_free_at_, now) + ser;
    ready = shaper_free_at_;
  }

  TimeNs extra = cfg_.delay_ns;
  if (cfg_.jitter_ns > 0) {
    double jittered;
    if (cfg_.jitter_tau_ns > 0) {
      // Time-correlated jitter: an Ornstein-Uhlenbeck walk whose stationary
      // stddev is jitter_ns and whose correlation time is jitter_tau_ns.
      const double dt =
          static_cast<double>(now >= ou_last_t_ ? now - ou_last_t_ : 0);
      const double decay = std::exp(-dt / static_cast<double>(cfg_.jitter_tau_ns));
      const double sd = static_cast<double>(cfg_.jitter_ns);
      ou_state_ = ou_state_ * decay +
                  rng.normal(0.0, sd * std::sqrt(1.0 - decay * decay));
      ou_last_t_ = now;
      jittered = static_cast<double>(cfg_.delay_ns) + ou_state_;
    } else {
      jittered = rng.normal(static_cast<double>(cfg_.delay_ns),
                            static_cast<double>(cfg_.jitter_ns));
    }
    extra = jittered <= 0 ? 0 : static_cast<TimeNs>(jittered);
  }
  TimeNs deliver = ready + extra;
  if (cfg_.keep_order) {
    deliver = std::max(deliver, last_delivery_);
    last_delivery_ = deliver;
  }
  return {.dropped = false, .deliver_at = deliver};
}

}  // namespace srv6bpf::sim
