#include "sim/cpu_model.h"
