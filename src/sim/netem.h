// netem-style egress queueing discipline: configurable delay, normal jitter,
// rate limiting and a bounded queue. The hybrid-access experiment (§4.2) uses
// this exactly as the paper uses `tc netem`: to shape the two WAN links
// (50 Mbps / 30±5 ms and 30 Mbps / 5±2 ms) and to apply the TWD daemon's
// delay compensation at runtime.
#pragma once

#include <cstdint>

#include "sim/event_loop.h"
#include "util/rng.h"

namespace srv6bpf::sim {

struct NetemConfig {
  TimeNs delay_ns = 0;         // fixed extra delay
  TimeNs jitter_ns = 0;        // stddev of normal jitter around delay_ns
  // Jitter correlation time (netem's delay correlation, expressed as an
  // Ornstein-Uhlenbeck time constant). 0 = independent per packet; larger
  // values make latency wander slowly, as access links do in practice.
  TimeNs jitter_tau_ns = 0;
  std::uint64_t rate_bps = 0;  // 0 = unshaped
  std::uint32_t limit_bytes = 256 * 1024;  // queue capacity for the shaper
  bool keep_order = true;      // enforce FIFO delivery despite jitter
  // Independent per-packet loss probability (netem's `loss random P%`).
  // 0 keeps the qdisc's RNG consumption unchanged, so loss-free
  // configurations draw the exact same jitter sequences as before the knob
  // existed. Losses are counted separately from queue-overflow drops.
  double loss_prob = 0.0;
};

class NetemQdisc {
 public:
  NetemQdisc() = default;
  explicit NetemQdisc(NetemConfig cfg) : cfg_(cfg) {}

  const NetemConfig& config() const noexcept { return cfg_; }
  void set_config(const NetemConfig& cfg) noexcept { cfg_ = cfg; }
  // Runtime adjustment used by the TWD compensation daemon ("tc qdisc change
  // dev .. netem delay X").
  void set_delay(TimeNs delay_ns) noexcept { cfg_.delay_ns = delay_ns; }

  struct Decision {
    bool dropped = false;
    TimeNs deliver_at = 0;
  };
  // Computes the delivery time for `wire_bytes` enqueued at `now`, updating
  // the shaper state, or reports a queue-overflow drop.
  Decision enqueue(TimeNs now, std::size_t wire_bytes, Rng& rng);

  std::uint64_t drops() const noexcept { return drops_; }
  // Packets dropped by the random-loss stage specifically (a subset of the
  // Decision.dropped outcomes, kept separate from queue overflow).
  std::uint64_t losses() const noexcept { return losses_; }

 private:
  NetemConfig cfg_;
  TimeNs shaper_free_at_ = 0;   // when the rate shaper finishes current work
  TimeNs last_delivery_ = 0;    // for keep_order
  std::uint64_t drops_ = 0;
  std::uint64_t losses_ = 0;
  // Ornstein-Uhlenbeck jitter state (deviation from delay_ns, in ns).
  double ou_state_ = 0.0;
  TimeNs ou_last_t_ = 0;
};

}  // namespace srv6bpf::sim
