#include "sim/link.h"

#include <algorithm>

#include "net/buffer_pool.h"
#include "sim/node.h"
#include "sim/pdes_mailbox.h"

namespace srv6bpf::sim {

Link::Link(EventLoop& loop, Rng& rng, std::uint64_t bandwidth_bps,
           TimeNs prop_delay_ns)
    : bandwidth_bps_(bandwidth_bps), prop_delay_(prop_delay_ns) {
  for (Side& s : sides_) {
    s.loop = &loop;
    s.rng = &rng;
  }
}

void Link::attach(int side, Node* node, int ifindex) {
  sides_[side].node = node;
  sides_[side].ifindex = ifindex;
}

void Link::bind_side(int side, EventLoop& loop, Rng* rng,
                     PdesMailbox* crossing) {
  sides_[side].loop = &loop;
  sides_[side].rng = rng;
  sides_[side].crossing = crossing;
}

void Link::transmit(net::Packet&& pkt, int from_side) {
  net::PacketBurst b;
  b.push(std::move(pkt), sides_[from_side].loop->now());
  transmit_burst(std::move(b), from_side);
}

void Link::transmit_burst(net::PacketBurst&& burst, int from_side) {
  Side& tx = sides_[from_side];
  Side& rx = sides_[1 - from_side];
  if (rx.node == nullptr || burst.empty()) return;  // unattached: blackhole
  if (!side_up_[from_side]) {
    // Link down: the egress blackholes. The forwarding node normally never
    // gets here (Node::dispatch_burst checks the carrier and charges its own
    // drops_link_down / fast-reroutes first); this guard covers direct
    // transmit() callers and packets committed between check and send.
    tx.stats.drops_link_down += burst.size();
    return;
  }

  EventLoop& loop = *tx.loop;
  const TimeNs now = loop.now();
  net::PacketBurst out;  // survivors, stamped with their wire arrival times
  for (std::size_t i = 0; i < burst.size(); ++i) {
    net::Packet& pkt = burst.pkt(i);
    // The packet's logical enqueue time: its CPU-completion timestamp when
    // dispatched from a burst (>= now), or now for single-packet sends.
    const TimeNs t = std::max(burst.meta(i).at_ns, now);
    const std::size_t wire_bytes = pkt.size() + kWireOverheadBytes;

    // Stage 1: the egress qdisc (netem shaping/delay/jitter).
    const NetemQdisc::Decision qd = tx.qdisc.enqueue(t, wire_bytes, *tx.rng);
    if (qd.dropped) {
      ++tx.stats.drops;
      continue;
    }

    // Stage 2: the wire itself (serialization at link rate + propagation).
    const TimeNs ready = std::max(qd.deliver_at, tx.wire_free_at);
    const TimeNs backlog_ns = tx.wire_free_at > t ? tx.wire_free_at - t : 0;
    const double backlog_bytes = static_cast<double>(backlog_ns) *
                                 static_cast<double>(bandwidth_bps_) / 8e9;
    if (backlog_bytes > static_cast<double>(wire_queue_limit_bytes_)) {
      ++tx.stats.drops;
      continue;
    }
    const TimeNs ser =
        static_cast<TimeNs>(static_cast<double>(wire_bytes) * 8e9 /
                            static_cast<double>(bandwidth_bps_));
    tx.wire_free_at = ready + ser;
    const TimeNs arrival = tx.wire_free_at + prop_delay_;

    ++tx.stats.tx_packets;
    tx.stats.tx_bytes += wire_bytes;

    // Fault model: one random bit flips in flight with corrupt_prob while
    // the corruption window covers the packet's enqueue instant. Drawn once
    // per surviving packet from the side's dedicated stream.
    if (tx.corrupt_prob > 0.0 && t >= tx.corrupt_from && t < tx.corrupt_to &&
        pkt.size() > 0 && tx.corrupt_rng.chance(tx.corrupt_prob)) {
      const std::uint64_t bit = tx.corrupt_rng.uniform(
          0, static_cast<std::uint64_t>(pkt.size()) * 8 - 1);
      pkt.data()[bit >> 3] ^=
          static_cast<std::uint8_t>(1u << (bit & 7));
      ++tx.stats.corrupted;
    }
    out.push(std::move(pkt), arrival);
  }
  if (out.empty()) return;

  // Back-to-back serialization makes arrivals monotone, so one event at the
  // last arrival moves the whole burst; per-packet arrival times ride in the
  // metadata (interrupt coalescing, in effect). The burst is parked in a
  // pooled node so the event closure carries only a pointer — a by-value
  // PacketBurst capture would blow InlineFn's inline budget — and the Handle
  // recycles the node (and its packet buffers) even if the event loop is
  // torn down before delivery.
  const TimeNs last_arrival = out.meta(out.size() - 1).at_ns;
  Node* dst_node = rx.node;
  const int dst_if = rx.ifindex;
  net::BurstPool::Handle h(net::BurstPool::acquire());
  *h = std::move(out);
  InlineFn deliver([dst_node, dst_if, h = std::move(h)]() mutable {
    dst_node->receive_burst_from_link(std::move(*h), dst_if);
  });
  if (tx.crossing == nullptr) {
    loop.schedule_at(last_arrival, std::move(deliver));
  } else {
    // Cross-domain delivery: the peer's domain drains this ring and injects
    // the event with *this* side's provenance stamp, so the receiver's
    // same-timestamp tie-break is independent of drain timing.
    tx.crossing->push(
        PdesMail{last_arrival, 0, loop.make_stamp(), std::move(deliver)});
  }
}

}  // namespace srv6bpf::sim
