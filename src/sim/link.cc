#include "sim/link.h"

#include <algorithm>

#include "sim/node.h"

namespace srv6bpf::sim {

Link::Link(EventLoop& loop, Rng& rng, std::uint64_t bandwidth_bps,
           TimeNs prop_delay_ns)
    : loop_(loop), rng_(rng), bandwidth_bps_(bandwidth_bps),
      prop_delay_(prop_delay_ns) {}

void Link::attach(int side, Node* node, int ifindex) {
  sides_[side].node = node;
  sides_[side].ifindex = ifindex;
}

void Link::transmit(net::Packet&& pkt, int from_side) {
  Side& tx = sides_[from_side];
  Side& rx = sides_[1 - from_side];
  if (rx.node == nullptr) return;  // unattached: blackhole

  const TimeNs now = loop_.now();
  const std::size_t wire_bytes = pkt.size() + kWireOverheadBytes;

  // Stage 1: the egress qdisc (netem shaping/delay/jitter).
  const NetemQdisc::Decision qd = tx.qdisc.enqueue(now, wire_bytes, rng_);
  if (qd.dropped) {
    ++tx.stats.drops;
    return;
  }

  // Stage 2: the wire itself (serialization at link rate + propagation).
  const TimeNs ready = std::max(qd.deliver_at, tx.wire_free_at);
  const TimeNs backlog_ns = tx.wire_free_at > now ? tx.wire_free_at - now : 0;
  const double backlog_bytes = static_cast<double>(backlog_ns) *
                               static_cast<double>(bandwidth_bps_) / 8e9;
  if (backlog_bytes > static_cast<double>(wire_queue_limit_bytes_)) {
    ++tx.stats.drops;
    return;
  }
  const TimeNs ser = static_cast<TimeNs>(static_cast<double>(wire_bytes) * 8e9 /
                                         static_cast<double>(bandwidth_bps_));
  tx.wire_free_at = ready + ser;
  const TimeNs arrival = tx.wire_free_at + prop_delay_;

  ++tx.stats.tx_packets;
  tx.stats.tx_bytes += wire_bytes;

  Node* dst_node = rx.node;
  const int dst_if = rx.ifindex;
  loop_.schedule_at(arrival,
                    [dst_node, dst_if, p = std::move(pkt)]() mutable {
                      dst_node->receive_from_link(std::move(p), dst_if);
                    });
}

}  // namespace srv6bpf::sim
