// InlineFn: the event loop's callable, with in-place captures.
//
// std::function heap-allocates any closure past its ~16-byte small-buffer
// optimisation, which made every scheduled event (CPU service activations,
// link deliveries, deferred local handlers, generator ticks) an allocator
// round-trip. InlineFn stores the closure inside the event itself: a fixed
// capture budget sized for the largest datapath closures (a Node* + a
// by-value net::Packet for deferred local delivery is the high-water mark),
// enforced with static_asserts so an oversized capture is a compile error at
// the schedule() call site, never a silent heap fallback.
//
// Move-only by design — events are scheduled once and run once, and the
// closures own move-only resources (BurstPool handles, pooled Packets).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace srv6bpf::sim {

class InlineFn {
 public:
  // Capture budget. sizeof(net::Packet) + a Node* + alignment slack; the
  // static_assert below fires on any closure that outgrows it — raise the
  // budget consciously instead of spilling to the heap.
  static constexpr std::size_t kCapacity = 152;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineFn requires a void() callable");
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure captures exceed InlineFn::kCapacity — shrink the "
                  "capture (pool the payload, pass a pointer) or raise the "
                  "budget deliberately");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closure capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closure must be nothrow-movable (events relocate inside "
                  "the priority queue)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() {
    if (ops_ != nullptr) ops_->destroy(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct *dst from *src, then destroy *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kOpsFor = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  alignas(std::max_align_t) std::byte buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace srv6bpf::sim
