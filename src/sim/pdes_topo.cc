#include "sim/pdes_topo.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace srv6bpf::sim {

namespace {

net::Ipv6Addr hop_addr(std::size_t seg, std::size_t hop, unsigned host) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "fd00:%zx:%zx::%x", seg + 1, hop + 1, host);
  return net::Ipv6Addr::must_parse(buf);
}

net::Prefix hop_prefix(std::size_t seg, std::size_t hop) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "fd00:%zx:%zx::/64", seg + 1, hop + 1);
  return net::Prefix::parse(buf).value();
}

}  // namespace

RingTopo build_ring_topology(Network& net, const RingTopoSpec& spec) {
  if (spec.segments < 2)
    throw std::invalid_argument("build_ring_topology: need >= 2 segments");
  if (spec.routers_per_segment < 1)
    throw std::invalid_argument("build_ring_topology: need >= 1 router");
  const std::size_t p = spec.segments;
  const std::size_t r = spec.routers_per_segment;

  RingTopo topo;
  topo.segments.resize(p);

  // Pass 1: nodes, placed into one domain per segment. The sink that
  // segment s sends *to* belongs to segment s+1 (it is that domain's
  // ingress), so all sinks must exist before the links are wired.
  std::vector<Node*> sinks(p);
  for (std::size_t s = 0; s < p; ++s) {
    RingTopo::Segment& seg = topo.segments[s];
    seg.src = &net.add_node("src" + std::to_string(s));
    net.assign_domain(*seg.src, static_cast<std::uint32_t>(s));
    for (std::size_t j = 0; j < r; ++j) {
      Node& router =
          net.add_node("r" + std::to_string(s) + "_" + std::to_string(j));
      router.cpu.enabled = spec.router_cpu;
      router.cpu.profile = kXeonProfile;
      router.cpu.ncpus = spec.router_ncpus;
      net.assign_domain(router, static_cast<std::uint32_t>(s));
      seg.routers.push_back(&router);
    }
    sinks[s] = &net.add_node("sink" + std::to_string(s));
    net.assign_domain(*sinks[s], static_cast<std::uint32_t>(s));
    topo.node_count += r + 2;
  }

  // Pass 2: links and routes. Link j of segment s uses subnet
  // fd00:<s+1>:<j+1>::/64; j = 0 is src->first router, j in [1, r) the
  // chain, j = r the long-haul into the next segment's sink. Every node on
  // the chain routes the destination /64 at its downstream interface; the
  // sink owns the destination address, so the final hop delivers locally.
  for (std::size_t s = 0; s < p; ++s) {
    RingTopo::Segment& seg = topo.segments[s];
    seg.sink = sinks[(s + 1) % p];
    seg.src_addr = hop_addr(s, 0, 1);
    seg.dst_addr = hop_addr(s, r, 2);
    const net::Prefix dst_pfx = hop_prefix(s, r);

    Node* upstream = seg.src;
    for (std::size_t j = 0; j <= r; ++j) {
      Node* downstream = j < r ? seg.routers[j] : seg.sink;
      const TimeNs prop = j < r ? spec.intra_prop : spec.cross_prop;
      auto att = net.connect(*upstream, hop_addr(s, j, 1), *downstream,
                             hop_addr(s, j, 2), spec.bandwidth_bps, prop);
      upstream->ns().table(0).add_route(dst_pfx,
                                        {net::Ipv6Addr{}, att.a_ifindex, 1});
      if (j == r) seg.cross_link = att.link;
      upstream = downstream;
    }
  }
  return topo;
}

}  // namespace srv6bpf::sim
