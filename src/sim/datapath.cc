#include "sim/datapath.h"

#include <array>

#include "seg6/lwt.h"
#include "seg6/seg6local.h"
#include "sim/node.h"

namespace srv6bpf::sim {

namespace {

// Scratch the stages share for one burst. Lives on the caller's stack so the
// pipeline stays re-entrant (ICMP generation sends from inside a burst).
struct BurstState {
  std::array<seg6::PipelineResult, net::kMaxBurstPackets> r;
  std::array<bool, net::kMaxBurstPackets> active;
};

}  // namespace

void Datapath::process_burst(net::PacketBurst& b, bool local_out,
                             seg6::ProcessTrace* traces) {
  const std::size_t n = b.size();
  Node& node = node_;
  seg6::Netns& ns = node.ns();
  // Everything this run charges lands on the invoking CPU context: its
  // NodeStats shard (Node::cur() is set by the service event / local-out
  // entry points before we get here) and, inside the route lookups, the
  // netns's per-context FIB cache slot selected by Netns::current_cpu.
  NodeStats& stats = node.cur().stats;

  // Drop charging goes through note_drop so per-reason first-occurrence
  // timestamps are captured. The time used is the packet's own logical time —
  // wire arrival for received packets, the entry clock for locally
  // originated ones — never the (coalescing-dependent) service event clock,
  // keeping the timestamps burst-invariant.
  const TimeNs entry_now = node.loop().now();
  auto drop_time = [entry_now](const net::Packet& p) {
    return p.rx_tstamp_ns != 0 ? static_cast<TimeNs>(p.rx_tstamp_ns)
                               : entry_now;
  };

  BurstState st;
  // Group scratch: packet/trace/result views over one run of packets that
  // share a lookup key (destination or route).
  std::array<net::Packet*, net::kMaxBurstPackets> gp;
  std::array<seg6::ProcessTrace*, net::kMaxBurstPackets> gt;
  std::array<seg6::PipelineResult, net::kMaxBurstPackets> gr;
  std::array<std::size_t, net::kMaxBurstPackets> gi;

  // Finalizers. These mirror the single-packet state machine's exits; the
  // specific drop counter for kDrop verdicts is bumped by the caller side.
  auto finish_drop = [&](std::size_t i) {
    b.meta(i).verdict = net::BurstVerdict::kDrop;
    st.active[i] = false;
  };
  auto finish_local = [&](std::size_t i) {
    b.meta(i).verdict = net::BurstVerdict::kLocal;
    st.active[i] = false;
  };

  // ---- Stage 1: classify ---------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    traces[i].reset();
    st.r[i] = seg6::PipelineResult::cont(0);
    st.active[i] = true;
    net::Packet& p = b.pkt(i);
    if (p.size() < net::kIpv6HeaderSize || p.ipv6().version() != 6) {
      stats.note_drop(DropReason::kMalformed, drop_time(p));
      traces[i].dropped = true;
      finish_drop(i);
    }
  }

  // First seg6local pass: run-group consecutive valid packets by destination
  // and resolve the SID table once per run (mirrors the pre-loop lookup of
  // the single-packet pipeline, so it does not consume a disposition round).
  if (!local_out) {
    std::size_t i = 0;
    while (i < n) {
      if (!st.active[i]) {
        ++i;
        continue;
      }
      const net::Ipv6Addr dst = b.pkt(i).ipv6().dst();
      std::size_t m = 0;
      std::size_t j = i;
      for (; j < n && st.active[j] && b.pkt(j).ipv6().dst() == dst; ++j) {
        gp[m] = &b.pkt(j);
        gt[m] = &traces[j];
        gi[m] = j;
        ++m;
      }
      if (const seg6::Seg6LocalEntry* sid = ns.seg6local().lookup(dst)) {
        seg6::seg6local_process_burst(ns, {gp.data(), m}, *sid, gt.data(),
                                      gr.data());
        for (std::size_t k = 0; k < m; ++k) st.r[gi[k]] = gr[k];
      } else if (ns.is_local(dst)) {
        for (std::size_t k = 0; k < m; ++k) finish_local(gi[k]);
      }
      // else: st.r stays kContinue(0) — plain FIB forwarding.
      i = j;
    }
  }

  // ---- Stages 2+3: disposition rounds (seg6local / lwt / fib) -------------
  // Each round is one iteration of the former per-packet disposition loop:
  // settle non-continue dispositions, then handle the continues with grouped
  // lookups. Encapsulations and rewritten destinations come back for another
  // round; the bound defeats routing loops inside one node.
  for (int round = 0; round < 4; ++round) {
    std::size_t still_continue = 0;

    // Settle.
    for (std::size_t i = 0; i < n; ++i) {
      if (!st.active[i]) continue;
      net::Packet& p = b.pkt(i);
      switch (st.r[i].disposition) {
        case seg6::Disposition::kDrop:
          stats.note_drop(DropReason::kVerdict, drop_time(p));
          traces[i].dropped = true;
          finish_drop(i);
          break;
        case seg6::Disposition::kLocal:
          finish_local(i);
          break;
        case seg6::Disposition::kUseRoute:
          // Only produced inside the kContinue handling; treated there.
          stats.note_drop(DropReason::kNoRoute, drop_time(p));
          finish_drop(i);
          break;
        case seg6::Disposition::kForward: {
          if (!p.dst().valid) {
            stats.note_drop(DropReason::kNoRoute, drop_time(p));
            finish_drop(i);
            break;
          }
          b.meta(i).oif = p.dst().oif;
          if (!local_out) {
            const std::uint8_t hl = p.ipv6().hop_limit();
            if (hl <= 1) {
              stats.note_drop(DropReason::kTtl, drop_time(p));
              node.send_icmp_time_exceeded(p);
              traces[i].dropped = true;
              finish_drop(i);
              break;
            }
            p.ipv6().set_hop_limit(static_cast<std::uint8_t>(hl - 1));
          }
          b.meta(i).verdict = net::BurstVerdict::kForward;
          st.active[i] = false;
          break;
        }
        case seg6::Disposition::kContinue:
          ++still_continue;
          break;
      }
    }
    if (still_continue == 0) break;

    // Continue handling, run-grouped by (destination, table).
    std::size_t i = 0;
    while (i < n) {
      if (!st.active[i]) {
        ++i;
        continue;
      }
      const net::Ipv6Addr dst = b.pkt(i).ipv6().dst();
      const int table = st.r[i].table;
      std::size_t m = 0;
      std::size_t j = i;
      for (; j < n && st.active[j] && st.r[j].table == table &&
             b.pkt(j).ipv6().dst() == dst;
           ++j) {
        gp[m] = &b.pkt(j);
        gt[m] = &traces[j];
        gi[m] = j;
        ++m;
      }
      i = j;

      // A rewritten destination may target another local SID (e.g. B6
      // policies whose first segment is local) or a local address (e.g.
      // after decap on the final node).
      if (const seg6::Seg6LocalEntry* sid = ns.seg6local().lookup(dst)) {
        seg6::seg6local_process_burst(ns, {gp.data(), m}, *sid, gt.data(),
                                      gr.data());
        for (std::size_t k = 0; k < m; ++k) st.r[gi[k]] = gr[k];
        continue;  // next round settles
      }
      if (ns.is_local(dst)) {
        for (std::size_t k = 0; k < m; ++k) finish_local(gi[k]);
        continue;
      }

      const seg6::Fib* fib = ns.find_table(table);
      const seg6::Route* route =
          fib ? fib->lookup(dst, ns.fib_cache_slot()) : nullptr;
      for (std::size_t k = 0; k < m; ++k) ++gt[k]->fib_lookups;
      if (route == nullptr) {
        for (std::size_t k = 0; k < m; ++k) {
          stats.note_drop(DropReason::kNoRoute, drop_time(*gp[k]));
          gt[k]->dropped = true;
          finish_drop(gi[k]);
        }
        continue;
      }

      // Resolves the route's own nexthop into the packet's dst metadata
      // (ECMP per-packet: the flow hash keeps flows on one path). When the
      // selected nexthop's egress link is down and the route carries a
      // precomputed TI-LFA backup, the point-of-local-repair path activates
      // right here: encapsulate with the repair segment list and steer out
      // the backup adjacency (or re-run the lookup on the new outer
      // destination when the backup has no pinned interface).
      auto take_nexthop = [&](std::size_t k) {
        if (route->nexthops.empty()) {
          stats.note_drop(DropReason::kNoRoute, drop_time(*gp[k]));
          finish_drop(gi[k]);
          return;
        }
        net::Packet& p = *gp[k];
        const seg6::Nexthop& nh =
            seg6::Fib::select_nexthop(*route, seg6::flow_hash(p));
        if (node.iface_link_down(nh.oif) && route->frr != nullptr) {
          const seg6::FrrBackup& frr = *route->frr;
          if (!frr.segments.empty()) {
            const net::Ipv6Addr src = ns.sr_tunsrc.is_unspecified()
                                          ? p.ipv6().src()
                                          : ns.sr_tunsrc;
            if (!seg6::seg6_do_encap(p, frr.segments, src)) {
              stats.note_drop(DropReason::kLinkDown, drop_time(p));
              gt[k]->dropped = true;
              finish_drop(gi[k]);
              return;
            }
            ++gt[k]->encaps;
          }
          ++stats.frr_reroutes;
          if (frr.nh.oif >= 0 && !node.iface_link_down(frr.nh.oif)) {
            p.dst().nexthop =
                frr.nh.via.is_unspecified() ? p.ipv6().dst() : frr.nh.via;
            p.dst().oif = frr.nh.oif;
            p.dst().valid = true;
            st.r[gi[k]] = seg6::PipelineResult::forward();
          } else {
            // No pinned backup adjacency: the rewritten outer destination
            // (the first repair segment) goes back for another lookup round.
            st.r[gi[k]] = seg6::PipelineResult::cont(0);
          }
          return;
        }
        p.dst().nexthop = nh.via.is_unspecified() ? dst : nh.via;
        p.dst().oif = nh.oif;
        p.dst().valid = true;
        st.r[gi[k]] = seg6::PipelineResult::forward();
      };

      if (route->lwt && route->lwt->kind != seg6::LwtState::Kind::kNone) {
        seg6::lwt_process_burst(ns, {gp.data(), m}, *route->lwt,
                                seg6::LwtHook::kXmit, gt.data(), gr.data());
        for (std::size_t k = 0; k < m; ++k) {
          if (gr[k].disposition == seg6::Disposition::kUseRoute)
            take_nexthop(k);
          else
            st.r[gi[k]] = gr[k];
        }
        continue;
      }
      for (std::size_t k = 0; k < m; ++k) take_nexthop(k);
    }
  }

  // Disposition rounds exhausted: whatever is still in flight loops.
  for (std::size_t i = 0; i < n; ++i) {
    if (!st.active[i]) continue;
    stats.note_drop(DropReason::kNoRoute, drop_time(b.pkt(i)));
    finish_drop(i);
  }

  for (std::size_t i = 0; i < n; ++i) stats.account(traces[i]);
}

}  // namespace srv6bpf::sim
