// Node: a simulated machine (server, router or CPE) running the seg6/eBPF
// network stack.
//
// Owns a seg6::Netns (FIB tables, seg6local SIDs, BPF subsystem), a set of
// interfaces attached to links, and an optional CPU service model that turns
// per-packet processing cost (sim/costmodel.h) into a forwarding-rate cap
// with a bounded RX backlog — exactly how the paper's single-core routers
// saturate at 610 kpps while the source offers 3 Mpps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "seg6/ctx.h"
#include "sim/costmodel.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Node {
 public:
  Node(EventLoop& loop, Rng& rng, std::string name);

  const std::string& name() const noexcept { return name_; }
  seg6::Netns& ns() noexcept { return ns_; }
  EventLoop& loop() noexcept { return loop_; }

  // ---- interfaces ----
  // Registers an interface attached to `link` at `side` with address `addr`
  // (added as a local address). Returns the ifindex.
  int add_interface(Link& link, int side, const net::Ipv6Addr& addr);
  std::size_t interface_count() const noexcept { return ifaces_.size(); }
  const net::Ipv6Addr& interface_addr(int ifindex) const {
    return ifaces_[static_cast<std::size_t>(ifindex)].addr;
  }

  // ---- CPU service model ----
  struct Cpu {
    bool enabled = false;  // hosts: off; routers under test: on
    CpuProfile profile = kXeonProfile;
    std::size_t rx_queue_limit = 512;  // packets (NIC ring + softirq backlog)
    TimeNs busy_until = 0;
  };
  Cpu cpu;

  // ---- traffic entry points ----
  // Called by Link when a packet arrives on `ifindex`.
  void receive_from_link(net::Packet&& pkt, int ifindex);
  // Local output path (applications sending); bypasses the CPU model and the
  // hop-limit decrement, like a locally originated skb.
  void send(net::Packet&& pkt);

  // Delivery callback for locally addressed packets.
  using LocalHandler = std::function<void(net::Packet&&, TimeNs now)>;
  void set_local_handler(LocalHandler handler) {
    local_handler_ = std::move(handler);
  }

  NodeStats stats;

  // Exposed for tests: run the forwarding pipeline synchronously and return
  // the last trace (no CPU model, no transmission).
  const seg6::ProcessTrace& last_trace() const noexcept { return trace_; }

 private:
  struct Iface {
    Link* link = nullptr;
    int side = 0;
    net::Ipv6Addr addr;
  };

  struct Outcome {
    enum class Kind { kTransmit, kLocal, kDrop } kind = Kind::kDrop;
    int oif = -1;
    net::Packet pkt;
  };

  Outcome process(net::Packet&& pkt, bool local_out);
  void dispatch(Outcome&& out, TimeNs now);
  void maybe_schedule_service();
  void service_one();
  void send_icmp_time_exceeded(const net::Packet& orig);

  EventLoop& loop_;
  Rng& rng_;
  std::string name_;
  seg6::Netns ns_;
  std::vector<Iface> ifaces_;
  LocalHandler local_handler_;
  seg6::ProcessTrace trace_;

  std::deque<std::pair<net::Packet, int>> rx_queue_;
  bool servicing_ = false;
};

}  // namespace srv6bpf::sim
