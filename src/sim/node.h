// Node: a simulated machine (server, router or CPE) running the seg6/eBPF
// network stack.
//
// Owns a seg6::Netns (FIB tables, seg6local SIDs, BPF subsystem), a set of
// interfaces attached to links, and an optional CPU service model that turns
// per-packet processing cost (sim/costmodel.h) into a forwarding-rate cap
// with a bounded RX backlog — exactly how the paper's single-core routers
// saturate at 610 kpps while the source offers 3 Mpps.
//
// Forwarding is burst-oriented: each CPU service event drains up to
// Cpu::rx_burst packets from the per-interface RX rings (NAPI polling) and
// runs them through the staged Datapath (sim/datapath.h). The per-packet
// *charged* CPU cost, the servicing node's completion times and local
// delivery times follow the sequential model exactly; what burst size may
// shift is coalescing at the edges — a downstream node sees a burst arrive
// as one delivery at its last wire arrival (interrupt coalescing, bounded
// by one burst's serialization time), and a BPF program reading
// bpf_ktime_get_ns sees the service event's clock for the whole burst
// rather than per-packet staggered clocks. Delivery counts, traces and
// final stats are burst-invariant (tests/burst_test.cc); bursts amortise
// the *simulator's* work (events, lookups, BPF program setup), not the
// modelled router's.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/burst.h"
#include "net/packet.h"
#include "seg6/ctx.h"
#include "sim/costmodel.h"
#include "sim/datapath.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Node {
 public:
  Node(EventLoop& loop, Rng& rng, std::string name);

  const std::string& name() const noexcept { return name_; }
  seg6::Netns& ns() noexcept { return ns_; }
  EventLoop& loop() noexcept { return loop_; }

  // ---- interfaces ----
  // Registers an interface attached to `link` at `side` with address `addr`
  // (added as a local address). Returns the ifindex.
  int add_interface(Link& link, int side, const net::Ipv6Addr& addr);
  std::size_t interface_count() const noexcept { return ifaces_.size(); }
  // Throws std::out_of_range on a bad ifindex.
  const net::Ipv6Addr& interface_addr(int ifindex) const;

  // ---- CPU service model ----
  struct Cpu {
    bool enabled = false;  // hosts: off; routers under test: on
    CpuProfile profile = kXeonProfile;
    std::size_t rx_queue_limit = 512;  // per-interface ring (NIC + softirq)
    // Packets drained per service event (the NAPI poll budget); capped at
    // net::kMaxBurstPackets. Trades simulator efficiency against delivery
    // coalescing granularity; charged costs and counts are burst-invariant.
    std::size_t rx_burst = kDefaultRxBurst;
    TimeNs busy_until = 0;
  };
  Cpu cpu;

  // ---- traffic entry points ----
  // Single-packet arrival: thin wrapper over receive_burst_from_link.
  void receive_from_link(net::Packet&& pkt, int ifindex);
  // Burst arrival (Link::transmit_burst): each packet carries its own wire
  // arrival time in the burst metadata.
  void receive_burst_from_link(net::PacketBurst&& burst, int ifindex);
  // Local output path (applications sending); bypasses the CPU model and the
  // hop-limit decrement, like a locally originated skb.
  void send(net::Packet&& pkt);
  // Vector local output: the whole burst enters the datapath at once.
  void send_burst(net::PacketBurst&& burst);

  // Delivery callback for locally addressed packets.
  using LocalHandler = std::function<void(net::Packet&&, TimeNs now)>;
  void set_local_handler(LocalHandler handler) {
    local_handler_ = std::move(handler);
  }

  NodeStats stats;

  // Exposed for tests: the trace of the last packet through the pipeline.
  const seg6::ProcessTrace& last_trace() const noexcept { return trace_; }

 private:
  friend class Datapath;

  struct Iface {
    Link* link = nullptr;
    int side = 0;
    net::Ipv6Addr addr;
    std::deque<net::Packet> rx_ring;  // CPU-model ingress backlog
  };

  void enqueue_rx(net::Packet&& pkt, int ifindex);
  void maybe_schedule_service();
  void service_burst();
  bool rings_empty() const;
  // Non-CPU path: datapath + dispatch at the current time.
  void process_and_dispatch(net::PacketBurst& burst, bool local_out);
  // Delivers verdicts: locals to the handler, forwards grouped per egress
  // interface into Link::transmit_burst at their per-packet timestamps.
  void dispatch_burst(net::PacketBurst& burst);
  void send_icmp_time_exceeded(const net::Packet& orig);

  EventLoop& loop_;
  Rng& rng_;
  std::string name_;
  seg6::Netns ns_;
  std::vector<Iface> ifaces_;
  LocalHandler local_handler_;
  seg6::ProcessTrace trace_;
  Datapath datapath_;

  std::size_t rr_iface_ = 0;  // round-robin ring drain cursor
  bool servicing_ = false;
};

}  // namespace srv6bpf::sim
