// Node: a simulated machine (server, router or CPE) running the seg6/eBPF
// network stack.
//
// Owns a seg6::Netns (FIB tables, seg6local SIDs, BPF subsystem), a set of
// interfaces attached to links, and an optional CPU service model that turns
// per-packet processing cost (sim/costmodel.h) into a forwarding-rate cap
// with a bounded RX backlog — exactly how the paper's single-core routers
// saturate at 610 kpps while the source offers 3 Mpps.
//
// Forwarding is burst-oriented and (optionally) multi-core. The CPU model is
// `Cpu::ncpus` independent execution contexts (`CpuContext`), each with its
// own busy_until clock, its own NodeStats shard and its own FIB route-cache
// slot — the paper pins all IRQs to one core (ncpus = 1, the default, which
// reproduces its figures bit-for-bit); raising ncpus models how Linux scales
// the same datapath with RSS. An RSS steering stage hashes each arriving
// packet's IPv6 flow tuple (src, dst, flow label) to a context, so every
// flow is serviced by exactly one context and per-flow ordering is
// structural; each context then drains *its* per-interface RX rings
// round-robin (NAPI polling per core) up to Cpu::rx_burst packets per
// service event and runs them through the staged Datapath (sim/datapath.h).
// While a context runs, Netns::current_cpu carries its id into the eBPF
// ExecEnv, giving programs bpf_get_smp_processor_id and per-CPU map slots.
//
// The per-packet *charged* CPU cost, each context's completion times and
// local delivery times follow the sequential model exactly; what burst size
// may shift is coalescing at the edges — a downstream node sees a burst
// arrive as one delivery at its last wire arrival (interrupt coalescing,
// bounded by one burst's serialization time), and a BPF program reading
// bpf_ktime_get_ns sees the service event's clock for the whole burst
// rather than per-packet staggered clocks. Delivery counts, traces and
// final stats are burst-invariant (tests/burst_test.cc) and ncpus=1 runs
// are bit-identical to the historical single-core path (tests/mc_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/burst.h"
#include "net/packet.h"
#include "seg6/ctx.h"
#include "sim/costmodel.h"
#include "sim/datapath.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/rx_ring.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Node {
 public:
  Node(EventLoop& loop, Rng& rng, std::string name);

  const std::string& name() const noexcept { return name_; }
  seg6::Netns& ns() noexcept { return ns_; }
  EventLoop& loop() noexcept { return *loop_; }

  // Repoints this node's scheduling (and its clock) at a PDES domain loop
  // (PdesNet::seal). Everything the node or its apps schedule afterwards —
  // CPU service events, deferred local deliveries, trafgen ticks — lands in
  // the domain. Only valid while the node is quiescent: before traffic
  // starts and with nothing in flight.
  void bind_loop(EventLoop& loop) noexcept { loop_ = &loop; }

  // ---- interfaces ----
  // Registers an interface attached to `link` at `side` with address `addr`
  // (added as a local address). Returns the ifindex.
  int add_interface(Link& link, int side, const net::Ipv6Addr& addr);
  std::size_t interface_count() const noexcept { return ifaces_.size(); }
  // Throws std::out_of_range on a bad ifindex.
  const net::Ipv6Addr& interface_addr(int ifindex) const;
  // The link attached at `ifindex`, or nullptr for a bad index. The fault
  // injector walks a crashing node's adjacencies with this to cut carrier on
  // every attached link (one event per side replica, in that side's domain).
  Link* interface_link(int ifindex) const noexcept {
    if (ifindex < 0 || static_cast<std::size_t>(ifindex) >= ifaces_.size())
      return nullptr;
    return ifaces_[static_cast<std::size_t>(ifindex)].link;
  }
  // True when `oif` names a valid interface whose attached link is down —
  // the condition that triggers a route's fast-reroute backup in the
  // datapath and the drops_link_down counter at dispatch. Reads this side's
  // carrier replica only, so under PDES partitioning the check never
  // touches the peer domain's state (and sees the cut at exactly the
  // instant this domain's link-down event fires).
  bool iface_link_down(int oif) const noexcept {
    if (oif < 0 || static_cast<std::size_t>(oif) >= ifaces_.size())
      return false;
    const Iface& ifc = ifaces_[static_cast<std::size_t>(oif)];
    return ifc.link != nullptr && !ifc.link->side_up(ifc.side);
  }

  // ---- CPU service model ----
  struct Cpu {
    bool enabled = false;  // hosts: off; routers under test: on
    CpuProfile profile = kXeonProfile;
    std::size_t rx_queue_limit = 512;  // per (interface, context) RX ring
    // What happens to an arrival when its RX ring is full: refuse it (tail
    // drop, the default and historical behaviour) or evict the oldest
    // queued packet to admit it (head drop). Either way the losing packet
    // is charged to drops_rx_queue and the ring counts the overflow.
    RxOverflowPolicy rx_overflow_policy = RxOverflowPolicy::kDropNewest;
    // Packets drained per service event (the NAPI poll budget); capped at
    // net::kMaxBurstPackets. Trades simulator efficiency against delivery
    // coalescing granularity; charged costs and counts are burst-invariant.
    std::size_t rx_burst = kDefaultRxBurst;
    // RSS execution contexts (cores servicing this node's datapath).
    // Clamped to [1, ebpf::kMaxCpus]; 1 = the paper's single pinned core.
    // Set before traffic starts: contexts and their RX rings are sized on
    // first use.
    std::size_t ncpus = 1;
  };
  Cpu cpu;

  // One RSS execution context: a core's scheduling state and stats shard.
  // (Its FIB route-cache slot lives in the Netns, selected by
  // Netns::current_cpu, so the seg6 helper paths reach it too.)
  struct CpuContext {
    std::uint32_t id = 0;
    TimeNs busy_until = 0;
    bool servicing = false;
    std::size_t rr_iface = 0;  // round-robin ring drain cursor
    NodeStats stats;
  };

  // ---- traffic entry points ----
  // Single-packet arrival: thin wrapper over receive_burst_from_link.
  void receive_from_link(net::Packet&& pkt, int ifindex);
  // Burst arrival (Link::transmit_burst): each packet carries its own wire
  // arrival time in the burst metadata.
  void receive_burst_from_link(net::PacketBurst&& burst, int ifindex);
  // Local output path (applications sending); bypasses the CPU model and the
  // hop-limit decrement, like a locally originated skb.
  void send(net::Packet&& pkt);
  // Vector local output: the whole burst enters the datapath at once.
  void send_burst(net::PacketBurst&& burst);

  // Delivery callback for locally addressed packets.
  using LocalHandler = std::function<void(net::Packet&&, TimeNs now)>;
  void set_local_handler(LocalHandler handler) {
    local_handler_ = std::move(handler);
  }

  // ---- crash / restart (fault injection; sim/fault_injector.h) ----
  // Models a power-fail crash at the current instant: every RX ring flushes
  // (each queued packet counted as drops_node_down), per-CPU contexts reset
  // (busy clocks, service flags, drain cursors), and the soft state dies —
  // FIB tables, seg6local SID bindings and eBPF map *contents* are wiped
  // (program text, map definitions and interface config survive, like
  // binaries on disk). Until restart() the node blackholes: arrivals and
  // local sends drop with drops_node_down. Link carrier is not touched
  // here — under PDES each side's replica must flip in its own domain, so
  // that is the FaultInjector's job.
  void crash();
  // Power back on: the node forwards again, but with a cold (empty) FIB
  // until the control-plane re-installer repopulates it — meanwhile traffic
  // drops with no_route here and neighbors degrade to their seg6::FrrBackup
  // paths.
  void restart();
  bool is_down() const noexcept { return down_; }

  // NIC/IRQ-side drop charge from outside the datapath (traffic generators
  // refused admission by the BufferPool cap, fault machinery): lands in the
  // pre-steering stats shard so Node::stats() and the conservation ledger
  // see it.
  void note_nic_drop(DropReason reason, TimeNs at_ns) {
    nic_stats_.note_drop(reason, at_ns);
  }

  // ---- stats ----
  // Aggregated view: NIC/IRQ-side counters plus the sum of every context's
  // shard. The per-context breakdown is cpu_stats(k).
  NodeStats stats() const;
  // Overflow events summed over every (interface, context) RX ring — the
  // counted face of the Cpu::rx_overflow_policy.
  std::uint64_t rx_ring_overflows() const noexcept;
  std::size_t context_count() const noexcept { return ctxs_.size(); }
  // Shard of context `k`; throws std::out_of_range past context_count().
  const NodeStats& cpu_stats(std::size_t k) const;

  // RSS steering hash over the outer IPv6 flow tuple (src, dst, flow
  // label) — exposed so tests and benches can predict context placement.
  static std::uint32_t rss_hash(const net::Packet& pkt);

  // Exposed for tests: the trace of the last packet through the pipeline.
  const seg6::ProcessTrace& last_trace() const noexcept { return trace_; }

 private:
  friend class Datapath;

  struct Iface {
    Link* link = nullptr;
    int side = 0;
    net::Ipv6Addr addr;
    // CPU-model ingress backlog: one RX ring per CPU context (the NIC's RSS
    // queues), sized with the context vector. RxRing slot storage is
    // allocated once at rx_queue_limit and recycled in place — steady-state
    // enqueue/drain never touches the allocator.
    std::vector<RxRing> rx_rings;
  };

  // Sizes ctxs_ (and every interface's ring vector) to the clamped
  // cpu.ncpus; returns the context vector.
  std::vector<CpuContext>& contexts();
  std::size_t steer(const net::Packet& pkt) const;  // RSS: packet -> context
  void enqueue_rx(net::Packet&& pkt, int ifindex);
  void maybe_schedule_service(CpuContext& ctx);
  void service_burst(CpuContext& ctx);
  bool rings_empty(const CpuContext& ctx) const;
  // Non-CPU path: datapath + dispatch at the current time.
  void process_and_dispatch(net::PacketBurst& burst, bool local_out);
  // Delivers verdicts: locals to the handler, forwards grouped per egress
  // interface into Link::transmit_burst at their per-packet timestamps.
  void dispatch_burst(net::PacketBurst& burst);
  void send_icmp_time_exceeded(const net::Packet& orig);

  // Execution-context accounting target. While a context services a burst
  // (or the non-CPU path runs on context 0) cur_ctx_ points at it; datapath
  // and dispatch charge cur().stats and use cur().fib_cache. Re-entrant
  // work (ICMP generation, local handlers that send) stays on the current
  // context, as it would on a real core.
  CpuContext& cur() noexcept { return *cur_ctx_; }

  EventLoop* loop_;  // rebindable: PdesNet::seal moves the node into a domain
  Rng& rng_;
  std::string name_;
  seg6::Netns ns_;
  std::vector<Iface> ifaces_;
  LocalHandler local_handler_;
  seg6::ProcessTrace trace_;
  Datapath datapath_;

  std::vector<CpuContext> ctxs_;
  CpuContext* cur_ctx_ = nullptr;
  bool down_ = false;  // crashed (crash()) and not yet restart()ed
  // NIC/IRQ-side counters charged before RSS steering picks a context
  // (rx_packets, ring-overflow drops).
  NodeStats nic_stats_;
};

}  // namespace srv6bpf::sim
