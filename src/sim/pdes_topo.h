// Generated multi-domain topology for parallel-simulation tests and the
// bench_pdes_sweep gate: a ring of `segments` independent forwarding chains,
// one PDES domain per segment.
//
//   segment s:  src_s -> r_s_0 -> ... -> r_s_{R-1} ==cross==> sink_{s+1}
//
// Every hop inside a segment is a short-haul link (intra_prop); the single
// link that hands the chain's traffic to the *next* segment's sink is a
// long-haul (cross_prop), which becomes the ring's PDES lookahead. With the
// default shape (8 segments x 5 routers + src + sink = 56 nodes) almost all
// work — the CPU-modelled router chain — is intra-domain, and the only
// synchronization edges are the ring's long-hauls: the realistic "many
// mostly-independent sites" shape the >= 3x speedup gate runs on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/network.h"

namespace srv6bpf::sim {

struct RingTopoSpec {
  std::size_t segments = 8;            // one PDES domain per segment
  std::size_t routers_per_segment = 5; // CPU-modelled hops in each chain
  std::uint64_t bandwidth_bps = 10ull * 1000 * 1000 * 1000;
  TimeNs intra_prop = 5 * kMicro;      // short-haul hops inside a segment
  TimeNs cross_prop = 50 * kMicro;     // segment-to-segment long-haul =
                                       // the ring's lookahead
  bool router_cpu = true;              // Xeon service model on the routers
  std::size_t router_ncpus = 1;
};

struct RingTopo {
  struct Segment {
    Node* src = nullptr;            // traffic source (host, no CPU model)
    std::vector<Node*> routers;     // the chain, in forwarding order
    Node* sink = nullptr;           // where this segment's traffic lands
                                    // (owned by the *next* segment's domain)
    net::Ipv6Addr src_addr;         // src's address on its first link
    net::Ipv6Addr dst_addr;         // sink's address = the traffic target
    Link* cross_link = nullptr;     // the long-haul into the next segment
  };
  std::vector<Segment> segments;
  std::size_t node_count = 0;
};

// Builds the ring into `net`, installs the per-segment /64 routes, and
// assigns every segment's nodes to domain `s` via Network::assign_domain.
// Call before seal_domains(); with no seal the same topology runs serially.
RingTopo build_ring_topology(Network& net, const RingTopoSpec& spec);

}  // namespace srv6bpf::sim
