// PdesMailbox: the lock-free SPSC channel between two PDES domains.
//
// Exactly one producer (the sending domain's worker thread, from inside
// Link::transmit_burst) and one consumer (the receiving domain's worker, in
// its drain pass) touch a mailbox, so a Lamport single-producer
// single-consumer ring suffices: two monotone cursors, release on publish,
// acquire on observe, no CAS anywhere on the fast path.
//
// Each message carries the event's absolute delivery time, its ordering key,
// the *sender's* EventLoop stamp (see event_loop.h — this is what makes the
// receiver's tie-break deterministic regardless of when the message is
// drained), and the delivery closure itself, moved through the ring slot so
// pooled packet buffers travel without copies.
//
// Capacity is fixed; `push` spins when the ring is full. That cannot
// deadlock: every domain worker drains its inbound mailboxes on each
// scheduling pass even when its conservative horizon forbids executing
// anything (and even after it has finished the run window), so a spinning
// producer always finds space within one consumer pass.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "sim/event_loop.h"
#include "sim/inline_fn.h"

namespace srv6bpf::sim {

struct PdesMail {
  TimeNs t = 0;            // absolute delivery time in the receiver's domain
  std::uint32_t key = 0;   // EventLoop ordering key
  EventLoop::Stamp stamp;  // sender-side provenance (deterministic tie-break)
  InlineFn fn;
};

class PdesMailbox {
 public:
  // Capacity must cover the peak number of in-flight cross-domain
  // deliveries between one pair of domains; deliveries are burst-coalesced
  // (one message per PacketBurst), so even saturated links stay far below
  // this. Overflow degrades to spinning, never to loss.
  static constexpr std::size_t kCapacity = 1024;
  static_assert((kCapacity & (kCapacity - 1)) == 0, "power-of-two ring");

  PdesMailbox() : slots_(std::make_unique<PdesMail[]>(kCapacity)) {}

  PdesMailbox(const PdesMailbox&) = delete;
  PdesMailbox& operator=(const PdesMailbox&) = delete;

  // Producer side. Returns false when full (slot untouched).
  bool try_push(PdesMail&& m) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == kCapacity)
      return false;
    slots_[tail & (kCapacity - 1)] = std::move(m);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer side; spins until space (see the deadlock-freedom note above).
  // Overflow is an explicit *counted backpressure* policy, never a drop:
  // conservative PDES cannot lose a cross-domain message (the receiver's
  // LBTS already promised it will see everything below the horizon, and a
  // dropped delivery would silently break packet conservation and the
  // determinism contract both). Each full-ring encounter bumps
  // overflow_spins(), so a chronically undersized ring is visible in
  // PdesNet::mailbox_overflow_spins() instead of just being wall-clock loss.
  void push(PdesMail&& m) noexcept {
    if (!try_push(std::move(m))) {
      overflow_spins_.fetch_add(1, std::memory_order_relaxed);
      do {
        std::this_thread::yield();
      } while (!try_push(std::move(m)));
    }
  }

  // Consumer side. Returns false when empty.
  bool try_pop(PdesMail& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = std::move(slots_[head & (kCapacity - 1)]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  // Number of push() calls that found the ring full and had to spin —
  // wall-clock-only observability (bit-identical results either way).
  std::uint64_t overflow_spins() const noexcept {
    return overflow_spins_.load(std::memory_order_relaxed);
  }

 private:
  // Cursors on separate cache lines so producer and consumer don't false-
  // share; slots are written by the producer and read by the consumer with
  // the tail_ release/acquire pair ordering the hand-off.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  std::atomic<std::uint64_t> overflow_spins_{0};
  std::unique_ptr<PdesMail[]> slots_;
};

}  // namespace srv6bpf::sim
