#include "sim/event_loop.h"

#include <utility>

namespace srv6bpf::sim {

void EventLoop::schedule_at_key(TimeNs t, std::uint32_t key, Fn fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, key, Stamp{now_, domain_, next_seq_++}, std::move(fn)});
}

void EventLoop::inject(TimeNs t, std::uint32_t key, Stamp stamp, Fn fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, key, stamp, std::move(fn)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the event must be moved out before
  // running because fn may schedule more events.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t EventLoop::run_events_before(TimeNs bound) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t < bound) {
    step();
    ++n;
  }
  return n;
}

void EventLoop::run_until(TimeNs t) {
  while (!queue_.empty() && queue_.top().t <= t) step();
  if (now_ < t) now_ = t;
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace srv6bpf::sim
