#include "sim/pdes_domain.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/link.h"
#include "sim/node.h"

namespace srv6bpf::sim {

namespace {
// splitmix64 finalizer: decorrelates the per-side RNG seeds derived from
// (network seed, link index, side) so adjacent links don't share streams.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint32_t PdesNet::hash_name(const std::string& name, std::size_t p) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % (p == 0 ? 1 : p));
}

void PdesNet::assign(const Node* node, std::uint32_t dom) {
  if (sealed_)
    throw std::logic_error("PdesNet::assign: partition is already sealed");
  placement_[node] = dom;
}

std::uint32_t PdesNet::domain_of(const Node* node) const {
  const auto it = placement_.find(node);
  if (it == placement_.end())
    throw std::out_of_range("PdesNet::domain_of: node has no placement");
  return it->second;
}

PdesMailbox* PdesNet::mailbox(std::size_t src, std::size_t dst) {
  auto& slot = mailboxes_[src * domains_.size() + dst];
  if (!slot) slot = std::make_unique<PdesMailbox>();
  return slot.get();
}

void PdesNet::seal(EventLoop& master,
                   const std::vector<std::unique_ptr<Node>>& nodes,
                   const std::vector<std::unique_ptr<Link>>& links) {
  if (sealed_) return;
  if (master.pending() != 0)
    throw std::logic_error(
        "PdesNet::seal: the master event loop has pending events; seal the "
        "partition before scheduling traffic (apps schedule via Node::loop(), "
        "which sealing repoints into the node's domain)");

  const std::size_t p = std::max<std::size_t>(1, domain_count_);
  domains_.clear();
  domains_.reserve(p);
  for (std::size_t d = 0; d < p; ++d) {
    auto dom = std::make_unique<Domain>();
    dom->loop = std::make_unique<EventLoop>();
    dom->loop->set_domain(static_cast<std::uint32_t>(d));
    dom->loop->advance_to(master.now());
    domains_.push_back(std::move(dom));
  }
  mailboxes_ = std::vector<std::unique_ptr<PdesMailbox>>(p * p);

  // Place every node: explicit assignment wins, static name hash otherwise.
  for (const auto& n : nodes) {
    auto [it, inserted] = placement_.try_emplace(
        n.get(), hash_name(n->name(), p));
    if (it->second >= p)
      throw std::out_of_range("PdesNet::seal: explicit domain " +
                              std::to_string(it->second) + " for node '" +
                              n->name() + "' is out of range");
    n->bind_loop(*domains_[it->second]->loop);
  }

  // Bind link sides and derive the synchronization edges. A side lives in
  // its node's domain; an unattached side never transmits, so it just rides
  // along in the peer's domain.
  std::map<std::pair<std::size_t, std::size_t>, TimeNs> min_la;  // (dst,src)
  for (std::size_t li = 0; li < links.size(); ++li) {
    Link& link = *links[li];
    for (int s = 0; s < 2; ++s) {
      Node* n = link.side_node(s);
      Node* peer = link.side_node(1 - s);
      const std::size_t d =
          n ? domain_of(n) : (peer ? domain_of(peer) : 0u);
      const std::size_t pd = peer ? domain_of(peer) : d;
      side_rngs_.emplace_back(mix64(seed_ ^ (2 * li + s + 1)));
      PdesMailbox* box = nullptr;
      if (pd != d && n != nullptr && peer != nullptr) {
        if (link.prop_delay() == 0)
          throw std::invalid_argument(
              "PdesNet::seal: link between '" + n->name() + "' and '" +
              peer->name() +
              "' crosses domains with zero propagation delay (zero "
              "lookahead); co-locate the ends or give the link >= 1 ns");
        box = mailbox(d, pd);
        auto [it, inserted] =
            min_la.try_emplace({pd, d}, link.prop_delay());
        if (!inserted) it->second = std::min(it->second, link.prop_delay());
      }
      link.bind_side(s, *domains_[d]->loop, &side_rngs_.back(), box);
    }
  }
  for (const auto& [edge, la] : min_la)
    domains_[edge.first]->inbound.push_back(
        Inbound{edge.second, la, mailbox(edge.second, edge.first)});

  sealed_ = true;
}

bool PdesNet::iterate(Domain& d, TimeNs t_end) {
  // 1. Conservative bound from the neighbors' published horizons. Read
  //    *before* draining: a horizon observed here (acquire) makes every
  //    message it vouches for visible to the pops below.
  TimeNs lbts = t_end + 1;
  for (const Inbound& in : d.inbound) {
    const TimeNs h = domains_[in.src]->horizon.load(std::memory_order_acquire);
    const TimeNs bound =
        h > kTimeInfinity - in.lookahead ? kTimeInfinity : h + in.lookahead;
    lbts = std::min(lbts, bound);
  }

  // 2. Drain inbound mailboxes into the heap. Done unconditionally — even
  //    after this domain finished its window — so a spinning producer always
  //    finds ring space (the deadlock-freedom argument in pdes_mailbox.h).
  bool drained = false;
  PdesMail m;
  for (const Inbound& in : d.inbound) {
    while (in.box->try_pop(m)) {
      d.loop->inject(m.t, m.key, m.stamp, std::move(m.fn));
      drained = true;
    }
  }
  if (d.done) return drained;

  // 3. Execute everything strictly below the bound. Events *at* the bound
  //    wait: a neighbor could still send a same-timestamp event whose stamp
  //    sorts earlier.
  const std::size_t ran = d.loop->run_events_before(lbts);

  // 4. Publish the new horizon. Every event below `lbts` has executed and
  //    pushed its sends (step 3 precedes this store), and any event still
  //    pending is >= lbts, so future sends are timestamped >= lbts: the
  //    promise holds. Monotone by construction — lbts only grows as the
  //    neighbors' horizons grow.
  const TimeNs prev = d.horizon.load(std::memory_order_relaxed);
  if (lbts > prev) d.horizon.store(lbts, std::memory_order_release);
  if (lbts > t_end) {
    d.done = true;
    done_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  return ran > 0 || lbts > prev;
}

void PdesNet::worker(std::size_t worker_id, std::size_t worker_count,
                     TimeNs t_end) {
  for (;;) {
    bool progressed = false;
    for (std::size_t d = worker_id; d < domains_.size(); d += worker_count)
      progressed |= iterate(*domains_[d], t_end);
    if (done_count_.load(std::memory_order_acquire) == domains_.size())
      return;
    if (!progressed) std::this_thread::yield();
  }
}

void PdesNet::run_until(TimeNs t_end, std::size_t threads) {
  if (!sealed_)
    throw std::logic_error("PdesNet::run_until: seal the partition first");
  if (t_end >= kTimeInfinity - 1)
    throw std::invalid_argument("PdesNet::run_until: bound must be finite");

  done_count_.store(0, std::memory_order_relaxed);
  for (auto& d : domains_) {
    d->done = false;
    // Restart the horizon at the domain's clock: all events below it have
    // executed in earlier windows, so the promise is immediately valid.
    d->horizon.store(d->loop->now(), std::memory_order_relaxed);
  }

  const std::size_t n =
      std::min(std::max<std::size_t>(1, threads), domains_.size());
  if (n == 1) {
    worker(0, 1, t_end);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w)
      pool.emplace_back(&PdesNet::worker, this, w, n, t_end);
    worker(0, n, t_end);
    for (auto& t : pool) t.join();
  }

  // run_until semantics: the whole window [now, t_end] elapsed, so every
  // clock lands exactly on the bound even if the domain went idle earlier.
  for (auto& d : domains_) d->loop->advance_to(t_end);
}

std::uint64_t PdesNet::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->loop->executed();
  return total;
}

std::uint64_t PdesNet::mailbox_overflow_spins() const {
  std::uint64_t total = 0;
  for (const auto& box : mailboxes_)
    if (box) total += box->overflow_spins();
  return total;
}

}  // namespace srv6bpf::sim
