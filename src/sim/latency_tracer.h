// LatencyTracer: per-flow-class end-to-end latency tracking against SLOs.
//
// Delivered packets carry their first-transmit time (Packet::tx_tstamp_ns,
// stamped by the sending node's dispatch); the tracer turns delivery events
// into end-to-end delay samples, classifies each packet into a flow class
// and records the sample into that class's util::HdrHistogram — fixed
// memory, zero steady-state allocation, exact-rank quantiles. Classes are
// declared at setup time, either as explicit match predicates (anything
// callable, e.g. a PR 7 cbpf::SocketFilter wrapped in a lambda) or via the
// cheap built-in flow-label spread mode that buckets on flow_label % N (the
// same spread trafgen stamps, so generator class == tracer class with no
// per-packet predicate calls).
//
// With SRV6BPF_TRACE_SLO=1 in the environment the tracer prints one
// per-class percentile line per class at destruction (scenario teardown),
// so any bench or test grows an SLO report without code changes.
//
// ReconvergenceClock measures failure blackholes: armed with the scheduled
// failure instant, it watches delivery timestamps and reports how long the
// flow stayed dark past the failure (first_after - failure_at) — the
// reconvergence time an IGP or an FRR backup buys down.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/hdr_histogram.h"

namespace srv6bpf::sim {

class LatencyTracer {
 public:
  using Matcher = std::function<bool(const net::Packet&)>;

  LatencyTracer() = default;
  ~LatencyTracer();
  LatencyTracer(const LatencyTracer&) = delete;
  LatencyTracer& operator=(const LatencyTracer&) = delete;

  // Declares an explicit class; packets are tested against explicit classes
  // in declaration order, first match wins. Returns the class index.
  // Setup-time only: allocates the class's histogram.
  std::size_t add_class(std::string name, Matcher matcher);

  // Built-in spread mode: packets not claimed by an explicit class fall into
  // one of `n` classes keyed on outer flow_label % n (class names
  // "<prefix>0".."<prefix>n-1"). Matches trafgen's flow_label_spread.
  void classify_by_flow_label(std::size_t n, const std::string& prefix = "fl");

  // Records one delivery. Computes delay = delivered_at - tx_tstamp_ns;
  // packets never transmitted through a Node dispatch (tx_tstamp_ns == 0)
  // count as untimed, packets no class claims count as unmatched. Never
  // allocates.
  void record(const net::Packet& pkt, TimeNs delivered_at);

  // ---- results ----
  std::size_t class_count() const noexcept { return classes_.size(); }
  const std::string& class_name(std::size_t i) const {
    return classes_.at(i).name;
  }
  const util::HdrHistogram& class_hist(std::size_t i) const {
    return classes_.at(i).hist;
  }
  // Every timed delivery regardless of class (unmatched included).
  const util::HdrHistogram& overall() const noexcept { return overall_; }
  std::uint64_t unmatched() const noexcept { return unmatched_; }
  std::uint64_t untimed() const noexcept { return untimed_; }

  // Clears all samples but keeps the class declarations — windows a run
  // into phases (pre-failover vs post-failover tail comparison).
  void reset_samples();

  // One line per class (plus the overall line): count and p50/p99/p99.9/max
  // in nanoseconds.
  void dump(std::FILE* out) const;

 private:
  struct Class {
    std::string name;
    Matcher matcher;  // null for flow-label spread classes
    util::HdrHistogram hist;
  };

  std::vector<Class> classes_;
  std::size_t explicit_classes_ = 0;  // classes_[0..explicit) have matchers
  std::size_t label_mod_ = 0;         // 0 = flow-label mode off
  util::HdrHistogram overall_;
  std::uint64_t unmatched_ = 0;
  std::uint64_t untimed_ = 0;
};

// Blackhole / reconvergence stopwatch for failure scenarios.
//
// The naive "first delivery after the failure instant" is not a blackhole
// measurement at all: packets already past the point of local repair when
// the link died keep arriving for one path delay, so that first delivery
// lands microseconds after the failure even when the flow then goes dark
// for an IGP convergence. What the clock reports instead is the *largest
// inter-delivery gap* whose end lies at/after the failure instant (gap
// start clamped to the failure) — the true dark window between the last
// in-flight survivor and the first packet over the repaired path. Under
// steady offered load, that is the reconvergence time up to one packet
// spacing.
class ReconvergenceClock {
 public:
  // Arms the clock at the scheduled failure instant; resets any prior
  // measurement.
  void arm(TimeNs failure_at) {
    failure_at_ = failure_at;
    armed_ = true;
    recovered_ = false;
    have_last_ = false;
    last_ = 0;
    max_gap_ = 0;
    gap_end_ = 0;
  }

  // Feeds a delivery timestamp (call from the sink's delivery handler).
  // Timestamps must be monotone (the sim clock in every current user).
  void note_delivery(TimeNs t) {
    if (armed_ && t >= failure_at_) {
      recovered_ = true;
      const TimeNs start =
          have_last_ && last_ > failure_at_ ? last_ : failure_at_;
      const TimeNs gap = t > start ? t - start : 0;
      if (gap > max_gap_) {
        max_gap_ = gap;
        gap_end_ = t;
      }
    }
    have_last_ = true;
    last_ = t;
  }

  bool armed() const noexcept { return armed_; }
  // True once any delivery landed at/after the failure instant.
  bool recovered() const noexcept { return recovered_; }
  // The measured dark window (see above). 0 until recovered().
  TimeNs blackhole_ns() const noexcept { return max_gap_; }
  // Delivery timestamp ending the dark window (its "recovery" instant).
  TimeNs recovery_at() const noexcept { return gap_end_; }

 private:
  TimeNs failure_at_ = 0;
  TimeNs last_ = 0;
  TimeNs max_gap_ = 0;
  TimeNs gap_end_ = 0;
  bool armed_ = false;
  bool have_last_ = false;
  bool recovered_ = false;
};

}  // namespace srv6bpf::sim
