// network.h is header-only; see sim/stats.cc for the rationale.
#include "sim/network.h"
