// stats.h is header-only; this translation unit exists to give the build a
// place to grow (e.g. CSV exporters) without touching every target.
#include "sim/stats.h"
