#include "sim/stats.h"

#include "seg6/ctx.h"

namespace srv6bpf::sim {

void NodeStats::account(const seg6::ProcessTrace& t) {
  ++pipeline.packets;
  pipeline.seg6local_ops += static_cast<std::uint64_t>(t.seg6local_ops);
  pipeline.fib_lookups += static_cast<std::uint64_t>(t.fib_lookups);
  pipeline.bpf_runs += static_cast<std::uint64_t>(t.bpf_runs);
  pipeline.bpf_insns_jit += t.bpf_insns_jit;
  pipeline.bpf_insns_interp += t.bpf_insns_interp;
  pipeline.helper_calls += t.helper_calls;
  pipeline.encaps += static_cast<std::uint64_t>(t.encaps);
  pipeline.decaps += static_cast<std::uint64_t>(t.decaps);
}

}  // namespace srv6bpf::sim
