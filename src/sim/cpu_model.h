// Historical name kept for discoverability: the CPU service model lives in
// Node::Cpu / Node::CpuContext (sim/node.h) — the per-service-event burst
// budget (Cpu::rx_burst, default sim::kDefaultRxBurst), the RSS context
// count (Cpu::ncpus) and the per-context scheduling state — and the cost
// constants in sim/costmodel.h. The staged burst pipeline itself is
// sim/datapath.h.
#pragma once

#include "sim/costmodel.h"
#include "sim/datapath.h"
#include "sim/node.h"
