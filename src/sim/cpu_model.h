// Historical name kept for discoverability: the CPU service model lives in
// Node::Cpu (sim/node.h) and the cost constants in sim/costmodel.h.
#pragma once

#include "sim/costmodel.h"
#include "sim/node.h"
