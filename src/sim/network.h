// Network: owns the event loop, RNG, nodes and links, and provides the
// topology-building vocabulary the examples and benchmarks use to recreate
// the paper's lab setups (Figure 1).
//
// A Network runs serially by default — one EventLoop, one host thread. The
// parallel surface (set_domain_count / assign_domain / seal_domains /
// run_parallel_*) shards the same topology across worker threads under
// conservative PDES synchronization (sim/pdes_domain.h) with a hard
// determinism contract: for a fixed partition, results are bit-identical at
// every thread count. Build the topology, pick the partition, seal, *then*
// attach apps and schedule churn — sealing repoints Node::loop() into the
// domains, and it requires the master loop to be quiescent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/pdes_domain.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Network {
 public:
  explicit Network(std::uint64_t seed = 0x5eed) : rng_(seed), seed_(seed) {}

  EventLoop& loop() noexcept { return loop_; }
  Rng& rng() noexcept { return rng_; }
  TimeNs now() const noexcept { return loop_.now(); }

  Node& add_node(const std::string& name) {
    nodes_.push_back(std::make_unique<Node>(loop_, rng_, name));
    return *nodes_.back();
  }

  struct Attachment {
    Link* link;
    int a_ifindex;
    int b_ifindex;
  };
  // Creates a link and attaches both ends, assigning the given interface
  // addresses (also installed as local addresses).
  Attachment connect(Node& a, const net::Ipv6Addr& a_addr, Node& b,
                     const net::Ipv6Addr& b_addr, std::uint64_t bandwidth_bps,
                     TimeNs prop_delay_ns) {
    links_.push_back(
        std::make_unique<Link>(loop_, rng_, bandwidth_bps, prop_delay_ns));
    Link& link = *links_.back();
    const int ai = a.add_interface(link, 0, a_addr);
    const int bi = b.add_interface(link, 1, b_addr);
    return Attachment{&link, ai, bi};
  }

  void run_until(TimeNs t) {
    if (parallel())
      run_parallel_until(t, 1);
    else
      loop_.run_until(t);
  }
  void run_for(TimeNs dt) { run_until(now() + dt); }

  // ---- parallel simulation (conservative PDES; sim/pdes_domain.h) ----
  // Number of thread domains the node set partitions into (default 1 =
  // serial). Set before seal_domains().
  void set_domain_count(std::size_t p) { pdes().set_domain_count(p); }
  // Explicit placement override; unassigned nodes hash by name.
  void assign_domain(Node& node, std::uint32_t dom) {
    pdes().assign(&node, dom);
  }
  std::uint32_t domain_of(const Node& node) const {
    return pdes_->domain_of(&node);
  }
  // Freezes the partition and rebinds every node and link side into its
  // domain. Requires a quiescent master loop (schedule traffic after).
  void seal_domains() { pdes().seal(loop_, nodes_, links_); }
  bool parallel() const noexcept { return pdes_ && pdes_->sealed(); }

  // Advances the partitioned simulation to `t` (inclusive) on up to
  // `threads` workers; bit-identical results at every thread count. Seals
  // implicitly if needed. The master clock follows so now() stays coherent.
  void run_parallel_until(TimeNs t, std::size_t threads) {
    if (!parallel()) seal_domains();
    pdes_->run_until(t, threads);
    loop_.advance_to(t);
  }
  void run_parallel_for(TimeNs dt, std::size_t threads) {
    run_parallel_until(now() + dt, threads);
  }
  // The sealed partition (seal_domains() first) — domain loops, executed-
  // event counts.
  PdesNet& pdes_net() { return pdes(); }

  // ---- failure / churn scenario machinery ----
  // Scheduled topology events for failure scenarios: link flaps and route
  // churn injected at absolute sim times while traffic is in flight. All of
  // them are thin event-loop wrappers — the state change happens atomically
  // at the scheduled instant, exactly like an `ip link set down` or an IGP
  // update landing on a running router. Under a sealed partition the flip is
  // scheduled in *each* end's domain (one event per carrier replica, same
  // virtual instant), so both domains observe the cut at t without touching
  // each other's state.
  void schedule_link_down(Link& link, TimeNs t) {
    schedule_link_state(link, t, false);
  }
  void schedule_link_up(Link& link, TimeNs t) {
    schedule_link_state(link, t, true);
  }
  // Route add at `t` (IGP reconvergence installing a repaired path). The
  // route is parked in a shared_ptr so the closure stays within InlineFn's
  // inline capture budget regardless of the segment lists it carries.
  // Scheduled on the owning node's loop, which is the master loop serially
  // and the node's domain loop after sealing.
  void schedule_route_add(Node& node, int table, seg6::Route route, TimeNs t) {
    auto r = std::make_shared<seg6::Route>(std::move(route));
    node.loop().schedule_at(t, [&node, table, r] {
      node.ns().table(table).add_route(*r);
    });
  }
  // Exact-prefix withdraw at `t` (the failure notification reaching this
  // node's RIB).
  void schedule_route_withdraw(Node& node, int table, const net::Prefix& prefix,
                               TimeNs t) {
    node.loop().schedule_at(t, [&node, table, prefix] {
      node.ns().table(table).remove_route(prefix);
    });
  }

 private:
  PdesNet& pdes() {
    if (!pdes_) pdes_ = std::make_unique<PdesNet>(seed_);
    return *pdes_;
  }
  void schedule_link_state(Link& link, TimeNs t, bool up) {
    if (!parallel()) {
      loop_.schedule_at(t, [&link, up] { link.set_up(up); });
      return;
    }
    for (int s = 0; s < 2; ++s)
      if (link.side_node(s) != nullptr)
        link.side_loop(s).schedule_at(
            t, [&link, s, up] { link.set_side_up(s, up); });
  }

  EventLoop loop_;
  Rng rng_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unique_ptr<PdesNet> pdes_;
};

}  // namespace srv6bpf::sim
