// Network: owns the event loop, RNG, nodes and links, and provides the
// topology-building vocabulary the examples and benchmarks use to recreate
// the paper's lab setups (Figure 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/node.h"
#include "util/rng.h"

namespace srv6bpf::sim {

class Network {
 public:
  explicit Network(std::uint64_t seed = 0x5eed) : rng_(seed) {}

  EventLoop& loop() noexcept { return loop_; }
  Rng& rng() noexcept { return rng_; }
  TimeNs now() const noexcept { return loop_.now(); }

  Node& add_node(const std::string& name) {
    nodes_.push_back(std::make_unique<Node>(loop_, rng_, name));
    return *nodes_.back();
  }

  struct Attachment {
    Link* link;
    int a_ifindex;
    int b_ifindex;
  };
  // Creates a link and attaches both ends, assigning the given interface
  // addresses (also installed as local addresses).
  Attachment connect(Node& a, const net::Ipv6Addr& a_addr, Node& b,
                     const net::Ipv6Addr& b_addr, std::uint64_t bandwidth_bps,
                     TimeNs prop_delay_ns) {
    links_.push_back(
        std::make_unique<Link>(loop_, rng_, bandwidth_bps, prop_delay_ns));
    Link& link = *links_.back();
    const int ai = a.add_interface(link, 0, a_addr);
    const int bi = b.add_interface(link, 1, b_addr);
    return Attachment{&link, ai, bi};
  }

  void run_until(TimeNs t) { loop_.run_until(t); }
  void run_for(TimeNs dt) { loop_.run_until(loop_.now() + dt); }

  // ---- failure / churn scenario machinery ----
  // Scheduled topology events for failure scenarios: link flaps and route
  // churn injected at absolute sim times while traffic is in flight. All of
  // them are thin event-loop wrappers — the state change happens atomically
  // at the scheduled instant, exactly like an `ip link set down` or an IGP
  // update landing on a running router.
  void schedule_link_down(Link& link, TimeNs t) {
    loop_.schedule_at(t, [&link] { link.set_up(false); });
  }
  void schedule_link_up(Link& link, TimeNs t) {
    loop_.schedule_at(t, [&link] { link.set_up(true); });
  }
  // Route add at `t` (IGP reconvergence installing a repaired path). The
  // route is parked in a shared_ptr so the closure stays within InlineFn's
  // inline capture budget regardless of the segment lists it carries.
  void schedule_route_add(Node& node, int table, seg6::Route route, TimeNs t) {
    auto r = std::make_shared<seg6::Route>(std::move(route));
    loop_.schedule_at(t, [&node, table, r] {
      node.ns().table(table).add_route(*r);
    });
  }
  // Exact-prefix withdraw at `t` (the failure notification reaching this
  // node's RIB).
  void schedule_route_withdraw(Node& node, int table, const net::Prefix& prefix,
                               TimeNs t) {
    loop_.schedule_at(t, [&node, table, prefix] {
      node.ns().table(table).remove_route(prefix);
    });
  }

 private:
  EventLoop loop_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace srv6bpf::sim
