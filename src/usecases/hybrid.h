// §4.2 — Hybrid access networks: SRv6-based link aggregation.
//
// Two labs:
//
//  * HybridLab — the TCP experiment. An aggregation box A and a CPE M are
//    joined by two shaped WAN links (50 Mbps / 30±5 ms RTT and 30 Mbps /
//    5±2 ms RTT, the paper's xDSL+LTE stand-ins). Both A and M run the WRR
//    LWT eBPF program that encapsulates each packet towards one of two
//    End.DT6 SIDs on the far side, weighted 5:3. The CPE additionally hosts
//    an End.DM-TWD SID; a daemon on A sends two-way delay probes over each
//    link, computes the delay difference, and programs a netem delay on the
//    fast link to mitigate TCP reordering.
//
//  * Fig4Lab — the UDP forwarding-performance experiment on the Turris Omnia
//    CPE (Figure 4): plain IPv6 forwarding vs kernel decap vs eBPF WRR
//    (interpreter only, because of the ARM32 JIT bug).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "apps/daemons.h"
#include "apps/sink.h"
#include "apps/tcp.h"
#include "apps/udp_flow.h"
#include "sim/network.h"
#include "usecases/programs.h"

namespace srv6bpf::usecases {

class HybridLab {
 public:
  struct Options {
    // Link 1 (xDSL-like) and link 2 (LTE-like), as in the paper.
    std::uint64_t link1_bps = 50 * 1000 * 1000;
    sim::TimeNs link1_rtt = 30 * sim::kMilli;
    sim::TimeNs link1_jitter_rtt = 5 * sim::kMilli;
    std::uint64_t link2_bps = 30 * 1000 * 1000;
    sim::TimeNs link2_rtt = 5 * sim::kMilli;
    sim::TimeNs link2_jitter_rtt = 2 * sim::kMilli;
    std::uint64_t weight1 = 5;  // WRR weights match the link capacities
    std::uint64_t weight2 = 3;
    bool twd_compensation = false;
    sim::TimeNs twd_interval = 50 * sim::kMilli;
    std::uint64_t seed = 7;
  };

  explicit HybridLab(const Options& opts);

  // Starts `flows` parallel bulk TCP connections S1 -> S2 and runs for
  // `duration`. Returns aggregated goodput in Mbps.
  double run_tcp(int flows, sim::TimeNs duration);

  sim::Network& net() noexcept { return net_; }
  sim::Link* link1() noexcept { return link1_; }
  sim::Link* link2() noexcept { return link2_; }
  sim::Node& s1() noexcept { return *s1_; }
  sim::Node& aggbox() noexcept { return *a_; }
  sim::Node& cpe() noexcept { return *m_; }
  sim::Node& s2() noexcept { return *s2_; }
  std::uint64_t total_retransmits() const;
  int sender_dupack_threshold() const {
    return senders_.empty() ? 0 : senders_.front()->dupack_threshold();
  }
  std::uint64_t total_timeouts() const;
  std::uint64_t receiver_ooo_segments() const;
  // Most recent delay difference measured by the TWD daemon (ns).
  std::int64_t measured_delay_diff() const noexcept { return delay_diff_; }
  std::uint64_t twd_probes_returned() const noexcept { return twd_rx_; }

 private:
  void start_twd_daemon(const Options& opts);
  void start_probe_cycle();
  void send_twd_probe(int link_index);

  sim::Network net_;
  sim::Node* s1_;
  sim::Node* a_;
  sim::Node* m_;
  sim::Node* s2_;
  sim::Link* link1_ = nullptr;
  sim::Link* link2_ = nullptr;
  int a_link1_side_ = 0;
  int a_link2_side_ = 0;

  std::unique_ptr<apps::AppMux> mux_s1_;
  std::unique_ptr<apps::AppMux> mux_s2_;
  std::unique_ptr<apps::AppMux> mux_a_;
  std::vector<std::unique_ptr<apps::TcpSender>> senders_;
  std::vector<std::unique_ptr<apps::TcpReceiver>> receivers_;

  // TWD daemon state on A.
  bool twd_on_ = false;
  sim::TimeNs twd_interval_ = 0;
  std::uint64_t twd_seq_ = 0;
  std::uint64_t twd_rx_ = 0;
  // Windowed minimum filter per link: the minimum one-way delay over the
  // last N probes tracks propagation + compensation while rejecting
  // queueing spikes (the BBR/LEDBAT trick).
  std::deque<double> owd_window_[2];
  bool owd_valid_[2] = {false, false};
  sim::TimeNs base_delay_[2] = {0, 0}; // netem propagation delay (config)
  sim::TimeNs comp_[2] = {0, 0};       // compensation currently applied
  std::int64_t delay_diff_ = 0;
  void apply_compensation();
};

class Fig4Lab {
 public:
  enum class Mode { kPlainForward, kKernelDecap, kEbpfWrr };

  struct Options {
    Mode mode = Mode::kPlainForward;
    std::uint64_t seed = 11;
    // The CPE's per-service-event drain budget (Node::Cpu::rx_burst).
    // Burst-invariant simulated goodput; smaller values cost wall-clock.
    std::size_t cpe_burst = sim::kDefaultRxBurst;
  };

  explicit Fig4Lab(const Options& opts);

  // Offers a 1 Gbps iperf3-like UDP flow with the given payload size through
  // the Turris CPE and returns the aggregated goodput in Mbps.
  double run_udp(std::size_t payload_size, sim::TimeNs duration);

 private:
  sim::Network net_;
  sim::Node* s1_;
  sim::Node* m_;  // Turris Omnia
  sim::Node* s2_;
  Mode mode_;
  std::unique_ptr<apps::AppMux> mux_s2_;
  std::unique_ptr<apps::UdpSink> sink_;
  std::unique_ptr<apps::UdpFlowSender> flow_;
};

}  // namespace srv6bpf::usecases
