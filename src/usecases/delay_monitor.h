// §4.1 — Passive monitoring of one-way network delays.
//
// Reproduces the paper's deployment: a BPF LWT transit program on the router
// at the head of the monitored path encapsulates every Nth packet with an
// SRH carrying a DM TLV (TX timestamp) and a controller TLV; the router at
// the tail runs End.DM (an End.BPF program) which reports both timestamps to
// a user-space daemon over a perf event ring; the daemon relays them to the
// controller in a UDP datagram.
//
// Lab layout (paper Figure 1, setup 1):
//     S1 ---- R ---- S2        (10 Gbps links; R's CPU is the bottleneck)
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/daemons.h"
#include "apps/sink.h"
#include "apps/socket_filter.h"
#include "apps/trafgen.h"
#include "sim/network.h"
#include "usecases/programs.h"

namespace srv6bpf::usecases {

struct OwdSample {
  std::uint64_t tx_ns = 0;
  std::uint64_t rx_ns = 0;
  std::uint64_t owd_ns() const noexcept { return rx_ns - tx_ns; }
};

class DelayMonitorLab {
 public:
  struct Options {
    std::uint64_t probe_ratio = 100;      // 1:N probing
    bool cpu_model_on_r = false;          // enable the 610kpps-style CPU cap
    bool jit = true;
    sim::TimeNs link_delay = 2 * sim::kMilli;
    std::uint64_t seed = 42;
    // Where End.DM runs: on R (tail = R, fig-3 "End.DM" bars) or on S2's
    // router side. The paper measures End.DM on R.
    bool dm_on_r = true;
    // Both receive sockets are gated by attached classic-BPF filters,
    // compiled from these tcpdump expressions (SO_ATTACH_FILTER style:
    // expression -> cBPF -> eBPF -> whichever engine the node runs). The
    // sink only meters packets its filter accepts; the controller only
    // parses datagrams its filter accepts.
    std::string sink_filter = "udp and dst port 7001";
    std::string controller_filter = "udp and dst port 9999";
  };

  explicit DelayMonitorLab(const Options& opts);

  // Offered plain-IPv6 load S1 -> S2 (the 3 Mpps pktgen stream).
  void offer_traffic(double pps, sim::TimeNs duration,
                     std::size_t payload = 64);
  void run_for(sim::TimeNs t) { net_.run_for(t); }

  sim::Network& net() noexcept { return net_; }
  sim::Node& s1() noexcept { return *s1_; }
  sim::Node& r() noexcept { return *r_; }
  sim::Node& s2() noexcept { return *s2_; }

  // Results.
  const std::vector<OwdSample>& samples() const noexcept { return samples_; }
  std::uint64_t sink_packets() const;
  std::uint64_t controller_datagrams() const noexcept { return ctrl_rx_; }
  std::uint64_t probes_emitted() const noexcept { return probes_; }

  // The attached filters (accept/drop counters, source expressions).
  const std::shared_ptr<apps::SocketFilter>& sink_filter() const noexcept {
    return sink_filter_;
  }
  const std::shared_ptr<apps::SocketFilter>& controller_filter()
      const noexcept {
    return ctrl_filter_;
  }

  static constexpr std::uint16_t kControllerPort = 9999;

 private:
  sim::Network net_;
  sim::Node* s1_;
  sim::Node* r_;
  sim::Node* s2_;
  std::unique_ptr<apps::AppMux> mux_s1_;
  std::unique_ptr<apps::AppMux> mux_s2_;
  std::unique_ptr<apps::UdpSink> sink_;
  std::shared_ptr<apps::SocketFilter> sink_filter_;
  std::shared_ptr<apps::SocketFilter> ctrl_filter_;
  std::unique_ptr<apps::TrafGen> gen_;
  std::unique_ptr<apps::PerfPoller> poller_;
  std::vector<OwdSample> samples_;
  std::uint64_t ctrl_rx_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace srv6bpf::usecases
