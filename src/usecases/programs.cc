#include "usecases/programs.h"

#include "ebpf/asm.h"
#include "ebpf/helpers.h"
#include "seg6/helpers.h"
#include "seg6/seg6local.h"

namespace srv6bpf::usecases {

using namespace srv6bpf::ebpf;  // NOLINT: assembler DSL reads better unqualified

namespace {
constexpr std::int32_t kActEndT =
    static_cast<std::int32_t>(seg6::Seg6Action::kEndT);
constexpr std::int32_t kActEndDT6 =
    static_cast<std::int32_t>(seg6::Seg6Action::kEndDT6);
}  // namespace

// ---- §3.2: End ---------------------------------------------------------------
BuiltProgram build_end() {
  Asm a;
  a.mov32_imm(R0, static_cast<std::int32_t>(BPF_OK)).exit_();
  return {a.build(), 1, "End (BPF)"};
}

// ---- §3.2: End.T -------------------------------------------------------------
BuiltProgram build_end_t(std::uint32_t table_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .st(BPF_W, R10, -4, static_cast<std::int32_t>(table_id))
      .mov64_reg(R1, R6)
      .mov32_imm(R2, kActEndT)
      .mov64_reg(R3, R10)
      .add64_imm(R3, -4)
      .mov32_imm(R4, 4)
      .call(helper::LWT_SEG6_ACTION)
      .jne_imm(R0, 0, "drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_REDIRECT))
      .exit_()
      .label("drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 4, "End.T (BPF)"};
}

// ---- §3.2: Tag++ ---------------------------------------------------------------
// Fetch the SRH tag, increment it, write it back with the indirect-write
// helper (the SRH itself is read-only to the program).
BuiltProgram build_tag_increment() {
  Asm a;
  a.mov64_reg(R6, R1)
      .ldx(BPF_DW, R7, R6, 0)   // data
      .ldx(BPF_DW, R8, R6, 8)   // data_end
      .mov64_reg(R1, R7)
      .add64_imm(R1, 48)        // IPv6 (40) + SRH fixed part (8)
      .jgt_reg(R1, R8, "drop")
      .ldx(BPF_B, R2, R7, 6)    // IPv6 next header
      .jne_imm(R2, net::kProtoRouting, "drop")
      .ldx(BPF_B, R2, R7, 42)   // routing type
      .jne_imm(R2, net::kSrhRoutingType, "drop")
      .ldx(BPF_H, R2, R7, 46)   // tag (big-endian on the wire)
      .to_be(R2, 16)            // -> host order
      .add64_imm(R2, 1)
      .and64_imm(R2, 0xffff)
      .to_be(R2, 16)            // -> network order
      .stx(BPF_H, R10, R2, -2)
      .mov64_reg(R1, R6)
      .mov64_imm(R2, 46)        // offset of the tag within the packet
      .mov64_reg(R3, R10)
      .add64_imm(R3, -2)
      .mov64_imm(R4, 2)
      .call(helper::LWT_SEG6_STORE_BYTES)
      .jne_imm(R0, 0, "drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_()
      .label("drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 50, "Tag++ (BPF)"};
}

// ---- §3.2: Add TLV --------------------------------------------------------------
// Grow the TLV area by 8 bytes at the end of the SRH, then fill it with an
// opaque TLV. Exercises both adjust_srh and store_bytes.
BuiltProgram build_add_tlv() {
  Asm a;
  a.mov64_reg(R6, R1)
      .ldx(BPF_DW, R7, R6, 0)
      .ldx(BPF_DW, R8, R6, 8)
      .mov64_reg(R1, R7)
      .add64_imm(R1, 48)
      .jgt_reg(R1, R8, "drop")
      .ldx(BPF_B, R2, R7, 6)
      .jne_imm(R2, net::kProtoRouting, "drop")
      .ldx(BPF_B, R2, R7, 42)
      .jne_imm(R2, net::kSrhRoutingType, "drop")
      .ldx(BPF_B, R9, R7, 41)   // hdr_ext_len
      .lsh64_imm(R9, 3)
      .add64_imm(R9, 48)        // insertion offset = 40 + (ext_len+1)*8
      // bpf_lwt_seg6_adjust_srh(ctx, offset, +8)
      .mov64_reg(R1, R6)
      .mov64_reg(R2, R9)
      .mov64_imm(R3, 8)
      .call(helper::LWT_SEG6_ADJUST_SRH)
      .jne_imm(R0, 0, "drop")
      // 8-byte TLV: type=kTlvOpaque, len=6, payload "SRv6!\0"
      .st(BPF_B, R10, -8, net::kTlvOpaque)
      .st(BPF_B, R10, -7, 6)
      .st(BPF_B, R10, -6, 'S')
      .st(BPF_B, R10, -5, 'R')
      .st(BPF_B, R10, -4, 'v')
      .st(BPF_B, R10, -3, '6')
      .st(BPF_B, R10, -2, '!')
      .st(BPF_B, R10, -1, 0)
      // bpf_lwt_seg6_store_bytes(ctx, offset, tlv, 8)
      .mov64_reg(R1, R6)
      .mov64_reg(R2, R9)
      .mov64_reg(R3, R10)
      .add64_imm(R3, -8)
      .mov64_imm(R4, 8)
      .call(helper::LWT_SEG6_STORE_BYTES)
      .jne_imm(R0, 0, "drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_()
      .label("drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 60, "Add TLV (BPF)"};
}

// ---- §4.1: transit encap with DM TLV ---------------------------------------------
// Runs for every packet on the monitored route; every `ratio`-th packet is
// encapsulated with SRH{[End.DM SID, final segment], DM TLV(tx=now),
// controller TLV}. State lives in an array map (DmEncapConfig).
BuiltProgram build_dm_encap(std::uint32_t cfg_map_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .st(BPF_W, R10, -4, 0)  // key = 0
      .ld_map(R1, cfg_map_id)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -4)
      .call(helper::MAP_LOOKUP_ELEM)
      .jeq_imm(R0, 0, "pass")
      .mov64_reg(R7, R0)        // config pointer
      .ldx(BPF_DW, R1, R7, 0)   // counter
      .mov64_reg(R2, R1)
      .add64_imm(R2, 1)
      .stx(BPF_DW, R7, R2, 0)
      .ldx(BPF_DW, R3, R7, 8)   // ratio
      .jeq_imm(R3, 0, "pass")
      .mod64_reg(R1, R3)
      .jne_imm(R1, 0, "pass")
      // ---- probe turn: build the 80-byte SRH at fp-80 ----
      .st(BPF_B, R10, -80, net::kProtoIpv6)  // next header (inner IPv6)
      .st(BPF_B, R10, -79, 9)                // hdr_ext_len: (80/8)-1
      .st(BPF_B, R10, -78, net::kSrhRoutingType)
      .st(BPF_B, R10, -77, 1)                // segments_left
      .st(BPF_B, R10, -76, 1)                // last_entry
      .st(BPF_B, R10, -75, 0)                // flags
      .st(BPF_H, R10, -74, 0)                // tag
      // segment[0] = final segment (slot order is reversed travel order)
      .ldx(BPF_DW, R1, R7, 32)
      .stx(BPF_DW, R10, R1, -72)
      .ldx(BPF_DW, R1, R7, 40)
      .stx(BPF_DW, R10, R1, -64)
      // segment[1] = End.DM SID (the first hop of the probe)
      .ldx(BPF_DW, R1, R7, 16)
      .stx(BPF_DW, R10, R1, -56)
      .ldx(BPF_DW, R1, R7, 24)
      .stx(BPF_DW, R10, R1, -48)
      // DM TLV: type, len=18, flags=0 (one-way), reserved
      .st(BPF_B, R10, -40, net::kTlvDelayMeasurement)
      .st(BPF_B, R10, -39, 18)
      .st(BPF_B, R10, -38, 0)
      .st(BPF_B, R10, -37, 0)
      .call(helper::KTIME_GET_NS)  // TX timestamp ("generic helper", §4.1)
      .to_be(R0, 64)
      .stx(BPF_DW, R10, R0, -36)
      .st(BPF_DW, R10, -28, 0)     // RX slot (filled by TWD endpoints)
      // Controller TLV: type, len=18, addr, port
      .st(BPF_B, R10, -20, net::kTlvController)
      .st(BPF_B, R10, -19, 18)
      .ldx(BPF_DW, R1, R7, 48)
      .stx(BPF_DW, R10, R1, -18)
      .ldx(BPF_DW, R1, R7, 56)
      .stx(BPF_DW, R10, R1, -10)
      .ldx(BPF_H, R1, R7, 64)
      .to_be(R1, 16)
      .stx(BPF_H, R10, R1, -2)
      // bpf_lwt_push_encap(ctx, BPF_LWT_ENCAP_SEG6, srh, 80)
      .mov64_reg(R1, R6)
      .mov64_imm(R2, static_cast<std::int32_t>(seg6::BPF_LWT_ENCAP_SEG6))
      .mov64_reg(R3, R10)
      .add64_imm(R3, -80)
      .mov64_imm(R4, 80)
      .call(helper::LWT_PUSH_ENCAP)
      .label("pass")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_();
  return {a.build(), 130, "DM transit encap (BPF)"};
}

// ---- §4.1: End.DM (one-way delay) --------------------------------------------------
BuiltProgram build_end_dm(std::uint32_t perf_map_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .ldx(BPF_DW, R7, R6, 0)
      .ldx(BPF_DW, R8, R6, 8)
      .mov64_reg(R1, R7)
      .add64_imm(R1, kOwdHeaderBytes)
      .jgt_reg(R1, R8, "drop")
      .ldx(BPF_B, R2, R7, kOwdDmTlvOff)
      .jne_imm(R2, net::kTlvDelayMeasurement, "drop")
      .ldx(BPF_B, R2, R7, kOwdCtrlTlvOff)
      .jne_imm(R2, net::kTlvController, "drop")
      // DmEvent at fp-40: {tx, rx, ctrl_addr, ctrl_port, pad}
      .ldx(BPF_DW, R2, R7, kOwdDmTxOff)
      .to_be(R2, 64)
      .stx(BPF_DW, R10, R2, -40)
      .ldx(BPF_DW, R2, R6, 32)  // ctx->tstamp: the RX software timestamp
      .stx(BPF_DW, R10, R2, -32)
      .ldx(BPF_DW, R2, R7, kOwdCtrlAddrOff)
      .stx(BPF_DW, R10, R2, -24)
      .ldx(BPF_DW, R2, R7, kOwdCtrlAddrOff + 8)
      .stx(BPF_DW, R10, R2, -16)
      .ldx(BPF_H, R2, R7, kOwdCtrlPortOff)
      .to_be(R2, 16)
      .stx(BPF_H, R10, R2, -8)
      .st(BPF_H, R10, -6, 0)
      .st(BPF_W, R10, -4, 0)
      // perf_event_output(ctx, perf_map, 0, event, 40) — "an eBPF program is
      // not capable of sending out-of-band replies" (§4.1)
      .mov64_reg(R1, R6)
      .ld_map(R2, perf_map_id)
      .mov64_imm(R3, 0)
      .mov64_reg(R4, R10)
      .add64_imm(R4, -40)
      .mov64_imm(R5, 40)
      .call(helper::PERF_EVENT_OUTPUT)
      // decapsulate: bpf_lwt_seg6_action(End.DT6, table=0)
      .st(BPF_W, R10, -44, 0)
      .mov64_reg(R1, R6)
      .mov64_imm(R2, kActEndDT6)
      .mov64_reg(R3, R10)
      .add64_imm(R3, -44)
      .mov64_imm(R4, 4)
      .call(helper::LWT_SEG6_ACTION)
      .jne_imm(R0, 0, "drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_REDIRECT))
      .exit_()
      .label("drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 100, "End.DM (BPF)"};
}

// ---- §4.2: End.DM two-way variant ---------------------------------------------------
// Writes the local RX timestamp into the probe's DM TLV in place and lets the
// probe continue to its last segment (the querier).
BuiltProgram build_end_dm_twd() {
  Asm a;
  a.mov64_reg(R6, R1)
      .ldx(BPF_DW, R7, R6, 0)
      .ldx(BPF_DW, R8, R6, 8)
      .mov64_reg(R1, R7)
      .add64_imm(R1, kTwdHeaderBytes)
      .jgt_reg(R1, R8, "drop")
      .ldx(BPF_B, R2, R7, kTwdDmTlvOff)
      .jne_imm(R2, net::kTlvDelayMeasurement, "drop")
      .ldx(BPF_DW, R2, R6, 32)  // RX software timestamp
      .to_be(R2, 64)
      .stx(BPF_DW, R10, R2, -8)
      .mov64_reg(R1, R6)
      .mov64_imm(R2, kTwdDmRxOff)
      .mov64_reg(R3, R10)
      .add64_imm(R3, -8)
      .mov64_imm(R4, 8)
      .call(helper::LWT_SEG6_STORE_BYTES)
      .jne_imm(R0, 0, "drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_()
      .label("drop")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 70, "End.DM-TWD (BPF)"};
}

// ---- §4.2: per-packet Weighted Round-Robin ---------------------------------------------
BuiltProgram build_wrr(std::uint32_t cfg_map_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .st(BPF_W, R10, -4, 0)
      .ld_map(R1, cfg_map_id)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -4)
      .call(helper::MAP_LOOKUP_ELEM)
      .jeq_imm(R0, 0, "pass")
      .mov64_reg(R7, R0)
      .ldx(BPF_DW, R1, R7, 0)   // counter (scheduler state, kept in the map)
      .mov64_reg(R2, R1)
      .add64_imm(R2, 1)
      .stx(BPF_DW, R7, R2, 0)
      .ldx(BPF_DW, R3, R7, 8)   // weight1
      .ldx(BPF_DW, R4, R7, 16)  // weight2
      .mov64_reg(R5, R3)
      .add64_reg(R5, R4)
      .jeq_imm(R5, 0, "pass")
      .mod64_reg(R1, R5)        // slot = counter % (w1 + w2)
      .mov64_imm(R2, 24)        // offsetof(WrrConfig, sid1)
      .jlt_reg(R1, R3, "chosen")
      .mov64_imm(R2, 40)        // offsetof(WrrConfig, sid2)
      .label("chosen")
      .mov64_reg(R8, R7)
      .add64_reg(R8, R2)
      .ldx(BPF_DW, R1, R8, 0)   // copy the chosen SID to the stack SRH
      .stx(BPF_DW, R10, R1, -16)
      .ldx(BPF_DW, R1, R8, 8)
      .stx(BPF_DW, R10, R1, -8)
      // single-segment SRH (24 bytes) at fp-24
      .st(BPF_B, R10, -24, net::kProtoIpv6)
      .st(BPF_B, R10, -23, 2)   // hdr_ext_len: (24/8)-1
      .st(BPF_B, R10, -22, net::kSrhRoutingType)
      .st(BPF_B, R10, -21, 0)   // segments_left
      .st(BPF_B, R10, -20, 0)   // last_entry
      .st(BPF_B, R10, -19, 0)
      .st(BPF_H, R10, -18, 0)
      .mov64_reg(R1, R6)
      .mov64_imm(R2, static_cast<std::int32_t>(seg6::BPF_LWT_ENCAP_SEG6))
      .mov64_reg(R3, R10)
      .add64_imm(R3, -24)
      .mov64_imm(R4, 24)
      .call(helper::LWT_PUSH_ENCAP)
      .label("pass")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_();
  return {a.build(), 120, "WRR scheduler (BPF)"};
}

// ---- §4.3: End.OAMP -----------------------------------------------------------------------
BuiltProgram build_end_oamp(std::uint32_t perf_map_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .ldx(BPF_DW, R7, R6, 0)
      .ldx(BPF_DW, R8, R6, 8)
      .mov64_reg(R1, R7)
      .add64_imm(R1, kOampHeaderBytes)
      .jgt_reg(R1, R8, "drop")
      .ldx(BPF_B, R2, R7, kOampReplyTlvOff)
      .jne_imm(R2, net::kTlvOamReplyTo, "drop")
      // queried target = final segment of the probe -> fp-168
      .ldx(BPF_DW, R2, R7, kOampTargetSegOff)
      .stx(BPF_DW, R10, R2, -168)
      .ldx(BPF_DW, R2, R7, kOampTargetSegOff + 8)
      .stx(BPF_DW, R10, R2, -160)
      // OampEvent at fp-152: reply addr/port first
      .ldx(BPF_DW, R2, R7, kOampReplyAddrOff)
      .stx(BPF_DW, R10, R2, -152)
      .ldx(BPF_DW, R2, R7, kOampReplyAddrOff + 8)
      .stx(BPF_DW, R10, R2, -144)
      .ldx(BPF_H, R2, R7, kOampReplyPortOff)
      .to_be(R2, 16)
      .stx(BPF_H, R10, R2, -136)
      .st(BPF_H, R10, -134, 0)
      // bpf_fib_ecmp_nexthops(ctx, &target, 16, event.nexthops, 128)
      .mov64_reg(R1, R6)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -168)
      .mov64_imm(R3, 16)
      .mov64_reg(R4, R10)
      .add64_imm(R4, -128)
      .mov64_imm(R5, 128)
      .call(helper::FIB_ECMP_NEXTHOPS)
      .stx(BPF_W, R10, R0, -132)  // nexthop_count
      .mov64_reg(R1, R6)
      .ld_map(R2, perf_map_id)
      .mov64_imm(R3, 0)
      .mov64_reg(R4, R10)
      .add64_imm(R4, -152)
      .mov64_imm(R5, 152)
      .call(helper::PERF_EVENT_OUTPUT)
      .label("drop")  // probe consumed either way; the daemon answers
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_DROP))
      .exit_();
  return {a.build(), 60, "End.OAMP (BPF)"};
}

// ---- Multi-core: per-CPU packet counter -------------------------------------
// The minimal program the multi-core Node model needs for race-free
// telemetry: bump this CPU's slot of a PERCPU_ARRAY counter and stamp the
// servicing context id into skb->mark. With a plain ARRAY map N contexts
// would interleave read-modify-write on one cell; the per-CPU slot makes the
// increment private, exactly why BPF_MAP_TYPE_PERCPU_* exists.
BuiltProgram build_percpu_counter(std::uint32_t cnt_map_id) {
  Asm a;
  a.mov64_reg(R6, R1)
      .call(helper::GET_SMP_PROCESSOR_ID)
      .stx(BPF_W, R6, R0, ebpf::skb_off::kMark)  // mark = cpu context id
      .st(BPF_W, R10, -4, 0)                     // key 0
      .ld_map(R1, cnt_map_id)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -4)
      .call(helper::MAP_LOOKUP_ELEM)             // this CPU's u64 slot
      .jeq_imm(R0, 0, "out")
      .ldx(BPF_DW, R1, R0, 0)
      .add64_imm(R1, 1)
      .stx(BPF_DW, R0, R1, 0)
      .label("out")
      .mov32_imm(R0, static_cast<std::int32_t>(BPF_OK))
      .exit_();
  return {a.build(), 15, "per-CPU counter (BPF)"};
}

}  // namespace srv6bpf::usecases
