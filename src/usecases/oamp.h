// §4.3 — Querying ECMP nexthops: End.OAMP and the multipath-aware
// traceroute.
//
// Each router exposes an End.OAMP SID (an End.BPF program). When a probe
// reaches it, the program calls the custom bpf_fib_ecmp_nexthops helper for
// the probe's target address and reports the nexthop set via a perf event; a
// responder daemon answers the prober over UDP. The modified traceroute
// first discovers hop addresses with classic hop-limit probing (ICMPv6 time
// exceeded), then queries each discovered hop's OAMP SID, falling back to
// the legacy ICMP data when a hop does not support OAMP.
//
// Lab topology (ECMP diamond):
//
//          ┌── R2a ──┐
//   S ─ R1 ┤         ├ R3 ── D
//          └── R2b ──┘
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "apps/daemons.h"
#include "apps/sink.h"
#include "sim/network.h"
#include "usecases/programs.h"

namespace srv6bpf::usecases {

// Derives a router's OAMP SID from any of its interface addresses by
// convention: the last 16-bit group is replaced with 0xfafa. Routers register
// the SID for each interface address they own.
net::Ipv6Addr oamp_sid_for(const net::Ipv6Addr& hop_addr);

struct TracerouteHop {
  int ttl = 0;
  net::Ipv6Addr addr;                     // from ICMPv6 time exceeded
  bool oamp_answered = false;             // did End.OAMP reply?
  std::vector<net::Ipv6Addr> nexthops;    // ECMP nexthops towards the target
};

class OampLab {
 public:
  explicit OampLab(std::uint64_t seed = 21);

  sim::Network& net() noexcept { return net_; }
  sim::Node& prober() noexcept { return *s_; }
  const net::Ipv6Addr& prober_addr() const noexcept { return s_addr_; }
  const net::Ipv6Addr& target() const noexcept { return d_addr_; }

  // Install End.OAMP + responder daemon on a router (done for all routers by
  // the constructor; exposed for tests).
  void enable_oamp(sim::Node& node, const net::Ipv6Addr& iface_addr);

  // Disables OAMP on one router (for exercising the ICMP fallback).
  void disable_oamp(const net::Ipv6Addr& iface_addr);

 private:
  sim::Network net_;
  sim::Node* s_;
  sim::Node* r1_;
  sim::Node* r2a_;
  sim::Node* r2b_;
  sim::Node* r3_;
  sim::Node* d_;
  net::Ipv6Addr s_addr_;
  net::Ipv6Addr d_addr_;
  std::vector<std::unique_ptr<apps::PerfPoller>> pollers_;
};

// The modified traceroute application, run on the prober node.
class Traceroute {
 public:
  struct Options {
    net::Ipv6Addr target;
    net::Ipv6Addr prober_addr;
    int max_ttl = 8;
    int flows = 6;  // Paris-style: vary flow id to expose ECMP spreading
    std::uint16_t base_port = 33434;
    sim::TimeNs per_ttl_timeout = 50 * sim::kMilli;
  };

  Traceroute(sim::Node& node, apps::AppMux& mux, Options opts);

  // Runs the full trace (drives the lab's event loop).
  std::vector<TracerouteHop> run(sim::Network& net);

  static constexpr std::uint16_t kOampReplyPort = 33600;

 private:
  void send_ttl_probes(int ttl);
  void send_oamp_probe(const net::Ipv6Addr& hop_addr);

  sim::Node& node_;
  Options opts_;
  std::map<int, TracerouteHop> hops_;             // ttl -> hop
  std::map<net::Ipv6Addr, int> addr_to_ttl_;
  bool reached_target_ = false;
};

}  // namespace srv6bpf::usecases
