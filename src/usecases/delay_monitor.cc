#include "usecases/delay_monitor.h"

#include <cstring>

#include "ebpf/perf_event.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::usecases {

namespace {
const net::Ipv6Addr kS1Addr = net::Ipv6Addr::must_parse("fc00:1::1");
const net::Ipv6Addr kRIf0 = net::Ipv6Addr::must_parse("fc00:1::2");
const net::Ipv6Addr kRIf1 = net::Ipv6Addr::must_parse("fc00:2::1");
const net::Ipv6Addr kS2Addr = net::Ipv6Addr::must_parse("fc00:2::2");
const net::Ipv6Addr kDmSid = net::Ipv6Addr::must_parse("fc00:a::dd");
}  // namespace

DelayMonitorLab::DelayMonitorLab(const Options& opts) : net_(opts.seed) {
  s1_ = &net_.add_node("S1");
  r_ = &net_.add_node("R");
  s2_ = &net_.add_node("S2");

  const std::uint64_t kTenGig = 10ull * 1000 * 1000 * 1000;
  auto l1 = net_.connect(*s1_, kS1Addr, *r_, kRIf0, kTenGig, opts.link_delay);
  auto l2 = net_.connect(*r_, kRIf1, *s2_, kS2Addr, kTenGig, opts.link_delay);

  // ---- routing ----
  // S1: everything via R, with the DM transit program attached to the
  // monitored destination prefix.
  auto& s1_fib = s1_->ns().table(0);
  auto& r_fib = r_->ns().table(0);
  auto& s2_fib = s2_->ns().table(0);

  // S1 -> monitored prefix: LWT BPF xmit program (the paper's transit hook).
  auto& s1_bpf = s1_->ns().bpf();
  ebpf::MapDef cfg_def;
  cfg_def.type = ebpf::MapType::kArray;
  cfg_def.key_size = 4;
  cfg_def.value_size = sizeof(DmEncapConfig);
  cfg_def.max_entries = 1;
  cfg_def.name = "dm_encap_cfg";
  const std::uint32_t cfg_id = s1_bpf.maps().create(cfg_def);

  DmEncapConfig cfg;
  cfg.ratio = opts.probe_ratio;
  std::memcpy(cfg.dm_sid, kDmSid.bytes().data(), 16);
  std::memcpy(cfg.final_seg, kS2Addr.bytes().data(), 16);
  std::memcpy(cfg.ctrl_addr, kS1Addr.bytes().data(), 16);
  cfg.ctrl_port = kControllerPort;
  const std::uint32_t key0 = 0;
  s1_bpf.maps().get(cfg_id)->put(key0, cfg);

  auto encap_built = build_dm_encap(cfg_id);
  auto encap_load = s1_bpf.load(encap_built.name, ebpf::ProgType::kLwtXmit,
                                encap_built.insns, encap_built.paper_sloc);
  if (!encap_load.ok())
    throw std::runtime_error("dm_encap rejected: " + encap_load.verify.error);

  auto lwt = std::make_shared<seg6::LwtState>();
  lwt->kind = seg6::LwtState::Kind::kBpf;
  lwt->prog_xmit = encap_load.prog;
  s1_fib.add_route({net::Prefix::parse("fc00:2::/64").value(),
                    {{kRIf0, l1.a_ifindex, 1}},
                    lwt});
  // Probe outer destinations (the DM SID) also go via R.
  s1_fib.add_route(net::Prefix::parse("fc00:a::/64").value(),
                   {kRIf0, l1.a_ifindex, 1});

  // R: plain forwarding between the two prefixes + the End.DM SID.
  r_fib.add_route(net::Prefix::parse("fc00:1::/64").value(),
                  {net::Ipv6Addr{}, l1.b_ifindex, 1});
  r_fib.add_route(net::Prefix::parse("fc00:2::/64").value(),
                  {net::Ipv6Addr{}, l2.a_ifindex, 1});

  auto& r_bpf = r_->ns().bpf();
  const std::uint32_t perf_id =
      ebpf::create_perf_event_array(r_bpf.maps(), "dm_events", 65536);
  auto dm_built = build_end_dm(perf_id);
  auto dm_load = r_bpf.load(dm_built.name, ebpf::ProgType::kLwtSeg6Local,
                            dm_built.insns, dm_built.paper_sloc);
  if (!dm_load.ok())
    throw std::runtime_error("end_dm rejected: " + dm_load.verify.error);

  seg6::Seg6LocalEntry dm_entry;
  dm_entry.action = seg6::Seg6Action::kEndBPF;
  dm_entry.prog = dm_load.prog;
  r_->ns().seg6local().add(kDmSid, dm_entry);

  // S2: default route back through R; local sink.
  s2_fib.add_route(net::Prefix::parse("::/0").value(),
                   {kRIf1, l2.b_ifindex, 1});

  // ---- CPU + JIT knobs ----
  if (opts.cpu_model_on_r) {
    r_->cpu.enabled = true;
    r_->cpu.profile = sim::kXeonProfile;
  }
  s1_->ns().bpf().set_jit_enabled(opts.jit);
  r_->ns().bpf().set_jit_enabled(opts.jit);

  // ---- apps ----
  // Both receive paths are gated by compiled filter expressions, the
  // userspace half of the paper's deployment: the sink and the controller
  // each attach a classic-BPF filter to their socket (SO_ATTACH_FILTER),
  // which we compile from tcpdump syntax and translate to eBPF.
  std::string ferr;
  mux_s2_ = std::make_unique<apps::AppMux>(*s2_);
  sink_filter_ = apps::SocketFilter::from_expr(s2_->ns(), "sink_filter",
                                               opts.sink_filter, &ferr);
  if (sink_filter_ == nullptr)
    throw std::runtime_error("sink filter \"" + opts.sink_filter +
                             "\": " + ferr);
  sink_ = std::make_unique<apps::UdpSink>(*mux_s2_, 7001, sink_filter_);

  mux_s1_ = std::make_unique<apps::AppMux>(*s1_);
  ctrl_filter_ = apps::SocketFilter::from_expr(s1_->ns(), "ctrl_filter",
                                               opts.controller_filter, &ferr);
  if (ctrl_filter_ == nullptr)
    throw std::runtime_error("controller filter \"" + opts.controller_filter +
                             "\": " + ferr);
  mux_s1_->attach_udp_filter(kControllerPort, ctrl_filter_);
  mux_s1_->on_udp(kControllerPort,
                  [this](const net::Packet&, const net::UdpHeader&,
                         std::span<const std::uint8_t> payload, sim::TimeNs) {
                    if (payload.size() < 16) return;
                    OwdSample s;
                    s.tx_ns = load_unaligned<std::uint64_t>(payload.data());
                    s.rx_ns = load_unaligned<std::uint64_t>(payload.data() + 8);
                    samples_.push_back(s);
                    ++ctrl_rx_;
                  });

  // The user-space daemon on R: poll the perf ring, relay to the controller
  // (the paper's 100-SLOC bcc/Python daemon).
  auto* perf_map =
      dynamic_cast<ebpf::PerfEventArrayMap*>(r_bpf.maps().get(perf_id));
  poller_ = std::make_unique<apps::PerfPoller>(
      *r_, perf_map->buffer(), sim::kMilli,
      [this](const ebpf::PerfRecord& rec, sim::TimeNs) {
        if (rec.data.size() < sizeof(DmEvent)) return;
        ++probes_;
        DmEvent ev;
        std::memcpy(&ev, rec.data.data(), sizeof ev);
        net::Ipv6Addr ctrl;
        std::memcpy(ctrl.bytes().data(), ev.ctrl_addr, 16);
        std::uint8_t payload[16];
        store_unaligned<std::uint64_t>(payload, ev.tx_ns);
        store_unaligned<std::uint64_t>(payload + 8, ev.rx_ns);
        apps::send_udp(*r_, kRIf0, ctrl, 40000, ev.ctrl_port, payload);
      });
  poller_->start();
}

void DelayMonitorLab::offer_traffic(double pps, sim::TimeNs duration,
                                    std::size_t payload) {
  apps::TrafGen::Config cfg;
  cfg.spec.src = kS1Addr;
  cfg.spec.dst = kS2Addr;
  cfg.spec.src_port = 7000;
  cfg.spec.dst_port = 7001;
  cfg.spec.payload_size = payload;
  cfg.pps = pps;
  cfg.start_at = net_.now();
  cfg.duration = duration;
  gen_ = std::make_unique<apps::TrafGen>(*s1_, cfg);
  gen_->start();
}

std::uint64_t DelayMonitorLab::sink_packets() const {
  return sink_->packets();
}

}  // namespace srv6bpf::usecases
