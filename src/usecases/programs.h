// The eBPF network functions evaluated in the paper, hand-assembled with
// ebpf::Asm (the paper wrote them in C and compiled with clang's BPF
// backend; the logic and helper call sequences here are the same).
//
// §3.2 micro-benchmark programs:
//   * End            — empty endpoint (1 SLOC body in the paper)
//   * End.T (BPF)    — bpf_lwt_seg6_action(SEG6_LOCAL_ACTION_END_T) (4 SLOC)
//   * Tag++          — read the SRH tag, increment it through
//                      bpf_lwt_seg6_store_bytes (50 SLOC)
//   * Add TLV        — grow the TLV area by 8 bytes with
//                      bpf_lwt_seg6_adjust_srh, then fill it (60 SLOC)
//
// §4 use-case programs:
//   * DM encap       — LWT transit: encapsulate every Nth packet with an SRH
//                      carrying a DM TLV (TX timestamp) + controller TLV
//                      (130 SLOC)
//   * End.DM         — endpoint: report TX/RX timestamps via perf event,
//                      then End.DT6-decapsulate (OWD, §4.1)
//   * End.DM (TWD)   — write the RX timestamp into the probe in place and
//                      bounce it back to the querier (§4.2)
//   * WRR            — LWT transit: per-packet weighted round-robin across
//                      two SRv6 paths (120 SLOC, §4.2)
//   * End.OAMP       — query the FIB's ECMP nexthops for the probe's target
//                      and report them via perf event (60 SLOC, §4.3)
#pragma once

#include <cstdint>
#include <vector>

#include "ebpf/insn.h"
#include "ebpf/map.h"
#include "net/ip6.h"

namespace srv6bpf::usecases {

// ---- On-the-wire probe layouts (fixed formats, byte offsets from the start
// ---- of the outermost IPv6 header) ------------------------------------------

// OWD probe (§4.1): outer IPv6 + SRH{2 segments, DM TLV, controller TLV}.
// 40 + (8 + 32 + 20 + 20) = 120 bytes of headers before the inner packet.
inline constexpr int kOwdSrhOff = 40;
inline constexpr int kOwdSrhLen = 80;
inline constexpr int kOwdDmTlvOff = 80;        // type 124
inline constexpr int kOwdDmTxOff = 84;         // u64 BE
inline constexpr int kOwdCtrlTlvOff = 100;     // type 125
inline constexpr int kOwdCtrlAddrOff = 102;
inline constexpr int kOwdCtrlPortOff = 118;
inline constexpr int kOwdHeaderBytes = 120;

// TWD probe (§4.2): IPv6 + SRH{2 segments, DM TLV, PadN(4)} = 40 + 64.
inline constexpr int kTwdDmTlvOff = 80;
inline constexpr int kTwdDmRxOff = 92;   // u64 BE, written by the CPE
inline constexpr int kTwdDmTxOff = 84;
inline constexpr int kTwdHeaderBytes = 104;

// OAMP probe (§4.3): IPv6 + SRH{2 segments, reply-to TLV(20), PadN(4)}.
inline constexpr int kOampReplyTlvOff = 80;   // type 126
inline constexpr int kOampReplyAddrOff = 82;
inline constexpr int kOampReplyPortOff = 98;
inline constexpr int kOampTargetSegOff = 48;  // segment[0] = queried target
inline constexpr int kOampHeaderBytes = 104;

// ---- Map value layouts -------------------------------------------------------

// DM encap config (array map, one entry).
struct DmEncapConfig {
  std::uint64_t counter = 0;   // incremented per packet
  std::uint64_t ratio = 100;   // probe every Nth packet
  std::uint8_t dm_sid[16]{};   // segment bound to End.DM on R
  std::uint8_t final_seg[16]{};
  std::uint8_t ctrl_addr[16]{};
  std::uint16_t ctrl_port = 0;
  std::uint8_t pad[6]{};
};
static_assert(sizeof(DmEncapConfig) == 72);

// WRR scheduler state+config (array map, one entry) — "we use maps to store
// the scheduler state, i.e. the weights and the last chosen path" (§4.2).
struct WrrConfig {
  std::uint64_t counter = 0;
  std::uint64_t weight1 = 5;
  std::uint64_t weight2 = 3;
  std::uint8_t sid1[16]{};
  std::uint8_t sid2[16]{};
};
static_assert(sizeof(WrrConfig) == 56);

// ---- Perf event records -------------------------------------------------------

// Emitted by End.DM (§4.1).
struct DmEvent {
  std::uint64_t tx_ns = 0;
  std::uint64_t rx_ns = 0;
  std::uint8_t ctrl_addr[16]{};
  std::uint16_t ctrl_port = 0;
  std::uint8_t pad[6]{};
};
static_assert(sizeof(DmEvent) == 40);

// Emitted by End.OAMP (§4.3).
struct OampEvent {
  std::uint8_t reply_addr[16]{};
  std::uint16_t reply_port = 0;
  std::uint16_t pad = 0;
  std::uint32_t nexthop_count = 0;
  std::uint8_t nexthops[8][16]{};
};
static_assert(sizeof(OampEvent) == 152);

// ---- Program builders ---------------------------------------------------------
// Each returns the raw instruction stream; load via BpfSystem::load with the
// indicated program type. `sloc` reports the paper's SLOC figure for the C
// original, surfaced by the benchmarks.

struct BuiltProgram {
  std::vector<ebpf::Insn> insns;
  std::size_t paper_sloc;
  const char* name;
};

BuiltProgram build_end();                                // seg6local
BuiltProgram build_end_t(std::uint32_t table_id);        // seg6local
BuiltProgram build_tag_increment();                      // seg6local
BuiltProgram build_add_tlv();                            // seg6local
BuiltProgram build_dm_encap(std::uint32_t cfg_map_id);   // lwt_xmit
BuiltProgram build_end_dm(std::uint32_t perf_map_id);    // seg6local
BuiltProgram build_end_dm_twd();                         // seg6local
BuiltProgram build_wrr(std::uint32_t cfg_map_id);        // lwt_xmit
BuiltProgram build_end_oamp(std::uint32_t perf_map_id);  // seg6local
// Multi-core observability: counts packets per CPU context in a
// BPF_MAP_TYPE_PERCPU_ARRAY (slot 0 of `cnt_map_id`, a u64 per CPU) and
// tags each packet's skb->mark with bpf_get_smp_processor_id() so the
// servicing context is visible downstream. Race-free across the multi-core
// Node's contexts by construction — the per-CPU map is the whole point.
BuiltProgram build_percpu_counter(std::uint32_t cnt_map_id);  // seg6local

}  // namespace srv6bpf::usecases
