#include "usecases/hybrid.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "net/checksum.h"
#include "net/srh.h"
#include "net/transport.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::usecases {

namespace {

const net::Ipv6Addr kS1 = net::Ipv6Addr::must_parse("fd00:1::1");
const net::Ipv6Addr kAIf0 = net::Ipv6Addr::must_parse("fd00:1::2");
const net::Ipv6Addr kAL1 = net::Ipv6Addr::must_parse("fd00:a1::1");
const net::Ipv6Addr kML1 = net::Ipv6Addr::must_parse("fd00:a1::2");
const net::Ipv6Addr kAL2 = net::Ipv6Addr::must_parse("fd00:a2::1");
const net::Ipv6Addr kML2 = net::Ipv6Addr::must_parse("fd00:a2::2");
const net::Ipv6Addr kMIf2 = net::Ipv6Addr::must_parse("fd00:2::1");
const net::Ipv6Addr kS2 = net::Ipv6Addr::must_parse("fd00:2::2");

// SIDs. d1/d2 = End.DT6 decap SIDs reachable via link1/link2; 7d01/7d02 =
// the CPE's two End.DM-TWD SIDs (one pinned to each link by /128 routes).
const net::Ipv6Addr kMD1 = net::Ipv6Addr::must_parse("fd00:ae::d1");
const net::Ipv6Addr kMD2 = net::Ipv6Addr::must_parse("fd00:ae::d2");
const net::Ipv6Addr kMTwd1 = net::Ipv6Addr::must_parse("fd00:ae::7d01");
const net::Ipv6Addr kMTwd2 = net::Ipv6Addr::must_parse("fd00:ae::7d02");
const net::Ipv6Addr kAD1 = net::Ipv6Addr::must_parse("fd00:aa::d1");
const net::Ipv6Addr kAD2 = net::Ipv6Addr::must_parse("fd00:aa::d2");

constexpr std::uint16_t kTwdPortL1 = 41001;
constexpr std::uint16_t kTwdPortL2 = 41002;

// Installs the WRR LWT program on `node` for `prefix`, scheduling across
// sid1/sid2 with the given weights.
std::shared_ptr<seg6::LwtState> make_wrr_lwt(sim::Node& node,
                                             const net::Ipv6Addr& sid1,
                                             const net::Ipv6Addr& sid2,
                                             std::uint64_t w1,
                                             std::uint64_t w2) {
  auto& bpf = node.ns().bpf();
  ebpf::MapDef def;
  def.type = ebpf::MapType::kArray;
  def.key_size = 4;
  def.value_size = sizeof(WrrConfig);
  def.max_entries = 1;
  def.name = node.name() + "_wrr_cfg";
  const std::uint32_t cfg_id = bpf.maps().create(def);

  WrrConfig cfg;
  cfg.weight1 = w1;
  cfg.weight2 = w2;
  std::memcpy(cfg.sid1, sid1.bytes().data(), 16);
  std::memcpy(cfg.sid2, sid2.bytes().data(), 16);
  bpf.maps().get(cfg_id)->put(std::uint32_t{0}, cfg);

  auto built = build_wrr(cfg_id);
  auto load = bpf.load(built.name, ebpf::ProgType::kLwtXmit, built.insns,
                       built.paper_sloc);
  if (!load.ok())
    throw std::runtime_error("wrr rejected: " + load.verify.error);

  auto lwt = std::make_shared<seg6::LwtState>();
  lwt->kind = seg6::LwtState::Kind::kBpf;
  lwt->prog_xmit = load.prog;
  return lwt;
}

void add_dt6_sid(sim::Node& node, const net::Ipv6Addr& sid) {
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndDT6;
  e.table = 0;
  node.ns().seg6local().add(sid, e);
}

}  // namespace

// ---------------------------------------------------------------------------
// HybridLab (TCP over two asymmetric links)
// ---------------------------------------------------------------------------

HybridLab::HybridLab(const Options& opts) : net_(opts.seed) {
  s1_ = &net_.add_node("S1");
  a_ = &net_.add_node("A");   // aggregation box
  m_ = &net_.add_node("M");   // Turris Omnia CPE
  s2_ = &net_.add_node("S2");

  const std::uint64_t kGig = 1000ull * 1000 * 1000;
  auto l0 = net_.connect(*s1_, kS1, *a_, kAIf0, kGig, 100 * sim::kMicro);
  auto l1 = net_.connect(*a_, kAL1, *m_, kML1, opts.link1_bps, 0);
  auto l2 = net_.connect(*a_, kAL2, *m_, kML2, opts.link2_bps, 0);
  auto l3 = net_.connect(*m_, kMIf2, *s2_, kS2, kGig, 100 * sim::kMicro);
  link1_ = l1.link;
  link2_ = l2.link;
  a_link1_side_ = 0;  // A attached at side 0 of both WAN links
  a_link2_side_ = 0;
  // Access links buffer less than a datacenter NIC; 256 KiB keeps
  // worst-case queueing below ~70 ms at these rates.
  link1_->set_wire_queue_limit(256 * 1024);
  link2_->set_wire_queue_limit(256 * 1024);

  // netem on both directions of each WAN link: half the RTT per direction.
  // Jitter is time-correlated (access-link latency wanders slowly rather
  // than per packet), which is also what makes the paper's periodic TWD
  // compensation able to track it.
  for (int side = 0; side < 2; ++side) {
    sim::NetemConfig n1;
    n1.delay_ns = opts.link1_rtt / 2;
    n1.jitter_ns = opts.link1_jitter_rtt / 2;
    n1.jitter_tau_ns = 10 * sim::kSecond;
    link1_->qdisc(side).set_config(n1);
    sim::NetemConfig n2;
    n2.delay_ns = opts.link2_rtt / 2;
    n2.jitter_ns = opts.link2_jitter_rtt / 2;
    n2.jitter_tau_ns = 10 * sim::kSecond;
    link2_->qdisc(side).set_config(n2);
  }

  // ---- routing ----
  auto& s1f = s1_->ns().table(0);
  auto& af = a_->ns().table(0);
  auto& mf = m_->ns().table(0);
  auto& s2f = s2_->ns().table(0);
  auto p = [](const char* s) { return net::Prefix::parse(s).value(); };

  s1f.add_route(p("::/0"), {kAIf0, l0.a_ifindex, 1});
  s2f.add_route(p("::/0"), {kMIf2, l3.b_ifindex, 1});

  // A: client prefix through the WRR scheduler; SIDs pinned per link.
  af.add_route({p("fd00:2::/64"), {},
                make_wrr_lwt(*a_, kMD1, kMD2, opts.weight1, opts.weight2)});
  af.add_route(p("fd00:ae::d1/128"), {kML1, l1.a_ifindex, 1});
  af.add_route(p("fd00:ae::7d01/128"), {kML1, l1.a_ifindex, 1});
  af.add_route(p("fd00:ae::d2/128"), {kML2, l2.a_ifindex, 1});
  af.add_route(p("fd00:ae::7d02/128"), {kML2, l2.a_ifindex, 1});
  af.add_route(p("fd00:1::/64"), {net::Ipv6Addr{}, l0.b_ifindex, 1});
  af.add_route(p("fd00:a1::/64"), {net::Ipv6Addr{}, l1.a_ifindex, 1});
  af.add_route(p("fd00:a2::/64"), {net::Ipv6Addr{}, l2.a_ifindex, 1});
  add_dt6_sid(*a_, kAD1);
  add_dt6_sid(*a_, kAD2);

  // M (CPE): upstream through its own WRR; local LAN on if2.
  mf.add_route({p("fd00:1::/64"), {},
                make_wrr_lwt(*m_, kAD1, kAD2, opts.weight1, opts.weight2)});
  mf.add_route(p("fd00:aa::d1/128"), {kAL1, l1.b_ifindex, 1});
  mf.add_route(p("fd00:aa::d2/128"), {kAL2, l2.b_ifindex, 1});
  mf.add_route(p("fd00:2::/64"), {net::Ipv6Addr{}, l3.a_ifindex, 1});
  mf.add_route(p("fd00:a1::/64"), {net::Ipv6Addr{}, l1.b_ifindex, 1});
  mf.add_route(p("fd00:a2::/64"), {net::Ipv6Addr{}, l2.b_ifindex, 1});
  add_dt6_sid(*m_, kMD1);
  add_dt6_sid(*m_, kMD2);

  // The CPE runs without the JIT (ARM32 JIT bug, §4.2).
  m_->ns().bpf().set_jit_enabled(false);

  // End.DM-TWD SIDs on the CPE.
  {
    auto& bpf = m_->ns().bpf();
    auto built = build_end_dm_twd();
    auto load = bpf.load(built.name, ebpf::ProgType::kLwtSeg6Local,
                         built.insns, built.paper_sloc);
    if (!load.ok())
      throw std::runtime_error("end_dm_twd rejected: " + load.verify.error);
    seg6::Seg6LocalEntry e;
    e.action = seg6::Seg6Action::kEndBPF;
    e.prog = load.prog;
    m_->ns().seg6local().add(kMTwd1, e);
    m_->ns().seg6local().add(kMTwd2, e);
  }

  mux_s1_ = std::make_unique<apps::AppMux>(*s1_);
  mux_s2_ = std::make_unique<apps::AppMux>(*s2_);
  mux_a_ = std::make_unique<apps::AppMux>(*a_);

  if (opts.twd_compensation) start_twd_daemon(opts);
}

void HybridLab::send_twd_probe(int link_index) {
  // Probe: IPv6 + SRH{segments [M::7d0X, A], DM TLV(tx=now), PadN} + UDP.
  const net::Ipv6Addr& sid = link_index == 0 ? kMTwd1 : kMTwd2;
  const std::uint16_t port = link_index == 0 ? kTwdPortL1 : kTwdPortL2;

  std::vector<net::Ipv6Addr> segs = {sid, kAL1};  // bounce back to A
  std::vector<std::uint8_t> tlvs =
      net::build_dm_tlv(net_.now(), net::kDmFlagTwoWay);
  const auto pad = net::build_padn(4);
  tlvs.insert(tlvs.end(), pad.begin(), pad.end());
  const auto srh = net::build_srh(net::kProtoUdp, segs, tlvs);

  const std::size_t udp_len = net::kUdpHeaderSize + 8;
  net::Packet pkt;
  std::uint8_t* buf =
      pkt.push_front(net::kIpv6HeaderSize + srh.size() + udp_len);
  net::Ipv6Header ip;
  ip.src = kAL1;
  ip.dst = sid;
  ip.next_header = net::kProtoRouting;
  ip.hop_limit = 64;
  ip.payload_length = static_cast<std::uint16_t>(srh.size() + udp_len);
  ip.write(buf);
  std::memcpy(buf + net::kIpv6HeaderSize, srh.data(), srh.size());
  net::UdpHeader uh;
  uh.src_port = 41000;
  uh.dst_port = port;
  uh.length = static_cast<std::uint16_t>(udp_len);
  uh.write(buf + net::kIpv6HeaderSize + srh.size());
  store_unaligned<std::uint64_t>(
      buf + net::kIpv6HeaderSize + srh.size() + net::kUdpHeaderSize,
      ++twd_seq_);
  a_->send(std::move(pkt));
}

void HybridLab::start_twd_daemon(const Options& opts) {
  twd_on_ = true;
  twd_interval_ = opts.twd_interval;

  base_delay_[0] = link1_->qdisc(a_link1_side_).config().delay_ns;
  base_delay_[1] = link2_->qdisc(a_link2_side_).config().delay_ns;

  // Returned probes still carry the full SRH; pull the timestamps out of the
  // DM TLV (tx written by us, rx filled in by the CPE's End.DM-TWD).
  auto handle = [this](int link_index) {
    return [this, link_index](const net::Packet& pkt, const net::UdpHeader&,
                              std::span<const std::uint8_t>, sim::TimeNs) {
      if (pkt.size() < static_cast<std::size_t>(kTwdHeaderBytes)) return;
      const std::uint8_t* d = pkt.data();
      if (d[kTwdDmTlvOff] != net::kTlvDelayMeasurement) return;
      const std::uint64_t tx = load_be64(d + kTwdDmTxOff);
      const std::uint64_t rx = load_be64(d + kTwdDmRxOff);
      ++twd_rx_;
      // Probes share the links with TCP data, so raw samples include queue
      // waits; a windowed minimum rejects those spikes and tracks the
      // propagation delay + applied compensation.
      auto& win = owd_window_[link_index];
      win.push_back(static_cast<double>(rx - tx));
      if (win.size() > 12) win.pop_front();
      owd_valid_[link_index] = win.size() >= 4;

      if (owd_valid_[0] && owd_valid_[1]) {
        // "the daemon computes the difference of delays between the two
        // links ... and applies a tc netem queuing discipline to delay the
        // packets on the fastest path" (§4.2). The measured difference
        // already includes the currently applied compensation, so adjust
        // incrementally with a damped gain and a deadband.
        const double min0 =
            *std::min_element(owd_window_[0].begin(), owd_window_[0].end());
        const double min1 =
            *std::min_element(owd_window_[1].begin(), owd_window_[1].end());
        delay_diff_ = static_cast<std::int64_t>(min0 - min1);
        const std::int64_t kDeadband =
            static_cast<std::int64_t>(sim::kMilli) / 4;
        if (delay_diff_ > kDeadband || delay_diff_ < -kDeadband) {
          const int fast = delay_diff_ > 0 ? 1 : 0;
          const int slow = 1 - fast;
          const std::int64_t abs_diff =
              delay_diff_ > 0 ? delay_diff_ : -delay_diff_;
          // Aggressive on gross error, gentle near convergence.
          const std::int64_t magnitude =
              abs_diff > 4 * static_cast<std::int64_t>(sim::kMilli)
                  ? abs_diff * 3 / 4
                  : abs_diff / 3;
          std::int64_t c = static_cast<std::int64_t>(comp_[fast]) + magnitude;
          // Prefer reducing the other side's compensation over stacking.
          if (comp_[slow] > 0) {
            const std::int64_t take =
                std::min<std::int64_t>(c, static_cast<std::int64_t>(comp_[slow]));
            comp_[slow] -= static_cast<sim::TimeNs>(take);
            c -= take;
          }
          comp_[fast] = static_cast<sim::TimeNs>(
              std::min<std::int64_t>(std::max<std::int64_t>(c, 0),
                                     60 * static_cast<std::int64_t>(sim::kMilli)));
          apply_compensation();
          // Old samples predate the new compensation; start fresh.
          owd_window_[0].clear();
          owd_window_[1].clear();
          owd_valid_[0] = owd_valid_[1] = false;
        }
      }
    };
  };
  mux_a_->on_udp(kTwdPortL1, handle(0));
  mux_a_->on_udp(kTwdPortL2, handle(1));

  // Periodic probing on both links.
  net_.loop().schedule(10 * sim::kMilli, [this] { start_probe_cycle(); });
}

void HybridLab::apply_compensation() {
  sim::Link* links[2] = {link1_, link2_};
  const int a_sides[2] = {a_link1_side_, a_link2_side_};
  for (int i = 0; i < 2; ++i) {
    links[i]->qdisc(a_sides[i]).set_delay(base_delay_[i] + comp_[i]);
    links[i]->qdisc(1 - a_sides[i]).set_delay(base_delay_[i] + comp_[i]);
  }
}

void HybridLab::start_probe_cycle() {
  if (!twd_on_) return;
  send_twd_probe(0);
  send_twd_probe(1);
  net_.loop().schedule(twd_interval_, [this] { start_probe_cycle(); });
}

double HybridLab::run_tcp(int flows, sim::TimeNs duration) {
  senders_.clear();
  receivers_.clear();
  const sim::TimeNs t0 = net_.now();
  for (int i = 0; i < flows; ++i) {
    apps::TcpReceiver::Config rc;
    rc.addr = kS2;
    rc.port = static_cast<std::uint16_t>(5001 + i);
    receivers_.push_back(
        std::make_unique<apps::TcpReceiver>(*s2_, *mux_s2_, rc));

    apps::TcpSender::Config sc;
    sc.src = kS1;
    sc.dst = kS2;
    sc.src_port = static_cast<std::uint16_t>(40001 + i);
    sc.dst_port = rc.port;
    sc.start_at = t0 + 50 * sim::kMilli;
    sc.duration = duration;
    senders_.push_back(
        std::make_unique<apps::TcpSender>(*s1_, *mux_s1_, sc));
    senders_.back()->start();
  }
  net_.run_for(duration + sim::kSecond);

  std::uint64_t bytes = 0;
  for (const auto& r : receivers_) bytes += r->delivered_bytes();
  return static_cast<double>(bytes) * 8e3 / static_cast<double>(duration);
}

std::uint64_t HybridLab::total_retransmits() const {
  std::uint64_t n = 0;
  for (const auto& s : senders_) n += s->retransmits();
  return n;
}

std::uint64_t HybridLab::total_timeouts() const {
  std::uint64_t n = 0;
  for (const auto& s : senders_) n += s->timeouts();
  return n;
}

std::uint64_t HybridLab::receiver_ooo_segments() const {
  std::uint64_t n = 0;
  for (const auto& r : receivers_) n += r->ooo_segments();
  return n;
}

// ---------------------------------------------------------------------------
// Fig4Lab (UDP forwarding performance of the Turris CPE)
// ---------------------------------------------------------------------------

Fig4Lab::Fig4Lab(const Options& opts) : net_(opts.seed), mode_(opts.mode) {
  s1_ = &net_.add_node("S1");
  m_ = &net_.add_node("M");
  s2_ = &net_.add_node("S2");

  const net::Ipv6Addr s1a = net::Ipv6Addr::must_parse("fd01:1::1");
  const net::Ipv6Addr m0 = net::Ipv6Addr::must_parse("fd01:1::2");
  const net::Ipv6Addr m1 = net::Ipv6Addr::must_parse("fd01:2::1");
  const net::Ipv6Addr s2a = net::Ipv6Addr::must_parse("fd01:2::2");
  const net::Ipv6Addr mDecap = net::Ipv6Addr::must_parse("fd01:ae::d6");
  const net::Ipv6Addr s2Decap1 = net::Ipv6Addr::must_parse("fd01:5e::d1");
  const net::Ipv6Addr s2Decap2 = net::Ipv6Addr::must_parse("fd01:5e::d2");

  const std::uint64_t kGig = 1000ull * 1000 * 1000;
  auto l0 = net_.connect(*s1_, s1a, *m_, m0, kGig, 100 * sim::kMicro);
  auto l1 = net_.connect(*m_, m1, *s2_, s2a, kGig, 100 * sim::kMicro);

  auto p = [](const char* s) { return net::Prefix::parse(s).value(); };
  auto& s1f = s1_->ns().table(0);
  auto& mfib = m_->ns().table(0);
  auto& s2f = s2_->ns().table(0);

  s2f.add_route(p("::/0"), {m1, l1.b_ifindex, 1});
  mfib.add_route(p("fd01:1::/64"), {net::Ipv6Addr{}, l0.b_ifindex, 1});
  mfib.add_route(p("fd01:2::/64"), {net::Ipv6Addr{}, l1.a_ifindex, 1});
  mfib.add_route(p("fd01:5e::/64"), {net::Ipv6Addr{}, l1.a_ifindex, 1});

  // The device under test: a Turris Omnia with its CPU modelled and, per the
  // paper's ARM32 JIT bug, the interpreter forced on.
  m_->cpu.enabled = true;
  m_->cpu.profile = sim::kTurrisProfile;
  m_->cpu.rx_burst = opts.cpe_burst;
  m_->ns().bpf().set_jit_enabled(false);

  switch (mode_) {
    case Mode::kPlainForward:
      s1f.add_route(p("::/0"), {m0, l0.a_ifindex, 1});
      break;
    case Mode::kKernelDecap: {
      // S1 encapsulates (cost not under test); M's kernel decapsulates.
      auto lwt = std::make_shared<seg6::LwtState>();
      lwt->kind = seg6::LwtState::Kind::kSeg6Encap;
      lwt->segments = {mDecap};
      s1f.add_route({p("fd01:2::/64"), {{m0, l0.a_ifindex, 1}}, lwt});
      s1f.add_route(p("::/0"), {m0, l0.a_ifindex, 1});
      add_dt6_sid(*m_, mDecap);
      break;
    }
    case Mode::kEbpfWrr: {
      s1f.add_route(p("::/0"), {m0, l0.a_ifindex, 1});
      // M encapsulates with the WRR program (interpreter-executed) towards
      // two decap SIDs on the far box.
      mfib.add_route({p("fd01:2::/64"), {},
                      make_wrr_lwt(*m_, s2Decap1, s2Decap2, 5, 3)});
      add_dt6_sid(*s2_, s2Decap1);
      add_dt6_sid(*s2_, s2Decap2);
      break;
    }
  }

  mux_s2_ = std::make_unique<apps::AppMux>(*s2_);
  sink_ = std::make_unique<apps::UdpSink>(*mux_s2_, 5201);
}

double Fig4Lab::run_udp(std::size_t payload_size, sim::TimeNs duration) {
  apps::UdpFlowSender::Config cfg;
  cfg.src = net::Ipv6Addr::must_parse("fd01:1::1");
  cfg.dst = net::Ipv6Addr::must_parse("fd01:2::2");
  cfg.payload_size = payload_size;
  // iperf3 -b 1G: offer line rate on the wire for this payload size.
  const double wire = static_cast<double>(payload_size) + 48 +
                      static_cast<double>(sim::kWireOverheadBytes);
  cfg.rate_bps = 1e9 * static_cast<double>(payload_size) / wire;
  cfg.start_at = net_.now();
  cfg.duration = duration + sim::kSecond;
  flow_ = std::make_unique<apps::UdpFlowSender>(*s1_, cfg);
  flow_->start();

  // Warm up, then measure.
  net_.run_for(200 * sim::kMilli);
  sink_->reset();
  const sim::TimeNs t0 = net_.now();
  net_.run_for(duration);
  return sink_->meter().mbps(net_.now() - t0);
}

}  // namespace srv6bpf::usecases
