#include "usecases/oamp.h"

#include <cstring>

#include "ebpf/perf_event.h"
#include "net/srh.h"
#include "net/transport.h"
#include "seg6/seg6local.h"
#include "util/byteorder.h"

namespace srv6bpf::usecases {

namespace {
constexpr std::uint16_t kEchoReplyPort = 33500;

net::Ipv6Addr addr(const char* s) { return net::Ipv6Addr::must_parse(s); }
net::Prefix pfx(const char* s) { return net::Prefix::parse(s).value(); }
}  // namespace

net::Ipv6Addr oamp_sid_for(const net::Ipv6Addr& hop_addr) {
  net::Ipv6Addr sid = hop_addr;
  sid.set_group(7, 0xfafa);
  return sid;
}

OampLab::OampLab(std::uint64_t seed) : net_(seed) {
  s_ = &net_.add_node("S");
  r1_ = &net_.add_node("R1");
  r2a_ = &net_.add_node("R2a");
  r2b_ = &net_.add_node("R2b");
  r3_ = &net_.add_node("R3");
  d_ = &net_.add_node("D");

  s_addr_ = addr("fb00:5::1");
  d_addr_ = addr("fb00:d::2");

  const std::uint64_t kGig = 1000ull * 1000 * 1000;
  const sim::TimeNs kDelay = 500 * sim::kMicro;
  auto ls = net_.connect(*s_, s_addr_, *r1_, addr("fb00:5::2"), kGig, kDelay);
  auto l12a = net_.connect(*r1_, addr("fb00:12a::1"), *r2a_,
                           addr("fb00:12a::2"), kGig, kDelay);
  auto l12b = net_.connect(*r1_, addr("fb00:12b::1"), *r2b_,
                           addr("fb00:12b::2"), kGig, kDelay);
  auto l23a = net_.connect(*r2a_, addr("fb00:23a::1"), *r3_,
                           addr("fb00:23a::2"), kGig, kDelay);
  auto l23b = net_.connect(*r2b_, addr("fb00:23b::1"), *r3_,
                           addr("fb00:23b::2"), kGig, kDelay);
  auto ld = net_.connect(*r3_, addr("fb00:d::1"), *d_, d_addr_, kGig, kDelay);

  // ---- routing (ECMP diamond towards fb00:d::/64) ----
  s_->ns().table(0).add_route(pfx("::/0"), {addr("fb00:5::2"), ls.a_ifindex, 1});

  auto& r1f = r1_->ns().table(0);
  r1f.add_route({pfx("fb00:d::/64"),
                 {{addr("fb00:12a::2"), l12a.a_ifindex, 1},
                  {addr("fb00:12b::2"), l12b.a_ifindex, 1}},
                 nullptr});
  r1f.add_route({pfx("fb00:23a::/64"),
                 {{addr("fb00:12a::2"), l12a.a_ifindex, 1}}, nullptr});
  r1f.add_route({pfx("fb00:23b::/64"),
                 {{addr("fb00:12b::2"), l12b.a_ifindex, 1}}, nullptr});
  r1f.add_route(pfx("fb00:5::/64"), {net::Ipv6Addr{}, ls.b_ifindex, 1});
  r1f.add_route(pfx("fb00:12a::/64"), {net::Ipv6Addr{}, l12a.a_ifindex, 1});
  r1f.add_route(pfx("fb00:12b::/64"), {net::Ipv6Addr{}, l12b.a_ifindex, 1});

  auto& r2af = r2a_->ns().table(0);
  r2af.add_route(pfx("fb00:d::/64"), {addr("fb00:23a::2"), l23a.a_ifindex, 1});
  r2af.add_route(pfx("fb00:23a::/64"), {net::Ipv6Addr{}, l23a.a_ifindex, 1});
  r2af.add_route(pfx("::/0"), {addr("fb00:12a::1"), l12a.b_ifindex, 1});

  auto& r2bf = r2b_->ns().table(0);
  r2bf.add_route(pfx("fb00:d::/64"), {addr("fb00:23b::2"), l23b.a_ifindex, 1});
  r2bf.add_route(pfx("fb00:23b::/64"), {net::Ipv6Addr{}, l23b.a_ifindex, 1});
  r2bf.add_route(pfx("::/0"), {addr("fb00:12b::1"), l12b.b_ifindex, 1});

  auto& r3f = r3_->ns().table(0);
  r3f.add_route(pfx("fb00:d::/64"), {net::Ipv6Addr{}, ld.a_ifindex, 1});
  r3f.add_route({pfx("::/0"),
                 {{addr("fb00:23a::1"), l23a.b_ifindex, 1},
                  {addr("fb00:23b::1"), l23b.b_ifindex, 1}},
                 nullptr});

  d_->ns().table(0).add_route(pfx("::/0"), {addr("fb00:d::1"), ld.b_ifindex, 1});

  // ---- End.OAMP on every router (iface0 address = what ICMP reveals) ----
  enable_oamp(*r1_, addr("fb00:5::2"));
  enable_oamp(*r2a_, addr("fb00:12a::2"));
  enable_oamp(*r2b_, addr("fb00:12b::2"));
  enable_oamp(*r3_, addr("fb00:23a::2"));

  // ---- destination echo responder: answers traceroute probes so the prober
  // knows the target was reached (stands in for ICMP port-unreachable) ----
  static std::vector<std::unique_ptr<apps::AppMux>> d_muxes;
  auto mux = std::make_unique<apps::AppMux>(*d_);
  auto* mux_ptr = mux.get();
  d_muxes.push_back(std::move(mux));
  for (std::uint16_t ttl = 1; ttl <= 32; ++ttl) {
    const std::uint16_t port = static_cast<std::uint16_t>(33434 + ttl);
    mux_ptr->on_udp(port, [this, port](const net::Packet& pkt,
                                       const net::UdpHeader&,
                                       std::span<const std::uint8_t>,
                                       sim::TimeNs) {
      const auto loc = net::locate_transport(pkt);
      if (!loc) return;
      net::Ipv6View ip(const_cast<std::uint8_t*>(pkt.data()) + loc->inner_ip);
      std::uint8_t payload[2];
      store_be16(payload, port);
      apps::send_udp(*d_, d_addr_, ip.src(), port, kEchoReplyPort, payload);
    });
  }
}

void OampLab::enable_oamp(sim::Node& node, const net::Ipv6Addr& iface_addr) {
  auto& bpf = node.ns().bpf();
  const std::uint32_t perf_id =
      ebpf::create_perf_event_array(bpf.maps(), node.name() + "_oamp", 1024);
  auto built = build_end_oamp(perf_id);
  auto load = bpf.load(built.name, ebpf::ProgType::kLwtSeg6Local, built.insns,
                       built.paper_sloc);
  if (!load.ok())
    throw std::runtime_error("end_oamp rejected: " + load.verify.error);

  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  node.ns().seg6local().add(oamp_sid_for(iface_addr), e);

  // Responder daemon: answer the prober with this router's identity and the
  // ECMP nexthop set from the perf event.
  auto* perf_map =
      dynamic_cast<ebpf::PerfEventArrayMap*>(bpf.maps().get(perf_id));
  auto* node_ptr = &node;
  pollers_.push_back(std::make_unique<apps::PerfPoller>(
      node, perf_map->buffer(), sim::kMilli,
      [node_ptr, iface_addr](const ebpf::PerfRecord& rec, sim::TimeNs) {
        if (rec.data.size() < sizeof(OampEvent)) return;
        OampEvent ev;
        std::memcpy(&ev, rec.data.data(), sizeof ev);
        net::Ipv6Addr reply_to;
        std::memcpy(reply_to.bytes().data(), ev.reply_addr, 16);
        const std::uint32_t n = std::min<std::uint32_t>(ev.nexthop_count, 8);
        std::vector<std::uint8_t> payload(16 + 4 + 16 * n);
        std::memcpy(payload.data(), iface_addr.bytes().data(), 16);
        store_be32(payload.data() + 16, n);
        for (std::uint32_t i = 0; i < n; ++i)
          std::memcpy(payload.data() + 20 + 16 * i, ev.nexthops[i], 16);
        apps::send_udp(*node_ptr, iface_addr, reply_to, 33600, ev.reply_port,
                       payload);
      }));
  pollers_.back()->start();
}

void OampLab::disable_oamp(const net::Ipv6Addr& iface_addr) {
  // Removing a SID: re-register with a null program is enough to break it for
  // the fallback test; we instead register End (which drops OAMP probes'
  // semantics). Simplest honest approach: overwrite with a plain End entry.
  const net::Ipv6Addr sid = oamp_sid_for(iface_addr);
  for (sim::Node* n : {r1_, r2a_, r2b_, r3_}) {
    if (n->ns().seg6local().lookup(sid) != nullptr) {
      seg6::Seg6LocalEntry e;
      e.action = seg6::Seg6Action::kEnd;
      n->ns().seg6local().add(sid, e);
    }
  }
}

// ---------------------------------------------------------------------------
// Traceroute
// ---------------------------------------------------------------------------

Traceroute::Traceroute(sim::Node& node, apps::AppMux& mux, Options opts)
    : node_(node), opts_(opts) {
  // Echo replies from the destination: "target reached".
  mux.on_udp(kEchoReplyPort,
             [this](const net::Packet&, const net::UdpHeader&,
                    std::span<const std::uint8_t> payload, sim::TimeNs) {
               if (payload.size() < 2) return;
               const int ttl = load_be16(payload.data()) - 33434;
               reached_target_ = true;
               auto& hop = hops_[ttl];
               hop.ttl = ttl;
               hop.addr = opts_.target;
             });

  // End.OAMP responder answers.
  mux.on_udp(kOampReplyPort,
             [this](const net::Packet&, const net::UdpHeader&,
                    std::span<const std::uint8_t> payload, sim::TimeNs) {
               if (payload.size() < 20) return;
               net::Ipv6Addr router;
               std::memcpy(router.bytes().data(), payload.data(), 16);
               const std::uint32_t n = load_be32(payload.data() + 16);
               auto it = addr_to_ttl_.find(router);
               if (it == addr_to_ttl_.end()) return;
               auto& hop = hops_[it->second];
               hop.oamp_answered = true;
               hop.nexthops.clear();
               for (std::uint32_t i = 0;
                    i < n && payload.size() >= 20 + 16 * (i + 1); ++i) {
                 net::Ipv6Addr nh;
                 std::memcpy(nh.bytes().data(), payload.data() + 20 + 16 * i,
                             16);
                 hop.nexthops.push_back(nh);
               }
             });

  // ICMPv6 time exceeded: the classic mechanism (and the fallback).
  mux.on_raw([this](const net::Packet& pkt, sim::TimeNs) {
    if (pkt.size() < net::kIpv6HeaderSize + 8) return;
    const std::uint8_t* d = pkt.data();
    if (d[6] != net::kProtoIcmp6 || d[40] != 3) return;  // time exceeded only
    // Quoted packet starts at 48: IPv6 header + UDP header.
    const std::size_t q = 48;
    if (pkt.size() < q + net::kIpv6HeaderSize + net::kUdpHeaderSize) return;
    net::Ipv6Addr quoted_dst;
    std::memcpy(quoted_dst.bytes().data(), d + q + 24, 16);
    if (quoted_dst != opts_.target) return;
    const std::uint16_t dport = load_be16(d + q + net::kIpv6HeaderSize + 2);
    const int ttl = dport - 33434;
    if (ttl < 1 || ttl > opts_.max_ttl) return;
    net::Ipv6Addr hop_addr;
    std::memcpy(hop_addr.bytes().data(), d + 8, 16);  // ICMP source
    auto& hop = hops_[ttl];
    hop.ttl = ttl;
    hop.addr = hop_addr;
    addr_to_ttl_[hop_addr] = ttl;
  });
}

void Traceroute::send_ttl_probes(int ttl) {
  for (int flow = 0; flow < opts_.flows; ++flow) {
    net::PacketSpec spec;
    spec.src = opts_.prober_addr;
    spec.dst = opts_.target;
    spec.hop_limit = static_cast<std::uint8_t>(ttl);
    spec.src_port = static_cast<std::uint16_t>(opts_.base_port + 100 + flow);
    spec.dst_port = static_cast<std::uint16_t>(opts_.base_port + ttl);
    spec.payload_size = 12;
    node_.send(net::make_udp_packet(spec));
  }
}

void Traceroute::send_oamp_probe(const net::Ipv6Addr& hop_addr) {
  // SRH probe: segments (travel order) [hop's OAMP SID, target]; reply-to
  // TLV tells the responder daemon where to send the answer.
  std::vector<net::Ipv6Addr> segs = {oamp_sid_for(hop_addr), opts_.target};
  std::vector<std::uint8_t> tlvs = net::build_controller_tlv(
      net::kTlvOamReplyTo, opts_.prober_addr, kOampReplyPort);
  const auto pad = net::build_padn(4);
  tlvs.insert(tlvs.end(), pad.begin(), pad.end());

  net::PacketSpec spec;
  spec.src = opts_.prober_addr;
  spec.dst = opts_.target;
  spec.segments = segs;
  spec.srh_tlvs = tlvs;
  spec.src_port = 33433;
  spec.dst_port = 33433;
  spec.payload_size = 8;
  node_.send(net::make_udp_packet(spec));
}

std::vector<TracerouteHop> Traceroute::run(sim::Network& net) {
  for (int ttl = 1; ttl <= opts_.max_ttl && !reached_target_; ++ttl) {
    send_ttl_probes(ttl);
    net.run_for(opts_.per_ttl_timeout);
  }
  // Query End.OAMP on every discovered hop ("leverages if possible this
  // function at each hop, and otherwise falls back to the legacy ICMP
  // mechanism").
  for (const auto& [addr_key, ttl] : addr_to_ttl_) send_oamp_probe(addr_key);
  net.run_for(4 * opts_.per_ttl_timeout);

  std::vector<TracerouteHop> out;
  for (auto& [ttl, hop] : hops_) out.push_back(hop);
  return out;
}

}  // namespace srv6bpf::usecases
