// Local packet delivery plumbing for hosts: a per-node demultiplexer (AppMux)
// and the counting sinks the benchmarks read their kpps/goodput numbers from.
//
// Both attachment styles of classic socket filtering are modelled here: a
// node-wide ingress filter (raw socket analogue) and per-port filters
// (SO_ATTACH_FILTER on the listening socket). Filters are SocketFilter
// instances — compiled tcpdump expressions or raw classic BPF, translated to
// eBPF and run on the node's engines (apps/socket_filter.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "net/packet.h"
#include "net/transport.h"
#include "sim/latency_tracer.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace srv6bpf::apps {

class SocketFilter;

// Installs itself as the node's local handler and dispatches by transport
// protocol + destination port. At most one AppMux per node.
class AppMux {
 public:
  explicit AppMux(sim::Node& node);
  ~AppMux();  // out of line: SocketFilter is forward-declared here

  using UdpHandler = std::function<void(
      const net::Packet& pkt, const net::UdpHeader& udp,
      std::span<const std::uint8_t> payload, sim::TimeNs now)>;
  using TcpHandler = std::function<void(
      const net::Packet& pkt, const net::TcpHeader& tcp,
      std::span<const std::uint8_t> payload, sim::TimeNs now)>;
  using RawHandler = std::function<void(const net::Packet& pkt,
                                        sim::TimeNs now)>;

  void on_udp(std::uint16_t port, UdpHandler h) { udp_[port] = std::move(h); }
  void on_tcp(std::uint16_t port, TcpHandler h) { tcp_[port] = std::move(h); }
  // Fallback for everything else (ICMPv6, unmatched ports).
  void on_raw(RawHandler h) { raw_ = std::move(h); }

  // Node-wide ingress filter: every locally delivered packet must pass it
  // before any dispatch happens. Null detaches.
  void attach_filter(std::shared_ptr<SocketFilter> f) {
    ingress_filter_ = std::move(f);
  }
  // Per-socket filter: consulted after dispatch resolves to `port`'s UDP
  // handler and before the handler runs (SO_ATTACH_FILTER analogue).
  void attach_udp_filter(std::uint16_t port, std::shared_ptr<SocketFilter> f);

  const std::shared_ptr<SocketFilter>& ingress_filter() const noexcept {
    return ingress_filter_;
  }

  sim::Node& node() noexcept { return node_; }
  std::uint64_t unmatched() const noexcept { return unmatched_; }
  // Packets dropped by the ingress or a per-socket filter.
  std::uint64_t filtered() const noexcept { return filtered_; }

 private:
  void deliver(net::Packet&& pkt, sim::TimeNs now);

  sim::Node& node_;
  std::map<std::uint16_t, UdpHandler> udp_;
  std::map<std::uint16_t, TcpHandler> tcp_;
  RawHandler raw_;
  std::shared_ptr<SocketFilter> ingress_filter_;
  std::map<std::uint16_t, std::shared_ptr<SocketFilter>> udp_filters_;
  std::uint64_t unmatched_ = 0;
  std::uint64_t filtered_ = 0;
};

// Counts UDP datagrams to a port: the S2 "sink" of the paper's setup 1.
// With a filter, only packets the filter accepts are metered (and the
// filter's own accept/drop counters stay readable through filter()).
// Deliveries are timestamped into the RateMeter (so report() can flag
// microbursts from inter-arrival gaps) and, when observers are attached,
// fed to a sim::LatencyTracer (per-flow-class end-to-end latency) and a
// sim::ReconvergenceClock (failure blackhole measurement).
class UdpSink {
 public:
  UdpSink(AppMux& mux, std::uint16_t port);
  UdpSink(AppMux& mux, std::uint16_t port, std::shared_ptr<SocketFilter> f);

  // Observers are borrowed, not owned: they must outlive the sink (or be
  // detached with nullptr first).
  void set_tracer(sim::LatencyTracer* tracer) noexcept { tracer_ = tracer; }
  void set_reconvergence_clock(sim::ReconvergenceClock* clock) noexcept {
    reconv_ = clock;
  }

  std::uint64_t packets() const noexcept { return meter_.packets(); }
  std::uint64_t payload_bytes() const noexcept { return meter_.bytes(); }
  const sim::RateMeter& meter() const noexcept { return meter_; }
  const std::shared_ptr<SocketFilter>& filter() const noexcept {
    return filter_;
  }
  void reset() { meter_.reset(); }

 private:
  void observe(const net::Packet& pkt, std::span<const std::uint8_t> payload,
               sim::TimeNs now);

  sim::RateMeter meter_;
  std::shared_ptr<SocketFilter> filter_;
  sim::LatencyTracer* tracer_ = nullptr;
  sim::ReconvergenceClock* reconv_ = nullptr;
};

}  // namespace srv6bpf::apps
