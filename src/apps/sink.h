// Local packet delivery plumbing for hosts: a per-node demultiplexer (AppMux)
// and the counting sinks the benchmarks read their kpps/goodput numbers from.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "net/packet.h"
#include "net/transport.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace srv6bpf::apps {

// Installs itself as the node's local handler and dispatches by transport
// protocol + destination port. At most one AppMux per node.
class AppMux {
 public:
  explicit AppMux(sim::Node& node);

  using UdpHandler = std::function<void(
      const net::Packet& pkt, const net::UdpHeader& udp,
      std::span<const std::uint8_t> payload, sim::TimeNs now)>;
  using TcpHandler = std::function<void(
      const net::Packet& pkt, const net::TcpHeader& tcp,
      std::span<const std::uint8_t> payload, sim::TimeNs now)>;
  using RawHandler = std::function<void(const net::Packet& pkt,
                                        sim::TimeNs now)>;

  void on_udp(std::uint16_t port, UdpHandler h) { udp_[port] = std::move(h); }
  void on_tcp(std::uint16_t port, TcpHandler h) { tcp_[port] = std::move(h); }
  // Fallback for everything else (ICMPv6, unmatched ports).
  void on_raw(RawHandler h) { raw_ = std::move(h); }

  sim::Node& node() noexcept { return node_; }
  std::uint64_t unmatched() const noexcept { return unmatched_; }

 private:
  void deliver(net::Packet&& pkt, sim::TimeNs now);

  sim::Node& node_;
  std::map<std::uint16_t, UdpHandler> udp_;
  std::map<std::uint16_t, TcpHandler> tcp_;
  RawHandler raw_;
  std::uint64_t unmatched_ = 0;
};

// Counts UDP datagrams to a port: the S2 "sink" of the paper's setup 1.
class UdpSink {
 public:
  UdpSink(AppMux& mux, std::uint16_t port);

  std::uint64_t packets() const noexcept { return meter_.packets(); }
  std::uint64_t payload_bytes() const noexcept { return meter_.bytes(); }
  const sim::RateMeter& meter() const noexcept { return meter_; }
  void reset() { meter_.reset(); }

 private:
  sim::RateMeter meter_;
};

}  // namespace srv6bpf::apps
