#include "apps/socket_filter.h"

#include <algorithm>

#include "cbpf/expr.h"
#include "cbpf/translate.h"

namespace srv6bpf::apps {

SocketFilter::SocketFilter(seg6::Netns& ns, std::string name)
    : ns_(ns), name_(std::move(name)) {
  skb_.protocol = ebpf::kEthPIpv6Be;
  env_.now_ns = [&ns] { return ns.now(); };
  env_.prandom = [&ns] { return ns.prandom(); };
  // Region 0: the ctx struct (writable — the verifier confines program
  // writes to skb->mark). Region 1: packet bytes, retargeted per run();
  // socket-filter packets are read-only.
  env_.regions.push_back(ebpf::MemRegion{
      reinterpret_cast<std::uintptr_t>(&skb_), sizeof skb_, true});
  env_.regions.push_back(ebpf::MemRegion{0, 0, false});
}

bool SocketFilter::attach(std::vector<cbpf::SockFilter> prog,
                          std::string* error) {
  cbpf::TranslateResult tr = cbpf::translate(prog);
  if (!tr.ok) {
    if (error != nullptr) *error = tr.error;
    return false;
  }
  auto load = ns_.bpf().load(name_, ebpf::ProgType::kSocketFilter,
                             std::move(tr.insns), prog.size());
  if (!load.ok()) {
    if (error != nullptr)
      *error = "translated filter rejected by verifier: " + load.verify.error;
    return false;
  }
  classic_ = std::move(prog);
  prog_ = std::move(load.prog);
  return true;
}

std::shared_ptr<SocketFilter> SocketFilter::from_expr(seg6::Netns& ns,
                                                      std::string name,
                                                      std::string_view expr,
                                                      std::string* error) {
  cbpf::CompileResult cr = cbpf::compile(expr);
  if (!cr.ok) {
    if (error != nullptr) *error = cr.error;
    return nullptr;
  }
  std::shared_ptr<SocketFilter> f(new SocketFilter(ns, std::move(name)));
  f->expr_ = std::string(expr);
  if (!f->attach(std::move(cr.insns), error)) return nullptr;
  return f;
}

std::shared_ptr<SocketFilter> SocketFilter::from_cbpf(
    seg6::Netns& ns, std::string name, std::vector<cbpf::SockFilter> prog,
    std::string* error) {
  std::shared_ptr<SocketFilter> f(new SocketFilter(ns, std::move(name)));
  if (!f->attach(std::move(prog), error)) return nullptr;
  return f;
}

std::uint32_t SocketFilter::run(const net::Packet& pkt) {
  skb_.data = reinterpret_cast<std::uint64_t>(pkt.data());
  skb_.data_end = skb_.data + pkt.size();
  skb_.len = static_cast<std::uint32_t>(pkt.size());
  skb_.mark = pkt.mark;
  skb_.ingress_ifindex = pkt.ingress_ifindex;
  skb_.tstamp_ns = pkt.rx_tstamp_ns;
  env_.regions[1] = ebpf::MemRegion{
      reinterpret_cast<std::uintptr_t>(pkt.data()), pkt.size(), false};
  env_.cpu_id = ns_.current_cpu;
  const ebpf::ExecResult res = ns_.bpf().run(
      *prog_, env_, reinterpret_cast<std::uint64_t>(&skb_));
  return res.aborted ? 0 : static_cast<std::uint32_t>(res.ret);
}

bool SocketFilter::accept(const net::Packet& pkt) {
  const std::uint32_t r = run(pkt);
  if (r == 0) {
    ++dropped_;
    return false;
  }
  ++accepted_;
  bytes_accepted_ += std::min<std::uint64_t>(r, pkt.size());
  return true;
}

}  // namespace srv6bpf::apps
