// iperf3-style UDP flow: fixed payload size at a target bitrate, with a
// matching receiver that reports goodput (Figure 4's workload).
#pragma once

#include <cstdint>

#include "apps/sink.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace srv6bpf::apps {

class UdpFlowSender {
 public:
  struct Config {
    net::Ipv6Addr src;
    net::Ipv6Addr dst;
    std::uint16_t src_port = 5201;
    std::uint16_t dst_port = 5201;
    std::size_t payload_size = 1400;
    double rate_bps = 1e9;  // offered goodput rate (payload bits/sec)
    sim::TimeNs start_at = 0;
    sim::TimeNs duration = sim::kSecond;
  };

  UdpFlowSender(sim::Node& node, Config cfg);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  void tick();

  sim::Node& node_;
  Config cfg_;
  net::Packet t_template_;
  sim::TimeNs interval_ns_;
  sim::TimeNs stop_at_ = 0;
  sim::TimeNs next_send_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace srv6bpf::apps
