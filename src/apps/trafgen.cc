#include "apps/trafgen.h"

#include "util/byteorder.h"

namespace srv6bpf::apps {

TrafGen::TrafGen(sim::Node& node, Config cfg)
    : node_(node), cfg_(cfg), t_template_(net::make_udp_packet(cfg.spec)),
      interval_ns_(static_cast<sim::TimeNs>(1e9 / cfg.pps)) {
  if (interval_ns_ == 0) interval_ns_ = 1;
}

void TrafGen::start() {
  stop_at_ = cfg_.start_at + cfg_.duration;
  next_send_ = cfg_.start_at;
  node_.loop().schedule_at(cfg_.start_at, [this] { tick(); });
}

void TrafGen::tick() {
  const sim::TimeNs now = node_.loop().now();
  if (now >= stop_at_) return;

  net::Packet pkt = t_template_;  // copy the prebuilt frame
  pkt.seq = static_cast<std::uint32_t>(sent_);
  if (cfg_.src_port_spread > 1) {
    // Rotate the UDP source port in place (offset depends on SRH presence).
    const auto loc = net::locate_transport(pkt);
    if (loc && loc->proto == net::kProtoUdp) {
      const std::uint16_t port = static_cast<std::uint16_t>(
          cfg_.spec.src_port + sent_ % cfg_.src_port_spread);
      store_be16(pkt.data() + loc->offset, port);
    }
  }
  node_.send(std::move(pkt));
  ++sent_;

  next_send_ += interval_ns_;
  node_.loop().schedule_at(next_send_, [this] { tick(); });
}

}  // namespace srv6bpf::apps
