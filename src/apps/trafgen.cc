#include "apps/trafgen.h"

#include <algorithm>

#include "net/buffer_pool.h"
#include "util/byteorder.h"

namespace srv6bpf::apps {

TrafGen::TrafGen(sim::Node& node, Config cfg)
    : node_(node), cfg_(cfg), t_template_(net::make_udp_packet(cfg.spec)),
      interval_ns_(static_cast<sim::TimeNs>(1e9 / cfg.pps)),
      dst_site_base_(load_be16(t_template_.data() + 24 + 4)) {
  if (interval_ns_ == 0) interval_ns_ = 1;
  // One header-chain walk at construction; every stamped (or rebuilt —
  // same spec, same layout) packet reuses these offsets.
  if (const auto loc = net::locate_transport(t_template_);
      loc && loc->proto == net::kProtoUdp) {
    udp_off_ = loc->offset;
    has_udp_ = true;
  }
}

void TrafGen::start() {
  stop_at_ = cfg_.start_at + cfg_.duration;
  next_send_ = cfg_.start_at;
  node_.loop().schedule_at(cfg_.start_at, [this] { tick(); });
}

namespace {

// RFC 1624 incremental checksum update for one rewritten be16 word:
// HC' = ~(~HC + ~m + m'). `ck` points at the stored transport checksum.
void fixup_checksum(std::uint8_t* ck, std::uint16_t old_word,
                    std::uint16_t new_word) {
  std::uint32_t sum = static_cast<std::uint16_t>(~load_be16(ck));
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  std::uint16_t out = static_cast<std::uint16_t>(~sum);
  if (out == 0) out = 0xffff;  // UDP: zero means "no checksum"
  store_be16(ck, out);
}

}  // namespace

net::Packet TrafGen::next_packet() {
  // Stamp: pooled-buffer copy of the prebuilt frame (one freelist pop plus
  // one memcpy — no heap once the pool is warm). The baseline path
  // re-serialises the whole frame from the spec instead.
  net::Packet pkt =
      cfg_.use_template ? t_template_ : net::make_udp_packet(cfg_.spec);
  pkt.seq = static_cast<std::uint32_t>(sent_);
  if (cfg_.flow_label_spread > 1) {
    // Rotate the outer flow label in place (bytes 1-3 of the fixed header;
    // not covered by the transport pseudo-header checksum).
    const std::uint32_t fl =
        (cfg_.spec.flow_label + sent_ % cfg_.flow_label_spread) & 0xfffffu;
    std::uint8_t* p = pkt.data();
    p[1] = static_cast<std::uint8_t>((p[1] & 0xf0) | ((fl >> 16) & 0x0f));
    p[2] = static_cast<std::uint8_t>((fl >> 8) & 0xff);
    p[3] = static_cast<std::uint8_t>(fl & 0xff);
  }
  if (cfg_.dst_spread > 1) {
    // Rotate a site counter through dst bytes 4-5 (offset 24 + 4 in the
    // fixed header): each value lands in a different /48.
    std::uint8_t* w = pkt.data() + 24 + 4;
    const std::uint16_t old_word = load_be16(w);
    const std::uint16_t new_word = static_cast<std::uint16_t>(
        dst_site_base_ + sent_ % cfg_.dst_spread);
    store_be16(w, new_word);
    if (cfg_.spec.segments.empty() && cfg_.spec.fill_checksum && has_udp_) {
      // The rewritten dst is the transport final destination, so it is in
      // the pseudo-header: fix the UDP checksum incrementally.
      fixup_checksum(pkt.data() + udp_off_ + 6, old_word, new_word);
    }
  }
  if (cfg_.src_port_spread > 1 && has_udp_) {
    // Rotate the UDP source port in place (cached offset; it depends only
    // on SRH presence, which the template fixes).
    std::uint8_t* pp = pkt.data() + udp_off_;
    const std::uint16_t old_port = load_be16(pp);
    const std::uint16_t port = static_cast<std::uint16_t>(
        cfg_.spec.src_port + sent_ % cfg_.src_port_spread);
    store_be16(pp, port);
    // The port is inside the checksummed UDP header (SRH or not).
    if (cfg_.spec.fill_checksum)
      fixup_checksum(pp + 6, old_port, port);
  }
  ++sent_;
  return pkt;
}

void TrafGen::tick() {
  const sim::TimeNs now = node_.loop().now();
  if (now >= stop_at_) return;

  // BufferPool hard cap: when the pool refuses admission the packet that was
  // due is dropped at the source (counted here and on the node), never
  // allocated — a mempool running dry refuses skb allocation the same way.
  auto admit = [this, now] {
    if (net::BufferPool::try_admit()) return true;
    ++drops_no_buffer_;
    node_.note_nic_drop(sim::DropReason::kNoBuffer, now);
    return false;
  };
  const std::size_t burst =
      std::min(cfg_.burst > 0 ? cfg_.burst : 1, net::kMaxBurstPackets);
  if (burst == 1) {
    if (admit()) node_.send(next_packet());
    next_send_ += interval_ns_;
  } else {
    // Emit a whole burst at this tick and stretch the tick interval so the
    // average offered rate stays cfg_.pps.
    net::PacketBurst b;
    for (std::size_t k = 0; k < burst && next_send_ < stop_at_; ++k) {
      if (admit()) b.push(next_packet());
      next_send_ += interval_ns_;
    }
    if (!b.empty()) node_.send_burst(std::move(b));
  }
  node_.loop().schedule_at(next_send_, [this] { tick(); });
}

}  // namespace srv6bpf::apps
