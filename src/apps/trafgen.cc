#include "apps/trafgen.h"

#include <algorithm>

#include "util/byteorder.h"

namespace srv6bpf::apps {

TrafGen::TrafGen(sim::Node& node, Config cfg)
    : node_(node), cfg_(cfg), t_template_(net::make_udp_packet(cfg.spec)),
      interval_ns_(static_cast<sim::TimeNs>(1e9 / cfg.pps)) {
  if (interval_ns_ == 0) interval_ns_ = 1;
}

void TrafGen::start() {
  stop_at_ = cfg_.start_at + cfg_.duration;
  next_send_ = cfg_.start_at;
  node_.loop().schedule_at(cfg_.start_at, [this] { tick(); });
}

net::Packet TrafGen::next_packet() {
  net::Packet pkt = t_template_;  // copy the prebuilt frame
  pkt.seq = static_cast<std::uint32_t>(sent_);
  if (cfg_.flow_label_spread > 1) {
    // Rotate the outer flow label in place (bytes 1-3 of the fixed header;
    // not covered by the transport pseudo-header checksum).
    const std::uint32_t fl =
        (cfg_.spec.flow_label + sent_ % cfg_.flow_label_spread) & 0xfffffu;
    std::uint8_t* p = pkt.data();
    p[1] = static_cast<std::uint8_t>((p[1] & 0xf0) | ((fl >> 16) & 0x0f));
    p[2] = static_cast<std::uint8_t>((fl >> 8) & 0xff);
    p[3] = static_cast<std::uint8_t>(fl & 0xff);
  }
  if (cfg_.src_port_spread > 1) {
    // Rotate the UDP source port in place (offset depends on SRH presence).
    const auto loc = net::locate_transport(pkt);
    if (loc && loc->proto == net::kProtoUdp) {
      const std::uint16_t port = static_cast<std::uint16_t>(
          cfg_.spec.src_port + sent_ % cfg_.src_port_spread);
      store_be16(pkt.data() + loc->offset, port);
    }
  }
  ++sent_;
  return pkt;
}

void TrafGen::tick() {
  const sim::TimeNs now = node_.loop().now();
  if (now >= stop_at_) return;

  const std::size_t burst =
      std::min(cfg_.burst > 0 ? cfg_.burst : 1, net::kMaxBurstPackets);
  if (burst == 1) {
    node_.send(next_packet());
    next_send_ += interval_ns_;
  } else {
    // Emit a whole burst at this tick and stretch the tick interval so the
    // average offered rate stays cfg_.pps.
    net::PacketBurst b;
    for (std::size_t k = 0; k < burst && next_send_ < stop_at_; ++k) {
      b.push(next_packet());
      next_send_ += interval_ns_;
    }
    node_.send_burst(std::move(b));
  }
  node_.loop().schedule_at(next_send_, [this] { tick(); });
}

}  // namespace srv6bpf::apps
