#include "apps/daemons.h"

#include <cstring>

#include "net/checksum.h"
#include "net/transport.h"
#include "util/byteorder.h"

namespace srv6bpf::apps {

void send_udp(sim::Node& node, const net::Ipv6Addr& src,
              const net::Ipv6Addr& dst, std::uint16_t sport,
              std::uint16_t dport, std::span<const std::uint8_t> payload) {
  const std::size_t udp_len = net::kUdpHeaderSize + payload.size();
  net::Packet pkt;
  std::uint8_t* p = pkt.push_front(net::kIpv6HeaderSize + udp_len);

  net::Ipv6Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.next_header = net::kProtoUdp;
  ip.hop_limit = 64;
  ip.payload_length = static_cast<std::uint16_t>(udp_len);
  ip.write(p);

  net::UdpHeader uh;
  uh.src_port = sport;
  uh.dst_port = dport;
  uh.length = static_cast<std::uint16_t>(udp_len);
  uh.checksum = 0;
  uh.write(p + net::kIpv6HeaderSize);
  if (!payload.empty())
    std::memcpy(p + net::kIpv6HeaderSize + net::kUdpHeaderSize, payload.data(),
                payload.size());

  const std::uint16_t csum = net::transport_checksum(
      src, dst, net::kProtoUdp, {p + net::kIpv6HeaderSize, udp_len});
  store_be16(p + net::kIpv6HeaderSize + 6, csum);
  node.send(std::move(pkt));
}

}  // namespace srv6bpf::apps
