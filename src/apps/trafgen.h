// Constant-rate UDP packet generator — the trafgen/pktgen stand-in used to
// offer 3 Mpps of 64-byte SRv6 traffic in §3.2.
//
// Packets are stamped from a per-flow template built once at construction:
// each emission is one pooled-buffer copy of the prebuilt frame plus in-place
// patches of the varying fields (flow label, destination site, source port,
// each with the RFC 1624 incremental checksum fixup where the field is
// covered), at cached byte offsets — the header chain is walked once, not
// per packet. That is how trafgen/pktgen themselves reach line rate, and it
// is what keeps the generator inside the simulator's zero-allocation steady
// state. Config::use_template = false switches to rebuilding every packet
// from the PacketSpec (the pre-pool behaviour), kept as the honest baseline
// for bench_hotpath; both paths emit bit-identical packets.
#pragma once

#include <cstdint>

#include "net/burst.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace srv6bpf::apps {

class TrafGen {
 public:
  struct Config {
    net::PacketSpec spec;
    double pps = 1000.0;
    sim::TimeNs start_at = 0;
    sim::TimeNs duration = sim::kSecond;
    // Vary the UDP source port across packets so ECMP/flow hashing sees many
    // flows (trafgen's port randomisation).
    std::uint16_t src_port_spread = 1;
    // Vary the outer IPv6 flow label across packets (pktgen's multi-flow
    // mode). The RSS steering tuple of the multi-core Node is
    // (src, dst, flow label), so this is the knob that spreads one
    // generator's traffic over a router's CPU contexts. Packets cycle
    // labels spec.flow_label .. spec.flow_label + spread - 1.
    std::uint32_t flow_label_spread = 1;
    // Vary the outer IPv6 *destination* across packets: a 16-bit counter is
    // cycled through address bytes 4-5 (the third group), so consecutive
    // packets hit `dst_spread` different /48 sites — multi-destination
    // traffic that defeats any one-entry route cache and drives the router's
    // FIB trie on every burst group (bench/lpm_sweep's end-to-end knob).
    // When the packet carries no SRH the UDP checksum is incrementally
    // fixed up (the final destination is in the pseudo-header); with an SRH
    // the outer dst is the first segment and needs no fixup — but rotating
    // it would dodge the SID table, so combine the two with care.
    std::uint32_t dst_spread = 1;
    // Packets emitted per tick through Node::send_burst (capped at
    // net::kMaxBurstPackets). 1 = one event per packet, exact pps spacing;
    // >1 trades intra-burst arrival spacing (packets leave back-to-back at
    // the tick) for far fewer simulator events — the burst_sweep benchmark's
    // source-side knob. The average offered rate is preserved.
    std::size_t burst = 1;
    // Template stamping (default): copy the prebuilt frame into a pooled
    // buffer and patch the varying fields at cached offsets. false =
    // rebuild every packet from `spec` via make_udp_packet (fresh buffer,
    // SRH re-serialised, checksum recomputed) — the allocation-per-packet
    // baseline bench_hotpath measures the pooled path against. Emitted
    // bytes are identical either way (tests/alloc_test.cc asserts it).
    bool use_template = true;
  };

  TrafGen(sim::Node& node, Config cfg);

  void start();
  std::uint64_t sent() const noexcept { return sent_; }
  // Emissions refused by the BufferPool hard cap (net::BufferPool::
  // set_max_buffers): the packet was due but no buffer could be admitted, so
  // it was dropped at the source — also charged to the node as
  // drops_no_buffer. attempted() is what the conservation ledger
  // (sim::InvariantAuditor) counts as offered load.
  std::uint64_t drops_no_buffer() const noexcept { return drops_no_buffer_; }
  std::uint64_t attempted() const noexcept { return sent_ + drops_no_buffer_; }

 private:
  void tick();
  net::Packet next_packet();

  sim::Node& node_;
  Config cfg_;
  net::Packet t_template_;
  sim::TimeNs interval_ns_;
  std::uint16_t dst_site_base_ = 0;  // template dst bytes 4-5 (dst_spread)
  // Transport location cached off the template (the layout is fixed per
  // flow): spread patches fix checksums at these offsets without re-walking
  // the header chain per packet.
  std::size_t udp_off_ = 0;
  bool has_udp_ = false;
  sim::TimeNs stop_at_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t drops_no_buffer_ = 0;
  sim::TimeNs next_send_ = 0;
};

}  // namespace srv6bpf::apps
