// User-space daemons: the perf-event consumers of the paper's use cases.
//
// The paper's End.DM daemon is 100 lines of Python on bcc, continuously
// polling the perf ring and relaying measurements to a controller over UDP
// (§4.1). PerfPoller is the generic polling loop; the use-case modules wire
// record-specific parsing on top.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "ebpf/perf_event.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace srv6bpf::apps {

class PerfPoller {
 public:
  using Handler =
      std::function<void(const ebpf::PerfRecord& rec, sim::TimeNs now)>;

  PerfPoller(sim::Node& node, ebpf::PerfEventBuffer& buffer,
             sim::TimeNs poll_interval, Handler handler)
      : node_(node), buffer_(buffer), interval_(poll_interval),
        handler_(std::move(handler)) {}

  void start() { node_.loop().schedule(interval_, [this] { poll(); }); }
  void stop() { stopped_ = true; }
  std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  void poll() {
    if (stopped_) return;
    while (auto rec = buffer_.poll()) {
      ++consumed_;
      handler_(*rec, node_.loop().now());
    }
    node_.loop().schedule(interval_, [this] { poll(); });
  }

  sim::Node& node_;
  ebpf::PerfEventBuffer& buffer_;
  sim::TimeNs interval_;
  Handler handler_;
  bool stopped_ = false;
  std::uint64_t consumed_ = 0;
};

// Fire-and-forget UDP datagram from a node (daemon -> controller traffic).
void send_udp(sim::Node& node, const net::Ipv6Addr& src,
              const net::Ipv6Addr& dst, std::uint16_t sport,
              std::uint16_t dport, std::span<const std::uint8_t> payload);

}  // namespace srv6bpf::apps
