#include "apps/tcp.h"

#include <algorithm>
#include <cstring>

#include "net/checksum.h"
#include "util/byteorder.h"

namespace srv6bpf::apps {

namespace {
// Sequence-space comparison helpers (wrap-safe).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
}  // namespace

net::Packet make_tcp_segment(const net::Ipv6Addr& src,
                             const net::Ipv6Addr& dst, std::uint16_t sport,
                             std::uint16_t dport, std::uint32_t seq,
                             std::uint32_t ack, std::uint8_t flags,
                             std::size_t payload_len) {
  const std::size_t total =
      net::kIpv6HeaderSize + net::kTcpHeaderSize + payload_len;
  net::Packet pkt;
  std::uint8_t* p = pkt.push_front(total);

  net::Ipv6Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.next_header = net::kProtoTcp;
  ip.hop_limit = 64;
  ip.payload_length =
      static_cast<std::uint16_t>(net::kTcpHeaderSize + payload_len);
  ip.write(p);

  net::TcpHeader th;
  th.src_port = sport;
  th.dst_port = dport;
  th.seq = seq;
  th.ack = ack;
  th.flags = flags;
  th.window = 0xffff;
  th.checksum = 0;
  th.write(p + net::kIpv6HeaderSize);
  if (payload_len > 0)
    std::memset(p + net::kIpv6HeaderSize + net::kTcpHeaderSize, 0x42,
                payload_len);

  const std::uint16_t csum = net::transport_checksum(
      src, dst, net::kProtoTcp,
      {p + net::kIpv6HeaderSize, net::kTcpHeaderSize + payload_len});
  store_be16(p + net::kIpv6HeaderSize + 16, csum);
  return pkt;
}

// ---- TcpSender ---------------------------------------------------------------

TcpSender::TcpSender(sim::Node& node, AppMux& mux, Config cfg)
    : node_(node), cfg_(cfg) {
  cwnd_ = cfg_.init_cwnd_segs * cfg_.mss;
  ssthresh_ = cfg_.init_ssthresh;
  mux.on_tcp(cfg_.src_port,
             [this](const net::Packet&, const net::TcpHeader& h,
                    std::span<const std::uint8_t>, sim::TimeNs now) {
               if (h.flags & net::kTcpAck) on_ack(h, now);
             });
}

void TcpSender::start() {
  stop_at_ = cfg_.start_at + cfg_.duration;
  node_.loop().schedule_at(cfg_.start_at, [this] {
    try_send(node_.loop().now());
    arm_rto(node_.loop().now());
  });
}

void TcpSender::send_segment(std::uint32_t seq, bool is_rtx, sim::TimeNs now) {
  net::Packet pkt = make_tcp_segment(cfg_.src, cfg_.dst, cfg_.src_port,
                                     cfg_.dst_port, seq, 0, net::kTcpAck,
                                     cfg_.mss);
  ++segs_sent_;
  if (is_rtx) {
    ++retransmits_;
    rtt_samples_.erase(seq + cfg_.mss);  // Karn: never sample retransmits
  } else {
    rtt_samples_[seq + cfg_.mss] = now;
  }
  node_.send(std::move(pkt));
}

void TcpSender::try_send(sim::TimeNs now) {
  if (now >= stop_at_) return;
  if (cwnd_ > cfg_.max_cwnd) cwnd_ = cfg_.max_cwnd;
  while (snd_nxt_ - snd_una_ + cfg_.mss <= cwnd_) {
    send_segment(snd_nxt_, false, now);
    snd_nxt_ += cfg_.mss;
  }
}

void TcpSender::update_rtt(sim::TimeNs sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const auto diff = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + diff) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
}

void TcpSender::arm_rto(sim::TimeNs now) {
  const std::uint64_t epoch = ++rto_epoch_;
  const sim::TimeNs deadline = now + (rto_ << rto_backoff_);
  node_.loop().schedule_at(deadline, [this, epoch] {
    if (epoch == rto_epoch_) on_rto_fire();
  });
}

void TcpSender::on_rto_fire() {
  const sim::TimeNs now = node_.loop().now();
  if (now >= stop_at_) return;
  if (snd_una_ == snd_nxt_) {  // idle: nothing outstanding
    try_send(now);
    arm_rto(now);
    return;
  }
  ++timeouts_;
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  in_recovery_ = false;
  dupacks_ = 0;
  rto_backoff_ = std::min(rto_backoff_ + 1, 6);
  rtt_samples_.clear();
  send_segment(snd_una_, true, now);
  // Go-back-N: everything beyond the retransmitted segment is resent as
  // slow start reopens the window (classic Reno RTO recovery; the receiver
  // discards duplicates). Without this, scattered losses cost one RTO each.
  snd_nxt_ = snd_una_ + cfg_.mss;
  arm_rto(now);
}

void TcpSender::on_ack(const net::TcpHeader& h, sim::TimeNs now) {
  const std::uint32_t ack = h.ack;
  if (now >= stop_at_) return;

  if (seq_lt(snd_una_, ack)) {
    // ---- New data acknowledged ----
    // After a go-back-N RTO rewind the receiver may ack beyond snd_nxt_
    // (its reassembly queue already held the data); fold that in.
    if (seq_lt(snd_nxt_, ack)) snd_nxt_ = ack;
    const std::uint32_t acked = ack - snd_una_;
    snd_una_ = ack;
    rto_backoff_ = 0;

    auto it = rtt_samples_.find(ack);
    if (it != rtt_samples_.end()) {
      update_rtt(now - it->second);
      rtt_samples_.erase(rtt_samples_.begin(), std::next(it));
    } else {
      rtt_samples_.erase(rtt_samples_.begin(),
                         rtt_samples_.lower_bound(ack + 1));
    }

    if (in_recovery_) {
      if (seq_le(recover_, ack)) {
        // Full ACK: leave recovery (NewReno).
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dupacks_ = 0;
        if (rtx_in_recovery_ <= 2 && cfg_.max_dupack_threshold > 3) {
          // A recovery that needed only the one fast retransmit was almost
          // certainly triggered by reordering, not loss: widen the dupack
          // threshold (Linux tcp_reordering-style, bounded) and undo half of
          // the window reduction (Eifel response, RFC 4015-flavoured).
          // Disabled when max_dupack_threshold == 3 (classic NewReno, the
          // §4.2 configuration).
          dupthresh_ = std::min(cfg_.max_dupack_threshold, dupthresh_ + 2);
          cwnd_ = std::max(cwnd_, (cwnd_prior_ + ssthresh_) / 2);
        }
      } else {
        // Partial ACK. In genuine multi-loss recovery these arrive once per
        // RTT (each retransmission must be acked first); under reordering
        // they arrive at line rate as the displaced originals land. Throttle
        // retransmissions to one per half-RTT — faithful for real loss,
        // avoids a go-back-N spray for reordering.
        const sim::TimeNs gap = std::max<sim::TimeNs>(srtt_ / 2, sim::kMilli);
        if (now - last_partial_rtx_ >= gap) {
          last_partial_rtx_ = now;
          send_segment(snd_una_, true, now);
          ++fast_rtx_;
          ++rtx_in_recovery_;
        }
        cwnd_ = cwnd_ > acked ? cwnd_ - acked + cfg_.mss : cfg_.mss;
      }
    } else {
      // A hole that filled in before dupthresh fired is reordering, not
      // loss: widen the window (bounded), like Linux's tcp_reordering.
      if (dupacks_ > 0)
        dupthresh_ = std::min(cfg_.max_dupack_threshold,
                              std::max(dupthresh_, dupacks_ + 1));
      dupacks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min(acked, cfg_.mss);  // slow start
      } else {
        cwnd_ += std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   static_cast<std::uint64_t>(cfg_.mss) * cfg_.mss / cwnd_));
      }
    }
    arm_rto(now);
    try_send(now);
    return;
  }

  if (ack == snd_una_ && snd_nxt_ != snd_una_) {
    // ---- Duplicate ACK ----
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == dupthresh_) {
      in_recovery_ = true;
      recover_ = snd_nxt_;
      rtx_in_recovery_ = 1;
      cwnd_prior_ = cwnd_;
      const std::uint32_t flight = snd_nxt_ - snd_una_;
      ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
      cwnd_ = ssthresh_ + 3 * cfg_.mss;
      send_segment(snd_una_, true, now);
      ++fast_rtx_;
      arm_rto(now);
    } else if (in_recovery_) {
      cwnd_ += cfg_.mss;  // window inflation per extra dupack
      try_send(now);
    }
  }
}

// ---- TcpReceiver ---------------------------------------------------------------

TcpReceiver::TcpReceiver(sim::Node& node, AppMux& mux, Config cfg)
    : node_(node), cfg_(cfg) {
  mux.on_tcp(cfg_.port,
             [this](const net::Packet& pkt, const net::TcpHeader& h,
                    std::span<const std::uint8_t> payload, sim::TimeNs now) {
               on_segment(pkt, h, payload, now);
             });
}

void TcpReceiver::on_segment(const net::Packet& pkt, const net::TcpHeader& h,
                             std::span<const std::uint8_t> payload,
                             sim::TimeNs /*now*/) {
  const auto loc = net::locate_transport(pkt);
  const net::Ipv6Addr peer =
      loc ? net::Ipv6View(const_cast<std::uint8_t*>(pkt.data()) + loc->inner_ip)
                .src()
          : net::Ipv6Addr{};

  if (!payload.empty()) {
    const std::uint32_t start = h.seq;
    const std::uint32_t end = start + static_cast<std::uint32_t>(payload.size());
    if (seq_le(end, rcv_nxt_)) {
      // Entirely old: pure duplicate, just re-ACK.
    } else if (seq_le(start, rcv_nxt_)) {
      // Extends the in-order prefix.
      delivered_ += end - rcv_nxt_;
      rcv_nxt_ = end;
      // Absorb any contiguous out-of-order data.
      auto it = ooo_.begin();
      while (it != ooo_.end() && seq_le(it->first, rcv_nxt_)) {
        if (seq_lt(rcv_nxt_, it->second)) {
          delivered_ += it->second - rcv_nxt_;
          rcv_nxt_ = it->second;
        }
        it = ooo_.erase(it);
      }
    } else {
      // Hole: stash.
      ++ooo_segments_;
      auto [it, inserted] = ooo_.emplace(start, end);
      if (!inserted && seq_lt(it->second, end)) it->second = end;
    }
  }
  send_ack(peer, h.src_port);
}

void TcpReceiver::send_ack(const net::Ipv6Addr& to, std::uint16_t to_port) {
  node_.send(make_tcp_segment(cfg_.addr, to, cfg_.port, to_port, 0, rcv_nxt_,
                              net::kTcpAck, 0));
}

}  // namespace srv6bpf::apps
