#include "apps/sink.h"

namespace srv6bpf::apps {

AppMux::AppMux(sim::Node& node) : node_(node) {
  node_.set_local_handler([this](net::Packet&& pkt, sim::TimeNs now) {
    deliver(std::move(pkt), now);
  });
}

void AppMux::deliver(net::Packet&& pkt, sim::TimeNs now) {
  const auto loc = net::locate_transport(pkt);
  if (loc) {
    const std::span<const std::uint8_t> from_transport{
        pkt.data() + loc->offset, pkt.size() - loc->offset};
    if (loc->proto == net::kProtoUdp) {
      if (auto udp = net::UdpHeader::parse(from_transport)) {
        auto it = udp_.find(udp->dst_port);
        if (it != udp_.end()) {
          it->second(pkt, *udp,
                     from_transport.subspan(net::kUdpHeaderSize), now);
          return;
        }
      }
    } else if (loc->proto == net::kProtoTcp) {
      if (auto tcp = net::TcpHeader::parse(from_transport)) {
        auto it = tcp_.find(tcp->dst_port);
        if (it != tcp_.end()) {
          it->second(pkt, *tcp,
                     from_transport.subspan(net::kTcpHeaderSize), now);
          return;
        }
      }
    }
  }
  if (raw_) {
    raw_(pkt, now);
    return;
  }
  ++unmatched_;
}

UdpSink::UdpSink(AppMux& mux, std::uint16_t port) {
  mux.on_udp(port, [this](const net::Packet&, const net::UdpHeader&,
                          std::span<const std::uint8_t> payload,
                          sim::TimeNs) { meter_.record(payload.size()); });
}

}  // namespace srv6bpf::apps
