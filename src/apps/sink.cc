#include "apps/sink.h"

#include "apps/socket_filter.h"

namespace srv6bpf::apps {

AppMux::AppMux(sim::Node& node) : node_(node) {
  node_.set_local_handler([this](net::Packet&& pkt, sim::TimeNs now) {
    deliver(std::move(pkt), now);
  });
}

AppMux::~AppMux() = default;

void AppMux::attach_udp_filter(std::uint16_t port,
                               std::shared_ptr<SocketFilter> f) {
  if (f == nullptr)
    udp_filters_.erase(port);
  else
    udp_filters_[port] = std::move(f);
}

void AppMux::deliver(net::Packet&& pkt, sim::TimeNs now) {
  if (ingress_filter_ != nullptr && !ingress_filter_->accept(pkt)) {
    ++filtered_;
    return;
  }
  const auto loc = net::locate_transport(pkt);
  if (loc) {
    const std::span<const std::uint8_t> from_transport{
        pkt.data() + loc->offset, pkt.size() - loc->offset};
    if (loc->proto == net::kProtoUdp) {
      if (auto udp = net::UdpHeader::parse(from_transport)) {
        auto it = udp_.find(udp->dst_port);
        if (it != udp_.end()) {
          if (auto fit = udp_filters_.find(udp->dst_port);
              fit != udp_filters_.end() && !fit->second->accept(pkt)) {
            ++filtered_;
            return;
          }
          it->second(pkt, *udp,
                     from_transport.subspan(net::kUdpHeaderSize), now);
          return;
        }
      }
    } else if (loc->proto == net::kProtoTcp) {
      if (auto tcp = net::TcpHeader::parse(from_transport)) {
        auto it = tcp_.find(tcp->dst_port);
        if (it != tcp_.end()) {
          it->second(pkt, *tcp,
                     from_transport.subspan(net::kTcpHeaderSize), now);
          return;
        }
      }
    }
  }
  if (raw_) {
    raw_(pkt, now);
    return;
  }
  ++unmatched_;
}

UdpSink::UdpSink(AppMux& mux, std::uint16_t port) {
  mux.on_udp(port, [this](const net::Packet& pkt, const net::UdpHeader&,
                          std::span<const std::uint8_t> payload,
                          sim::TimeNs now) { observe(pkt, payload, now); });
}

UdpSink::UdpSink(AppMux& mux, std::uint16_t port,
                 std::shared_ptr<SocketFilter> f)
    : filter_(std::move(f)) {
  mux.on_udp(port, [this](const net::Packet& pkt, const net::UdpHeader&,
                          std::span<const std::uint8_t> payload,
                          sim::TimeNs now) {
    if (filter_ != nullptr && !filter_->accept(pkt)) return;
    observe(pkt, payload, now);
  });
}

void UdpSink::observe(const net::Packet& pkt,
                      std::span<const std::uint8_t> payload, sim::TimeNs now) {
  meter_.record(payload.size(), now);
  if (tracer_ != nullptr) tracer_->record(pkt, now);
  if (reconv_ != nullptr) reconv_->note_delivery(now);
}

}  // namespace srv6bpf::apps
