// A compact NewReno TCP for the hybrid-access experiment (§4.2).
//
// The paper's observation — per-packet Weighted Round-Robin across links with
// 30 ms and 5 ms RTTs collapses TCP goodput to a few Mbps — is a property of
// duplicate-ACK-based loss recovery misreading reordering as loss. This
// implementation models exactly the machinery that matters:
//   * slow start / congestion avoidance (AIMD),
//   * three-dupack fast retransmit + NewReno fast recovery (partial ACKs),
//   * RTO with exponential backoff and Karn's rule for RTT samples,
//   * a cumulative-ACK receiver with an out-of-order reassembly queue.
// No SACK — like the GRE/nttcp setups the paper compares against.
#pragma once

#include <cstdint>
#include <map>

#include "apps/sink.h"
#include "net/packet.h"
#include "net/transport.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace srv6bpf::apps {

// Bulk-data sender: an infinite stream (nttcp-style) towards dst:port.
class TcpSender {
 public:
  struct Config {
    net::Ipv6Addr src;
    net::Ipv6Addr dst;
    std::uint16_t src_port = 40000;
    std::uint16_t dst_port = 5001;
    std::uint32_t mss = 1400;           // payload bytes per segment
    std::uint32_t init_cwnd_segs = 10;
    // Initial ssthresh (a receiver-window stand-in) and an absolute window
    // cap; both bound the slow-start overshoot, whose loss bursts NewReno —
    // without SACK — repairs only one hole per RTT.
    std::uint32_t init_ssthresh = 256 * 1024;
    std::uint32_t max_cwnd = 384 * 1024;  // a realistic advertised rwnd
    sim::TimeNs start_at = 0;
    sim::TimeNs duration = 10 * sim::kSecond;
    sim::TimeNs min_rto = 200 * sim::kMilli;
    // Reordering-window adaptation (Linux tcp_reordering / RFC 4653): when a
    // hole fills without retransmission the duplicate-ACK threshold grows,
    // up to this cap. Mild reordering (the compensated §4.2 path) is
    // absorbed; pathological reordering (uncompensated WRR, tens of packets
    // of displacement) still collapses, as the paper observed.
    int max_dupack_threshold = 3;  // classic NewReno (no SACK), as in §4.2
  };

  TcpSender(sim::Node& node, AppMux& mux, Config cfg);
  void start();

  // ---- statistics ----
  std::uint64_t segments_sent() const noexcept { return segs_sent_; }
  std::uint64_t retransmits() const noexcept { return retransmits_; }
  std::uint64_t fast_retransmits() const noexcept { return fast_rtx_; }
  std::uint64_t timeouts() const noexcept { return timeouts_; }
  std::uint32_t cwnd() const noexcept { return cwnd_; }
  int dupack_threshold() const noexcept { return dupthresh_; }

 private:
  void on_ack(const net::TcpHeader& h, sim::TimeNs now);
  void send_segment(std::uint32_t seq, bool is_rtx, sim::TimeNs now);
  void try_send(sim::TimeNs now);
  void arm_rto(sim::TimeNs now);
  void on_rto_fire();
  void update_rtt(sim::TimeNs sample);

  sim::Node& node_;
  Config cfg_;
  sim::TimeNs stop_at_ = 0;

  // Connection state (sequence space in bytes; starts at 0).
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t cwnd_ = 0;      // bytes
  std::uint32_t ssthresh_ = 0;  // bytes
  int dupacks_ = 0;
  int dupthresh_ = 3;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;
  std::uint32_t rtx_in_recovery_ = 0;
  std::uint32_t cwnd_prior_ = 0;  // for the Eifel-style spurious undo
  sim::TimeNs last_partial_rtx_ = 0;

  // RTT estimation (Jacobson/Karels), Karn-sampled.
  sim::TimeNs srtt_ = 0;
  sim::TimeNs rttvar_ = 0;
  sim::TimeNs rto_ = sim::kSecond;
  int rto_backoff_ = 0;
  std::uint64_t rto_epoch_ = 0;  // cancels stale timer events
  std::map<std::uint32_t, sim::TimeNs> rtt_samples_;  // end_seq -> send time

  std::uint64_t segs_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t fast_rtx_ = 0;
  std::uint64_t timeouts_ = 0;
};

// Cumulative-ACK receiver with reassembly; reports in-order goodput.
class TcpReceiver {
 public:
  struct Config {
    net::Ipv6Addr addr;           // our address (ACK source)
    std::uint16_t port = 5001;
  };

  TcpReceiver(sim::Node& node, AppMux& mux, Config cfg);

  std::uint64_t delivered_bytes() const noexcept { return delivered_; }
  std::uint64_t ooo_segments() const noexcept { return ooo_segments_; }
  double goodput_mbps(sim::TimeNs window) const noexcept {
    return window == 0 ? 0.0
                       : static_cast<double>(delivered_) * 8e3 /
                             static_cast<double>(window);
  }

 private:
  void on_segment(const net::Packet& pkt, const net::TcpHeader& h,
                  std::span<const std::uint8_t> payload, sim::TimeNs now);
  void send_ack(const net::Ipv6Addr& to, std::uint16_t to_port);

  sim::Node& node_;
  Config cfg_;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::uint32_t> ooo_;  // start -> end
  std::uint64_t delivered_ = 0;
  std::uint64_t ooo_segments_ = 0;
};

// Shared wire format helper: builds an IPv6+TCP segment with `payload_len`
// dummy payload bytes.
net::Packet make_tcp_segment(const net::Ipv6Addr& src,
                             const net::Ipv6Addr& dst, std::uint16_t sport,
                             std::uint16_t dport, std::uint32_t seq,
                             std::uint32_t ack, std::uint8_t flags,
                             std::size_t payload_len);

}  // namespace srv6bpf::apps
