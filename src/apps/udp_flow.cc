#include "apps/udp_flow.h"

namespace srv6bpf::apps {

UdpFlowSender::UdpFlowSender(sim::Node& node, Config cfg)
    : node_(node), cfg_(cfg) {
  net::PacketSpec spec;
  spec.src = cfg.src;
  spec.dst = cfg.dst;
  spec.src_port = cfg.src_port;
  spec.dst_port = cfg.dst_port;
  spec.payload_size = cfg.payload_size;
  t_template_ = net::make_udp_packet(spec);

  const double pps = cfg.rate_bps / (static_cast<double>(cfg.payload_size) * 8);
  interval_ns_ = pps > 0 ? static_cast<sim::TimeNs>(1e9 / pps) : sim::kSecond;
  if (interval_ns_ == 0) interval_ns_ = 1;
}

void UdpFlowSender::start() {
  stop_at_ = cfg_.start_at + cfg_.duration;
  next_send_ = cfg_.start_at;
  node_.loop().schedule_at(cfg_.start_at, [this] { tick(); });
}

void UdpFlowSender::tick() {
  if (node_.loop().now() >= stop_at_) return;
  net::Packet pkt = t_template_;
  pkt.seq = static_cast<std::uint32_t>(sent_++);
  node_.send(std::move(pkt));
  next_send_ += interval_ns_;
  node_.loop().schedule_at(next_send_, [this] { tick(); });
}

}  // namespace srv6bpf::apps
