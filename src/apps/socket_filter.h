// SO_ATTACH_FILTER-style socket filters.
//
// A SocketFilter owns the full classic-BPF pipeline for one attachment:
// tcpdump expression (optional) → classic BPF → check → translate to eBPF →
// verifier → the node's engines. Exactly like the kernel since 3.15, the
// classic program is *never* interpreted on the delivery path — it is
// translated once at attach time and each packet runs the eBPF form on
// whichever engine the node selected (native JIT by default).
//
// Attachment points (apps/sink.h):
//   * AppMux::attach_filter()           — node-wide ingress tap, every
//     locally delivered packet passes or is dropped (raw socket analogue);
//   * AppMux::attach_udp_filter(port)   — per-"socket" filter consulted
//     before that port's handler runs (SO_ATTACH_FILTER analogue);
//   * UdpSink(mux, port, filter)        — a counting sink that only meters
//     packets its filter accepts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cbpf/insn.h"
#include "ebpf/exec.h"
#include "ebpf/skb.h"
#include "ebpf/vm.h"
#include "seg6/ctx.h"

namespace srv6bpf::apps {

class SocketFilter {
 public:
  // Compiles `expr` (cbpf::compile) and attaches the result. Returns null on
  // compile/translate/verify failure with the diagnostic in *error.
  static std::shared_ptr<SocketFilter> from_expr(seg6::Netns& ns,
                                                 std::string name,
                                                 std::string_view expr,
                                                 std::string* error = nullptr);
  // Attaches a hand-written classic program (the raw SO_ATTACH_FILTER path).
  static std::shared_ptr<SocketFilter> from_cbpf(
      seg6::Netns& ns, std::string name, std::vector<cbpf::SockFilter> prog,
      std::string* error = nullptr);

  // Runs the filter over the packet on the node's selected engine; returns
  // the classic accept length (0 = drop).
  std::uint32_t run(const net::Packet& pkt);
  // run() plus accept/drop accounting.
  bool accept(const net::Packet& pkt);

  const std::string& name() const noexcept { return name_; }
  const std::string& expr() const noexcept { return expr_; }
  // The classic program this filter attaches (pre-translation form).
  const std::vector<cbpf::SockFilter>& classic() const noexcept {
    return classic_;
  }
  // The translated, verified eBPF program.
  const ebpf::LoadedProgram& program() const noexcept { return *prog_; }

  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t bytes_accepted() const noexcept { return bytes_accepted_; }
  void reset_stats() noexcept { accepted_ = dropped_ = bytes_accepted_ = 0; }

 private:
  SocketFilter(seg6::Netns& ns, std::string name);

  bool attach(std::vector<cbpf::SockFilter> prog, std::string* error);

  seg6::Netns& ns_;
  std::string name_;
  std::string expr_;  // empty for raw cBPF attachments
  std::vector<cbpf::SockFilter> classic_;
  ebpf::ProgHandle prog_;
  ebpf::SkbCtx skb_;
  ebpf::ExecEnv env_;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_accepted_ = 0;
};

}  // namespace srv6bpf::apps
