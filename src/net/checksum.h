// Internet checksum (RFC 1071) with the IPv6 pseudo-header (RFC 8200 §8.1).
#pragma once

#include <cstdint>
#include <span>

#include "net/ip6.h"

namespace srv6bpf::net {

// One's-complement sum over `data`, folded to 16 bits (not inverted).
std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum = 0);

// Final fold + invert.
std::uint16_t checksum_finish(std::uint32_t sum);

// Full transport checksum over the IPv6 pseudo header + payload.
// `payload` covers the transport header (with its checksum field zeroed by
// the caller or included for verification) and data.
std::uint16_t transport_checksum(const Ipv6Addr& src, const Ipv6Addr& dst,
                                 std::uint8_t proto,
                                 std::span<const std::uint8_t> payload);

// Convenience: true if the embedded checksum verifies (sum == 0).
bool transport_checksum_ok(const Ipv6Addr& src, const Ipv6Addr& dst,
                           std::uint8_t proto,
                           std::span<const std::uint8_t> payload);

}  // namespace srv6bpf::net
