// PacketBurst: the currency of the vector datapath.
//
// A fixed-capacity inline vector of packets plus per-packet disposition
// metadata (verdict, egress interface, logical timestamp). Bursts flow
// through the staged forwarding pipeline (sim/datapath.h) and the link layer
// (Link::transmit_burst) the way skb arrays flow through NAPI polling and
// GRO in a real kernel: one event / one lookup / one program-setup per burst
// instead of per packet, with per-packet fates recorded in the metadata.
//
// Storage is inline (no heap) and lazily constructed: creating, moving and
// destroying a burst costs O(occupied slots), never O(capacity) — a burst of
// one packet must stay as cheap as the scalar path it replaced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "net/packet.h"

namespace srv6bpf::net {

// Hard capacity of a burst. The runtime drain budget (Node::Cpu::rx_burst)
// may be anything up to this; 64 matches the largest NAPI poll budget the
// burst_sweep benchmark explores.
inline constexpr std::size_t kMaxBurstPackets = 64;

// Per-packet fate, assigned stage by stage.
enum class BurstVerdict : std::uint8_t {
  kPending,   // not yet classified
  kForward,   // transmit on `oif` at `at_ns`
  kLocal,     // deliver to the local stack
  kDrop,
};

// Intentionally no field initialisers: metadata slots live in bulk arrays
// that are only ever read below the burst's size, and push() assigns every
// field (same pattern as ebpf::RegionList).
struct BurstSlotMeta {
  BurstVerdict verdict;
  int oif;
  // Logical per-packet timestamp: the CPU-model completion time on the
  // transmit side, the wire arrival time on the receive side. Carrying it
  // explicitly lets one scheduled event move a whole burst while every
  // packet keeps its exact per-packet timing.
  std::uint64_t at_ns;
};

class PacketBurst {
 public:
  PacketBurst() = default;

  PacketBurst(PacketBurst&& other) noexcept { steal(other); }
  PacketBurst& operator=(PacketBurst&& other) noexcept {
    if (this != &other) {
      clear();
      steal(other);
    }
    return *this;
  }
  // The datapath always moves; copying survives for tests that want to
  // snapshot a burst. (Event closures moved off by-value burst captures
  // entirely — in-flight bursts ride pooled BurstPool nodes so the InlineFn
  // closure stays pointer-sized.) size_ grows as slots are constructed so a
  // throwing Packet copy unwinds cleanly.
  PacketBurst(const PacketBurst& other) {
    for (std::size_t i = 0; i < other.size_; ++i) {
      new (slot(i)) Packet(other.pkt(i));
      meta_[i] = other.meta_[i];
      ++size_;
    }
  }
  PacketBurst& operator=(const PacketBurst& other) {
    if (this != &other) {
      clear();
      for (std::size_t i = 0; i < other.size_; ++i) {
        new (slot(i)) Packet(other.pkt(i));
        meta_[i] = other.meta_[i];
        ++size_;
      }
    }
    return *this;
  }
  ~PacketBurst() { clear(); }

  static constexpr std::size_t capacity() noexcept { return kMaxBurstPackets; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == kMaxBurstPackets; }

  // Appends a packet; returns false (packet untouched) when full.
  bool push(Packet&& p, std::uint64_t at_ns = 0) {
    if (full()) return false;
    new (slot(size_)) Packet(std::move(p));
    meta_[size_] = BurstSlotMeta{BurstVerdict::kPending, -1, at_ns};
    ++size_;
    return true;
  }

  Packet& pkt(std::size_t i) noexcept {
    return *std::launder(reinterpret_cast<Packet*>(slot(i)));
  }
  const Packet& pkt(std::size_t i) const noexcept {
    return *std::launder(reinterpret_cast<const Packet*>(slot(i)));
  }
  BurstSlotMeta& meta(std::size_t i) noexcept { return meta_[i]; }
  const BurstSlotMeta& meta(std::size_t i) const noexcept { return meta_[i]; }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) pkt(i).~Packet();
    size_ = 0;
  }

 private:
  void steal(PacketBurst& other) noexcept {
    size_ = other.size_;
    for (std::size_t i = 0; i < size_; ++i) {
      new (slot(i)) Packet(std::move(other.pkt(i)));
      meta_[i] = other.meta_[i];
      other.pkt(i).~Packet();
    }
    other.size_ = 0;
  }

  std::byte* slot(std::size_t i) noexcept {
    return storage_ + i * sizeof(Packet);
  }
  const std::byte* slot(std::size_t i) const noexcept {
    return storage_ + i * sizeof(Packet);
  }

  alignas(Packet) std::byte storage_[kMaxBurstPackets * sizeof(Packet)];
  BurstSlotMeta meta_[kMaxBurstPackets];
  std::size_t size_ = 0;
};

}  // namespace srv6bpf::net
