// The IPv6 Segment Routing Header (SRH), RFC 8754 / draft-ietf-6man-
// segment-routing-header, plus the TLVs used by the paper's use cases.
//
// Layout:
//   0  next_header
//   1  hdr_ext_len        (8-byte units, not counting the first 8 bytes)
//   2  routing_type = 4
//   3  segments_left
//   4  last_entry         (index of the last segment slot)
//   5  flags
//   6  tag (16 bits)
//   8  segments[last_entry+1] x 16 bytes  (segment[0] is the FINAL segment)
//   .. optional TLVs, padded to an 8-byte multiple
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip6.h"

namespace srv6bpf::net {

inline constexpr std::uint8_t kSrhRoutingType = 4;
inline constexpr std::size_t kSrhFixedSize = 8;
inline constexpr std::size_t kSegmentSize = 16;

// TLV types. Pad1/PadN are standard; the others are the experimental TLVs the
// paper's use cases define (timestamps, controller coordinates).
inline constexpr std::uint8_t kTlvPad1 = 0;
inline constexpr std::uint8_t kTlvPadN = 4;
inline constexpr std::uint8_t kTlvOpaque = 30;             // AddTLV benchmark
inline constexpr std::uint8_t kTlvDelayMeasurement = 124;  // §4.1 DM TLV
inline constexpr std::uint8_t kTlvController = 125;        // §4.1 collector
inline constexpr std::uint8_t kTlvOamReplyTo = 126;        // §4.3 prober addr

// Delay-Measurement TLV: type, len=18, flags, reserved, u64 TX timestamp,
// u64 RX timestamp (ns, big-endian). 20 bytes total. The RX field is unused
// by one-way probes; two-way probes (§4.2) have the remote endpoint fill it
// in-place via bpf_lwt_seg6_store_bytes before bouncing the probe back.
inline constexpr std::size_t kDmTlvSize = 20;
inline constexpr std::size_t kDmTlvTxOff = 4;   // within the TLV
inline constexpr std::size_t kDmTlvRxOff = 12;  // within the TLV

// Controller / reply-to TLV: type, len=18, IPv6 address, u16 UDP port.
// 20 bytes total.
inline constexpr std::size_t kControllerTlvSize = 20;
inline constexpr std::size_t kControllerTlvAddrOff = 2;
inline constexpr std::size_t kControllerTlvPortOff = 18;

// Flags: the paper's End.DM distinguishes one-way probes (decapsulate at the
// endpoint) from two-way probes (bounce back to the querier, §4.2).
inline constexpr std::uint8_t kDmFlagTwoWay = 0x01;

// Mutable zero-copy view over a serialized SRH.
class SrhView {
 public:
  // `p` points at the SRH first byte; `avail` is the number of valid bytes
  // from p to the end of the packet.
  SrhView(std::uint8_t* p, std::size_t avail) : p_(p), avail_(avail) {}

  // Structural validation: routing type, length within avail, segment slots
  // within length, segments_left <= last_entry.
  bool valid() const noexcept;

  std::uint8_t next_header() const noexcept { return p_[0]; }
  void set_next_header(std::uint8_t v) noexcept { p_[0] = v; }
  std::uint8_t hdr_ext_len() const noexcept { return p_[1]; }
  std::size_t total_len() const noexcept {
    return (static_cast<std::size_t>(p_[1]) + 1) * 8;
  }
  std::uint8_t routing_type() const noexcept { return p_[2]; }
  std::uint8_t segments_left() const noexcept { return p_[3]; }
  void set_segments_left(std::uint8_t v) noexcept { p_[3] = v; }
  std::uint8_t last_entry() const noexcept { return p_[4]; }
  std::uint8_t flags() const noexcept { return p_[5]; }
  void set_flags(std::uint8_t v) noexcept { p_[5] = v; }
  std::uint16_t tag() const noexcept;
  void set_tag(std::uint16_t v) noexcept;

  std::size_t num_segments() const noexcept { return last_entry() + 1u; }
  Ipv6Addr segment(std::size_t i) const noexcept;
  void set_segment(std::size_t i, const Ipv6Addr& a) noexcept;
  // The segment the packet is currently routed to.
  Ipv6Addr current_segment() const noexcept { return segment(segments_left()); }

  // TLV area (after the last segment slot, within total_len).
  std::size_t tlv_offset() const noexcept {
    return kSrhFixedSize + num_segments() * kSegmentSize;
  }
  std::size_t tlv_len() const noexcept {
    const std::size_t off = tlv_offset();
    return off <= total_len() ? total_len() - off : 0;
  }
  std::span<std::uint8_t> tlv_area() noexcept {
    return {p_ + tlv_offset(), tlv_len()};
  }
  std::span<const std::uint8_t> tlv_area() const noexcept {
    return {p_ + tlv_offset(), tlv_len()};
  }
  // Scans the TLV chain; false on malformed TLVs (truncation).
  bool tlvs_well_formed() const noexcept;
  // Byte offset (from SRH start) of the first TLV with this type, or -1.
  int find_tlv(std::uint8_t type) const noexcept;

  std::uint8_t* raw() noexcept { return p_; }
  const std::uint8_t* raw() const noexcept { return p_; }

 private:
  std::uint8_t* p_;
  std::size_t avail_;
};

// Builds a serialized SRH. `segments` is given in travel order (first visited
// first); this builder stores them reversed per the RFC and sets
// segments_left = n-1, i.e. the state of a freshly encapsulated packet.
// `tlvs` is appended verbatim and must pad the header to a multiple of 8.
std::vector<std::uint8_t> build_srh(std::uint8_t next_header,
                                    std::span<const Ipv6Addr> segments,
                                    std::span<const std::uint8_t> tlvs = {},
                                    std::uint16_t tag = 0,
                                    std::uint8_t flags = 0);

// TLV construction helpers.
std::vector<std::uint8_t> build_dm_tlv(std::uint64_t tx_tstamp_ns,
                                       std::uint8_t flags = 0);
std::vector<std::uint8_t> build_controller_tlv(std::uint8_t type,
                                               const Ipv6Addr& addr,
                                               std::uint16_t port);
std::vector<std::uint8_t> build_padn(std::size_t n);

}  // namespace srv6bpf::net
