// BufferPool / BurstPool: the steady-state allocator bypass of the datapath.
//
// Real line-rate datapaths never malloc per packet: DPDK keeps mbufs in
// per-lcore mempools, the kernel recycles skbs through page pools, and the
// paper's eBPF hooks ride exactly that discipline. The simulator mirrors it
// with two freelists:
//
//   * BufferPool — fixed-size (kPoolBufCap) packet buffers with reserved
//     headroom. net::Packet draws its storage here; destroying a Packet
//     (delivery, drop, burst teardown) returns the buffer instead of freeing
//     it, so after warm-up the forwarding path performs zero heap
//     allocations per packet. Requests larger than kPoolBufCap fall back to
//     exact-size heap buffers that are freed (not pooled) on release.
//   * BurstPool — recycled net::PacketBurst nodes for in-flight link
//     deliveries: Link::transmit_burst parks the serialized burst in a
//     pooled node and the delivery event carries only a pointer, keeping the
//     event closure inside sim::InlineFn's inline capture budget.
//
// Both pools are process-wide singletons (the simulator is single-threaded;
// nothing here locks) and share one enable switch: set_enabled(false)
// degrades acquire/release to plain new/delete — the "no-pool baseline" that
// bench_hotpath and the recycling-correctness test compare against. Pooling
// is wall-clock-only by construction: buffer identity never feeds timing,
// hashing or byte content, so pooled and unpooled runs are bit-identical
// (tests/alloc_test.cc enforces it with FNV delivery digests).
#pragma once

#include <cstddef>
#include <cstdint>

namespace srv6bpf::net {

class PacketBurst;

// Data capacity of a pooled buffer: kDefaultHeadroom of encap headroom plus
// the largest frame the scenarios move (TCP's ~1.5 KiB) with slack for SRH
// growth — the same "one size class" shape as a 2 KiB mbuf.
inline constexpr std::size_t kPoolBufCap = 2048;

class BufferPool {
 public:
  // Header of every pooled/heap buffer; payload bytes follow in-place.
  struct Buf {
    Buf* next;          // freelist link (meaningful only while pooled)
    std::uint32_t cap;  // payload capacity in bytes
    std::uint8_t* data() noexcept {
      return reinterpret_cast<std::uint8_t*>(this + 1);
    }
  };

  struct Stats {
    std::uint64_t allocs = 0;       // heap allocations (cold path)
    std::uint64_t reuses = 0;       // freelist hits (warm path)
    std::uint64_t outstanding = 0;  // buffers currently owned by Packets
    std::uint64_t high_water = 0;   // max outstanding since reset_stats()
    std::uint64_t pooled = 0;       // buffers parked on the freelist now
    std::uint64_t admission_fail = 0;  // admissions refused by the hard cap
  };

  // Returns a buffer with cap >= min_cap. min_cap <= kPoolBufCap reuses the
  // freelist (or heap-allocates a kPoolBufCap buffer when cold / disabled);
  // larger requests always heap-allocate exactly min_cap.
  static Buf* acquire(std::size_t min_cap);
  // Returns a buffer to the freelist (kPoolBufCap buffers, pool enabled) or
  // frees it (oversize buffers, pool disabled).
  static void release(Buf* b) noexcept;

  // One switch for BufferPool and BurstPool both. Disabled = plain
  // new/delete per acquire/release: the bench baseline.
  static void set_enabled(bool on) noexcept;
  static bool enabled() noexcept;

  // ---- Hard cap (graceful degradation under exhaustion) ---------------------
  // Bounds outstanding buffers on this thread's pool: 0 (the default) keeps
  // the historical unbounded-growth behaviour; a non-zero cap turns packet
  // *admission* fallible, like a real mempool running dry. The cap is an
  // admission gate, not a mid-pipeline failure: callers that create new
  // packets (traffic generators, copies) must check try_admit() and drop —
  // accounted as sim::DropReason::kNoBuffer — instead of acquiring; plain
  // acquire() stays infallible so in-flight packets that regrow headroom
  // never abort. The pool is thread_local, so caps are per host thread; the
  // deterministic exhaustion gates run on the serial (master-thread) path.
  static void set_max_buffers(std::uint64_t n) noexcept;
  static std::uint64_t max_buffers() noexcept;
  // True (and the admission accepted) when under the cap; false counts an
  // admission_fail. With no cap set this always succeeds.
  static bool try_admit() noexcept;

  static Stats stats() noexcept;
  // Zeroes allocs/reuses and re-bases high_water on current outstanding.
  static void reset_stats() noexcept;
  // Frees every buffer parked on the freelist (outstanding ones are
  // untouched); lets tests measure cold-start behaviour deterministically.
  static void trim() noexcept;
};

// Freelist of PacketBurst nodes for event closures that must outlive their
// stack frame (Link deliveries). Shares BufferPool's enable switch.
class BurstPool {
 public:
  static PacketBurst* acquire();
  static void release(PacketBurst* b) noexcept;

  // Move-only owner: clears the burst and returns the node on destruction,
  // so a delivery event that is destroyed without running (event loop torn
  // down mid-flight) still recycles both the node and its packet buffers.
  class Handle {
   public:
    Handle() = default;
    explicit Handle(PacketBurst* b) noexcept : b_(b) {}
    Handle(Handle&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        reset();
        b_ = o.b_;
        o.b_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    PacketBurst& operator*() const noexcept { return *b_; }
    PacketBurst* get() const noexcept { return b_; }

   private:
    void reset() noexcept;
    PacketBurst* b_ = nullptr;
  };

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t reuses = 0;
    std::uint64_t pooled = 0;
  };
  static Stats stats() noexcept;
  static void reset_stats() noexcept;
  static void trim() noexcept;
};

}  // namespace srv6bpf::net
