// Packet: the skb-like buffer flowing through the simulator.
//
// A contiguous byte buffer with reserved headroom (so SRH/IPv6 encapsulation
// is a cheap push_front) plus the metadata the seg6local/LWT machinery needs:
// the resolved next-hop ("dst cache"), timestamps, ingress interface and the
// skb->mark scratch field exposed to eBPF programs.
//
// Storage comes from net::BufferPool (skb/mbuf-style recycling): creating a
// packet pops a headroom-reserved buffer off the freelist and destroying it
// pushes the buffer back, so the steady-state forwarding path never touches
// the heap. Headroom regrowth on push_front is a single non-zeroing
// memmove (in place when tailroom allows, into a fresh buffer otherwise) —
// never the O(n) value-initialising shift a vector insert would pay.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/buffer_pool.h"
#include "net/ip6.h"
#include "net/srh.h"

namespace srv6bpf::net {

inline constexpr std::size_t kDefaultHeadroom = 128;

// The "dst cache" entry: where the packet goes next.
struct DstEntry {
  Ipv6Addr nexthop;  // link-layer next hop (or the dst itself if onlink)
  int oif = -1;      // egress interface index
  bool valid = false;
};

class Packet {
 public:
  // A default packet is empty and owns no buffer (push_front acquires one on
  // demand), so arrays of packets — PacketBurst slots, RxRing slots — cost
  // nothing to construct.
  Packet() = default;
  explicit Packet(std::span<const std::uint8_t> contents,
                  std::size_t headroom = kDefaultHeadroom);

  Packet(const Packet& other);
  Packet& operator=(const Packet& other);
  Packet(Packet&& other) noexcept;
  Packet& operator=(Packet&& other) noexcept;
  ~Packet() { BufferPool::release(buf_); }

  std::uint8_t* data() noexcept {
    return buf_ == nullptr ? nullptr : buf_->data() + head_;
  }
  const std::uint8_t* data() const noexcept {
    return buf_ == nullptr ? nullptr : buf_->data() + head_;
  }
  std::size_t size() const noexcept { return len_; }
  std::span<std::uint8_t> bytes() noexcept { return {data(), size()}; }
  std::span<const std::uint8_t> bytes() const noexcept {
    return {data(), size()};
  }
  std::size_t headroom() const noexcept { return head_; }

  // Prepends `n` bytes (uninitialised), regrowing headroom if needed.
  std::uint8_t* push_front(std::size_t n);
  // Removes `n` bytes from the front (decapsulation). n <= size().
  void pull_front(std::size_t n);
  // Grows/shrinks at offset `at` by `delta` bytes (SRH TLV adjustment):
  // positive delta inserts zeroed bytes at `at`, negative removes.
  // Returns false if the operation is out of bounds.
  bool expand_at(std::size_t at, std::ptrdiff_t delta);

  // ---- metadata ----
  DstEntry& dst() noexcept { return dst_; }
  const DstEntry& dst() const noexcept { return dst_; }
  std::uint32_t mark = 0;
  std::uint32_t ingress_ifindex = 0;
  std::uint64_t rx_tstamp_ns = 0;   // set by the receiving node
  std::uint64_t tx_tstamp_ns = 0;   // set when first transmitted
  std::uint64_t flow_id = 0;        // generator-assigned, for tracing/stats
  std::uint32_t seq = 0;            // generator sequence number

  // ---- convenience views (outermost headers) ----
  Ipv6View ipv6() noexcept { return Ipv6View(data()); }
  // Returns an SRH view if next_header == ROUTING and bounds allow.
  std::optional<SrhView> srh() noexcept;

 private:
  // Moves the payload so that headroom >= need, reallocating only when the
  // current buffer cannot hold need + len_ (then releasing the old buffer
  // back to the pool). Never zero-initialises.
  void grow_headroom(std::size_t need);
  std::size_t cap() const noexcept { return buf_ ? buf_->cap : 0; }

  BufferPool::Buf* buf_ = nullptr;
  std::uint32_t head_ = 0;
  std::uint32_t len_ = 0;
  DstEntry dst_;
};

// Builds IPv6(+optional SRH)+UDP+payload packets used across tests, examples
// and benchmarks.
struct PacketSpec {
  Ipv6Addr src;
  Ipv6Addr dst;                   // written into the IPv6 header
  std::uint8_t hop_limit = 64;
  std::uint32_t flow_label = 0;   // 20 bits; part of the RSS steering tuple
  std::vector<Ipv6Addr> segments; // if non-empty, adds an SRH (travel order);
                                  // IPv6 dst is then segments.back() unless
                                  // dst_override is set
  std::vector<std::uint8_t> srh_tlvs;
  std::uint16_t srh_tag = 0;
  std::uint8_t srh_flags = 0;
  std::uint16_t src_port = 7000;
  std::uint16_t dst_port = 7001;
  std::size_t payload_size = 64;
  std::uint8_t payload_fill = 0xab;
  bool fill_checksum = true;
};

Packet make_udp_packet(const PacketSpec& spec);

// Walks the header chain (IPv6 -> [SRH] -> [IPv6-in-IPv6 ...]) to the
// transport header. Returns nullopt when the chain is malformed or ends in a
// protocol other than UDP/TCP/ICMPv6.
struct TransportLoc {
  std::uint8_t proto = 0;       // kProtoUdp / kProtoTcp / kProtoIcmp6
  std::size_t offset = 0;       // byte offset of the transport header
  std::size_t inner_ip = 0;     // byte offset of the innermost IPv6 header
};
std::optional<TransportLoc> locate_transport(const Packet& pkt);

}  // namespace srv6bpf::net
