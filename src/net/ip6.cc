#include "net/ip6.h"

#include <charconv>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/byteorder.h"

namespace srv6bpf::net {

// ---- Ipv6Addr ------------------------------------------------------------

std::uint16_t Ipv6Addr::group(int i) const noexcept {
  return load_be16(bytes_.data() + 2 * i);
}

void Ipv6Addr::set_group(int i, std::uint16_t v) noexcept {
  store_be16(bytes_.data() + 2 * i, v);
}

bool Ipv6Addr::is_unspecified() const noexcept {
  for (std::uint8_t b : bytes_)
    if (b != 0) return false;
  return true;
}

bool Ipv6Addr::in_prefix(const Ipv6Addr& prefix, int prefix_len) const noexcept {
  if (prefix_len <= 0) return true;
  if (prefix_len > 128) return false;
  const int full = prefix_len / 8;
  if (std::memcmp(bytes_.data(), prefix.bytes_.data(), full) != 0) return false;
  const int rem = prefix_len % 8;
  if (rem == 0) return true;
  const std::uint8_t mask = static_cast<std::uint8_t>(0xff00 >> rem);
  return (bytes_[full] & mask) == (prefix.bytes_[full] & mask);
}

namespace {

bool parse_hex_group(std::string_view s, std::uint16_t& out) {
  if (s.empty() || s.size() > 4) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = v * 16 + static_cast<std::uint32_t>(d);
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_dotted_quad(std::string_view s, std::uint8_t out[4]) {
  int part = 0;
  std::uint32_t v = 0;
  bool have_digit = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '.') {
      if (!have_digit || v > 255 || part >= 4) return false;
      out[part++] = static_cast<std::uint8_t>(v);
      v = 0;
      have_digit = false;
    } else if (s[i] >= '0' && s[i] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(s[i] - '0');
      if (v > 255) return false;
      have_digit = true;
    } else {
      return false;
    }
  }
  return part == 4;
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Split on ':' handling the "::" marker.
  std::vector<std::string_view> head, tail;
  bool seen_gap = false;

  std::size_t i = 0;
  // Leading "::".
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    seen_gap = true;
    i = 2;
  } else if (!text.empty() && text[0] == ':') {
    return std::nullopt;
  }

  std::size_t start = i;
  auto* current = seen_gap ? &tail : &head;
  while (i <= text.size()) {
    if (i == text.size() || text[i] == ':') {
      if (i > start) current->push_back(text.substr(start, i - start));
      if (i < text.size() && text[i] == ':') {
        if (i + 1 < text.size() && text[i + 1] == ':') {
          if (seen_gap) return std::nullopt;  // second "::"
          seen_gap = true;
          current = &tail;
          ++i;
        } else if (i + 1 == text.size()) {
          return std::nullopt;  // trailing single ':'
        } else if (i == start && i != 0) {
          return std::nullopt;  // ":::" or empty group
        }
      }
      start = i + 1;
    }
    ++i;
  }

  // A trailing dotted quad counts as two groups.
  std::array<std::uint8_t, 16> bytes{};
  std::vector<std::uint16_t> head_groups, tail_groups;
  auto convert = [](const std::vector<std::string_view>& parts,
                    std::vector<std::uint16_t>& out) -> bool {
    for (std::size_t k = 0; k < parts.size(); ++k) {
      if (parts[k].find('.') != std::string_view::npos) {
        if (k + 1 != parts.size()) return false;  // quad only at the end
        std::uint8_t quad[4];
        if (!parse_dotted_quad(parts[k], quad)) return false;
        out.push_back(static_cast<std::uint16_t>(quad[0] << 8 | quad[1]));
        out.push_back(static_cast<std::uint16_t>(quad[2] << 8 | quad[3]));
        continue;
      }
      std::uint16_t g;
      if (!parse_hex_group(parts[k], g)) return false;
      out.push_back(g);
    }
    return true;
  };
  if (!convert(head, head_groups) || !convert(tail, tail_groups))
    return std::nullopt;

  const std::size_t total = head_groups.size() + tail_groups.size();
  if (seen_gap) {
    if (total >= 8) return std::nullopt;
  } else {
    if (total != 8) return std::nullopt;
  }

  Ipv6Addr addr;
  for (std::size_t k = 0; k < head_groups.size(); ++k)
    addr.set_group(static_cast<int>(k), head_groups[k]);
  for (std::size_t k = 0; k < tail_groups.size(); ++k)
    addr.set_group(static_cast<int>(8 - tail_groups.size() + k),
                   tail_groups[k]);
  (void)bytes;
  return addr;
}

Ipv6Addr Ipv6Addr::must_parse(std::string_view text) {
  auto a = parse(text);
  if (!a)
    throw std::invalid_argument("bad IPv6 address: " + std::string(text));
  return *a;
}

std::string Ipv6Addr::to_string() const {
  // Longest run of zero groups (length >= 2) gets "::".
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) == 0) {
      int j = i;
      while (j < 8 && group(j) == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += i == 0 ? "::" : ":";
      i += best_len - 1;
      if (i == 7) out += "";  // "::" already closes
      continue;
    }
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, group(i), 16);
    out.append(buf, p);
    if (i != 7) out += ":";
  }
  if (out.empty()) out = "::";
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  Prefix p;
  if (slash == std::string_view::npos) {
    auto a = Ipv6Addr::parse(text);
    if (!a) return std::nullopt;
    return Prefix{*a, 128};
  }
  auto a = Ipv6Addr::parse(text.substr(0, slash));
  if (!a) return std::nullopt;
  int len = 0;
  const auto rest = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), len);
  if (ec != std::errc{} || ptr != rest.data() + rest.size() || len < 0 ||
      len > 128)
    return std::nullopt;
  return Prefix{*a, len};
}

// ---- Ipv6Header ------------------------------------------------------------

void Ipv6Header::write(std::uint8_t* out) const {
  const std::uint32_t vtcfl = (6u << 28) |
                              (static_cast<std::uint32_t>(traffic_class) << 20) |
                              (flow_label & 0xfffffu);
  store_be32(out, vtcfl);
  store_be16(out + 4, payload_length);
  out[6] = next_header;
  out[7] = hop_limit;
  std::memcpy(out + 8, src.bytes().data(), 16);
  std::memcpy(out + 24, dst.bytes().data(), 16);
}

std::optional<Ipv6Header> Ipv6Header::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kIpv6HeaderSize) return std::nullopt;
  const std::uint32_t vtcfl = load_be32(in.data());
  if ((vtcfl >> 28) != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((vtcfl >> 20) & 0xff);
  h.flow_label = vtcfl & 0xfffffu;
  h.payload_length = load_be16(in.data() + 4);
  h.next_header = in[6];
  h.hop_limit = in[7];
  std::memcpy(h.src.bytes().data(), in.data() + 8, 16);
  std::memcpy(h.dst.bytes().data(), in.data() + 24, 16);
  return h;
}

// ---- Ipv6View ----------------------------------------------------------------

std::uint8_t Ipv6View::version() const { return p_[0] >> 4; }
std::uint8_t Ipv6View::traffic_class() const {
  return static_cast<std::uint8_t>((p_[0] << 4) | (p_[1] >> 4));
}
std::uint32_t Ipv6View::flow_label() const {
  return (static_cast<std::uint32_t>(p_[1] & 0x0f) << 16) |
         (static_cast<std::uint32_t>(p_[2]) << 8) | p_[3];
}
std::uint16_t Ipv6View::payload_length() const { return load_be16(p_ + 4); }
void Ipv6View::set_payload_length(std::uint16_t v) { store_be16(p_ + 4, v); }
std::uint8_t Ipv6View::next_header() const { return p_[6]; }
void Ipv6View::set_next_header(std::uint8_t v) { p_[6] = v; }
std::uint8_t Ipv6View::hop_limit() const { return p_[7]; }
void Ipv6View::set_hop_limit(std::uint8_t v) { p_[7] = v; }

Ipv6Addr Ipv6View::src() const {
  Ipv6Addr a;
  std::memcpy(a.bytes().data(), p_ + 8, 16);
  return a;
}
void Ipv6View::set_src(const Ipv6Addr& a) {
  std::memcpy(p_ + 8, a.bytes().data(), 16);
}
Ipv6Addr Ipv6View::dst() const {
  Ipv6Addr a;
  std::memcpy(a.bytes().data(), p_ + 24, 16);
  return a;
}
void Ipv6View::set_dst(const Ipv6Addr& a) {
  std::memcpy(p_ + 24, a.bytes().data(), 16);
}

}  // namespace srv6bpf::net
