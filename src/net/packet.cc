#include "net/packet.h"

#include <cstring>

#include "net/checksum.h"
#include "net/transport.h"
#include "util/byteorder.h"

namespace srv6bpf::net {

Packet::Packet(std::span<const std::uint8_t> contents, std::size_t headroom)
    : buf_(BufferPool::acquire(headroom + contents.size())),
      head_(static_cast<std::uint32_t>(headroom)),
      len_(static_cast<std::uint32_t>(contents.size())) {
  if (!contents.empty())
    std::memcpy(buf_->data() + head_, contents.data(), contents.size());
}

Packet::Packet(const Packet& other)
    : buf_(nullptr), head_(other.head_), len_(other.len_), dst_(other.dst_) {
  mark = other.mark;
  ingress_ifindex = other.ingress_ifindex;
  rx_tstamp_ns = other.rx_tstamp_ns;
  tx_tstamp_ns = other.tx_tstamp_ns;
  flow_id = other.flow_id;
  seq = other.seq;
  if (other.buf_ != nullptr) {
    buf_ = BufferPool::acquire(other.head_ + other.len_);
    std::memcpy(buf_->data() + head_, other.buf_->data() + other.head_, len_);
  }
}

Packet& Packet::operator=(const Packet& other) {
  if (this == &other) return *this;
  if (other.buf_ == nullptr) {
    BufferPool::release(buf_);
    buf_ = nullptr;
  } else {
    // Reuse the held buffer when it fits: assigning over a warm packet
    // (burst snapshots in tests, user code) skips the release/acquire
    // round-trip.
    if (buf_ == nullptr || buf_->cap < other.head_ + other.len_) {
      BufferPool::release(buf_);
      buf_ = BufferPool::acquire(other.head_ + other.len_);
    }
    std::memcpy(buf_->data() + other.head_, other.buf_->data() + other.head_,
                other.len_);
  }
  head_ = other.head_;
  len_ = other.len_;
  dst_ = other.dst_;
  mark = other.mark;
  ingress_ifindex = other.ingress_ifindex;
  rx_tstamp_ns = other.rx_tstamp_ns;
  tx_tstamp_ns = other.tx_tstamp_ns;
  flow_id = other.flow_id;
  seq = other.seq;
  return *this;
}

Packet::Packet(Packet&& other) noexcept
    : buf_(other.buf_), head_(other.head_), len_(other.len_),
      dst_(other.dst_) {
  mark = other.mark;
  ingress_ifindex = other.ingress_ifindex;
  rx_tstamp_ns = other.rx_tstamp_ns;
  tx_tstamp_ns = other.tx_tstamp_ns;
  flow_id = other.flow_id;
  seq = other.seq;
  other.buf_ = nullptr;
  other.head_ = 0;
  other.len_ = 0;
}

Packet& Packet::operator=(Packet&& other) noexcept {
  if (this == &other) return *this;
  BufferPool::release(buf_);
  buf_ = other.buf_;
  head_ = other.head_;
  len_ = other.len_;
  dst_ = other.dst_;
  mark = other.mark;
  ingress_ifindex = other.ingress_ifindex;
  rx_tstamp_ns = other.rx_tstamp_ns;
  tx_tstamp_ns = other.tx_tstamp_ns;
  flow_id = other.flow_id;
  seq = other.seq;
  other.buf_ = nullptr;
  other.head_ = 0;
  other.len_ = 0;
  return *this;
}

void Packet::grow_headroom(std::size_t need) {
  // Leave kDefaultHeadroom beyond the immediate need so a chain of encaps
  // doesn't regrow per layer (the old vector-insert path did the same).
  const std::size_t new_head = need + kDefaultHeadroom;
  if (buf_ != nullptr && new_head + len_ <= buf_->cap) {
    std::memmove(buf_->data() + new_head, buf_->data() + head_, len_);
  } else {
    BufferPool::Buf* grown = BufferPool::acquire(new_head + len_);
    if (buf_ != nullptr)
      std::memcpy(grown->data() + new_head, buf_->data() + head_, len_);
    BufferPool::release(buf_);
    buf_ = grown;
  }
  head_ = static_cast<std::uint32_t>(new_head);
}

std::uint8_t* Packet::push_front(std::size_t n) {
  if (n > head_ || buf_ == nullptr) grow_headroom(n);
  head_ -= static_cast<std::uint32_t>(n);
  len_ += static_cast<std::uint32_t>(n);
  return data();
}

void Packet::pull_front(std::size_t n) {
  if (n > len_) n = len_;
  head_ += static_cast<std::uint32_t>(n);
  len_ -= static_cast<std::uint32_t>(n);
}

bool Packet::expand_at(std::size_t at, std::ptrdiff_t delta) {
  if (at > len_) return false;
  if (delta == 0) return true;
  if (delta > 0) {
    const std::size_t grow = static_cast<std::size_t>(delta);
    if (buf_ == nullptr || head_ + len_ + grow > buf_->cap) {
      BufferPool::Buf* grown =
          BufferPool::acquire(kDefaultHeadroom + len_ + grow);
      if (buf_ != nullptr)
        std::memcpy(grown->data() + kDefaultHeadroom, buf_->data() + head_,
                    len_);
      BufferPool::release(buf_);
      buf_ = grown;
      head_ = kDefaultHeadroom;
    }
    std::uint8_t* p = buf_->data() + head_;
    std::memmove(p + at + grow, p + at, len_ - at);
    std::memset(p + at, 0, grow);
    len_ += static_cast<std::uint32_t>(grow);
  } else {
    const std::size_t remove = static_cast<std::size_t>(-delta);
    if (at + remove > len_) return false;
    std::uint8_t* p = buf_->data() + head_;
    std::memmove(p + at, p + at + remove, len_ - at - remove);
    len_ -= static_cast<std::uint32_t>(remove);
  }
  return true;
}

std::optional<SrhView> Packet::srh() noexcept {
  if (size() < kIpv6HeaderSize) return std::nullopt;
  if (ipv6().next_header() != kProtoRouting) return std::nullopt;
  SrhView view(data() + kIpv6HeaderSize, size() - kIpv6HeaderSize);
  if (!view.valid()) return std::nullopt;
  return view;
}

std::optional<TransportLoc> locate_transport(const Packet& pkt) {
  const std::uint8_t* base = pkt.data();
  std::size_t off = 0;
  std::size_t inner_ip = 0;
  int guard = 8;
  while (guard-- > 0) {
    if (pkt.size() < off + kIpv6HeaderSize) return std::nullopt;
    if ((base[off] >> 4) != 6) return std::nullopt;
    inner_ip = off;
    std::uint8_t proto = base[off + 6];
    off += kIpv6HeaderSize;
    if (proto == kProtoRouting) {
      if (pkt.size() < off + kSrhFixedSize) return std::nullopt;
      const std::size_t srh_len = (static_cast<std::size_t>(base[off + 1]) + 1) * 8;
      if (pkt.size() < off + srh_len) return std::nullopt;
      proto = base[off];
      off += srh_len;
    }
    if (proto == kProtoIpv6) continue;  // IPv6-in-IPv6: descend
    if (proto == kProtoUdp || proto == kProtoTcp || proto == kProtoIcmp6)
      return TransportLoc{proto, off, inner_ip};
    return std::nullopt;
  }
  return std::nullopt;
}

Packet make_udp_packet(const PacketSpec& spec) {
  std::vector<std::uint8_t> srh;
  const bool with_srh = !spec.segments.empty();
  if (with_srh)
    srh = build_srh(kProtoUdp, spec.segments, spec.srh_tlvs, spec.srh_tag,
                    spec.srh_flags);

  const std::size_t udp_len = kUdpHeaderSize + spec.payload_size;
  const std::size_t total = kIpv6HeaderSize + srh.size() + udp_len;

  Packet pkt(std::span<const std::uint8_t>{}, kDefaultHeadroom);
  std::uint8_t* p = pkt.push_front(total);

  Ipv6Header ip;
  ip.src = spec.src;
  // With an SRH the packet is first routed to the first segment in travel
  // order; the final destination sits in segment slot 0.
  ip.dst = with_srh ? spec.segments.front() : spec.dst;
  ip.flow_label = spec.flow_label & 0xfffffu;
  ip.hop_limit = spec.hop_limit;
  ip.next_header = with_srh ? kProtoRouting : kProtoUdp;
  ip.payload_length = static_cast<std::uint16_t>(srh.size() + udp_len);
  ip.write(p);

  if (with_srh) std::memcpy(p + kIpv6HeaderSize, srh.data(), srh.size());

  std::uint8_t* udp = p + kIpv6HeaderSize + srh.size();
  UdpHeader uh;
  uh.src_port = spec.src_port;
  uh.dst_port = spec.dst_port;
  uh.length = static_cast<std::uint16_t>(udp_len);
  uh.checksum = 0;
  uh.write(udp);
  std::memset(udp + kUdpHeaderSize, spec.payload_fill, spec.payload_size);

  if (spec.fill_checksum) {
    // The UDP checksum covers the *final* destination in the pseudo-header;
    // with SRv6 that is the last segment of the path (RFC 8200 §8.1 rule for
    // routing headers).
    const Ipv6Addr final_dst = with_srh ? spec.segments.back() : spec.dst;
    const std::uint16_t c = transport_checksum(
        spec.src, final_dst, kProtoUdp, {udp, udp_len});
    store_be16(udp + 6, c);
  }
  return pkt;
}

}  // namespace srv6bpf::net
