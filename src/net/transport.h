// UDP and TCP header encoding (RFC 768 / RFC 9293, the fields we model).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ip6.h"

namespace srv6bpf::net {

inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kTcpHeaderSize = 20;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void write(std::uint8_t* out) const;
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> in);
};

// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;

  void write(std::uint8_t* out) const;  // kTcpHeaderSize bytes, no options
  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> in);
};

}  // namespace srv6bpf::net
