#include "net/transport.h"

#include "util/byteorder.h"

namespace srv6bpf::net {

void UdpHeader::write(std::uint8_t* out) const {
  store_be16(out, src_port);
  store_be16(out + 2, dst_port);
  store_be16(out + 4, length);
  store_be16(out + 6, checksum);
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kUdpHeaderSize) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.length = load_be16(in.data() + 4);
  h.checksum = load_be16(in.data() + 6);
  return h;
}

void TcpHeader::write(std::uint8_t* out) const {
  store_be16(out, src_port);
  store_be16(out + 2, dst_port);
  store_be32(out + 4, seq);
  store_be32(out + 8, ack);
  out[12] = 5 << 4;  // data offset: 5 words, no options
  out[13] = flags;
  store_be16(out + 14, window);
  store_be16(out + 16, checksum);
  store_be16(out + 18, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kTcpHeaderSize) return std::nullopt;
  TcpHeader h;
  h.src_port = load_be16(in.data());
  h.dst_port = load_be16(in.data() + 2);
  h.seq = load_be32(in.data() + 4);
  h.ack = load_be32(in.data() + 8);
  h.flags = in[13];
  h.window = load_be16(in.data() + 14);
  h.checksum = load_be16(in.data() + 16);
  return h;
}

}  // namespace srv6bpf::net
