// IPv6 addressing and the fixed IPv6 header (RFC 8200).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace srv6bpf::net {

// Next-header / protocol numbers used in this repository.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIpv6 = 41;     // IPv6-in-IPv6 encap
inline constexpr std::uint8_t kProtoRouting = 43;  // routing ext header (SRH)
inline constexpr std::uint8_t kProtoIcmp6 = 58;
inline constexpr std::uint8_t kProtoNone = 59;

inline constexpr std::size_t kIpv6HeaderSize = 40;

// A 128-bit IPv6 address, stored in network byte order.
class Ipv6Addr {
 public:
  constexpr Ipv6Addr() = default;
  explicit constexpr Ipv6Addr(std::array<std::uint8_t, 16> bytes)
      : bytes_(bytes) {}

  // Parses standard textual form, including "::" compression and
  // trailing-dotted-quad ("::ffff:1.2.3.4"). Returns nullopt on bad input.
  static std::optional<Ipv6Addr> parse(std::string_view text);
  // Like parse() but throws std::invalid_argument; convenient for literals.
  static Ipv6Addr must_parse(std::string_view text);

  // Canonical textual form (RFC 5952: lowercase, longest zero run compressed).
  std::string to_string() const;

  const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }
  std::array<std::uint8_t, 16>& bytes() noexcept { return bytes_; }
  std::span<const std::uint8_t, 16> span() const noexcept { return bytes_; }

  bool is_unspecified() const noexcept;
  // True if the first `prefix_len` bits match `prefix`.
  bool in_prefix(const Ipv6Addr& prefix, int prefix_len) const noexcept;

  // 16-bit group accessors (host byte order), for building addresses.
  std::uint16_t group(int i) const noexcept;
  void set_group(int i, std::uint16_t v) noexcept;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

// Hash functor for Ipv6Addr, suitable for the unordered containers on the
// forwarding hot path (seg6local SID table, caches). Mixes the two 64-bit
// halves with a splitmix64-style finalizer.
struct Ipv6AddrHash {
  std::size_t operator()(const Ipv6Addr& a) const noexcept {
    std::uint64_t lo, hi;
    __builtin_memcpy(&lo, a.bytes().data(), 8);
    __builtin_memcpy(&hi, a.bytes().data() + 8, 8);
    std::uint64_t z = lo ^ (hi * 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

// A routing prefix: address + length.
struct Prefix {
  Ipv6Addr addr;
  int len = 0;  // 0..128

  bool contains(const Ipv6Addr& a) const noexcept {
    return a.in_prefix(addr, len);
  }
  std::string to_string() const {
    return addr.to_string() + "/" + std::to_string(len);
  }
  // Parses "fc00:1::/48"; a bare address means /128.
  static std::optional<Prefix> parse(std::string_view text);
  friend bool operator==(const Prefix&, const Prefix&) = default;
};

// Decoded fixed header.
struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = kProtoNone;
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;

  // Serialises into exactly kIpv6HeaderSize bytes at `out`.
  void write(std::uint8_t* out) const;
  // Returns nullopt if `in` is shorter than a fixed header or version != 6.
  static std::optional<Ipv6Header> parse(std::span<const std::uint8_t> in);
};

// Zero-copy accessors over a serialized IPv6 header. The caller guarantees
// at least kIpv6HeaderSize bytes.
class Ipv6View {
 public:
  explicit Ipv6View(std::uint8_t* p) : p_(p) {}

  std::uint8_t version() const;
  std::uint8_t traffic_class() const;
  std::uint32_t flow_label() const;  // 20 bits
  std::uint16_t payload_length() const;
  void set_payload_length(std::uint16_t v);
  std::uint8_t next_header() const;
  void set_next_header(std::uint8_t v);
  std::uint8_t hop_limit() const;
  void set_hop_limit(std::uint8_t v);
  Ipv6Addr src() const;
  void set_src(const Ipv6Addr& a);
  Ipv6Addr dst() const;
  void set_dst(const Ipv6Addr& a);

  std::uint8_t* raw() noexcept { return p_; }

 private:
  std::uint8_t* p_;
};

}  // namespace srv6bpf::net
