#include "net/buffer_pool.h"

#include <new>

#include "net/burst.h"

namespace srv6bpf::net {

namespace {

struct BufferPoolState {
  BufferPool::Buf* free_head = nullptr;
  bool enabled = true;
  std::uint64_t max_buffers = 0;  // 0 = unbounded (historical behaviour)
  BufferPool::Stats stats;

  ~BufferPoolState() {
    BufferPool::Buf* b = free_head;
    while (b != nullptr) {
      BufferPool::Buf* next = b->next;
      ::operator delete(b);
      b = next;
    }
  }
};

struct BurstPoolState {
  // Freelist is threaded through a side vector-free singly-linked list of
  // nodes; PacketBurst has no spare pointer field, so park cleared bursts in
  // a simple array-of-pointers stack that is itself heap-grown (cold path
  // only: its capacity follows the peak number of concurrently in-flight
  // link deliveries, a handful per link).
  PacketBurst** slots = nullptr;
  std::size_t count = 0;
  std::size_t cap = 0;
  BurstPool::Stats stats;

  ~BurstPoolState() {
    for (std::size_t i = 0; i < count; ++i) delete slots[i];
    delete[] slots;
  }
};

// Construct-on-first-use so cross-TU static init order can't bite; the
// states live until thread exit (handles never outlive the event loops
// that hold them, which die well before then). thread_local, not global:
// each PDES worker gets its own freelist, so the pools stay lock-free under
// parallel runs. A buffer released on a different thread than it was
// acquired on simply lands in the releasing thread's freelist — the pool is
// an allocator cache, not an ownership registry, so migration is harmless
// (stats are per-thread too; the zero-alloc gates all run single-threaded).
BufferPoolState& buf_state() {
  thread_local BufferPoolState s;
  return s;
}

BurstPoolState& burst_state() {
  thread_local BurstPoolState s;
  return s;
}

}  // namespace

BufferPool::Buf* BufferPool::acquire(std::size_t min_cap) {
  BufferPoolState& s = buf_state();
  Buf* b;
  if (min_cap <= kPoolBufCap && s.enabled && s.free_head != nullptr) {
    b = s.free_head;
    s.free_head = b->next;
    --s.stats.pooled;
    ++s.stats.reuses;
  } else {
    const std::size_t cap = min_cap <= kPoolBufCap ? kPoolBufCap : min_cap;
    b = static_cast<Buf*>(::operator new(sizeof(Buf) + cap));
    b->cap = static_cast<std::uint32_t>(cap);
    ++s.stats.allocs;
  }
  b->next = nullptr;
  ++s.stats.outstanding;
  if (s.stats.outstanding > s.stats.high_water)
    s.stats.high_water = s.stats.outstanding;
  return b;
}

void BufferPool::release(Buf* b) noexcept {
  if (b == nullptr) return;
  BufferPoolState& s = buf_state();
  // Saturate: a buffer acquired on one thread may be released on another
  // (PDES teardown runs on the master thread), and wrapping this thread's
  // outstanding count to 2^64 would jam try_admit() shut forever. The
  // counter is only exact on threads whose acquires and releases pair up —
  // which the serial exhaustion scenarios guarantee by running first.
  if (s.stats.outstanding > 0) --s.stats.outstanding;
  if (s.enabled && b->cap == kPoolBufCap) {
    b->next = s.free_head;
    s.free_head = b;
    ++s.stats.pooled;
  } else {
    ::operator delete(b);
  }
}

void BufferPool::set_enabled(bool on) noexcept { buf_state().enabled = on; }

bool BufferPool::enabled() noexcept { return buf_state().enabled; }

void BufferPool::set_max_buffers(std::uint64_t n) noexcept {
  buf_state().max_buffers = n;
}

std::uint64_t BufferPool::max_buffers() noexcept {
  return buf_state().max_buffers;
}

bool BufferPool::try_admit() noexcept {
  BufferPoolState& s = buf_state();
  if (s.max_buffers != 0 && s.stats.outstanding >= s.max_buffers) {
    ++s.stats.admission_fail;
    return false;
  }
  return true;
}

BufferPool::Stats BufferPool::stats() noexcept { return buf_state().stats; }

void BufferPool::reset_stats() noexcept {
  BufferPoolState& s = buf_state();
  s.stats.allocs = 0;
  s.stats.reuses = 0;
  s.stats.admission_fail = 0;
  s.stats.high_water = s.stats.outstanding;
}

void BufferPool::trim() noexcept {
  BufferPoolState& s = buf_state();
  Buf* b = s.free_head;
  while (b != nullptr) {
    Buf* next = b->next;
    ::operator delete(b);
    b = next;
  }
  s.free_head = nullptr;
  s.stats.pooled = 0;
}

PacketBurst* BurstPool::acquire() {
  BurstPoolState& s = burst_state();
  if (BufferPool::enabled() && s.count > 0) {
    ++s.stats.reuses;
    --s.stats.pooled;
    return s.slots[--s.count];
  }
  ++s.stats.allocs;
  return new PacketBurst();
}

void BurstPool::release(PacketBurst* b) noexcept {
  if (b == nullptr) return;
  b->clear();
  BurstPoolState& s = burst_state();
  if (!BufferPool::enabled()) {
    delete b;
    return;
  }
  if (s.count == s.cap) {  // cold path: grow the parking stack
    const std::size_t new_cap = s.cap == 0 ? 16 : s.cap * 2;
    PacketBurst** grown = new PacketBurst*[new_cap];
    for (std::size_t i = 0; i < s.count; ++i) grown[i] = s.slots[i];
    delete[] s.slots;
    s.slots = grown;
    s.cap = new_cap;
  }
  s.slots[s.count++] = b;
  ++s.stats.pooled;
}

void BurstPool::Handle::reset() noexcept {
  if (b_ != nullptr) {
    BurstPool::release(b_);
    b_ = nullptr;
  }
}

BurstPool::Stats BurstPool::stats() noexcept { return burst_state().stats; }

void BurstPool::reset_stats() noexcept {
  BurstPoolState& s = burst_state();
  s.stats.allocs = 0;
  s.stats.reuses = 0;
}

void BurstPool::trim() noexcept {
  BurstPoolState& s = burst_state();
  for (std::size_t i = 0; i < s.count; ++i) delete s.slots[i];
  s.count = 0;
  s.stats.pooled = 0;
}

}  // namespace srv6bpf::net
