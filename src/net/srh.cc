#include "net/srh.h"

#include <cstring>
#include <stdexcept>

#include "util/byteorder.h"

namespace srv6bpf::net {

bool SrhView::valid() const noexcept {
  if (avail_ < kSrhFixedSize) return false;
  if (routing_type() != kSrhRoutingType) return false;
  const std::size_t total = total_len();
  if (total > avail_) return false;
  if (kSrhFixedSize + num_segments() * kSegmentSize > total) return false;
  if (segments_left() > last_entry()) return false;
  return true;
}

std::uint16_t SrhView::tag() const noexcept { return load_be16(p_ + 6); }
void SrhView::set_tag(std::uint16_t v) noexcept { store_be16(p_ + 6, v); }

Ipv6Addr SrhView::segment(std::size_t i) const noexcept {
  Ipv6Addr a;
  std::memcpy(a.bytes().data(), p_ + kSrhFixedSize + i * kSegmentSize, 16);
  return a;
}

void SrhView::set_segment(std::size_t i, const Ipv6Addr& a) noexcept {
  std::memcpy(p_ + kSrhFixedSize + i * kSegmentSize, a.bytes().data(), 16);
}

bool SrhView::tlvs_well_formed() const noexcept {
  const auto area = tlv_area();
  std::size_t i = 0;
  while (i < area.size()) {
    const std::uint8_t type = area[i];
    if (type == kTlvPad1) {
      ++i;
      continue;
    }
    if (i + 2 > area.size()) return false;
    const std::uint8_t len = area[i + 1];
    if (i + 2 + len > area.size()) return false;
    i += 2 + len;
  }
  return true;
}

int SrhView::find_tlv(std::uint8_t type) const noexcept {
  const auto area = tlv_area();
  std::size_t i = 0;
  while (i < area.size()) {
    const std::uint8_t t = area[i];
    if (t == type) return static_cast<int>(tlv_offset() + i);
    if (t == kTlvPad1) {
      ++i;
      continue;
    }
    if (i + 2 > area.size()) return -1;
    i += 2u + area[i + 1];
  }
  return -1;
}

std::vector<std::uint8_t> build_srh(std::uint8_t next_header,
                                    std::span<const Ipv6Addr> segments,
                                    std::span<const std::uint8_t> tlvs,
                                    std::uint16_t tag, std::uint8_t flags) {
  if (segments.empty()) throw std::invalid_argument("SRH needs >= 1 segment");
  if (segments.size() > 255)
    throw std::invalid_argument("too many segments");
  const std::size_t total =
      kSrhFixedSize + segments.size() * kSegmentSize + tlvs.size();
  if (total % 8 != 0)
    throw std::invalid_argument("SRH length must be a multiple of 8 (pad TLVs)");
  if (total / 8 - 1 > 255) throw std::invalid_argument("SRH too large");

  std::vector<std::uint8_t> out(total, 0);
  out[0] = next_header;
  out[1] = static_cast<std::uint8_t>(total / 8 - 1);
  out[2] = kSrhRoutingType;
  out[3] = static_cast<std::uint8_t>(segments.size() - 1);  // segments_left
  out[4] = static_cast<std::uint8_t>(segments.size() - 1);  // last_entry
  out[5] = flags;
  store_be16(out.data() + 6, tag);
  // Travel order -> reverse storage: segment[0] is the final destination.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::memcpy(out.data() + kSrhFixedSize +
                    (segments.size() - 1 - i) * kSegmentSize,
                segments[i].bytes().data(), 16);
  }
  if (!tlvs.empty())
    std::memcpy(out.data() + kSrhFixedSize + segments.size() * kSegmentSize,
                tlvs.data(), tlvs.size());
  return out;
}

std::vector<std::uint8_t> build_dm_tlv(std::uint64_t tx_tstamp_ns,
                                       std::uint8_t flags) {
  std::vector<std::uint8_t> tlv(kDmTlvSize, 0);
  tlv[0] = kTlvDelayMeasurement;
  tlv[1] = kDmTlvSize - 2;
  tlv[2] = flags;
  store_be64(tlv.data() + kDmTlvTxOff, tx_tstamp_ns);
  return tlv;
}

std::vector<std::uint8_t> build_controller_tlv(std::uint8_t type,
                                               const Ipv6Addr& addr,
                                               std::uint16_t port) {
  std::vector<std::uint8_t> tlv(kControllerTlvSize, 0);
  tlv[0] = type;
  tlv[1] = kControllerTlvSize - 2;
  std::memcpy(tlv.data() + kControllerTlvAddrOff, addr.bytes().data(), 16);
  store_be16(tlv.data() + kControllerTlvPortOff, port);
  return tlv;
}

std::vector<std::uint8_t> build_padn(std::size_t n) {
  if (n == 1) return {kTlvPad1};
  if (n < 2) return {};
  std::vector<std::uint8_t> tlv(n, 0);
  tlv[0] = kTlvPadN;
  tlv[1] = static_cast<std::uint8_t>(n - 2);
  return tlv;
}

}  // namespace srv6bpf::net
