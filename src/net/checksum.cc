#include "net/checksum.h"

#include "util/byteorder.h"

namespace srv6bpf::net {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += load_be16(data.data() + i);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t transport_checksum(const Ipv6Addr& src, const Ipv6Addr& dst,
                                 std::uint8_t proto,
                                 std::span<const std::uint8_t> payload) {
  std::uint32_t sum = 0;
  sum = checksum_partial(src.span(), sum);
  sum = checksum_partial(dst.span(), sum);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  sum += len >> 16;
  sum += len & 0xffff;
  sum += proto;
  sum = checksum_partial(payload, sum);
  const std::uint16_t c = checksum_finish(sum);
  // RFC 768: an all-zero transmitted checksum means "none"; 0 computes to
  // 0xffff on the wire.
  return c == 0 ? 0xffff : c;
}

bool transport_checksum_ok(const Ipv6Addr& src, const Ipv6Addr& dst,
                           std::uint8_t proto,
                           std::span<const std::uint8_t> payload) {
  std::uint32_t sum = 0;
  sum = checksum_partial(src.span(), sum);
  sum = checksum_partial(dst.span(), sum);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  sum += len >> 16;
  sum += len & 0xffff;
  sum += proto;
  sum = checksum_partial(payload, sum);
  return checksum_finish(sum) == 0;
}

}  // namespace srv6bpf::net
