// Debug helpers: hex dumps of packet buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace srv6bpf {

// Classic 16-bytes-per-line hex + ASCII dump.
std::string hexdump(std::span<const std::uint8_t> data);

// Compact "deadbeef..." hex string.
std::string hex(std::span<const std::uint8_t> data);

}  // namespace srv6bpf
