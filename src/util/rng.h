// Deterministic, seedable random number generation.
//
// Everything stochastic in the simulator (netem jitter, probing choices,
// ECMP tie-breaking) draws from an explicitly seeded Rng so that tests and
// benchmark tables are exactly reproducible run-to-run.
#pragma once

#include <cstdint>

namespace srv6bpf {

// xoshiro256** — small, fast, high-quality; good enough for simulation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  std::uint64_t next_u64() noexcept;
  std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }
  // Uniform in [0, 1).
  double next_double() noexcept;
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;
  // Normal distribution via Box-Muller (mean, stddev).
  double normal(double mean, double stddev) noexcept;
  // Bernoulli trial with probability p.
  bool chance(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace srv6bpf
