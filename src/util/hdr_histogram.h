// HdrHistogram: fixed-memory log-linear latency histogram with mergeable
// shards and quantile queries — the simulator's equivalent of the kernel's
// bucketed latency_hist tracer and of HdrHistogram proper.
//
// Values (nanoseconds in every current user) are bucketed log-linearly: the
// first 2^kSubBits values are exact, and every further power-of-two octave is
// split into 2^(kSubBits-1) linear sub-buckets, bounding the relative
// quantization error at 2^-(kSubBits-1) (~3% at the default 6 sub-bucket
// bits) across the full 64-bit range. Count storage is a fixed inline array:
// recording is an index computation plus an increment — no allocation, no
// rehashing, no data-dependent branches beyond the bit scan — so the
// histogram can sit on the per-packet delivery path of the zero-allocation
// steady state (bench_slo_soak gates this).
//
// Histograms merge with operator+= exactly like sim::NodeStats shards:
// bucket-wise sums plus min/max/total folds. Merging is associative and
// commutative (tests/slo_test.cc checks order-invariance), so per-CPU or
// per-phase shards can be combined in any order without changing any
// reported quantile.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace srv6bpf::util {

class HdrHistogram {
 public:
  // Linear sub-bucket resolution: 2^kSubBits slots in the exact range and
  // per octave above it (upper half). 6 bits = 64 slots, <= 1/32 (~3.1%)
  // relative quantization error on any recorded value.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  // Octaves above the exact range needed to cover every uint64 value.
  static constexpr unsigned kOctaves = 64 - kSubBits;
  static constexpr std::size_t kSlots =
      static_cast<std::size_t>(kSubCount) + kOctaves * (kSubCount / 2);

  constexpr HdrHistogram() = default;

  // Records one (or `n`) observation(s) of `v`. Never allocates or fails;
  // every uint64 value has a slot.
  void record(std::uint64_t v) noexcept { record_n(v, 1); }
  void record_n(std::uint64_t v, std::uint64_t n) noexcept {
    counts_[slot_index(v)] += n;
    count_ += n;
    sum_ += v * n;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  // Shard merge: bucket-wise sum. Associative and commutative.
  HdrHistogram& operator+=(const HdrHistogram& o) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    return *this;
  }

  void reset() noexcept { *this = HdrHistogram{}; }

  std::uint64_t count() const noexcept { return count_; }
  // Exact (unbucketed) extremes and mean over everything recorded.
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1]: the upper bound of the bucket holding the
  // ceil(q * count)-th observation (rank 1 = lowest). Deterministic for a
  // given multiset of recordings regardless of insertion or merge order;
  // exact when every recorded value is below 2^kSubBits or equals a bucket
  // upper bound. Returns 0 on an empty histogram; the result is clamped to
  // the exact max() so p100 never exceeds an observed value.
  std::uint64_t quantile(double q) const noexcept;
  // Convenience percentile forms the SLO reports use.
  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t p999() const noexcept { return quantile(0.999); }

  // Bucketing maths, exposed for tests: the slot an observation lands in and
  // the highest value mapping to that slot.
  static std::size_t slot_index(std::uint64_t v) noexcept {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned octave = msb - (kSubBits - 1);  // 1-based above exact range
    const std::uint64_t sub = v >> octave;  // in [kSubCount/2, kSubCount)
    return static_cast<std::size_t>(kSubCount +
                                    (octave - 1) * (kSubCount / 2) +
                                    (sub - kSubCount / 2));
  }
  static std::uint64_t slot_upper_bound(std::size_t slot) noexcept {
    if (slot < kSubCount) return slot;
    const unsigned octave =
        static_cast<unsigned>((slot - kSubCount) / (kSubCount / 2)) + 1;
    const std::uint64_t sub =
        (slot - kSubCount) % (kSubCount / 2) + kSubCount / 2;
    return ((sub + 1) << octave) - 1;
  }

 private:
  std::uint64_t counts_[kSlots] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace srv6bpf::util
