// alloc_hooks: a global operator-new/delete call counter for bench and test
// builds — how bench_hotpath and tests/alloc_test.cc *prove* the forwarding
// path's zero-allocation steady state instead of asserting it.
//
// The library ships only weak, inactive stubs (alloc_hooks.cc): linking the
// core library never changes allocator behaviour. Binaries that want real
// counting additionally compile bench/alloc_hooks_impl.cc, whose strong
// definitions override the stubs and install counting replacements of the
// global operator new/delete family. Callers must therefore check
// alloc_hooks_active() before trusting the counters.
//
// Counting is calls, not bytes: the zero-alloc gate is "no allocator
// round-trips per forwarded packet", the same property DPDK's mempools and
// the kernel's skb recycling buy, and byte sizes would only blur it.
#pragma once

#include <cstdint>

namespace srv6bpf::util {

struct AllocCounters {
  std::uint64_t news = 0;     // operator new / new[] calls (all variants)
  std::uint64_t deletes = 0;  // operator delete / delete[] calls
};

// true when bench/alloc_hooks_impl.cc is linked into this binary.
bool alloc_hooks_active() noexcept;
// Monotonic since process start; {0, 0} when the hooks are inactive.
AllocCounters alloc_counters() noexcept;

}  // namespace srv6bpf::util
