#include "util/alloc_hooks.h"

// Weak fallbacks: the no-op half of the alloc_hooks contract. A binary that
// also compiles bench/alloc_hooks_impl.cc gets that TU's strong definitions
// (plus the counting operator new/delete replacements) instead; everything
// else links these and pays nothing.

namespace srv6bpf::util {

__attribute__((weak)) bool alloc_hooks_active() noexcept { return false; }

__attribute__((weak)) AllocCounters alloc_counters() noexcept { return {}; }

}  // namespace srv6bpf::util
