#include "util/hexdump.h"

#include <cctype>

namespace srv6bpf {
namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}

std::string hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string hexdump(std::span<const std::uint8_t> data) {
  std::string out;
  for (std::size_t line = 0; line < data.size(); line += 16) {
    // Offset column.
    for (int shift = 12; shift >= 0; shift -= 4)
      out.push_back(kHexDigits[(line >> shift) & 0xf]);
    out += "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (line + i < data.size()) {
        out.push_back(kHexDigits[data[line + i] >> 4]);
        out.push_back(kHexDigits[data[line + i] & 0xf]);
      } else {
        out += "  ";
      }
      out.push_back(i == 7 ? ' ' : ' ');
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && line + i < data.size(); ++i) {
      const char c = static_cast<char>(data[line + i]);
      out.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out += "|\n";
  }
  return out;
}

}  // namespace srv6bpf
