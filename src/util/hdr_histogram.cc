#include "util/hdr_histogram.h"

#include <cmath>

namespace srv6bpf::util {

std::uint64_t HdrHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based from the lowest value.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const std::uint64_t upper = slot_upper_bound(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

}  // namespace srv6bpf::util
