#include "util/lpm_trie.h"

namespace srv6bpf::util::detail {

namespace {

// Terminal position of a prefix: node depth (full bytes walked) and the
// significant bit count within that node's byte. plen 0 terminates at the
// root with bits 0 (covers everything); otherwise bits is 1..8.
struct Terminal {
  std::uint32_t depth;
  std::uint8_t bits;
};

Terminal terminal_of(std::uint32_t plen) noexcept {
  if (plen == 0) return {0, 0};
  return {(plen - 1) / 8, static_cast<std::uint8_t>(plen - ((plen - 1) / 8) * 8)};
}

// High-`bits` mask of a byte (bits = 0 -> 0, masking the byte away).
std::uint8_t high_mask(std::uint8_t bits) noexcept {
  return bits == 0 ? 0 : static_cast<std::uint8_t>(0xff << (8 - bits));
}

}  // namespace

LpmCore::LpmCore(std::uint32_t key_bytes)
    : key_bytes_(key_bytes), root_(std::make_unique<Node>()) {}

LpmCore::~LpmCore() = default;

LpmCore::Node* LpmCore::walk(const std::uint8_t* key, std::uint32_t plen,
                             bool create, std::uint8_t* byte,
                             std::uint8_t* bits) const {
  const Terminal t = terminal_of(plen);
  *bits = t.bits;
  *byte = t.bits == 0 ? 0
                      : static_cast<std::uint8_t>(key[t.depth] &
                                                  high_mask(t.bits));
  Node* node = root_.get();
  for (std::uint32_t d = 0; d < t.depth; ++d) {
    auto& child = node->child[key[d]];
    if (!child) {
      if (!create) return nullptr;
      child = std::make_unique<Node>();
      ++const_cast<LpmCore*>(this)->node_count_;
    }
    node = child.get();
  }
  return node;
}

LpmCore::Ref LpmCore::insert(const std::uint8_t* key, std::uint32_t plen) {
  std::uint8_t byte, bits;
  Node* node = walk(key, plen, /*create=*/true, &byte, &bits);
  for (const Local& l : node->local)
    if (l.byte == byte && l.bits == bits) return {l.id, false};

  std::uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = next_id_++;
  }
  node->local.push_back({byte, bits, id});
  ++size_;

  // Prefix expansion: fan the new prefix out over the slots it covers,
  // longest local prefix winning per slot. Distinct same-length prefixes
  // cover disjoint ranges, so `bits` comparisons never tie.
  const std::uint32_t span = 1u << (8 - bits);
  for (std::uint32_t s = byte; s < static_cast<std::uint32_t>(byte) + span;
       ++s) {
    if (node->slot_id[s] == kNoEntry || node->slot_bits[s] < bits) {
      node->slot_id[s] = id;
      node->slot_bits[s] = bits;
    }
  }
  return {id, true};
}

std::uint32_t LpmCore::find_exact(const std::uint8_t* key,
                                  std::uint32_t plen) const {
  std::uint8_t byte, bits;
  const Node* node = walk(key, plen, /*create=*/false, &byte, &bits);
  if (node == nullptr) return kNoEntry;
  for (const Local& l : node->local)
    if (l.byte == byte && l.bits == bits) return l.id;
  return kNoEntry;
}

std::uint32_t LpmCore::erase(const std::uint8_t* key, std::uint32_t plen) {
  // One descent, recording the path for pruning: path[d] is the depth-d
  // node, reached from path[d-1] via key[d-1].
  const Terminal t = terminal_of(plen);
  const std::uint8_t bits = t.bits;
  const std::uint8_t byte =
      bits == 0 ? 0
                : static_cast<std::uint8_t>(key[t.depth] & high_mask(bits));
  std::vector<Node*> path(t.depth + 1);
  path[0] = root_.get();
  for (std::uint32_t d = 0; d < t.depth; ++d) {
    path[d + 1] = path[d]->child[key[d]].get();
    if (path[d + 1] == nullptr) return kNoEntry;
  }
  Node* node = path[t.depth];
  std::uint32_t id = kNoEntry;
  for (std::size_t i = 0; i < node->local.size(); ++i) {
    if (node->local[i].byte == byte && node->local[i].bits == bits) {
      id = node->local[i].id;
      node->local[i] = node->local.back();
      node->local.pop_back();
      break;
    }
  }
  if (id == kNoEntry) return kNoEntry;
  free_ids_.push_back(id);
  --size_;

  // Un-expand: recompute the erased prefix's slots from the node's
  // remaining local prefixes (the next-longest cover, or empty).
  const std::uint32_t span = 1u << (8 - bits);
  for (std::uint32_t s = byte; s < static_cast<std::uint32_t>(byte) + span;
       ++s) {
    const Local* best = nullptr;
    for (const Local& l : node->local)
      if (covers(l, static_cast<std::uint8_t>(s)) &&
          (best == nullptr || l.bits > best->bits))
        best = &l;
    node->slot_id[s] = best ? best->id : kNoEntry;
    node->slot_bits[s] = best ? best->bits : 0;
  }

  // Prune: a node with no local prefixes and no children contributes
  // nothing — free it and walk up (each stride node is ~3.3 KB, so erase
  // churn must not accrete them). The root always stays.
  for (std::uint32_t d = t.depth; d > 0; --d) {
    Node* n = path[d];
    if (!n->local.empty()) break;
    bool has_child = false;
    for (const auto& c : n->child)
      if (c) {
        has_child = true;
        break;
      }
    if (has_child) break;
    path[d - 1]->child[key[d - 1]].reset();
    --node_count_;
  }
  return id;
}

std::uint32_t LpmCore::lookup(const std::uint8_t* key) const {
  const Node* node = root_.get();
  std::uint32_t best = kNoEntry;
  for (std::uint32_t d = 0; d < key_bytes_; ++d) {
    const std::uint8_t b = key[d];
    if (node->slot_id[b] != kNoEntry) best = node->slot_id[b];
    node = node->child[b].get();
    if (node == nullptr) break;
  }
  return best;
}

void LpmCore::clear() {
  root_ = std::make_unique<Node>();
  free_ids_.clear();
  next_id_ = 0;
  size_ = 0;
  node_count_ = 1;
}

}  // namespace srv6bpf::util::detail
