// Byte-order helpers for on-wire packet formats.
//
// All multi-byte fields in IPv6/SRH/UDP/TCP headers are big-endian on the
// wire. These helpers read/write integers at unaligned byte offsets without
// invoking undefined behaviour (memcpy-based, optimised away by compilers).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace srv6bpf {

constexpr std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}
constexpr std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
}
constexpr std::uint64_t bswap64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(bswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         bswap32(static_cast<std::uint32_t>(v >> 32));
}

constexpr bool kHostIsLittleEndian = std::endian::native == std::endian::little;

constexpr std::uint16_t host_to_be16(std::uint16_t v) noexcept {
  return kHostIsLittleEndian ? bswap16(v) : v;
}
constexpr std::uint32_t host_to_be32(std::uint32_t v) noexcept {
  return kHostIsLittleEndian ? bswap32(v) : v;
}
constexpr std::uint64_t host_to_be64(std::uint64_t v) noexcept {
  return kHostIsLittleEndian ? bswap64(v) : v;
}
constexpr std::uint16_t be16_to_host(std::uint16_t v) noexcept {
  return host_to_be16(v);
}
constexpr std::uint32_t be32_to_host(std::uint32_t v) noexcept {
  return host_to_be32(v);
}
constexpr std::uint64_t be64_to_host(std::uint64_t v) noexcept {
  return host_to_be64(v);
}

// Unaligned big-endian loads/stores into byte buffers.
inline std::uint8_t load_u8(const std::uint8_t* p) noexcept { return *p; }
inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return be16_to_host(v);
}
inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return be32_to_host(v);
}
inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return be64_to_host(v);
}
inline void store_u8(std::uint8_t* p, std::uint8_t v) noexcept { *p = v; }
inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  v = host_to_be16(v);
  std::memcpy(p, &v, sizeof v);
}
inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  v = host_to_be32(v);
  std::memcpy(p, &v, sizeof v);
}
inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  v = host_to_be64(v);
  std::memcpy(p, &v, sizeof v);
}

// Host-endian unaligned accessors (used by the eBPF VM for MEM loads/stores;
// eBPF memory accesses are little-endian per the ISA on LE hosts).
template <typename T>
inline T load_unaligned(const void* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
template <typename T>
inline void store_unaligned(void* p, T v) noexcept {
  std::memcpy(p, &v, sizeof v);
}

}  // namespace srv6bpf
