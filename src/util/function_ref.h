// FunctionRef: a non-owning callable reference (the shape of C++26's
// std::function_ref).
//
// The burst pipeline threads per-chunk callbacks (run_burst's prep hook, the
// seg6 per-packet epilogue) through call boundaries; std::function would
// heap-allocate each of those closures once per burst — measurable allocator
// traffic at line rate and a violation of the zero-allocation steady state.
// FunctionRef is two words (object pointer + trampoline) and never owns: it
// is only valid while the referenced callable lives, which for these
// call-scope hooks is the enclosing full expression.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace srv6bpf::util {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const noexcept { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace srv6bpf::util
