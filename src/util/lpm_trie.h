// Multibit-stride longest-prefix-match trie — the shared LPM engine behind
// seg6::Fib route lookups and BPF_MAP_TYPE_LPM_TRIE (ebpf::LpmTrieMap).
//
// The trie consumes the key 8 bits at a time: each node is one byte level
// with a 256-way child array plus, per slot, the id of the best prefix
// *terminating at this node* whose expansion covers that slot. Prefix
// expansion happens at insert time: a prefix of length L lands in the node
// at depth (L-1)/8 and is fanned out over the 2^(8*(depth+1)-L) slots it
// covers, each slot keeping the longest covering local prefix (expansions of
// distinct same-length prefixes are disjoint, so there are never ties).
// A lookup is then a plain byte-indexed descent that remembers the last
// non-empty slot it passed — a /48 route costs 6 node hops instead of the
// 48 per-bit node hops of the classic binary trie, and a full 128-bit miss
// costs at most 16. Exact longest-prefix semantics are preserved
// (differential-tested against BitwiseLpmTrie below in tests/lpm_diff_test).
//
// Complexity (n = key bytes, 16 for IPv6):
//   lookup      O(n) node hops, worst case; typically ceil(plen/8) + 1
//   insert      O(plen/8) descent + O(2^(8 - plen%8)) slot expansion
//   erase       O(plen/8) descent + O(span * local prefixes) slot recompute
//   memory      one ~3.3 KB node per distinct populated byte level — the
//               classic multibit-stride trade: memory for lookup hops
//
// Thread/context model: none of this is synchronized. In the simulator every
// structure is driven from the single-threaded event loop; the multi-core
// Node's CpuContexts interleave on one thread and share the table read-only
// on the hot path (mutation happens at control-plane time). What IS
// per-context is the one-entry cache layered above the Fib (seg6::FibCacheSlot),
// which this engine deliberately knows nothing about.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

namespace srv6bpf::util {

namespace detail {

// Type-erased trie topology: nodes, slot expansion and entry-id allocation.
// Values live in the typed wrapper (LpmTrie<V>); the core only hands out
// dense ids (freed ids are reused) so the wrapper can use id-indexed stable
// storage. Out-of-line in lpm_trie.cc — everything here is value-type
// independent.
class LpmCore {
 public:
  // Sentinel id: "no entry".
  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  // `key_bytes` fixes the key width (and max prefix length, key_bytes * 8).
  explicit LpmCore(std::uint32_t key_bytes);
  ~LpmCore();
  LpmCore(const LpmCore&) = delete;
  LpmCore& operator=(const LpmCore&) = delete;

  struct Ref {
    std::uint32_t id = kNoEntry;
    bool created = false;  // false: the exact prefix already existed
  };

  // Inserts prefix (key, plen) or finds the existing exact entry. Bits of
  // `key` beyond `plen` are ignored. Requires plen <= key_bytes * 8.
  Ref insert(const std::uint8_t* key, std::uint32_t plen);

  // Exact-prefix find (not LPM): id of the entry inserted with this same
  // (key, plen), or kNoEntry.
  std::uint32_t find_exact(const std::uint8_t* key, std::uint32_t plen) const;

  // Removes the exact prefix, recomputing the covered slots from the
  // remaining prefixes of its node and pruning nodes left with no local
  // prefixes and no children (nodes are ~3.3 KB — insert/erase churn must
  // not accrete them). Returns the freed id, or kNoEntry.
  std::uint32_t erase(const std::uint8_t* key, std::uint32_t plen);

  // Longest-prefix match over the full key_bytes key: id of the most
  // specific stored prefix covering `key`, or kNoEntry.
  std::uint32_t lookup(const std::uint8_t* key) const;

  std::size_t size() const noexcept { return size_; }
  std::uint32_t key_bytes() const noexcept { return key_bytes_; }
  std::uint32_t max_plen() const noexcept { return key_bytes_ * 8; }
  // Live trie nodes including the root — observability for the pruning
  // behaviour (an empty trie is exactly 1).
  std::size_t node_count() const noexcept { return node_count_; }
  void clear();

 private:
  // A prefix terminating at a node: `bits` significant high bits of `byte`
  // (1..8; 0 only for the zero-length prefix, which terminates at the root
  // and covers every slot).
  struct Local {
    std::uint8_t byte = 0;
    std::uint8_t bits = 0;
    std::uint32_t id = kNoEntry;
  };

  struct Node {
    std::unique_ptr<Node> child[256];
    // Per-slot: best covering local prefix (id + its bit count, for the
    // longest-wins comparison during expansion).
    std::uint32_t slot_id[256];
    std::uint8_t slot_bits[256];
    std::vector<Local> local;

    Node() {
      std::memset(slot_bits, 0, sizeof slot_bits);
      for (auto& s : slot_id) s = kNoEntry;
    }
  };

  static bool covers(const Local& l, std::uint8_t s) noexcept {
    return l.bits == 0 ||
           static_cast<std::uint8_t>((l.byte ^ s) >> (8 - l.bits)) == 0;
  }

  // Walks the full-byte levels of (key, plen); creates nodes when `create`.
  // On return *byte / *bits describe the terminal Local. nullptr when the
  // path is missing (and !create).
  Node* walk(const std::uint8_t* key, std::uint32_t plen, bool create,
             std::uint8_t* byte, std::uint8_t* bits) const;

  std::uint32_t key_bytes_;
  std::unique_ptr<Node> root_;
  std::vector<std::uint32_t> free_ids_;
  std::uint32_t next_id_ = 0;
  std::size_t size_ = 0;
  std::size_t node_count_ = 1;  // root
};

}  // namespace detail

// The typed multibit-stride LPM trie. V must be default-constructible and
// move-assignable; values have stable addresses for the lifetime of their
// entry (id-indexed deque), which is what lets ebpf::LpmTrieMap hand out
// kernel-style stable value pointers.
template <typename V>
class LpmTrie {
 public:
  explicit LpmTrie(std::uint32_t key_bytes = 16) : core_(key_bytes) {}

  // Finds the exact prefix or inserts a default-constructed value for it.
  // `created` reports which happened. Bits beyond `plen` are ignored.
  V* find_or_insert(const std::uint8_t* key, std::uint32_t plen,
                    bool& created) {
    const detail::LpmCore::Ref ref = core_.insert(key, plen);
    created = ref.created;
    if (ref.created) {
      if (ref.id >= values_.size()) values_.resize(ref.id + 1);
      values_[ref.id] = V{};  // reused ids start fresh
    }
    return &values_[ref.id];
  }

  // Exact-prefix find (not LPM); nullptr when absent.
  V* find_exact(const std::uint8_t* key, std::uint32_t plen) {
    const std::uint32_t id = core_.find_exact(key, plen);
    return id == detail::LpmCore::kNoEntry ? nullptr : &values_[id];
  }
  const V* find_exact(const std::uint8_t* key, std::uint32_t plen) const {
    return const_cast<LpmTrie*>(this)->find_exact(key, plen);
  }

  // Longest-prefix match over the full key; nullptr when no stored prefix
  // covers it. The returned pointer stays valid until the entry is erased
  // or the trie cleared/destroyed.
  V* lookup(const std::uint8_t* key) {
    const std::uint32_t id = core_.lookup(key);
    return id == detail::LpmCore::kNoEntry ? nullptr : &values_[id];
  }
  const V* lookup(const std::uint8_t* key) const {
    return const_cast<LpmTrie*>(this)->lookup(key);
  }

  // Removes the exact prefix; false when it was not present.
  bool erase(const std::uint8_t* key, std::uint32_t plen) {
    const std::uint32_t id = core_.erase(key, plen);
    if (id == detail::LpmCore::kNoEntry) return false;
    values_[id] = V{};  // release the value's resources eagerly
    return true;
  }

  std::size_t size() const noexcept { return core_.size(); }
  std::uint32_t key_bytes() const noexcept { return core_.key_bytes(); }
  std::uint32_t max_plen() const noexcept { return core_.max_plen(); }
  std::size_t node_count() const noexcept { return core_.node_count(); }

  void clear() {
    core_.clear();
    values_.clear();
  }

 private:
  detail::LpmCore core_;
  std::deque<V> values_;  // id-indexed; deque growth never moves elements
};

// The classic one-bit-per-node binary trie this engine replaced, preserved
// as the reference oracle: tests/lpm_diff_test.cc differential-tests
// LpmTrie against it over randomized prefix sets, and bench/lpm_sweep.cc
// measures the speedup against it. Same semantics, one node hop per prefix
// bit.
template <typename V>
class BitwiseLpmTrie {
 public:
  explicit BitwiseLpmTrie(std::uint32_t key_bytes = 16)
      : key_bytes_(key_bytes) {}

  V* find_or_insert(const std::uint8_t* key, std::uint32_t plen,
                    bool& created) {
    Node* node = &root_;
    for (std::uint32_t i = 0; i < plen; ++i) {
      auto& child = node->child[bit_at(key, i)];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    created = !node->value;
    if (created) {
      node->value = std::make_unique<V>();
      ++size_;
    }
    return node->value.get();
  }

  V* find_exact(const std::uint8_t* key, std::uint32_t plen) {
    Node* node = &root_;
    for (std::uint32_t i = 0; i < plen && node; ++i)
      node = node->child[bit_at(key, i)].get();
    return node ? node->value.get() : nullptr;
  }

  V* lookup(const std::uint8_t* key) {
    Node* node = &root_;
    V* best = root_.value.get();
    for (std::uint32_t i = 0; i < key_bytes_ * 8; ++i) {
      node = node->child[bit_at(key, i)].get();
      if (node == nullptr) break;
      if (node->value) best = node->value.get();
    }
    return best;
  }
  const V* lookup(const std::uint8_t* key) const {
    return const_cast<BitwiseLpmTrie*>(this)->lookup(key);
  }

  bool erase(const std::uint8_t* key, std::uint32_t plen) {
    Node* node = &root_;
    for (std::uint32_t i = 0; i < plen && node; ++i)
      node = node->child[bit_at(key, i)].get();
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::unique_ptr<V> value;  // null for intermediate nodes
  };
  static int bit_at(const std::uint8_t* key, std::uint32_t i) noexcept {
    return (key[i / 8] >> (7 - i % 8)) & 1;
  }

  std::uint32_t key_bytes_;
  Node root_;
  std::size_t size_ = 0;
};

}  // namespace srv6bpf::util
