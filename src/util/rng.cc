#include "util/rng.h"

#include <cmath>

namespace srv6bpf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  return lo + next_u64() % span;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-12);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace srv6bpf
