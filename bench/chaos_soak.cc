// Chaos soak — fault injection under load, with determinism, conservation
// and goodput as the gates.
//
// Runs the generated ring topology (sim/pdes_topo.h: 8 segments x 5 Xeon
// routers + src + sink = 56 nodes) under saturating per-segment UDP load
// while a seeded sim::FaultInjector schedule fires: per-packet bit
// corruption on the ingress and cross links, cross-link flaps, and mid-chain
// router crashes with the control-plane re-installer (backoff + jitter)
// bringing the config back. Each (fault_rate, threads) cell reruns the SAME
// (seed, schedule) pair, so the gates are:
//
//   - digest_match (hard, self-gated AND a floor in check_history.py): for
//     every fault rate, the PDES runs at 1 and 8 worker threads produce the
//     identical delivery digest — chaos is reproducible, bit for bit.
//   - violations == 0 (hard): the sim::InvariantAuditor's conservation
//     ledger balances at every audit point and drains to exactly zero
//     in-flight packets — no packet is created or lost outside the
//     accounted drop reasons, crashes and corruption included.
//   - goodput floor (hard): at the 1% fault rate the delivered fraction
//     stays above kGoodputFloor — faults degrade the service, they must
//     not collapse it.
//
// A final serial scenario caps the BufferPool (sim::FaultInjector::
// cap_buffer_pool) under an over-driven link and gates that exhaustion
// degrades gracefully: admission failures surface as accounted
// drops_no_buffer at the source, the run never aborts, and the ledger still
// drains to zero.
//
//   ./bench_chaos_soak              # full windows + table
//   ./bench_chaos_soak --quick      # short windows (CI smoke)
//   ./bench_chaos_soak --json-only  # no table, just BENCH_chaos.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "net/buffer_pool.h"
#include "sim/fault_injector.h"
#include "sim/invariant_auditor.h"
#include "sim/pdes_topo.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

constexpr double kPerSegmentPps = 450000;
constexpr double kGoodputFloor = 0.5;  // at the 1% fault rate
constexpr std::uint64_t kTopoSeed = 0xc4a05;
constexpr std::uint64_t kFaultSeed = 0xfa017;

// FNV-1a over little-endian u64s (the pdes_sweep / mc_test digest pattern).
struct Digest {
  std::uint64_t delivered = 0;
  std::uint64_t fnv = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fnv ^= (v >> (i * 8)) & 0xff;
      fnv *= 1099511628211ull;
    }
  }
};

struct Row {
  double fault_rate = 0;
  std::size_t threads = 0;
  std::uint64_t attempted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;   // node + link-side drops, all reasons
  std::uint64_t corrupted = 0; // bit-flips injected on the wire
  std::uint64_t digest = 0;
  std::size_t violations = 0;
  std::uint64_t mailbox_spins = 0;
  double goodput = 0;
  double wall_s = 0;
};

// Every distinct link in the topology, discovered through the nodes'
// interfaces (RingTopo records only the cross links).
std::vector<sim::Link*> collect_links(const sim::RingTopo& topo) {
  std::vector<sim::Link*> links;
  auto add_node_links = [&links](sim::Node* n) {
    for (std::size_t i = 0; i < n->interface_count(); ++i) {
      sim::Link* l = n->interface_link(static_cast<int>(i));
      if (l != nullptr &&
          std::find(links.begin(), links.end(), l) == links.end())
        links.push_back(l);
    }
  };
  for (const auto& seg : topo.segments) {
    add_node_links(seg.src);
    for (sim::Node* r : seg.routers) add_node_links(r);
    add_node_links(seg.sink);
  }
  return links;
}

// The declarative fault schedule for one run, scaled to the window. Pure
// function of (rate, window): every cell with the same rate compiles the
// identical schedule, which is what the cross-thread digest gate bites on.
void build_schedule(sim::FaultInjector& inj, const sim::RingTopo& topo,
                    double rate, sim::TimeNs window) {
  if (rate <= 0.0) return;
  for (std::size_t s = 0; s < topo.segments.size(); ++s) {
    const auto& seg = topo.segments[s];
    // Bit corruption: the segment's first hop (malformed headers hit the
    // router datapath) and its cross link (damage lands at the sink).
    inj.corrupt(*seg.src->interface_link(0), 0, rate, 0, window);
    inj.corrupt(*seg.cross_link, 0, rate, 0, window);
    // Cross-link flap on every even segment: a 5%-of-window carrier cut.
    if (s % 2 == 0)
      inj.flap(*seg.cross_link, window * 3 / 10, window * 35 / 100);
  }
  // Two mid-chain router crashes (only at the full 1% chaos level): power
  // fail at 40% of the window, power on at 50%, first install attempt
  // fails, the jittered retry wins.
  if (rate >= 0.01) {
    sim::ReinstallPolicy policy;
    policy.base_backoff = window / 20;
    policy.max_backoff = window / 4;
    policy.jitter_frac = 0.2;
    policy.max_attempts = 6;
    for (const std::size_t s : {1u, 5u}) {
      const auto& routers = topo.segments[s].routers;
      sim::CrashSpec spec;
      spec.crash_at = window * 2 / 5;
      spec.restart_at = window / 2;
      spec.install_failures = 1;
      spec.policy = policy;
      inj.crash(*routers[routers.size() / 2], spec);
    }
  }
}

Row run_one(double rate, std::size_t threads, sim::TimeNs window) {
  sim::RingTopoSpec spec;  // 8 segments x (5 routers + src + sink)
  sim::Network net(kTopoSeed);
  sim::RingTopo topo = build_ring_topology(net, spec);
  net.set_domain_count(spec.segments);
  net.seal_domains();

  sim::FaultInjector inj(net, kFaultSeed);
  build_schedule(inj, topo, rate, window);
  inj.install();

  std::vector<std::unique_ptr<apps::AppMux>> muxes;
  std::vector<std::unique_ptr<apps::TrafGen>> gens;
  std::vector<Digest> digs(spec.segments);
  for (std::size_t s = 0; s < spec.segments; ++s) {
    auto& seg = topo.segments[s];
    muxes.push_back(std::make_unique<apps::AppMux>(*seg.sink));
    muxes.back()->on_udp(
        7001, [&dig = digs[s]](const net::Packet& pkt, const net::UdpHeader&,
                               std::span<const std::uint8_t>,
                               sim::TimeNs now) {
          ++dig.delivered;
          dig.mix(now);
          dig.mix(pkt.seq);
        });
    apps::TrafGen::Config cfg;
    cfg.spec.src = seg.src_addr;
    cfg.spec.dst = seg.dst_addr;
    cfg.spec.payload_size = 64;
    cfg.spec.dst_port = 7001;
    cfg.pps = kPerSegmentPps;
    cfg.duration = window;
    cfg.flow_label_spread = 16;
    cfg.src_port_spread = 7;
    gens.push_back(std::make_unique<apps::TrafGen>(*seg.src, cfg));
    gens.back()->start();
  }

  sim::InvariantAuditor auditor;
  for (const auto& g : gens)
    auditor.add_source([&gen = *g] { return gen.attempted(); });
  for (const auto& seg : topo.segments) {
    auditor.add_node(*seg.src);
    for (sim::Node* r : seg.routers) auditor.add_node(*r);
    auditor.add_node(*seg.sink);
  }
  const std::vector<sim::Link*> links = collect_links(topo);
  for (sim::Link* l : links) auditor.add_link(*l);

  // Audit at quiescent points between run windows (no worker threads are
  // mutating stats after run_parallel_until returns), then after a drain
  // tail long enough for the re-installer's last event and every in-flight
  // packet to land.
  const auto t0 = std::chrono::steady_clock::now();
  for (int chunk = 1; chunk <= 4; ++chunk) {
    net.run_parallel_until(window * chunk / 4, threads);
    auditor.audit(net.now());
  }
  net.run_parallel_until(window + window / 2 + 10 * sim::kMilli, threads);
  auditor.audit(net.now(), /*final_drain=*/true);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.fault_rate = rate;
  row.threads = threads;
  Digest total;
  for (const Digest& d : digs) {
    total.delivered += d.delivered;
    total.mix(d.fnv);
    total.mix(d.delivered);
  }
  row.delivered = total.delivered;
  row.digest = total.fnv;
  for (const auto& g : gens) row.attempted += g->attempted();
  for (const auto& seg : topo.segments) {
    row.dropped += seg.src->stats().total_drops();
    for (sim::Node* r : seg.routers) row.dropped += r->stats().total_drops();
    row.dropped += seg.sink->stats().total_drops();
  }
  for (sim::Link* l : links)
    for (int side = 0; side < 2; ++side) {
      row.dropped += l->stats(side).drops + l->stats(side).drops_link_down;
      row.corrupted += l->stats(side).corrupted;
    }
  row.violations = auditor.violations().size();
  row.mailbox_spins = net.pdes_net().mailbox_overflow_spins();
  row.goodput = row.attempted > 0
                    ? static_cast<double>(row.delivered) /
                          static_cast<double>(row.attempted)
                    : 0;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const std::string& v : auditor.violations())
    std::fprintf(stderr, "VIOLATION (rate %.4f, %zu threads): %s\n", rate,
                 threads, v.c_str());
  return row;
}

struct ExhaustRow {
  std::uint64_t attempted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops_no_buffer = 0;   // at the generator = at the node
  std::uint64_t admission_fail = 0;    // BufferPool's own counter
  std::size_t violations = 0;
};

// Serial (master-thread) exhaustion: a 10 Mbps bottleneck holds thousands
// of buffers on the wire while the generator offers 50 kpps; a 64-buffer
// cap must turn the overload into accounted source-side drops — never an
// abort, never an alloc storm — and the ledger must still drain to zero.
ExhaustRow run_exhaustion(sim::TimeNs window) {
  sim::Network net(0xeba7);
  sim::Node& src = net.add_node("xsrc");
  sim::Node& dst = net.add_node("xdst");
  const auto src_addr = net::Ipv6Addr::must_parse("fd77:1::1");
  const auto dst_addr = net::Ipv6Addr::must_parse("fd77:1::2");
  auto att = net.connect(src, src_addr, dst, dst_addr,
                         10ull * 1000 * 1000, 10 * sim::kMicro);
  src.ns().table(0).add_route(net::Prefix::parse("fd77:1::/64").value(),
                              {net::Ipv6Addr{}, att.a_ifindex, 1});

  apps::AppMux mux(dst);
  std::uint64_t delivered = 0;
  mux.on_udp(7001, [&delivered](const net::Packet&, const net::UdpHeader&,
                                std::span<const std::uint8_t>, sim::TimeNs) {
    ++delivered;
  });

  const net::BufferPool::Stats before = net::BufferPool::stats();
  sim::FaultInjector inj(net, kFaultSeed);
  inj.cap_buffer_pool(64);
  inj.install();

  apps::TrafGen::Config cfg;
  cfg.spec.src = src_addr;
  cfg.spec.dst = dst_addr;
  cfg.spec.payload_size = 64;
  cfg.spec.dst_port = 7001;
  cfg.pps = 50000;
  cfg.duration = window;
  apps::TrafGen gen(src, cfg);
  gen.start();

  sim::InvariantAuditor auditor;
  auditor.add_source([&gen] { return gen.attempted(); });
  auditor.add_node(src);
  auditor.add_node(dst);
  auditor.add_link(*att.link);

  net.run_until(window / 2);
  auditor.audit(net.now());
  // Drain tail: the 10 Mbps wire needs seconds to clear a deep backlog.
  net.run_until(window + 5 * sim::kSecond);
  auditor.audit(net.now(), /*final_drain=*/true);

  ExhaustRow row;
  row.attempted = gen.attempted();
  row.delivered = delivered;
  row.drops_no_buffer = gen.drops_no_buffer();
  row.admission_fail =
      net::BufferPool::stats().admission_fail - before.admission_fail;
  row.violations = auditor.violations().size();
  for (const std::string& v : auditor.violations())
    std::fprintf(stderr, "VIOLATION (exhaustion): %s\n", v.c_str());

  // Restore the unbounded default so nothing downstream inherits the cap.
  net::BufferPool::set_max_buffers(0);
  return row;
}

void emit_json(const std::vector<Row>& rows, const ExhaustRow& ex,
               bool digest_match, std::size_t violations_total,
               double goodput_at_1pct, sim::TimeNs window) {
  FILE* f = std::fopen("BENCH_chaos.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"chaos_soak\",\n");
  std::fprintf(f, "  \"scenario\": \"ring topology, 8 segments x 5 Xeon "
                  "routers (56 nodes), %.0f kpps/segment; corruption + "
                  "flaps + crashes swept over fault rate\",\n",
               kPerSegmentPps / 1e3);
  std::fprintf(f, "  \"window_ms\": %.1f,\n",
               static_cast<double>(window) / 1e6);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"fault_rate\": %.4f, \"threads\": %zu, \"attempted\": %llu, "
        "\"delivered\": %llu, \"dropped\": %llu, \"corrupted\": %llu, "
        "\"digest\": \"0x%016llx\", \"violations\": %zu, "
        "\"mailbox_spins\": %llu, \"goodput\": %.4f, \"wall_s\": %.4f}%s\n",
        r.fault_rate, r.threads,
        static_cast<unsigned long long>(r.attempted),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.corrupted),
        static_cast<unsigned long long>(r.digest), r.violations,
        static_cast<unsigned long long>(r.mailbox_spins), r.goodput,
        r.wall_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"exhaustion\": {\"attempted\": %llu, \"delivered\": "
                  "%llu, \"drops_no_buffer\": %llu, \"admission_fail\": "
                  "%llu, \"violations\": %zu},\n",
               static_cast<unsigned long long>(ex.attempted),
               static_cast<unsigned long long>(ex.delivered),
               static_cast<unsigned long long>(ex.drops_no_buffer),
               static_cast<unsigned long long>(ex.admission_fail),
               ex.violations);
  std::fprintf(f, "  \"digest_match\": %d,\n", digest_match ? 1 : 0);
  std::fprintf(f, "  \"violations_total\": %zu,\n", violations_total);
  std::fprintf(f, "  \"goodput_at_1pct\": %.4f,\n", goodput_at_1pct);
  std::fprintf(f, "  \"gate_goodput\": %.2f\n", kGoodputFloor);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }
  const sim::TimeNs window = (quick ? 20 : 250) * sim::kMilli;

  if (!json_only)
    print_header(
        "Chaos soak: fault injection under load",
        "determinism, conservation and goodput survive corruption, flaps, "
        "crashes and exhaustion");

  // Exhaustion runs FIRST: its gate reads the master thread's per-thread
  // BufferPool accounting, which is only exact while this thread's acquires
  // and releases pair up. The 8-thread digest runs below migrate buffers
  // across threads (acquired on PDES workers, released by Network teardown
  // here), skewing the counter for good.
  const ExhaustRow ex = run_exhaustion(quick ? 20 * sim::kMilli
                                             : 100 * sim::kMilli);

  std::vector<Row> rows;
  for (const double rate : {0.0, 0.001, 0.01})
    for (const std::size_t threads : {1u, 8u})
      rows.push_back(run_one(rate, threads, window));

  // Digest gate: within each fault rate, every thread count must reproduce
  // the same delivery digest (same (seed, schedule) -> same simulation).
  bool digest_match = true;
  for (const Row& r : rows)
    for (const Row& o : rows)
      if (r.fault_rate == o.fault_rate)
        digest_match = digest_match && r.digest == o.digest &&
                       r.delivered == o.delivered;

  std::size_t violations_total = 0;
  for (const Row& r : rows) violations_total += r.violations;
  double goodput_at_1pct = 0;
  for (const Row& r : rows)
    if (r.fault_rate >= 0.01 && r.threads == 1) goodput_at_1pct = r.goodput;
  violations_total += ex.violations;

  emit_json(rows, ex, digest_match, violations_total, goodput_at_1pct,
            window);

  if (!json_only) {
    std::printf("\n%10s %8s %10s %10s %10s %10s %20s %10s %8s\n",
                "fault_rate", "threads", "attempted", "delivered", "dropped",
                "corrupted", "digest", "goodput", "wall s");
    for (const Row& r : rows)
      std::printf("%10.4f %8zu %10llu %10llu %10llu %10llu   0x%016llx "
                  "%10.4f %8.3f\n",
                  r.fault_rate, r.threads,
                  static_cast<unsigned long long>(r.attempted),
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.dropped),
                  static_cast<unsigned long long>(r.corrupted),
                  static_cast<unsigned long long>(r.digest), r.goodput,
                  r.wall_s);
    std::printf("\nexhaustion: attempted %llu, delivered %llu, "
                "drops_no_buffer %llu, admission_fail %llu\n",
                static_cast<unsigned long long>(ex.attempted),
                static_cast<unsigned long long>(ex.delivered),
                static_cast<unsigned long long>(ex.drops_no_buffer),
                static_cast<unsigned long long>(ex.admission_fail));
  }

  const bool exhaustion_ok = ex.drops_no_buffer > 0 &&
                             ex.admission_fail >= ex.drops_no_buffer &&
                             ex.delivered > 0;
  const bool goodput_ok = goodput_at_1pct >= kGoodputFloor;
  const bool ok = digest_match && violations_total == 0 && goodput_ok &&
                  exhaustion_ok;
  std::printf("wrote BENCH_chaos.json (digest_match = %d, violations = %zu, "
              "goodput@1%% = %.4f, exhaustion_drops = %llu)\n",
              digest_match ? 1 : 0, violations_total, goodput_at_1pct,
              static_cast<unsigned long long>(ex.drops_no_buffer));
  return ok ? 0 : 1;
}
