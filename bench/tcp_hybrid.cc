// §4.2 TCP results — the hybrid-access goodput table.
//
// Links: 50 Mbps / 30±5 ms RTT and 30 Mbps / 5±2 ms RTT (80 Mbps aggregate),
// per-packet WRR 5:3 on the SRv6 encapsulation.
//
// Paper anchors:
//   * without compensation, a single TCP connection collapses to ~3.8 Mbps
//     (dupack-driven fast retransmits caused by reordering);
//   * with the TWD netem compensation, 1 connection reaches ~68 Mbps and
//     4 parallel connections ~70 Mbps.
#include <cstdio>

#include "bench_common.h"
#include "usecases/hybrid.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

struct Result {
  double goodput_mbps;
  std::uint64_t rtx;
  std::uint64_t timeouts;
  std::uint64_t ooo;
};

Result run(bool compensation, int flows) {
  usecases::HybridLab::Options opts;
  opts.twd_compensation = compensation;
  usecases::HybridLab lab(opts);
  if (compensation) lab.net().run_for(2 * sim::kSecond);  // daemon converges
  const double goodput = lab.run_tcp(flows, 12 * sim::kSecond);
  return {goodput, lab.total_retransmits(), lab.total_timeouts(),
          lab.receiver_ooo_segments()};
}

}  // namespace

int main() {
  print_header("§4.2 TCP goodput over the hybrid access network",
               "no compensation: ~3.8 Mbps; TWD compensation: ~68 Mbps "
               "(1 conn) / ~70 Mbps (4 conns); aggregate capacity 80 Mbps");

  const Result r_plain = run(false, 1);
  const Result r_comp1 = run(true, 1);
  const Result r_comp4 = run(true, 4);

  std::printf("\n%-34s %10s %8s %9s %8s\n", "configuration", "Mbps", "rtx",
              "timeouts", "ooo-seg");
  std::printf("%-34s %10.1f %8llu %9llu %8llu\n",
              "WRR, no compensation, 1 conn", r_plain.goodput_mbps,
              (unsigned long long)r_plain.rtx,
              (unsigned long long)r_plain.timeouts,
              (unsigned long long)r_plain.ooo);
  std::printf("%-34s %10.1f %8llu %9llu %8llu\n",
              "WRR + TWD compensation, 1 conn", r_comp1.goodput_mbps,
              (unsigned long long)r_comp1.rtx,
              (unsigned long long)r_comp1.timeouts,
              (unsigned long long)r_comp1.ooo);
  std::printf("%-34s %10.1f %8llu %9llu %8llu\n",
              "WRR + TWD compensation, 4 conns", r_comp4.goodput_mbps,
              (unsigned long long)r_comp4.rtx,
              (unsigned long long)r_comp4.timeouts,
              (unsigned long long)r_comp4.ooo);

  std::printf("\nshape checks vs paper:\n");
  std::printf("  collapse without compensation : %.1f Mbps (paper ~3.8)\n",
              r_plain.goodput_mbps);
  std::printf("  compensated single connection : %.1f Mbps (paper ~68)\n",
              r_comp1.goodput_mbps);
  std::printf("  compensated 4 connections     : %.1f Mbps (paper ~70)\n",
              r_comp4.goodput_mbps);
  return 0;
}
