// Figure 2 — "Simple endpoint functions are efficiently supported."
//
// Reproduces the paper's §3.2 measurement: S1 offers 3 Mpps of 64-byte UDP
// packets with a 2-segment SRH through a seg6local function on R (whose
// single core is the bottleneck); the sink rate on S2 is reported normalized
// to raw IPv6 forwarding (the paper's 610 kpps baseline).
//
// Paper anchors: End-BPF ≈ 97% of static End; End.T-BPF ≈ 95% of static
// End.T; Tag++ ≈ 97% of End-BPF; Add-TLV ≈ 95% of End-BPF; disabling the JIT
// divides Add-TLV throughput by ~1.8.
#include <functional>

#include "bench_common.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

struct Row {
  std::string name;
  double kpps = 0;
  std::size_t sloc = 0;
  std::string note;
};

double run_case(const std::function<void(Setup1&)>& configure,
                bool through_sid) {
  Setup1 lab;
  configure(lab);
  return lab.measure(through_sid, /*pps=*/3e6, /*duration=*/200 * sim::kMilli);
}

void add_end_bpf(Setup1& lab, const usecases::BuiltProgram& built, bool jit) {
  lab.r->ns().bpf().set_jit_enabled(jit);
  auto load = lab.r->ns().bpf().load(
      built.name, ebpf::ProgType::kLwtSeg6Local, built.insns, built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "verifier rejected %s: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  lab.r->ns().seg6local().add(lab.sid, e);
}

}  // namespace

int main() {
  print_header(
      "Figure 2: forwarding rate of seg6local endpoint functions on R",
      "baseline 610 kpps; End-BPF ~ -3% vs End; End.T-BPF ~ -5% vs End.T; "
      "Tag++ ~ -3% and Add-TLV ~ -5% vs End-BPF; no-JIT divides Add-TLV by "
      "~1.8");
  std::printf("(vector datapath: R drains bursts of %zu per service event; "
              "rates are burst-invariant, see bench_burst_sweep)\n",
              sim::kDefaultRxBurst);

  std::vector<Row> rows;

  // Baseline: raw IPv6 forwarding, no SRH.
  rows.push_back({"raw IPv6 forwarding",
                  run_case([](Setup1&) {}, /*through_sid=*/false), 0, ""});

  rows.push_back({"End (static)", run_case(
                                      [](Setup1& lab) {
                                        seg6::Seg6LocalEntry e;
                                        e.action = seg6::Seg6Action::kEnd;
                                        lab.r->ns().seg6local().add(lab.sid, e);
                                      },
                                      true),
                  0, ""});

  rows.push_back({"End (BPF)", run_case(
                                   [](Setup1& lab) {
                                     add_end_bpf(lab, usecases::build_end(),
                                                 true);
                                   },
                                   true),
                  1, ""});

  rows.push_back({"End.T (static)", run_case(
                                        [](Setup1& lab) {
                                          seg6::Seg6LocalEntry e;
                                          e.action = seg6::Seg6Action::kEndT;
                                          e.table = 0;
                                          lab.r->ns().seg6local().add(lab.sid,
                                                                      e);
                                        },
                                        true),
                  0, ""});

  rows.push_back({"End.T (BPF)", run_case(
                                     [](Setup1& lab) {
                                       add_end_bpf(lab,
                                                   usecases::build_end_t(0),
                                                   true);
                                     },
                                     true),
                  4, ""});

  rows.push_back(
      {"Tag++ (BPF)", run_case(
                          [](Setup1& lab) {
                            add_end_bpf(lab, usecases::build_tag_increment(),
                                        true);
                          },
                          true),
       50, "no static counterpart"});

  rows.push_back({"Add TLV (BPF)", run_case(
                                       [](Setup1& lab) {
                                         add_end_bpf(
                                             lab, usecases::build_add_tlv(),
                                             true);
                                       },
                                       true),
                  60, "no static counterpart"});

  rows.push_back({"Add TLV (BPF, no JIT)",
                  run_case(
                      [](Setup1& lab) {
                        add_end_bpf(lab, usecases::build_add_tlv(), false);
                      },
                      true),
                  60, "interpreter"});

  const double baseline = rows[0].kpps;
  std::printf("\n%-26s %10s %10s  %-6s %s\n", "function", "kpps",
              "% of raw", "SLOC", "note");
  for (const auto& row : rows) {
    std::printf("%-26s %10.1f %9.1f%%  %-6s %s\n", row.name.c_str(), row.kpps,
                100.0 * row.kpps / baseline,
                row.sloc ? std::to_string(row.sloc).c_str() : "-",
                row.note.c_str());
  }

  // Paper-anchor summary.
  const double end_static = rows[1].kpps, end_bpf = rows[2].kpps;
  const double endt_static = rows[3].kpps, endt_bpf = rows[4].kpps;
  const double tag = rows[5].kpps, addtlv = rows[6].kpps,
               addtlv_nojit = rows[7].kpps;
  std::printf("\nshape checks vs paper:\n");
  std::printf("  End BPF / End static        = %.3f   (paper ~0.97)\n",
              end_bpf / end_static);
  std::printf("  End.T BPF / End.T static    = %.3f   (paper ~0.95)\n",
              endt_bpf / endt_static);
  std::printf("  Tag++ / End BPF             = %.3f   (paper ~0.97)\n",
              tag / end_bpf);
  std::printf("  Add TLV / End BPF           = %.3f   (paper ~0.95)\n",
              addtlv / end_bpf);
  std::printf("  Add TLV JIT / no-JIT factor = %.2fx  (paper ~1.8x)\n",
              addtlv / addtlv_nojit);
  return 0;
}
