// Shared scaffolding for the paper-reproduction benchmarks: the setup-1
// topology (S1 - R - S2, R's CPU modelled) and the saturation measurement
// loop (offer more load than R can forward, count what the sink receives —
// exactly the paper's §3.2 methodology).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/sink.h"
#include "apps/trafgen.h"
#include "net/packet.h"
#include "seg6/seg6local.h"
#include "sim/network.h"
#include "usecases/programs.h"

namespace srv6bpf::bench {

// The paper's lab: 3 servers, 10 Gbps NICs, all interrupts on one core of R.
struct Setup1 {
  sim::Network net{0xbead};
  sim::Node* s1;
  sim::Node* r;
  sim::Node* s2;
  net::Ipv6Addr s1_addr = net::Ipv6Addr::must_parse("fc00:1::1");
  net::Ipv6Addr r_if0 = net::Ipv6Addr::must_parse("fc00:1::2");
  net::Ipv6Addr r_if1 = net::Ipv6Addr::must_parse("fc00:2::1");
  net::Ipv6Addr s2_addr = net::Ipv6Addr::must_parse("fc00:2::2");
  net::Ipv6Addr sid = net::Ipv6Addr::must_parse("fc00:f::1");
  std::unique_ptr<apps::AppMux> mux;
  std::unique_ptr<apps::UdpSink> sink;
  std::unique_ptr<apps::TrafGen> gen;
  int r_upstream_if = 0;
  int r_downstream_if = 0;
  // Vector-pipeline knobs: R's per-service-event drain budget and the
  // generator's packets-per-tick. Simulated rates are burst-invariant (the
  // differential test enforces it); these only trade simulator wall-clock,
  // which bench_burst_sweep measures.
  std::size_t rx_burst = sim::kDefaultRxBurst;
  std::size_t gen_burst = 1;
  // Multi-core knobs: R's RSS context count, and how many flow labels the
  // generator cycles through (the RSS steering tuple is src/dst/flow label,
  // so flows > 1 is what spreads the offered load across R's contexts).
  // Unlike burst, ncpus changes *simulated* capacity: bench_mc_sweep
  // measures the forwarding-rate scaling it buys.
  std::size_t ncpus = 1;
  std::uint32_t flows = 1;

  Setup1() {
    s1 = &net.add_node("S1");
    r = &net.add_node("R");
    s2 = &net.add_node("S2");
    const std::uint64_t kTenGig = 10ull * 1000 * 1000 * 1000;
    auto l1 = net.connect(*s1, s1_addr, *r, r_if0, kTenGig, 10 * sim::kMicro);
    auto l2 = net.connect(*r, r_if1, *s2, s2_addr, kTenGig, 10 * sim::kMicro);
    r_upstream_if = l1.b_ifindex;
    r_downstream_if = l2.a_ifindex;

    s1->ns().table(0).add_route(net::Prefix::parse("::/0").value(),
                                {r_if0, l1.a_ifindex, 1});
    r->ns().table(0).add_route(net::Prefix::parse("fc00:2::/64").value(),
                               {net::Ipv6Addr{}, l2.a_ifindex, 1});
    r->ns().table(0).add_route(net::Prefix::parse("fc00:1::/64").value(),
                               {net::Ipv6Addr{}, l1.b_ifindex, 1});
    s2->ns().table(0).add_route(net::Prefix::parse("::/0").value(),
                                {r_if1, l2.b_ifindex, 1});

    r->cpu.enabled = true;
    r->cpu.profile = sim::kXeonProfile;

    mux = std::make_unique<apps::AppMux>(*s2);
    sink = std::make_unique<apps::UdpSink>(*mux, 7001);
  }

  // Offers `pps` of 64-byte-payload UDP (with or without an SRH through the
  // SID on R) for `duration`, then reports the sink's receive rate in kpps.
  double measure(bool through_sid, double pps, sim::TimeNs duration) {
    r->cpu.rx_burst = rx_burst;
    r->cpu.ncpus = ncpus;
    apps::TrafGen::Config cfg;
    cfg.spec.src = s1_addr;
    cfg.spec.dst = s2_addr;
    if (through_sid) cfg.spec.segments = {sid, s2_addr};
    cfg.spec.payload_size = 64;
    cfg.spec.dst_port = 7001;
    cfg.pps = pps;
    cfg.burst = gen_burst;
    cfg.flow_label_spread = flows;
    cfg.start_at = net.now();
    cfg.duration = duration + 50 * sim::kMilli;
    gen = std::make_unique<apps::TrafGen>(*s1, cfg);
    gen->start();

    net.run_for(30 * sim::kMilli);  // warm-up
    sink->reset();
    const sim::TimeNs t0 = net.now();
    net.run_for(duration);
    return sink->meter().kpps(net.now() - t0);
  }
};

inline void print_header(const char* title, const char* paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(paper: %s)\n", paper_note);
  std::printf("==============================================================\n");
}

}  // namespace srv6bpf::bench
