// google-benchmark microbenchmarks of the eBPF machinery itself: engine
// dispatch, helper call overhead, map operations, verifier load time.
#include <benchmark/benchmark.h>

#include <cstring>

#include "ebpf/asm.h"
#include "ebpf/helpers.h"
#include "ebpf/map.h"
#include "ebpf/perf_event.h"
#include "ebpf/vm.h"
#include "usecases/programs.h"

namespace {

using namespace srv6bpf;
using namespace srv6bpf::ebpf;

// Straight-line ALU program of ~n instructions (no loops allowed in eBPF).
std::vector<Insn> alu_chain(int n) {
  Asm a;
  a.mov64_imm(R0, 1);
  for (int i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: a.add64_imm(R0, 7); break;
      case 1: a.mul64_imm(R0, 3); break;
      case 2: a.xor64_imm(R0, 0x55aa); break;
      case 3: a.rsh64_imm(R0, 1); break;
    }
  }
  a.exit_();
  return a.build();
}

void BM_EngineAluChain(benchmark::State& state, bool jit) {
  BpfSystem sys;
  auto load = sys.load("alu", ProgType::kLwtSeg6Local, alu_chain(512));
  if (!load.ok()) {
    state.SkipWithError(load.verify.error.c_str());
    return;
  }
  ExecEnv env;
  for (auto _ : state) {
    const auto r = jit ? sys.run_jit(*load.prog, env, 0)
                       : sys.run_interpreted(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(state.iterations() * 514);
}
BENCHMARK_CAPTURE(BM_EngineAluChain, jit, true);
BENCHMARK_CAPTURE(BM_EngineAluChain, interp, false);

void BM_HelperCallOverhead(benchmark::State& state) {
  BpfSystem sys;
  Asm a;
  for (int i = 0; i < 16; ++i) a.call(helper::KTIME_GET_NS);
  a.exit_();
  auto load = sys.load("calls", ProgType::kLwtSeg6Local, a.build());
  ExecEnv env;
  env.now_ns = [] { return 1ull; };
  for (auto _ : state) {
    const auto r = sys.run_jit(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_HelperCallOverhead);

void BM_MapLookupFromBpf(benchmark::State& state) {
  BpfSystem sys;
  MapDef def{MapType::kArray, 4, 8, 4, "m"};
  const auto id = sys.maps().create(def);
  Asm a;
  a.st(BPF_W, R10, -4, 0)
      .ld_map(R1, id)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -4)
      .call(helper::MAP_LOOKUP_ELEM)
      .jeq_imm(R0, 0, "miss")
      .ldx(BPF_DW, R0, R0, 0)
      .exit_()
      .label("miss")
      .mov64_imm(R0, 0)
      .exit_();
  auto load = sys.load("lookup", ProgType::kLwtSeg6Local, a.build());
  ExecEnv env;
  for (auto _ : state) {
    const auto r = sys.run_jit(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
}
BENCHMARK(BM_MapLookupFromBpf);

void BM_VerifierLoad(benchmark::State& state) {
  const auto built = usecases::build_end_dm(1);
  for (auto _ : state) {
    BpfSystem sys;
    create_perf_event_array(sys.maps(), "perf");
    auto load = sys.load(built.name, ProgType::kLwtSeg6Local, built.insns);
    benchmark::DoNotOptimize(load.ok());
  }
}
BENCHMARK(BM_VerifierLoad);

void BM_LpmTrieLookup(benchmark::State& state) {
  MapDef def{MapType::kLpmTrie, 20, 4, 1024, "lpm"};
  auto map = make_map(def);
  // 64 random /48 prefixes.
  std::uint64_t x = 42;
  for (int i = 0; i < 64; ++i) {
    std::uint8_t key[20] = {};
    const std::uint32_t plen = 48;
    std::memcpy(key, &plen, 4);
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::memcpy(key + 4, &x, 6);
    const std::uint32_t v = static_cast<std::uint32_t>(i);
    map->update(key, {reinterpret_cast<const std::uint8_t*>(&v), 4}, 0);
  }
  std::uint8_t query[20] = {};
  const std::uint32_t plen = 128;
  std::memcpy(query, &plen, 4);
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::memcpy(query + 4, &x, 8);
    benchmark::DoNotOptimize(map->lookup(query));
  }
}
BENCHMARK(BM_LpmTrieLookup);

}  // namespace
