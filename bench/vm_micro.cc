// Microbenchmarks of the eBPF machinery itself.
//
// Part 1 (custom, runs first): engine-only throughput of the four execution
// engines — baseline decode-every-step interpreter, pre-decoded threaded
// interpreter, unchecked decoded, native x86-64 JIT — on the paper's §3.2
// seg6local programs plus a 512-insn ALU chain, with results written to
// BENCH_vm.json so the perf trajectory is machine-trackable across PRs.
// On hosts without native support the native column degrades to the
// unchecked engine (and its geomean metric will reflect ~1x). "Engine-only" means the ExecEnv/ctx are
// built once and the timed loop contains only the VM run (plus a packet
// reset for the one program that resizes it); this isolates what the
// decode-once refactor actually changed.
//
// Part 2: google-benchmark microbenchmarks of dispatch, helper-call, map and
// verifier costs (skipped when --json-only is passed; CI smoke uses that).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ebpf/asm.h"
#include "ebpf/helpers.h"
#include "ebpf/map.h"
#include "ebpf/perf_event.h"
#include "ebpf/skb.h"
#include "ebpf/vm.h"
#include "net/packet.h"
#include "seg6/ctx.h"
#include "usecases/programs.h"

namespace {

using namespace srv6bpf;
using namespace srv6bpf::ebpf;

// Straight-line ALU program of ~n instructions (no loops allowed in eBPF).
std::vector<Insn> alu_chain(int n) {
  Asm a;
  a.mov64_imm(R0, 1);
  for (int i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: a.add64_imm(R0, 7); break;
      case 1: a.mul64_imm(R0, 3); break;
      case 2: a.xor64_imm(R0, 0x55aa); break;
      case 3: a.rsh64_imm(R0, 1); break;
    }
  }
  a.exit_();
  return a.build();
}

// ---------------------------------------------------------------------------
// Part 1: §3.2 engine comparison -> BENCH_vm.json
// ---------------------------------------------------------------------------

// Engine-only ns/run of a seg6local program: Netns, ExecEnv and SkbCtx are
// prepared once; the timed loop is the VM invocation itself. Programs that
// resize the packet (Add TLV) get a cheap in-place packet reset per
// iteration so the workload stays constant.
double engine_only_ns(const usecases::BuiltProgram& built, EngineKind engine,
                      bool reset_packet, int iters) {
  seg6::Netns ns("bench");
  ns.table(0).add_route(net::Prefix::parse("fc00::/16").value(),
                        {net::Ipv6Addr::must_parse("fe80::1"), 0, 1});
  ns.bpf().set_engine(engine);
  auto load = ns.bpf().load(built.name, ProgType::kLwtSeg6Local, built.insns,
                            built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "%s rejected: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }

  net::PacketSpec spec;
  spec.src = net::Ipv6Addr::must_parse("fc00::1");
  spec.segments = {net::Ipv6Addr::must_parse("fc00::e1"),
                   net::Ipv6Addr::must_parse("fc00::d1")};
  spec.payload_size = 64;
  const net::Packet tmpl = net::make_udp_packet(spec);
  net::Packet pkt = tmpl;

  seg6::Seg6ProgCtx ctx;
  ctx.netns = &ns;
  ctx.pkt = &pkt;
  ctx.skb.protocol = kEthPIpv6Be;

  ExecEnv env;
  env.user = &ctx;
  env.now_ns = [&ns] { return ns.now(); };
  env.prandom = [&ns] { return ns.prandom(); };
  env.regions.push_back(MemRegion{
      reinterpret_cast<std::uintptr_t>(&ctx.skb), sizeof ctx.skb, true});
  env.regions.push_back(MemRegion{0, 0, false});
  ctx.env = &env;
  ctx.refresh_packet_view();

  volatile std::uint64_t sink = 0;
  const std::uint64_t skb_addr = reinterpret_cast<std::uint64_t>(&ctx.skb);

  // Programs that resize the packet need a per-iteration reset to keep the
  // workload constant. That reset is harness cost, identical for every
  // engine, so it is measured separately and subtracted — otherwise it
  // dilutes the engine ratios the JSON exists to track.
  double reset_ns = 0;
  if (reset_packet) {
    const auto r0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      pkt = tmpl;  // copy-assign reuses capacity after the first iteration
      ctx.refresh_packet_view();
    }
    const auto r1 = std::chrono::steady_clock::now();
    reset_ns =
        std::chrono::duration<double, std::nano>(r1 - r0).count() / iters;
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (reset_packet) {
      pkt = tmpl;
      ctx.refresh_packet_view();
    }
    sink = ns.bpf().run(*load.prog, env, skb_addr).ret;
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  const double per_run =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / iters -
      reset_ns;
  return per_run > 0.1 ? per_run : 0.1;  // clamp: subtraction is approximate
}

// Bare engine ns/run for programs needing no packet/netns (the ALU chain).
double bare_engine_ns(const std::vector<Insn>& insns, EngineKind engine,
                      int iters) {
  BpfSystem sys;
  auto load = sys.load("alu", ProgType::kLwtSeg6Local, insns);
  if (!load.ok()) {
    std::fprintf(stderr, "alu chain rejected: %s\n",
                 load.verify.error.c_str());
    std::exit(1);
  }
  sys.set_engine(engine);
  ExecEnv env;
  volatile std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) sink = sys.run(*load.prog, env, 0).ret;
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

struct Row {
  std::string name;
  bool sec32;  // counts toward the §3.2 geomeans
  double baseline_ns, predecoded_ns, unchecked_ns, native_ns;
};

void emit_json(const std::vector<Row>& rows, double geomean_pre,
               double geomean_native, double alu_native) {
  std::FILE* f = std::fopen("BENCH_vm.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_vm.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"vm_micro\",\n");
  std::fprintf(f, "  \"measurement\": \"engine_only_ns_per_run\",\n");
  std::fprintf(f, "  \"native_jit_available\": %s,\n",
               Jit::available() ? "true" : "false");
  std::fprintf(f, "  \"programs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"paper_sec32\": %s, "
                 "\"baseline_interp_ns\": %.1f, \"predecoded_interp_ns\": "
                 "%.1f, \"unchecked_ns\": %.1f, \"native_ns\": %.1f, "
                 "\"speedup_predecoded_vs_baseline\": %.2f, "
                 "\"speedup_native_vs_baseline\": %.2f, "
                 "\"speedup_native_vs_predecoded\": %.2f}%s\n",
                 r.name.c_str(), r.sec32 ? "true" : "false", r.baseline_ns,
                 r.predecoded_ns, r.unchecked_ns, r.native_ns,
                 r.baseline_ns / r.predecoded_ns,
                 r.baseline_ns / r.native_ns,
                 r.predecoded_ns / r.native_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"sec32_geomean_speedup_predecoded_vs_baseline\": %.2f,\n",
               geomean_pre);
  std::fprintf(f,
               "  \"sec32_geomean_speedup_native_vs_predecoded\": %.2f,\n",
               geomean_native);
  // Emitted-code quality floor: on the compute-bound chain the engine is the
  // whole cost, so this ratio tracks the JIT itself rather than shared
  // helper/harness time (which caps the §3.2 rows near the paper's ~1.8x).
  std::fprintf(f, "  \"alu512_speedup_native_vs_predecoded\": %.2f\n",
               alu_native);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

void run_engine_comparison(int iters) {
  std::printf("-- engine-only ns/run (execution-engine scoreboard) --\n");
  std::printf("%-18s %12s %12s %10s %10s %10s\n", "program", "baseline",
              "pre-decoded", "unchecked", "native", "nat/pre");

  std::vector<Row> rows;
  struct Prog {
    usecases::BuiltProgram built;
    bool reset_packet;
  };
  const Prog progs[] = {
      {usecases::build_end(), false},
      {usecases::build_tag_increment(), false},
      {usecases::build_add_tlv(), true},  // resizes the packet every run
  };
  for (const Prog& p : progs) {
    Row r;
    r.name = p.built.name;
    r.sec32 = true;
    r.baseline_ns = engine_only_ns(p.built, EngineKind::kInterpBaseline,
                                   p.reset_packet, iters);
    r.predecoded_ns =
        engine_only_ns(p.built, EngineKind::kInterp, p.reset_packet, iters);
    r.unchecked_ns = engine_only_ns(p.built, EngineKind::kUnchecked,
                                    p.reset_packet, iters);
    r.native_ns =
        engine_only_ns(p.built, EngineKind::kNative, p.reset_packet, iters);
    rows.push_back(r);
  }
  {
    Row r;
    r.name = "alu_chain_512";
    r.sec32 = false;
    const auto chain = alu_chain(512);
    r.baseline_ns = bare_engine_ns(chain, EngineKind::kInterpBaseline,
                                   iters / 4 + 1);
    r.predecoded_ns =
        bare_engine_ns(chain, EngineKind::kInterp, iters / 4 + 1);
    r.unchecked_ns =
        bare_engine_ns(chain, EngineKind::kUnchecked, iters / 4 + 1);
    r.native_ns = bare_engine_ns(chain, EngineKind::kNative, iters);
    rows.push_back(r);
  }

  double log_sum_pre = 0, log_sum_native = 0, alu_native = 0;
  int sec32_count = 0;
  for (const Row& r : rows) {
    std::printf("%-18s %10.1fns %10.1fns %8.1fns %8.1fns %8.2fx\n",
                r.name.c_str(), r.baseline_ns, r.predecoded_ns,
                r.unchecked_ns, r.native_ns, r.predecoded_ns / r.native_ns);
    if (r.sec32) {
      log_sum_pre += std::log(r.baseline_ns / r.predecoded_ns);
      log_sum_native += std::log(r.predecoded_ns / r.native_ns);
      ++sec32_count;
    } else {
      alu_native = r.predecoded_ns / r.native_ns;
    }
  }
  const double geomean_pre = std::exp(log_sum_pre / sec32_count);
  const double geomean_native = std::exp(log_sum_native / sec32_count);
  std::printf("§3.2 geomean speedup (pre-decoded vs baseline): %.2fx\n",
              geomean_pre);
  std::printf("§3.2 geomean speedup (native vs pre-decoded):  %.2fx\n",
              geomean_native);
  std::printf("alu_chain_512 speedup (native vs pre-decoded): %.2fx\n",
              alu_native);
  emit_json(rows, geomean_pre, geomean_native, alu_native);
  std::printf("wrote BENCH_vm.json\n\n");
}

// ---------------------------------------------------------------------------
// Part 2: google-benchmark micro suite
// ---------------------------------------------------------------------------

void BM_EngineAluChain(benchmark::State& state, EngineKind engine) {
  BpfSystem sys;
  auto load = sys.load("alu", ProgType::kLwtSeg6Local, alu_chain(512));
  if (!load.ok()) {
    state.SkipWithError(load.verify.error.c_str());
    return;
  }
  sys.set_engine(engine);
  ExecEnv env;
  for (auto _ : state) {
    const auto r = sys.run(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(state.iterations() * 514);
}
BENCHMARK_CAPTURE(BM_EngineAluChain, native, EngineKind::kNative);
BENCHMARK_CAPTURE(BM_EngineAluChain, unchecked, EngineKind::kUnchecked);
BENCHMARK_CAPTURE(BM_EngineAluChain, interp, EngineKind::kInterp);
BENCHMARK_CAPTURE(BM_EngineAluChain, interp_baseline,
                  EngineKind::kInterpBaseline);

void BM_HelperCallOverhead(benchmark::State& state) {
  BpfSystem sys;
  Asm a;
  for (int i = 0; i < 16; ++i) a.call(helper::KTIME_GET_NS);
  a.exit_();
  auto load = sys.load("calls", ProgType::kLwtSeg6Local, a.build());
  ExecEnv env;
  env.now_ns = [] { return 1ull; };
  for (auto _ : state) {
    const auto r = sys.run_native(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_HelperCallOverhead);

void BM_MapLookupFromBpf(benchmark::State& state) {
  BpfSystem sys;
  MapDef def{MapType::kArray, 4, 8, 4, "m"};
  const auto id = sys.maps().create(def);
  Asm a;
  a.st(BPF_W, R10, -4, 0)
      .ld_map(R1, id)
      .mov64_reg(R2, R10)
      .add64_imm(R2, -4)
      .call(helper::MAP_LOOKUP_ELEM)
      .jeq_imm(R0, 0, "miss")
      .ldx(BPF_DW, R0, R0, 0)
      .exit_()
      .label("miss")
      .mov64_imm(R0, 0)
      .exit_();
  auto load = sys.load("lookup", ProgType::kLwtSeg6Local, a.build());
  ExecEnv env;
  for (auto _ : state) {
    const auto r = sys.run_native(*load.prog, env, 0);
    benchmark::DoNotOptimize(r.ret);
  }
}
BENCHMARK(BM_MapLookupFromBpf);

void BM_VerifierLoad(benchmark::State& state) {
  const auto built = usecases::build_end_dm(1);
  for (auto _ : state) {
    BpfSystem sys;
    create_perf_event_array(sys.maps(), "perf");
    auto load = sys.load(built.name, ProgType::kLwtSeg6Local, built.insns);
    benchmark::DoNotOptimize(load.ok());
  }
}
BENCHMARK(BM_VerifierLoad);

void BM_DecodeProgram(benchmark::State& state) {
  BpfSystem sys;  // only the helper registry is needed to decode
  const auto insns = alu_chain(512);
  for (auto _ : state) {
    auto decoded = decode_program(insns, &sys.helpers());
    benchmark::DoNotOptimize(decoded->size());
  }
  state.SetItemsProcessed(state.iterations() * 514);
}
BENCHMARK(BM_DecodeProgram);

void BM_LpmTrieLookup(benchmark::State& state) {
  MapDef def{MapType::kLpmTrie, 20, 4, 1024, "lpm"};
  auto map = make_map(def);
  // 64 random /48 prefixes.
  std::uint64_t x = 42;
  for (int i = 0; i < 64; ++i) {
    std::uint8_t key[20] = {};
    const std::uint32_t plen = 48;
    std::memcpy(key, &plen, 4);
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::memcpy(key + 4, &x, 6);
    const std::uint32_t v = static_cast<std::uint32_t>(i);
    map->update(key, {reinterpret_cast<const std::uint8_t*>(&v), 4}, 0);
  }
  std::uint8_t query[20] = {};
  const std::uint32_t plen = 128;
  std::memcpy(query, &plen, 4);
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::memcpy(query + 4, &x, 8);
    benchmark::DoNotOptimize(map->lookup(query));
  }
}
BENCHMARK(BM_LpmTrieLookup);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before handing argv to google-benchmark.
  bool json_only = false;
  int iters = 100000;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0)
      json_only = true;
    else if (std::strcmp(argv[i], "--quick") == 0)
      iters = 5000;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  run_engine_comparison(iters);
  if (json_only) return 0;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
