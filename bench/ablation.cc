// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  A. Verifier state pruning — identical-state deduplication bounds the
//     symbolic exploration of branchy programs.
//  B. WRR weights — what happens to the §4.2 TCP goodput when the scheduler
//     weights do NOT match the link capacities (5:3).
//  C. Map backend — array vs hash lookup cost on the scheduler fast path.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "ebpf/asm.h"
#include "ebpf/map.h"
#include "ebpf/verifier.h"
#include "usecases/hybrid.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

void ablate_verifier_pruning() {
  std::printf("\n-- A. verifier state pruning --\n");
  // A branchy diamond chain: 2^N paths without pruning.
  // JSET performs no range refinement, so both sides of every diamond
  // converge to identical states — the pattern pruning is designed for.
  ebpf::Asm a;
  a.ldx(ebpf::BPF_W, ebpf::R2, ebpf::R1, 16);
  for (int i = 0; i < 14; ++i) {
    const std::string t = "t" + std::to_string(i);
    const std::string join = "j" + std::to_string(i);
    a.jset_imm(ebpf::R2, 1 << (i % 8), t)
        .mov64_imm(ebpf::R3, 0)
        .ja(join)
        .label(t)
        .mov64_imm(ebpf::R3, 0)
        .label(join);
  }
  a.mov64_imm(ebpf::R0, 0).exit_();
  const auto insns = a.build();

  ebpf::MapRegistry maps;
  ebpf::HelperRegistry helpers;
  ebpf::register_generic_helpers(helpers);

  for (const bool pruning : {true, false}) {
    ebpf::VerifyOptions opts;
    opts.enable_pruning = pruning;
    opts.max_states = 2'000'000;
    ebpf::Verifier v(&maps, &helpers, opts);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = v.verify(insns, ebpf::ProgType::kLwtSeg6Local);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  pruning %-3s: ok=%d states=%-8zu pruned=%-8zu  %8.2f ms\n",
                pruning ? "on" : "off", r.ok, r.stats.states_visited,
                r.stats.states_pruned,
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
}

void ablate_wrr_weights() {
  std::printf("\n-- B. WRR weights vs link capacities (TCP, TWD "
              "compensation on, 8 s) --\n");
  std::printf("   (with a reordering-fragile NewReno, residual inter-link skew\n"
              "    costs more than aggregation gains: single-link 1:0 wins --\n"
              "    quantifying exactly why the paper needed the TWD daemon)\n");
  struct Case {
    const char* name;
    std::uint64_t w1, w2;
  } cases[] = {
      {"5:3 (matches 50/30 Mbps)", 5, 3},
      {"1:1 (mismatched)", 1, 1},
      {"1:0 (slow... er, xDSL only)", 1, 0},
  };
  for (const auto& c : cases) {
    usecases::HybridLab::Options opts;
    opts.twd_compensation = true;
    opts.weight1 = c.w1;
    opts.weight2 = c.w2;
    usecases::HybridLab lab(opts);
    lab.net().run_for(2 * sim::kSecond);
    const double goodput = lab.run_tcp(1, 8 * sim::kSecond);
    std::printf("  %-28s -> %6.1f Mbps\n", c.name, goodput);
  }
}

void ablate_map_backend() {
  std::printf("\n-- C. map backend lookup cost (1M lookups, 4-byte key) --\n");
  for (const auto type : {ebpf::MapType::kArray, ebpf::MapType::kHash}) {
    ebpf::MapDef def;
    def.type = type;
    def.key_size = 4;
    def.value_size = 56;
    def.max_entries = 16;
    def.name = "wrr_cfg";
    auto map = ebpf::make_map(def);
    const std::uint32_t key = 3;
    const std::uint8_t value[56] = {};
    map->update({reinterpret_cast<const std::uint8_t*>(&key), 4}, value, 0);

    volatile std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 1'000'000; ++i)
      sink += reinterpret_cast<std::uintptr_t>(map->find(key));
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-6s: %6.1f ns/lookup\n",
                type == ebpf::MapType::kArray ? "array" : "hash",
                std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    1e6);
  }
}

}  // namespace

int main() {
  print_header("Ablations", "design-choice sensitivity, not a paper figure");
  ablate_verifier_pruning();
  ablate_wrr_weights();
  ablate_map_backend();
  return 0;
}
