// Multi-core sweep — how much *simulated* forwarding rate RSS contexts buy.
//
// Runs the Figure-2 End.BPF scenario (S1 offers 3 Mpps of 64-byte SRv6
// traffic over 64 flow labels through an End.BPF SID on the CPU-modelled
// router R) with R's CPU model at ncpus 1/2/4. Unlike the burst sweep —
// where simulated rates are invariant and only simulator wall-clock moves —
// ncpus changes the modelled machine: each RSS context is an independent
// service clock, so the saturation throughput (sink kpps in simulated time)
// must scale until the offered load or a link is the bottleneck. The sink
// rate is a deterministic function of the simulation, so the scaling gate
// holds on any host and is enforced even under --quick.
//
// Writes BENCH_mc.json into the current directory on every run.
//
//   ./bench_mc_sweep              # ncpus 1/2/4 + table; exits 1 below gate
//   ./bench_mc_sweep --quick      # shorter measurement (CI smoke); the
//                                 # gate still applies (simulated metric)
//   ./bench_mc_sweep --smoke      # ncpus 1/2 only (CI), gate on the 2-cpu
//                                 # scaling instead of the 4-cpu one
//   ./bench_mc_sweep --json-only  # no table, just BENCH_mc.json
#include <chrono>
#include <cstring>

#include "bench_common.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

constexpr double kGate4 = 1.5;  // ISSUE 3 acceptance: ncpus=4 >= 1.5x ncpus=1
constexpr double kGate2 = 1.4;  // smoke gate: ncpus=2 vs 1 (expected ~2x)
constexpr double kOfferedPps = 3e6;   // the paper's 3 Mpps source
constexpr std::uint32_t kFlows = 64;  // flow labels cycled by the generator

struct Row {
  std::size_t ncpus = 0;
  double sim_kpps = 0;          // sink rate in simulated time — the metric
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops_rx = 0;   // RX-ring overflow at R (the saturation sign)
  double occupancy = 0;         // serviced packets per service event at R
  double balance = 0;           // min/max packets across contexts (1 = even)
  double wall_s = 0;
};

Row run_one(std::size_t ncpus, sim::TimeNs duration) {
  Setup1 lab;
  lab.ncpus = ncpus;
  lab.flows = kFlows;  // pktgen-style multi-flow: spread the RSS hash

  const usecases::BuiltProgram built = usecases::build_end();
  auto load = lab.r->ns().bpf().load(built.name, ebpf::ProgType::kLwtSeg6Local,
                                     built.insns, built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "verifier rejected %s: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  lab.r->ns().seg6local().add(lab.sid, e);

  Row row;
  row.ncpus = ncpus;
  const auto t0 = std::chrono::steady_clock::now();
  row.sim_kpps = lab.measure(/*through_sid=*/true, kOfferedPps, duration);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  row.wall_s = wall.count();
  row.offered = lab.gen->sent();
  row.delivered = lab.sink->packets();
  const sim::NodeStats rs = lab.r->stats();
  row.drops_rx = rs.drops_rx_queue;
  row.occupancy = rs.service_events > 0
                      ? static_cast<double>(rs.serviced_packets) /
                            static_cast<double>(rs.service_events)
                      : 0;
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t k = 0; k < lab.r->context_count(); ++k) {
    const std::uint64_t p = lab.r->cpu_stats(k).serviced_packets;
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  row.balance = hi > 0 ? static_cast<double>(lo) / static_cast<double>(hi) : 0;
  return row;
}

void emit_json(const std::vector<Row>& rows, double s2, double s4,
               double gate, sim::TimeNs duration) {
  std::FILE* f = std::fopen("BENCH_mc.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_mc.json");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"mc_sweep\",\n");
  std::fprintf(f, "  \"scenario\": \"fig2_end_bpf\",\n");
  std::fprintf(f, "  \"offered_pps\": %.0f,\n", kOfferedPps);
  std::fprintf(f, "  \"flows\": %u,\n", kFlows);
  std::fprintf(f, "  \"duration_ms\": %.0f,\n",
               static_cast<double>(duration) / 1e6);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"ncpus\": %zu, \"sim_kpps\": %.1f, \"offered\": %llu, "
                 "\"delivered\": %llu, \"drops_rx_queue\": %llu, "
                 "\"burst_occupancy\": %.2f, \"context_balance\": %.3f, "
                 "\"wall_s\": %.4f}%s\n",
                 r.ncpus, r.sim_kpps,
                 static_cast<unsigned long long>(r.offered),
                 static_cast<unsigned long long>(r.delivered),
                 static_cast<unsigned long long>(r.drops_rx), r.occupancy,
                 r.balance, r.wall_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scaling_2_vs_1\": %.3f,\n", s2);
  // Smoke runs (--smoke) skip the 4-cpu row; the key is omitted rather than
  // reported as 0 so bench/check_history.py only checks what actually ran.
  if (s4 > 0) std::fprintf(f, "  \"scaling_4_vs_1\": %.3f,\n", s4);
  std::fprintf(f, "  \"gate\": %.2f\n", gate);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json_only = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const sim::TimeNs duration = (quick ? 50 : 200) * sim::kMilli;

  if (!json_only)
    print_header(
        "Multi-core sweep: simulated throughput of RSS-sharded contexts",
        "the paper pins IRQs to one core (ncpus=1, its 610kpps-class cap); "
        "ncpus=4 must forward >= 1.5x the single-core rate");

  std::vector<std::size_t> ncpus = {1, 2, 4};
  if (smoke) ncpus = {1, 2};
  std::vector<Row> rows;
  for (const std::size_t n : ncpus) rows.push_back(run_one(n, duration));

  double k1 = 0, k2 = 0, k4 = 0;
  for (const Row& r : rows) {
    if (r.ncpus == 1) k1 = r.sim_kpps;
    if (r.ncpus == 2) k2 = r.sim_kpps;
    if (r.ncpus == 4) k4 = r.sim_kpps;
  }
  const double s2 = k1 > 0 ? k2 / k1 : 0;
  const double s4 = k1 > 0 ? k4 / k1 : 0;
  const double gate = smoke ? kGate2 : kGate4;
  const double scaling = smoke ? s2 : s4;
  emit_json(rows, s2, s4, gate, duration);

  if (!json_only) {
    std::printf("\n%6s %10s %10s %10s %10s %8s %8s\n", "ncpus", "sim kpps",
                "delivered", "drops_rx", "occup.", "balance", "wall s");
    for (const Row& r : rows)
      std::printf("%6zu %10.1f %10llu %10llu %10.2f %8.3f %8.3f\n", r.ncpus,
                  r.sim_kpps, static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.drops_rx), r.occupancy,
                  r.balance, r.wall_s);
    std::printf("\nsimulated-throughput scaling: 2-cpu %.2fx, 4-cpu %.2fx "
                "(gate: %s >= %.2fx)\n",
                s2, s4, smoke ? "2-cpu" : "4-cpu", gate);
  }
  std::printf("wrote BENCH_mc.json (scaling_%s = %.2fx, gate >= %.2fx)\n",
              smoke ? "2_vs_1" : "4_vs_1", scaling, gate);
  // The metric is simulated time, not wall-clock: deterministic, so the
  // gate is enforced on every run mode, including CI --quick smokes.
  return scaling >= gate ? 0 : 1;
}
