#!/usr/bin/env python3
"""Check bench JSONs against the regression floors in bench/history/baseline.json.

Usage: check_history.py [--strict] [--baseline PATH] JSON...

Each JSON argument is matched to a baseline entry by its basename
(BENCH_vm.json, BENCH_burst.json, BENCH_mc.json, BENCH_lpm.json); unknown or
missing files are skipped with a note so partial runs stay usable. Metric
names may be dotted paths into nested objects (e.g. "fig2_fib48.sim_kpps").

Exit status is non-zero when any *simulated*-time floor (deterministic on
every host) is violated, or — with --strict — when any wall-clock floor is.
Wall-clock violations without --strict only warn: CI smoke runs use --quick
measurement windows on shared runners, where wall-based ratios are noise.
(BENCH_lpm.json's speedup_fib48 is additionally self-gated by the
bench_lpm_sweep binary itself, which exits non-zero below its floor.)
"""
import argparse
import json
import os
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def warn(msg):
    print(f"WARN: {msg}")
    return 0


def get_metric(data, metric):
    """Resolves 'a.b.c' through nested dicts; None when any step is absent."""
    node = data
    for part in metric.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_floor(data, name, metric, floor, on_violation):
    value = get_metric(data, metric)
    if value is None:
        return fail(f"{name}: metric '{metric}' missing")
    if value < floor:
        return on_violation(f"{name}: {metric} = {value} below floor {floor}")
    print(f"ok:   {name}: {metric} = {value} (floor {floor})")
    return 0


def check_ceiling(data, name, metric, ceiling, on_violation):
    """Upper bounds for metrics where bigger is worse (latency percentiles,
    blackhole durations)."""
    value = get_metric(data, metric)
    if value is None:
        return fail(f"{name}: metric '{metric}' missing")
    if value > ceiling:
        return on_violation(
            f"{name}: {metric} = {value} above ceiling {ceiling}")
    print(f"ok:   {name}: {metric} = {value} (ceiling {ceiling})")
    return 0


def check_burst_invariance(data, name, limit):
    rates = [row["sim_kpps"] for row in data.get("rows", [])]
    if len(rates) < 2 or min(rates) <= 0:
        return fail(f"{name}: no usable rows for sim_kpps invariance")
    ratio = max(rates) / min(rates)
    if ratio > limit:
        return fail(f"{name}: sim_kpps varies across bursts "
                    f"(max/min = {ratio:.4f} > {limit}) — the datapath is "
                    f"no longer burst-invariant")
    print(f"ok:   {name}: sim_kpps burst-invariant (max/min = {ratio:.4f})")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--strict", action="store_true",
                    help="wall-clock floors fail instead of warning")
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(__file__),
                                         "history", "baseline.json"))
    ap.add_argument("jsons", nargs="+")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)

    rc = 0
    seen = set()
    for path in args.jsons:
        name = os.path.basename(path)
        if not os.path.exists(path):
            print(f"skip: {path} not found")
            continue
        with open(path) as f:
            data = json.load(f)
        seen.add(name)
        sim_floors = base.get("sim", {}).get(name, {})
        sim_evaluated = 0
        for metric, floor in sim_floors.items():
            if get_metric(data, metric) is not None:
                # smoke runs may omit e.g. the 4-cpu row
                rc |= check_floor(data, name, metric, floor, fail)
                sim_evaluated += 1
        sim_ceilings = base.get("sim_ceilings", {}).get(name, {})
        for metric, ceiling in sim_ceilings.items():
            if get_metric(data, metric) is not None:
                rc |= check_ceiling(data, name, metric, ceiling, fail)
                sim_evaluated += 1
        # A present file with sim floors/ceilings must have evaluated at
        # least one of them — otherwise a renamed/dropped metric would
        # silently disable the deterministic gate this script exists to
        # enforce.
        if (sim_floors or sim_ceilings) and sim_evaluated == 0:
            rc |= fail(f"{name}: none of the sim metrics "
                       f"{sorted(sim_floors) + sorted(sim_ceilings)} are "
                       f"present — the deterministic bounds were not "
                       f"evaluated")
        for metric, floor in base.get("wall", {}).get(name, {}).items():
            rc |= check_floor(data, name, metric, floor,
                              fail if args.strict else warn)
        inv = base.get("sim_invariants", {}).get(name, {})
        if "rows_sim_kpps_max_over_min" in inv:
            rc |= check_burst_invariance(data, name,
                                         inv["rows_sim_kpps_max_over_min"])
    if not seen:
        return fail("no bench JSONs found")
    return 1 if rc else 0


if __name__ == "__main__":
    sys.exit(main())
