// Classic-BPF filter tier benchmark.
//
// Part 1 (micro): per-expression filter cost. Each tcpdump expression is
// compiled to classic BPF, then measured two ways over a mixed match/miss
// packet corpus: interpreted directly by the reference cBPF interpreter (what
// a pre-3.15 kernel did per packet) and translated to eBPF and run on each of
// the four engines (what this simulator — and the modern kernel — actually
// executes). The native-vs-reference speedup is the payoff of the
// translate-once design the cbpf/ tier reproduces.
//
// Part 2 (scenario): the fig3-style monitoring sink driven entirely by a
// compiled filter expression on the setup-1 topology, reporting the sink's
// simulated receive rate. Simulated rates are deterministic, so
// scenario.sim_kpps is a hard floor in bench/history/baseline.json.
//
// Output: BENCH_filter.json. Flags: --quick (short CI smoke), --json-only
// (suppress the stdout table; kept symmetric with the other benches).
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "apps/socket_filter.h"
#include "cbpf/expr.h"
#include "cbpf/interp.h"
#include "cbpf/translate.h"
#include "ebpf/jit.h"
#include "ebpf/skb.h"
#include "ebpf/vm.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

struct Corpus {
  std::vector<std::vector<std::uint8_t>> pkts;
};

// Half matching, half non-matching traffic for the port-7001 expressions:
// plain UDP to 7001, SRH-encapsulated UDP to 7001, UDP to 9999, and a TCP-
// protocol packet — the shapes the monitoring sink actually demultiplexes.
Corpus make_corpus() {
  Corpus c;
  const auto add = [&c](std::uint16_t dport, bool srh) {
    net::PacketSpec spec;
    spec.src = net::Ipv6Addr::must_parse("fc00:1::1");
    spec.dst = net::Ipv6Addr::must_parse("fc00:2::2");
    spec.dst_port = dport;
    spec.payload_size = 64;
    if (srh) {
      spec.segments = {net::Ipv6Addr::must_parse("fc00:f::1"),
                       net::Ipv6Addr::must_parse("fc00:2::2")};
    }
    net::Packet pkt = net::make_udp_packet(spec);
    c.pkts.emplace_back(pkt.bytes().begin(), pkt.bytes().end());
  };
  add(7001, false);
  add(7001, true);
  add(9999, false);
  add(9999, true);
  return c;
}

double ns_per_op(std::uint64_t total_ns, std::uint64_t ops) {
  return ops ? static_cast<double>(total_ns) / static_cast<double>(ops) : 0;
}

// Reference interpreter ns/op over the corpus.
double reference_ns(const std::vector<cbpf::SockFilter>& prog,
                    const Corpus& corpus, int iters) {
  volatile std::uint32_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i)
    for (const auto& p : corpus.pkts)
      sink = cbpf::run(prog, p.data(), p.size());
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return ns_per_op(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
      static_cast<std::uint64_t>(iters) * corpus.pkts.size());
}

// Translated-eBPF ns/op on one engine over the corpus.
double translated_ns(const ebpf::LoadedProgram& prog, ebpf::BpfSystem& sys,
                     ebpf::EngineKind engine, const Corpus& corpus,
                     int iters) {
  sys.set_engine(engine);
  ebpf::SkbCtx skb;
  skb.protocol = ebpf::kEthPIpv6Be;
  ebpf::ExecEnv env;
  env.now_ns = [] { return std::uint64_t{0}; };
  env.prandom = [] { return std::uint32_t{0}; };
  env.regions.push_back(ebpf::MemRegion{
      reinterpret_cast<std::uintptr_t>(&skb), sizeof skb, true});
  env.regions.push_back(ebpf::MemRegion{0, 0, false});
  const std::uint64_t ctx = reinterpret_cast<std::uint64_t>(&skb);

  volatile std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    for (const auto& p : corpus.pkts) {
      skb.data = reinterpret_cast<std::uint64_t>(p.data());
      skb.data_end = skb.data + p.size();
      skb.len = static_cast<std::uint32_t>(p.size());
      env.regions[1] = ebpf::MemRegion{
          reinterpret_cast<std::uintptr_t>(p.data()), p.size(), false};
      sink = sys.run(prog, env, ctx).ret;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return ns_per_op(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
      static_cast<std::uint64_t>(iters) * corpus.pkts.size());
}

struct Row {
  std::string expr;
  std::size_t cbpf_insns = 0, ebpf_insns = 0;
  double reference_ns = 0;
  double baseline_ns = 0, predecoded_ns = 0, unchecked_ns = 0, native_ns = 0;
};

Row measure_expr(const std::string& expr, const Corpus& corpus, int iters) {
  Row r;
  r.expr = expr;
  const cbpf::CompileResult cr = cbpf::compile(expr);
  if (!cr.ok) {
    std::fprintf(stderr, "compile(\"%s\"): %s\n", expr.c_str(),
                 cr.error.c_str());
    std::exit(1);
  }
  const cbpf::TranslateResult tr = cbpf::translate(cr.insns);
  if (!tr.ok) {
    std::fprintf(stderr, "translate(\"%s\"): %s\n", expr.c_str(),
                 tr.error.c_str());
    std::exit(1);
  }
  r.cbpf_insns = cr.insns.size();
  r.ebpf_insns = tr.insns.size();

  ebpf::BpfSystem sys;
  auto load = sys.load("filter", ebpf::ProgType::kSocketFilter, tr.insns,
                       cr.insns.size());
  if (!load.ok()) {
    std::fprintf(stderr, "verifier rejected \"%s\": %s\n", expr.c_str(),
                 load.verify.error.c_str());
    std::exit(1);
  }

  r.reference_ns = reference_ns(cr.insns, corpus, iters);
  r.baseline_ns = translated_ns(*load.prog, sys,
                                ebpf::EngineKind::kInterpBaseline, corpus,
                                iters);
  r.predecoded_ns =
      translated_ns(*load.prog, sys, ebpf::EngineKind::kInterp, corpus, iters);
  r.unchecked_ns = translated_ns(*load.prog, sys,
                                 ebpf::EngineKind::kUnchecked, corpus, iters);
  r.native_ns =
      translated_ns(*load.prog, sys, ebpf::EngineKind::kNative, corpus, iters);
  return r;
}

// Fig3-style scenario: the setup-1 sink accepts only what its compiled
// filter expression passes. Half the offered stream targets the sink port,
// half targets another port the filter must reject.
struct ScenarioResult {
  double sim_kpps = 0;
  double accept_fraction = 0;
  std::uint64_t accepted = 0, dropped = 0;
};

ScenarioResult run_scenario(const std::string& expr, sim::TimeNs window) {
  Setup1 lab;
  std::string err;
  auto f = apps::SocketFilter::from_expr(lab.s2->ns(), "sink", expr, &err);
  if (f == nullptr) {
    std::fprintf(stderr, "scenario filter \"%s\": %s\n", expr.c_str(),
                 err.c_str());
    std::exit(1);
  }
  // Rebind port 7001 to a filtered sink (AppMux replaces the handler), so
  // every metered packet first runs the translated filter on S2's engine.
  lab.sink = std::make_unique<apps::UdpSink>(*lab.mux, 7001, f);
  ScenarioResult res;
  res.sim_kpps = lab.measure(/*through_sid=*/false, 3e6, window);
  res.accepted = f->accepted();
  res.dropped = f->dropped();
  const double total = static_cast<double>(res.accepted + res.dropped);
  res.accept_fraction = total > 0 ? res.accepted / total : 0;
  return res;
}

void emit_json(const std::vector<Row>& rows, double geomean_native,
               const std::string& scenario_expr, const ScenarioResult& sc) {
  std::FILE* f = std::fopen("BENCH_filter.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_filter.json");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"filter\",\n");
  std::fprintf(f, "  \"measurement\": \"filter_ns_per_packet\",\n");
  std::fprintf(f, "  \"native_jit_available\": %s,\n",
               ebpf::Jit::available() ? "true" : "false");
  std::fprintf(f, "  \"filters\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"expr\": \"%s\", \"cbpf_insns\": %zu, "
                 "\"ebpf_insns\": %zu, \"reference_interp_ns\": %.1f, "
                 "\"baseline_interp_ns\": %.1f, \"predecoded_interp_ns\": "
                 "%.1f, \"unchecked_ns\": %.1f, \"native_ns\": %.1f, "
                 "\"speedup_native_vs_reference\": %.2f}%s\n",
                 r.expr.c_str(), r.cbpf_insns, r.ebpf_insns, r.reference_ns,
                 r.baseline_ns, r.predecoded_ns, r.unchecked_ns, r.native_ns,
                 r.reference_ns / r.native_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"geomean_speedup_native_vs_reference\": %.2f,\n",
               geomean_native);
  std::fprintf(f, "  \"scenario\": {\n");
  std::fprintf(f, "    \"expr\": \"%s\",\n", scenario_expr.c_str());
  std::fprintf(f, "    \"offered_kpps\": 3000.0,\n");
  std::fprintf(f, "    \"sim_kpps\": %.1f,\n", sc.sim_kpps);
  std::fprintf(f, "    \"filter_accepted\": %llu,\n",
               static_cast<unsigned long long>(sc.accepted));
  std::fprintf(f, "    \"filter_dropped\": %llu,\n",
               static_cast<unsigned long long>(sc.dropped));
  std::fprintf(f, "    \"accept_fraction\": %.4f\n", sc.accept_fraction);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }
  const int iters = quick ? 20000 : 400000;
  const sim::TimeNs window = quick ? 60 * sim::kMilli : 200 * sim::kMilli;

  if (!json_only)
    print_header("Classic-BPF filter tier: expression -> cBPF -> eBPF",
                 "SO_ATTACH_FILTER translate-once vs per-packet classic "
                 "interpretation");

  const Corpus corpus = make_corpus();
  const char* exprs[] = {
      "udp",
      "udp and dst port 7001",
      "srh and udp and dst port 7001",
      "ip6 and (dst net fc00:2::/64 or dst host fc00:1::1) and not tcp",
  };
  std::vector<Row> rows;
  double log_sum = 0;
  for (const char* e : exprs) {
    rows.push_back(measure_expr(e, corpus, iters));
    log_sum += std::log(rows.back().reference_ns / rows.back().native_ns);
  }
  const double geomean_native = std::exp(log_sum / rows.size());

  if (!json_only) {
    std::printf("%-58s %5s %5s %9s %9s %9s %9s %9s\n", "expression", "cBPF",
                "eBPF", "refrnc", "baseln", "predec", "uncheck", "native");
    for (const Row& r : rows)
      std::printf("%-58s %5zu %5zu %7.1fns %7.1fns %7.1fns %7.1fns %7.1fns\n",
                  r.expr.c_str(), r.cbpf_insns, r.ebpf_insns, r.reference_ns,
                  r.baseline_ns, r.predecoded_ns, r.unchecked_ns, r.native_ns);
    std::printf("geomean speedup, native eBPF vs reference cBPF interp: "
                "%.2fx\n\n", geomean_native);
  }

  const std::string scenario_expr = "udp and dst port 7001";
  const ScenarioResult sc = run_scenario(scenario_expr, window);
  if (!json_only) {
    std::printf("fig3-style scenario: sink gated by filter(\"%s\")\n",
                scenario_expr.c_str());
    std::printf("  sink rate %.1f kpps (filter accepted %llu, dropped %llu)\n",
                sc.sim_kpps, static_cast<unsigned long long>(sc.accepted),
                static_cast<unsigned long long>(sc.dropped));
  }

  emit_json(rows, geomean_native, scenario_expr, sc);
  std::printf("wrote BENCH_filter.json\n");
  return 0;
}
