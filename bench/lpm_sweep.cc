// LPM sweep — what the multibit-stride trie buys over the bit-by-bit walk.
//
// Two views:
//   * micro: lookup ns/op of the stride engine (util::LpmTrie) vs the
//     classic one-bit-per-node walk it replaced (util::BitwiseLpmTrie, kept
//     as the oracle) over three prefix-set shapes — the /48-heavy FIB the
//     paper's SRv6 deployments route on, a mixed /32+/48+/64 table and a
//     /128 host-route table. The engines are also cross-checked per key
//     (identical match ids), so this doubles as a coarse differential.
//   * end-to-end: the fig2 topology (S1 -> R -> S2, Xeon-modelled R) with a
//     /48-heavy FIB at R and TrafGen::Config::dst_spread cycling the
//     destination over every /48 — multi-destination traffic that defeats
//     the one-entry FibCacheSlot, so every burst group pays a real trie
//     walk. Reported as simulated-packets-per-wall-second.
//
// The acceptance gate (ISSUE 4): stride >= 2x bitwise on the /48-heavy
// micro workload. The ratio is wall-clock based but host-factor-free (same
// machine, same keys, back to back), so the binary enforces it in every
// mode, --quick included.
//
// Writes BENCH_lpm.json into the current directory on every run.
//
//   ./bench_lpm_sweep              # full measurement windows + table
//   ./bench_lpm_sweep --quick      # CI smoke (short windows), gate still on
//   ./bench_lpm_sweep --json-only  # no table, just BENCH_lpm.json
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/lpm_trie.h"
#include "util/rng.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

constexpr double kGate = 2.0;  // ISSUE 4: stride >= 2x bitwise on fib48
constexpr double kOfferedPps = 3e6;
constexpr std::size_t kFibRoutes = 2048;  // /48s in the end-to-end FIB

struct Key16 {
  std::uint8_t b[16] = {};
};

struct Workload {
  std::string name;
  std::vector<std::pair<Key16, std::uint32_t>> prefixes;  // (key, plen)
  std::vector<Key16> queries;
};

// /48-heavy: the shape of a real SRv6 site FIB (plus the default route).
Workload make_fib48(Rng& rng) {
  Workload w;
  w.name = "fib48";
  w.prefixes.push_back({Key16{}, 0});  // ::/0
  for (int i = 0; i < 4096; ++i) {
    Key16 k;
    k.b[0] = 0x20;
    k.b[1] = 0x01;
    for (int j = 2; j < 6; ++j)
      k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    w.prefixes.push_back({k, 48});
  }
  for (int q = 0; q < 8192; ++q) {
    Key16 k;
    if (rng.chance(0.75)) {  // inside a random installed /48
      k = w.prefixes[rng.uniform(1, w.prefixes.size() - 1)].first;
      for (int j = 6; j < 16; ++j)
        k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    } else {  // elsewhere: the default route answers
      for (int j = 0; j < 16; ++j)
        k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    w.queries.push_back(k);
  }
  return w;
}

// Nested /32 + /48 + /64 under shared /32s: longest-prefix tie-breaking on
// every lookup.
Workload make_fib_mixed(Rng& rng) {
  Workload w;
  w.name = "fib_mixed";
  w.prefixes.push_back({Key16{}, 0});
  std::vector<Key16> sites;
  for (int i = 0; i < 512; ++i) {
    Key16 k;
    k.b[0] = 0xfc;
    k.b[1] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    k.b[2] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    k.b[3] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    sites.push_back(k);
    w.prefixes.push_back({k, 32});
  }
  for (int i = 0; i < 2048; ++i) {
    Key16 k = sites[rng.uniform(0, sites.size() - 1)];
    k.b[4] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    k.b[5] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    w.prefixes.push_back({k, 48});
    if (rng.chance(0.5)) {
      k.b[6] = static_cast<std::uint8_t>(rng.uniform(0, 255));
      k.b[7] = static_cast<std::uint8_t>(rng.uniform(0, 255));
      w.prefixes.push_back({k, 64});
    }
  }
  for (int q = 0; q < 8192; ++q) {
    Key16 k = w.prefixes[rng.uniform(1, w.prefixes.size() - 1)].first;
    for (int j = 8; j < 16; ++j)
      k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    w.queries.push_back(k);
  }
  return w;
}

// /128 host routes: maximum trie depth, ~50% misses.
Workload make_host128(Rng& rng) {
  Workload w;
  w.name = "host128";
  for (int i = 0; i < 4096; ++i) {
    Key16 k;
    k.b[0] = 0xfd;
    for (int j = 1; j < 16; ++j)
      k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 15));
    w.prefixes.push_back({k, 128});
  }
  for (int q = 0; q < 8192; ++q) {
    if (rng.chance(0.5)) {
      w.queries.push_back(
          w.prefixes[rng.uniform(0, w.prefixes.size() - 1)].first);
    } else {
      Key16 k;
      k.b[0] = 0xfd;
      for (int j = 1; j < 16; ++j)
        k.b[j] = static_cast<std::uint8_t>(rng.uniform(0, 15));
      w.queries.push_back(k);
    }
  }
  return w;
}

// Repeats passes over `queries` until `min_wall_s` elapsed; returns ns per
// lookup and accumulates the matched values into *sink (defeats dead-code
// elimination and gives the cross-engine checksum).
template <typename Trie>
double measure_ns_op(Trie& trie, const std::vector<Key16>& queries,
                     double min_wall_s, std::uint64_t* sink) {
  std::uint64_t lookups = 0;
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (const Key16& q : queries) {
      const std::uint32_t* v = trie.lookup(q.b);
      sum += v ? *v : 0x5eed;
    }
    lookups += queries.size();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  } while (elapsed < min_wall_s);
  *sink = sum;
  return elapsed * 1e9 / static_cast<double>(lookups);
}

struct MicroRow {
  std::string name;
  std::size_t prefixes = 0;
  double bitwise_ns = 0;
  double stride_ns = 0;
  double speedup = 0;
};

MicroRow run_micro(const Workload& w, double min_wall_s) {
  util::LpmTrie<std::uint32_t> stride(16);
  util::BitwiseLpmTrie<std::uint32_t> bitwise(16);
  std::uint32_t next = 1;
  for (const auto& [k, plen] : w.prefixes) {
    bool created = false;
    std::uint32_t* s = stride.find_or_insert(k.b, plen, created);
    if (created) *s = next++;
    bool cb = false;
    *bitwise.find_or_insert(k.b, plen, cb) = *s;
  }

  // Cross-engine check: one pass over the queries must match exactly
  // (count of passes differs between the timed runs, so compare here).
  std::uint64_t check_s = 0, check_b = 0;
  for (const Key16& q : w.queries) {
    const std::uint32_t* vs = stride.lookup(q.b);
    const std::uint32_t* vb = bitwise.lookup(q.b);
    check_s += vs ? *vs : 0x5eed;
    check_b += vb ? *vb : 0x5eed;
  }
  if (check_s != check_b) {
    std::fprintf(stderr, "FATAL: %s: engines disagree (stride %llu vs "
                 "bitwise %llu)\n", w.name.c_str(),
                 static_cast<unsigned long long>(check_s),
                 static_cast<unsigned long long>(check_b));
    std::exit(2);
  }

  MicroRow row;
  row.name = w.name;
  row.prefixes = stride.size();
  // Two timed rounds each, interleaved — averages out frequency-ramp bias.
  std::uint64_t sink = 0;
  row.bitwise_ns = measure_ns_op(bitwise, w.queries, min_wall_s / 2, &sink);
  row.stride_ns = measure_ns_op(stride, w.queries, min_wall_s / 2, &sink);
  row.bitwise_ns = (row.bitwise_ns +
                    measure_ns_op(bitwise, w.queries, min_wall_s / 2, &sink)) / 2;
  row.stride_ns = (row.stride_ns +
                   measure_ns_op(stride, w.queries, min_wall_s / 2, &sink)) / 2;
  row.speedup = row.stride_ns > 0 ? row.bitwise_ns / row.stride_ns : 0;
  return row;
}

struct EndToEnd {
  std::size_t routes = 0;
  double sim_kpps = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t fib_cache_hits = 0;
  double wall_s = 0;
  double sim_pkts_per_wall_s = 0;
};

// fig2 with a fat FIB: R routes `routes` /48 sites toward S2, TrafGen
// cycles the destination across all of them (dst_spread), so the one-entry
// cache slot never answers and the stride trie carries the lwt/fib stage.
EndToEnd run_fig2_fib48(sim::TimeNs duration) {
  Setup1 lab;
  char buf[64];
  for (std::size_t i = 0; i < kFibRoutes; ++i) {
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::/48", i);
    lab.r->ns().table(0).add_route(net::Prefix::parse(buf).value(),
                                   {net::Ipv6Addr{}, lab.r_downstream_if, 1});
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::2", i);
    lab.s2->ns().add_local_addr(net::Ipv6Addr::must_parse(buf));
  }
  lab.r->cpu.rx_burst = sim::kDefaultRxBurst;

  apps::TrafGen::Config cfg;
  cfg.spec.src = lab.s1_addr;
  cfg.spec.dst = net::Ipv6Addr::must_parse("2001:db8::2");
  cfg.spec.payload_size = 64;
  cfg.spec.dst_port = 7001;
  cfg.pps = kOfferedPps;
  cfg.dst_spread = kFibRoutes;
  cfg.start_at = lab.net.now();
  cfg.duration = duration + 80 * sim::kMilli;
  lab.gen = std::make_unique<apps::TrafGen>(*lab.s1, cfg);
  lab.gen->start();

  lab.net.run_for(30 * sim::kMilli);  // warm-up
  lab.sink->reset();
  EndToEnd e;
  e.routes = kFibRoutes;
  // Snapshot the generator so offered / wall_s covers exactly the timed
  // window (the warm-up's packets are in neither numerator nor denominator).
  const std::uint64_t sent0 = lab.gen->sent();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::TimeNs sim0 = lab.net.now();
  lab.net.run_for(duration);
  e.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  e.sim_kpps = lab.sink->meter().kpps(lab.net.now() - sim0);
  e.offered = lab.gen->sent() - sent0;
  e.delivered = lab.sink->packets();
  e.fib_cache_hits = lab.r->ns().table(0).cache_hits();
  e.sim_pkts_per_wall_s =
      e.wall_s > 0 ? static_cast<double>(e.offered) / e.wall_s : 0;
  return e;
}

bool emit_json(const std::vector<MicroRow>& rows, double speedup_fib48,
               const EndToEnd& e, sim::TimeNs duration) {
  std::FILE* f = std::fopen("BENCH_lpm.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_lpm.json");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"lpm_sweep\",\n");
  std::fprintf(f, "  \"duration_ms\": %.0f,\n",
               static_cast<double>(duration) / 1e6);
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MicroRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"prefixes\": %zu, "
                 "\"bitwise_ns_op\": %.1f, \"stride_ns_op\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.prefixes, r.bitwise_ns, r.stride_ns,
                 r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fig2_fib48\": {\"routes\": %zu, \"offered_pps\": %.0f, "
               "\"sim_kpps\": %.1f, \"offered\": %llu, \"delivered\": %llu, "
               "\"fib_cache_hits\": %llu, \"wall_s\": %.4f, "
               "\"sim_pkts_per_wall_s\": %.0f},\n",
               e.routes, kOfferedPps, e.sim_kpps,
               static_cast<unsigned long long>(e.offered),
               static_cast<unsigned long long>(e.delivered),
               static_cast<unsigned long long>(e.fib_cache_hits), e.wall_s,
               e.sim_pkts_per_wall_s);
  std::fprintf(f, "  \"speedup_fib48\": %.2f,\n", speedup_fib48);
  std::fprintf(f, "  \"gate\": %.2f\n", kGate);
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }
  const double micro_window_s = quick ? 0.05 : 0.4;  // per engine per pass
  const sim::TimeNs duration = (quick ? 50 : 200) * sim::kMilli;

  if (!json_only)
    print_header(
        "LPM sweep: multibit-stride trie vs the bit-by-bit walk",
        "every forwarded packet and lwt_seg6_action reroute walks the FIB; "
        "a /48 lookup must cost byte hops, not 48 bit tests");

  Rng rng(0x48);
  const std::vector<Workload> workloads = {make_fib48(rng),
                                           make_fib_mixed(rng),
                                           make_host128(rng)};
  std::vector<MicroRow> rows;
  for (const Workload& w : workloads) rows.push_back(run_micro(w, micro_window_s));

  double speedup_fib48 = 0;
  for (const MicroRow& r : rows)
    if (r.name == "fib48") speedup_fib48 = r.speedup;

  const EndToEnd e = run_fig2_fib48(duration);
  const bool wrote = emit_json(rows, speedup_fib48, e, duration);

  if (!json_only) {
    std::printf("\n%-10s %9s %13s %13s %9s\n", "workload", "prefixes",
                "bitwise ns/op", "stride ns/op", "speedup");
    for (const MicroRow& r : rows)
      std::printf("%-10s %9zu %13.1f %13.1f %8.2fx\n", r.name.c_str(),
                  r.prefixes, r.bitwise_ns, r.stride_ns, r.speedup);
    std::printf("\nfig2 + %zu-route /48 FIB, dst_spread=%zu: %.1f sim kpps, "
                "%.0f sim pkts/wall s, %llu cache hits over %llu offered\n",
                e.routes, e.routes, e.sim_kpps, e.sim_pkts_per_wall_s,
                static_cast<unsigned long long>(e.fib_cache_hits),
                static_cast<unsigned long long>(e.offered));
  }
  if (wrote)
    std::printf("wrote BENCH_lpm.json (speedup_fib48 = %.2fx, gate >= "
                "%.2fx)\n", speedup_fib48, kGate);
  // Same-host back-to-back ratio: host-independent enough to enforce in
  // every mode (the stride engine wins by an integer factor, not noise).
  return wrote && speedup_fib48 >= kGate ? 0 : 1;
}
