// Latency-SLO soak: HDR-histogram tail tracking under failure, churn and
// netem impairments.
//
// Three scenario families over a five-node ring (S1 - R1 - R2 - S2 with an
// R1 - R3 - R2 backup triangle, R1 CPU-modelled):
//
//   frr  — steady UDP load, primary R1-R2 link cut mid-run; R1's route to
//          the sink carries a precomputed TI-LFA backup (seg6::FrrBackup:
//          encap [R3 End SID, R2 End.DT6 SID], out the R1-R3 adjacency).
//          Expect an essentially zero blackhole (the repair is one
//          forwarding decision), frr_reroutes > 0, no link-down drops, and
//          a post-failover tail inflated by the longer repair path. The
//          pre-failover steady window doubles as the zero-allocation gate:
//          with bench/alloc_hooks_impl.cc linked in, the histogram/tracer
//          delivery path must perform 0 operator-new calls.
//
//   igp  — same cut without FRR: packets blackhole (drops_link_down) until
//          a scheduled route add models IGP reconvergence installing the
//          repaired path 200 ms later. The ReconvergenceClock measures the
//          dark window (~the convergence delay, deterministically).
//
//   netem — loss/jitter sweep on the primary link's egress qdisc (no
//          failure): random loss, OU-correlated jitter, and both, against a
//          clean baseline row. Loss counts and every percentile are
//          functions of the seeded RNG and simulated time only.
//
// Per-flow-class tails come from sim::LatencyTracer: four flow-label spread
// classes (matching TrafGen's flow_label_spread) plus, in the netem rows, a
// classic-BPF expression class compiled by the PR 7 tcpdump frontend.
//
// Emits BENCH_slo.json; bench/check_history.py enforces floors *and*
// ceilings (latency/blackhole metrics regress upward) from
// bench/history/baseline.json. All gated metrics are simulated-time
// deterministic and mode-invariant (identical semantics under --quick).
//
// Usage: bench_slo_soak [--quick] [--json-only]

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/sink.h"
#include "apps/socket_filter.h"
#include "apps/trafgen.h"
#include "bench_common.h"
#include "net/packet.h"
#include "seg6/seg6local.h"
#include "sim/latency_tracer.h"
#include "sim/network.h"
#include "util/alloc_hooks.h"
#include "util/hdr_histogram.h"

namespace {

using namespace srv6bpf;

// ---- topology ---------------------------------------------------------------

struct Lab {
  sim::Network net{0x510a50ac};
  sim::Node* s1;
  sim::Node* r1;
  sim::Node* r2;
  sim::Node* r3;
  sim::Node* s2;
  sim::Link* l_s1r1;
  sim::Link* l_r1r2;  // primary, the one that fails
  sim::Link* l_r1r3;  // backup triangle
  sim::Link* l_r3r2;
  sim::Link* l_r2s2;
  int r1_to_r2 = -1;
  int r1_to_r3 = -1;
  int r3_to_r2 = -1;

  net::Ipv6Addr s1_addr = net::Ipv6Addr::must_parse("fc00:1::1");
  net::Ipv6Addr s2_addr = net::Ipv6Addr::must_parse("fc00:2::2");
  // Repair segment list, travel order: R3 End SID then R2 End.DT6 SID.
  net::Ipv6Addr sid_r3_end = net::Ipv6Addr::must_parse("fc00:3::e3");
  net::Ipv6Addr sid_r2_dt6 = net::Ipv6Addr::must_parse("fc00:d::6");

  std::unique_ptr<apps::AppMux> mux;
  std::unique_ptr<apps::UdpSink> sink;
  std::unique_ptr<apps::TrafGen> gen;

  explicit Lab(bool with_frr) {
    s1 = &net.add_node("S1");
    r1 = &net.add_node("R1");
    r2 = &net.add_node("R2");
    r3 = &net.add_node("R3");
    s2 = &net.add_node("S2");

    const std::uint64_t kTenGig = 10ull * 1000 * 1000 * 1000;
    auto a = [](const char* s) { return net::Ipv6Addr::must_parse(s); };
    auto ls = net.connect(*s1, s1_addr, *r1, a("fc00:1::2"), kTenGig,
                          10 * sim::kMicro);
    auto lp = net.connect(*r1, a("fc00:a::1"), *r2, a("fc00:a::2"), kTenGig,
                          10 * sim::kMicro);
    auto lb = net.connect(*r1, a("fc00:b::1"), *r3, a("fc00:b::2"), kTenGig,
                          10 * sim::kMicro);
    auto lc = net.connect(*r3, a("fc00:c::1"), *r2, a("fc00:c::2"), kTenGig,
                          10 * sim::kMicro);
    auto ld = net.connect(*r2, a("fc00:2::1"), *s2, s2_addr, kTenGig,
                          10 * sim::kMicro);
    l_s1r1 = ls.link;
    l_r1r2 = lp.link;
    l_r1r3 = lb.link;
    l_r3r2 = lc.link;
    l_r2s2 = ld.link;
    r1_to_r2 = lp.a_ifindex;
    r1_to_r3 = lb.a_ifindex;
    r3_to_r2 = lc.a_ifindex;

    auto pfx = [](const char* s) { return net::Prefix::parse(s).value(); };
    s1->ns().table(0).add_route(pfx("::/0"),
                                {a("fc00:1::2"), ls.a_ifindex, 1});
    // R1's route to the sink site: primary out the R1-R2 link, optionally
    // carrying the precomputed TI-LFA backup via R3.
    seg6::Route to_sink;
    to_sink.prefix = pfx("fc00:2::/64");
    to_sink.nexthops = {{net::Ipv6Addr{}, r1_to_r2, 1}};
    if (with_frr)
      to_sink.frr = std::make_shared<seg6::FrrBackup>(seg6::FrrBackup{
          {sid_r3_end, sid_r2_dt6}, {net::Ipv6Addr{}, r1_to_r3, 1}});
    r1->ns().table(0).add_route(std::move(to_sink));
    // R3 carries the repair path onward (and the decap SID's covering /64).
    r3->ns().table(0).add_route(pfx("fc00:d::/64"),
                                {net::Ipv6Addr{}, lc.a_ifindex, 1});
    r3->ns().seg6local().add(sid_r3_end, {seg6::Seg6Action::kEnd, {}, 0, {},
                                          {}});
    // R2: decap SID + the sink's subnet.
    r2->ns().seg6local().add(sid_r2_dt6, {seg6::Seg6Action::kEndDT6, {}, 0,
                                          {}, {}});
    r2->ns().table(0).add_route(pfx("fc00:2::/64"),
                                {net::Ipv6Addr{}, ld.a_ifindex, 1});

    // Only the point of local repair is CPU-modelled: it is where FRR and
    // the drop accounting live, and host-speed neighbors keep the 10M-packet
    // soak affordable.
    r1->cpu.enabled = true;
    r1->cpu.profile = sim::kXeonProfile;
    r1->cpu.rx_burst = 32;

    mux = std::make_unique<apps::AppMux>(*s2);
    sink = std::make_unique<apps::UdpSink>(*mux, 7001);
  }

  // The IGP-reconvergence repair route: plain IPv6 via R3 (R3 and R2 already
  // know the way), replacing the dead primary (BPF_ANY re-add semantics).
  seg6::Route reconverged_route() {
    seg6::Route r;
    r.prefix = net::Prefix::parse("fc00:2::/64").value();
    r.nexthops = {{net::Ipv6Addr{}, r1_to_r3, 1}};
    return r;
  }

  void start_traffic(double pps, sim::TimeNs start, sim::TimeNs duration) {
    apps::TrafGen::Config cfg;
    cfg.spec.src = s1_addr;
    cfg.spec.dst = s2_addr;
    cfg.spec.payload_size = 64;
    cfg.spec.dst_port = 7001;
    cfg.pps = pps;
    cfg.burst = 8;
    cfg.flow_label_spread = 4;
    cfg.src_port_spread = 4;
    cfg.start_at = start;
    cfg.duration = duration;
    gen = std::make_unique<apps::TrafGen>(*s1, cfg);
    gen->start();
  }
};

// R3's route for the repair path is on fc00:d::/64 (the decap SID's
// covering prefix); the clean path never touches R3. The IGP repair route
// instead sends plain fc00:2::/64 traffic through R3, so R3 needs that
// subnet too — added lazily by the igp scenario.

// ---- result shapes ----------------------------------------------------------

struct Quantiles {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
};

Quantiles quantiles_of(const util::HdrHistogram& h) {
  return {h.count(), h.p50(), h.p99(), h.p999(), h.max()};
}

struct Window {
  Quantiles overall;
  std::array<Quantiles, 4> cls;  // flow-label classes fl0..fl3
};

struct FailoverResult {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  double delivery_ratio = 0;
  std::uint64_t frr_reroutes = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t first_link_down_drop_ns = 0;  // 0 when none
  std::uint64_t blackhole_ns = 0;
  int recovered = 0;
  Window pre;
  Window post;
  double tail_inflation_p99 = 0;
  int hooks = 0;
  std::uint64_t window_allocs = 0;
  int zero_alloc = 0;
  std::uint64_t min_gap_ns = 0;  // sink inter-arrival (microburst flag)
  double mean_gap_ns = 0;
};

FailoverResult run_failover(bool frr, double pps, sim::TimeNs t_fail,
                            sim::TimeNs reconverge_delay, sim::TimeNs t_end) {
  Lab lab(frr);
  sim::LatencyTracer tracer;
  tracer.classify_by_flow_label(4);
  sim::ReconvergenceClock clock;
  lab.sink->set_tracer(&tracer);
  lab.sink->set_reconvergence_clock(&clock);

  const sim::TimeNs t_start = 1 * sim::kMilli;
  lab.start_traffic(pps, t_start, t_end - t_start);

  clock.arm(t_fail);
  lab.net.schedule_link_down(*lab.l_r1r2, t_fail);
  if (!frr) {
    // IGP reconvergence: the repaired route lands reconverge_delay later.
    // R3 needs the sink subnet for the plain (non-SRv6) repair path.
    lab.r3->ns().table(0).add_route(
        net::Prefix::parse("fc00:2::/64").value(),
        {net::Ipv6Addr{}, lab.r3_to_r2, 1});
    lab.net.schedule_route_add(*lab.r1, 0, lab.reconverged_route(),
                               t_fail + reconverge_delay);
  }

  // Pre/post windowing: snapshot + reset exactly at the failure instant.
  util::HdrHistogram pre_overall;
  std::array<util::HdrHistogram, 4> pre_cls;
  lab.net.loop().schedule_at(t_fail, [&tracer, &pre_overall, &pre_cls] {
    pre_overall = tracer.overall();
    for (std::size_t i = 0; i < 4; ++i) pre_cls[i] = tracer.class_hist(i);
    tracer.reset_samples();
  });

  // Zero-allocation gate over a mid-steady-state window before the failure.
  const bool hooks = util::alloc_hooks_active();
  std::uint64_t allocs_w0 = 0, allocs_w1 = 0;
  lab.net.loop().schedule_at(t_start + (t_fail - t_start) / 4, [&allocs_w0] {
    allocs_w0 = util::alloc_counters().news;
  });
  lab.net.loop().schedule_at(t_start + 3 * (t_fail - t_start) / 4,
                             [&allocs_w1] {
                               allocs_w1 = util::alloc_counters().news;
                             });

  lab.net.run_until(t_end + 50 * sim::kMilli);

  FailoverResult r;
  r.offered = lab.gen->sent();
  r.delivered = lab.sink->packets();
  r.delivery_ratio = r.offered == 0 ? 0
                                    : static_cast<double>(r.delivered) /
                                          static_cast<double>(r.offered);
  const sim::NodeStats rs = lab.r1->stats();
  r.frr_reroutes = rs.frr_reroutes;
  r.drops_link_down = rs.drops_link_down;
  const std::uint64_t first =
      rs.first_drop_at(sim::DropReason::kLinkDown);
  r.first_link_down_drop_ns = first == sim::NodeStats::kNeverDropped ? 0
                                                                     : first;
  r.blackhole_ns = clock.blackhole_ns();
  r.recovered = clock.recovered() ? 1 : 0;
  r.pre.overall = quantiles_of(pre_overall);
  r.post.overall = quantiles_of(tracer.overall());
  for (std::size_t i = 0; i < 4; ++i) {
    r.pre.cls[i] = quantiles_of(pre_cls[i]);
    r.post.cls[i] = quantiles_of(tracer.class_hist(i));
  }
  r.tail_inflation_p99 =
      r.pre.overall.p99 == 0
          ? 0
          : static_cast<double>(r.post.overall.p99) /
                static_cast<double>(r.pre.overall.p99);
  r.hooks = hooks ? 1 : 0;
  r.window_allocs = allocs_w1 - allocs_w0;
  r.zero_alloc = hooks && r.window_allocs == 0 ? 1 : 0;
  const sim::RateMeter::Report rep =
      lab.sink->meter().report(t_end - t_start);
  r.min_gap_ns = rep.min_gap_ns;
  r.mean_gap_ns = rep.mean_gap_ns;
  return r;
}

struct NetemRow {
  const char* key;
  double loss_prob;
  sim::TimeNs jitter_ns;
  sim::TimeNs jitter_tau_ns;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t losses = 0;
  double loss_ratio = 0;
  Quantiles overall;
  Quantiles expr_cls;  // the cBPF-expression class ("udp src port 7000")
};

NetemRow run_netem(const char* key, double loss, sim::TimeNs jitter,
                   sim::TimeNs tau, double pps, sim::TimeNs dur) {
  NetemRow row{key, loss, jitter, tau};
  Lab lab(/*with_frr=*/true);

  sim::NetemConfig cfg;
  cfg.delay_ns = 100 * sim::kMicro;
  cfg.jitter_ns = jitter;
  cfg.jitter_tau_ns = tau;
  cfg.loss_prob = loss;
  lab.l_r1r2->qdisc(0).set_config(cfg);  // side 0 = R1's egress

  sim::LatencyTracer tracer;
  // Explicit class ahead of the flow-label spread: a tcpdump expression
  // compiled through the classic-BPF frontend claims the quarter of the
  // traffic TrafGen sends from source port 7000.
  std::string err;
  auto filt = apps::SocketFilter::from_expr(lab.s2->ns(), "slo-class",
                                            "udp and src port 7000", &err);
  if (filt == nullptr) {
    std::fprintf(stderr, "slo-class filter: %s\n", err.c_str());
    std::exit(1);
  }
  tracer.add_class("expr", [filt](const net::Packet& p) {
    return filt->run(p) != 0;
  });
  tracer.classify_by_flow_label(4);
  lab.sink->set_tracer(&tracer);

  const sim::TimeNs t_start = 1 * sim::kMilli;
  lab.start_traffic(pps, t_start, dur);
  lab.net.run_until(t_start + dur + 100 * sim::kMilli);

  row.offered = lab.gen->sent();
  row.delivered = lab.sink->packets();
  row.losses = lab.l_r1r2->qdisc(0).losses();
  row.loss_ratio = row.offered == 0 ? 0
                                    : static_cast<double>(row.losses) /
                                          static_cast<double>(row.offered);
  row.overall = quantiles_of(tracer.overall());
  row.expr_cls = quantiles_of(tracer.class_hist(0));
  return row;
}

// ---- output -----------------------------------------------------------------

void emit_quantiles(std::FILE* f, const char* indent, const char* key,
                    const Quantiles& q, const char* tail) {
  std::fprintf(f,
               "%s\"%s\": {\"count\": %llu, \"p50\": %llu, \"p99\": %llu, "
               "\"p999\": %llu, \"max\": %llu}%s\n",
               indent, key, static_cast<unsigned long long>(q.count),
               static_cast<unsigned long long>(q.p50),
               static_cast<unsigned long long>(q.p99),
               static_cast<unsigned long long>(q.p999),
               static_cast<unsigned long long>(q.max), tail);
}

void emit_window(std::FILE* f, const char* key, const Window& w,
                 const char* tail) {
  std::fprintf(f, "      \"%s\": {\n", key);
  emit_quantiles(f, "        ", "overall", w.overall, ",");
  std::fprintf(f, "        \"classes\": {\n");
  for (std::size_t i = 0; i < 4; ++i) {
    char name[8];
    std::snprintf(name, sizeof name, "fl%zu", i);
    emit_quantiles(f, "          ", name, w.cls[i], i + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "        }\n      }%s\n", tail);
}

void emit_failover(std::FILE* f, const char* key, const FailoverResult& r,
                   const char* tail) {
  std::fprintf(f, "    \"%s\": {\n", key);
  std::fprintf(f, "      \"offered\": %llu,\n",
               static_cast<unsigned long long>(r.offered));
  std::fprintf(f, "      \"delivered\": %llu,\n",
               static_cast<unsigned long long>(r.delivered));
  std::fprintf(f, "      \"delivery_ratio\": %.6f,\n", r.delivery_ratio);
  std::fprintf(f, "      \"frr_reroutes\": %llu,\n",
               static_cast<unsigned long long>(r.frr_reroutes));
  std::fprintf(f, "      \"drops_link_down\": %llu,\n",
               static_cast<unsigned long long>(r.drops_link_down));
  std::fprintf(f, "      \"first_link_down_drop_ns\": %llu,\n",
               static_cast<unsigned long long>(r.first_link_down_drop_ns));
  std::fprintf(f, "      \"blackhole_ns\": %llu,\n",
               static_cast<unsigned long long>(r.blackhole_ns));
  std::fprintf(f, "      \"recovered\": %d,\n", r.recovered);
  std::fprintf(f, "      \"tail_inflation_p99\": %.4f,\n",
               r.tail_inflation_p99);
  std::fprintf(f, "      \"alloc_hooks\": %d,\n", r.hooks);
  std::fprintf(f, "      \"window_allocs\": %llu,\n",
               static_cast<unsigned long long>(r.window_allocs));
  std::fprintf(f, "      \"zero_alloc\": %d,\n", r.zero_alloc);
  std::fprintf(f, "      \"sink_min_gap_ns\": %llu,\n",
               static_cast<unsigned long long>(r.min_gap_ns));
  std::fprintf(f, "      \"sink_mean_gap_ns\": %.1f,\n", r.mean_gap_ns);
  emit_window(f, "pre", r.pre, ",");
  emit_window(f, "post", r.post, "");
  std::fprintf(f, "    }%s\n", tail);
}

void emit_netem(std::FILE* f, const NetemRow& row, const char* tail) {
  std::fprintf(f, "    \"%s\": {\n", row.key);
  std::fprintf(f, "      \"loss_prob\": %.4f,\n", row.loss_prob);
  std::fprintf(f, "      \"jitter_ns\": %llu,\n",
               static_cast<unsigned long long>(row.jitter_ns));
  std::fprintf(f, "      \"jitter_tau_ns\": %llu,\n",
               static_cast<unsigned long long>(row.jitter_tau_ns));
  std::fprintf(f, "      \"offered\": %llu,\n",
               static_cast<unsigned long long>(row.offered));
  std::fprintf(f, "      \"delivered\": %llu,\n",
               static_cast<unsigned long long>(row.delivered));
  std::fprintf(f, "      \"losses\": %llu,\n",
               static_cast<unsigned long long>(row.losses));
  std::fprintf(f, "      \"loss_ratio\": %.6f,\n", row.loss_ratio);
  emit_quantiles(f, "      ", "overall", row.overall, ",");
  emit_quantiles(f, "      ", "expr_class", row.expr_cls, "");
  std::fprintf(f, "    }%s\n", tail);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }

  if (!json_only)
    bench::print_header(
        "Latency-SLO soak: HDR tails, fast-reroute vs IGP reconvergence, "
        "netem sweep",
        "end-to-end observability for the §3 failure modes: what the SRv6 "
        "datapath's repair latency costs in tail terms");

  // Scenario clocks. frr carries the 10M-packet soak on full runs; igp only
  // needs to straddle the reconvergence delay. Gated metrics (blackhole,
  // ratios, zero-alloc) are mode-invariant by construction.
  const double soak_pps = quick ? 100e3 : 500e3;
  const sim::TimeNs frr_fail = quick ? 500 * sim::kMilli : 4 * sim::kSecond;
  const sim::TimeNs frr_end =
      quick ? 1200 * sim::kMilli : 20 * sim::kSecond;
  const sim::TimeNs igp_fail = quick ? 300 * sim::kMilli : 1 * sim::kSecond;
  const sim::TimeNs igp_end = quick ? 800 * sim::kMilli : 3 * sim::kSecond;
  const sim::TimeNs reconverge = 200 * sim::kMilli;
  const double netem_pps = quick ? 50e3 : 200e3;
  const sim::TimeNs netem_dur = quick ? 300 * sim::kMilli : 1 * sim::kSecond;

  const FailoverResult frr =
      run_failover(true, soak_pps, frr_fail, 0, frr_end);
  if (!json_only)
    std::printf("frr:  offered %llu delivered %llu reroutes %llu "
                "blackhole %.1f us  p99 %.1f -> %.1f us (x%.2f)  "
                "zero-alloc %s\n",
                static_cast<unsigned long long>(frr.offered),
                static_cast<unsigned long long>(frr.delivered),
                static_cast<unsigned long long>(frr.frr_reroutes),
                frr.blackhole_ns / 1e3, frr.pre.overall.p99 / 1e3,
                frr.post.overall.p99 / 1e3, frr.tail_inflation_p99,
                frr.hooks ? (frr.zero_alloc ? "yes" : "NO") : "unmeasured");

  const FailoverResult igp =
      run_failover(false, soak_pps, igp_fail, reconverge, igp_end);
  if (!json_only)
    std::printf("igp:  offered %llu delivered %llu link-down drops %llu "
                "blackhole %.1f ms (reconverge %.0f ms)\n",
                static_cast<unsigned long long>(igp.offered),
                static_cast<unsigned long long>(igp.delivered),
                static_cast<unsigned long long>(igp.drops_link_down),
                igp.blackhole_ns / 1e6,
                static_cast<double>(reconverge) / 1e6);

  NetemRow rows[] = {
      run_netem("baseline", 0.0, 0, 0, netem_pps, netem_dur),
      run_netem("loss", 0.01, 0, 0, netem_pps, netem_dur),
      run_netem("jitter", 0.0, 20 * sim::kMicro, 200 * sim::kMicro,
                netem_pps, netem_dur),
      run_netem("loss_jitter", 0.01, 20 * sim::kMicro, 200 * sim::kMicro,
                netem_pps, netem_dur),
  };
  if (!json_only)
    for (const NetemRow& row : rows)
      std::printf("netem %-12s loss %.4f  delivered %llu/%llu  "
                  "p50 %.1f us  p99 %.1f us\n",
                  row.key, row.loss_ratio,
                  static_cast<unsigned long long>(row.delivered),
                  static_cast<unsigned long long>(row.offered),
                  row.overall.p50 / 1e3, row.overall.p99 / 1e3);

  std::FILE* f = std::fopen("BENCH_slo.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_slo.json");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"slo_soak\",\n");
  std::fprintf(f, "  \"quick\": %d,\n", quick ? 1 : 0);
  std::fprintf(f, "  \"soak_pps\": %.0f,\n", soak_pps);
  std::fprintf(f, "  \"reconverge_delay_ns\": %llu,\n",
               static_cast<unsigned long long>(reconverge));
  std::fprintf(f, "  \"total_offered\": %llu,\n",
               static_cast<unsigned long long>(
                   frr.offered + igp.offered + rows[0].offered +
                   rows[1].offered + rows[2].offered + rows[3].offered));
  std::fprintf(f, "  \"scenarios\": {\n");
  emit_failover(f, "frr", frr, ",");
  emit_failover(f, "igp", igp, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"netem\": {\n");
  for (std::size_t i = 0; i < 4; ++i)
    emit_netem(f, rows[i], i + 1 < 4 ? "," : "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);

  // Deterministic self-gates, enforced in every mode: the FRR repair must
  // actually fire and hold the blackhole under a millisecond, the IGP
  // blackhole must straddle the modelled convergence delay, and (with the
  // counting hooks linked in) the delivery path must be allocation-free.
  bool ok = true;
  if (frr.frr_reroutes == 0 || frr.recovered == 0 ||
      frr.blackhole_ns > sim::kMilli) {
    std::fprintf(stderr, "GATE: frr repair ineffective (reroutes=%llu "
                 "blackhole=%llu ns)\n",
                 static_cast<unsigned long long>(frr.frr_reroutes),
                 static_cast<unsigned long long>(frr.blackhole_ns));
    ok = false;
  }
  if (igp.blackhole_ns < reconverge ||
      igp.blackhole_ns > reconverge + 10 * sim::kMilli) {
    std::fprintf(stderr, "GATE: igp blackhole %llu ns not ~reconverge "
                 "delay\n",
                 static_cast<unsigned long long>(igp.blackhole_ns));
    ok = false;
  }
  if (frr.hooks && frr.zero_alloc == 0) {
    std::fprintf(stderr, "GATE: %llu allocations in the steady-state SLO "
                 "window — want 0\n",
                 static_cast<unsigned long long>(frr.window_allocs));
    ok = false;
  }
  std::printf("wrote BENCH_slo.json (frr blackhole %.1f us, igp %.1f ms, "
              "zero-alloc %s)\n",
              frr.blackhole_ns / 1e3, igp.blackhole_ns / 1e6,
              !frr.hooks ? "unmeasured" : (frr.zero_alloc ? "yes" : "NO"));
  return ok ? 0 : 1;
}
