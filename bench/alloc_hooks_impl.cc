// Strong half of util/alloc_hooks: counting replacements for the global
// operator new/delete family. Compiled ONLY into binaries that measure
// allocator traffic (bench_hotpath, tests/alloc_test) — the core library
// and every other target keep the system allocator untouched.
//
// The replacements defer to malloc/free, so behaviour is unchanged except
// for two relaxed atomic increments per call; the counters are monotonic
// process-wide totals read through util::alloc_counters().
#include <atomic>
#include <cstdlib>
#include <new>

#include "util/alloc_hooks.h"

namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace srv6bpf::util {

bool alloc_hooks_active() noexcept { return true; }

AllocCounters alloc_counters() noexcept {
  return {g_news.load(std::memory_order_relaxed),
          g_deletes.load(std::memory_order_relaxed)};
}

}  // namespace srv6bpf::util

// ---- global replacements ----------------------------------------------------

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_alloc_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_alloc_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
