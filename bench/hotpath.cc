// Hot-path allocation bench — proof of the zero-allocation steady state.
//
// Two scenarios, each run three times in one process:
//   * fig2       — the paper's §3.2 End.BPF saturation run (S1 offers 3 Mpps
//                  of 64-byte SRv6 traffic through an End.BPF SID on the
//                  CPU-modelled router R);
//   * fig2_fib48 — the same topology with a 2048-route /48 FIB at R and
//                  TrafGen dst_spread cycling every site, so the stride trie
//                  (not the route cache) carries every lookup.
// and three modes:
//   * pooled     — BufferPool/BurstPool recycling on, TrafGen stamping from
//                  its cached template (the default configuration);
//   * baseline   — pools disabled, so every Packet buffer / burst node is a
//                  fresh new/delete while everything else (template
//                  stamping included) is unchanged: the honest pre-pool
//                  allocator behaviour, and the denominator of the gated
//                  speedup;
//   * rebuild    — pools disabled AND TrafGen rebuilding every packet from
//                  its PacketSpec (SRH re-serialised, checksum recomputed):
//                  quantifies what template stamping itself saves; reported,
//                  not gated.
//
// For each run the measured window (after a 30 ms warm-up that fills the RX
// rings, the event queue's reserved storage and the pools) reports simulated
// sink kpps, simulated-packets-per-wall-second, and — through the
// util/alloc_hooks operator-new counter compiled into this binary — the
// exact number of allocator calls in the window and per forwarded packet.
//
// Self-enforced gates (ISSUE 5; non-zero exit below them):
//   * pooled steady state performs 0 allocations per forwarded packet —
//     literally zero operator-new calls inside the warmed-up window. The
//     count is deterministic, so this gate is enforced in every mode,
//     --quick included;
//   * pooled >= 1.25x baseline simulated-packets-per-wall-second on fig2.
//     Wall-clock ratio: enforced on full-length runs only (--quick windows
//     on shared CI runners are too noisy to gate on, per the bench/history
//     wall-floor policy; check_history.py tracks it as a wall floor).
//
// Writes BENCH_hotpath.json into the current directory on every run.
//
//   ./bench_hotpath              # full windows + table + both gates
//   ./bench_hotpath --quick      # CI smoke: zero-alloc gate only
//   ./bench_hotpath --json-only  # no table, just BENCH_hotpath.json
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/buffer_pool.h"
#include "util/alloc_hooks.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

constexpr double kGateSpeedup = 1.25;  // pooled vs baseline, fig2 wall
constexpr double kOfferedPps = 3e6;
constexpr std::size_t kFibRoutes = 2048;

struct Run {
  double sim_kpps = 0;
  std::uint64_t offered = 0;    // generator packets in the window
  std::uint64_t forwarded = 0;  // R tx_packets in the window
  std::uint64_t delivered = 0;  // sink packets in the window
  double wall_s = 0;
  double sim_pkts_per_wall_s = 0;
  std::uint64_t allocs_window = 0;  // operator-new calls in the window
  double allocs_per_pkt = 0;
  std::uint64_t pool_reuses = 0;  // BufferPool freelist hits in the window
};

void install_end_bpf(Setup1& lab) {
  const usecases::BuiltProgram built = usecases::build_end();
  auto load = lab.r->ns().bpf().load(built.name, ebpf::ProgType::kLwtSeg6Local,
                                     built.insns, built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "verifier rejected %s: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  lab.r->ns().seg6local().add(lab.sid, e);
}

// Adds the /48 site FIB + matching local addresses of the lpm_sweep
// end-to-end scenario.
void install_fib48(Setup1& lab) {
  char buf[64];
  for (std::size_t i = 0; i < kFibRoutes; ++i) {
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::/48", i);
    lab.r->ns().table(0).add_route(net::Prefix::parse(buf).value(),
                                   {net::Ipv6Addr{}, lab.r_downstream_if, 1});
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::2", i);
    lab.s2->ns().add_local_addr(net::Ipv6Addr::must_parse(buf));
  }
}

// One measured run. `fib48` picks the scenario; `pooled` toggles the
// BufferPool/BurstPool freelists, `use_template` the generator's stamping.
Run run_one(bool fib48, bool pooled, bool use_template, sim::TimeNs duration) {
  net::BufferPool::set_enabled(pooled);
  Run out;
  {
    Setup1 lab;
    if (fib48)
      install_fib48(lab);
    else
      install_end_bpf(lab);

    apps::TrafGen::Config cfg;
    cfg.spec.src = lab.s1_addr;
    if (fib48) {
      cfg.spec.dst = net::Ipv6Addr::must_parse("2001:db8::2");
      cfg.dst_spread = kFibRoutes;
    } else {
      cfg.spec.dst = lab.s2_addr;
      cfg.spec.segments = {lab.sid, lab.s2_addr};
    }
    cfg.spec.payload_size = 64;
    cfg.spec.dst_port = 7001;
    cfg.pps = kOfferedPps;
    cfg.use_template = use_template;
    cfg.start_at = lab.net.now();
    cfg.duration = duration + 80 * sim::kMilli;
    lab.gen = std::make_unique<apps::TrafGen>(*lab.s1, cfg);
    lab.gen->start();

    // Warm-up: fills the RX rings to their limit (the scenario saturates R),
    // the event queue's reserved heap storage and the buffer/burst pools.
    lab.net.run_for(30 * sim::kMilli);
    lab.sink->reset();
    net::BufferPool::reset_stats();

    const std::uint64_t sent0 = lab.gen->sent();
    const std::uint64_t fwd0 = lab.r->stats().tx_packets;
    const util::AllocCounters a0 = util::alloc_counters();
    const sim::TimeNs sim0 = lab.net.now();
    const auto t0 = std::chrono::steady_clock::now();
    lab.net.run_for(duration);
    out.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const util::AllocCounters a1 = util::alloc_counters();

    out.sim_kpps = lab.sink->meter().kpps(lab.net.now() - sim0);
    out.offered = lab.gen->sent() - sent0;
    out.forwarded = lab.r->stats().tx_packets - fwd0;
    out.delivered = lab.sink->packets();
    out.sim_pkts_per_wall_s =
        out.wall_s > 0 ? static_cast<double>(out.offered) / out.wall_s : 0;
    out.allocs_window = a1.news - a0.news;
    out.allocs_per_pkt =
        out.forwarded > 0 ? static_cast<double>(out.allocs_window) /
                                static_cast<double>(out.forwarded)
                          : static_cast<double>(out.allocs_window);
    out.pool_reuses = net::BufferPool::stats().reuses;
  }  // lab teardown returns every outstanding buffer before the next mode
  net::BufferPool::set_enabled(true);
  return out;
}

struct Scenario {
  std::string name;
  Run pooled;    // pools on, template stamping (the default configuration)
  Run baseline;  // pools off, template stamping (pre-pool behaviour; gated)
  Run rebuild;   // pools off, per-packet make_udp_packet (reported)
  double speedup_pool = 0;        // pooled / baseline
  double speedup_vs_rebuild = 0;  // pooled / rebuild
  bool zero_alloc = false;
};

Scenario run_scenario(const char* name, bool fib48, sim::TimeNs duration,
                      bool hooks) {
  Scenario s;
  s.name = name;
  s.pooled = run_one(fib48, /*pooled=*/true, /*use_template=*/true, duration);
  s.baseline =
      run_one(fib48, /*pooled=*/false, /*use_template=*/true, duration);
  s.rebuild =
      run_one(fib48, /*pooled=*/false, /*use_template=*/false, duration);
  s.speedup_pool = s.baseline.sim_pkts_per_wall_s > 0
                       ? s.pooled.sim_pkts_per_wall_s /
                             s.baseline.sim_pkts_per_wall_s
                       : 0;
  s.speedup_vs_rebuild = s.rebuild.sim_pkts_per_wall_s > 0
                             ? s.pooled.sim_pkts_per_wall_s /
                                   s.rebuild.sim_pkts_per_wall_s
                             : 0;
  s.zero_alloc = hooks && s.pooled.allocs_window == 0;
  return s;
}

void emit_run(std::FILE* f, const char* key, const Run& r, const char* tail) {
  std::fprintf(f,
               "    \"%s\": {\"sim_kpps\": %.1f, \"offered\": %llu, "
               "\"forwarded\": %llu, \"delivered\": %llu, \"wall_s\": %.4f, "
               "\"sim_pkts_per_wall_s\": %.0f, \"allocs_window\": %llu, "
               "\"allocs_per_pkt\": %.6f, \"pool_reuses\": %llu}%s\n",
               key, r.sim_kpps, static_cast<unsigned long long>(r.offered),
               static_cast<unsigned long long>(r.forwarded),
               static_cast<unsigned long long>(r.delivered), r.wall_s,
               r.sim_pkts_per_wall_s,
               static_cast<unsigned long long>(r.allocs_window),
               r.allocs_per_pkt,
               static_cast<unsigned long long>(r.pool_reuses), tail);
}

bool emit_json(const std::vector<Scenario>& scenarios, bool hooks,
               sim::TimeNs duration) {
  std::FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_hotpath.json");
    return false;
  }
  const net::BufferPool::Stats ps = net::BufferPool::stats();
  const net::BurstPool::Stats bs = net::BurstPool::stats();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"hooks_active\": %s,\n", hooks ? "true" : "false");
  std::fprintf(f, "  \"offered_pps\": %.0f,\n", kOfferedPps);
  std::fprintf(f, "  \"duration_ms\": %.0f,\n",
               static_cast<double>(duration) / 1e6);
  for (const Scenario& s : scenarios) {
    std::fprintf(f, "  \"%s\": {\n", s.name.c_str());
    emit_run(f, "pooled", s.pooled, ",");
    emit_run(f, "baseline", s.baseline, ",");
    emit_run(f, "rebuild", s.rebuild, ",");
    std::fprintf(f, "    \"speedup_pool\": %.3f,\n", s.speedup_pool);
    std::fprintf(f, "    \"speedup_vs_rebuild\": %.3f,\n",
                 s.speedup_vs_rebuild);
    std::fprintf(f, "    \"zero_alloc\": %d\n", s.zero_alloc ? 1 : 0);
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f,
               "  \"pool\": {\"buf_high_water\": %llu, \"buf_pooled\": %llu, "
               "\"burst_allocs\": %llu, \"burst_reuses\": %llu},\n",
               static_cast<unsigned long long>(ps.high_water),
               static_cast<unsigned long long>(ps.pooled),
               static_cast<unsigned long long>(bs.allocs),
               static_cast<unsigned long long>(bs.reuses));
  std::fprintf(f, "  \"gate_speedup\": %.2f\n", kGateSpeedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }
  const sim::TimeNs duration = (quick ? 50 : 200) * sim::kMilli;
  const bool hooks = util::alloc_hooks_active();

  if (!json_only)
    print_header(
        "Hot-path allocation bench: pooled steady state vs per-packet heap",
        "line-rate datapaths never malloc per packet; after warm-up neither "
        "does the simulator — gate: 0 allocs/pkt and pooled >= 1.25x "
        "baseline");
  if (!hooks)
    std::fprintf(stderr, "warning: alloc hooks not linked — allocation "
                         "counts unavailable, zero-alloc gate skipped\n");

  std::vector<Scenario> scenarios;
  scenarios.push_back(run_scenario("fig2", /*fib48=*/false, duration, hooks));
  scenarios.push_back(
      run_scenario("fig2_fib48", /*fib48=*/true, duration, hooks));

  const bool wrote = emit_json(scenarios, hooks, duration);

  if (!json_only) {
    std::printf("\n%-12s %-9s %10s %14s %12s %14s\n", "scenario", "mode",
                "sim kpps", "sim pkts/s", "allocs", "allocs/fwd pkt");
    for (const Scenario& s : scenarios) {
      const struct {
        const char* mode;
        const Run* r;
      } rows[] = {{"pooled", &s.pooled},
                  {"baseline", &s.baseline},
                  {"rebuild", &s.rebuild}};
      for (const auto& row : rows)
        std::printf("%-12s %-9s %10.1f %14.0f %12llu %14.6f\n",
                    row.r == &s.pooled ? s.name.c_str() : "", row.mode,
                    row.r->sim_kpps, row.r->sim_pkts_per_wall_s,
                    static_cast<unsigned long long>(row.r->allocs_window),
                    row.r->allocs_per_pkt);
      std::printf("%-12s %-9s speedup %.2fx vs baseline, %.2fx vs rebuild; "
                  "zero-alloc %s\n", "", "", s.speedup_pool,
                  s.speedup_vs_rebuild, s.zero_alloc ? "yes" : "NO");
    }
  }

  bool ok = wrote;
  // Deterministic gate (exact operator-new count): enforced in every mode.
  for (const Scenario& s : scenarios) {
    if (hooks && !s.zero_alloc) {
      std::fprintf(stderr, "GATE: %s pooled window performed %llu "
                   "allocations (%.6f per forwarded packet) — want 0\n",
                   s.name.c_str(),
                   static_cast<unsigned long long>(s.pooled.allocs_window),
                   s.pooled.allocs_per_pkt);
      ok = false;
    }
  }
  const double speedup = scenarios[0].speedup_pool;
  std::printf("wrote BENCH_hotpath.json (fig2 speedup_pool = %.2fx, gate >= "
              "%.2fx on full runs; zero-alloc %s)\n",
              speedup, kGateSpeedup,
              !hooks ? "unmeasured"
                     : (scenarios[0].zero_alloc && scenarios[1].zero_alloc)
                           ? "yes"
                           : "NO");
  // Wall-clock gate: full-length runs only, per the bench/history policy
  // (quick windows on shared CI runners are too noisy to hard-gate on;
  // check_history.py still tracks fig2.speedup_pool as a wall floor).
  if (!quick && speedup < kGateSpeedup) {
    std::fprintf(stderr, "GATE: fig2 pooled/baseline speedup %.3f below "
                 "%.2f\n", speedup, kGateSpeedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
