// §3.2 JIT experiment — the cost of running eBPF on the interpreter.
//
// Two complementary measurements:
//  1. *Real* wall-clock throughput of this repository's execution engines
//     (native x86-64 JIT, unchecked decoded, both interpreters) on the
//     paper's programs (honest numbers for THIS machine);
//  2. the *simulated* forwarding-rate factor on the modelled Xeon, which is
//     what reproduces the paper's "divided by 1.8" observation (the model's
//     per-instruction interpreter cost is calibrated against it, see
//     sim/costmodel.h).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "seg6/seg6local.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

// Wall-clock ns/run of a seg6local program processed through End.BPF.
double wallclock_ns_per_run(const usecases::BuiltProgram& built,
                            ebpf::EngineKind engine, int iters = 20000) {
  seg6::Netns ns("bench");
  ns.table(0).add_route(net::Prefix::parse("fc00::/16").value(),
                        {net::Ipv6Addr::must_parse("fe80::1"), 0, 1});
  ns.bpf().set_engine(engine);
  auto load = ns.bpf().load(built.name, ebpf::ProgType::kLwtSeg6Local,
                            built.insns, built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "%s rejected: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;

  net::PacketSpec spec;
  spec.src = net::Ipv6Addr::must_parse("fc00::1");
  spec.segments = {net::Ipv6Addr::must_parse("fc00::e1"),
                   net::Ipv6Addr::must_parse("fc00::d1")};
  spec.payload_size = 64;
  const net::Packet tmpl = net::make_udp_packet(spec);

  seg6::ProcessTrace trace;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    net::Packet pkt = tmpl;
    seg6local_process(ns, pkt, e, &trace);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// Simulated forwarding rate of Add TLV through R (as in fig2).
double simulated_kpps(bool jit) {
  Setup1 lab;
  lab.r->ns().bpf().set_jit_enabled(jit);
  auto built = usecases::build_add_tlv();
  auto load = lab.r->ns().bpf().load(
      built.name, ebpf::ProgType::kLwtSeg6Local, built.insns, built.paper_sloc);
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  lab.r->ns().seg6local().add(lab.sid, e);
  return lab.measure(true, 3e6, 150 * sim::kMilli);
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: CI smoke mode — shorter measurement windows, same coverage.
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const int iters = quick ? 2000 : 20000;

  print_header("JIT vs interpreter",
               "disabling the JIT divides Add-TLV forwarding by ~1.8; the "
               "factor grows with program size");

  std::printf("native x86-64 JIT: %s\n",
              ebpf::Jit::available()
                  ? "available"
                  : "unavailable (native column falls back to unchecked)");
  std::printf("\n-- real engine wall-clock on this machine (End.BPF + "
              "program + helpers, per packet) --\n");
  std::printf("%-16s %10s %12s %14s %14s %9s %9s\n", "program", "native",
              "unchecked", "interp ns/pkt", "base-interp", "int/nat",
              "base/int");
  const usecases::BuiltProgram progs[] = {
      usecases::build_end(),
      usecases::build_tag_increment(),
      usecases::build_add_tlv(),
  };
  for (const auto& p : progs) {
    const double nat_ns =
        wallclock_ns_per_run(p, ebpf::EngineKind::kNative, iters);
    const double unc_ns =
        wallclock_ns_per_run(p, ebpf::EngineKind::kUnchecked, iters);
    const double int_ns =
        wallclock_ns_per_run(p, ebpf::EngineKind::kInterp, iters);
    const double base_ns =
        wallclock_ns_per_run(p, ebpf::EngineKind::kInterpBaseline, iters);
    std::printf("%-16s %10.1f %12.1f %14.1f %14.1f %8.2fx %8.2fx\n", p.name,
                nat_ns, unc_ns, int_ns, base_ns, int_ns / nat_ns,
                base_ns / int_ns);
  }

  std::printf("\n-- simulated Xeon forwarding rate, Add TLV (fig. 2 "
              "rightmost bars) --\n");
  const double with_jit = simulated_kpps(true);
  const double without = simulated_kpps(false);
  std::printf("JIT on : %10.1f kpps\n", with_jit);
  std::printf("JIT off: %10.1f kpps\n", without);
  std::printf("factor : %10.2fx   (paper ~1.8x)\n", with_jit / without);
  return 0;
}
