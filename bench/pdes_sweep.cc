// Parallel-simulation sweep — wall-clock scale-out of the PDES EventLoop
// sharding, with bit-identical results as the hard gate.
//
// Runs the generated ring topology (sim/pdes_topo.h: 8 segments x 5
// CPU-modelled routers + src + sink = 56 nodes, one PDES domain per
// segment, 50 us long-hauls as lookahead) under saturating per-segment
// UDP load at 1, 2, 4 and 8 worker threads, and measures simulated packets
// delivered per wall-second.
//
// Two results ride in BENCH_pdes.json:
//   - digest_match (simulated, deterministic, self-gated here AND a hard
//     floor in check_history.py): every thread count must produce exactly
//     the single-thread run's delivery digest — the determinism contract.
//   - speedup_8t (wall-clock, warn-level floor 3.0 in check_history.py):
//     8-thread sim-pkts-per-wall-second over 1-thread. Wall ratios are
//     noisy on shared CI runners, so like every other wall metric it only
//     hard-fails with --strict.
//
//   ./bench_pdes_sweep              # full windows + table
//   ./bench_pdes_sweep --quick      # short windows (CI smoke / TSan job)
//   ./bench_pdes_sweep --json-only  # no table, just BENCH_pdes.json
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/pdes_topo.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

constexpr double kSpeedupGate = 3.0;  // informational here; floor lives in
                                      // bench/history/baseline.json (wall)
constexpr double kPerSegmentPps = 450000;  // ~3/4 of a Xeon core's cap

// FNV-1a over little-endian u64s (the mc_test golden-digest pattern).
struct Digest {
  std::uint64_t delivered = 0;
  std::uint64_t fnv = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fnv ^= (v >> (i * 8)) & 0xff;
      fnv *= 1099511628211ull;
    }
  }
};

struct Row {
  std::size_t threads = 0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;      // events executed across all domain loops
  std::uint64_t digest = 0;
  double wall_s = 0;
  double pkts_per_wall_s = 0;
};

Row run_one(std::size_t threads, sim::TimeNs window) {
  sim::RingTopoSpec spec;  // defaults: 8 segments x (5 routers + src + sink)
  sim::Network net(0x9de5);
  sim::RingTopo topo = build_ring_topology(net, spec);
  net.set_domain_count(spec.segments);
  net.seal_domains();

  std::vector<std::unique_ptr<apps::AppMux>> muxes;
  std::vector<std::unique_ptr<apps::TrafGen>> gens;
  std::vector<Digest> digs(spec.segments);
  for (std::size_t s = 0; s < spec.segments; ++s) {
    auto& seg = topo.segments[s];
    muxes.push_back(std::make_unique<apps::AppMux>(*seg.sink));
    muxes.back()->on_udp(
        7001, [&dig = digs[s]](const net::Packet& pkt, const net::UdpHeader&,
                               std::span<const std::uint8_t>,
                               sim::TimeNs now) {
          ++dig.delivered;
          dig.mix(now);
          dig.mix(pkt.seq);
        });
    apps::TrafGen::Config cfg;
    cfg.spec.src = seg.src_addr;
    cfg.spec.dst = seg.dst_addr;
    cfg.spec.payload_size = 64;
    cfg.spec.dst_port = 7001;
    cfg.pps = kPerSegmentPps;
    cfg.duration = window;
    cfg.flow_label_spread = 16;
    cfg.src_port_spread = 7;
    gens.push_back(std::make_unique<apps::TrafGen>(*seg.src, cfg));
    gens.back()->start();
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.run_parallel_until(window + 10 * sim::kMilli, threads);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.threads = threads;
  // Fold the per-segment digests in segment order: a pure function of the
  // simulation, so every thread count must reproduce it exactly.
  Digest total;
  for (const Digest& d : digs) {
    total.delivered += d.delivered;
    total.mix(d.fnv);
    total.mix(d.delivered);
  }
  row.delivered = total.delivered;
  row.digest = total.fnv;
  row.events = net.pdes_net().events_executed();
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.pkts_per_wall_s = row.wall_s > 0 ? row.delivered / row.wall_s : 0;
  return row;
}

void emit_json(const std::vector<Row>& rows, bool digest_match,
               double speedup_8t, sim::TimeNs window) {
  FILE* f = std::fopen("BENCH_pdes.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pdes_sweep\",\n");
  std::fprintf(f, "  \"scenario\": \"ring topology, 8 segments x 5 Xeon "
                  "routers (56 nodes), %.0f kpps/segment\",\n",
               kPerSegmentPps / 1e3);
  std::fprintf(f, "  \"window_ms\": %.1f,\n",
               static_cast<double>(window) / 1e6);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"delivered\": %llu, "
                 "\"events\": %llu, \"digest\": \"0x%016llx\", "
                 "\"wall_s\": %.4f, \"pkts_per_wall_s\": %.0f}%s\n",
                 r.threads, static_cast<unsigned long long>(r.delivered),
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.digest), r.wall_s,
                 r.pkts_per_wall_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"digest_match\": %d,\n", digest_match ? 1 : 0);
  std::fprintf(f, "  \"speedup_8t\": %.3f,\n", speedup_8t);
  // Wall speedup only means anything relative to the cores actually
  // available: on a 1-core CI runner the best possible value is ~1.0.
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"gate_speedup\": %.2f\n", kSpeedupGate);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json-only") == 0) json_only = true;
  }
  const sim::TimeNs window = (quick ? 20 : 120) * sim::kMilli;

  if (!json_only)
    print_header(
        "PDES sweep: wall-clock scale-out of the sharded EventLoop",
        "bit-identical delivery digests at every thread count (hard gate) "
        "and >= 3x sim-pkts-per-wall-second at 8 threads (wall floor)");

  std::vector<Row> rows;
  for (const std::size_t threads : {1u, 2u, 4u, 8u})
    rows.push_back(run_one(threads, window));

  bool digest_match = true;
  for (const Row& r : rows)
    digest_match = digest_match && r.digest == rows[0].digest &&
                   r.delivered == rows[0].delivered;
  const double speedup_8t =
      rows[0].pkts_per_wall_s > 0
          ? rows.back().pkts_per_wall_s / rows[0].pkts_per_wall_s
          : 0;
  emit_json(rows, digest_match, speedup_8t, window);

  if (!json_only) {
    std::printf("\n%8s %10s %12s %20s %8s %14s\n", "threads", "delivered",
                "events", "digest", "wall s", "pkts/wall-s");
    for (const Row& r : rows)
      std::printf("%8zu %10llu %12llu   0x%016llx %8.3f %14.0f\n", r.threads,
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.digest), r.wall_s,
                  r.pkts_per_wall_s);
    std::printf("\n8-thread speedup: %.2fx (target >= %.1fx; wall-clock, "
                "warn-level in CI)\n",
                speedup_8t, kSpeedupGate);
  }
  std::printf("wrote BENCH_pdes.json (digest_match = %d, speedup_8t = "
              "%.2fx)\n",
              digest_match ? 1 : 0, speedup_8t);
  // Determinism is the hard self-gate: any digest divergence across thread
  // counts fails the bench regardless of measurement mode. The wall-clock
  // speedup floor is enforced (warn-level) by bench/check_history.py.
  return digest_match ? 0 : 1;
}
