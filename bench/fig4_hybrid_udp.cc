// Figure 4 — "Aggregated UDP goodput with Turris Omnia."
//
// An iperf3-like UDP flow is offered at 1 Gbps through the CPE for payload
// sizes 200..1400 bytes, in three configurations: plain IPv6 forwarding,
// kernel SRv6 decapsulation, and the eBPF WRR encapsulation running on the
// interpreter (the ARM32 JIT bug, §4.2).
//
// Paper anchors: the Turris CPU is the bottleneck at small payloads; the
// kernel decap costs ~10% vs plain forwarding; the eBPF WRR (interpreter) is
// clearly slower but approaches the baseline at 1400-byte payloads where the
// 1 Gbps line is the limit.
#include <cstdio>

#include "bench_common.h"
#include "usecases/hybrid.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

int main() {
  print_header("Figure 4: aggregated UDP goodput through the Turris Omnia",
               "CPU-bound rising curves; decap ~10% below plain forwarding; "
               "eBPF WRR (interpreter) lowest, converging at 1400 B");
  std::printf("(vector datapath: the CPE drains bursts of %zu per service "
              "event; goodput is burst-invariant)\n", sim::kDefaultRxBurst);

  const std::size_t payloads[] = {200, 400, 600, 800, 1000, 1200, 1400};
  const sim::TimeNs duration = 200 * sim::kMilli;

  std::printf("\n%8s %18s %18s %18s\n", "payload", "IPv6 forward.",
              "Kernel decap.", "eBPF WRR");
  std::printf("%8s %18s %18s %18s\n", "(bytes)", "(Mbps)", "(Mbps)", "(Mbps)");
  for (const std::size_t payload : payloads) {
    double mbps[3];
    const usecases::Fig4Lab::Mode modes[] = {
        usecases::Fig4Lab::Mode::kPlainForward,
        usecases::Fig4Lab::Mode::kKernelDecap,
        usecases::Fig4Lab::Mode::kEbpfWrr,
    };
    for (int m = 0; m < 3; ++m) {
      usecases::Fig4Lab lab({.mode = modes[m]});
      mbps[m] = lab.run_udp(payload, duration);
    }
    std::printf("%8zu %18.1f %18.1f %18.1f\n", payload, mbps[0], mbps[1],
                mbps[2]);
  }
  return 0;
}
