// Figure 3 — "Impact of both BPF programs on the forwarding performances,
// for two probing ratios."
//
// Two experiments on the setup-1 lab, R's core being the bottleneck:
//   * Encap: R runs the DM transit eBPF program (BPF LWT) for *every* packet
//     towards S2, encapsulating 1:N of them with the DM probe SRH.
//   * End.DM: S1 offers a mix of plain packets and pre-encapsulated probes
//     (1:N); R runs End.DM (End.BPF) for the probes only.
// Rates are normalized to raw IPv6 forwarding (the paper's 610 kpps).
//
// Paper anchors: Encap ≈ 95% of raw forwarding; End.DM ≈ 100% at 1:10000 and
// ≥ ~98% at 1:100.
#include <cstring>

#include "bench_common.h"
#include "ebpf/perf_event.h"
#include "net/srh.h"

using namespace srv6bpf;
using namespace srv6bpf::bench;

namespace {

// Builds a pre-encapsulated OWD probe: outer IPv6 + SRH{[dm_sid, final],
// DM TLV, controller TLV} + inner UDP packet (the trafgen template).
net::Packet make_owd_probe(const Setup1& lab, const net::Ipv6Addr& dm_sid) {
  net::PacketSpec inner;
  inner.src = lab.s1_addr;
  inner.dst = lab.s2_addr;
  inner.dst_port = 7001;
  inner.payload_size = 64;
  net::Packet pkt = net::make_udp_packet(inner);

  std::vector<std::uint8_t> tlvs = net::build_dm_tlv(/*tx=*/123456789);
  auto ctrl = net::build_controller_tlv(net::kTlvController, lab.s1_addr, 9999);
  tlvs.insert(tlvs.end(), ctrl.begin(), ctrl.end());
  const net::Ipv6Addr segs[] = {dm_sid, lab.s2_addr};
  const auto srh = net::build_srh(net::kProtoIpv6, segs, tlvs);

  net::Ipv6Header outer;
  outer.src = lab.s1_addr;
  outer.dst = dm_sid;
  outer.next_header = net::kProtoRouting;
  outer.hop_limit = 64;
  outer.payload_length = static_cast<std::uint16_t>(srh.size() + pkt.size());
  std::uint8_t* front = pkt.push_front(net::kIpv6HeaderSize + srh.size());
  outer.write(front);
  std::memcpy(front + net::kIpv6HeaderSize, srh.data(), srh.size());
  return pkt;
}

// R encapsulates 1:N of the plain stream (transit behaviour under test).
double measure_encap(std::uint64_t ratio) {
  Setup1 lab;
  const auto decap_sid = net::Ipv6Addr::must_parse("fc00:a::d6");

  auto& bpf = lab.r->ns().bpf();
  ebpf::MapDef def;
  def.type = ebpf::MapType::kArray;
  def.key_size = 4;
  def.value_size = sizeof(usecases::DmEncapConfig);
  def.max_entries = 1;
  def.name = "cfg";
  const auto cfg_id = bpf.maps().create(def);
  usecases::DmEncapConfig cfg;
  cfg.ratio = ratio;
  std::memcpy(cfg.dm_sid, decap_sid.bytes().data(), 16);
  std::memcpy(cfg.final_seg, lab.s2_addr.bytes().data(), 16);
  std::memcpy(cfg.ctrl_addr, lab.s1_addr.bytes().data(), 16);
  cfg.ctrl_port = 9999;
  bpf.maps().get(cfg_id)->put(std::uint32_t{0}, cfg);

  auto built = usecases::build_dm_encap(cfg_id);
  auto load = bpf.load(built.name, ebpf::ProgType::kLwtXmit, built.insns,
                       built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "%s rejected: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  auto lwt = std::make_shared<seg6::LwtState>();
  lwt->kind = seg6::LwtState::Kind::kBpf;
  lwt->prog_xmit = load.prog;
  // Replace R's downstream route with the LWT-BPF one.
  lab.r->ns().table(0).clear();
  lab.r->ns().table(0).add_route({net::Prefix::parse("fc00:2::/64").value(),
                                  {{net::Ipv6Addr{}, lab.r_downstream_if, 1}},
                                  lwt});
  lab.r->ns().table(0).add_route(net::Prefix::parse("fc00:1::/64").value(),
                                 {net::Ipv6Addr{}, lab.r_upstream_if, 1});
  lab.r->ns().table(0).add_route(net::Prefix::parse("fc00:a::/64").value(),
                                 {net::Ipv6Addr{}, lab.r_downstream_if, 1});

  // Probes decapsulate at S2 (End.DT6), so the inner packets still count.
  seg6::Seg6LocalEntry dt6;
  dt6.action = seg6::Seg6Action::kEndDT6;
  lab.s2->ns().seg6local().add(decap_sid, dt6);

  return lab.measure(/*through_sid=*/false, 3e6, 200 * sim::kMilli);
}

// S1 offers (1 - 1/N) plain + 1/N probes; R runs End.DM for the probes.
double measure_end_dm(std::uint64_t ratio) {
  Setup1 lab;
  const auto dm_sid = net::Ipv6Addr::must_parse("fc00:f::dd");
  auto& bpf = lab.r->ns().bpf();
  const auto perf_id = ebpf::create_perf_event_array(bpf.maps(), "dm", 1 << 20);
  auto built = usecases::build_end_dm(perf_id);
  auto load = bpf.load(built.name, ebpf::ProgType::kLwtSeg6Local, built.insns,
                       built.paper_sloc);
  if (!load.ok()) {
    std::fprintf(stderr, "%s rejected: %s\n", built.name,
                 load.verify.error.c_str());
    std::exit(1);
  }
  seg6::Seg6LocalEntry e;
  e.action = seg6::Seg6Action::kEndBPF;
  e.prog = load.prog;
  lab.r->ns().seg6local().add(dm_sid, e);

  // Probe stream (1/N of 3 Mpps) injected directly at S1's link.
  net::Packet probe_template = make_owd_probe(lab, dm_sid);
  const double probe_pps = 3e6 / static_cast<double>(ratio);
  struct ProbeGen {
    sim::Node* s1;
    net::Packet tmpl;
    sim::TimeNs interval;
    sim::TimeNs next = 0;
    sim::TimeNs stop;
    void tick() {
      if (s1->loop().now() >= stop) return;
      net::Packet p = tmpl;
      s1->send(std::move(p));
      next += interval;
      s1->loop().schedule_at(next, [this] { tick(); });
    }
  };
  ProbeGen probe_gen{lab.s1, std::move(probe_template),
                     static_cast<sim::TimeNs>(1e9 / probe_pps), 0,
                     300 * sim::kMilli};
  lab.net.loop().schedule_at(0, [&probe_gen] { probe_gen.tick(); });

  return lab.measure(/*through_sid=*/false, 3e6 - probe_pps,
                     200 * sim::kMilli);
}

}  // namespace

int main() {
  print_header("Figure 3: passive delay monitoring overhead on R",
               "Encap ~95% of raw forwarding; End.DM ~100% @1:10000, both "
               ">=94% @1:100");

  Setup1 baseline_lab;
  const double baseline =
      baseline_lab.measure(false, 3e6, 200 * sim::kMilli);

  struct Row {
    const char* name;
    double kpps;
  } rows[] = {
      {"Encap  1:10000", measure_encap(10000)},
      {"End.DM 1:10000", measure_end_dm(10000)},
      {"Encap  1:100", measure_encap(100)},
      {"End.DM 1:100", measure_end_dm(100)},
  };

  std::printf("\nraw IPv6 forwarding baseline: %.1f kpps\n\n", baseline);
  std::printf("%-16s %10s %12s\n", "experiment", "kpps", "% of raw");
  for (const auto& row : rows)
    std::printf("%-16s %10.1f %11.1f%%\n", row.name, row.kpps,
                100.0 * row.kpps / baseline);
  return 0;
}
