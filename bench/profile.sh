#!/usr/bin/env sh
# Flamegraph harness (ROADMAP "flamegraph harness" item): run a bench binary
# under `perf record` and emit a folded-stack file that any flamegraph
# renderer (e.g. flamegraph.pl, speedscope, inferno) accepts — so hot-path
# claims ship with profiles instead of assertions.
#
# Usage: bench/profile.sh BINARY NAME [ARGS...]
#   BINARY  bench executable to profile (e.g. build/bench_fig2_endpoints)
#   NAME    output stem: writes bench/out/NAME.perf.data + bench/out/NAME.folded
#   ARGS    forwarded to the binary
#
# Wired into CMake as `cmake --build build --target profile_fig2` (also
# profile_fig3, profile_hotpath). Skips gracefully — exit 0 with a note —
# when perf is missing or the kernel forbids profiling, so CI and
# perf-less containers never fail on it.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 BINARY NAME [ARGS...]" >&2
    exit 2
fi

BINARY="$1"
NAME="$2"
shift 2

OUT_DIR="$(dirname "$0")/out"
mkdir -p "$OUT_DIR"
PERF_DATA="$OUT_DIR/$NAME.perf.data"
FOLDED="$OUT_DIR/$NAME.folded"

if ! command -v perf >/dev/null 2>&1; then
    echo "profile.sh: perf not found — skipping (install linux-perf to profile)"
    exit 0
fi

# Dry-run: some kernels/containers expose a perf binary but refuse
# perf_event_open (perf_event_paranoid, seccomp). Treat that as a skip too.
if ! perf record -o /dev/null -- true >/dev/null 2>&1; then
    echo "profile.sh: perf record not permitted here — skipping" \
         "(try: sysctl kernel.perf_event_paranoid=1)"
    exit 0
fi

echo "profile.sh: perf record -g -- $BINARY $*"
perf record -g --call-graph dwarf -o "$PERF_DATA" -- "$BINARY" "$@"

# Fold stacks: "main;Node::service_burst;... COUNT" per line. Equivalent to
# FlameGraph's stackcollapse-perf.pl for the fields perf script emits here,
# without requiring that repo to be installed.
perf script -i "$PERF_DATA" 2>/dev/null | awk '
    /^[^[:space:]#]/ { inblock = 1; delete stack; depth = 0; next }
    inblock && NF == 0 {
        if (depth > 0) {
            folded = stack[depth]
            for (i = depth - 1; i >= 1; i--) folded = folded ";" stack[i]
            counts[folded]++
        }
        inblock = 0; next
    }
    inblock {
        # "        55f2a3b4c5d6 std::vector<net::Packet>::op()+0x1f (bin)"
        # Demangled C++ names contain spaces, so peel the line apart instead
        # of taking one whitespace-delimited field: drop the leading address,
        # the trailing " (dso)" and the +0xOFFSET suffix.
        frame = $0
        sub(/^[[:space:]]+/, "", frame)
        sub(/^[0-9a-f]+[[:space:]]+/, "", frame)
        sub(/[[:space:]]+\([^()]*\)$/, "", frame)
        sub(/\+0x[0-9a-f]+$/, "", frame)
        gsub(/;/, ":", frame)  # ";" is the fold separator
        if (frame != "[unknown]" && frame != "") stack[++depth] = frame
    }
    END { for (f in counts) print f, counts[f] }
' > "$FOLDED"

LINES=$(wc -l < "$FOLDED")
echo "profile.sh: wrote $FOLDED ($LINES unique stacks)"
echo "profile.sh: render with e.g. flamegraph.pl $FOLDED > $NAME.svg"
