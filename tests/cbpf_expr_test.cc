// Tests for the tcpdump-expression compiler: parse diagnostics, and
// match/no-match behaviour of compiled filters over crafted packets —
// including SRH-encapsulated traffic, which the generated extension-header
// walk must see through.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cbpf/expr.h"
#include "cbpf/insn.h"
#include "cbpf/interp.h"
#include "cbpf/translate.h"
#include "net/packet.h"

namespace srv6bpf::cbpf {
namespace {

std::vector<std::uint8_t> udp_packet(const char* src, const char* dst,
                                     std::uint16_t sport, std::uint16_t dport,
                                     std::size_t payload = 32,
                                     bool with_srh = false) {
  net::PacketSpec spec;
  spec.src = net::Ipv6Addr::must_parse(src);
  spec.dst = net::Ipv6Addr::must_parse(dst);
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.payload_size = payload;
  if (with_srh) {
    spec.segments = {net::Ipv6Addr::must_parse("fc00::a"),
                     net::Ipv6Addr::must_parse(dst)};
  }
  net::Packet pkt = net::make_udp_packet(spec);
  return {pkt.bytes().begin(), pkt.bytes().end()};
}

bool matches(std::string_view expr, const std::vector<std::uint8_t>& pkt) {
  const CompileResult cr = compile(expr);
  EXPECT_TRUE(cr.ok) << "compile(\"" << expr << "\"): " << cr.error;
  if (!cr.ok) return false;
  const CheckResult chk = check(cr.insns);
  EXPECT_TRUE(chk.ok) << chk.error << "\n" << disasm(cr.insns);
  return run(cr.insns, pkt.data(), pkt.size()) != 0;
}

TEST(CbpfExpr, ReportsParseErrors) {
  for (const char* bad : {"", "and udp", "udp and", "udp or (tcp",
                          "port", "port banana", "host 2001:db8::zz",
                          "net 2001:db8::/129", "frobnicate", "udp tcp",
                          "greater", "not"}) {
    const CompileResult cr = compile(bad);
    EXPECT_FALSE(cr.ok) << "compile(\"" << bad << "\") should fail";
    EXPECT_FALSE(cr.error.empty());
  }
}

TEST(CbpfExpr, CompiledFiltersPassCheckAndTranslate) {
  for (const char* good :
       {"udp", "ip6 and udp and dst port 7001",
        "srh and (dst net 2001:db8::/32 or src host fc00::1)",
        "not (tcp or icmp6) and greater 100", "proto 43", "less 1500"}) {
    const CompileResult cr = compile(good);
    ASSERT_TRUE(cr.ok) << good << ": " << cr.error;
    const TranslateResult tr = translate(cr.insns);
    EXPECT_TRUE(tr.ok) << good << ": " << tr.error << "\n" << disasm(cr.insns);
  }
}

TEST(CbpfExpr, TransportProtocolPrimitives) {
  const auto udp = udp_packet("2001:db8::1", "2001:db8::2", 5000, 7);
  EXPECT_TRUE(matches("ip6", udp));
  EXPECT_TRUE(matches("udp", udp));
  EXPECT_FALSE(matches("tcp", udp));
  EXPECT_FALSE(matches("icmp6", udp));
  EXPECT_TRUE(matches("proto 17", udp));
  EXPECT_FALSE(matches("proto 6", udp));
  // A version nibble of 4 fails the ip6 test (and everything transport).
  const std::vector<std::uint8_t> v4ish = {0x45, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(matches("ip6", v4ish));
  EXPECT_FALSE(matches("udp", v4ish));
  EXPECT_FALSE(matches("udp", {}));  // empty packet never matches
}

TEST(CbpfExpr, PortPrimitivesRespectDirection) {
  const auto udp = udp_packet("2001:db8::1", "2001:db8::2", 5000, 7);
  EXPECT_TRUE(matches("dst port 7", udp));
  EXPECT_TRUE(matches("src port 5000", udp));
  EXPECT_TRUE(matches("port 7", udp));
  EXPECT_TRUE(matches("port 5000", udp));
  EXPECT_FALSE(matches("dst port 5000", udp));
  EXPECT_FALSE(matches("src port 7", udp));
  EXPECT_FALSE(matches("port 9999", udp));
  EXPECT_TRUE(matches("udp and dst port 7", udp));
}

TEST(CbpfExpr, HostAndNetPrimitives) {
  const auto udp = udp_packet("2001:db8::1", "fc00::9", 5000, 7);
  EXPECT_TRUE(matches("src host 2001:db8::1", udp));
  EXPECT_TRUE(matches("dst host fc00::9", udp));
  EXPECT_TRUE(matches("host fc00::9", udp));
  EXPECT_FALSE(matches("src host fc00::9", udp));
  EXPECT_FALSE(matches("host 2001:db8::2", udp));
  EXPECT_TRUE(matches("src net 2001:db8::/32", udp));
  EXPECT_TRUE(matches("dst net fc00::/7", udp));
  EXPECT_FALSE(matches("dst net 2001:db8::/32", udp));
  // Non-octet-aligned prefix length exercises the masked tail word.
  EXPECT_TRUE(matches("net 2001:db8::/45", udp));
  EXPECT_FALSE(matches("net 2001:dc0::/45", udp));
}

TEST(CbpfExpr, SeesThroughSrhEncapsulation) {
  const auto plain = udp_packet("2001:db8::1", "2001:db8::2", 5000, 7001);
  const auto seg = udp_packet("2001:db8::1", "2001:db8::2", 5000, 7001,
                              32, /*with_srh=*/true);
  // The paper's fig.3 shape: UDP behind a routing header. One expression
  // matches both the plain and the encapsulated form.
  EXPECT_TRUE(matches("udp and dst port 7001", plain));
  EXPECT_TRUE(matches("udp and dst port 7001", seg));
  EXPECT_FALSE(matches("udp and dst port 9999", seg));
  EXPECT_TRUE(matches("srh", seg));
  EXPECT_FALSE(matches("srh", plain));
  EXPECT_TRUE(matches("srh and udp and dst port 7001", seg));
}

TEST(CbpfExpr, LengthPrimitives) {
  const auto udp = udp_packet("2001:db8::1", "2001:db8::2", 1, 2, 60);
  const std::size_t len = udp.size();
  EXPECT_TRUE(matches("greater " + std::to_string(len), udp));
  EXPECT_TRUE(matches("less " + std::to_string(len), udp));
  EXPECT_FALSE(matches("greater " + std::to_string(len + 1), udp));
  EXPECT_FALSE(matches("less " + std::to_string(len - 1), udp));
}

TEST(CbpfExpr, BooleanOperatorsCompose) {
  const auto a = udp_packet("2001:db8::1", "2001:db8::2", 5000, 7);
  const auto b = udp_packet("fc00::1", "fc00::2", 5000, 9);
  EXPECT_TRUE(matches("dst port 7 or dst port 9", a));
  EXPECT_TRUE(matches("dst port 7 or dst port 9", b));
  EXPECT_FALSE(matches("dst port 7 and dst port 9", a));
  EXPECT_TRUE(matches("not dst port 9", a));
  EXPECT_FALSE(matches("not dst port 9", b));
  EXPECT_TRUE(matches("udp and not (src net fc00::/7)", a));
  EXPECT_FALSE(matches("udp and not (src net fc00::/7)", b));
  EXPECT_TRUE(matches("not not udp", a));
}

}  // namespace
}  // namespace srv6bpf::cbpf
