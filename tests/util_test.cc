#include <gtest/gtest.h>

#include <cmath>

#include "util/byteorder.h"
#include "util/hexdump.h"
#include "util/rng.h"

namespace srv6bpf {
namespace {

TEST(ByteOrder, Swaps) {
  EXPECT_EQ(bswap16(0x1234), 0x3412);
  EXPECT_EQ(bswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(bswap64(0x0102030405060708ull), 0x0807060504030201ull);
}

TEST(ByteOrder, BigEndianLoadStoreRoundTrip) {
  std::uint8_t buf[8];
  store_be16(buf, 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(load_be16(buf), 0xbeef);

  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);

  store_be64(buf, 0x1122334455667788ull);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[7], 0x88);
  EXPECT_EQ(load_be64(buf), 0x1122334455667788ull);
}

TEST(ByteOrder, UnalignedAccess) {
  std::uint8_t buf[16] = {};
  // Deliberately misaligned offset.
  store_unaligned<std::uint64_t>(buf + 3, 0x0123456789abcdefull);
  EXPECT_EQ(load_unaligned<std::uint64_t>(buf + 3), 0x0123456789abcdefull);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformWithinBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(30.0, 5.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 30.0, 0.2);
  EXPECT_NEAR(std::sqrt(var), 5.0, 0.2);
}

TEST(Hexdump, CompactHex) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(hex(data), "deadbeef");
}

TEST(Hexdump, FullDumpContainsAscii) {
  const std::uint8_t data[] = {'h', 'i', 0x00, 0xff};
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("hi"), std::string::npos);
  EXPECT_NE(dump.find("68"), std::string::npos);
}

}  // namespace
}  // namespace srv6bpf
