// Differential test of the multibit-stride LPM engine (util::LpmTrie)
// against the classic one-bit-per-node walk it replaced
// (util::BitwiseLpmTrie, preserved as the oracle): randomized
// insert/erase/lookup sequences over IPv6-width keys must produce identical
// longest-prefix results at every step — including the /0 default route,
// overlapping /48 + /64 prefixes and erase-then-relookup — plus the same
// checks through the BPF_MAP_TYPE_LPM_TRIE map interface.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "apps/sink.h"
#include "apps/trafgen.h"
#include "ebpf/map.h"
#include "net/checksum.h"
#include "net/packet.h"
#include "net/transport.h"
#include "sim/network.h"
#include "util/lpm_trie.h"
#include "util/rng.h"

namespace srv6bpf {
namespace {

using util::BitwiseLpmTrie;
using util::LpmTrie;

struct Key {
  std::uint8_t bytes[16] = {};
};

// Draws prefixes from a deliberately collision-heavy universe: few distinct
// leading bytes and a /48-shaped pool of plens, so inserts overlap, erases
// hit and lookups land near prefix boundaries.
Key random_key(Rng& rng) {
  Key k;
  for (int i = 0; i < 16; ++i)
    k.bytes[i] = static_cast<std::uint8_t>(rng.uniform(0, 3));
  return k;
}

std::uint32_t random_plen(Rng& rng) {
  static constexpr std::uint32_t kPool[] = {0,  1,  8,  16, 31, 32, 33,
                                            47, 48, 49, 64, 96, 127, 128};
  return kPool[rng.uniform(0, std::size(kPool) - 1)];
}

// Zeroes the bits beyond plen: the canonical identity of a prefix. The tries
// are always fed the *unmasked* key (both engines must ignore the excess
// bits); the test's own bookkeeping uses the canonical form.
Key canon(const Key& k, std::uint32_t plen) {
  Key c;
  for (std::uint32_t b = 0; b < 16; ++b) {
    const std::uint32_t bit0 = b * 8;
    if (bit0 + 8 <= plen)
      c.bytes[b] = k.bytes[b];
    else if (bit0 < plen)
      c.bytes[b] = static_cast<std::uint8_t>(
          k.bytes[b] & (0xff << (8 - (plen - bit0))));
  }
  return c;
}

TEST(LpmDifferential, RandomizedInsertEraseLookup) {
  Rng rng(0x10f2);
  LpmTrie<std::uint32_t> stride(16);
  BitwiseLpmTrie<std::uint32_t> bitwise(16);
  std::vector<std::pair<Key, std::uint32_t>> live;  // for targeted erases

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform(0, 9));
    if (op < 4) {  // insert
      const Key k = random_key(rng);
      const std::uint32_t plen = random_plen(rng);
      const std::uint32_t val = rng.next_u32();
      bool created_s = false, created_b = false;
      *stride.find_or_insert(k.bytes, plen, created_s) = val;
      *bitwise.find_or_insert(k.bytes, plen, created_b) = val;
      ASSERT_EQ(created_s, created_b) << "step " << step;
      if (created_s) live.emplace_back(canon(k, plen), plen);
    } else if (op < 6 && !live.empty()) {  // erase a known-live prefix
      const std::size_t i = rng.uniform(0, live.size() - 1);
      const auto [k, plen] = live[i];
      live[i] = live.back();
      live.pop_back();
      ASSERT_TRUE(stride.erase(k.bytes, plen)) << "step " << step;
      ASSERT_TRUE(bitwise.erase(k.bytes, plen));
    } else if (op == 6) {  // erase a random (usually absent) prefix
      const Key k = random_key(rng);
      const std::uint32_t plen = random_plen(rng);
      const bool es = stride.erase(k.bytes, plen);
      const bool eb = bitwise.erase(k.bytes, plen);
      ASSERT_EQ(es, eb) << "step " << step;
      if (es) {
        const Key ck = canon(k, plen);
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (std::memcmp(live[i].first.bytes, ck.bytes, 16) == 0 &&
              live[i].second == plen) {
            live[i] = live.back();
            live.pop_back();
            break;
          }
        }
      }
    } else {  // lookup
      const Key q = random_key(rng);
      const std::uint32_t* vs = stride.lookup(q.bytes);
      const std::uint32_t* vb = bitwise.lookup(q.bytes);
      ASSERT_EQ(vs != nullptr, vb != nullptr) << "step " << step;
      if (vs != nullptr) ASSERT_EQ(*vs, *vb) << "step " << step;
    }
    ASSERT_EQ(stride.size(), bitwise.size()) << "step " << step;
  }
}

// The /0 default route must lose to everything more specific and win when
// nothing else covers — and erasing it must restore "no match".
TEST(LpmDifferential, DefaultRouteAndEraseRelookup) {
  LpmTrie<int> trie(16);
  Key any;
  any.bytes[0] = 0x20;

  EXPECT_EQ(trie.lookup(any.bytes), nullptr);
  bool created = false;
  *trie.find_or_insert(Key{}.bytes, 0, created) = 1;  // ::/0
  ASSERT_TRUE(created);
  ASSERT_NE(trie.lookup(any.bytes), nullptr);
  EXPECT_EQ(*trie.lookup(any.bytes), 1);

  Key p48;
  p48.bytes[0] = 0x20;
  p48.bytes[5] = 0x99;
  *trie.find_or_insert(p48.bytes, 48, created) = 2;
  Key q = p48;
  q.bytes[15] = 0xff;  // inside the /48
  EXPECT_EQ(*trie.lookup(q.bytes), 2);
  q.bytes[5] = 0x00;  // outside the /48, back to the default
  EXPECT_EQ(*trie.lookup(q.bytes), 1);

  ASSERT_TRUE(trie.erase(p48.bytes, 48));
  q.bytes[5] = 0x99;
  EXPECT_EQ(*trie.lookup(q.bytes), 1) << "erase must fall back to /0";
  ASSERT_TRUE(trie.erase(Key{}.bytes, 0));
  EXPECT_EQ(trie.lookup(q.bytes), nullptr) << "no routes, no match";
}

// Overlapping /48 + /64 under the same /48: the /64 wins inside itself, the
// /48 everywhere else in its range; erasing the /64 uncovers the /48.
TEST(LpmDifferential, Overlapping48And64) {
  LpmTrie<int> trie(16);
  bool created = false;
  Key p48;
  p48.bytes[0] = 0xfc;
  p48.bytes[5] = 0x01;
  *trie.find_or_insert(p48.bytes, 48, created) = 48;
  Key p64 = p48;
  p64.bytes[6] = 0xab;
  p64.bytes[7] = 0xcd;
  *trie.find_or_insert(p64.bytes, 64, created) = 64;

  Key q = p64;
  q.bytes[15] = 0x01;
  EXPECT_EQ(*trie.lookup(q.bytes), 64);
  q.bytes[7] = 0x00;  // same /48, different /64
  EXPECT_EQ(*trie.lookup(q.bytes), 48);

  ASSERT_TRUE(trie.erase(p64.bytes, 64));
  q.bytes[7] = 0xcd;
  EXPECT_EQ(*trie.lookup(q.bytes), 48) << "erase-then-relookup: /48 uncovered";
}

// Same differential through the BPF map interface: the kernel-style key
// (u32 prefixlen + data) and the stable-value-pointer contract.
TEST(LpmDifferential, MapInterfaceMatchesOracle) {
  using namespace ebpf;
  auto map = make_map({MapType::kLpmTrie, 4 + 16, 4, 1 << 16, "lpm"});
  BitwiseLpmTrie<std::uint32_t> oracle(16);
  Rng rng(0xbeef);

  struct MapKey {
    std::uint32_t plen;
    std::uint8_t data[16];
  };
  for (int step = 0; step < 4000; ++step) {
    const Key k = random_key(rng);
    const std::uint32_t plen = random_plen(rng);
    MapKey mk{plen, {}};
    std::memcpy(mk.data, k.bytes, 16);
    const int op = static_cast<int>(rng.uniform(0, 4));
    if (op < 2) {
      const std::uint32_t val = rng.next_u32();
      ASSERT_EQ(map->put(mk, val), kOk);
      bool created = false;
      *oracle.find_or_insert(k.bytes, plen, created) = val;
    } else if (op == 2) {
      const int rc = map->erase(
          {reinterpret_cast<const std::uint8_t*>(&mk), sizeof mk});
      const bool erased = oracle.erase(k.bytes, plen);
      ASSERT_EQ(rc == kOk, erased) << "step " << step;
    } else {
      mk.plen = 128;  // lookups match the full key regardless of plen
      const std::uint8_t* v = map->find(mk);
      const std::uint32_t* ov = oracle.lookup(k.bytes);
      ASSERT_EQ(v != nullptr, ov != nullptr) << "step " << step;
      if (v != nullptr) {
        std::uint32_t mv;
        std::memcpy(&mv, v, 4);
        ASSERT_EQ(mv, *ov) << "step " << step;
      }
    }
    ASSERT_EQ(map->size(), oracle.size());
  }
}

// Value pointers must stay stable across unrelated inserts (the map hands
// them to BPF programs, which hold them across helper calls).
TEST(LpmDifferential, StableValuePointers) {
  using namespace ebpf;
  auto map = make_map({MapType::kLpmTrie, 4 + 16, 8, 256, "lpm"});
  struct MapKey {
    std::uint32_t plen;
    std::uint8_t data[16];
  };
  MapKey base{48, {}};
  base.data[0] = 0xfc;
  ASSERT_EQ(map->put(base, std::uint64_t{7}), kOk);
  MapKey probe = base;
  probe.plen = 128;
  const std::uint8_t* before = map->find(probe);
  ASSERT_NE(before, nullptr);

  Rng rng(0x5a5a);
  for (int i = 0; i < 200; ++i) {
    MapKey mk{64, {}};
    mk.data[0] = 0xfc;
    mk.data[1] = 0x01;  // sibling /48: never covers `probe`
    mk.data[7] = static_cast<std::uint8_t>(i);
    mk.data[6] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    ASSERT_EQ(map->put(mk, static_cast<std::uint64_t>(i)), kOk);
  }
  EXPECT_EQ(map->find(probe), before)
      << "inserts must not move existing values";
  std::uint64_t v;
  std::memcpy(&v, before, 8);
  EXPECT_EQ(v, 7u);
}

// Erase must prune emptied nodes: stride nodes are ~3.3 KB, so insert/erase
// churn (host routes cycling through a map) must not accrete memory.
TEST(LpmDifferential, ErasePrunesEmptyNodes) {
  LpmTrie<int> trie(16);
  ASSERT_EQ(trie.node_count(), 1u);  // just the root
  Rng rng(0x77);
  bool created = false;
  for (int round = 0; round < 50; ++round) {
    Key keys[8];
    for (auto& k : keys) {
      for (int j = 0; j < 16; ++j)
        k.bytes[j] = static_cast<std::uint8_t>(rng.uniform(0, 255));
      *trie.find_or_insert(k.bytes, 128, created) = round;
    }
    EXPECT_GT(trie.node_count(), 1u);
    for (const auto& k : keys) ASSERT_TRUE(trie.erase(k.bytes, 128));
    EXPECT_EQ(trie.node_count(), 1u)
        << "round " << round << ": erased /128s must prune their chains";
  }
  // Pruning must not disturb entries on a shared path: /48 + /64 share
  // 6 bytes of descent; erasing the /64 keeps the /48's terminal node.
  Key p48;
  p48.bytes[0] = 0xfc;
  *trie.find_or_insert(p48.bytes, 48, created) = 1;
  Key p64 = p48;
  p64.bytes[7] = 9;
  *trie.find_or_insert(p64.bytes, 64, created) = 2;
  ASSERT_TRUE(trie.erase(p64.bytes, 64));
  ASSERT_NE(trie.lookup(p64.bytes), nullptr);
  EXPECT_EQ(*trie.lookup(p64.bytes), 1);
}

// End-to-end: TrafGen::Config::dst_spread cycles destinations over a
// /48-heavy FIB, so the one-entry FibCacheSlot never answers and every
// packet exercises the stride trie through the live datapath — and the
// incremental UDP checksum fixup must keep every rotated packet valid.
TEST(LpmEndToEnd, DstSpreadDrivesTrieWithValidChecksums) {
  constexpr std::size_t kSites = 32;
  sim::Network net(0x4d);
  auto& s1 = net.add_node("S1");
  auto& r = net.add_node("R");
  auto& s2 = net.add_node("S2");
  const auto a1 = net::Ipv6Addr::must_parse("fc00:1::1");
  const auto r0 = net::Ipv6Addr::must_parse("fc00:1::2");
  const auto r1 = net::Ipv6Addr::must_parse("fc00:2::1");
  const auto a2 = net::Ipv6Addr::must_parse("fc00:2::2");
  const std::uint64_t kTenGig = 10ull * 1000 * 1000 * 1000;
  auto l1 = net.connect(s1, a1, r, r0, kTenGig, 10 * sim::kMicro);
  auto l2 = net.connect(r, r1, s2, a2, kTenGig, 10 * sim::kMicro);
  s1.ns().table(0).add_route(net::Prefix::parse("::/0").value(),
                             {r0, l1.a_ifindex, 1});
  char buf[64];
  for (std::size_t i = 0; i < kSites; ++i) {
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::/48", i);
    r.ns().table(0).add_route(net::Prefix::parse(buf).value(),
                              {net::Ipv6Addr{}, l2.a_ifindex, 1});
    std::snprintf(buf, sizeof buf, "2001:db8:%zx::2", i);
    s2.ns().add_local_addr(net::Ipv6Addr::must_parse(buf));
  }

  apps::AppMux mux(s2);
  std::set<net::Ipv6Addr> dsts_seen;
  std::uint64_t delivered = 0, checksums_ok = 0;
  mux.on_udp(7001, [&](const net::Packet& pkt, const net::UdpHeader&,
                       std::span<const std::uint8_t>, sim::TimeNs) {
    ++delivered;
    std::array<std::uint8_t, 16> sb, db;
    std::memcpy(sb.data(), pkt.data() + 8, 16);
    std::memcpy(db.data(), pkt.data() + 24, 16);
    const net::Ipv6Addr src(sb), dst(db);
    dsts_seen.insert(dst);
    const auto loc = net::locate_transport(pkt);
    ASSERT_TRUE(loc.has_value());
    if (net::transport_checksum_ok(
            src, dst, net::kProtoUdp,
            {pkt.data() + loc->offset, pkt.size() - loc->offset}))
      ++checksums_ok;
  });

  apps::TrafGen::Config cfg;
  cfg.spec.src = a1;
  cfg.spec.dst = net::Ipv6Addr::must_parse("2001:db8::2");
  cfg.spec.dst_port = 7001;
  cfg.spec.payload_size = 64;
  cfg.pps = 1e5;
  cfg.dst_spread = kSites;
  cfg.src_port_spread = 5;  // both rewrites must compose checksum-correctly
  cfg.duration = 2 * sim::kMilli;
  apps::TrafGen gen(s1, cfg);
  gen.start();
  net.run_for(sim::kSecond);

  EXPECT_EQ(delivered, gen.sent());
  EXPECT_EQ(checksums_ok, delivered) << "rotated dsts must keep valid UDP "
                                        "checksums (incremental fixup)";
  EXPECT_EQ(dsts_seen.size(), kSites);
  // Every packet switched destination, so the one-entry cache never hits:
  // the stride trie answered every route lookup.
  EXPECT_EQ(r.ns().table(0).cache_hits(), 0u);
  EXPECT_GT(delivered, kSites * 4);
}

}  // namespace
}  // namespace srv6bpf
