#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/tcp.h"
#include "sim/network.h"

namespace srv6bpf::apps {
namespace {

net::Ipv6Addr A(const char* s) { return net::Ipv6Addr::must_parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s).value(); }

// Two hosts joined by a single configurable link.
struct TcpPair {
  sim::Network net{99};
  sim::Node* a;
  sim::Node* b;
  std::unique_ptr<AppMux> mux_a;
  std::unique_ptr<AppMux> mux_b;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  sim::Link* link;

  explicit TcpPair(std::uint64_t bw_bps = 50'000'000,
                   sim::TimeNs delay = 10 * sim::kMilli) {
    a = &net.add_node("a");
    b = &net.add_node("b");
    auto l = net.connect(*a, A("fc00::1"), *b, A("fc00::2"), bw_bps, delay);
    link = l.link;
    a->ns().table(0).add_route(P("::/0"), {A("fc00::2"), l.a_ifindex, 1});
    b->ns().table(0).add_route(P("::/0"), {A("fc00::1"), l.b_ifindex, 1});
    mux_a = std::make_unique<AppMux>(*a);
    mux_b = std::make_unique<AppMux>(*b);
  }

  double run(sim::TimeNs duration) {
    TcpReceiver::Config rc;
    rc.addr = A("fc00::2");
    receiver = std::make_unique<TcpReceiver>(*b, *mux_b, rc);
    TcpSender::Config sc;
    sc.src = A("fc00::1");
    sc.dst = A("fc00::2");
    sc.duration = duration;
    sender = std::make_unique<TcpSender>(*a, *mux_a, sc);
    sender->start();
    net.run_for(duration + sim::kSecond);
    return receiver->goodput_mbps(duration);
  }
};

TEST(TcpSegment, WireFormat) {
  net::Packet p = make_tcp_segment(A("fc00::1"), A("fc00::2"), 40000, 5001,
                                   1000, 2000, net::kTcpAck, 100);
  EXPECT_EQ(p.size(), 40u + 20 + 100);
  auto loc = net::locate_transport(p);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->proto, net::kProtoTcp);
  auto th = net::TcpHeader::parse({p.data() + loc->offset, 20});
  ASSERT_TRUE(th.has_value());
  EXPECT_EQ(th->seq, 1000u);
  EXPECT_EQ(th->ack, 2000u);
}

TEST(Tcp, SaturatesACleanLink) {
  TcpPair pair(/*bw=*/50'000'000, /*delay=*/5 * sim::kMilli);
  const double goodput = pair.run(5 * sim::kSecond);
  // Should reach a large fraction of the 50 Mbps link.
  EXPECT_GT(goodput, 35.0);
  EXPECT_LE(goodput, 51.0);
  EXPECT_EQ(pair.receiver->ooo_segments(), 0u) << "single path: no reordering";
}

TEST(Tcp, ThroughputBoundedByBandwidth) {
  TcpPair pair(/*bw=*/5'000'000, /*delay=*/5 * sim::kMilli);
  const double goodput = pair.run(5 * sim::kSecond);
  EXPECT_LE(goodput, 5.3);
  EXPECT_GT(goodput, 3.0);
}

TEST(Tcp, RecoversFromLossBurst) {
  TcpPair pair(/*bw=*/20'000'000, /*delay=*/5 * sim::kMilli);
  // Squeeze the queue so slow-start overshoot drops packets.
  sim::NetemConfig cfg;
  cfg.rate_bps = 18'000'000;
  cfg.limit_bytes = 30'000;
  pair.link->qdisc(0).set_config(cfg);
  const double goodput = pair.run(5 * sim::kSecond);
  EXPECT_GT(goodput, 10.0) << "loss recovery must keep the pipe flowing";
  EXPECT_GT(pair.sender->retransmits(), 0u);
}

TEST(Tcp, ReorderingCollapsesGoodput) {
  // Same capacity, but the path duplicates the paper's WRR situation:
  // alternate packets over 30 ms vs 5 ms one-way delays (no loss at all).
  TcpPair fast_slow(/*bw=*/80'000'000, /*delay=*/0);
  // Model per-packet spraying across two delay classes with a custom qdisc:
  // easiest equivalent at this layer is heavy jitter WITHOUT order keeping.
  sim::NetemConfig cfg;
  cfg.delay_ns = 17 * sim::kMilli;   // mean of 30/5 ms one-way halves
  cfg.jitter_ns = 12 * sim::kMilli;  // spread wide enough to reorder
  cfg.keep_order = false;
  fast_slow.link->qdisc(0).set_config(cfg);

  const double goodput = fast_slow.run(5 * sim::kSecond);
  EXPECT_LT(goodput, 15.0) << "dupack-driven fast retransmits must collapse "
                              "goodput under reordering";
  EXPECT_GT(fast_slow.receiver->ooo_segments(), 100u);
  EXPECT_GE(fast_slow.sender->fast_retransmits(), 3u);
}

TEST(Tcp, RtoFiresWhenPathGoesSilent) {
  // The receiver is unreachable (no route back): the sender must not spin.
  sim::Network net;
  auto& a = net.add_node("a");
  auto& b = net.add_node("b");
  auto l = net.connect(a, A("fc00::1"), b, A("fc00::2"), 1'000'000, sim::kMilli);
  a.ns().table(0).add_route(P("::/0"), {A("fc00::2"), l.a_ifindex, 1});
  // b has no route back -> ACKs are dropped at b.
  AppMux mux_a(a), mux_b(b);
  TcpReceiver::Config rc;
  rc.addr = A("fc00::2");
  TcpReceiver recv(b, mux_b, rc);
  TcpSender::Config sc;
  sc.src = A("fc00::1");
  sc.dst = A("fc00::2");
  sc.duration = 3 * sim::kSecond;
  TcpSender snd(a, mux_a, sc);
  snd.start();
  net.run_for(4 * sim::kSecond);
  EXPECT_GT(snd.timeouts(), 0u);
  EXPECT_LT(snd.segments_sent(), 100u) << "backoff must bound retransmissions";
}

}  // namespace
}  // namespace srv6bpf::apps
